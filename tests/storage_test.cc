// Slotted page, heap file, and hash index tests. The hash index section
// stress-covers the optimistic (OptLatch-validated) read path and runs
// under TSan in CI.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "src/buffer/buffer_pool.h"
#include "src/storage/hash_index.h"
#include "src/storage/heap_file.h"
#include "src/storage/slotted_page.h"
#include "src/util/rng.h"

namespace slidb {
namespace {

std::span<const uint8_t> Bytes(const std::string& s) {
  return {reinterpret_cast<const uint8_t*>(s.data()), s.size()};
}

TEST(SlottedPageTest, InsertAndGet) {
  Page page;
  SlottedPage::Init(&page);
  const int slot = SlottedPage::Insert(&page, Bytes("hello"));
  ASSERT_GE(slot, 0);
  const auto rec = SlottedPage::Get(&page, static_cast<uint16_t>(slot));
  ASSERT_EQ(rec.size(), 5u);
  EXPECT_EQ(std::memcmp(rec.data(), "hello", 5), 0);
  EXPECT_EQ(SlottedPage::LiveCount(&page), 1u);
}

TEST(SlottedPageTest, FillsUntilFull) {
  Page page;
  SlottedPage::Init(&page);
  const std::string rec(100, 'x');
  int inserted = 0;
  while (SlottedPage::Insert(&page, Bytes(rec)) >= 0) ++inserted;
  // 8KB / (100 + 4-byte slot) ≈ 78 records.
  EXPECT_GT(inserted, 70);
  EXPECT_LT(inserted, 82);
  EXPECT_EQ(SlottedPage::LiveCount(&page), inserted);
}

TEST(SlottedPageTest, UpdateInPlace) {
  Page page;
  SlottedPage::Init(&page);
  const int slot = SlottedPage::Insert(&page, Bytes("abcdef"));
  ASSERT_GE(slot, 0);
  ASSERT_TRUE(SlottedPage::Update(&page, slot, Bytes("ABCDEF")).ok());
  const auto rec = SlottedPage::Get(&page, slot);
  EXPECT_EQ(std::memcmp(rec.data(), "ABCDEF", 6), 0);
  // Growth is rejected.
  EXPECT_TRUE(SlottedPage::Update(&page, slot, Bytes("toolongrecord"))
                  .IsNotSupported());
}

TEST(SlottedPageTest, DeleteLeavesStableHole) {
  Page page;
  SlottedPage::Init(&page);
  const int s0 = SlottedPage::Insert(&page, Bytes("one"));
  const int s1 = SlottedPage::Insert(&page, Bytes("two"));
  ASSERT_TRUE(SlottedPage::Delete(&page, s0).ok());
  EXPECT_TRUE(SlottedPage::Get(&page, s0).empty());
  // s1 unaffected.
  EXPECT_EQ(std::memcmp(SlottedPage::Get(&page, s1).data(), "two", 3), 0);
  // Double delete fails.
  EXPECT_TRUE(SlottedPage::Delete(&page, s0).IsNotFound());
  // New inserts do NOT reuse the hole (undo stability).
  const int s2 = SlottedPage::Insert(&page, Bytes("three"));
  EXPECT_NE(s2, s0);
}

TEST(SlottedPageTest, InsertAtRestoresHole) {
  Page page;
  SlottedPage::Init(&page);
  const int s0 = SlottedPage::Insert(&page, Bytes("payload"));
  ASSERT_TRUE(SlottedPage::Delete(&page, s0).ok());
  ASSERT_TRUE(SlottedPage::InsertAt(&page, s0, Bytes("payload")).ok());
  const auto rec = SlottedPage::Get(&page, s0);
  EXPECT_EQ(std::memcmp(rec.data(), "payload", 7), 0);
  // InsertAt on a live slot fails.
  EXPECT_TRUE(SlottedPage::InsertAt(&page, s0, Bytes("x")).IsKeyExists());
}

TEST(SlottedPageTest, CompactPreservesRecordsAndRids) {
  Page page;
  SlottedPage::Init(&page);
  std::vector<int> slots;
  for (int i = 0; i < 20; ++i) {
    slots.push_back(SlottedPage::Insert(
        &page, Bytes(std::string(50, static_cast<char>('a' + i)))));
  }
  // Punch holes in even slots.
  for (int i = 0; i < 20; i += 2) {
    ASSERT_TRUE(SlottedPage::Delete(&page, slots[i]).ok());
  }
  const size_t before = SlottedPage::FreeSpace(&page);
  SlottedPage::Compact(&page);
  EXPECT_GT(SlottedPage::FreeSpace(&page), before);
  for (int i = 1; i < 20; i += 2) {
    const auto rec = SlottedPage::Get(&page, slots[i]);
    ASSERT_EQ(rec.size(), 50u);
    EXPECT_EQ(rec[0], static_cast<uint8_t>('a' + i));
  }
}

class HeapFileTest : public ::testing::Test {
 protected:
  HeapFileTest() : pool_(&vol_, MakeOptions()), heap_(&pool_) {}

  static BufferPoolOptions MakeOptions() {
    BufferPoolOptions o;
    o.num_frames = 256;
    return o;
  }

  Volume vol_;
  BufferPool pool_;
  HeapFile heap_;
};

TEST_F(HeapFileTest, InsertReadRoundTrip) {
  Rid rid;
  ASSERT_TRUE(heap_.Insert(Bytes("record-1"), &rid).ok());
  std::string out;
  ASSERT_TRUE(heap_.Read(rid, &out).ok());
  EXPECT_EQ(out, "record-1");
}

TEST_F(HeapFileTest, ReadIntoChecksSize) {
  Rid rid;
  ASSERT_TRUE(heap_.Insert(Bytes("12345678"), &rid).ok());
  char buf[8];
  ASSERT_TRUE(heap_.ReadInto(rid, buf, 8).ok());
  EXPECT_TRUE(heap_.ReadInto(rid, buf, 4).IsInvalidArgument());
}

TEST_F(HeapFileTest, SpillsAcrossPages) {
  const std::string rec(1000, 'r');
  std::vector<Rid> rids;
  for (int i = 0; i < 100; ++i) {
    Rid rid;
    ASSERT_TRUE(heap_.Insert(Bytes(rec), &rid).ok());
    rids.push_back(rid);
  }
  EXPECT_GT(heap_.page_count(), 10u);  // ~7 per page
  std::string out;
  for (const Rid& rid : rids) {
    ASSERT_TRUE(heap_.Read(rid, &out).ok());
    EXPECT_EQ(out.size(), 1000u);
  }
}

TEST_F(HeapFileTest, UpdateAndDelete) {
  Rid rid;
  ASSERT_TRUE(heap_.Insert(Bytes("vvvvv"), &rid).ok());
  ASSERT_TRUE(heap_.Update(rid, Bytes("wwwww")).ok());
  std::string out;
  ASSERT_TRUE(heap_.Read(rid, &out).ok());
  EXPECT_EQ(out, "wwwww");
  ASSERT_TRUE(heap_.Delete(rid).ok());
  EXPECT_TRUE(heap_.Read(rid, &out).IsNotFound());
}

TEST_F(HeapFileTest, ScanVisitsAllLiveRecords) {
  std::set<uint64_t> inserted;
  for (int i = 0; i < 50; ++i) {
    Rid rid;
    ASSERT_TRUE(
        heap_.Insert(Bytes("rec" + std::to_string(i)), &rid).ok());
    inserted.insert(rid.ToU64());
  }
  size_t seen = 0;
  ASSERT_TRUE(heap_
                  .Scan([&](Rid rid, std::span<const uint8_t> rec) {
                    EXPECT_TRUE(inserted.count(rid.ToU64()));
                    EXPECT_FALSE(rec.empty());
                    ++seen;
                  })
                  .ok());
  EXPECT_EQ(seen, 50u);
}

TEST_F(HeapFileTest, ConcurrentInsertersGetDistinctRids) {
  constexpr int kThreads = 4;
  constexpr int kEach = 500;
  std::vector<std::vector<uint64_t>> rids(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(t);
      for (int i = 0; i < kEach; ++i) {
        const std::string rec(rng.Uniform(20, 200), 'x');
        Rid rid;
        ASSERT_TRUE(heap_.Insert(Bytes(rec), &rid).ok());
        rids[t].push_back(rid.ToU64());
      }
    });
  }
  for (auto& th : threads) th.join();
  std::set<uint64_t> all;
  for (const auto& v : rids) all.insert(v.begin(), v.end());
  EXPECT_EQ(all.size(), static_cast<size_t>(kThreads) * kEach);
}

TEST(RidTest, PackUnpackRoundTrip) {
  const Rid rid{123456, 789};
  const Rid back = Rid::FromU64(rid.ToU64());
  EXPECT_EQ(back, rid);
}

// ---- hash index (optimistic read path) --------------------------------------

TEST(HashIndexTest, BasicMultimapSemantics) {
  HashIndex idx(4);
  ASSERT_TRUE(idx.Insert(10, 100).ok());
  ASSERT_TRUE(idx.Insert(10, 101).ok());
  ASSERT_TRUE(idx.Insert(11, 200).ok());
  EXPECT_TRUE(idx.Insert(10, 100).IsKeyExists());  // exact duplicate pair
  EXPECT_EQ(idx.size(), 3u);

  uint64_t v = 0;
  ASSERT_TRUE(idx.Lookup(10, &v).ok());
  EXPECT_TRUE(v == 100 || v == 101);
  ASSERT_TRUE(idx.Lookup(11, &v).ok());
  EXPECT_EQ(v, 200u);
  EXPECT_TRUE(idx.Lookup(12, &v).IsNotFound());

  std::vector<uint64_t> all;
  idx.LookupAll(10, &all);
  std::sort(all.begin(), all.end());
  EXPECT_EQ(all, (std::vector<uint64_t>{100, 101}));

  ASSERT_TRUE(idx.Remove(10, 100).ok());
  EXPECT_TRUE(idx.Remove(10, 100).IsNotFound());
  EXPECT_TRUE(idx.Remove(12, 1).IsNotFound());
  EXPECT_EQ(idx.size(), 2u);
  idx.LookupAll(10, &all);
  EXPECT_EQ(all, (std::vector<uint64_t>{101}));
}

TEST(HashIndexTest, GrowthKeepsEveryEntry) {
  // One shard forces long chains and repeated table doublings (the epoch-
  // retired bucket-array swap); every entry must survive every resize.
  HashIndex idx(1);
  constexpr uint64_t kKeys = 5000;
  for (uint64_t k = 0; k < kKeys; ++k) {
    ASSERT_TRUE(idx.Insert(k, k * 2 + 1).ok());
    if (k % 3 == 0) {
      ASSERT_TRUE(idx.Insert(k, k * 2 + 2).ok());
    }
  }
  uint64_t v = 0;
  std::vector<uint64_t> all;
  for (uint64_t k = 0; k < kKeys; ++k) {
    ASSERT_TRUE(idx.Lookup(k, &v).ok()) << k;
    idx.LookupAll(k, &all);
    EXPECT_EQ(all.size(), k % 3 == 0 ? 2u : 1u) << k;
  }
  EXPECT_TRUE(idx.Lookup(kKeys + 1, &v).IsNotFound());
}

TEST(HashIndexTest, ConcurrentInsertBurstKeepsLoadFactorBounded) {
  // Regression for writer-local grow accounting: concurrent inserters into
  // one shard each used to trigger growth off their own insert only, so a
  // burst that all sampled a stale pre-grow table could leave the shard far
  // past its target load factor. The shared atomic occupancy count plus the
  // grow-until-met loop bound the final state regardless of interleaving.
  HashIndex idx(1);  // single shard concentrates the burst
  constexpr int kThreads = 4;
  constexpr uint64_t kEach = 4000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const uint64_t base = static_cast<uint64_t>(t) * 1'000'000;
      for (uint64_t i = 0; i < kEach; ++i) {
        ASSERT_TRUE(idx.Insert(base + i, i).ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(idx.size(), static_cast<uint64_t>(kThreads) * kEach);
  // kGrowLoadFactor = 2: the last insert's grow loop leaves mean chain
  // length at or under two.
  EXPECT_LE(idx.MaxShardLoadFactor(), 2.0);
  uint64_t v = 0;
  for (int t = 0; t < kThreads; ++t) {
    const uint64_t base = static_cast<uint64_t>(t) * 1'000'000;
    for (uint64_t i = 0; i < kEach; i += 97) {
      ASSERT_TRUE(idx.Lookup(base + i, &v).ok()) << base + i;
      EXPECT_EQ(v, i);
    }
  }
}

TEST(HashIndexTest, ConcurrentReadersSeeConsistentEntries) {
  // Writers churn disjoint key ranges (insert then remove evens) while
  // readers hammer the whole space through the optimistic path. Assertions
  // are interleaving-independent: a returned value must always be the one
  // the key was inserted with, and the final state must match exactly.
  const unsigned hw = std::thread::hardware_concurrency();
  const int kWriters = hw >= 4 ? 3 : 2;
  const int kReaders = hw >= 4 ? 3 : 2;
  const uint64_t kPerWriter = hw >= 2 ? 4000 : 1200;

  HashIndex idx(8);
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      const uint64_t base = static_cast<uint64_t>(w) * 1'000'000;
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        ASSERT_TRUE(idx.Insert(base + i, (base + i) ^ 0xABCDu).ok());
      }
      for (uint64_t i = 0; i < kPerWriter; i += 2) {
        ASSERT_TRUE(idx.Remove(base + i, (base + i) ^ 0xABCDu).ok());
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      Rng rng(7919 * (r + 1));
      std::vector<uint64_t> all;
      while (!stop.load(std::memory_order_relaxed)) {
        const uint64_t key =
            (rng.Next() % kWriters) * 1'000'000 + rng.Next() % kPerWriter;
        uint64_t v = 0;
        if (idx.Lookup(key, &v).ok()) {
          EXPECT_EQ(v, key ^ 0xABCDu);  // never a torn or foreign value
        }
        idx.LookupAll(key, &all);
        for (const uint64_t got : all) EXPECT_EQ(got, key ^ 0xABCDu);
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) threads[w].join();
  stop.store(true, std::memory_order_relaxed);
  for (size_t i = kWriters; i < threads.size(); ++i) threads[i].join();

  EXPECT_EQ(idx.size(), uint64_t{static_cast<uint64_t>(kWriters)} *
                            (kPerWriter / 2));
  uint64_t v = 0;
  for (int w = 0; w < kWriters; ++w) {
    const uint64_t base = static_cast<uint64_t>(w) * 1'000'000;
    for (uint64_t i = 0; i < kPerWriter; ++i) {
      const bool want = (i % 2) == 1;  // evens were removed
      EXPECT_EQ(idx.Lookup(base + i, &v).ok(), want) << base + i;
      if (want) {
        EXPECT_EQ(v, (base + i) ^ 0xABCDu);
      }
    }
  }
}

}  // namespace
}  // namespace slidb
