// Optimistic-lock-coupling coverage: OptLatch protocol unit tests, epoch
// manager semantics, empty-leaf reclamation, and the concurrent B-tree
// stress test (readers + inserters + removers over duplicate keys and
// split-heavy ranges) asserting no lost or phantom entries. Runs under
// TSan in CI next to the lock/log TSan jobs; thread counts are gated on
// hardware_concurrency() per the ROADMAP flakiness note.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <thread>
#include <vector>

#include "src/stats/counters.h"
#include "src/storage/btree.h"
#include "src/util/epoch.h"
#include "src/util/latch.h"
#include "src/util/rng.h"

namespace slidb {
namespace {

// ---- OptLatch protocol ----

TEST(OptLatchTest, ReadValidateRoundTrip) {
  OptLatch l;
  bool restart = false;
  const uint64_t v = l.ReadLockOrRestart(&restart);
  EXPECT_FALSE(restart);
  l.CheckOrRestart(v, &restart);
  EXPECT_FALSE(restart);
}

TEST(OptLatchTest, WriteUnlockBumpsVersionAndInvalidatesReaders) {
  OptLatch l;
  bool restart = false;
  const uint64_t v = l.ReadLockOrRestart(&restart);
  ASSERT_FALSE(restart);

  l.UpgradeToWriteLockOrRestart(v, &restart);
  ASSERT_FALSE(restart);
  EXPECT_TRUE(l.IsLocked());
  l.WriteUnlock();
  EXPECT_FALSE(l.IsLocked());

  // The pre-write snapshot no longer validates.
  l.CheckOrRestart(v, &restart);
  EXPECT_TRUE(restart);

  // A fresh snapshot does.
  restart = false;
  const uint64_t v2 = l.ReadLockOrRestart(&restart);
  ASSERT_FALSE(restart);
  EXPECT_NE(v2, v);
  l.CheckOrRestart(v2, &restart);
  EXPECT_FALSE(restart);
}

TEST(OptLatchTest, UpgradeFailsOnStaleSnapshot) {
  OptLatch l;
  bool restart = false;
  const uint64_t v = l.ReadLockOrRestart(&restart);

  // Another writer gets in first.
  l.WriteLockOrRestart(&restart);
  ASSERT_FALSE(restart);
  l.WriteUnlock();

  l.UpgradeToWriteLockOrRestart(v, &restart);
  EXPECT_TRUE(restart);
  EXPECT_FALSE(l.IsLocked());  // failed upgrade must not leave it locked
}

TEST(OptLatchTest, ObsoleteRestartsAllComers) {
  OptLatch l;
  bool restart = false;
  l.WriteLockOrRestart(&restart);
  ASSERT_FALSE(restart);
  l.WriteUnlockObsolete();
  EXPECT_TRUE(l.IsObsolete());
  EXPECT_FALSE(l.IsLocked());

  restart = false;
  (void)l.ReadLockOrRestart(&restart);
  EXPECT_TRUE(restart);

  restart = false;
  l.WriteLockOrRestart(&restart);
  EXPECT_TRUE(restart);
}

TEST(OptLatchTest, WriteLockWaitsForWriter) {
  OptLatch l;
  bool restart = false;
  l.WriteLockOrRestart(&restart);
  ASSERT_FALSE(restart);

  std::atomic<bool> acquired{false};
  std::thread t([&] {
    bool rs = false;
    l.WriteLockOrRestart(&rs);
    ASSERT_FALSE(rs);
    acquired.store(true);
    l.WriteUnlock();
  });
  EXPECT_FALSE(acquired.load());
  l.WriteUnlock();
  t.join();
  EXPECT_TRUE(acquired.load());
}

// ---- epoch manager ----

void SetFlagDeleter(void* p) { *static_cast<bool*>(p) = true; }

TEST(EpochManagerTest, RetireDefersWhileOverlappingGuardActive) {
  EpochManager mgr;
  bool freed = false;
  {
    EpochManager::Guard g(mgr);  // entered before the retire: could hold
                                 // a path to the object
    mgr.Retire(&freed, SetFlagDeleter);
    mgr.ReclaimSome();
    EXPECT_FALSE(freed);
    EXPECT_EQ(mgr.pending(), 1u);
  }
  mgr.ReclaimSome();
  EXPECT_TRUE(freed);
  EXPECT_EQ(mgr.pending(), 0u);
  EXPECT_EQ(mgr.total_freed(), 1u);
}

TEST(EpochManagerTest, GuardEnteredAfterRetireDoesNotBlockReclaim) {
  EpochManager mgr;
  bool freed = false;
  mgr.Retire(&freed, SetFlagDeleter);
  EpochManager::Guard g(mgr);  // entered after: cannot reach the object
  mgr.ReclaimSome();
  EXPECT_TRUE(freed);
}

TEST(EpochManagerTest, NestedGuardsKeepOutermostEpochPinned) {
  EpochManager mgr;
  bool freed = false;
  {
    EpochManager::Guard outer(mgr);
    mgr.Retire(&freed, SetFlagDeleter);
    {
      EpochManager::Guard inner(mgr);  // nesting must not re-announce
      mgr.ReclaimSome();
      EXPECT_FALSE(freed);
    }
    mgr.ReclaimSome();
    EXPECT_FALSE(freed);  // outer still pinned
  }
  mgr.ReclaimSome();
  EXPECT_TRUE(freed);
}

TEST(EpochManagerTest, BatchThresholdTriggersInlineReclaim) {
  EpochManager mgr;
  std::array<bool, EpochManager::kReclaimBatch + 1> freed{};
  // No guard is active, so crossing the batch threshold frees inline —
  // without an explicit ReclaimSome() call. The retiree that lands after
  // the trigger stays pending until the next batch.
  for (bool& f : freed) mgr.Retire(&f, SetFlagDeleter);
  const auto freed_inline = static_cast<size_t>(
      std::count(freed.begin(), freed.end(), true));
  EXPECT_GE(freed_inline, EpochManager::kReclaimBatch);
  mgr.ReclaimSome();
  EXPECT_TRUE(std::all_of(freed.begin(), freed.end(),
                          [](bool f) { return f; }));
}

TEST(EpochManagerTest, DestructorDrainsPending) {
  bool freed = false;
  {
    EpochManager mgr;
    mgr.Retire(&freed, SetFlagDeleter);
  }
  EXPECT_TRUE(freed);
}

TEST(EpochManagerTest, ConcurrentGuardsAndRetires) {
  EpochManager mgr;
  constexpr int kObjects = 512;
  std::atomic<int> freed{0};
  // Retire heap ints from one thread while others cycle guards.
  std::atomic<bool> stop{false};
  std::vector<std::thread> guards;
  const int nguards =
      std::max(1u, std::min(3u, std::thread::hardware_concurrency()));
  for (int t = 0; t < nguards; ++t) {
    guards.emplace_back([&] {
      while (!stop.load()) {
        EpochManager::Guard g(mgr);
      }
    });
  }
  struct Obj {
    std::atomic<int>* counter;
  };
  for (int i = 0; i < kObjects; ++i) {
    auto* o = new Obj{&freed};
    mgr.Retire(o, [](void* p) {
      auto* obj = static_cast<Obj*>(p);
      obj->counter->fetch_add(1);
      delete obj;
    });
  }
  stop.store(true);
  for (auto& t : guards) t.join();
  mgr.ReclaimSome();
  mgr.ReclaimSome();  // second pass: epoch advanced past all stragglers
  EXPECT_EQ(freed.load() + static_cast<int>(mgr.pending()), kObjects);
}

// ---- empty-leaf reclamation through the epoch manager ----

TEST(BTreeOlcTest, DrainedLeavesAreUnlinkedAndRetired) {
  CounterSet counters;
  ScopedCounterSet routed(&counters);
  BTree tree;
  constexpr uint64_t kN = 4000;  // dozens of leaves at fanout 64
  for (uint64_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(tree.Insert(i, i).ok());
  }
  for (uint64_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(tree.Remove(i, i).ok());
  }
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_GT(counters.Get(Counter::kBtreeLeafReclaims), 0u);
  EXPECT_GT(counters.Get(Counter::kEpochRetired), 0u);

  // The tree stays fully usable: lookups miss, reinserts land.
  uint64_t v;
  EXPECT_TRUE(tree.Lookup(17, &v).IsNotFound());
  for (uint64_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(tree.Insert(i, i + 1).ok());
  }
  EXPECT_TRUE(tree.CheckInvariants());
  ASSERT_TRUE(tree.Lookup(17, &v).ok());
  EXPECT_EQ(v, 18u);
}

TEST(BTreeOlcTest, ReclaimKnobOffKeepsLazyBehaviour) {
  CounterSet counters;
  ScopedCounterSet routed(&counters);
  BTreeOptions opts;
  opts.reclaim_empty_leaves = false;
  BTree tree(opts);
  for (uint64_t i = 0; i < 2000; ++i) ASSERT_TRUE(tree.Insert(i, i).ok());
  for (uint64_t i = 0; i < 2000; ++i) ASSERT_TRUE(tree.Remove(i, i).ok());
  EXPECT_EQ(counters.Get(Counter::kBtreeLeafReclaims), 0u);
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.CheckInvariants());
}

// ---- concurrent stress: no lost or phantom entries ----

// Writer t inserts pairs (key, value) with value = t << 24 | seq, so every
// pair is globally unique while keys collide heavily (duplicate-key and
// split-heavy coverage). Each writer removes a deterministic subset of its
// own entries; the final tree must equal exactly the union of what every
// writer kept.
TEST(BTreeOlcStressTest, ReadersInsertersRemoversConverge) {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const int kWriters = hw >= 4 ? 4 : 2;
  const int kReaders = hw >= 4 ? 3 : 2;
  const int kOpsPerWriter = 6000;
  const uint64_t kKeySpace = 512;  // narrow: constant splits + duplicates

  BTree tree;
  std::atomic<int> writers_done{0};
  std::vector<std::vector<std::pair<uint64_t, uint64_t>>> kept(kWriters);
  std::vector<CounterSet> per_thread(kWriters + kReaders);

  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&, t] {
      ScopedCounterSet routed(&per_thread[t]);
      Rng rng(1000 + t);
      std::vector<std::pair<uint64_t, uint64_t>> mine;
      for (int i = 0; i < kOpsPerWriter; ++i) {
        const uint64_t key = rng.Uniform(0, kKeySpace - 1);
        const uint64_t value =
            (static_cast<uint64_t>(t) << 24) | static_cast<uint64_t>(i);
        ASSERT_TRUE(tree.Insert(key, value).ok());
        mine.emplace_back(key, value);
        // Remove an older own entry every third insert: leaves drain and
        // split-merge churn overlaps the readers.
        if (i % 3 == 2) {
          const auto victim = mine[mine.size() - 2];
          ASSERT_TRUE(tree.Remove(victim.first, victim.second).ok());
          mine.erase(mine.end() - 2);
        }
      }
      kept[t] = std::move(mine);
      writers_done.fetch_add(1);
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      ScopedCounterSet routed(&per_thread[kWriters + r]);
      Rng rng(77 + r);
      // Minimum iteration count guarantees coverage even when all writers
      // finish before this thread is first scheduled (single-CPU hosts).
      for (int i = 0; i < 300 || writers_done.load() < kWriters; ++i) {
        const uint64_t lo = rng.Uniform(0, kKeySpace - 1);
        const uint64_t hi = std::min<uint64_t>(lo + 32, kKeySpace - 1);
        uint64_t pk = 0, pv = 0;
        bool first = true;
        tree.Scan(lo, hi, [&](uint64_t k, uint64_t v) {
          // Delivered stream must be ordered by (key, value) with bounds
          // respected — a torn read or duplicated resume would break this.
          EXPECT_GE(k, lo);
          EXPECT_LE(k, hi);
          if (!first) {
            EXPECT_TRUE(k > pk || (k == pk && v > pv));
          }
          first = false;
          pk = k;
          pv = v;
          return true;
        });
      }
    });
  }
  for (auto& th : threads) th.join();

  // Exact content check: everything kept is present (no lost entries),
  // nothing else is (no phantoms).
  std::vector<std::pair<uint64_t, uint64_t>> expected;
  for (auto& v : kept) {
    expected.insert(expected.end(), v.begin(), v.end());
  }
  std::sort(expected.begin(), expected.end());
  std::vector<std::pair<uint64_t, uint64_t>> actual;
  tree.Scan(0, kKeySpace, [&](uint64_t k, uint64_t v) {
    actual.emplace_back(k, v);
    return true;
  });
  EXPECT_EQ(actual.size(), expected.size());
  EXPECT_EQ(actual, expected);
  EXPECT_EQ(tree.size(), expected.size());
  EXPECT_TRUE(tree.CheckInvariants());

  CounterSet total;
  for (const CounterSet& c : per_thread) total.Merge(c);
  if (hw >= 2) {
    // With real parallelism the narrow key space guarantees version
    // conflicts; on a single hardware context restarts need a preemption
    // mid-write and are not deterministic (ROADMAP flakiness note).
    EXPECT_GT(total.Get(Counter::kBtreeRestarts), 0u);
  }
}

}  // namespace
}  // namespace slidb
