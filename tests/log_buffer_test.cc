// Tests for the WAL (group commit, durability ordering) and the buffer pool
// (pin/fix semantics, eviction, write-back, simulated I/O accounting).
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "src/buffer/buffer_pool.h"
#include "src/log/log_manager.h"

namespace slidb {
namespace {

TEST(LogTest, LsnsAreMonotonic) {
  LogManager log;
  Lsn prev = 0;
  for (int i = 0; i < 100; ++i) {
    const Lsn lsn = log.Append(1, LogRecordType::kUpdate, "abc", 3);
    EXPECT_GT(lsn, prev);
    prev = lsn;
  }
}

TEST(LogTest, WaitDurableBlocksUntilFlushed) {
  LogOptions o;
  o.flush_interval_us = 100;
  LogManager log(o);
  const Lsn lsn = log.Append(1, LogRecordType::kCommit, nullptr, 0);
  log.WaitDurable(lsn);
  EXPECT_GE(log.durable_lsn(), lsn);
}

TEST(LogTest, GroupCommitBatchesFlushes) {
  LogOptions o;
  o.flush_interval_us = 2000;  // coarse flushes
  LogManager log(o);
  constexpr int kThreads = 4;
  constexpr int kCommitsEach = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kCommitsEach; ++i) {
        const Lsn lsn = log.Append(1, LogRecordType::kCommit, nullptr, 0);
        log.WaitDurable(lsn);
      }
    });
  }
  for (auto& th : threads) th.join();
  const LogStats stats = log.Stats();
  EXPECT_EQ(stats.records, kThreads * kCommitsEach);
  // Group commit: far fewer flushes than commits. On a single hardware
  // context commits can fully serialize (each WaitDurable kicks its own
  // flush), so the batching assertion is gated per the ROADMAP flakiness
  // note.
  if (std::thread::hardware_concurrency() >= 2) {
    EXPECT_LT(stats.flushes, stats.records);
  } else {
    EXPECT_LE(stats.flushes, stats.records);
  }
}

TEST(LogTest, DeferredAckSettlesWhenHorizonHardens) {
  CounterSet counters;
  ScopedCounterSet routed(&counters);
  DeferredAckRing ring;
  LogOptions o;
  o.flush_interval_us = 100;
  LogManager log(o);
  const Lsn lsn = log.Append(1, LogRecordType::kCommit, nullptr, 0);
  DeferredAck* ack = ring.Acquire();
  ack->lsn = lsn;
  ack->park_ns = 1;  // any nonzero epoch; settle_ns is stamped by the flusher
  // Whether it parks or settles inline depends on flusher timing; either
  // way the terminal state must be kDurable and Drain must not hang.
  log.ParkDeferred(ack);
  ring.Drain();
  EXPECT_GE(log.durable_lsn(), lsn);
  EXPECT_EQ(ring.outstanding(), 0u);
  EXPECT_EQ(counters.Get(Counter::kTxnDepAbortedAcks), 0u);
}

TEST(LogTest, DeferredAckAlreadyDurableSettlesInline) {
  LogManager log;
  const Lsn lsn = log.Append(1, LogRecordType::kCommit, nullptr, 0);
  log.WaitDurable(lsn);
  DeferredAckRing ring;
  DeferredAck* ack = ring.Acquire();
  ack->lsn = lsn;
  ack->park_ns = 1;
  EXPECT_FALSE(log.ParkDeferred(ack)) << "durable horizon must not park";
  EXPECT_EQ(ack->state.load(), DeferredAck::kDurable);
  ring.Drain();
}

TEST(LogTest, DeferredAckLostWhenHorizonNeverHardens) {
  // The dependency-abort edge of the state machine: an ack whose horizon
  // is never published cannot settle as kDurable — the shutdown drain must
  // settle it as kLost (reporting it committed would externalize state
  // recovery cannot reproduce), and the ring reclaim must count it.
  CounterSet counters;
  ScopedCounterSet routed(&counters);
  DeferredAckRing ring;
  {
    LogOptions o;
    o.flush_interval_us = 50;
    LogManager log(o);
    DeferredAck* ack = ring.Acquire();
    ack->lsn = 1u << 20;  // beyond anything ever appended
    ack->park_ns = 1;
    EXPECT_TRUE(log.ParkDeferred(ack));
    // LogManager teardown: the flusher's shutdown drain settles the ack.
  }
  ring.Drain();
  EXPECT_EQ(ring.outstanding(), 0u);
  EXPECT_EQ(counters.Get(Counter::kTxnDepAbortedAcks), 1u);
}

TEST(LogTest, NonDurableModeSkipsWaiting) {
  LogOptions o;
  o.durable_commit = false;
  o.flush_interval_us = 1'000'000;  // flusher basically never runs
  LogManager log(o);
  const Lsn lsn = log.Append(1, LogRecordType::kCommit, nullptr, 0);
  log.WaitDurable(lsn);  // must return immediately
  SUCCEED();
}

TEST(LogTest, RingWrapAroundUnderPressure) {
  LogOptions o;
  o.buffer_bytes = 1 << 12;  // 4 KB ring forces wrap + space waits
  o.flush_interval_us = 50;
  LogManager log(o);
  uint8_t payload[256];
  std::memset(payload, 0xAB, sizeof(payload));
  for (int i = 0; i < 200; ++i) {
    log.Append(1, LogRecordType::kUpdate, payload, sizeof(payload));
  }
  const Lsn lsn = log.Append(1, LogRecordType::kCommit, nullptr, 0);
  log.WaitDurable(lsn);
  EXPECT_GE(log.durable_lsn(), lsn);
  EXPECT_EQ(log.Stats().records, 201u);
}

TEST(VolumeTest, FilesAndPages) {
  Volume vol;
  const uint32_t f1 = vol.CreateFile();
  const uint32_t f2 = vol.CreateFile();
  EXPECT_NE(f1, f2);
  EXPECT_EQ(vol.PageCount(f1), 0u);
  const uint64_t p0 = vol.AllocatePage(f1);
  const uint64_t p1 = vol.AllocatePage(f1);
  EXPECT_EQ(p0, 0u);
  EXPECT_EQ(p1, 1u);
  EXPECT_EQ(vol.PageCount(f1), 2u);
  EXPECT_EQ(vol.PageCount(f2), 0u);

  Page page;
  page.Zero();
  page.bytes[0] = 42;
  ASSERT_TRUE(vol.WritePage(PageId{f1, p1}, page).ok());
  Page readback;
  ASSERT_TRUE(vol.ReadPage(PageId{f1, p1}, &readback).ok());
  EXPECT_EQ(readback.bytes[0], 42);
  EXPECT_TRUE(vol.ReadPage(PageId{f1, 99}, &readback).IsInvalidArgument());
  EXPECT_TRUE(vol.ReadPage(PageId{7, 0}, &readback).IsInvalidArgument());
}

TEST(BufferPoolTest, FixMissThenHit) {
  Volume vol;
  BufferPoolOptions o;
  o.num_frames = 16;
  BufferPool pool(&vol, o);
  const uint32_t f = vol.CreateFile();
  PageId id;
  {
    PageGuard guard;
    ASSERT_TRUE(pool.NewPage(f, &id, &guard).ok());
    guard.page()->bytes[100] = 7;
    guard.MarkDirty();
  }
  {
    PageGuard guard;
    ASSERT_TRUE(pool.FixPage(id, false, &guard).ok());
    EXPECT_EQ(guard.page()->bytes[100], 7);
  }
  const BufferPoolStats stats = pool.Stats();
  EXPECT_GE(stats.fixes, 2u);
  // Second fix must hit.
  EXPECT_LT(stats.misses, stats.fixes);
}

TEST(BufferPoolTest, EvictionWritesBackDirtyPages) {
  Volume vol;
  BufferPoolOptions o;
  o.num_frames = 8;  // tiny pool to force eviction
  BufferPool pool(&vol, o);
  const uint32_t f = vol.CreateFile();

  std::vector<PageId> ids;
  for (int i = 0; i < 32; ++i) {
    PageId id;
    PageGuard guard;
    ASSERT_TRUE(pool.NewPage(f, &id, &guard).ok());
    guard.page()->bytes[0] = static_cast<uint8_t>(i);
    guard.MarkDirty();
    ids.push_back(id);
  }
  // All pages must read back correctly even though most were evicted.
  for (int i = 0; i < 32; ++i) {
    PageGuard guard;
    ASSERT_TRUE(pool.FixPage(ids[i], false, &guard).ok());
    EXPECT_EQ(guard.page()->bytes[0], static_cast<uint8_t>(i));
  }
  const BufferPoolStats stats = pool.Stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.writebacks, 0u);
}

TEST(BufferPoolTest, PinnedPagesAreNotEvicted) {
  Volume vol;
  BufferPoolOptions o;
  o.num_frames = 8;
  BufferPool pool(&vol, o);
  const uint32_t f = vol.CreateFile();

  PageId pinned_id;
  PageGuard pinned;
  ASSERT_TRUE(pool.NewPage(f, &pinned_id, &pinned).ok());
  pinned.page()->bytes[0] = 0xEE;
  pinned.MarkDirty();

  // Thrash the pool while holding the pin.
  for (int i = 0; i < 64; ++i) {
    PageId id;
    PageGuard guard;
    ASSERT_TRUE(pool.NewPage(f, &id, &guard).ok());
  }
  // Our pinned frame must still hold our page content.
  EXPECT_EQ(pinned.page()->bytes[0], 0xEE);
  pinned.Release();
}

TEST(BufferPoolTest, ConcurrentFixesAreCoherent) {
  Volume vol;
  BufferPoolOptions o;
  o.num_frames = 32;
  BufferPool pool(&vol, o);
  const uint32_t f = vol.CreateFile();
  PageId id;
  {
    PageGuard guard;
    ASSERT_TRUE(pool.NewPage(f, &id, &guard).ok());
    std::memset(guard.page()->bytes, 0, kPageSize);
    guard.MarkDirty();
  }

  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        PageGuard guard;
        ASSERT_TRUE(pool.FixPage(id, /*exclusive=*/true, &guard).ok());
        // Read-modify-write of a counter in the page: latch must serialize.
        uint64_t v;
        std::memcpy(&v, guard.page()->bytes, sizeof(v));
        ++v;
        std::memcpy(guard.page()->bytes, &v, sizeof(v));
        guard.MarkDirty();
      }
    });
  }
  for (auto& th : threads) th.join();

  PageGuard guard;
  ASSERT_TRUE(pool.FixPage(id, false, &guard).ok());
  uint64_t v;
  std::memcpy(&v, guard.page()->bytes, sizeof(v));
  EXPECT_EQ(v, static_cast<uint64_t>(kThreads) * kIters);
}

TEST(BufferPoolTest, SimulatedIoDelayCharged) {
  Volume vol;
  BufferPoolOptions o;
  o.num_frames = 8;
  o.simulated_io_delay_us = 2000;  // 2 ms per I/O
  BufferPool pool(&vol, o);
  const uint32_t f = vol.CreateFile();
  const uint64_t page_no = vol.AllocatePage(f);

  const uint64_t t0 = NowMicros();
  PageGuard guard;
  ASSERT_TRUE(pool.FixPage(PageId{f, page_no}, false, &guard).ok());
  const uint64_t took_us = NowMicros() - t0;
  EXPECT_GE(took_us, 1500u);  // miss paid ~2 ms
  guard.Release();

  const uint64_t t1 = NowMicros();
  PageGuard guard2;
  ASSERT_TRUE(pool.FixPage(PageId{f, page_no}, false, &guard2).ok());
  const uint64_t hit_us = NowMicros() - t1;
  EXPECT_LT(hit_us, 1500u);  // hit pays nothing
}

}  // namespace
}  // namespace slidb
