// Property tests for the lock-mode matrices: the compatibility relation,
// the supremum lattice, covers, intention derivation, and the heritable-mode
// predicate SLI relies on.
#include <gtest/gtest.h>

#include <bit>

#include "src/lock/lock_id.h"
#include "src/lock/lock_mode.h"

namespace slidb {
namespace {

const LockMode kAllModes[] = {LockMode::kNL, LockMode::kIS, LockMode::kIX,
                              LockMode::kS,  LockMode::kSIX, LockMode::kU,
                              LockMode::kX};

TEST(LockModeTest, ClassicPairs) {
  EXPECT_TRUE(Compatible(LockMode::kIS, LockMode::kIX));
  EXPECT_TRUE(Compatible(LockMode::kIX, LockMode::kIX));
  EXPECT_TRUE(Compatible(LockMode::kS, LockMode::kS));
  EXPECT_FALSE(Compatible(LockMode::kS, LockMode::kIX));
  EXPECT_FALSE(Compatible(LockMode::kX, LockMode::kIS));
  EXPECT_FALSE(Compatible(LockMode::kSIX, LockMode::kS));
  EXPECT_TRUE(Compatible(LockMode::kSIX, LockMode::kIS));
  EXPECT_FALSE(Compatible(LockMode::kX, LockMode::kX));
}

TEST(LockModeTest, NothingConflictsWithNL) {
  for (LockMode m : kAllModes) {
    EXPECT_TRUE(Compatible(LockMode::kNL, m));
    EXPECT_TRUE(Compatible(m, LockMode::kNL));
  }
}

TEST(LockModeTest, XConflictsWithEverythingReal) {
  for (LockMode m : kAllModes) {
    if (m == LockMode::kNL) continue;
    EXPECT_FALSE(Compatible(LockMode::kX, m)) << LockModeName(m);
    EXPECT_FALSE(Compatible(m, LockMode::kX)) << LockModeName(m);
  }
}

TEST(LockModeTest, UpdateModeAsymmetry) {
  // A held S admits a new U (reader upgrades allowed)…
  EXPECT_TRUE(Compatible(LockMode::kS, LockMode::kU));
  // …but a held U blocks new S and U requests (starvation prevention).
  EXPECT_FALSE(Compatible(LockMode::kU, LockMode::kS));
  EXPECT_FALSE(Compatible(LockMode::kU, LockMode::kU));
  // Intention-share coexists with U in both directions.
  EXPECT_TRUE(Compatible(LockMode::kU, LockMode::kIS));
  EXPECT_TRUE(Compatible(LockMode::kIS, LockMode::kU));
}

TEST(LockModeTest, CompatibilitySymmetricExceptU) {
  for (LockMode a : kAllModes) {
    for (LockMode b : kAllModes) {
      if (a == LockMode::kU || b == LockMode::kU) continue;
      EXPECT_EQ(Compatible(a, b), Compatible(b, a))
          << LockModeName(a) << " vs " << LockModeName(b);
    }
  }
}

TEST(LockModeTest, SupremumIsCommutativeAndIdempotent) {
  for (LockMode a : kAllModes) {
    EXPECT_EQ(Supremum(a, a), a);
    for (LockMode b : kAllModes) {
      EXPECT_EQ(Supremum(a, b), Supremum(b, a))
          << LockModeName(a) << " + " << LockModeName(b);
    }
  }
}

TEST(LockModeTest, SupremumCoversBothOperands) {
  for (LockMode a : kAllModes) {
    for (LockMode b : kAllModes) {
      const LockMode sup = Supremum(a, b);
      EXPECT_TRUE(Covers(sup, a))
          << LockModeName(sup) << " !covers " << LockModeName(a);
      EXPECT_TRUE(Covers(sup, b))
          << LockModeName(sup) << " !covers " << LockModeName(b);
    }
  }
}

TEST(LockModeTest, SupremumWellKnownCases) {
  EXPECT_EQ(Supremum(LockMode::kS, LockMode::kIX), LockMode::kSIX);
  EXPECT_EQ(Supremum(LockMode::kIS, LockMode::kIX), LockMode::kIX);
  EXPECT_EQ(Supremum(LockMode::kIS, LockMode::kS), LockMode::kS);
  EXPECT_EQ(Supremum(LockMode::kU, LockMode::kIX), LockMode::kX);
  EXPECT_EQ(Supremum(LockMode::kU, LockMode::kX), LockMode::kX);
  EXPECT_EQ(Supremum(LockMode::kNL, LockMode::kS), LockMode::kS);
}

TEST(LockModeTest, CoversIsReflexiveAndAntisymmetricish) {
  for (LockMode a : kAllModes) {
    EXPECT_TRUE(Covers(a, a)) << LockModeName(a);
    EXPECT_TRUE(Covers(LockMode::kX, a));
    EXPECT_TRUE(Covers(a, LockMode::kNL));
  }
  EXPECT_FALSE(Covers(LockMode::kS, LockMode::kIX));
  EXPECT_FALSE(Covers(LockMode::kIX, LockMode::kS));
  EXPECT_TRUE(Covers(LockMode::kSIX, LockMode::kS));
  EXPECT_TRUE(Covers(LockMode::kSIX, LockMode::kIX));
}

TEST(LockModeTest, CoversImpliesNoIncrementalStrength) {
  // If held covers wanted, the supremum is the held mode itself.
  for (LockMode held : kAllModes) {
    for (LockMode wanted : kAllModes) {
      if (Covers(held, wanted)) {
        EXPECT_EQ(Supremum(held, wanted), held)
            << LockModeName(held) << " covers " << LockModeName(wanted);
      }
    }
  }
}

TEST(LockModeTest, IntentionDerivation) {
  EXPECT_EQ(IntentionFor(LockMode::kS), LockMode::kIS);
  EXPECT_EQ(IntentionFor(LockMode::kIS), LockMode::kIS);
  EXPECT_EQ(IntentionFor(LockMode::kX), LockMode::kIX);
  EXPECT_EQ(IntentionFor(LockMode::kIX), LockMode::kIX);
  EXPECT_EQ(IntentionFor(LockMode::kSIX), LockMode::kIX);
  EXPECT_EQ(IntentionFor(LockMode::kU), LockMode::kIX);
}

TEST(LockModeTest, IntentionModesAreMutuallyCompatible) {
  // The root cause of SLI's opportunity: every transaction takes intention
  // locks high in the hierarchy and they never conflict with each other.
  for (LockMode a : {LockMode::kIS, LockMode::kIX}) {
    for (LockMode b : {LockMode::kIS, LockMode::kIX}) {
      EXPECT_TRUE(Compatible(a, b));
    }
  }
}

TEST(LockModeTest, HeritableModesMatchPaper) {
  // Paper §4.2 criterion 3: "held in a shared mode (e.g. S, IS, IX)".
  EXPECT_TRUE(IsHeritableMode(LockMode::kS));
  EXPECT_TRUE(IsHeritableMode(LockMode::kIS));
  EXPECT_TRUE(IsHeritableMode(LockMode::kIX));
  EXPECT_FALSE(IsHeritableMode(LockMode::kX));
  EXPECT_FALSE(IsHeritableMode(LockMode::kSIX));
  EXPECT_FALSE(IsHeritableMode(LockMode::kU));
  EXPECT_FALSE(IsHeritableMode(LockMode::kNL));
}

TEST(LockModeTest, HeritableModesAreMutuallyCompatibleAtIntentLevel) {
  // Safety property behind SLI: heritable intent modes cannot conflict,
  // except S with IX (which is why criterion 4/invalidations exist for S).
  EXPECT_TRUE(Compatible(LockMode::kIS, LockMode::kIX));
  EXPECT_TRUE(Compatible(LockMode::kIX, LockMode::kIS));
  EXPECT_TRUE(Compatible(LockMode::kS, LockMode::kIS));
}

TEST(LockModeTest, ParentCoverage) {
  EXPECT_TRUE(ParentCoversChild(LockMode::kX, LockMode::kX));
  EXPECT_TRUE(ParentCoversChild(LockMode::kX, LockMode::kS));
  EXPECT_TRUE(ParentCoversChild(LockMode::kS, LockMode::kS));
  EXPECT_FALSE(ParentCoversChild(LockMode::kS, LockMode::kX));
  EXPECT_TRUE(ParentCoversChild(LockMode::kSIX, LockMode::kS));
  EXPECT_FALSE(ParentCoversChild(LockMode::kSIX, LockMode::kX));
  EXPECT_FALSE(ParentCoversChild(LockMode::kIX, LockMode::kS));
  EXPECT_FALSE(ParentCoversChild(LockMode::kIS, LockMode::kS));
}

// ---- bitmask tables vs the Gray & Reuter reference matrix ----

// Reference compatibility matrix, spelled out independently of the header's
// tables (Gray & Reuter, Transaction Processing, §7.8, with the asymmetric
// U treatment): ref[held][requested].
// held\req            NL     IS     IX     S      SIX    U      X
const bool kReference[kNumLockModes][kNumLockModes] = {
    /* NL  */ {true,  true,  true,  true,  true,  true,  true},
    /* IS  */ {true,  true,  true,  true,  true,  true,  false},
    /* IX  */ {true,  true,  true,  false, false, false, false},
    /* S   */ {true,  true,  false, true,  false, true,  false},
    /* SIX */ {true,  true,  false, false, false, false, false},
    /* U   */ {true,  true,  false, false, false, false, false},
    /* X   */ {true,  false, false, false, false, false, false},
};

TEST(LockModeBitmaskTest, CompatibleMatchesReferenceForAllPairs) {
  for (LockMode held : kAllModes) {
    for (LockMode req : kAllModes) {
      EXPECT_EQ(Compatible(held, req),
                kReference[ModeIdx(held)][ModeIdx(req)])
          << "held=" << LockModeName(held) << " req=" << LockModeName(req);
    }
  }
}

TEST(LockModeBitmaskTest, CompatMaskBitsMatchReferenceForAllPairs) {
  for (LockMode req : kAllModes) {
    for (LockMode held : kAllModes) {
      const bool bit = (kCompatMask[ModeIdx(req)] >> ModeIdx(held)) & 1u;
      EXPECT_EQ(bit, kReference[ModeIdx(held)][ModeIdx(req)])
          << "held=" << LockModeName(held) << " req=" << LockModeName(req);
    }
    // ConflictMask is the exact complement within the mode universe.
    EXPECT_EQ(ConflictMask(req),
              static_cast<uint8_t>(~kCompatMask[ModeIdx(req)] & kAllModesMask));
  }
}

TEST(LockModeBitmaskTest, CompatibleWithAllMatchesBruteForceForAllMasks) {
  // Every possible held-mode set × every requested mode: the single-AND
  // test must agree with checking each member mode individually.
  for (unsigned mask = 0; mask <= kAllModesMask; ++mask) {
    for (LockMode req : kAllModes) {
      bool expect = true;
      for (LockMode held : kAllModes) {
        if ((mask >> ModeIdx(held)) & 1u) {
          expect = expect && kReference[ModeIdx(held)][ModeIdx(req)];
        }
      }
      EXPECT_EQ(CompatibleWithAll(static_cast<uint8_t>(mask), req), expect)
          << "mask=" << mask << " req=" << LockModeName(req);
    }
  }
}

TEST(LockModeBitmaskTest, SupremumOfMaskMatchesBruteForceForAllMasks) {
  for (unsigned mask = 0; mask <= kAllModesMask; ++mask) {
    LockMode expect = LockMode::kNL;
    for (LockMode m : kAllModes) {
      if ((mask >> ModeIdx(m)) & 1u) expect = Supremum(expect, m);
    }
    EXPECT_EQ(kSupremumOfMask[mask], expect) << "mask=" << mask;
  }
}

TEST(LockModeBitmaskTest, CoversMaskAgreesWithCovers) {
  for (LockMode held : kAllModes) {
    for (LockMode wanted : kAllModes) {
      const bool bit = (kCoversMask[ModeIdx(held)] >> ModeIdx(wanted)) & 1u;
      EXPECT_EQ(bit, Covers(held, wanted))
          << LockModeName(held) << " / " << LockModeName(wanted);
    }
  }
}

TEST(LockModeBitmaskTest, ModeBitsAreDistinctOneHot) {
  uint8_t seen = 0;
  for (LockMode m : kAllModes) {
    EXPECT_EQ(std::popcount(ModeBit(m)), 1);
    EXPECT_EQ(seen & ModeBit(m), 0) << LockModeName(m);
    seen |= ModeBit(m);
  }
  EXPECT_EQ(seen, kAllModesMask);
}

// ---- LockId hierarchy ----

TEST(LockIdTest, ParentChain) {
  const LockId row = LockId::Row(1, 2, 3, 4);
  const LockId page = row.Parent();
  EXPECT_EQ(page, LockId::Page(1, 2, 3));
  const LockId table = page.Parent();
  EXPECT_EQ(table, LockId::Table(1, 2));
  const LockId db = table.Parent();
  EXPECT_EQ(db, LockId::Database(1));
  EXPECT_FALSE(db.HasParent());
  EXPECT_TRUE(row.HasParent());
}

TEST(LockIdTest, EqualityDistinguishesLevels) {
  EXPECT_FALSE(LockId::Table(1, 2) == LockId::Page(1, 2, 0));
  EXPECT_TRUE(LockId::Table(1, 2) == LockId::Table(1, 2));
  EXPECT_FALSE(LockId::Row(1, 2, 3, 4) == LockId::Row(1, 2, 3, 5));
}

TEST(LockIdTest, HashSpreads) {
  // Not a strict property, but hashes of adjacent rows should not collide
  // in bulk: count collisions over a window.
  int collisions = 0;
  for (uint32_t i = 0; i < 1000; ++i) {
    const uint64_t h1 = LockId::Row(0, 1, 10, i).Hash();
    const uint64_t h2 = LockId::Row(0, 1, 10, i + 1).Hash();
    if ((h1 & 0x3fff) == (h2 & 0x3fff)) ++collisions;
  }
  EXPECT_LT(collisions, 10);
}

TEST(LockIdTest, ToStringShowsLevel) {
  EXPECT_NE(LockId::Row(1, 2, 3, 4).ToString().find("row"),
            std::string::npos);
  EXPECT_NE(LockId::Table(1, 2).ToString().find("table"), std::string::npos);
}

}  // namespace
}  // namespace slidb
