// Engine facade integration tests: transactional CRUD with hierarchical
// locking, undo on abort, index maintenance, SLI end-to-end through the
// transaction manager, and concurrent correctness.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "src/engine/database.h"

namespace slidb {
namespace {

std::span<const uint8_t> Bytes(const std::string& s) {
  return {reinterpret_cast<const uint8_t*>(s.data()), s.size()};
}

DatabaseOptions TestOptions() {
  DatabaseOptions o;
  o.buffer.num_frames = 1024;
  o.lock.deadlock_interval_us = 300;
  o.lock.lock_timeout_us = 2'000'000;
  o.log.flush_interval_us = 50;
  return o;
}

TEST(EngineTest, InsertReadUpdateDelete) {
  Database db(TestOptions());
  const TableId t = db.CreateTable("t");
  auto agent = db.CreateAgent();

  db.Begin(agent.get());
  Rid rid;
  ASSERT_TRUE(db.Insert(agent.get(), t, Bytes("hello!"), &rid).ok());
  ASSERT_TRUE(db.Commit(agent.get()).ok());

  db.Begin(agent.get());
  char buf[6];
  ASSERT_TRUE(db.Read(agent.get(), t, rid, buf, 6).ok());
  EXPECT_EQ(std::memcmp(buf, "hello!", 6), 0);
  ASSERT_TRUE(db.Update(agent.get(), t, rid, Bytes("HELLO!")).ok());
  ASSERT_TRUE(db.Commit(agent.get()).ok());

  db.Begin(agent.get());
  ASSERT_TRUE(db.Delete(agent.get(), t, rid).ok());
  ASSERT_TRUE(db.Commit(agent.get()).ok());

  db.Begin(agent.get());
  EXPECT_TRUE(db.Read(agent.get(), t, rid, buf, 6).IsNotFound());
  ASSERT_TRUE(db.Commit(agent.get()).ok());
}

TEST(EngineTest, AbortUndoesInsert) {
  Database db(TestOptions());
  const TableId t = db.CreateTable("t");
  auto agent = db.CreateAgent();

  db.Begin(agent.get());
  Rid rid;
  ASSERT_TRUE(db.Insert(agent.get(), t, Bytes("ghost!"), &rid).ok());
  db.Abort(agent.get());

  db.Begin(agent.get());
  char buf[6];
  EXPECT_TRUE(db.Read(agent.get(), t, rid, buf, 6).IsNotFound());
  ASSERT_TRUE(db.Commit(agent.get()).ok());
}

TEST(EngineTest, AbortUndoesUpdate) {
  Database db(TestOptions());
  const TableId t = db.CreateTable("t");
  auto agent = db.CreateAgent();

  db.Begin(agent.get());
  Rid rid;
  ASSERT_TRUE(db.Insert(agent.get(), t, Bytes("before"), &rid).ok());
  ASSERT_TRUE(db.Commit(agent.get()).ok());

  db.Begin(agent.get());
  ASSERT_TRUE(db.Update(agent.get(), t, rid, Bytes("after!")).ok());
  db.Abort(agent.get());

  db.Begin(agent.get());
  char buf[6];
  ASSERT_TRUE(db.Read(agent.get(), t, rid, buf, 6).ok());
  EXPECT_EQ(std::memcmp(buf, "before", 6), 0);
  ASSERT_TRUE(db.Commit(agent.get()).ok());
}

TEST(EngineTest, AbortUndoesDeletePreservingRid) {
  Database db(TestOptions());
  const TableId t = db.CreateTable("t");
  auto agent = db.CreateAgent();

  db.Begin(agent.get());
  Rid rid;
  ASSERT_TRUE(db.Insert(agent.get(), t, Bytes("keeper"), &rid).ok());
  ASSERT_TRUE(db.Commit(agent.get()).ok());

  db.Begin(agent.get());
  ASSERT_TRUE(db.Delete(agent.get(), t, rid).ok());
  db.Abort(agent.get());

  // The record must be back under its ORIGINAL rid.
  db.Begin(agent.get());
  char buf[6];
  ASSERT_TRUE(db.Read(agent.get(), t, rid, buf, 6).ok());
  EXPECT_EQ(std::memcmp(buf, "keeper", 6), 0);
  ASSERT_TRUE(db.Commit(agent.get()).ok());
}

TEST(EngineTest, IndexMaintenanceWithUndo) {
  Database db(TestOptions());
  const TableId t = db.CreateTable("t");
  const IndexId idx = db.CreateIndex(t, "pk", IndexKind::kBTree, true);
  auto agent = db.CreateAgent();

  db.Begin(agent.get());
  Rid rid;
  ASSERT_TRUE(db.Insert(agent.get(), t, Bytes("indexed"), &rid).ok());
  ASSERT_TRUE(db.IndexInsert(agent.get(), idx, 42, rid.ToU64()).ok());
  ASSERT_TRUE(db.Commit(agent.get()).ok());

  uint64_t v;
  ASSERT_TRUE(db.IndexLookup(idx, 42, &v).ok());
  EXPECT_EQ(v, rid.ToU64());

  // Abort rolls the index entry back out.
  db.Begin(agent.get());
  Rid rid2;
  ASSERT_TRUE(db.Insert(agent.get(), t, Bytes("aborted"), &rid2).ok());
  ASSERT_TRUE(db.IndexInsert(agent.get(), idx, 43, rid2.ToU64()).ok());
  db.Abort(agent.get());
  EXPECT_TRUE(db.IndexLookup(idx, 43, &v).IsNotFound());

  // Unique index rejects duplicates.
  db.Begin(agent.get());
  EXPECT_TRUE(db.IndexInsert(agent.get(), idx, 42, 999).IsKeyExists());
  db.Abort(agent.get());
  ASSERT_TRUE(db.IndexLookup(idx, 42, &v).ok());
  EXPECT_EQ(v, rid.ToU64());
}

TEST(EngineTest, IndexRemoveUndoneOnAbort) {
  Database db(TestOptions());
  const TableId t = db.CreateTable("t");
  const IndexId idx = db.CreateIndex(t, "sk", IndexKind::kHash, false);
  auto agent = db.CreateAgent();

  db.Begin(agent.get());
  ASSERT_TRUE(db.IndexInsert(agent.get(), idx, 1, 100).ok());
  ASSERT_TRUE(db.Commit(agent.get()).ok());

  db.Begin(agent.get());
  ASSERT_TRUE(db.IndexRemove(agent.get(), idx, 1, 100).ok());
  db.Abort(agent.get());

  uint64_t v;
  ASSERT_TRUE(db.IndexLookup(idx, 1, &v).ok());
  EXPECT_EQ(v, 100u);
}

TEST(EngineTest, WriteConflictSerializes) {
  Database db(TestOptions());
  const TableId t = db.CreateTable("t");
  auto a1 = db.CreateAgent();
  auto a2 = db.CreateAgent();

  db.Begin(a1.get());
  Rid rid;
  uint64_t zero = 0;
  ASSERT_TRUE(db.Insert(a1.get(), t,
                        {reinterpret_cast<const uint8_t*>(&zero), 8}, &rid)
                  .ok());
  ASSERT_TRUE(db.Commit(a1.get()).ok());

  // Concurrent read-modify-write increments: must not lose updates.
  constexpr int kIters = 200;
  auto worker = [&](AgentContext* agent) {
    for (int i = 0; i < kIters; ++i) {
      for (;;) {
        db.Begin(agent);
        uint64_t v;
        // Lock X up front (SELECT FOR UPDATE) to avoid upgrade deadlocks.
        Status st = db.LockRowExclusive(agent, t, rid);
        if (st.ok()) st = db.Read(agent, t, rid, &v, 8);
        if (st.ok()) {
          ++v;
          st = db.Update(agent, t, rid,
                         {reinterpret_cast<const uint8_t*>(&v), 8});
        }
        if (st.ok()) {
          ASSERT_TRUE(db.Commit(agent).ok());
          break;
        }
        db.Abort(agent);
        ASSERT_TRUE(st.retryable()) << st.ToString();
      }
    }
  };
  std::thread t1(worker, a1.get());
  std::thread t2(worker, a2.get());
  t1.join();
  t2.join();

  db.Begin(a1.get());
  uint64_t final_v;
  ASSERT_TRUE(db.Read(a1.get(), t, rid, &final_v, 8).ok());
  ASSERT_TRUE(db.Commit(a1.get()).ok());
  EXPECT_EQ(final_v, 2u * kIters);
}

TEST(EngineTest, SliEndToEndThroughTransactionManager) {
  DatabaseOptions o = TestOptions();
  o.lock.enable_sli = true;
  o.lock.sli_require_hot = false;  // deterministic inheritance in this test
  Database db(o);
  const TableId t = db.CreateTable("t");
  auto agent = db.CreateAgent();

  db.Begin(agent.get());
  Rid rid;
  ASSERT_TRUE(db.Insert(agent.get(), t, Bytes("sli-row!"), &rid).ok());
  ASSERT_TRUE(db.Commit(agent.get()).ok());

  CounterSet counters;
  {
    ScopedCounterSet routed(&counters);
    // Consecutive read transactions on the same agent: the table IS and
    // database IS locks must flow through SLI instead of the lock manager.
    for (int i = 0; i < 10; ++i) {
      db.Begin(agent.get());
      char buf[8];
      ASSERT_TRUE(db.Read(agent.get(), t, rid, buf, 8).ok());
      ASSERT_TRUE(db.Commit(agent.get()).ok());
    }
  }
  EXPECT_GT(counters.Get(Counter::kSliInherited), 0u);
  EXPECT_GT(counters.Get(Counter::kSliReclaimed), 0u);
}

TEST(EngineTest, TableGranularityOptionTakesTableLocks) {
  DatabaseOptions o = TestOptions();
  o.row_locking = false;
  Database db(o);
  const TableId t = db.CreateTable("t");
  auto agent = db.CreateAgent();

  db.Begin(agent.get());
  Rid rid;
  ASSERT_TRUE(db.Insert(agent.get(), t, Bytes("coarse"), &rid).ok());
  LockClient& c = agent->txn().lock_client();
  LockRequest* r = c.cache().Find(LockId::Table(0, t));
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->mode, LockMode::kX);
  // No row lock taken.
  EXPECT_EQ(c.cache().Find(LockId::Row(0, t, rid.page_no, rid.slot)), nullptr);
  ASSERT_TRUE(db.Commit(agent.get()).ok());
}

TEST(EngineTest, ConcurrentAgentsWithSliKeepBalanceInvariant) {
  // Mini TPC-B-like invariant check: total of all account balances is
  // conserved by transfer transactions, with SLI on.
  DatabaseOptions o = TestOptions();
  o.lock.enable_sli = true;
  Database db(o);
  const TableId t = db.CreateTable("accounts");
  const IndexId idx = db.CreateIndex(t, "pk", IndexKind::kHash, true);

  constexpr int kAccounts = 64;
  constexpr int64_t kInitial = 1000;
  auto setup = db.CreateAgent();
  db.Begin(setup.get());
  for (int i = 0; i < kAccounts; ++i) {
    int64_t bal = kInitial;
    Rid rid;
    ASSERT_TRUE(db.Insert(setup.get(), t,
                          {reinterpret_cast<const uint8_t*>(&bal), 8}, &rid)
                    .ok());
    ASSERT_TRUE(db.IndexInsert(setup.get(), idx, i, rid.ToU64()).ok());
  }
  ASSERT_TRUE(db.Commit(setup.get()).ok());

  constexpr int kThreads = 4;
  constexpr int kTransfers = 300;
  std::vector<std::unique_ptr<AgentContext>> agents;
  for (int i = 0; i < kThreads; ++i) agents.push_back(db.CreateAgent(i));
  std::vector<std::thread> threads;
  for (int ti = 0; ti < kThreads; ++ti) {
    threads.emplace_back([&, ti] {
      AgentContext* agent = agents[ti].get();
      Rng rng(ti + 99);
      for (int i = 0; i < kTransfers; ++i) {
        const uint64_t from = rng.Uniform(0, kAccounts - 1);
        uint64_t to = rng.Uniform(0, kAccounts - 1);
        if (to == from) to = (to + 1) % kAccounts;
        // Deadlock avoidance: lock in account-id order.
        const uint64_t lo = std::min(from, to), hi = std::max(from, to);
        for (;;) {
          db.Begin(agent);
          uint64_t rid_lo, rid_hi;
          ASSERT_TRUE(db.IndexLookup(idx, lo, &rid_lo).ok());
          ASSERT_TRUE(db.IndexLookup(idx, hi, &rid_hi).ok());
          int64_t bal_lo, bal_hi;
          Status st = db.LockRowExclusive(agent, t, Rid::FromU64(rid_lo));
          if (st.ok()) st = db.LockRowExclusive(agent, t, Rid::FromU64(rid_hi));
          if (st.ok()) st = db.Read(agent, t, Rid::FromU64(rid_lo), &bal_lo, 8);
          if (st.ok()) st = db.Read(agent, t, Rid::FromU64(rid_hi), &bal_hi, 8);
          if (st.ok()) {
            const int64_t amount = static_cast<int64_t>(rng.Uniform(1, 50));
            bal_lo -= amount;
            bal_hi += amount;
            st = db.Update(agent, t, Rid::FromU64(rid_lo),
                           {reinterpret_cast<const uint8_t*>(&bal_lo), 8});
            if (st.ok()) {
              st = db.Update(agent, t, Rid::FromU64(rid_hi),
                             {reinterpret_cast<const uint8_t*>(&bal_hi), 8});
            }
          }
          if (st.ok()) {
            ASSERT_TRUE(db.Commit(agent).ok());
            break;
          }
          db.Abort(agent);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  // Invariant: sum of balances unchanged.
  db.Begin(setup.get());
  int64_t total = 0;
  for (int i = 0; i < kAccounts; ++i) {
    uint64_t rid;
    ASSERT_TRUE(db.IndexLookup(idx, i, &rid).ok());
    int64_t bal;
    ASSERT_TRUE(db.Read(setup.get(), t, Rid::FromU64(rid), &bal, 8).ok());
    total += bal;
  }
  ASSERT_TRUE(db.Commit(setup.get()).ok());
  EXPECT_EQ(total, static_cast<int64_t>(kAccounts) * kInitial);
}

}  // namespace
}  // namespace slidb
