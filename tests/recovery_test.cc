// Crash-recovery tests: the checksummed wire format, log devices with
// torn-write injection, the RecoveryManager's committed-prefix contract,
// and the end-to-end crash → recover → verify loop through the engine.
//
// The central harness is the torn-tail sweep: capture the exact durable
// byte stream of a known workload, truncate it at EVERY byte offset, and
// assert that recovery always reconstructs exactly the state of some
// committed prefix — no lost committed transaction, no ghost uncommitted
// mutation, with log.checksum_fail firing precisely when the cut lands
// inside a record.
//
// Multi-threaded sections follow the ROADMAP single-CPU guidance: thread
// counts and iteration budgets scale with hardware_concurrency(), and the
// assertions are interleaving-independent (set membership and conservation
// invariants), so the tests stay deterministic on one-context hosts.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <map>
#include <set>
#include <thread>
#include <unordered_set>
#include <vector>

#include "src/engine/checkpointer.h"
#include "src/engine/database.h"
#include "src/log/log_device.h"
#include "src/log/log_manager.h"
#include "src/log/log_record.h"
#include "src/log/recovery.h"
#include "src/stats/counters.h"
#include "src/util/crc32c.h"
#include "src/util/rng.h"

namespace slidb {
namespace {

// ---- shared fixtures --------------------------------------------------------

std::span<const uint8_t> Bytes(const std::string& s) {
  return {reinterpret_cast<const uint8_t*>(s.data()), s.size()};
}

DatabaseOptions TestOptions() {
  DatabaseOptions o;
  o.buffer.num_frames = 1024;
  o.lock.deadlock_interval_us = 300;
  o.lock.lock_timeout_us = 2'000'000;
  o.log.flush_interval_us = 50;
  return o;
}

/// Crash-injection test double: an InMemoryLogDevice installed as the
/// database's flush_sink. Arm(extra) emulates power loss after `extra`
/// more durable bytes — the device write in flight is torn mid-record and
/// everything later vanishes, exactly what the recovery scan must survive.
struct CrashSink {
  InMemoryLogDevice device;

  void Install(LogOptions* o) { AttachLogDevice(o, &device); }
  void Arm(uint64_t extra_bytes) { device.CrashAfter(extra_bytes); }
  std::vector<uint8_t> Stream() const {
    std::vector<uint8_t> out;
    EXPECT_TRUE(device.ReadAll(&out).ok());
    return out;
  }
};

/// Catalog + storage substrate for replaying a log without a full engine
/// (the sweep builds thousands of these; keep the pool tiny).
struct RecoveryTarget {
  Volume volume;
  BufferPool pool;
  Catalog catalog;

  RecoveryTarget() : pool(&volume, SmallPool()) {}

  static BufferPoolOptions SmallPool() {
    BufferPoolOptions o;
    o.num_frames = 64;
    return o;
  }

  TableId AddTable(const char* name = "t") {
    return catalog.AddTable(name, std::make_unique<HeapFile>(&pool));
  }
  IndexId AddBTree(TableId table, const char* name = "idx") {
    return catalog.AddIndex(table, name, IndexKind::kBTree, /*unique=*/false);
  }
  IndexId AddHash(TableId table, const char* name = "hash") {
    return catalog.AddIndex(table, name, IndexKind::kHash, /*unique=*/false);
  }
};

using RowMap = std::map<uint64_t, std::string>;          // rid -> bytes
using IndexSet = std::multiset<std::pair<uint64_t, uint64_t>>;

RowMap DumpHeap(Catalog& catalog, TableId table) {
  RowMap out;
  EXPECT_TRUE(catalog.table(table)
                  .heap->Scan([&](Rid rid, std::span<const uint8_t> rec) {
                    out[rid.ToU64()] = std::string(
                        reinterpret_cast<const char*>(rec.data()), rec.size());
                  })
                  .ok());
  return out;
}

IndexSet DumpBTree(Catalog& catalog, IndexId index) {
  IndexSet out;
  catalog.index(index).btree->Scan(0, UINT64_MAX,
                                   [&](uint64_t k, uint64_t v) {
                                     out.emplace(k, v);
                                     return true;
                                   });
  return out;
}

/// Committed-prefix shadow: table rows + index entries after each commit.
struct ShadowState {
  RowMap rows;
  IndexSet index;
  bool operator==(const ShadowState&) const = default;
};

// ---- CRC32C and wire format -------------------------------------------------

TEST(Crc32cTest, KnownVectorsAndComposition) {
  // RFC 3720 / standard CRC32C check value.
  EXPECT_EQ(Crc32c(0, "123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32c(0, "", 0), 0u);
  // 32 zero bytes (iSCSI test vector).
  uint8_t zeros[32] = {};
  EXPECT_EQ(Crc32c(0, zeros, sizeof(zeros)), 0x8A9136AAu);
  // Incremental composition must equal one-shot.
  const std::string s = "speculative lock inheritance";
  for (size_t cut = 0; cut <= s.size(); ++cut) {
    EXPECT_EQ(Crc32c(Crc32c(0, s.data(), cut), s.data() + cut, s.size() - cut),
              Crc32c(0, s.data(), s.size()));
  }
}

/// Serialize one sealed record onto `stream`.
void AppendRecord(std::vector<uint8_t>* stream, uint64_t txn,
                  LogRecordType type, const void* payload,
                  uint32_t payload_len) {
  const LogRecordHeader hdr =
      MakeLogRecordHeader(txn, type, stream->size(), payload, payload_len);
  const auto* h = reinterpret_cast<const uint8_t*>(&hdr);
  stream->insert(stream->end(), h, h + sizeof(hdr));
  const auto* p = static_cast<const uint8_t*>(payload);
  if (payload_len > 0) stream->insert(stream->end(), p, p + payload_len);
}

TEST(LogRecordTest, SealDecodeRoundTrip) {
  std::vector<uint8_t> stream;
  const std::string body = "after-image bytes";
  AppendRecord(&stream, 42, LogRecordType::kUpdate, body.data(),
               static_cast<uint32_t>(body.size()));
  AppendRecord(&stream, 43, LogRecordType::kCommit, nullptr, 0);

  LogRecordHeader hdr;
  const uint8_t* payload = nullptr;
  ASSERT_EQ(DecodeLogRecord(stream.data(), stream.size(), 0, 0, &hdr,
                            &payload),
            LogScanStatus::kOk);
  EXPECT_EQ(hdr.txn_id, 42u);
  EXPECT_EQ(hdr.type, static_cast<uint8_t>(LogRecordType::kUpdate));
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(payload),
                        hdr.payload_len),
            body);
  const size_t second = sizeof(LogRecordHeader) + body.size();
  ASSERT_EQ(DecodeLogRecord(stream.data(), stream.size(), second, 0, &hdr,
                            &payload),
            LogScanStatus::kOk);
  EXPECT_EQ(hdr.txn_id, 43u);
  EXPECT_EQ(DecodeLogRecord(stream.data(), stream.size(), stream.size(), 0,
                            &hdr, &payload),
            LogScanStatus::kEndOfStream);
}

TEST(LogRecordTest, EveryBitFlipIsDetected) {
  std::vector<uint8_t> stream;
  const std::string body = "payload under checksum";
  AppendRecord(&stream, 7, LogRecordType::kInsert, body.data(),
               static_cast<uint32_t>(body.size()));
  LogRecordHeader hdr;
  const uint8_t* payload = nullptr;
  ASSERT_EQ(DecodeLogRecord(stream.data(), stream.size(), 0, 0, &hdr,
                            &payload),
            LogScanStatus::kOk);
  for (size_t byte = 0; byte < stream.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> corrupt = stream;
      corrupt[byte] ^= static_cast<uint8_t>(1u << bit);
      EXPECT_NE(DecodeLogRecord(corrupt.data(), corrupt.size(), 0, 0, &hdr,
                                &payload),
                LogScanStatus::kOk)
          << "flip at byte " << byte << " bit " << bit << " went undetected";
    }
  }
}

TEST(LogRecordTest, RecordAtWrongOffsetRejected) {
  // A bytewise-valid record landing at the wrong LSN (stale ring bytes,
  // misdirected write) must fail the self-LSN check: the CRC covers the
  // lsn field, so relocation cannot be patched up.
  std::vector<uint8_t> stream(16, 0);  // 16 bytes of junk prefix
  const LogRecordHeader hdr =
      MakeLogRecordHeader(9, LogRecordType::kCommit, /*lsn=*/0, nullptr, 0);
  const auto* h = reinterpret_cast<const uint8_t*>(&hdr);
  stream.insert(stream.end(), h, h + sizeof(hdr));
  LogRecordHeader out;
  const uint8_t* payload = nullptr;
  EXPECT_EQ(DecodeLogRecord(stream.data(), stream.size(), 16, 0, &out,
                            &payload),
            LogScanStatus::kBadLsn);
}

// ---- log devices ------------------------------------------------------------

TEST(LogDeviceTest, InMemoryTornWriteInjection) {
  InMemoryLogDevice dev;
  const std::vector<uint8_t> chunk(100, 0xAB);
  ASSERT_TRUE(dev.Append(chunk.data(), chunk.size(), 0).ok());
  dev.CrashAfter(40);
  ASSERT_TRUE(dev.Append(chunk.data(), chunk.size(), 100).ok());
  EXPECT_TRUE(dev.crashed());
  EXPECT_EQ(dev.DurableBytes(), 140u);  // 100 + torn 40-byte prefix
  // Post-crash writes vanish entirely.
  ASSERT_TRUE(dev.Append(chunk.data(), chunk.size(), 200).ok());
  EXPECT_EQ(dev.DurableBytes(), 140u);
  std::vector<uint8_t> back;
  ASSERT_TRUE(dev.ReadAll(&back).ok());
  EXPECT_EQ(back.size(), 140u);
}

TEST(LogDeviceTest, FileDeviceRoundTrip) {
  const std::string path = "slidb_file_device_test.log";
  {
    std::unique_ptr<FileLogDevice> dev;
    ASSERT_TRUE(FileLogDevice::Open(path, /*fsync_every_n_flushes=*/1, &dev)
                    .ok());
    std::vector<uint8_t> a(64), b(32);
    for (size_t i = 0; i < a.size(); ++i) a[i] = static_cast<uint8_t>(i);
    for (size_t i = 0; i < b.size(); ++i) b[i] = static_cast<uint8_t>(200 + i);
    ASSERT_TRUE(dev->Append(a.data(), a.size(), 0).ok());
    ASSERT_TRUE(dev->Append(b.data(), b.size(), 64).ok());
    EXPECT_EQ(dev->DurableBytes(), 96u);
    std::vector<uint8_t> back;
    ASSERT_TRUE(dev->ReadAll(&back).ok());
    ASSERT_EQ(back.size(), 96u);
    EXPECT_EQ(back[0], 0u);
    EXPECT_EQ(back[64], 200u);
  }
  std::vector<uint8_t> reread;
  ASSERT_TRUE(FileLogDevice::ReadFile(path, &reread).ok());
  EXPECT_EQ(reread.size(), 96u);
  std::remove(path.c_str());
}

TEST(LogDeviceTest, FileDeviceCoalescedFsyncRoundTrip) {
  // fsync_every_n_flushes = 3: flushes 3 and 6 sync, 7 leaves an unsynced
  // tail that the destructor (clean shutdown) must still harden. The byte
  // stream and DurableBytes accounting are identical to per-flush fsync.
  const std::string path = "slidb_file_device_coalesce.log";
  constexpr size_t kChunk = 48;
  {
    std::unique_ptr<FileLogDevice> dev;
    ASSERT_TRUE(FileLogDevice::Open(path, /*fsync_every_n_flushes=*/3, &dev)
                    .ok());
    std::vector<uint8_t> chunk(kChunk);
    Lsn lsn = 0;
    for (int i = 0; i < 7; ++i) {
      for (size_t b = 0; b < kChunk; ++b) {
        chunk[b] = static_cast<uint8_t>(i * 31 + b);
      }
      ASSERT_TRUE(dev->Append(chunk.data(), chunk.size(), lsn).ok());
      lsn += chunk.size();
    }
    EXPECT_EQ(dev->DurableBytes(), 7 * kChunk);
    std::vector<uint8_t> back;
    ASSERT_TRUE(dev->ReadAll(&back).ok());
    ASSERT_EQ(back.size(), 7 * kChunk);
    EXPECT_EQ(back[6 * kChunk], static_cast<uint8_t>(6 * 31));
  }
  std::vector<uint8_t> reread;
  ASSERT_TRUE(FileLogDevice::ReadFile(path, &reread).ok());
  EXPECT_EQ(reread.size(), 7 * kChunk);
  std::remove(path.c_str());
}

// ---- recovery scan ----------------------------------------------------------

/// Append a heap insert redo record for (table, rid, image).
void AppendHeapInsert(std::vector<uint8_t>* stream, uint64_t txn,
                      uint32_t table, Rid rid, const std::string& image) {
  std::vector<uint8_t> payload(sizeof(HeapRedoPayload) + image.size());
  HeapRedoPayload row{};
  row.table = table;
  row.slot = rid.slot;
  row.page_no = rid.page_no;
  std::memcpy(payload.data(), &row, sizeof(row));
  std::memcpy(payload.data() + sizeof(row), image.data(), image.size());
  AppendRecord(stream, txn, LogRecordType::kInsert, payload.data(),
               static_cast<uint32_t>(payload.size()));
}

TEST(RecoveryScanTest, CleanTornAndCorruptTails) {
  std::vector<uint8_t> stream;
  AppendRecord(&stream, 1, LogRecordType::kBegin, nullptr, 0);
  AppendHeapInsert(&stream, 1, 0, Rid{0, 0}, "row-1.0.");
  AppendRecord(&stream, 1, LogRecordType::kCommit, nullptr, 0);
  const size_t committed_end = stream.size();
  AppendRecord(&stream, 2, LogRecordType::kBegin, nullptr, 0);
  AppendHeapInsert(&stream, 2, 0, Rid{0, 1}, "row-2.0.");

  {  // Clean stream: no torn tail, txn 1 committed, txn 2 a ghost.
    RecoveryManager rm(stream);
    const RecoveryReport& r = rm.Scan();
    EXPECT_FALSE(r.torn_tail);
    EXPECT_EQ(r.tail_status, LogScanStatus::kEndOfStream);
    EXPECT_EQ(r.records_scanned, 5u);
    EXPECT_EQ(r.committed_txns, 1u);
    EXPECT_EQ(r.uncommitted_txns, 1u);
    EXPECT_TRUE(rm.IsCommitted(1));
    EXPECT_FALSE(rm.IsCommitted(2));
  }
  {  // Truncation inside the tail record's header.
    CounterSet counters;
    ScopedCounterSet routed(&counters);
    RecoveryManager rm(std::vector<uint8_t>(
        stream.begin(), stream.begin() + committed_end + 10));
    const RecoveryReport& r = rm.Scan();
    EXPECT_TRUE(r.torn_tail);
    EXPECT_EQ(r.tail_status, LogScanStatus::kTornHeader);
    EXPECT_EQ(r.valid_prefix_end, committed_end);
    EXPECT_EQ(r.tail_bytes_discarded, 10u);
    EXPECT_EQ(counters.Get(Counter::kLogChecksumFail), 1u);
    EXPECT_EQ(counters.Get(Counter::kRecoveryTornTails), 1u);
  }
  {  // Bit flip inside an already-durable record: scan stops there.
    CounterSet counters;
    ScopedCounterSet routed(&counters);
    std::vector<uint8_t> corrupt = stream;
    corrupt[sizeof(LogRecordHeader) + sizeof(LogRecordHeader) + 20] ^= 0x40;
    RecoveryManager rm(corrupt);
    const RecoveryReport& r = rm.Scan();
    EXPECT_TRUE(r.torn_tail);
    EXPECT_EQ(r.records_scanned, 1u);  // only txn 1's begin survives
    EXPECT_EQ(r.committed_txns, 0u);
    EXPECT_EQ(counters.Get(Counter::kLogChecksumFail), 1u);
  }
}

TEST(RecoveryScanTest, UncommittedMutationsNeverReplayed) {
  std::vector<uint8_t> stream;
  AppendHeapInsert(&stream, 1, 0, Rid{0, 0}, "keep-me.");
  AppendRecord(&stream, 1, LogRecordType::kCommit, nullptr, 0);
  AppendHeapInsert(&stream, 2, 0, Rid{0, 1}, "ghost!!!");  // no commit

  CounterSet counters;
  ScopedCounterSet routed(&counters);
  RecoveryTarget target;
  const TableId t = target.AddTable();
  RecoveryManager rm(stream);
  ASSERT_TRUE(rm.Replay(&target.catalog).ok());
  // Repeating history: the loser's insert IS replayed (it is stolen dirty
  // state a warm restart must reconstruct), then the undo pass deletes it
  // again. Only the committed row survives.
  const RowMap rows = DumpHeap(target.catalog, t);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows.begin()->second, "keep-me.");
  EXPECT_EQ(rm.report().records_replayed, 2u);
  EXPECT_EQ(rm.report().records_skipped, 0u);
  EXPECT_EQ(rm.report().records_undone, 1u);
  EXPECT_EQ(rm.report().losers_rolled_back, 1u);
  EXPECT_EQ(counters.Get(Counter::kRecoveryRecordsReplayed), 2u);
  EXPECT_EQ(counters.Get(Counter::kRecoveryRecordsUndone), 1u);
  EXPECT_EQ(counters.Get(Counter::kRecoveryLosersRolledBack), 1u);
  EXPECT_EQ(counters.Get(Counter::kRecoveryCommittedTxns), 1u);
}

// ---- the torn-tail sweep (acceptance criterion) -----------------------------

/// Runs a deterministic workload against a real Database whose durable
/// stream is captured by `sink`. Returns the shadow snapshots: expected
/// (rows, index) state after each commit, snapshots[0] = empty. Also
/// returns the txn id of each commit in commit order.
void RunSweepWorkload(CrashSink* sink, std::vector<ShadowState>* snapshots,
                      std::vector<uint64_t>* commit_ids) {
  DatabaseOptions o = TestOptions();
  sink->Install(&o.log);
  Database db(o);
  const TableId t = db.CreateTable("accounts");
  const IndexId idx = db.CreateIndex(t, "by_key", IndexKind::kBTree,
                                     /*unique=*/false);
  auto agent = db.CreateAgent();

  ShadowState shadow;
  snapshots->push_back(shadow);

  std::vector<Rid> rids;
  constexpr int kTxns = 18;
  for (int i = 0; i < kTxns; ++i) {
    db.Begin(agent.get());
    const uint64_t id = agent->txn().id();
    char row[8];
    std::snprintf(row, sizeof(row), "r%06d", i);
    Rid rid;
    ASSERT_TRUE(db.Insert(agent.get(), t, Bytes(std::string(row, 8)), &rid)
                    .ok());
    ASSERT_TRUE(db.IndexInsert(agent.get(), idx, 1000 + i, rid.ToU64()).ok());
    ShadowState next = shadow;
    next.rows[rid.ToU64()] = std::string(row, 8);
    next.index.emplace(1000 + i, rid.ToU64());
    rids.push_back(rid);
    if (i >= 3) {
      // Mutate earlier state too: update row i-3 (if it survived its txn —
      // an aborted insert leaves a dead rid), delete row i-9 sometimes.
      const Rid victim = rids[i - 3];
      if (next.rows.count(victim.ToU64()) != 0) {
        char upd[8];
        std::snprintf(upd, sizeof(upd), "u%06d", i);
        ASSERT_TRUE(
            db.Update(agent.get(), t, victim, Bytes(std::string(upd, 8)))
                .ok());
        next.rows[victim.ToU64()] = std::string(upd, 8);
      }
      if (i % 4 == 3 && i >= 9) {
        const Rid gone = rids[i - 9];
        if (next.rows.count(gone.ToU64())) {
          ASSERT_TRUE(db.Delete(agent.get(), t, gone).ok());
          ASSERT_TRUE(db.IndexRemove(agent.get(), idx, 1000 + (i - 9),
                                     gone.ToU64())
                          .ok());
          next.rows.erase(gone.ToU64());
          next.index.erase(next.index.find({1000u + (i - 9), gone.ToU64()}));
        }
      }
    }
    // Every third transaction aborts after doing work: its records are in
    // the log but must never replay.
    if (i % 3 == 2) {
      db.Abort(agent.get());
      continue;
    }
    ASSERT_TRUE(db.Commit(agent.get()).ok());
    shadow = std::move(next);
    snapshots->push_back(shadow);
    commit_ids->push_back(id);
  }
  // Database destructor drains the flusher: the capture is complete.
}

TEST(RecoverySweepTest, TruncationAtEveryByteYieldsACommittedPrefix) {
  CrashSink sink;
  std::vector<ShadowState> snapshots;
  std::vector<uint64_t> commit_ids;
  RunSweepWorkload(&sink, &snapshots, &commit_ids);
  const std::vector<uint8_t> stream = sink.Stream();
  ASSERT_GT(stream.size(), 0u);
  ASSERT_FALSE(sink.device.crashed());

  // Pre-compute the set of record boundaries from a full scan: truncating
  // exactly at a boundary is a clean end; anywhere else must be reported
  // (and counted) as a corrupt tail. Under staged logging the workload's
  // small records publish inside kBatchSeal envelopes — assert the sweep
  // actually covers them (a cut inside an envelope is a non-boundary cut
  // that must discard the whole envelope).
  std::set<size_t> boundaries{0};
  size_t envelopes = 0;
  {
    RecoveryManager rm(stream);
    const RecoveryReport& r = rm.Scan();
    ASSERT_FALSE(r.torn_tail);
    size_t pos = 0;
    LogRecordHeader hdr;
    const uint8_t* payload = nullptr;
    while (DecodeLogRecord(stream.data(), stream.size(), pos, 0, &hdr,
                           &payload) == LogScanStatus::kOk) {
      if (hdr.type == static_cast<uint8_t>(LogRecordType::kBatchSeal)) {
        ++envelopes;
      }
      pos += sizeof(LogRecordHeader) + hdr.payload_len;
      boundaries.insert(pos);
    }
    ASSERT_EQ(pos, stream.size());
    ASSERT_GT(envelopes, 0u)
        << "staged logging should have produced batch-seal envelopes";
  }

  for (size_t cut = 0; cut <= stream.size(); ++cut) {
    CounterSet counters;
    ScopedCounterSet routed(&counters);
    RecoveryManager rm(
        std::vector<uint8_t>(stream.begin(), stream.begin() + cut));
    rm.Scan();
    const RecoveryReport& r = rm.report();

    // Committed set must be exactly the first k commits, in commit order.
    const size_t k = r.committed_txns;
    ASSERT_LE(k, commit_ids.size()) << "cut=" << cut;
    for (size_t i = 0; i < commit_ids.size(); ++i) {
      EXPECT_EQ(rm.IsCommitted(commit_ids[i]), i < k)
          << "cut=" << cut << " commit#" << i;
    }

    // Torn-tail accounting: exact iff the cut is off a record boundary.
    const bool at_boundary = boundaries.count(cut) != 0;
    EXPECT_EQ(r.torn_tail, !at_boundary) << "cut=" << cut;
    EXPECT_EQ(counters.Get(Counter::kLogChecksumFail), at_boundary ? 0u : 1u)
        << "cut=" << cut;

    // Replayed state must equal the k-commit shadow snapshot exactly.
    RecoveryTarget target;
    const TableId t = target.AddTable();
    const IndexId idx = target.AddBTree(t);
    ASSERT_TRUE(rm.Replay(&target.catalog).ok()) << "cut=" << cut;
    EXPECT_EQ(DumpHeap(target.catalog, t), snapshots[k].rows)
        << "cut=" << cut;
    EXPECT_EQ(DumpBTree(target.catalog, idx), snapshots[k].index)
        << "cut=" << cut;
  }
}

TEST(RecoverySweepTest, MidStreamBitFlipsYieldACommittedPrefix) {
  // A flip in the middle of the stream (not just the tail) must degrade
  // recovery to the prefix before the flipped record — never to a mixed or
  // corrupted state. Sampled stride keeps the quadratic cost down.
  CrashSink sink;
  std::vector<ShadowState> snapshots;
  std::vector<uint64_t> commit_ids;
  RunSweepWorkload(&sink, &snapshots, &commit_ids);
  const std::vector<uint8_t> stream = sink.Stream();

  for (size_t byte = 0; byte < stream.size(); byte += 13) {
    std::vector<uint8_t> corrupt = stream;
    corrupt[byte] ^= 0x20;
    RecoveryManager rm(std::move(corrupt));
    rm.Scan();
    const size_t k = rm.report().committed_txns;
    ASSERT_LE(k, commit_ids.size()) << "byte=" << byte;
    RecoveryTarget target;
    const TableId t = target.AddTable();
    const IndexId idx = target.AddBTree(t);
    ASSERT_TRUE(rm.Replay(&target.catalog).ok()) << "byte=" << byte;
    EXPECT_EQ(DumpHeap(target.catalog, t), snapshots[k].rows)
        << "byte=" << byte;
    EXPECT_EQ(DumpBTree(target.catalog, idx), snapshots[k].index)
        << "byte=" << byte;
  }
}

TEST(RecoverySweepTest, BatchedEnvelopeStreamTruncationSweep) {
  // A purely batched stream straight through LogManager::AppendBatch: each
  // txn is one batch of small records (begin + 3 index inserts + commit),
  // publishing as exactly one kBatchSeal envelope. Truncate at every byte:
  // a cut anywhere strictly inside an envelope must discard the WHOLE
  // envelope — the committed count and replayed state always correspond to
  // complete envelopes, never to a prefix of one's interior.
  InMemoryLogDevice device;
  LogOptions o;
  o.flush_interval_us = 20;
  AttachLogDevice(&o, &device);
  constexpr uint64_t kTxns = 10;
  {
    LogManager log(o);
    LogStagingBuffer staging;
    Lsn last = 0;
    for (uint64_t txn = 1; txn <= kTxns; ++txn) {
      staging.Stage(txn, LogRecordType::kBegin, nullptr, 0);
      for (uint64_t k = 0; k < 3; ++k) {
        IndexRedoPayload e{};
        e.index = 0;
        e.key = txn * 100 + k;
        e.value = txn;
        staging.Stage(txn, LogRecordType::kIndexInsert, &e,
                      static_cast<uint32_t>(sizeof(e)));
      }
      staging.Stage(txn, LogRecordType::kCommit, nullptr, 0);
      last = log.AppendBatch(&staging);
    }
    log.WaitDurable(last);
  }
  std::vector<uint8_t> stream;
  ASSERT_TRUE(device.ReadAll(&stream).ok());

  // Outer walk: the stream must be all envelopes; note each one's end.
  std::vector<size_t> envelope_ends;
  {
    size_t pos = 0;
    LogRecordHeader hdr;
    const uint8_t* payload = nullptr;
    while (DecodeLogRecord(stream.data(), stream.size(), pos, 0, &hdr,
                           &payload) == LogScanStatus::kOk) {
      ASSERT_EQ(hdr.type, static_cast<uint8_t>(LogRecordType::kBatchSeal));
      pos += sizeof(LogRecordHeader) + hdr.payload_len;
      envelope_ends.push_back(pos);
    }
    ASSERT_EQ(envelope_ends.size(), kTxns);
    ASSERT_EQ(envelope_ends.back(), stream.size());
  }

  for (size_t cut = 0; cut <= stream.size(); ++cut) {
    CounterSet counters;
    ScopedCounterSet routed(&counters);
    // k = number of COMPLETE envelopes inside the cut; that — and nothing
    // partial — is what recovery may trust.
    size_t k = 0;
    while (k < envelope_ends.size() && envelope_ends[k] <= cut) ++k;
    const bool at_boundary = cut == 0 || (k > 0 && envelope_ends[k - 1] == cut);

    RecoveryManager rm(
        std::vector<uint8_t>(stream.begin(), stream.begin() + cut));
    const RecoveryReport& r = rm.Scan();
    EXPECT_EQ(r.committed_txns, k) << "cut=" << cut;
    EXPECT_EQ(r.records_scanned, k * 5) << "cut=" << cut;
    EXPECT_EQ(r.torn_tail, !at_boundary) << "cut=" << cut;
    EXPECT_EQ(counters.Get(Counter::kLogChecksumFail), at_boundary ? 0u : 1u)
        << "cut=" << cut;
    for (uint64_t txn = 1; txn <= kTxns; ++txn) {
      EXPECT_EQ(rm.IsCommitted(txn), txn <= k) << "cut=" << cut;
    }

    // Replay: exactly the complete envelopes' index entries, in order.
    RecoveryTarget target;
    const TableId t = target.AddTable();
    const IndexId idx = target.AddBTree(t);
    ASSERT_TRUE(rm.Replay(&target.catalog).ok()) << "cut=" << cut;
    IndexSet want;
    for (uint64_t txn = 1; txn <= k; ++txn) {
      for (uint64_t e = 0; e < 3; ++e) want.emplace(txn * 100 + e, txn);
    }
    EXPECT_EQ(DumpBTree(target.catalog, idx), want) << "cut=" << cut;
  }
}

// ---- randomized histories (property test) -----------------------------------

TEST(RecoveryFuzzTest, RandomHistoryCrashAtRandomFlushMatchesShadow) {
  // TPC-B-style randomized single-agent histories through the real
  // pipeline; the device crashes at a random byte (armed mid-run, so the
  // cut lands inside whatever flush is in flight). Recovery must produce
  // exactly the state of the committed prefix. Failures print the seed.
  const uint64_t kSeeds[] = {1, 7, 42, 1009, 88172645463325252ull};
  for (const uint64_t seed : kSeeds) {
    SCOPED_TRACE("seed=" + std::to_string(seed) +
                 "  (re-run: RecoveryFuzzTest filters + this seed)");
    Rng rng(seed);

    CrashSink sink;
    std::vector<ShadowState> snapshots;
    std::vector<uint64_t> commit_ids;
    {
      DatabaseOptions o = TestOptions();
      sink.Install(&o.log);
      Database db(o);
      const TableId t = db.CreateTable("t");
      const IndexId idx = db.CreateIndex(t, "i", IndexKind::kBTree,
                                         /*unique=*/false);
      auto agent = db.CreateAgent(seed);

      ShadowState shadow;
      snapshots.push_back(shadow);
      std::vector<std::pair<Rid, uint64_t>> live;  // rid + index key
      uint64_t next_key = 1;

      const int txns = 30 + static_cast<int>(rng.Next() % 20);
      const uint64_t crash_at = rng.Next() % 4000;
      bool armed = false;
      for (int i = 0; i < txns; ++i) {
        if (!armed && i == txns / 3) {
          // Arm mid-run so the crash races live flushes of later txns.
          sink.Arm(crash_at);
          armed = true;
        }
        db.Begin(agent.get());
        const uint64_t id = agent->txn().id();
        // The whole pending state — shadow AND the live-rid working set —
        // is transactional: an abort must discard both, mirroring undo.
        ShadowState next = shadow;
        std::vector<std::pair<Rid, uint64_t>> next_live = live;
        const int ops = 1 + static_cast<int>(rng.Next() % 4);
        for (int op = 0; op < ops; ++op) {
          const uint64_t pick = rng.Next() % 10;
          if (pick < 4 || next_live.empty()) {  // insert
            char row[8];
            std::snprintf(row, sizeof(row), "k%06llu",
                          static_cast<unsigned long long>(next_key % 1000000));
            Rid rid;
            ASSERT_TRUE(
                db.Insert(agent.get(), t, Bytes(std::string(row, 8)), &rid)
                    .ok());
            ASSERT_TRUE(
                db.IndexInsert(agent.get(), idx, next_key, rid.ToU64()).ok());
            next.rows[rid.ToU64()] = std::string(row, 8);
            next.index.emplace(next_key, rid.ToU64());
            next_live.emplace_back(rid, next_key);
            ++next_key;
          } else if (pick < 8) {  // update
            const auto& victim = next_live[rng.Next() % next_live.size()];
            char row[8];
            std::snprintf(row, sizeof(row), "u%06llu",
                          static_cast<unsigned long long>(rng.Next() %
                                                          1000000));
            ASSERT_TRUE(db.Update(agent.get(), t, victim.first,
                                  Bytes(std::string(row, 8)))
                            .ok());
            next.rows[victim.first.ToU64()] = std::string(row, 8);
          } else {  // delete
            const size_t vi = rng.Next() % next_live.size();
            const auto victim = next_live[vi];
            ASSERT_TRUE(db.Delete(agent.get(), t, victim.first).ok());
            ASSERT_TRUE(db.IndexRemove(agent.get(), idx, victim.second,
                                       victim.first.ToU64())
                            .ok());
            next.rows.erase(victim.first.ToU64());
            next.index.erase(
                next.index.find({victim.second, victim.first.ToU64()}));
            next_live.erase(next_live.begin() + static_cast<ptrdiff_t>(vi));
          }
        }
        if (rng.Next() % 5 == 0) {  // user abort
          db.Abort(agent.get());
          continue;
        }
        ASSERT_TRUE(db.Commit(agent.get()).ok());
        shadow = std::move(next);
        live = std::move(next_live);
        snapshots.push_back(shadow);
        commit_ids.push_back(id);
      }
    }  // db teardown drains whatever the "device" still accepts

    const std::vector<uint8_t> stream = sink.Stream();
    RecoveryManager rm(stream);
    rm.Scan();
    const size_t k = rm.report().committed_txns;
    ASSERT_LE(k, commit_ids.size());
    for (size_t i = 0; i < commit_ids.size(); ++i) {
      EXPECT_EQ(rm.IsCommitted(commit_ids[i]), i < k) << "commit#" << i;
    }
    RecoveryTarget target;
    const TableId t = target.AddTable();
    const IndexId idx = target.AddBTree(t);
    ASSERT_TRUE(rm.Replay(&target.catalog).ok());
    EXPECT_EQ(DumpHeap(target.catalog, t), snapshots[k].rows);
    EXPECT_EQ(DumpBTree(target.catalog, idx), snapshots[k].index);
  }
}

// ---- engine-level recovery --------------------------------------------------

TEST(RecoveryEngineTest, FileBackedDatabaseRecoversAndResumes) {
  const std::string path = "slidb_recovery_e2e.log";
  Rid r1, r2;
  uint64_t committed_txns = 0;
  {
    DatabaseOptions o = TestOptions();
    o.log_path = path;
    Database db(o);
    ASSERT_NE(db.log_device(), nullptr);
    const TableId t = db.CreateTable("t");
    const IndexId idx = db.CreateIndex(t, "i", IndexKind::kBTree, false);
    auto agent = db.CreateAgent();

    db.Begin(agent.get());
    ASSERT_TRUE(db.Insert(agent.get(), t, Bytes("first..."), &r1).ok());
    ASSERT_TRUE(db.IndexInsert(agent.get(), idx, 10, r1.ToU64()).ok());
    ASSERT_TRUE(db.Commit(agent.get()).ok());
    ++committed_txns;

    db.Begin(agent.get());
    ASSERT_TRUE(db.Insert(agent.get(), t, Bytes("doomed.."), &r2).ok());
    db.Abort(agent.get());

    db.Begin(agent.get());
    ASSERT_TRUE(db.Insert(agent.get(), t, Bytes("second.."), &r2).ok());
    ASSERT_TRUE(db.IndexInsert(agent.get(), idx, 20, r2.ToU64()).ok());
    ASSERT_TRUE(db.Commit(agent.get()).ok());
    ++committed_txns;
  }  // clean shutdown: all records durable in the file

  DatabaseOptions o = TestOptions();
  Database db(o);
  const TableId t = db.CreateTable("t");
  const IndexId idx = db.CreateIndex(t, "i", IndexKind::kBTree, false);
  RecoveryReport report;
  ASSERT_TRUE(db.Recover(path, &report).ok());
  EXPECT_FALSE(report.torn_tail);
  EXPECT_EQ(report.committed_txns, committed_txns);
  EXPECT_GT(report.records_replayed, 0u);

  auto agent = db.CreateAgent();
  db.Begin(agent.get());
  char buf[8];
  ASSERT_TRUE(db.Read(agent.get(), t, r1, buf, 8).ok());
  EXPECT_EQ(std::memcmp(buf, "first...", 8), 0);
  ASSERT_TRUE(db.Read(agent.get(), t, r2, buf, 8).ok());
  EXPECT_EQ(std::memcmp(buf, "second..", 8), 0);
  uint64_t v = 0;
  ASSERT_TRUE(db.IndexLookup(idx, 10, &v).ok());
  EXPECT_EQ(v, r1.ToU64());
  ASSERT_TRUE(db.Commit(agent.get()).ok());

  // Recovered id space: new transactions log above every recovered id.
  db.Begin(agent.get());
  EXPECT_GT(agent->txn().id(), report.max_txn_id);
  Rid r3;
  ASSERT_TRUE(db.Insert(agent.get(), t, Bytes("post-rec"), &r3).ok());
  ASSERT_TRUE(db.Commit(agent.get()).ok());
  std::remove(path.c_str());
}

TEST(RecoveryEngineTest, RestartInPlaceSurvivesASecondCrash) {
  // The operator's natural restart flow: reuse the SAME log_path for the
  // recovered database. The device must not clobber the old log before
  // Recover() reads it (truncation is deferred to the first append), and
  // recovery must anchor the new log with an opening checkpoint — otherwise
  // a second crash would lose everything from before the first one.
  const std::string path = "slidb_restart_in_place.log";
  Rid r1;
  {  // generation 1: one committed row, then "crash" (teardown).
    DatabaseOptions o = TestOptions();
    o.log_path = path;
    Database db(o);
    const TableId t = db.CreateTable("t");
    auto agent = db.CreateAgent();
    db.Begin(agent.get());
    ASSERT_TRUE(db.Insert(agent.get(), t, Bytes("gen-one!"), &r1).ok());
    ASSERT_TRUE(db.Commit(agent.get()).ok());
  }
  Rid r2;
  {  // generation 2: restart in place, recover, add a row, crash again.
    DatabaseOptions o = TestOptions();
    o.log_path = path;
    Database db(o);
    const TableId t = db.CreateTable("t");
    RecoveryReport report;
    ASSERT_TRUE(db.Recover(path, &report).ok());
    EXPECT_EQ(report.committed_txns, 1u);
    auto agent = db.CreateAgent();
    db.Begin(agent.get());
    char buf[8];
    ASSERT_TRUE(db.Read(agent.get(), t, r1, buf, 8).ok());
    EXPECT_EQ(std::memcmp(buf, "gen-one!", 8), 0);
    ASSERT_TRUE(db.Insert(agent.get(), t, Bytes("gen-two!"), &r2).ok());
    ASSERT_TRUE(db.Commit(agent.get()).ok());
  }
  {  // generation 3: BOTH generations' rows must recover from the new log.
    DatabaseOptions o = TestOptions();
    Database db(o);
    const TableId t = db.CreateTable("t");
    RecoveryReport report;
    ASSERT_TRUE(db.Recover(path, &report).ok());
    // gen-1's row arrives via the opening checkpoint's image records; the
    // only commit record in the new log is gen-2's transaction.
    EXPECT_TRUE(report.checkpoint_anchored);
    EXPECT_EQ(report.committed_txns, 1u);
    auto agent = db.CreateAgent();
    db.Begin(agent.get());
    char buf[8];
    ASSERT_TRUE(db.Read(agent.get(), t, r1, buf, 8).ok());
    EXPECT_EQ(std::memcmp(buf, "gen-one!", 8), 0);
    ASSERT_TRUE(db.Read(agent.get(), t, r2, buf, 8).ok());
    EXPECT_EQ(std::memcmp(buf, "gen-two!", 8), 0);
    ASSERT_TRUE(db.Commit(agent.get()).ok());
  }
  std::remove(path.c_str());
}

TEST(RecoveryEngineTest, HashIndexEntriesReplay) {
  CrashSink sink;
  DatabaseOptions o = TestOptions();
  sink.Install(&o.log);
  Rid rid;
  {
    Database db(o);
    const TableId t = db.CreateTable("t");
    const IndexId h = db.CreateIndex(t, "h", IndexKind::kHash, false);
    auto agent = db.CreateAgent();
    db.Begin(agent.get());
    ASSERT_TRUE(db.Insert(agent.get(), t, Bytes("hashed.."), &rid).ok());
    ASSERT_TRUE(db.IndexInsert(agent.get(), h, 77, rid.ToU64()).ok());
    ASSERT_TRUE(db.IndexInsert(agent.get(), h, 78, rid.ToU64()).ok());
    ASSERT_TRUE(db.IndexRemove(agent.get(), h, 78, rid.ToU64()).ok());
    ASSERT_TRUE(db.Commit(agent.get()).ok());
  }
  RecoveryTarget target;
  const TableId t = target.AddTable();
  const IndexId h = target.AddHash(t);
  RecoveryManager rm(sink.Stream());
  ASSERT_TRUE(rm.Replay(&target.catalog).ok());
  uint64_t v = 0;
  ASSERT_TRUE(target.catalog.index(h).hash->Lookup(77, &v).ok());
  EXPECT_EQ(v, rid.ToU64());
  EXPECT_TRUE(target.catalog.index(h).hash->Lookup(78, &v).IsNotFound());
}

TEST(RecoveryEngineTest, AbortBeforePublishLeavesNoTrace) {
  // With staged logging, a transaction that aborts before any partial
  // batch published simply drops its staging buffer: the log never learns
  // the transaction existed (recovery would have skipped it as a ghost
  // anyway — this just skips the dead weight).
  CrashSink sink;
  DatabaseOptions o = TestOptions();
  ASSERT_TRUE(o.txn.staged_log_appends);
  sink.Install(&o.log);
  {
    Database db(o);
    const TableId t = db.CreateTable("t");
    auto agent = db.CreateAgent();
    Rid rid;
    db.Begin(agent.get());
    ASSERT_TRUE(db.Insert(agent.get(), t, Bytes("doomed.."), &rid).ok());
    db.Abort(agent.get());
    EXPECT_EQ(db.log_manager().Stats().records, 0u);
    db.Begin(agent.get());
    ASSERT_TRUE(db.Insert(agent.get(), t, Bytes("kept...."), &rid).ok());
    ASSERT_TRUE(db.Commit(agent.get()).ok());
    EXPECT_EQ(db.log_manager().Stats().records, 3u);  // begin+insert+commit
  }
  RecoveryManager rm(sink.Stream());
  const RecoveryReport& r = rm.Scan();
  EXPECT_EQ(r.committed_txns, 1u);
  EXPECT_EQ(r.uncommitted_txns, 0u);  // the aborted txn left no records
  EXPECT_EQ(r.aborted_txns, 0u);
}

TEST(RecoveryEngineTest, WatermarkFlushedAbortStaysAGhost) {
  // A long transaction whose staging watermark fired has already published
  // redo records; its abort must close the on-log story with a kAbort
  // record, and recovery must still replay none of it.
  CrashSink sink;
  DatabaseOptions o = TestOptions();
  o.txn.staging_flush_bytes = 64;  // force mid-transaction partial publishes
  sink.Install(&o.log);
  {
    Database db(o);
    const TableId t = db.CreateTable("t");
    auto agent = db.CreateAgent();
    Rid rid;
    db.Begin(agent.get());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(db.Insert(agent.get(), t, Bytes("partial!"), &rid).ok());
    }
    EXPECT_GT(db.log_manager().Stats().records, 0u)
        << "watermark should have published a partial batch";
    db.Abort(agent.get());
  }
  RecoveryManager rm(sink.Stream());
  const RecoveryReport& r = rm.Scan();
  EXPECT_EQ(r.committed_txns, 0u);
  EXPECT_EQ(r.aborted_txns, 1u);  // the abort record made it out
  RecoveryTarget target;
  const TableId t = target.AddTable();
  ASSERT_TRUE(rm.Replay(&target.catalog).ok());
  EXPECT_TRUE(DumpHeap(target.catalog, t).empty());
  EXPECT_GT(rm.report().records_skipped, 0u);
}

// ---- concurrency: crash under load & the early-release durability gate ------

/// Threads for concurrency tests, per the ROADMAP single-CPU guidance:
/// interleaving-independent assertions only, and budgets shrink when the
/// host cannot actually run threads in parallel.
int ConcurrencyThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw >= 4) return 4;
  return 2;
}
int ConcurrencyBudget(int per_thread) {
  return std::thread::hardware_concurrency() >= 2 ? per_thread
                                                  : per_thread / 4 + 1;
}

TEST(RecoveryConcurrencyTest, TpcbTransfersCrashConservesTotalBalance) {
  // Multi-agent account transfers with a crash armed at a random flush:
  // every committed transaction conserves the total, so ANY committed
  // prefix must conserve it too — an interleaving-independent invariant.
  constexpr int kAccounts = 32;
  constexpr uint64_t kInitialBalance = 1000;

  CrashSink sink;
  std::vector<Rid> rids(kAccounts);
  {
    DatabaseOptions o = TestOptions();
    sink.Install(&o.log);
    Database db(o);
    const TableId t = db.CreateTable("accounts");
    auto setup = db.CreateAgent();
    db.Begin(setup.get());
    for (int i = 0; i < kAccounts; ++i) {
      ASSERT_TRUE(db.Insert(setup.get(), t,
                            {reinterpret_cast<const uint8_t*>(&kInitialBalance),
                             sizeof(kInitialBalance)},
                            &rids[i])
                      .ok());
    }
    ASSERT_TRUE(db.Commit(setup.get()).ok());
    // Setup must be durable before the crash window opens.
    db.log_manager().WaitDurable(db.log_manager().appended_lsn());

    Rng arm_rng(2026);
    sink.Arm(500 + arm_rng.Next() % 8000);

    const int threads = ConcurrencyThreads();
    const int transfers = ConcurrencyBudget(150);
    std::vector<std::thread> workers;
    for (int w = 0; w < threads; ++w) {
      workers.emplace_back([&, w] {
        auto agent = db.CreateAgent(100 + w);
        Rng rng(977 * (w + 1));
        for (int i = 0; i < transfers; ++i) {
          size_t a = rng.Next() % kAccounts;
          size_t b = rng.Next() % kAccounts;
          if (a == b) continue;
          if (b < a) std::swap(a, b);  // canonical order: no deadlocks
          db.Begin(agent.get());
          uint64_t ba = 0, bb = 0;
          if (!db.LockRowExclusive(agent.get(), t, rids[a]).ok() ||
              !db.LockRowExclusive(agent.get(), t, rids[b]).ok() ||
              !db.Read(agent.get(), t, rids[a], &ba, sizeof(ba)).ok() ||
              !db.Read(agent.get(), t, rids[b], &bb, sizeof(bb)).ok()) {
            db.Abort(agent.get());
            continue;
          }
          const uint64_t d = rng.Next() % 50;
          if (ba < d) {
            db.Abort(agent.get());
            continue;
          }
          ba -= d;
          bb += d;
          if (!db.Update(agent.get(), t, rids[a],
                         {reinterpret_cast<const uint8_t*>(&ba), sizeof(ba)})
                   .ok() ||
              !db.Update(agent.get(), t, rids[b],
                         {reinterpret_cast<const uint8_t*>(&bb), sizeof(bb)})
                   .ok()) {
            db.Abort(agent.get());
            continue;
          }
          ASSERT_TRUE(db.Commit(agent.get()).ok());
        }
      });
    }
    for (auto& th : workers) th.join();
  }

  // Recover the crashed stream and check conservation.
  RecoveryTarget target;
  const TableId t = target.AddTable();
  RecoveryManager rm(sink.Stream());
  ASSERT_TRUE(rm.Replay(&target.catalog).ok());
  const RowMap rows = DumpHeap(target.catalog, t);
  ASSERT_EQ(rows.size(), static_cast<size_t>(kAccounts))
      << "setup transaction must always survive (it was durable pre-crash)";
  uint64_t total = 0;
  for (const auto& [rid, bytes] : rows) {
    ASSERT_EQ(bytes.size(), sizeof(uint64_t));
    uint64_t bal = 0;
    std::memcpy(&bal, bytes.data(), sizeof(bal));
    total += bal;
  }
  EXPECT_EQ(total, kAccounts * kInitialBalance);
}

/// Incrementally parses the durable stream and records which transactions
/// have a durable commit record — the oracle for the early-release gate.
struct DurabilityAudit {
  std::mutex mu;
  std::vector<uint8_t> bytes;
  size_t parsed = 0;
  std::unordered_set<uint64_t> committed;

  void Install(LogOptions* o) {
    o->flush_sink = [this](const uint8_t* d, size_t n, Lsn) {
      std::lock_guard<std::mutex> g(mu);
      bytes.insert(bytes.end(), d, d + n);
      LogRecordHeader hdr;
      const uint8_t* payload = nullptr;
      while (DecodeLogRecord(bytes.data(), bytes.size(), parsed, 0, &hdr,
                             &payload) == LogScanStatus::kOk) {
        if (hdr.type == static_cast<uint8_t>(LogRecordType::kBatchSeal)) {
          // Commit records of batched transactions live INSIDE the
          // envelope; the audit must see through it like the scanner does.
          EXPECT_TRUE(ForEachEnvelopeRecord(
              payload, hdr.payload_len, hdr.lsn + sizeof(LogRecordHeader),
              [&](const LogRecordHeader& inner, const uint8_t*) {
                if (inner.type ==
                    static_cast<uint8_t>(LogRecordType::kCommit)) {
                  committed.insert(inner.txn_id);
                }
              }));
        } else if (hdr.type == static_cast<uint8_t>(LogRecordType::kCommit)) {
          committed.insert(hdr.txn_id);
        }
        parsed += sizeof(LogRecordHeader) + hdr.payload_len;
      }
    };
  }
  bool HasDurableCommit(uint64_t txn_id) {
    std::lock_guard<std::mutex> g(mu);
    return committed.count(txn_id) != 0;
  }
};

TEST(RecoveryConcurrencyTest, EarlyReleaseNeverReportsCommitBeforeDurable) {
  // Regression gate for the PR 2 default: with early_lock_release=true a
  // transaction's locks drop before its commit I/O completes, but Commit()
  // must still not RETURN until the commit record is durable in the sink.
  // The audit sink is the durable stream itself, so this check is exact.
  DurabilityAudit audit;
  DatabaseOptions o = TestOptions();
  ASSERT_TRUE(o.txn.early_lock_release);
  audit.Install(&o.log);
  Database db(o);
  const TableId t = db.CreateTable("t");

  // Shared rows so early release actually interleaves lock hand-offs.
  std::vector<Rid> rids(8);
  {
    auto setup = db.CreateAgent();
    db.Begin(setup.get());
    const uint64_t zero = 0;
    for (auto& rid : rids) {
      ASSERT_TRUE(db.Insert(setup.get(), t,
                            {reinterpret_cast<const uint8_t*>(&zero),
                             sizeof(zero)},
                            &rid)
                      .ok());
    }
    ASSERT_TRUE(db.Commit(setup.get()).ok());
  }

  const int threads = ConcurrencyThreads();
  const int txns = ConcurrencyBudget(200);
  std::atomic<uint64_t> violations{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < threads; ++w) {
    workers.emplace_back([&, w] {
      auto agent = db.CreateAgent(500 + w);
      Rng rng(31 * (w + 7));
      for (int i = 0; i < txns; ++i) {
        db.Begin(agent.get());
        const uint64_t id = agent->txn().id();
        const Rid rid = rids[rng.Next() % rids.size()];
        uint64_t v = static_cast<uint64_t>(i);
        if (!db.Update(agent.get(), t, rid,
                       {reinterpret_cast<const uint8_t*>(&v), sizeof(v)})
                 .ok()) {
          db.Abort(agent.get());
          continue;
        }
        ASSERT_TRUE(db.Commit(agent.get()).ok());
        // THE gate: the caller has been told "committed" — the commit
        // record must already be durable in the device stream.
        if (!audit.HasDurableCommit(id)) {
          violations.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : workers) th.join();
  EXPECT_EQ(violations.load(), 0u)
      << "Commit() returned before its commit record was durable";
}

TEST(RecoveryConcurrencyTest, SpeculativeAckNeverSettlesBeforeCommitDurable) {
  // The PR-4 gate above, extended to speculative reads: with
  // speculative_reads on, Commit() returns BEFORE the commit record is
  // durable — externalization moves to the deferred ack's settlement. The
  // gate therefore moves with it: after DrainDeferredAcks() returns (every
  // parked ack settled), every commit this agent was acknowledged for must
  // be parseable from the device stream. Aborting writers are mixed in to
  // cover the dependency-capture-after-abort path under load.
  DurabilityAudit audit;
  DatabaseOptions o = TestOptions();
  o.txn.speculative_reads = true;
  ASSERT_TRUE(o.txn.early_lock_release);
  audit.Install(&o.log);
  Database db(o);
  const TableId t = db.CreateTable("t");

  std::vector<Rid> rids(8);
  {
    auto setup = db.CreateAgent();
    db.Begin(setup.get());
    const uint64_t zero = 0;
    for (auto& rid : rids) {
      ASSERT_TRUE(db.Insert(setup.get(), t,
                            {reinterpret_cast<const uint8_t*>(&zero),
                             sizeof(zero)},
                            &rid)
                      .ok());
    }
    ASSERT_TRUE(db.Commit(setup.get()).ok());
    setup->DrainDeferredAcks();
  }

  const int threads = ConcurrencyThreads();
  const int txns = ConcurrencyBudget(200);
  std::atomic<uint64_t> violations{0};
  std::atomic<uint64_t> deferred_total{0};
  std::mutex aborted_mu;
  std::vector<uint64_t> aborted_ids;
  std::vector<std::thread> workers;
  for (int w = 0; w < threads; ++w) {
    workers.emplace_back([&, w] {
      auto agent = db.CreateAgent(700 + w);
      CounterSet counters;
      ScopedCounterSet routed(&counters);
      Rng rng(67 * (w + 3));
      std::vector<uint64_t> acked;  // ids Commit() returned OK for
      const auto check_settled = [&] {
        agent->DrainDeferredAcks();
        // Every acknowledged commit is settled now; all must be durable.
        for (const uint64_t id : acked) {
          if (!audit.HasDurableCommit(id)) {
            violations.fetch_add(1, std::memory_order_relaxed);
          }
        }
        acked.clear();
      };
      for (int i = 0; i < txns; ++i) {
        db.Begin(agent.get());
        const uint64_t id = agent->txn().id();
        const Rid rid = rids[rng.Next() % rids.size()];
        uint64_t v = 0;
        if (!db.Read(agent.get(), t, rid, &v, sizeof(v)).ok()) {
          db.Abort(agent.get());
          continue;
        }
        v += 1;
        if (!db.Update(agent.get(), t, rid,
                       {reinterpret_cast<const uint8_t*>(&v), sizeof(v)})
                 .ok()) {
          db.Abort(agent.get());
          continue;
        }
        if (rng.Next() % 8 == 0) {
          // Deliberate abort: this txn's effects are undone and must never
          // become a dependency (nor a durable commit).
          db.Abort(agent.get());
          std::lock_guard<std::mutex> g(aborted_mu);
          aborted_ids.push_back(id);
          continue;
        }
        ASSERT_TRUE(db.Commit(agent.get()).ok());
        acked.push_back(id);
        // Periodically quiesce and audit the acknowledged prefix.
        if (rng.Next() % 16 == 0) check_settled();
      }
      check_settled();
      deferred_total.fetch_add(counters.Get(Counter::kTxnDeferredAcks),
                               std::memory_order_relaxed);
    });
  }
  for (auto& th : workers) th.join();
  EXPECT_EQ(violations.load(), 0u)
      << "a deferred ack settled before its commit record was durable";
  // The run must actually have exercised the deferred path (the 50 us
  // flush cadence guarantees fresh commit records are not yet durable at
  // the fast-path check).
  EXPECT_GT(deferred_total.load(), 0u);
  for (const uint64_t id : aborted_ids) {
    EXPECT_FALSE(audit.HasDurableCommit(id))
        << "aborted txn " << id << " has a durable commit record";
  }
}

// ---- checkpointed streams: bounded restart (PR "bounded restart") -----------

/// The sweep workload of RunSweepWorkload, run against a caller-provided
/// database with one fuzzy checkpoint taken before transaction
/// `checkpoint_before`. Schema: table "accounts" + btree "by_key" (created
/// here; the database must be fresh).
void RunCheckpointedWorkload(Database* db, int checkpoint_before,
                             std::vector<ShadowState>* snapshots,
                             std::vector<uint64_t>* commit_ids) {
  const TableId t = db->CreateTable("accounts");
  const IndexId idx = db->CreateIndex(t, "by_key", IndexKind::kBTree,
                                      /*unique=*/false);
  auto agent = db->CreateAgent();

  ShadowState shadow;
  snapshots->push_back(shadow);

  std::vector<Rid> rids;
  constexpr int kTxns = 18;
  for (int i = 0; i < kTxns; ++i) {
    if (i == checkpoint_before) {
      ASSERT_TRUE(db->CheckpointNow().ok());
    }
    db->Begin(agent.get());
    const uint64_t id = agent->txn().id();
    char row[8];
    std::snprintf(row, sizeof(row), "r%06d", i);
    Rid rid;
    ASSERT_TRUE(db->Insert(agent.get(), t, Bytes(std::string(row, 8)), &rid)
                    .ok());
    ASSERT_TRUE(db->IndexInsert(agent.get(), idx, 1000 + i, rid.ToU64()).ok());
    ShadowState next = shadow;
    next.rows[rid.ToU64()] = std::string(row, 8);
    next.index.emplace(1000 + i, rid.ToU64());
    rids.push_back(rid);
    if (i >= 3) {
      const Rid victim = rids[i - 3];
      if (next.rows.count(victim.ToU64()) != 0) {
        char upd[8];
        std::snprintf(upd, sizeof(upd), "u%06d", i);
        ASSERT_TRUE(
            db->Update(agent.get(), t, victim, Bytes(std::string(upd, 8)))
                .ok());
        next.rows[victim.ToU64()] = std::string(upd, 8);
      }
      if (i % 4 == 3 && i >= 9) {
        const Rid gone = rids[i - 9];
        if (next.rows.count(gone.ToU64())) {
          ASSERT_TRUE(db->Delete(agent.get(), t, gone).ok());
          ASSERT_TRUE(db->IndexRemove(agent.get(), idx, 1000 + (i - 9),
                                      gone.ToU64())
                          .ok());
          next.rows.erase(gone.ToU64());
          next.index.erase(next.index.find({1000u + (i - 9), gone.ToU64()}));
        }
      }
    }
    if (i % 3 == 2) {
      db->Abort(agent.get());
      continue;
    }
    ASSERT_TRUE(db->Commit(agent.get()).ok());
    shadow = std::move(next);
    snapshots->push_back(shadow);
    commit_ids->push_back(id);
  }
}

/// Truncate `stream` at every byte (log offsets [base, base + size]) and
/// assert recovery always reconstructs exactly the committed-prefix shadow.
void SweepEveryByte(const std::vector<uint8_t>& stream, Lsn base,
                    const std::vector<ShadowState>& snapshots,
                    const std::vector<uint64_t>& commit_ids) {
  for (size_t cut = 0; cut <= stream.size(); ++cut) {
    RecoveryManager rm(
        std::vector<uint8_t>(stream.begin(), stream.begin() + cut), base);
    rm.Scan();
    const size_t k = rm.report().committed_txns;
    ASSERT_LE(k, commit_ids.size()) << "cut=" << cut;
    for (size_t i = 0; i < commit_ids.size(); ++i) {
      EXPECT_EQ(rm.IsCommitted(commit_ids[i]), i < k)
          << "cut=" << cut << " commit#" << i;
    }
    RecoveryTarget target;
    const TableId t = target.AddTable();
    const IndexId idx = target.AddBTree(t);
    const Status replayed = rm.Replay(&target.catalog);
    ASSERT_TRUE(replayed.ok()) << "cut=" << cut << " " << replayed.message();
    EXPECT_EQ(DumpHeap(target.catalog, t), snapshots[k].rows) << "cut=" << cut;
    EXPECT_EQ(DumpBTree(target.catalog, idx), snapshots[k].index)
        << "cut=" << cut;
  }
}

TEST(CheckpointSweepTest, TruncationAtEveryByteAcrossCheckpointRecords) {
  // The acceptance sweep over a stream holding one COMPLETE fuzzy
  // checkpoint (begin, heap + index images, end-with-ATT) in the middle of
  // live traffic. A cut anywhere — before, inside, or after the checkpoint
  // — must still yield exactly a committed prefix: an incomplete checkpoint
  // contributes images but no anchor; a complete one bounds redo.
  CrashSink sink;
  std::vector<ShadowState> snapshots;
  std::vector<uint64_t> commit_ids;
  {
    DatabaseOptions o = TestOptions();
    sink.Install(&o.log);
    Database db(o);
    RunCheckpointedWorkload(&db, /*checkpoint_before=*/9, &snapshots,
                            &commit_ids);
  }
  const std::vector<uint8_t> stream = sink.Stream();
  ASSERT_FALSE(sink.device.crashed());

  {  // The full stream must anchor, and redo must be bounded by the anchor.
    CounterSet counters;
    ScopedCounterSet routed(&counters);
    RecoveryManager rm(stream);
    const RecoveryReport& r = rm.Scan();
    ASSERT_TRUE(r.checkpoint_anchored);
    EXPECT_GT(r.redo_start_lsn, 0u);
    EXPECT_LT(r.redo_bytes, r.total_bytes);
    EXPECT_EQ(counters.Get(Counter::kRecoveryCheckpointAnchored), 1u);
  }
  SweepEveryByte(stream, /*base=*/0, snapshots, commit_ids);
}

TEST(CheckpointSweepTest, CrashFuzzWithPeriodicCheckpoints) {
  // Randomized crash-fuzz over checkpointed histories: random workload,
  // checkpoints sprinkled between transactions, device crashes at a random
  // in-flight byte. Complements the exhaustive sweep with varied
  // checkpoint placement relative to the cut.
  const uint64_t kSeeds[] = {3, 19, 271, 65537};
  for (const uint64_t seed : kSeeds) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed);
    CrashSink sink;
    std::vector<ShadowState> snapshots;
    std::vector<uint64_t> commit_ids;
    {
      DatabaseOptions o = TestOptions();
      sink.Install(&o.log);
      Database db(o);
      const TableId t = db.CreateTable("t");
      const IndexId idx = db.CreateIndex(t, "i", IndexKind::kBTree, false);
      auto agent = db.CreateAgent(seed);

      ShadowState shadow;
      snapshots.push_back(shadow);
      std::vector<std::pair<Rid, uint64_t>> live;
      uint64_t next_key = 1;
      const int txns = 24 + static_cast<int>(rng.Next() % 12);
      const uint64_t crash_at = 1500 + rng.Next() % 6000;
      bool armed = false;
      for (int i = 0; i < txns; ++i) {
        if (i > 0 && i % 7 == 0) (void)db.CheckpointNow();
        if (!armed && i == txns / 3) {
          sink.Arm(crash_at);
          armed = true;
        }
        db.Begin(agent.get());
        const uint64_t id = agent->txn().id();
        ShadowState next = shadow;
        std::vector<std::pair<Rid, uint64_t>> next_live = live;
        const int ops = 1 + static_cast<int>(rng.Next() % 4);
        for (int op = 0; op < ops; ++op) {
          const uint64_t pick = rng.Next() % 10;
          if (pick < 4 || next_live.empty()) {
            char row[8];
            std::snprintf(row, sizeof(row), "k%06llu",
                          static_cast<unsigned long long>(next_key % 1000000));
            Rid rid;
            ASSERT_TRUE(
                db.Insert(agent.get(), t, Bytes(std::string(row, 8)), &rid)
                    .ok());
            ASSERT_TRUE(
                db.IndexInsert(agent.get(), idx, next_key, rid.ToU64()).ok());
            next.rows[rid.ToU64()] = std::string(row, 8);
            next.index.emplace(next_key, rid.ToU64());
            next_live.emplace_back(rid, next_key);
            ++next_key;
          } else if (pick < 8) {
            const auto& victim = next_live[rng.Next() % next_live.size()];
            char row[8];
            std::snprintf(row, sizeof(row), "u%06llu",
                          static_cast<unsigned long long>(rng.Next() %
                                                          1000000));
            ASSERT_TRUE(db.Update(agent.get(), t, victim.first,
                                  Bytes(std::string(row, 8)))
                            .ok());
            next.rows[victim.first.ToU64()] = std::string(row, 8);
          } else {
            const size_t vi = rng.Next() % next_live.size();
            const auto victim = next_live[vi];
            ASSERT_TRUE(db.Delete(agent.get(), t, victim.first).ok());
            ASSERT_TRUE(db.IndexRemove(agent.get(), idx, victim.second,
                                       victim.first.ToU64())
                            .ok());
            next.rows.erase(victim.first.ToU64());
            next.index.erase(
                next.index.find({victim.second, victim.first.ToU64()}));
            next_live.erase(next_live.begin() + static_cast<ptrdiff_t>(vi));
          }
        }
        if (rng.Next() % 5 == 0) {
          db.Abort(agent.get());
          continue;
        }
        ASSERT_TRUE(db.Commit(agent.get()).ok());
        shadow = std::move(next);
        live = std::move(next_live);
        snapshots.push_back(shadow);
        commit_ids.push_back(id);
      }
    }
    const std::vector<uint8_t> stream = sink.Stream();
    RecoveryManager rm(stream);
    rm.Scan();
    const size_t k = rm.report().committed_txns;
    ASSERT_LE(k, commit_ids.size());
    for (size_t i = 0; i < commit_ids.size(); ++i) {
      EXPECT_EQ(rm.IsCommitted(commit_ids[i]), i < k) << "commit#" << i;
    }
    RecoveryTarget target;
    const TableId t = target.AddTable();
    const IndexId idx = target.AddBTree(t);
    ASSERT_TRUE(rm.Replay(&target.catalog).ok());
    EXPECT_EQ(DumpHeap(target.catalog, t), snapshots[k].rows);
    EXPECT_EQ(DumpBTree(target.catalog, idx), snapshots[k].index);
  }
}

TEST(CheckpointSweepTest, ActiveTxnTableWidensRedoAcrossEveryCut) {
  // The ATT's reason to exist: a transaction that PUBLISHED records before
  // kCheckpointBegin and is still active at the snapshot. Its entries ride
  // the index eagerly (latch-only), so the checkpoint image CONTAINS its
  // uncommitted state — if the ATT failed to widen redo below begin-LSN, a
  // cut that leaves the txn a loser would have no record to undo the ghost
  // entry with. Unstaged appends publish at operation time, making the
  // scenario constructible single-threadedly with index-only operations
  // (which take no table locks, so the checkpoint pass cannot block on us).
  CrashSink sink;
  std::vector<ShadowState> snapshots;
  std::vector<uint64_t> commit_ids;
  DatabaseOptions o = TestOptions();
  o.txn.staged_log_appends = false;
  sink.Install(&o.log);
  {
    Database db(o);
    const TableId t = db.CreateTable("t");
    const IndexId idx = db.CreateIndex(t, "i", IndexKind::kBTree, false);
    auto walker = db.CreateAgent();   // the long transaction
    auto filler = db.CreateAgent(2);  // background committed traffic

    ShadowState shadow;
    snapshots.push_back(shadow);

    db.Begin(filler.get());
    const uint64_t f1 = filler->txn().id();
    Rid rid;
    ASSERT_TRUE(db.Insert(filler.get(), t, Bytes("filler-1"), &rid).ok());
    ASSERT_TRUE(db.Commit(filler.get()).ok());
    shadow.rows[rid.ToU64()] = "filler-1";
    snapshots.push_back(shadow);
    commit_ids.push_back(f1);

    db.Begin(walker.get());
    const uint64_t w = walker->txn().id();
    ASSERT_TRUE(db.IndexInsert(walker.get(), idx, 500, 77).ok());  // published

    Lsn redo_start = 0;
    ASSERT_TRUE(db.CheckpointNow(&redo_start).ok());

    ASSERT_TRUE(db.IndexInsert(walker.get(), idx, 501, 78).ok());
    ASSERT_TRUE(db.Commit(walker.get()).ok());
    ShadowState next = shadow;
    next.index.emplace(500, 77);
    next.index.emplace(501, 78);
    shadow = std::move(next);
    snapshots.push_back(shadow);
    commit_ids.push_back(w);

    db.Begin(filler.get());
    const uint64_t f2 = filler->txn().id();
    ASSERT_TRUE(db.Insert(filler.get(), t, Bytes("filler-2"), &rid).ok());
    ASSERT_TRUE(db.Commit(filler.get()).ok());
    shadow.rows[rid.ToU64()] = "filler-2";
    snapshots.push_back(shadow);
    commit_ids.push_back(f2);
  }
  const std::vector<uint8_t> stream = sink.Stream();
  {  // The anchor must reach BELOW its own begin record, to the walker's
     // first publish — the sharp end of the ATT contract.
    RecoveryManager rm(stream);
    const RecoveryReport& r = rm.Scan();
    ASSERT_TRUE(r.checkpoint_anchored);
    EXPECT_LT(r.redo_start_lsn, r.checkpoint_begin_lsn);
  }
  SweepEveryByte(stream, /*base=*/0, snapshots, commit_ids);
}

// ---- segmented log: sweep across segment boundaries -------------------------

void RemoveSegmentFiles(const std::string& prefix) {
  std::remove(prefix.c_str());
  for (uint64_t gen = 0; gen < 8; ++gen) {
    for (uint64_t seg = 0; seg < 64; ++seg) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), ".gen%llu.seg%llu",
                    static_cast<unsigned long long>(gen),
                    static_cast<unsigned long long>(seg));
      std::remove((prefix + buf).c_str());
      std::remove((prefix + buf + ".tmp").c_str());
    }
  }
}

TEST(SegmentedSweepTest, TruncationAtEveryByteAcrossSegmentBoundaries) {
  // The same acceptance sweep over a stream written through a REAL
  // SegmentedLogDevice with tiny segments: the stitched stream spans
  // several segment files and contains a complete checkpoint. Segment
  // rotation fsyncs the finished segment before the next opens, so every
  // possible crash prefix of the device IS a byte prefix of the stitched
  // stream — sweeping it covers cuts that land mid-record across a
  // segment boundary.
  const std::string prefix = "slidb_seg_sweep.log";
  RemoveSegmentFiles(prefix);
  std::vector<ShadowState> snapshots;
  std::vector<uint64_t> commit_ids;
  {
    DatabaseOptions o = TestOptions();
    o.log_path = prefix;
    o.log_segment_bytes = 1024;
    Database db(o);
    // Checkpoint early: its redo-start stays inside segment 0, so nothing
    // recycles and the sweep sees the whole stream from offset zero.
    RunCheckpointedWorkload(&db, /*checkpoint_before=*/3, &snapshots,
                            &commit_ids);
  }
  std::vector<uint8_t> stream;
  Lsn base = 0;
  ASSERT_TRUE(SegmentedLogDevice::ReadLog(prefix, &stream, &base).ok());
  ASSERT_EQ(base, 0u);
  ASSERT_GT(stream.size(), 2 * 1024u) << "stream must span >2 segments";
  {
    RecoveryManager rm(stream);
    ASSERT_TRUE(rm.Scan().checkpoint_anchored);
  }
  SweepEveryByte(stream, base, snapshots, commit_ids);
  RemoveSegmentFiles(prefix);
}

TEST(SegmentedEngineTest, CheckpointRecyclesSegmentsAndBoundsRestart) {
  // End-to-end bounded restart: a LATE checkpoint moves redo-start past
  // several segments, which are recycled on the spot — the log on disk,
  // and therefore restart cost, is bounded by checkpoint cadence, not
  // history length. Recovery then anchors on the checkpoint, reads a
  // nonzero base, and reconstructs every committed row. A second crash
  // immediately after recovery (the new generation's window) must also
  // lose nothing: the generation hand-off keeps the old log authoritative
  // until the opening checkpoint is durable.
  const std::string prefix = "slidb_seg_engine.log";
  RemoveSegmentFiles(prefix);
  DatabaseOptions o = TestOptions();
  o.log_path = prefix;
  o.log_segment_bytes = 1024;

  std::vector<ShadowState> snapshots;
  std::vector<uint64_t> commit_ids;
  uint64_t recycled = 0;
  {
    CounterSet counters;
    ScopedCounterSet routed(&counters);
    Database db(o);
    RunCheckpointedWorkload(&db, /*checkpoint_before=*/15, &snapshots,
                            &commit_ids);
    recycled = counters.Get(Counter::kLogSegmentsRecycled);
  }
  EXPECT_GT(recycled, 0u) << "late checkpoint should recycle old segments";
  {
    std::vector<uint8_t> stream;
    Lsn base = 0;
    ASSERT_TRUE(SegmentedLogDevice::ReadLog(prefix, &stream, &base).ok());
    EXPECT_GT(base, 0u) << "recycling must shift the stream base";
  }

  const ShadowState& final_state = snapshots.back();
  Rid extra_rid;
  {  // First restart: recover in place, verify, add one more committed row.
    Database db(o);
    const TableId t = db.CreateTable("accounts");
    const IndexId idx = db.CreateIndex(t, "by_key", IndexKind::kBTree, false);
    RecoveryReport report;
    ASSERT_TRUE(db.Recover(prefix, &report).ok());
    EXPECT_TRUE(report.checkpoint_anchored);
    EXPECT_LE(report.redo_bytes, report.total_bytes);
    EXPECT_EQ(DumpHeap(db.catalog(), t), final_state.rows);
    EXPECT_EQ(DumpBTree(db.catalog(), idx), final_state.index);
    auto agent = db.CreateAgent();
    db.Begin(agent.get());
    ASSERT_TRUE(db.Insert(agent.get(), t, Bytes("restart1"), &extra_rid).ok());
    ASSERT_TRUE(db.Commit(agent.get()).ok());
  }
  {  // Second crash/restart: both the pre-crash state (via the opening
     // checkpoint in the new generation) and the post-restart row survive.
    Database db(o);
    const TableId t = db.CreateTable("accounts");
    const IndexId idx = db.CreateIndex(t, "by_key", IndexKind::kBTree, false);
    RecoveryReport report;
    ASSERT_TRUE(db.Recover(prefix, &report).ok());
    EXPECT_TRUE(report.checkpoint_anchored);
    RowMap expect_rows = final_state.rows;
    expect_rows[extra_rid.ToU64()] = "restart1";
    EXPECT_EQ(DumpHeap(db.catalog(), t), expect_rows);
    EXPECT_EQ(DumpBTree(db.catalog(), idx), final_state.index);
  }
  RemoveSegmentFiles(prefix);
}

// ---- undo + CLRs: crash during recovery converges ---------------------------

/// Append a heap redo record carrying both a before-image and an
/// after-image (kUpdate / kDelete wire form).
void AppendHeapMutation(std::vector<uint8_t>* stream, uint64_t txn,
                        LogRecordType type, uint32_t table, Rid rid,
                        const std::string& before, const std::string& after) {
  std::vector<uint8_t> payload(sizeof(HeapRedoPayload) + before.size() +
                               after.size());
  HeapRedoPayload row{};
  row.table = table;
  row.slot = rid.slot;
  row.page_no = rid.page_no;
  row.before_len = static_cast<uint32_t>(before.size());
  std::memcpy(payload.data(), &row, sizeof(row));
  std::memcpy(payload.data() + sizeof(row), before.data(), before.size());
  std::memcpy(payload.data() + sizeof(row) + before.size(), after.data(),
              after.size());
  AppendRecord(stream, txn, type, payload.data(),
               static_cast<uint32_t>(payload.size()));
}

TEST(UndoClrTest, CrashDuringUndoConvergesIdempotently) {
  // The double-crash contract: a crash DURING the undo pass leaves the new
  // log holding a prefix of the loser's CLRs. The next recovery replays
  // those CLRs (repeating the partial rollback) and then re-runs the FULL
  // undo — convergent because before-image restoration is absolute, not
  // incremental. Exercised for every possible CLR prefix length, plus the
  // fully-closed case (all CLRs + the loser's kAbort), plus a warm
  // double-replay over an already-recovered target.
  std::vector<uint8_t> stream;
  const Rid x{0, 0};
  AppendHeapInsert(&stream, 1, 0, x, "version0");
  AppendRecord(&stream, 1, LogRecordType::kCommit, nullptr, 0);
  AppendHeapMutation(&stream, 2, LogRecordType::kUpdate, 0, x, "version0",
                     "version1");
  AppendHeapInsert(&stream, 2, 0, Rid{0, 1}, "ghostrow");
  // txn 2 never commits: the crash caught it mid-flight.

  const RowMap expect{{x.ToU64(), "version0"}};

  // First recovery: capture the CLRs its undo pass emits.
  struct CapturedClr {
    uint64_t loser;
    std::vector<uint8_t> wire;  // ClrPayload + inner redo payload
  };
  std::vector<CapturedClr> clrs;
  const ClrSink capture = [&](uint64_t loser, LogRecordType redo_type,
                              const uint8_t* payload, uint32_t len,
                              Lsn undo_of_lsn) {
    CapturedClr c;
    c.loser = loser;
    c.wire.resize(sizeof(ClrPayload) + len);
    ClrPayload clr{};
    clr.redo_type = static_cast<uint8_t>(redo_type);
    clr.undo_of_lsn = undo_of_lsn;
    std::memcpy(c.wire.data(), &clr, sizeof(clr));
    if (len != 0) std::memcpy(c.wire.data() + sizeof(clr), payload, len);
    clrs.push_back(std::move(c));
  };
  {
    CounterSet counters;
    ScopedCounterSet routed(&counters);
    RecoveryTarget target;
    const TableId t = target.AddTable();
    RecoveryManager rm(stream);
    ASSERT_TRUE(rm.Replay(&target.catalog, capture).ok());
    EXPECT_EQ(DumpHeap(target.catalog, t), expect);
    EXPECT_EQ(rm.report().records_undone, 2u);
    EXPECT_EQ(rm.report().clrs_emitted, 2u);
    EXPECT_EQ(rm.report().losers_rolled_back, 1u);
    EXPECT_EQ(counters.Get(Counter::kRecoveryClrsEmitted), 2u);
  }
  ASSERT_EQ(clrs.size(), 2u);

  // Second crash at every point of the undo pass: 0, 1, or 2 CLRs made it
  // out, and possibly the closing kAbort too. All must converge.
  for (size_t survived = 0; survived <= clrs.size() + 1; ++survived) {
    SCOPED_TRACE("clrs_survived=" + std::to_string(survived));
    std::vector<uint8_t> stream2 = stream;
    for (size_t i = 0; i < std::min(survived, clrs.size()); ++i) {
      AppendRecord(&stream2, clrs[i].loser, LogRecordType::kClr,
                   clrs[i].wire.data(),
                   static_cast<uint32_t>(clrs[i].wire.size()));
    }
    if (survived > clrs.size()) {
      // Undo finished and the loser was closed; the next recovery treats
      // it as durably aborted and skips its records AND its CLRs.
      AppendRecord(&stream2, 2, LogRecordType::kAbort, nullptr, 0);
    }
    RecoveryTarget target;
    const TableId t = target.AddTable();
    RecoveryManager rm(stream2);
    ASSERT_TRUE(rm.Replay(&target.catalog).ok());
    EXPECT_EQ(DumpHeap(target.catalog, t), expect);
    if (survived <= clrs.size()) {
      // Still a loser: the full undo ran again on top of the replayed
      // partial rollback.
      EXPECT_EQ(rm.report().records_undone, 2u);
      EXPECT_EQ(rm.report().losers_rolled_back, 1u);
    } else {
      EXPECT_EQ(rm.report().records_undone, 0u);
      EXPECT_GT(rm.report().records_skipped, 0u);
    }
  }
}

TEST(UndoClrTest, EngineEmitsClrsAndClosesLosersOnRecovery) {
  // Through the engine: a crash strands a loser with published records;
  // Database::RecoverFromStream must roll it back, emit CLRs into the NEW
  // log, and close the loser with a kAbort so a second crash skips it.
  CrashSink sink;
  DatabaseOptions o = TestOptions();
  o.txn.staged_log_appends = false;  // publish at operation time
  sink.Install(&o.log);
  Rid r1, r2;
  {
    Database db(o);
    const TableId t = db.CreateTable("t");
    auto agent = db.CreateAgent();
    db.Begin(agent.get());
    ASSERT_TRUE(db.Insert(agent.get(), t, Bytes("durable."), &r1).ok());
    ASSERT_TRUE(db.Commit(agent.get()).ok());
    db.Begin(agent.get());
    ASSERT_TRUE(db.Update(agent.get(), t, r1, Bytes("overwrit")).ok());
    ASSERT_TRUE(db.Insert(agent.get(), t, Bytes("stranded"), &r2).ok());
    // Crash with the loser's records published AND flushed, but no
    // commit: wait for the flusher to push the published records to the
    // device, then drop everything after — including the abort record the
    // explicit Abort below would otherwise persist. reserved_lsn, not
    // appended_lsn: the published watermark lags filled records until the
    // flusher consumes their slots.
    db.log_manager().WaitDurable(db.log_manager().reserved_lsn());
    sink.Arm(0);
    db.Abort(agent.get());
  }
  CrashSink sink2;
  DatabaseOptions o2 = TestOptions();
  sink2.Install(&o2.log);
  {
    CounterSet counters;
    ScopedCounterSet routed(&counters);
    Database db(o2);
    const TableId t = db.CreateTable("t");
    RecoveryReport report;
    ASSERT_TRUE(db.RecoverFromStream(sink.Stream(), &report).ok());
    EXPECT_EQ(report.losers_rolled_back, 1u);
    EXPECT_GT(report.clrs_emitted, 0u);
    EXPECT_EQ(counters.Get(Counter::kRecoveryClrsEmitted),
              report.clrs_emitted);
    const RowMap rows = DumpHeap(db.catalog(), t);
    EXPECT_EQ(rows, (RowMap{{r1.ToU64(), "durable."}}));
  }
  // The new log must carry the CLRs and the loser's closing kAbort — and
  // recovering FROM IT (a second crash) must reproduce the same state.
  RecoveryTarget target;
  const TableId t = target.AddTable();
  RecoveryManager rm(sink2.Stream());
  rm.Scan();
  EXPECT_GT(rm.report().aborted_txns, 0u);
  ASSERT_TRUE(rm.Replay(&target.catalog).ok());
  EXPECT_EQ(DumpHeap(target.catalog, t), (RowMap{{r1.ToU64(), "durable."}}));
}

// ---- checkpointer under concurrency -----------------------------------------
// Timing-sensitive sections gate on hardware_concurrency() >= 2 per the
// ROADMAP single-CPU guidance; the fallback runs the same logic serially.

TEST(CheckpointConcurrencyTest, FuzzyPassesUnderConcurrentWriters) {
  CrashSink sink;
  DatabaseOptions o = TestOptions();
  sink.Install(&o.log);
  Database db(o);
  const TableId t = db.CreateTable("t");
  auto setup = db.CreateAgent();
  std::vector<Rid> rids;
  db.Begin(setup.get());
  for (int i = 0; i < 32; ++i) {
    Rid rid;
    ASSERT_TRUE(db.Insert(setup.get(), t, Bytes("initial."), &rid).ok());
    rids.push_back(rid);
  }
  ASSERT_TRUE(db.Commit(setup.get()).ok());

  const bool concurrent = std::thread::hardware_concurrency() >= 2;
  const int kWriters = concurrent ? 3 : 1;
  const int kTxnsPerWriter = concurrent ? 120 : 40;
  std::atomic<bool> writers_done{false};
  std::atomic<uint64_t> commit_failures{0};

  auto writer_fn = [&](int w) {
    auto agent = db.CreateAgent(100 + static_cast<uint64_t>(w));
    Rng rng(7 * w + 1);
    for (int i = 0; i < kTxnsPerWriter; ++i) {
      db.Begin(agent.get());
      const Rid victim = rids[rng.Next() % rids.size()];
      char val[8];
      std::snprintf(val, sizeof(val), "w%02dv%03d", w, i % 1000);
      if (!db.Update(agent.get(), t, victim, Bytes(std::string(val, 8)))
               .ok()) {
        db.Abort(agent.get());
        commit_failures.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (!db.Commit(agent.get()).ok()) {
        commit_failures.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };

  uint64_t passes = 0;
  if (concurrent) {
    std::vector<std::thread> writers;
    for (int w = 0; w < kWriters; ++w) writers.emplace_back(writer_fn, w);
    // Checkpoint continuously while writers hammer the same rows: passes
    // may abandon on lock timeouts (never deadlock), completed ones must
    // be sound.
    while (!writers_done.load(std::memory_order_acquire)) {
      if (db.CheckpointNow().ok()) ++passes;
      if (passes >= 64) break;  // plenty of fuzz; let writers finish
    }
    writers_done.store(true, std::memory_order_release);
    for (auto& th : writers) th.join();
  } else {
    writer_fn(0);
    passes = 0;
  }
  // At least one pass must complete with the writers quiesced (and on the
  // single-CPU fallback this is the only pass).
  ASSERT_TRUE(db.CheckpointNow().ok());
  ++passes;
  EXPECT_EQ(commit_failures.load(), 0u);

  // The authoritative final state is the engine's own storage; a fresh
  // recovery of the captured stream must reproduce it exactly, anchored at
  // the last completed checkpoint.
  const RowMap engine_rows = DumpHeap(db.catalog(), t);
  db.log_manager().WaitDurable(db.log_manager().reserved_lsn());

  RecoveryManager rm(sink.Stream());
  const RecoveryReport& r = rm.Scan();
  EXPECT_TRUE(r.checkpoint_anchored);
  EXPECT_LT(r.redo_bytes, r.total_bytes);
  RecoveryTarget target;
  const TableId rt = target.AddTable();
  ASSERT_TRUE(rm.Replay(&target.catalog).ok());
  EXPECT_EQ(DumpHeap(target.catalog, rt), engine_rows);
}

TEST(CheckpointConcurrencyTest, BackgroundCheckpointerTicks) {
  if (std::thread::hardware_concurrency() < 2) {
    // Single-CPU fallback: the background thread would only starve the
    // workload; the synchronous path is covered above.
    GTEST_SKIP() << "needs >= 2 hardware contexts";
  }
  CrashSink sink;
  DatabaseOptions o = TestOptions();
  o.checkpoint_interval_ms = 5;
  sink.Install(&o.log);
  Database db(o);
  const TableId t = db.CreateTable("t");
  auto agent = db.CreateAgent();
  db.Begin(agent.get());
  Rid rid;
  ASSERT_TRUE(db.Insert(agent.get(), t, Bytes("ticktock"), &rid).ok());
  ASSERT_TRUE(db.Commit(agent.get()).ok());

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (db.checkpointer().completed() < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(db.checkpointer().completed(), 2u)
      << "background checkpointer never completed two passes";
}

}  // namespace
}  // namespace slidb
