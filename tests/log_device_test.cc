// Durable log device tests: segment rotation and stitching, crash-safe
// generation hand-off (tentative → authoritative), checkpoint-driven
// recycling, and the fail-stop fsync contract (a reported sync failure
// poisons the device; an unreported one in the destructor aborts).
//
// Everything here drives the devices DIRECTLY — no Database, no flusher —
// so injected fsync failures surface as Status, not as the flush-sink
// adapter's process abort (that path gets one death test at the bottom).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/log/log_device.h"
#include "src/stats/counters.h"

namespace slidb {
namespace {

/// Per-test scratch prefix; removes every segment/tmp/plain file it might
/// have produced on destruction (best-effort, tests also clean as they go).
struct ScratchLog {
  std::string prefix;

  explicit ScratchLog(const char* name) : prefix(name) { Cleanup(); }
  ~ScratchLog() { Cleanup(); }

  void Cleanup() {
    std::remove(prefix.c_str());
    for (uint64_t gen = 0; gen < 8; ++gen) {
      for (uint64_t seg = 0; seg < 64; ++seg) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), ".gen%llu.seg%llu",
                      static_cast<unsigned long long>(gen),
                      static_cast<unsigned long long>(seg));
        std::remove((prefix + buf).c_str());
        std::remove((prefix + buf + ".tmp").c_str());
      }
    }
  }

  bool SegExists(uint64_t gen, uint64_t seg) const {
    char buf[64];
    std::snprintf(buf, sizeof(buf), ".gen%llu.seg%llu",
                  static_cast<unsigned long long>(gen),
                  static_cast<unsigned long long>(seg));
    FILE* f = std::fopen((prefix + buf).c_str(), "rb");
    if (f != nullptr) std::fclose(f);
    return f != nullptr;
  }
};

std::vector<uint8_t> Pattern(size_t len, uint8_t seed) {
  std::vector<uint8_t> out(len);
  for (size_t i = 0; i < len; ++i) {
    out[i] = static_cast<uint8_t>(seed + i * 7);
  }
  return out;
}

TEST(SegmentedDeviceTest, RotationSpansSegmentsAndRoundTrips) {
  ScratchLog fs("slidb_segdev_rotate.log");
  constexpr uint64_t kSeg = 128;  // payload bytes per segment
  const std::vector<uint8_t> data = Pattern(5 * kSeg + 37, 3);
  {
    CounterSet counters;
    ScopedCounterSet routed(&counters);
    std::unique_ptr<SegmentedLogDevice> dev;
    ASSERT_TRUE(SegmentedLogDevice::Open(fs.prefix, /*fsync=*/1, kSeg, &dev)
                    .ok());
    // Append in odd-sized chunks so writes straddle segment boundaries.
    size_t done = 0;
    while (done < data.size()) {
      const size_t chunk = std::min<size_t>(97, data.size() - done);
      ASSERT_TRUE(dev->Append(data.data() + done, chunk, done).ok());
      done += chunk;
    }
    EXPECT_EQ(dev->DurableBytes(), data.size());
    EXPECT_EQ(dev->base_lsn(), 0u);
    EXPECT_EQ(counters.Get(Counter::kLogSegmentsCreated), 6u);
    std::vector<uint8_t> back;
    ASSERT_TRUE(dev->ReadAll(&back).ok());
    EXPECT_EQ(back, data);
  }
  // Reopen path: ReadLog stitches the whole generation back.
  std::vector<uint8_t> stitched;
  Lsn base = ~0ULL;
  uint64_t gen = 0;
  ASSERT_TRUE(SegmentedLogDevice::ReadLog(fs.prefix, &stitched, &base, &gen)
                  .ok());
  EXPECT_EQ(base, 0u);
  EXPECT_EQ(gen, 0u);  // first generation on a clean directory
  EXPECT_EQ(stitched, data);
}

TEST(SegmentedDeviceTest, RecycleBelowUnlinksWholeSegmentsAndShiftsBase) {
  ScratchLog fs("slidb_segdev_recycle.log");
  constexpr uint64_t kSeg = 128;
  const std::vector<uint8_t> data = Pattern(4 * kSeg, 11);
  std::unique_ptr<SegmentedLogDevice> dev;
  ASSERT_TRUE(SegmentedLogDevice::Open(fs.prefix, 1, kSeg, &dev).ok());
  ASSERT_TRUE(dev->Append(data.data(), data.size(), 0).ok());

  CounterSet counters;
  ScopedCounterSet routed(&counters);
  // Recycle below LSN 2.5 segments: whole segments strictly below go
  // (segments 0 and 1), and segment 2's header records the trim LSN — the
  // base shifts to the exact recycle point, not the segment boundary,
  // because a record may straddle into the kept segment.
  const Lsn kTrim = 2 * kSeg + kSeg / 2;
  dev->RecycleBelow(kTrim);
  EXPECT_EQ(counters.Get(Counter::kLogSegmentsRecycled), 2u);
  EXPECT_FALSE(fs.SegExists(0, 0));
  EXPECT_FALSE(fs.SegExists(0, 1));
  EXPECT_TRUE(fs.SegExists(0, 2));
  EXPECT_EQ(dev->base_lsn(), kTrim);

  // ReadAll returns the retained suffix; ReadLog agrees and reports base.
  std::vector<uint8_t> back;
  ASSERT_TRUE(dev->ReadAll(&back).ok());
  const std::vector<uint8_t> tail(data.begin() + kTrim, data.end());
  EXPECT_EQ(back, tail);
  dev.reset();
  std::vector<uint8_t> stitched;
  Lsn base = 0;
  ASSERT_TRUE(SegmentedLogDevice::ReadLog(fs.prefix, &stitched, &base).ok());
  EXPECT_EQ(base, kTrim);
  EXPECT_EQ(stitched, tail);
}

TEST(SegmentedDeviceTest, TentativeGenerationFallsBackUntilAuthoritative) {
  ScratchLog fs("slidb_segdev_tentative.log");
  constexpr uint64_t kSeg = 256;
  const std::vector<uint8_t> old_data = Pattern(100, 21);
  {  // Generation 0: the established log.
    std::unique_ptr<SegmentedLogDevice> dev;
    ASSERT_TRUE(SegmentedLogDevice::Open(fs.prefix, 1, kSeg, &dev).ok());
    ASSERT_TRUE(dev->Append(old_data.data(), old_data.size(), 0).ok());
  }
  const std::vector<uint8_t> new_data = Pattern(60, 42);
  {  // Generation 1 appends but crashes before the authority mark.
    std::unique_ptr<SegmentedLogDevice> dev;
    ASSERT_TRUE(SegmentedLogDevice::Open(fs.prefix, 1, kSeg, &dev).ok());
    EXPECT_EQ(dev->write_generation(), 1u);
    ASSERT_TRUE(dev->Append(new_data.data(), new_data.size(), 0).ok());
    // Recycling is refused while tentative: the old generation is still
    // the source of truth and gen-1 may be discarded wholesale.
    dev->RecycleBelow(kSeg);
    EXPECT_TRUE(fs.SegExists(1, 0));
  }
  {  // Recovery after the crash must read generation 0, not the orphan.
    std::vector<uint8_t> stream;
    Lsn base = 0;
    uint64_t gen = 0;
    ASSERT_TRUE(SegmentedLogDevice::ReadLog(fs.prefix, &stream, &base, &gen)
                    .ok());
    EXPECT_EQ(gen, 0u);
    EXPECT_EQ(stream, old_data);
  }
  {  // Generation 2 completes the hand-off: append, then mark.
    std::unique_ptr<SegmentedLogDevice> dev;
    ASSERT_TRUE(SegmentedLogDevice::Open(fs.prefix, 1, kSeg, &dev).ok());
    EXPECT_EQ(dev->write_generation(), 2u);
    ASSERT_TRUE(dev->Append(new_data.data(), new_data.size(), 0).ok());
    ASSERT_TRUE(dev->MarkGenerationAuthoritative().ok());
    // Predecessors are gone the moment the mark is durable.
    EXPECT_FALSE(fs.SegExists(0, 0));
    EXPECT_FALSE(fs.SegExists(1, 0));
  }
  std::vector<uint8_t> stream;
  Lsn base = 0;
  uint64_t gen = 0;
  ASSERT_TRUE(SegmentedLogDevice::ReadLog(fs.prefix, &stream, &base, &gen)
                  .ok());
  EXPECT_EQ(gen, 2u);
  EXPECT_EQ(stream, new_data);
}

TEST(SegmentedDeviceTest, AuthorityMarkWithoutAppendsMaterializesGeneration) {
  // An empty (or fully torn) predecessor leaves recovery nothing to replay,
  // so no append ever prepares the new generation. The mark must still
  // take: otherwise the generation stays tentative and a later crash falls
  // back to the stale predecessor, losing every commit made since.
  ScratchLog fs("slidb_segdev_emptymark.log");
  constexpr uint64_t kSeg = 256;
  {  // Predecessor generation exists but holds zero payload bytes.
    std::unique_ptr<SegmentedLogDevice> dev;
    ASSERT_TRUE(SegmentedLogDevice::Open(fs.prefix, 1, kSeg, &dev).ok());
    const uint8_t byte = 0;
    ASSERT_TRUE(dev->Append(&byte, 0, 0).ok());  // forces seg0 creation
  }
  const std::vector<uint8_t> data = Pattern(50, 77);
  {
    std::unique_ptr<SegmentedLogDevice> dev;
    ASSERT_TRUE(SegmentedLogDevice::Open(fs.prefix, 1, kSeg, &dev).ok());
    ASSERT_TRUE(dev->MarkGenerationAuthoritative().ok());
    ASSERT_TRUE(dev->Append(data.data(), data.size(), 0).ok());
  }
  std::vector<uint8_t> stream;
  Lsn base = 0;
  uint64_t gen = 0;
  ASSERT_TRUE(SegmentedLogDevice::ReadLog(fs.prefix, &stream, &base, &gen)
                  .ok());
  EXPECT_EQ(gen, 1u);
  EXPECT_EQ(stream, data);
}

TEST(SegmentedDeviceTest, SupersedesLegacySingleFileLog) {
  // Upgrading a deployment from FileLogDevice to segments: the old plain
  // file makes the new generation tentative, and the authority mark
  // removes it.
  ScratchLog fs("slidb_segdev_legacy.log");
  {
    std::unique_ptr<FileLogDevice> legacy;
    ASSERT_TRUE(FileLogDevice::Open(fs.prefix, 1, &legacy).ok());
    const std::vector<uint8_t> bytes = Pattern(40, 5);
    ASSERT_TRUE(legacy->Append(bytes.data(), bytes.size(), 0).ok());
  }
  std::unique_ptr<SegmentedLogDevice> dev;
  ASSERT_TRUE(SegmentedLogDevice::Open(fs.prefix, 1, 256, &dev).ok());
  const std::vector<uint8_t> data = Pattern(32, 9);
  ASSERT_TRUE(dev->Append(data.data(), data.size(), 0).ok());
  ASSERT_TRUE(dev->MarkGenerationAuthoritative().ok());
  FILE* f = std::fopen(fs.prefix.c_str(), "rb");
  EXPECT_EQ(f, nullptr) << "legacy log should be unlinked";
  if (f != nullptr) std::fclose(f);
}

// ---- fail-stop on fsync failure ---------------------------------------------

TEST(FailStopTest, FileDeviceFsyncFailurePoisonsAndReportsError) {
  ScratchLog fs("slidb_failstop_file.log");
  std::unique_ptr<FileLogDevice> dev;
  ASSERT_TRUE(FileLogDevice::Open(fs.prefix, /*fsync_every_n=*/1, &dev).ok());
  const std::vector<uint8_t> data = Pattern(64, 1);
  ASSERT_TRUE(dev->Append(data.data(), data.size(), 0).ok());
  EXPECT_EQ(dev->DurableBytes(), 64u);

  CounterSet counters;
  ScopedCounterSet routed(&counters);
  SetLogSyncFailureInjection(1);
  const Status st = dev->Append(data.data(), data.size(), 64);
  SetLogSyncFailureInjection(0);
  EXPECT_TRUE(st.IsIoError());
  EXPECT_TRUE(dev->poisoned());
  // The failed range must NOT count as durable: acking it would be silent
  // data loss, the exact thing fail-stop exists to prevent.
  EXPECT_EQ(dev->DurableBytes(), 64u);
  EXPECT_EQ(counters.Get(Counter::kLogSyncFailures), 1u);
  // Poison is sticky: the device never accepts another byte.
  EXPECT_TRUE(dev->Append(data.data(), data.size(), 128).IsIoError());
}

TEST(FailStopTest, SegmentedDeviceFsyncFailurePoisonsAndReportsError) {
  ScratchLog fs("slidb_failstop_seg.log");
  std::unique_ptr<SegmentedLogDevice> dev;
  ASSERT_TRUE(SegmentedLogDevice::Open(fs.prefix, 1, 256, &dev).ok());
  const std::vector<uint8_t> data = Pattern(64, 1);
  ASSERT_TRUE(dev->Append(data.data(), data.size(), 0).ok());

  SetLogSyncFailureInjection(1);
  const Status st = dev->Append(data.data(), data.size(), 64);
  SetLogSyncFailureInjection(0);
  EXPECT_TRUE(st.IsIoError());
  EXPECT_TRUE(dev->poisoned());
  EXPECT_EQ(dev->DurableBytes(), 64u);
  EXPECT_TRUE(dev->Append(data.data(), data.size(), 128).IsIoError());
}

TEST(FailStopDeathTest, DestructorTailSyncFailureAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Coalesced-fsync mode holds an unsynced tail at destruction. The
  // destructor has no status channel, so an UNREPORTED failure there must
  // abort rather than let the process exit believing the tail is durable.
  ScratchLog fs("slidb_failstop_dtor.log");
  std::unique_ptr<FileLogDevice> dev;
  ASSERT_TRUE(FileLogDevice::Open(fs.prefix, /*fsync_every_n=*/8, &dev).ok());
  const std::vector<uint8_t> data = Pattern(32, 2);
  ASSERT_TRUE(dev->Append(data.data(), data.size(), 0).ok());  // tail unsynced
  EXPECT_DEATH(
      {
        SetLogSyncFailureInjection(1);
        dev.reset();
      },
      "log tail fsync failed");
  SetLogSyncFailureInjection(0);  // parent process: leave the seam disarmed
}

}  // namespace
}  // namespace slidb
