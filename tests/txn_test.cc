// Transaction manager tests: lifecycle, undo ordering, durability
// interaction, the commit pipeline's early-lock-release phase split, and
// SLI hand-off across the Begin/Commit boundary.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "src/txn/transaction_manager.h"

namespace slidb {
namespace {

struct TxnHarness {
  TxnHarness() {
    LockManagerOptions lo;
    lo.deadlock_interval_us = 500;
    lock_manager = std::make_unique<LockManager>(lo);
    LogOptions logo;
    logo.flush_interval_us = 50;
    log_manager = std::make_unique<LogManager>(logo);
    txn_manager = std::make_unique<TransactionManager>(lock_manager.get(),
                                                       log_manager.get());
  }
  std::unique_ptr<LockManager> lock_manager;
  std::unique_ptr<LogManager> log_manager;
  std::unique_ptr<TransactionManager> txn_manager;
};

TEST(TxnTest, BeginAssignsMonotonicIds) {
  TxnHarness h;
  AgentContext agent(0);
  Transaction* t1 = h.txn_manager->Begin(&agent);
  const uint64_t id1 = t1->id();
  ASSERT_TRUE(h.txn_manager->Commit(&agent).ok());
  Transaction* t2 = h.txn_manager->Begin(&agent);
  EXPECT_GT(t2->id(), id1);
  h.txn_manager->Abort(&agent);
}

TEST(TxnTest, StateTransitions) {
  TxnHarness h;
  AgentContext agent(0);
  Transaction* t = h.txn_manager->Begin(&agent);
  EXPECT_EQ(t->state(), TxnState::kActive);
  ASSERT_TRUE(h.txn_manager->Commit(&agent).ok());
  EXPECT_EQ(t->state(), TxnState::kCommitted);

  h.txn_manager->Begin(&agent);
  h.txn_manager->Abort(&agent);
  EXPECT_EQ(t->state(), TxnState::kAborted);
}

TEST(TxnTest, CommitOfInactiveTxnRejected) {
  TxnHarness h;
  AgentContext agent(0);
  h.txn_manager->Begin(&agent);
  ASSERT_TRUE(h.txn_manager->Commit(&agent).ok());
  EXPECT_TRUE(h.txn_manager->Commit(&agent).IsInvalidArgument());
  h.txn_manager->Abort(&agent);  // no-op on inactive txn
}

TEST(TxnTest, UndoRunsInReverseOrderOnAbort) {
  TxnHarness h;
  AgentContext agent(0);
  Transaction* t = h.txn_manager->Begin(&agent);
  std::vector<int> order;
  t->AddUndo([&] { order.push_back(1); });
  t->AddUndo([&] { order.push_back(2); });
  t->AddUndo([&] { order.push_back(3); });
  h.txn_manager->Abort(&agent);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 3);
  EXPECT_EQ(order[1], 2);
  EXPECT_EQ(order[2], 1);
}

TEST(TxnTest, UndoNotRunOnCommit) {
  TxnHarness h;
  AgentContext agent(0);
  Transaction* t = h.txn_manager->Begin(&agent);
  bool ran = false;
  t->AddUndo([&] { ran = true; });
  ASSERT_TRUE(h.txn_manager->Commit(&agent).ok());
  EXPECT_FALSE(ran);
}

TEST(TxnTest, CommitWaitsForDurability) {
  TxnHarness h;
  AgentContext agent(0);
  h.txn_manager->Begin(&agent);
  ASSERT_TRUE(h.txn_manager->Commit(&agent).ok());
  // The commit record must be durable by the time Commit returns.
  EXPECT_GE(h.log_manager->durable_lsn(), h.log_manager->appended_lsn());
}

TEST(TxnTest, LocksReleasedOnCommitAndAbort) {
  TxnHarness h;
  AgentContext agent(0);
  h.txn_manager->Begin(&agent);
  ASSERT_TRUE(h.lock_manager
                  ->Lock(&agent.txn().lock_client(), LockId::Table(0, 1),
                         LockMode::kX)
                  .ok());
  ASSERT_TRUE(h.txn_manager->Commit(&agent).ok());

  // Another client can now take the conflicting lock instantly.
  LockClient other;
  other.StartTxn(1000, 9);
  ASSERT_TRUE(h.lock_manager->Lock(&other, LockId::Table(0, 1), LockMode::kX)
                  .ok());
  h.lock_manager->ReleaseAll(&other, nullptr, false);

  h.txn_manager->Begin(&agent);
  ASSERT_TRUE(h.lock_manager
                  ->Lock(&agent.txn().lock_client(), LockId::Table(0, 1),
                         LockMode::kX)
                  .ok());
  h.txn_manager->Abort(&agent);
  other.StartTxn(1001, 9);
  ASSERT_TRUE(h.lock_manager->Lock(&other, LockId::Table(0, 1), LockMode::kX)
                  .ok());
  h.lock_manager->ReleaseAll(&other, nullptr, false);
}

TEST(TxnTest, SliFlowsThroughBeginCommitBoundary) {
  TxnHarness h;
  h.lock_manager->mutable_options().enable_sli = true;
  h.lock_manager->mutable_options().sli_require_hot = false;
  AgentContext agent(0);

  h.txn_manager->Begin(&agent);
  ASSERT_TRUE(h.lock_manager
                  ->Lock(&agent.txn().lock_client(), LockId::Table(0, 1),
                         LockMode::kS)
                  .ok());
  ASSERT_TRUE(h.txn_manager->Commit(&agent).ok());
  EXPECT_GT(agent.sli().inherited_count(), 0u);

  CounterSet counters;
  {
    ScopedCounterSet routed(&counters);
    h.txn_manager->Begin(&agent);
    ASSERT_TRUE(h.lock_manager
                    ->Lock(&agent.txn().lock_client(), LockId::Table(0, 1),
                           LockMode::kS)
                    .ok());
    ASSERT_TRUE(h.txn_manager->Commit(&agent).ok());
  }
  EXPECT_GT(counters.Get(Counter::kSliReclaimed), 0u);
}

TEST(TxnTest, AbortPreservesAgentSpeculation) {
  // A user abort (e.g. TM1 invalid input) must not throw away the agent's
  // inherited locks — the next transaction can still reclaim them.
  TxnHarness h;
  h.lock_manager->mutable_options().enable_sli = true;
  h.lock_manager->mutable_options().sli_require_hot = false;
  AgentContext agent(0);

  h.txn_manager->Begin(&agent);
  ASSERT_TRUE(h.lock_manager
                  ->Lock(&agent.txn().lock_client(), LockId::Table(0, 1),
                         LockMode::kS)
                  .ok());
  ASSERT_TRUE(h.txn_manager->Commit(&agent).ok());
  const size_t inherited = agent.sli().inherited_count();
  ASSERT_GT(inherited, 0u);

  // Aborting transaction that never touches the locks.
  h.txn_manager->Begin(&agent);
  h.txn_manager->Abort(&agent);
  EXPECT_EQ(agent.sli().inherited_count(), inherited);

  // And the next transaction reclaims.
  CounterSet counters;
  {
    ScopedCounterSet routed(&counters);
    h.txn_manager->Begin(&agent);
    ASSERT_TRUE(h.lock_manager
                    ->Lock(&agent.txn().lock_client(), LockId::Table(0, 1),
                           LockMode::kS)
                    .ok());
    ASSERT_TRUE(h.txn_manager->Commit(&agent).ok());
  }
  EXPECT_GT(counters.Get(Counter::kSliReclaimed), 0u);
}

/// Blocks the flusher's device write until the test opens the gate, putting
/// the durability point under test control.
struct FlushGate {
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;

  void Install(LogOptions* o) {
    o->flush_sink = [this](const uint8_t*, size_t, Lsn) {
      std::unique_lock<std::mutex> lk(mu);
      cv.wait(lk, [this] { return open; });
    };
  }
  void Open() {
    {
      std::lock_guard<std::mutex> g(mu);
      open = true;
    }
    cv.notify_all();
  }
};

TEST(TxnTest, EarlyLockReleaseDropsLocksBeforeDurability) {
  FlushGate gate;
  LockManagerOptions lo;
  lo.deadlock_interval_us = 500;
  LockManager lock_manager(lo);
  LogOptions logo;
  logo.flush_interval_us = 50;
  gate.Install(&logo);
  LogManager log_manager(logo);
  TxnOptions txo;
  txo.early_lock_release = true;
  TransactionManager tm(&lock_manager, &log_manager, txo);

  AgentContext agent(0);
  tm.Begin(&agent);
  ASSERT_TRUE(lock_manager
                  .Lock(&agent.txn().lock_client(), LockId::Table(0, 1),
                        LockMode::kX)
                  .ok());
  // A logged mutation makes this a write transaction: read-only commits
  // skip the log-insert/wait-durable phases entirely.
  const uint8_t img[4] = {1, 2, 3, 4};
  tm.LogHeapOp(&agent, LogRecordType::kUpdate, 1, Rid{0, 0}, {}, img);

  std::atomic<bool> commit_done{false};
  CounterSet commit_counters;
  std::thread committer([&] {
    ScopedCounterSet routed(&commit_counters);
    EXPECT_TRUE(tm.Commit(&agent).ok());
    commit_done.store(true, std::memory_order_release);
  });

  // The conflicting lock must become available while the commit record is
  // still stuck behind the gated flush: phase 2 (lock release) runs before
  // phase 3 (wait-durable).
  LockClient other;
  other.StartTxn(1000, 9);
  ASSERT_TRUE(lock_manager.Lock(&other, LockId::Table(0, 1), LockMode::kX)
                  .ok());
  EXPECT_FALSE(commit_done.load(std::memory_order_acquire));
  EXPECT_LT(log_manager.durable_lsn(), log_manager.reserved_lsn());
  lock_manager.ReleaseAll(&other, nullptr, false);

  gate.Open();
  committer.join();
  EXPECT_TRUE(commit_done.load());
  EXPECT_GT(commit_counters.Get(Counter::kTxnEarlyRelease), 0u);
}

TEST(TxnTest, LegacyOrderingHoldsLocksUntilDurable) {
  FlushGate gate;
  LockManagerOptions lo;
  lo.deadlock_interval_us = 500;
  lo.lock_timeout_us = 100'000;  // short: we expect a timeout below
  LockManager lock_manager(lo);
  LogOptions logo;
  logo.flush_interval_us = 50;
  gate.Install(&logo);
  LogManager log_manager(logo);
  TxnOptions txo;
  txo.early_lock_release = false;
  TransactionManager tm(&lock_manager, &log_manager, txo);

  AgentContext agent(0);
  tm.Begin(&agent);
  ASSERT_TRUE(lock_manager
                  .Lock(&agent.txn().lock_client(), LockId::Table(0, 1),
                        LockMode::kX)
                  .ok());
  const uint8_t img[4] = {1, 2, 3, 4};
  tm.LogHeapOp(&agent, LogRecordType::kUpdate, 1, Rid{0, 0}, {}, img);

  std::thread committer([&] { EXPECT_TRUE(tm.Commit(&agent).ok()); });

  // With the legacy ordering the lock is held across the (gated) durable
  // wait, so a conflicting request must time out.
  LockClient other;
  other.StartTxn(1000, 9);
  EXPECT_TRUE(lock_manager.Lock(&other, LockId::Table(0, 1), LockMode::kX)
                  .IsTimedOut());

  gate.Open();
  committer.join();
  // After commit returns, the lock is free.
  other.StartTxn(1001, 9);
  ASSERT_TRUE(lock_manager.Lock(&other, LockId::Table(0, 1), LockMode::kX)
                  .ok());
  lock_manager.ReleaseAll(&other, nullptr, false);
}

TEST(TxnTest, ReadOnlyCommitWaitsForObservedWritersDurability) {
  // ELR hazard regression: writer W drops its X lock at commit-record
  // *insertion*; reader R then takes the lock, reads W's data, and commits
  // without logging anything. R must still not RETURN before W's record is
  // durable — otherwise R's caller externalizes state a crash would
  // un-commit. The read-only fast path therefore waits on the reserved-LSN
  // horizon instead of skipping the durable wait outright.
  FlushGate gate;
  LockManagerOptions lo;
  lo.deadlock_interval_us = 500;
  LockManager lock_manager(lo);
  LogOptions logo;
  logo.flush_interval_us = 50;
  gate.Install(&logo);
  LogManager log_manager(logo);
  TxnOptions txo;
  txo.early_lock_release = true;
  TransactionManager tm(&lock_manager, &log_manager, txo);

  AgentContext writer(0);
  tm.Begin(&writer);
  ASSERT_TRUE(lock_manager
                  .Lock(&writer.txn().lock_client(), LockId::Table(0, 1),
                        LockMode::kX)
                  .ok());
  const uint8_t img[4] = {9, 9, 9, 9};
  tm.LogHeapOp(&writer, LogRecordType::kUpdate, 1, Rid{0, 0}, {}, img);
  std::thread w_commit([&] { EXPECT_TRUE(tm.Commit(&writer).ok()); });

  // Reader acquires the lock W released early (the flush is still gated).
  AgentContext reader(1);
  tm.Begin(&reader);
  ASSERT_TRUE(lock_manager
                  .Lock(&reader.txn().lock_client(), LockId::Table(0, 1),
                        LockMode::kS)
                  .ok());
  std::atomic<bool> r_done{false};
  std::thread r_commit([&] {
    EXPECT_TRUE(tm.Commit(&reader).ok());
    r_done.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(r_done.load(std::memory_order_acquire))
      << "read-only commit returned before the observed writer was durable";
  // W's begin + update + commit only; R appended nothing.
  EXPECT_EQ(log_manager.Stats().records, 3u);

  gate.Open();
  w_commit.join();
  r_commit.join();
  EXPECT_TRUE(r_done.load());
}

TEST(TxnTest, ReadOnlyCommitSkipsLogAndDurableWait) {
  // A transaction that logged nothing must commit without appending a
  // record or waiting on the flusher — the sink stays gated (a durable
  // wait would hang and time the test out) and the log stays empty.
  FlushGate gate;
  LockManagerOptions lo;
  lo.deadlock_interval_us = 500;
  LockManager lock_manager(lo);
  LogOptions logo;
  logo.flush_interval_us = 50;
  gate.Install(&logo);
  LogManager log_manager(logo);
  TransactionManager tm(&lock_manager, &log_manager);

  AgentContext agent(0);
  tm.Begin(&agent);
  ASSERT_TRUE(lock_manager
                  .Lock(&agent.txn().lock_client(), LockId::Table(0, 1),
                        LockMode::kS)
                  .ok());
  ASSERT_TRUE(tm.Commit(&agent).ok());
  EXPECT_EQ(log_manager.Stats().records, 0u);
  EXPECT_EQ(log_manager.reserved_lsn(), 0u);
  gate.Open();  // release the flusher for clean shutdown
}

/// FlushGate that also captures the device stream (bytes land only after
/// the gate opens, exactly when they become durable), so tests can ask
/// which commit records were parseable at a given instant.
struct CapturingFlushGate {
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;
  std::vector<uint8_t> bytes;

  void Install(LogOptions* o) {
    o->flush_sink = [this](const uint8_t* d, size_t n, Lsn) {
      std::unique_lock<std::mutex> lk(mu);
      cv.wait(lk, [this] { return open; });
      bytes.insert(bytes.end(), d, d + n);
    };
  }
  void Open() {
    {
      std::lock_guard<std::mutex> g(mu);
      open = true;
    }
    cv.notify_all();
  }
  /// True iff a commit record of `txn_id` is parseable from the captured
  /// durable stream (envelopes are looked through, like the scanner does).
  bool HasDurableCommit(uint64_t txn_id) {
    std::lock_guard<std::mutex> g(mu);
    bool found = false;
    size_t pos = 0;
    LogRecordHeader hdr;
    const uint8_t* payload = nullptr;
    while (DecodeLogRecord(bytes.data(), bytes.size(), pos, 0, &hdr,
                           &payload) == LogScanStatus::kOk) {
      if (hdr.type == static_cast<uint8_t>(LogRecordType::kBatchSeal)) {
        ForEachEnvelopeRecord(
            payload, hdr.payload_len, hdr.lsn + sizeof(LogRecordHeader),
            [&](const LogRecordHeader& inner, const uint8_t*) {
              if (inner.type == static_cast<uint8_t>(LogRecordType::kCommit) &&
                  inner.txn_id == txn_id) {
                found = true;
              }
            });
      } else if (hdr.type == static_cast<uint8_t>(LogRecordType::kCommit) &&
                 hdr.txn_id == txn_id) {
        found = true;
      }
      pos += sizeof(LogRecordHeader) + hdr.payload_len;
    }
    return found;
  }
};

TEST(TxnTest, SpeculativeCommitsReturnEarlyAndSettleOnlyWhenDurable) {
  // The speculative extension of the PR-4 durability gate. With
  // speculative_reads on, BOTH commits below return while the flush is
  // gated — the writer's ack (its own commit record) and the reader's ack
  // (the writer's horizon it observed) park on the settlement queue. The
  // gate then proves externalization still waits for durability: no ack
  // settles before the writer's commit record is parseable from the
  // captured device stream.
  CapturingFlushGate gate;
  LockManagerOptions lo;
  lo.deadlock_interval_us = 500;
  LockManager lock_manager(lo);
  LogOptions logo;
  logo.flush_interval_us = 50;
  gate.Install(&logo);
  LogManager log_manager(logo);
  TxnOptions txo;
  txo.early_lock_release = true;
  txo.speculative_reads = true;
  TransactionManager tm(&lock_manager, &log_manager, txo);

  // Writer commits on THIS thread: under speculation Commit() must return
  // with the flush still gated — no committer thread needed.
  AgentContext writer(0);
  CounterSet wc;
  uint64_t writer_id = 0;
  {
    ScopedCounterSet routed(&wc);
    tm.Begin(&writer);
    writer_id = writer.txn().id();
    ASSERT_TRUE(lock_manager
                    .Lock(&writer.txn().lock_client(), LockId::Table(0, 1),
                          LockMode::kX)
                    .ok());
    const uint8_t img[4] = {1, 2, 3, 4};
    tm.LogHeapOp(&writer, LogRecordType::kUpdate, 1, Rid{0, 0}, {}, img);
    ASSERT_TRUE(tm.Commit(&writer).ok());
  }
  EXPECT_EQ(wc.Get(Counter::kTxnDeferredAcks), 1u);
  EXPECT_EQ(writer.deferred_acks().outstanding(), 1u);

  // Speculative read: take the early-released lock, pick up the writer's
  // horizon, and commit — also returns immediately, parking the second ack.
  AgentContext reader(1);
  CounterSet rc;
  {
    ScopedCounterSet routed(&rc);
    tm.Begin(&reader);
    ASSERT_TRUE(lock_manager
                    .Lock(&reader.txn().lock_client(), LockId::Table(0, 1),
                          LockMode::kS)
                    .ok());
    EXPECT_GT(reader.txn().lock_client().dep_lsn(), 0u)
        << "the acquisition must capture the writer's durability horizon";
    ASSERT_TRUE(tm.Commit(&reader).ok());
  }
  EXPECT_GE(rc.Get(Counter::kTxnSpecReads), 1u);
  EXPECT_EQ(rc.Get(Counter::kTxnDeferredAcks), 1u);
  EXPECT_EQ(reader.deferred_acks().outstanding(), 1u);

  // THE gate: while the writer's record is stuck behind the closed sink,
  // neither ack may settle — a drain must block.
  std::atomic<bool> drained{false};
  CounterSet dc;
  std::thread drainer([&] {
    ScopedCounterSet routed(&dc);
    reader.DrainDeferredAcks();
    writer.DrainDeferredAcks();
    drained.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(drained.load(std::memory_order_acquire))
      << "deferred ack settled before its dependency was durable";
  EXPECT_FALSE(gate.HasDurableCommit(writer_id));

  gate.Open();
  drainer.join();
  // Settlement implies the writer's commit record is parseable from the
  // durable stream — the soundness invariant, restated for deferred acks.
  EXPECT_TRUE(gate.HasDurableCommit(writer_id));
  EXPECT_EQ(reader.deferred_acks().outstanding(), 0u);
  EXPECT_EQ(writer.deferred_acks().outstanding(), 0u);
  EXPECT_EQ(dc.Get(Counter::kTxnDepAbortedAcks), 0u);
  EXPECT_GT(dc.Get(Counter::kTxnDepSettleNs), 0u);
}

TEST(TxnTest, WriterAbortAfterSpeculativeReadLeavesNoDependency) {
  // An aborting writer stamps no durability horizon on the locks it drops
  // (its effects were undone — there is nothing for a reader to depend
  // on), so the speculative read path over its row must carry no
  // dependency: the reader's commit returns with the flusher fully gated
  // AND parks nothing.
  FlushGate gate;
  LockManagerOptions lo;
  lo.deadlock_interval_us = 500;
  LockManager lock_manager(lo);
  LogOptions logo;
  logo.flush_interval_us = 50;
  gate.Install(&logo);
  LogManager log_manager(logo);
  TxnOptions txo;
  txo.early_lock_release = true;
  txo.speculative_reads = true;
  TransactionManager tm(&lock_manager, &log_manager, txo);

  AgentContext writer(0);
  tm.Begin(&writer);
  ASSERT_TRUE(lock_manager
                  .Lock(&writer.txn().lock_client(), LockId::Table(0, 1),
                        LockMode::kX)
                  .ok());
  const uint8_t img[4] = {7, 7, 7, 7};
  tm.LogHeapOp(&writer, LogRecordType::kUpdate, 1, Rid{0, 0}, {}, img);
  tm.Abort(&writer);
  // Nothing of the aborted writer ever reached the log (staged redo was
  // dropped), and its release stamped no commit LSN on the head.
  EXPECT_EQ(log_manager.Stats().records, 0u);

  AgentContext reader(1);
  CounterSet rc;
  {
    ScopedCounterSet routed(&rc);
    tm.Begin(&reader);
    ASSERT_TRUE(lock_manager
                    .Lock(&reader.txn().lock_client(), LockId::Table(0, 1),
                          LockMode::kS)
                    .ok());
    EXPECT_EQ(reader.txn().lock_client().dep_lsn(), 0u);
    ASSERT_TRUE(tm.Commit(&reader).ok());
  }
  EXPECT_EQ(rc.Get(Counter::kTxnSpecReads), 0u);
  EXPECT_EQ(rc.Get(Counter::kTxnDeferredAcks), 0u);
  EXPECT_EQ(reader.deferred_acks().outstanding(), 0u);
  gate.Open();  // release the flusher for clean shutdown
}

TEST(TxnTest, LogBytesTracked) {
  TxnHarness h;
  AgentContext agent(0);
  Transaction* t = h.txn_manager->Begin(&agent);
  t->AddLogBytes(128);
  t->AddLogBytes(64);
  EXPECT_EQ(t->log_bytes(), 192u);
  ASSERT_TRUE(h.txn_manager->Commit(&agent).ok());
  h.txn_manager->Begin(&agent);
  EXPECT_EQ(t->log_bytes(), 0u);  // reset per transaction
  h.txn_manager->Abort(&agent);
}

}  // namespace
}  // namespace slidb
