// Workload tests: loader row counts, spec failure rates (statistical),
// balance/consistency invariants under concurrent execution with SLI both
// off and on, and the driver harness itself.
#include <gtest/gtest.h>

#include <memory>

#include "src/workload/contention.h"
#include "src/workload/driver.h"
#include "src/workload/tm1.h"
#include "src/workload/tpcb.h"
#include "src/workload/tpcc.h"

namespace slidb {
namespace {

DatabaseOptions SmallDbOptions(bool sli) {
  DatabaseOptions o;
  o.lock.enable_sli = sli;
  o.lock.deadlock_interval_us = 500;
  o.lock.lock_timeout_us = 3'000'000;
  o.log.flush_interval_us = 100;
  o.buffer.num_frames = 1u << 14;  // 128 MB
  return o;
}

// ---- TM1 ----

TEST(Tm1Test, LoaderPopulatesTables) {
  Database db(SmallDbOptions(false));
  Tm1Options opts;
  opts.subscribers = 500;
  Tm1Workload tm1(opts);
  tm1.Load(db);

  TableId t;
  ASSERT_TRUE(db.FindTable("subscriber", &t));
  ASSERT_TRUE(db.FindTable("access_info", &t));
  ASSERT_TRUE(db.FindTable("special_facility", &t));
  ASSERT_TRUE(db.FindTable("call_forwarding", &t));
}

TEST(Tm1Test, SingleTransactionsRun) {
  Database db(SmallDbOptions(false));
  Tm1Options opts;
  opts.subscribers = 300;
  Tm1Workload tm1(opts);
  tm1.Load(db);
  auto agent = db.CreateAgent(17);

  int commits = 0, fails = 0;
  for (int i = 0; i < 300; ++i) {
    const Status st = tm1.RunOne(db, *agent);
    if (st.ok()) {
      ++commits;
    } else {
      ASSERT_TRUE(st.IsAborted()) << st.ToString();
      ++fails;
    }
  }
  EXPECT_GT(commits, 0);
  EXPECT_GT(fails, 0);  // mix includes failing transactions by design
}

TEST(Tm1Test, FailureRatesNearSpec) {
  // The paper (§5.1) quotes: getSub 0%, getDest 76.1%, getAccess 37.5%,
  // updateSub 37.5%, updateLoc 0%, insert/delete CF 68.75%. Our loader
  // reproduces the distributions, so measured rates should land nearby.
  Database db(SmallDbOptions(false));
  Tm1Options opts;
  opts.subscribers = 2000;
  Tm1Workload tm1(opts);
  tm1.Load(db);
  auto agent = db.CreateAgent(23);

  struct Case {
    Tm1TxnType type;
    double expected_fail;
    double tolerance;
  };
  // getDest: the paper quotes 76.1%; with our generator's uniform
  // call-forwarding windows the analytic rate is ~82% (documented in
  // EXPERIMENTS.md — the 1/2-per-slot density is chosen to pin the
  // insert/delete CF rates at the spec's 68.75%).
  const Case cases[] = {
      {Tm1TxnType::kGetSubscriberData, 0.00, 0.01},
      {Tm1TxnType::kGetNewDestination, 0.82, 0.06},
      {Tm1TxnType::kGetAccessData, 0.375, 0.06},
      {Tm1TxnType::kUpdateSubscriberData, 0.375, 0.06},
      {Tm1TxnType::kUpdateLocation, 0.00, 0.01},
  };
  constexpr int kN = 2000;
  for (const Case& c : cases) {
    Tm1Workload single(opts, Tm1Workload::Mix::kSingle, c.type);
    // Reuse the loaded database: construct via the same object's tables.
    int fails = 0;
    for (int i = 0; i < kN; ++i) {
      Status st;
      switch (c.type) {
        case Tm1TxnType::kGetSubscriberData:
          st = tm1.GetSubscriberData(db, *agent);
          break;
        case Tm1TxnType::kGetNewDestination:
          st = tm1.GetNewDestination(db, *agent);
          break;
        case Tm1TxnType::kGetAccessData:
          st = tm1.GetAccessData(db, *agent);
          break;
        case Tm1TxnType::kUpdateSubscriberData:
          st = tm1.UpdateSubscriberData(db, *agent);
          break;
        case Tm1TxnType::kUpdateLocation:
          st = tm1.UpdateLocation(db, *agent);
          break;
        default:
          break;
      }
      if (!st.ok()) ++fails;
    }
    const double rate = static_cast<double>(fails) / kN;
    EXPECT_NEAR(rate, c.expected_fail, c.tolerance)
        << "txn type " << static_cast<int>(c.type);
  }
}

TEST(Tm1Test, InsertDeleteCallForwardingChurnIsStable) {
  Database db(SmallDbOptions(false));
  Tm1Options opts;
  opts.subscribers = 500;
  Tm1Workload tm1(opts);
  tm1.Load(db);
  auto agent = db.CreateAgent(31);

  int ins_fail = 0, del_fail = 0;
  constexpr int kN = 1500;
  for (int i = 0; i < kN; ++i) {
    if (!tm1.InsertCallForwarding(db, *agent).ok()) ++ins_fail;
    if (!tm1.DeleteCallForwarding(db, *agent).ok()) ++del_fail;
  }
  // Both should fail roughly at the spec's ~69% under churn equilibrium.
  EXPECT_NEAR(static_cast<double>(ins_fail) / kN, 0.6875, 0.12);
  EXPECT_NEAR(static_cast<double>(del_fail) / kN, 0.6875, 0.12);
}

// ---- TPC-B ----

TEST(TpcbTest, BalanceInvariantSingleThread) {
  Database db(SmallDbOptions(false));
  TpcbOptions opts;
  opts.branches = 4;
  opts.tellers_per_branch = 5;
  opts.accounts_per_branch = 200;
  TpcbWorkload tpcb(opts);
  tpcb.Load(db);
  auto agent = db.CreateAgent(5);

  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(tpcb.RunOne(db, *agent).ok());
  }
  int64_t at, tt, bt;
  EXPECT_TRUE(tpcb.CheckBalanceInvariant(db, *agent, &at, &tt, &bt))
      << "a=" << at << " t=" << tt << " b=" << bt;
}

class TpcbSliSweep : public ::testing::TestWithParam<bool> {};

TEST_P(TpcbSliSweep, BalanceInvariantUnderConcurrency) {
  const bool sli = GetParam();
  Database db(SmallDbOptions(sli));
  TpcbOptions opts;
  opts.branches = 4;
  opts.tellers_per_branch = 5;
  opts.accounts_per_branch = 200;
  TpcbWorkload tpcb(opts);
  tpcb.Load(db);

  DriverOptions dopts;
  dopts.num_agents = 4;
  dopts.duration_s = 0.5;
  dopts.warmup_s = 0.1;
  const DriverResult result = RunWorkload(db, tpcb, dopts);
  EXPECT_GT(result.commits, 0u);

  auto agent = db.CreateAgent(99);
  int64_t at, tt, bt;
  EXPECT_TRUE(tpcb.CheckBalanceInvariant(db, *agent, &at, &tt, &bt))
      << "sli=" << sli << " a=" << at << " t=" << tt << " b=" << bt;
}

INSTANTIATE_TEST_SUITE_P(SliOnOff, TpcbSliSweep, ::testing::Bool());

// ---- TPC-C ----

class TpccSliSweep : public ::testing::TestWithParam<bool> {};

TEST_P(TpccSliSweep, MixRunsAndStaysConsistent) {
  const bool sli = GetParam();
  Database db(SmallDbOptions(sli));
  TpccOptions opts;
  opts.warehouses = 2;
  opts.districts_per_warehouse = 4;
  opts.customers_per_district = 100;
  opts.items = 500;
  opts.initial_orders_per_district = 30;
  TpccWorkload tpcc(opts, TpccWorkload::Mix::kFull);
  tpcc.Load(db);

  DriverOptions dopts;
  dopts.num_agents = 4;
  dopts.duration_s = 0.5;
  dopts.warmup_s = 0.1;
  const DriverResult result = RunWorkload(db, tpcc, dopts);
  EXPECT_GT(result.commits, 0u);

  auto agent = db.CreateAgent(7);
  EXPECT_TRUE(tpcc.CheckConsistency(db, *agent)) << "sli=" << sli;
}

INSTANTIATE_TEST_SUITE_P(SliOnOff, TpccSliSweep, ::testing::Bool());

TEST(TpccTest, EachTransactionTypeRuns) {
  Database db(SmallDbOptions(false));
  TpccOptions opts;
  opts.warehouses = 1;
  opts.districts_per_warehouse = 2;
  opts.customers_per_district = 50;
  opts.items = 200;
  opts.initial_orders_per_district = 20;
  TpccWorkload tpcc(opts);
  tpcc.Load(db);
  auto agent = db.CreateAgent(3);

  int no_ok = 0;
  for (int i = 0; i < 50; ++i) {
    const Status st = tpcc.NewOrder(db, *agent);
    if (st.ok()) ++no_ok;
    else ASSERT_TRUE(st.IsAborted()) << st.ToString();  // 1% rollback
  }
  EXPECT_GT(no_ok, 40);

  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(tpcc.Payment(db, *agent).ok());
  }
  for (int i = 0; i < 20; ++i) {
    const Status st = tpcc.OrderStatus(db, *agent);
    ASSERT_TRUE(st.ok() || st.IsAborted()) << st.ToString();
  }
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(tpcc.Delivery(db, *agent).ok());
  }
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(tpcc.StockLevel(db, *agent).ok());
  }
  EXPECT_TRUE(tpcc.CheckConsistency(db, *agent));
}

TEST(TpccTest, NewOrderRollbackLeavesNoTrace) {
  Database db(SmallDbOptions(false));
  TpccOptions opts;
  opts.warehouses = 1;
  opts.districts_per_warehouse = 1;
  opts.customers_per_district = 20;
  opts.items = 100;
  opts.initial_orders_per_district = 10;
  TpccWorkload tpcc(opts);
  tpcc.Load(db);
  auto agent = db.CreateAgent(3);

  // Run many NewOrders; ~1% roll back. Consistency must hold regardless.
  for (int i = 0; i < 400; ++i) {
    const Status st = tpcc.NewOrder(db, *agent);
    ASSERT_TRUE(st.ok() || st.IsAborted()) << st.ToString();
  }
  EXPECT_TRUE(tpcc.CheckConsistency(db, *agent));
}

TEST(TpccTest, LastNameGeneratorMatchesSpecShape) {
  char name[18];
  TpccLastName(0, name);
  EXPECT_STREQ(name, "BARBARBAR");
  TpccLastName(371, name);
  EXPECT_STREQ(name, "PRICALLYOUGHT");
  TpccLastName(999, name);
  EXPECT_STREQ(name, "EINGEINGEING");
  // Hash is stable and 16-bit.
  EXPECT_EQ(TpccNameHash("BARBARBAR"), TpccNameHash("BARBARBAR"));
  EXPECT_LE(TpccNameHash("EINGEINGEING"), 0xffffu);
}

// ---- contention scenarios ----

constexpr ContentionScenario kAllScenarios[] = {
    ContentionScenario::kZipfMix, ContentionScenario::kFlashSale,
    ContentionScenario::kAuction, ContentionScenario::kSocialFeed};

TEST(ContentionTest, SingleTransactionsCommit) {
  // Single agent: no conflicts possible, every transaction must commit.
  for (ContentionScenario sc : kAllScenarios) {
    Database db(SmallDbOptions(false));
    ContentionOptions copts;
    copts.scenario = sc;
    copts.num_items = 500;
    copts.reads_per_txn = 4;
    ContentionWorkload wl(copts);
    wl.Load(db);
    EXPECT_GE(wl.hot_key(), 1u);
    EXPECT_LE(wl.hot_key(), copts.num_items);

    auto agent = db.CreateAgent(41);
    for (int i = 0; i < 100; ++i) {
      const Status st = wl.RunOne(db, *agent);
      ASSERT_TRUE(st.ok())
          << ContentionScenarioName(sc) << ": " << st.ToString();
    }
  }
}

TEST(ContentionTest, ScenariosRunConcurrentlyAndReportHeat) {
  for (ContentionScenario sc : kAllScenarios) {
    DatabaseOptions dbo = SmallDbOptions(false);
    dbo.lock.hot_min_contended = 2;
    dbo.lock.hot_exit_contended = 0;
    Database db(dbo);
    ContentionOptions copts;
    copts.scenario = sc;
    copts.num_items = 2000;
    copts.theta = 0.99;
    copts.reads_per_txn = 4;
    ContentionWorkload wl(copts);
    wl.Load(db);

    DriverOptions dopts;
    dopts.num_agents = 2;
    dopts.duration_s = 0.3;
    dopts.warmup_s = 0.05;
    const DriverResult off = RunWorkload(db, wl, dopts);
    EXPECT_GT(off.commits, 0u) << ContentionScenarioName(sc);
    EXPECT_EQ(off.counters.Get(Counter::kSliInherited), 0u);

    // Adaptive mode between runs (the bench's ablation knob): still
    // commits, and the heat probe sees the live lock heads.
    db.SetSliMode(SliMode::kAdaptive);
    const DriverResult adaptive = RunWorkload(db, wl, dopts);
    EXPECT_GT(adaptive.commits, 0u) << ContentionScenarioName(sc);

    const ContentionHeatReport heat = ContentionWorkload::MeasureHeat(db);
    EXPECT_GT(heat.heads, 0u) << ContentionScenarioName(sc);
    EXPECT_GT(heat.total_acquires, 0u) << ContentionScenarioName(sc);
  }
}

// ---- driver ----

TEST(DriverTest, MeasuresThroughputAndBreakdown) {
  Database db(SmallDbOptions(false));
  Tm1Options opts;
  opts.subscribers = 1000;
  Tm1Workload tm1(opts);
  tm1.Load(db);

  DriverOptions dopts;
  dopts.num_agents = 2;
  dopts.duration_s = 0.4;
  dopts.warmup_s = 0.1;
  const DriverResult result = RunWorkload(db, tm1, dopts);

  EXPECT_GT(result.commits, 100u);
  EXPECT_GT(result.tps, 0.0);
  EXPECT_GT(result.user_aborts, 0u);  // TM1 mix always has failures
  EXPECT_GT(result.profile.TotalCpu(), 0u);
  EXPECT_GT(result.latency_ns.count(), 0u);
  EXPECT_GT(result.cpu_utilization, 0.0);
  EXPECT_LE(result.cpu_utilization, 1.0);
  // Lock manager work must be visible in the breakdown.
  EXPECT_GT(result.profile.work[static_cast<size_t>(Component::kLockManager)],
            0u);
}

TEST(DriverTest, SplitsCommitAndAbortLatency) {
  Database db(SmallDbOptions(false));
  Tm1Options opts;
  opts.subscribers = 1000;
  Tm1Workload tm1(opts);
  tm1.Load(db);

  DriverOptions dopts;
  dopts.num_agents = 2;
  dopts.duration_s = 0.4;
  dopts.warmup_s = 0.1;
  const DriverResult result = RunWorkload(db, tm1, dopts);

  // TM1's mix always produces user aborts; they must land in the abort
  // histogram and never pollute the commit latency distribution.
  EXPECT_GT(result.latency_ns.count(), 0u);
  EXPECT_GT(result.abort_latency_ns.count(), 0u);
  EXPECT_GT(result.AbortRate(), 0.0);
  EXPECT_LT(result.AbortRate(), 1.0);
  // Without deadlines every measured commit is goodput.
  EXPECT_EQ(result.goodput_commits, result.latency_ns.count());
  EXPECT_EQ(result.deadline_misses, 0u);
}

TEST(DriverTest, OpenLoopRetryAndGovernorSmoke) {
  DatabaseOptions o = SmallDbOptions(false);
  o.governor.max_inflight = 2;
  o.governor.max_queue = 1;
  Database db(o);
  Tm1Options opts;
  opts.subscribers = 1000;
  Tm1Workload tm1(opts);
  tm1.Load(db);

  DriverOptions dopts;
  dopts.num_agents = 4;
  dopts.duration_s = 0.4;
  dopts.warmup_s = 0.1;
  dopts.offered_tps = 2000;  // open loop: arrivals decoupled from service
  dopts.txn_deadline_us = 50'000;
  dopts.use_governor = true;
  dopts.retry.max_attempts = 3;
  dopts.retry.backoff_base_us = 50;
  dopts.retry.backoff_cap_us = 1'000;
  const DriverResult result = RunWorkload(db, tm1, dopts);

  EXPECT_GT(result.commits, 0u);
  EXPECT_GT(result.goodput_tps, 0.0);
  EXPECT_LE(result.goodput_commits, result.latency_ns.count());
  // Whatever happened under load, the token pool must end balanced.
  EXPECT_EQ(db.governor().Stats().inflight, 0u);
}

TEST(DriverTest, SliTogglesAcrossRuns) {
  Database db(SmallDbOptions(false));
  Tm1Options opts;
  opts.subscribers = 1000;
  Tm1Workload tm1(opts);
  tm1.Load(db);

  DriverOptions dopts;
  dopts.num_agents = 4;
  dopts.duration_s = 0.3;
  dopts.warmup_s = 0.1;

  const DriverResult base = RunWorkload(db, tm1, dopts);
  EXPECT_EQ(base.counters.Get(Counter::kSliInherited), 0u);

  db.SetSliEnabled(true);
  const DriverResult with_sli = RunWorkload(db, tm1, dopts);
  EXPECT_GT(with_sli.commits, 0u);
  // On a contended 2-core box the hot tracker may or may not trip within a
  // short window; at minimum the counters must be self-consistent.
  const uint64_t inh = with_sli.counters.Get(Counter::kSliInherited);
  const uint64_t rec = with_sli.counters.Get(Counter::kSliReclaimed);
  EXPECT_GE(inh + 1000000, rec);  // reclaimed never exceeds inherited (+slack)
}

}  // namespace
}  // namespace slidb
