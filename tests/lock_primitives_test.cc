// Direct unit coverage for the lock-manager building blocks: the
// transaction lock cache, the hot tracker, the request pool, and the agent
// inheritance list.
#include <gtest/gtest.h>

#include "src/lock/agent_sli.h"
#include "src/lock/lock_cache.h"
#include "src/lock/lock_client.h"
#include "src/lock/lock_head.h"
#include "src/lock/lock_table.h"
#include "src/stats/counters.h"

namespace slidb {
namespace {

TEST(LockCacheTest, InsertFindRoundTrip) {
  LockCache cache;
  LockRequest r1, r2;
  cache.Insert(LockId::Table(0, 1), &r1);
  cache.Insert(LockId::Row(0, 1, 2, 3), &r2);
  EXPECT_EQ(cache.Find(LockId::Table(0, 1)), &r1);
  EXPECT_EQ(cache.Find(LockId::Row(0, 1, 2, 3)), &r2);
  EXPECT_EQ(cache.Find(LockId::Table(0, 2)), nullptr);
}

TEST(LockCacheTest, InsertOverwritesSameId) {
  LockCache cache;
  LockRequest r1, r2;
  cache.Insert(LockId::Table(0, 1), &r1);
  cache.Insert(LockId::Table(0, 1), &r2);
  EXPECT_EQ(cache.Find(LockId::Table(0, 1)), &r2);
}

TEST(LockCacheTest, EraseRemovesWithoutBreakingProbes) {
  LockCache cache;
  // Force a probe chain by inserting many ids (some will collide).
  LockRequest reqs[300];
  for (uint32_t i = 0; i < 300; ++i) {
    cache.Insert(LockId::Page(0, 1, i), &reqs[i]);
  }
  cache.Erase(LockId::Page(0, 1, 150));
  EXPECT_EQ(cache.Find(LockId::Page(0, 1, 150)), nullptr);
  // Every other entry is still reachable despite the tombstone.
  for (uint32_t i = 0; i < 300; ++i) {
    if (i == 150) continue;
    EXPECT_EQ(cache.Find(LockId::Page(0, 1, i)), &reqs[i]) << i;
  }
}

TEST(LockCacheTest, ClearEmptiesEverything) {
  LockCache cache;
  LockRequest reqs[400];  // spills into the overflow vector
  for (uint32_t i = 0; i < 400; ++i) {
    cache.Insert(LockId::Row(0, 9, i, 0), &reqs[i]);
  }
  cache.Clear();
  for (uint32_t i = 0; i < 400; ++i) {
    EXPECT_EQ(cache.Find(LockId::Row(0, 9, i, 0)), nullptr);
  }
}

TEST(LockCacheTest, InsertReusesTombstonedSlots) {
  // Erase/Insert cycles of the same id must not grow the probe chain: the
  // tombstone left by Erase is reclaimed by the next Insert. Before the
  // fix, each cycle leaked one tombstone and probe chains (then overflow)
  // grew monotonically in long-lived agents.
  LockCache cache;
  LockRequest r;
  const LockId id = LockId::Page(0, 7, 11);
  for (int cycle = 0; cycle < 1000; ++cycle) {
    cache.Insert(id, &r);
    ASSERT_EQ(cache.Find(id), &r);
    cache.Erase(id);
    ASSERT_EQ(cache.Find(id), nullptr);
  }
  EXPECT_EQ(cache.LiveSlots(), 0u);
  EXPECT_LE(cache.TombstoneSlots(), 1u);
  EXPECT_EQ(cache.OverflowSize(), 0u);
}

TEST(LockCacheTest, TombstoneReuseKeepsCollidingChainsIntact) {
  // Reusing a tombstone mid-chain must not orphan colliding entries that
  // probe past it, and must not duplicate a key that lives further along.
  LockCache cache;
  LockRequest reqs[64];
  // Build a dense cluster so several ids share probe paths.
  for (uint32_t i = 0; i < 64; ++i) {
    cache.Insert(LockId::Page(0, 3, i), &reqs[i]);
  }
  // Punch holes, then insert fresh ids that land in the same cluster.
  for (uint32_t i = 0; i < 64; i += 4) {
    cache.Erase(LockId::Page(0, 3, i));
  }
  LockRequest fresh[16];
  for (uint32_t i = 0; i < 16; ++i) {
    cache.Insert(LockId::Page(0, 99, i), &fresh[i]);
  }
  for (uint32_t i = 0; i < 64; ++i) {
    if (i % 4 == 0) {
      EXPECT_EQ(cache.Find(LockId::Page(0, 3, i)), nullptr) << i;
    } else {
      EXPECT_EQ(cache.Find(LockId::Page(0, 3, i)), &reqs[i]) << i;
    }
  }
  for (uint32_t i = 0; i < 16; ++i) {
    EXPECT_EQ(cache.Find(LockId::Page(0, 99, i)), &fresh[i]) << i;
  }
  // Updating a key that sits beyond a tombstone must update in place, not
  // clone into the tombstone.
  LockRequest updated;
  cache.Insert(LockId::Page(0, 3, 63), &updated);
  EXPECT_EQ(cache.Find(LockId::Page(0, 3, 63)), &updated);
}

TEST(LockCacheTest, GenerationClearInvalidatesWithoutWiping) {
  // Clear() is O(1): it bumps the generation instead of touching kSlots
  // entries. Stale-generation slots must read as empty for Find, Insert
  // (reusable), and the introspection counters alike.
  LockCache cache;
  LockRequest r1, r2, r3;
  cache.Insert(LockId::Table(0, 1), &r1);
  cache.Insert(LockId::Page(0, 1, 5), &r2);
  cache.Erase(LockId::Page(0, 1, 5));  // current-generation tombstone
  EXPECT_EQ(cache.TombstoneSlots(), 1u);

  const uint64_t gen_before = cache.generation();
  cache.Clear();
  EXPECT_EQ(cache.generation(), gen_before + 1);
  EXPECT_EQ(cache.Find(LockId::Table(0, 1)), nullptr);
  EXPECT_EQ(cache.LiveSlots(), 0u);
  EXPECT_EQ(cache.TombstoneSlots(), 0u);  // stale tombstones died with gen

  // Stale slots are immediately reusable in the new generation.
  cache.Insert(LockId::Table(0, 1), &r3);
  EXPECT_EQ(cache.Find(LockId::Table(0, 1)), &r3);
  EXPECT_EQ(cache.LiveSlots(), 1u);
}

TEST(LockCacheTest, ManyGenerationsStayIndependent) {
  LockCache cache;
  LockRequest reqs[8];
  for (int gen = 0; gen < 100; ++gen) {
    // Each "transaction" inserts a few ids, finds them, then clears.
    for (uint32_t i = 0; i < 8; ++i) {
      cache.Insert(LockId::Page(0, 2, i), &reqs[i]);
    }
    for (uint32_t i = 0; i < 8; ++i) {
      ASSERT_EQ(cache.Find(LockId::Page(0, 2, i)), &reqs[i]);
    }
    // An id from a previous generation that this one never wrote stays
    // invisible.
    ASSERT_EQ(cache.Find(LockId::Table(0, 77)), nullptr);
    if (gen == 0) {
      LockRequest extra;
      cache.Insert(LockId::Table(0, 77), &extra);
    }
    cache.Clear();
    ASSERT_EQ(cache.LiveSlots(), 0u);
  }
}

TEST(LockCacheTest, DatabaseZeroIdIsNotConfusedWithEmptySlots) {
  // Regression guard: LockId::Database(0) is all-zero fields; lookups for
  // it must not match empty or tombstoned slots.
  LockCache cache;
  EXPECT_EQ(cache.Find(LockId::Database(0)), nullptr);
  LockRequest r;
  cache.Insert(LockId::Database(0), &r);
  EXPECT_EQ(cache.Find(LockId::Database(0)), &r);
  cache.Erase(LockId::Database(0));
  EXPECT_EQ(cache.Find(LockId::Database(0)), nullptr);
}

TEST(HotTrackerTest, WindowedThreshold) {
  HotTracker hot;
  EXPECT_FALSE(hot.IsHot(1));
  hot.Record(true);
  EXPECT_TRUE(hot.IsHot(1));
  EXPECT_FALSE(hot.IsHot(2));
  for (int i = 0; i < 3; ++i) hot.Record(true);
  EXPECT_TRUE(hot.IsHot(4));
}

TEST(HotTrackerTest, WindowSlidesContentionOut) {
  HotTracker hot;
  hot.Record(true);
  // 16 uncontended acquisitions push the hit out of the window.
  for (int i = 0; i < 16; ++i) hot.Record(false);
  EXPECT_FALSE(hot.IsHot(1));
  // Cumulative stats survive the window.
  EXPECT_EQ(hot.total_acquires(), 17u);
  EXPECT_EQ(hot.total_contended(), 1u);
}

TEST(HotTrackerTest, ForceHotAndClear) {
  HotTracker hot;
  hot.ForceHot();
  EXPECT_TRUE(hot.IsHot(16));
  hot.Clear();
  EXPECT_FALSE(hot.IsHot(1));
}

TEST(RequestPoolTest, ReusesFreedRequests) {
  RequestPool pool;
  LockRequest* a = pool.Alloc();
  a->mode = LockMode::kX;
  a->sli_miss_count = 3;
  pool.Free(a);
  LockRequest* b = pool.Alloc();
  EXPECT_EQ(b, a);  // LIFO reuse
  // Reset() must have scrubbed the previous life.
  EXPECT_EQ(b->mode, LockMode::kNL);
  EXPECT_EQ(b->sli_miss_count, 0);
  EXPECT_EQ(b->status.load(), RequestStatus::kWaiting);
  pool.Free(b);
}

TEST(RequestPoolTest, LiveAccounting) {
  RequestPool pool;
  LockRequest* a = pool.Alloc();
  LockRequest* b = pool.Alloc();
  EXPECT_EQ(pool.live(), 2u);
  pool.Free(a);
  EXPECT_EQ(pool.live(), 1u);
  pool.Free(b);
  EXPECT_EQ(pool.live(), 0u);
}

TEST(AgentSliStateTest, PushAndTakeInherited) {
  AgentSliState sli(7);
  EXPECT_EQ(sli.agent_id(), 7u);
  LockRequest r1, r2;
  sli.PushInherited(&r1);
  sli.PushInherited(&r2);
  EXPECT_EQ(sli.inherited_count(), 2u);
  // Newest first.
  LockRequest* head = sli.TakeInherited();
  EXPECT_EQ(head, &r2);
  EXPECT_EQ(head->agent_next, &r1);
  EXPECT_EQ(sli.inherited_count(), 0u);
  EXPECT_EQ(sli.inherited_head(), nullptr);
}

TEST(LockHeadTest, QueueAppendUnlinkMaintainsLinks) {
  LockHead head;
  LockRequest a, b, c;
  head.Append(&a);
  head.Append(&b);
  head.Append(&c);
  EXPECT_EQ(head.q_head, &a);
  EXPECT_EQ(head.q_tail, &c);
  head.Unlink(&b);  // middle
  EXPECT_EQ(a.q_next, &c);
  EXPECT_EQ(c.q_prev, &a);
  head.Unlink(&a);  // head
  EXPECT_EQ(head.q_head, &c);
  head.Unlink(&c);  // last
  EXPECT_TRUE(head.QueueEmpty());
  EXPECT_EQ(head.q_tail, nullptr);
}

TEST(LockHeadTest, WaiterHintTracksFirstWaitingRequest) {
  LockHead head;
  LockRequest g1, g2, w1, w2;
  g1.mode = LockMode::kS;
  g1.status.store(RequestStatus::kGranted);
  g2.mode = LockMode::kS;
  g2.status.store(RequestStatus::kGranted);
  w1.mode = LockMode::kX;
  w1.status.store(RequestStatus::kWaiting);
  w2.mode = LockMode::kX;
  w2.status.store(RequestStatus::kWaiting);
  head.Append(&g1);
  head.Append(&g2);
  head.Append(&w1);
  head.Append(&w2);
  head.RecomputeSummaryFromQueue();
  EXPECT_EQ(head.waiter_hint, &w1);
  EXPECT_TRUE(head.SummaryMatchesQueue());

  // Unlinking the boundary node advances the hint to its successor.
  head.Unlink(&w1);
  EXPECT_EQ(head.waiter_hint, &w2);
  EXPECT_TRUE(head.SummaryMatchesQueue());
  head.Unlink(&w2);
  EXPECT_EQ(head.waiter_hint, nullptr);
  EXPECT_TRUE(head.SummaryMatchesQueue());
}

TEST(LockHeadTest, SummaryCheckerDetectsWaiterHintDrift) {
  LockHead head;
  LockRequest g, w;
  g.mode = LockMode::kS;
  g.status.store(RequestStatus::kGranted);
  w.mode = LockMode::kX;
  w.status.store(RequestStatus::kWaiting);
  head.Append(&g);
  head.SummaryAdd(g.mode);
  head.Append(&w);
  // Forgot to set the waiter boundary: the checker must notice a kWaiting
  // request sitting before (here: without) the hint.
  EXPECT_FALSE(head.SummaryMatchesQueue());
  head.RecomputeSummaryFromQueue();
  EXPECT_EQ(head.waiter_hint, &w);
  EXPECT_TRUE(head.SummaryMatchesQueue());
}

TEST(LockHeadTest, IncrementalSummaryAggregates) {
  LockHead head;
  LockRequest a, b;
  a.mode = LockMode::kIS;
  a.status.store(RequestStatus::kGranted);
  b.mode = LockMode::kIX;
  b.status.store(RequestStatus::kInherited);
  head.Append(&a);
  head.SummaryAdd(a.mode);
  head.Append(&b);
  head.SummaryAdd(b.mode);
  EXPECT_EQ(head.GrantedMode(), LockMode::kIX);  // sup(IS, IX)
  EXPECT_EQ(head.granted_mask, ModeBit(LockMode::kIS) | ModeBit(LockMode::kIX));
  EXPECT_EQ(head.queue_len, 2u);
  EXPECT_TRUE(head.SummaryMatchesQueue());

  head.Unlink(&b);
  head.SummaryRemove(b.mode);
  EXPECT_EQ(head.GrantedMode(), LockMode::kIS);
  EXPECT_TRUE(head.SummaryMatchesQueue());

  // Upgrade in place: IS → S.
  head.SummaryUpgrade(a.mode, LockMode::kS);
  a.mode = LockMode::kS;
  EXPECT_EQ(head.GrantedMode(), LockMode::kS);
  EXPECT_TRUE(head.SummaryMatchesQueue());
}

TEST(LockHeadTest, SummaryCheckerDetectsDrift) {
  LockHead head;
  LockRequest a;
  a.mode = LockMode::kS;
  a.status.store(RequestStatus::kGranted);
  head.Append(&a);
  // Forgot the SummaryAdd: the checker must notice.
  EXPECT_FALSE(head.SummaryMatchesQueue());
  head.RecomputeSummaryFromQueue();
  EXPECT_TRUE(head.SummaryMatchesQueue());
  EXPECT_EQ(head.GrantedMode(), LockMode::kS);
}

TEST(LockHeadTest, MaskExcludingRemovesSoleContribution) {
  LockHead head;
  LockRequest a, b;
  a.mode = LockMode::kS;
  a.status.store(RequestStatus::kGranted);
  b.mode = LockMode::kIX;
  b.status.store(RequestStatus::kGranted);
  head.Append(&a);
  head.SummaryAdd(a.mode);
  head.Append(&b);
  head.SummaryAdd(b.mode);
  // Excluding `a` leaves only IX; excluding nothing keeps both.
  EXPECT_EQ(head.MaskExcluding(&a), ModeBit(LockMode::kIX));
  EXPECT_EQ(head.MaskExcluding(nullptr),
            ModeBit(LockMode::kS) | ModeBit(LockMode::kIX));
  // With two S holders, excluding one keeps the S bit set.
  LockRequest c;
  c.mode = LockMode::kS;
  c.status.store(RequestStatus::kGranted);
  head.Append(&c);
  head.SummaryAdd(c.mode);
  EXPECT_EQ(head.MaskExcluding(&a),
            ModeBit(LockMode::kS) | ModeBit(LockMode::kIX));
}

TEST(LockClientWakeTest, WakeSkipsMutexWhenNobodyCanBeParked) {
  CounterSet counters;
  ScopedCounterSet routed(&counters);
  LockClient c;
  // Nobody inside a wait window: the fast path skips the mutex.
  c.Wake();
  EXPECT_EQ(counters.Get(Counter::kLockWakeFast), 1u);
  // Inside the window, Wake must take the slow (mutex + notify) path.
  c.BeginWaitWindow();
  c.Wake();
  EXPECT_EQ(counters.Get(Counter::kLockWakeFast), 1u);
  c.EndWaitWindow();
  c.Wake();
  EXPECT_EQ(counters.Get(Counter::kLockWakeFast), 2u);
}

TEST(LockTableTest, WaiterAwareIterationSkipsIdleBuckets) {
  LockTable table(16);
  LockHead* h = table.FindOrCreate(LockId::Table(0, 1));
  ASSERT_NE(h->bucket_waiters, nullptr);

  int visited = 0;
  table.ForEachHead([&](LockHead*) { ++visited; });
  EXPECT_EQ(visited, 1);  // full iteration still sees the head

  visited = 0;
  table.ForEachHeadWithWaiters([&](LockHead*) { ++visited; });
  EXPECT_EQ(visited, 0);  // no waiters anywhere: every bucket skipped

  h->AddWaiter();
  visited = 0;
  table.ForEachHeadWithWaiters([&](LockHead*) { ++visited; });
  EXPECT_EQ(visited, 1);

  h->RemoveWaiter();
  visited = 0;
  table.ForEachHeadWithWaiters([&](LockHead*) { ++visited; });
  EXPECT_EQ(visited, 0);

  table.Unpin(h);
}

}  // namespace
}  // namespace slidb
