// B+-tree tests: ordering, duplicates, splits, scans, invariants, and
// concurrent stress. Parameterized sweeps cover size regimes around node
// split boundaries, and run under both synchronization protocols
// (optimistic lock coupling and the legacy crabbing baseline).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

#include "src/storage/btree.h"
#include "src/util/rng.h"

namespace slidb {
namespace {

using SyncMode = BTreeOptions::SyncMode;

BTreeOptions WithMode(SyncMode mode) {
  BTreeOptions opts;
  opts.sync_mode = mode;
  return opts;
}

std::string ModeName(SyncMode mode) {
  return mode == SyncMode::kOptimistic ? "olc" : "crabbing";
}

TEST(BTreeTest, EmptyTree) {
  BTree tree;
  uint64_t v;
  EXPECT_TRUE(tree.Lookup(1, &v).IsNotFound());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(BTreeTest, SingleInsertLookup) {
  BTree tree;
  ASSERT_TRUE(tree.Insert(42, 4200).ok());
  uint64_t v = 0;
  ASSERT_TRUE(tree.Lookup(42, &v).ok());
  EXPECT_EQ(v, 4200u);
  EXPECT_EQ(tree.size(), 1u);
}

TEST(BTreeTest, DuplicatePairRejectedDistinctValueAllowed) {
  BTree tree;
  ASSERT_TRUE(tree.Insert(7, 100).ok());
  EXPECT_TRUE(tree.Insert(7, 100).IsKeyExists());
  ASSERT_TRUE(tree.Insert(7, 200).ok());
  std::vector<uint64_t> values;
  tree.LookupAll(7, &values);
  EXPECT_EQ(values.size(), 2u);
  EXPECT_EQ(values[0], 100u);  // ordered by (key, value)
  EXPECT_EQ(values[1], 200u);
}

TEST(BTreeTest, RemoveExactPair) {
  BTree tree;
  ASSERT_TRUE(tree.Insert(7, 100).ok());
  ASSERT_TRUE(tree.Insert(7, 200).ok());
  ASSERT_TRUE(tree.Remove(7, 100).ok());
  EXPECT_TRUE(tree.Remove(7, 100).IsNotFound());
  uint64_t v;
  ASSERT_TRUE(tree.Lookup(7, &v).ok());
  EXPECT_EQ(v, 200u);
  EXPECT_EQ(tree.size(), 1u);
}

class BTreeSizeSweep
    : public ::testing::TestWithParam<std::tuple<int, SyncMode>> {
 protected:
  int size_param() const { return std::get<0>(GetParam()); }
  BTreeOptions opts() const { return WithMode(std::get<1>(GetParam())); }
};

TEST_P(BTreeSizeSweep, SequentialInsertAllFound) {
  const int n = size_param();
  BTree tree(opts());
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(tree.Insert(i, i * 10).ok()) << i;
  }
  EXPECT_EQ(tree.size(), static_cast<uint64_t>(n));
  EXPECT_TRUE(tree.CheckInvariants());
  for (int i = 0; i < n; ++i) {
    uint64_t v = 0;
    ASSERT_TRUE(tree.Lookup(i, &v).ok()) << i;
    EXPECT_EQ(v, static_cast<uint64_t>(i) * 10);
  }
}

TEST_P(BTreeSizeSweep, ReverseInsertAllFound) {
  const int n = size_param();
  BTree tree(opts());
  for (int i = n - 1; i >= 0; --i) {
    ASSERT_TRUE(tree.Insert(i, i + 1).ok());
  }
  EXPECT_TRUE(tree.CheckInvariants());
  // Full scan yields sorted order.
  uint64_t prev = 0;
  size_t count = 0;
  tree.Scan(0, UINT64_MAX, [&](uint64_t k, uint64_t) {
    if (count > 0) EXPECT_GT(k, prev);
    prev = k;
    ++count;
    return true;
  });
  EXPECT_EQ(count, static_cast<size_t>(n));
}

TEST_P(BTreeSizeSweep, RandomInsertRemoveConsistent) {
  const int n = size_param();
  BTree tree(opts());
  Rng rng(n);
  std::set<uint64_t> model;
  for (int i = 0; i < n; ++i) {
    const uint64_t k = rng.Uniform(0, n * 2);
    if (model.insert(k).second) {
      ASSERT_TRUE(tree.Insert(k, k).ok());
    }
  }
  // Remove a random half.
  std::vector<uint64_t> keys(model.begin(), model.end());
  for (size_t i = 0; i < keys.size() / 2; ++i) {
    ASSERT_TRUE(tree.Remove(keys[i], keys[i]).ok());
    model.erase(keys[i]);
  }
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_EQ(tree.size(), model.size());
  for (uint64_t k : model) {
    uint64_t v;
    ASSERT_TRUE(tree.Lookup(k, &v).ok()) << k;
  }
}

// Sizes straddle the 64-entry leaf boundary, two levels, and three levels;
// every size runs under both synchronization protocols.
INSTANTIATE_TEST_SUITE_P(
    Sizes, BTreeSizeSweep,
    ::testing::Combine(::testing::Values(1, 63, 64, 65, 128, 1000, 5000,
                                         20000),
                       ::testing::Values(SyncMode::kOptimistic,
                                         SyncMode::kCrabbing)),
    [](const ::testing::TestParamInfo<std::tuple<int, SyncMode>>& info) {
      return ModeName(std::get<1>(info.param)) + "_" +
             std::to_string(std::get<0>(info.param));
    });

TEST(BTreeTest, RangeScanBounds) {
  BTree tree;
  for (uint64_t i = 0; i < 1000; i += 2) {  // even keys only
    ASSERT_TRUE(tree.Insert(i, i).ok());
  }
  std::vector<uint64_t> seen;
  tree.Scan(100, 200, [&](uint64_t k, uint64_t) {
    seen.push_back(k);
    return true;
  });
  ASSERT_EQ(seen.size(), 51u);  // 100,102,...,200
  EXPECT_EQ(seen.front(), 100u);
  EXPECT_EQ(seen.back(), 200u);

  // Scan bounds on odd (absent) endpoints.
  seen.clear();
  tree.Scan(101, 199, [&](uint64_t k, uint64_t) {
    seen.push_back(k);
    return true;
  });
  ASSERT_EQ(seen.size(), 49u);
  EXPECT_EQ(seen.front(), 102u);
  EXPECT_EQ(seen.back(), 198u);
}

TEST(BTreeTest, ScanEarlyStop) {
  BTree tree;
  for (uint64_t i = 0; i < 100; ++i) ASSERT_TRUE(tree.Insert(i, i).ok());
  int visits = 0;
  tree.Scan(0, UINT64_MAX, [&](uint64_t, uint64_t) {
    return ++visits < 5;
  });
  EXPECT_EQ(visits, 5);
}

TEST(BTreeTest, ReverseScanNewestFirst) {
  BTree tree;
  // TPC-C pattern: key = (customer << 20) | order_id; find newest order.
  const uint64_t cust = 77;
  for (uint64_t o = 1; o <= 30; ++o) {
    ASSERT_TRUE(tree.Insert((cust << 20) | o, o).ok());
  }
  uint64_t newest = 0;
  tree.ScanReverse(cust << 20, (cust << 20) | 0xfffff,
                   [&](uint64_t, uint64_t v) {
                     newest = v;
                     return false;  // first (= newest) only
                   });
  EXPECT_EQ(newest, 30u);
}

// ---- reverse scan (bounded-memory chunked re-descent) ----

class BTreeReverseScanSweep : public ::testing::TestWithParam<SyncMode> {};

TEST_P(BTreeReverseScanSweep, FullReverseScanIsForwardReversed) {
  // Multi-level tree with duplicate keys: the reverse scan must deliver
  // exactly the forward (key, value) sequence, reversed.
  BTree tree(WithMode(GetParam()));
  Rng rng(71);
  for (uint64_t i = 0; i < 5000; ++i) {
    // Random keys collide; (key, value) pairs stay unique via the value.
    ASSERT_TRUE(tree.Insert(rng.Uniform(0, 2000), i).ok());
  }
  std::vector<std::pair<uint64_t, uint64_t>> fwd, rev;
  tree.Scan(0, UINT64_MAX, [&](uint64_t k, uint64_t v) {
    fwd.emplace_back(k, v);
    return true;
  });
  tree.ScanReverse(0, UINT64_MAX, [&](uint64_t k, uint64_t v) {
    rev.emplace_back(k, v);
    return true;
  });
  std::reverse(rev.begin(), rev.end());
  EXPECT_EQ(fwd, rev);
}

TEST_P(BTreeReverseScanSweep, BoundsInclusiveOnAbsentEndpoints) {
  BTree tree(WithMode(GetParam()));
  for (uint64_t i = 0; i < 1000; i += 2) {  // even keys only
    ASSERT_TRUE(tree.Insert(i, i).ok());
  }
  std::vector<uint64_t> seen;
  tree.ScanReverse(100, 200, [&](uint64_t k, uint64_t) {
    seen.push_back(k);
    return true;
  });
  ASSERT_EQ(seen.size(), 51u);  // 200,198,...,100
  EXPECT_EQ(seen.front(), 200u);
  EXPECT_EQ(seen.back(), 100u);

  seen.clear();
  tree.ScanReverse(101, 199, [&](uint64_t k, uint64_t) {
    seen.push_back(k);
    return true;
  });
  ASSERT_EQ(seen.size(), 49u);
  EXPECT_EQ(seen.front(), 198u);
  EXPECT_EQ(seen.back(), 102u);
}

TEST_P(BTreeReverseScanSweep, ManyDuplicatesDescendByValue) {
  // One key spanning ~150 leaves: the chunked walk crosses many same-key
  // leaves via the fence cursor and must emit values strictly descending.
  BTree tree(WithMode(GetParam()));
  constexpr uint64_t kVals = 10000;
  ASSERT_TRUE(tree.Insert(8, 0).ok());
  ASSERT_TRUE(tree.Insert(10, 0).ok());
  for (uint64_t v = 0; v < kVals; ++v) {
    ASSERT_TRUE(tree.Insert(9, v).ok());
  }
  uint64_t expect = kVals - 1;
  size_t count = 0;
  tree.ScanReverse(9, 9, [&](uint64_t k, uint64_t v) {
    EXPECT_EQ(k, 9u);
    EXPECT_EQ(v, expect);
    --expect;
    ++count;
    return true;
  });
  EXPECT_EQ(count, kVals);
}

TEST_P(BTreeReverseScanSweep, EarlyStop) {
  BTree tree(WithMode(GetParam()));
  for (uint64_t i = 0; i < 1000; ++i) ASSERT_TRUE(tree.Insert(i, i).ok());
  int visits = 0;
  tree.ScanReverse(0, UINT64_MAX, [&](uint64_t k, uint64_t) {
    EXPECT_EQ(k, 999u - visits);
    return ++visits < 5;
  });
  EXPECT_EQ(visits, 5);
}

TEST_P(BTreeReverseScanSweep, EmptyRangesVisitNothing) {
  BTree empty(WithMode(GetParam()));
  int visits = 0;
  empty.ScanReverse(0, UINT64_MAX, [&](uint64_t, uint64_t) {
    ++visits;
    return true;
  });
  EXPECT_EQ(visits, 0);

  BTree tree(WithMode(GetParam()));
  for (uint64_t i = 0; i <= 1000; i += 10) {  // multiples of ten
    ASSERT_TRUE(tree.Insert(i, i).ok());
  }
  tree.ScanReverse(101, 109, [&](uint64_t, uint64_t) {
    ++visits;
    return true;
  });
  EXPECT_EQ(visits, 0);
}

INSTANTIATE_TEST_SUITE_P(Modes, BTreeReverseScanSweep,
                         ::testing::Values(SyncMode::kOptimistic,
                                           SyncMode::kCrabbing),
                         [](const ::testing::TestParamInfo<SyncMode>& info) {
                           return ModeName(info.param);
                         });

class BTreeConcurrentModeTest : public ::testing::TestWithParam<SyncMode> {};

TEST_P(BTreeConcurrentModeTest, ConcurrentInsertersDisjointRanges) {
  BTree tree(WithMode(GetParam()));
  constexpr int kThreads = 4;
  constexpr int kEach = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kEach; ++i) {
        const uint64_t k = static_cast<uint64_t>(t) * kEach + i;
        ASSERT_TRUE(tree.Insert(k, k * 2).ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(tree.size(), static_cast<uint64_t>(kThreads) * kEach);
  EXPECT_TRUE(tree.CheckInvariants());
  for (uint64_t k = 0; k < kThreads * kEach; ++k) {
    uint64_t v;
    ASSERT_TRUE(tree.Lookup(k, &v).ok()) << k;
    ASSERT_EQ(v, k * 2);
  }
}

TEST_P(BTreeConcurrentModeTest, ConcurrentMixedReadersWriters) {
  BTree tree(WithMode(GetParam()));
  for (uint64_t i = 0; i < 10000; i += 2) ASSERT_TRUE(tree.Insert(i, i).ok());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::thread writer([&] {
    for (uint64_t i = 1; i < 10000; i += 2) {
      ASSERT_TRUE(tree.Insert(i, i).ok());
    }
    stop.store(true);
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(t);
      // A minimum read count guarantees coverage even on a single-CPU host
      // where the writer can finish before any reader is first scheduled.
      for (uint64_t i = 0; i < 500 || !stop.load(); ++i) {
        const uint64_t k = rng.Uniform(0, 9998) & ~1ULL;  // existing even key
        uint64_t v;
        ASSERT_TRUE(tree.Lookup(k, &v).ok());
        ASSERT_EQ(v, k);
        reads.fetch_add(1);
      }
    });
  }
  writer.join();
  for (auto& th : readers) th.join();
  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(tree.size(), 10000u);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST_P(BTreeConcurrentModeTest, ConcurrentSameKeyDifferentValues) {
  BTree tree(WithMode(GetParam()));
  constexpr int kThreads = 4;
  constexpr int kEach = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kEach; ++i) {
        ASSERT_TRUE(
            tree.Insert(5, static_cast<uint64_t>(t) * kEach + i).ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  std::vector<uint64_t> values;
  tree.LookupAll(5, &values);
  EXPECT_EQ(values.size(), static_cast<size_t>(kThreads) * kEach);
  EXPECT_TRUE(std::is_sorted(values.begin(), values.end()));
  EXPECT_TRUE(tree.CheckInvariants());
}

INSTANTIATE_TEST_SUITE_P(Modes, BTreeConcurrentModeTest,
                         ::testing::Values(SyncMode::kOptimistic,
                                           SyncMode::kCrabbing),
                         [](const ::testing::TestParamInfo<SyncMode>& info) {
                           return ModeName(info.param);
                         });

}  // namespace
}  // namespace slidb
