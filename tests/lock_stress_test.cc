// Randomized stress / property tests for the lock manager + SLI protocol:
// the mutual-exclusion invariant must hold under every combination of SLI
// options, mixed lock granularities, random aborts, and deadlock retries.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "src/lock/lock_manager.h"
#include "src/util/rng.h"

namespace slidb {
namespace {

/// Exercises a small universe of tables/pages/rows from several agents with
/// random read/write mixes; shared counters protected only by the database
/// locks detect any mutual-exclusion violation.
struct StressConfig {
  bool sli;
  bool require_hot;
  uint32_t hysteresis;
  double write_fraction;
};

class LockStress : public ::testing::TestWithParam<StressConfig> {};

TEST_P(LockStress, MutualExclusionInvariantHolds) {
  const StressConfig cfg = GetParam();
  LockManagerOptions o;
  o.enable_sli = cfg.sli;
  o.sli_require_hot = cfg.require_hot;
  o.sli_hysteresis = cfg.hysteresis;
  o.deadlock_interval_us = 300;
  o.lock_timeout_us = 3'000'000;
  LockManager lm(o);

  constexpr int kAgents = 4;
  constexpr int kIters = 250;
  constexpr int kTables = 2;
  constexpr int kRowsPerTable = 4;

  // One guarded cell per row; writers must be exclusive.
  struct Cell {
    std::atomic<int> writers{0};
    std::atomic<int> readers{0};
    int64_t value = 0;
  };
  Cell cells[kTables][kRowsPerTable];
  std::atomic<int64_t> expected_total{0};
  std::atomic<bool> violation{false};

  struct AgentState {
    std::unique_ptr<AgentSliState> sli;
    std::unique_ptr<LockClient> client;
  };
  std::vector<AgentState> agents(kAgents);
  for (int i = 0; i < kAgents; ++i) {
    agents[i].sli = std::make_unique<AgentSliState>(i);
    agents[i].client = std::make_unique<LockClient>();
    agents[i].client->SetPool(&agents[i].sli->pool());
  }

  std::atomic<uint64_t> next_txn{1};

  // Checker thread: at random checkpoints, assert that every head's
  // incremental grant summary equals a full-queue recompute (ForEachHead
  // runs the lambda with the head latch held, so the comparison is exact).
  std::atomic<bool> done{false};
  std::atomic<int> summary_mismatches{0};
  std::atomic<uint64_t> summary_checks{0};
  std::thread checker([&] {
    Rng rng(987);
    // Loop until the workload finishes, then take one guaranteed final
    // pass — on a single-CPU host the agents can complete before this
    // thread is first scheduled.
    for (bool final_pass = false; !final_pass;) {
      final_pass = done.load(std::memory_order_acquire);
      lm.table().ForEachHead([&](LockHead* h) {
        summary_checks.fetch_add(1, std::memory_order_relaxed);
        if (!h->SummaryMatchesQueue()) {
          summary_mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      });
      if (!final_pass) SpinForNanos(20'000 + rng.Uniform(0, 200'000));
    }
  });

  std::vector<std::thread> threads;
  for (int a = 0; a < kAgents; ++a) {
    threads.emplace_back([&, a] {
      Rng rng(1234 + a);
      AgentState& st = agents[a];
      for (int iter = 0; iter < kIters; ++iter) {
        st.client->StartTxn(next_txn.fetch_add(1), a);
        lm.AdoptInherited(st.client.get(), st.sli.get());

        const uint32_t table = static_cast<uint32_t>(rng.Uniform(1, kTables));
        const uint32_t row =
            static_cast<uint32_t>(rng.Uniform(0, kRowsPerTable - 1));
        const bool write = rng.Bernoulli(cfg.write_fraction);
        Cell& cell = cells[table - 1][row];

        const Status st_lock =
            lm.Lock(st.client.get(), LockId::Row(0, table, 0, row),
                    write ? LockMode::kX : LockMode::kS);
        if (!st_lock.ok()) {
          // Deadlock victim or timeout: abort (no inheritance) and retry.
          lm.ReleaseAll(st.client.get(), st.sli.get(), false);
          continue;
        }

        if (write) {
          if (cell.writers.fetch_add(1) != 0 || cell.readers.load() != 0) {
            violation.store(true);
          }
          cell.value += 1;
          cell.writers.fetch_sub(1);
        } else {
          cell.readers.fetch_add(1);
          if (cell.writers.load() != 0) violation.store(true);
          cell.readers.fetch_sub(1);
        }

        const bool abort = rng.Bernoulli(0.1);
        if (abort && write) {
          cell.value -= 1;  // "undo" while still holding the X lock
          lm.ReleaseAll(st.client.get(), st.sli.get(), false);
        } else {
          if (write) expected_total.fetch_add(1);
          lm.ReleaseAll(st.client.get(), st.sli.get(), true);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  done.store(true, std::memory_order_release);
  checker.join();
  EXPECT_EQ(summary_mismatches.load(), 0)
      << "incremental grant summary diverged from the queue";
  EXPECT_GT(summary_checks.load(), 0u);

  // Drain all speculation: with SLI disabled the release path discards
  // every parked inherited request.
  lm.mutable_options().enable_sli = false;
  for (int a = 0; a < kAgents; ++a) {
    agents[a].client->StartTxn(next_txn.fetch_add(1), a);
    lm.ReleaseAll(agents[a].client.get(), agents[a].sli.get(), false);
  }

  EXPECT_FALSE(violation.load()) << "reader/writer exclusion violated";
  int64_t total = 0;
  for (auto& table : cells) {
    for (auto& cell : table) total += cell.value;
  }
  EXPECT_EQ(total, expected_total.load());
  // All queues must be empty at the end, with the summaries agreeing.
  lm.table().ForEachHead([](LockHead* h) {
    EXPECT_TRUE(h->QueueEmpty());
    EXPECT_TRUE(h->SummaryMatchesQueue());
    EXPECT_EQ(h->granted_mask, 0u);
    EXPECT_EQ(h->inherited_hint.load(), 0u);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Configs, LockStress,
    ::testing::Values(StressConfig{false, true, 0, 0.3},
                      StressConfig{true, true, 0, 0.3},
                      StressConfig{true, false, 0, 0.3},
                      StressConfig{true, false, 2, 0.3},
                      StressConfig{true, false, 0, 0.9},
                      StressConfig{true, true, 1, 0.05}),
    [](const ::testing::TestParamInfo<StressConfig>& info) {
      const StressConfig& c = info.param;
      std::string name = c.sli ? "Sli" : "Base";
      name += c.require_hot ? "Hot" : "NoHot";
      name += "Hys" + std::to_string(c.hysteresis);
      name += "W" + std::to_string(static_cast<int>(c.write_fraction * 100));
      return name;
    });

TEST(LockStressExtra, RapidSliToggleIsSafe) {
  // Toggling enable_sli between runs (as the benches do) must not strand
  // inherited requests.
  LockManagerOptions o;
  o.enable_sli = true;
  o.sli_require_hot = false;
  LockManager lm(o);
  AgentSliState sli(0);
  LockClient c;
  c.SetPool(&sli.pool());

  for (int round = 0; round < 10; ++round) {
    lm.mutable_options().enable_sli = (round % 2 == 0);
    for (uint64_t i = 0; i < 20; ++i) {
      c.StartTxn(round * 100 + i + 1, 0);
      lm.AdoptInherited(&c, &sli);
      ASSERT_TRUE(lm.Lock(&c, LockId::Table(0, 1), LockMode::kS).ok());
      lm.ReleaseAll(&c, &sli, true);
    }
  }
  // Final drain and verify nothing leaks.
  c.StartTxn(99999, 0);
  lm.ReleaseAll(&c, &sli, false);
  EXPECT_EQ(sli.inherited_count(), 0u);
  lm.table().ForEachHead([](LockHead* h) { EXPECT_TRUE(h->QueueEmpty()); });
}

TEST(LockStressExtra, BimodalWorkloadConverges) {
  // Paper §4.4: two transaction classes touching different tables on the
  // same agents. With the paper's "do nothing" policy the system must stay
  // correct and keep making progress (inherited locks for the other class
  // get discarded, not stuck).
  LockManagerOptions o;
  o.enable_sli = true;
  o.sli_require_hot = false;
  LockManager lm(o);

  constexpr int kAgents = 4;
  std::vector<std::unique_ptr<AgentSliState>> slis;
  std::vector<std::unique_ptr<LockClient>> clients;
  for (int i = 0; i < kAgents; ++i) {
    slis.push_back(std::make_unique<AgentSliState>(i));
    clients.push_back(std::make_unique<LockClient>());
    clients[i]->SetPool(&slis[i]->pool());
  }
  std::atomic<uint64_t> next_txn{1};
  std::vector<std::thread> threads;
  for (int a = 0; a < kAgents; ++a) {
    threads.emplace_back([&, a] {
      Rng rng(a);
      for (int i = 0; i < 300; ++i) {
        clients[a]->StartTxn(next_txn.fetch_add(1), a);
        lm.AdoptInherited(clients[a].get(), slis[a].get());
        // Class A uses tables 1-2, class B uses tables 3-4, alternating.
        const uint32_t base = (i % 2 == 0) ? 1 : 3;
        ASSERT_TRUE(lm.Lock(clients[a].get(),
                            LockId::Table(0, base + (i % 2)), LockMode::kS)
                        .ok());
        lm.ReleaseAll(clients[a].get(), slis[a].get(), true);
      }
    });
  }
  for (auto& t : threads) t.join();
  // Force-drain speculation, then the queues must be empty.
  lm.mutable_options().enable_sli = false;
  for (int a = 0; a < kAgents; ++a) {
    clients[a]->StartTxn(next_txn.fetch_add(1), a);
    lm.ReleaseAll(clients[a].get(), slis[a].get(), false);
  }
  lm.table().ForEachHead([](LockHead* h) { EXPECT_TRUE(h->QueueEmpty()); });
}

TEST(LockStressExtra, HierarchyMixedGranularityConflicts) {
  // A table-X holder excludes row-level users and vice versa through the
  // intention hierarchy, repeatedly and concurrently.
  LockManagerOptions o;
  o.deadlock_interval_us = 300;
  LockManager lm(o);
  std::atomic<bool> table_locked{false};
  std::atomic<bool> violation{false};
  std::atomic<int> rows_active{0};

  std::thread coarse([&] {
    LockClient c;
    for (uint64_t i = 0; i < 50; ++i) {
      c.StartTxn(1000000 + i, 0);
      ASSERT_TRUE(lm.Lock(&c, LockId::Table(0, 1), LockMode::kX).ok());
      table_locked.store(true);
      if (rows_active.load() != 0) violation.store(true);
      SpinForNanos(20'000);
      table_locked.store(false);
      lm.ReleaseAll(&c, nullptr, false);
    }
  });
  std::vector<std::thread> fine;
  for (int t = 0; t < 3; ++t) {
    fine.emplace_back([&, t] {
      LockClient c;
      for (uint64_t i = 0; i < 300; ++i) {
        c.StartTxn(t * 10000 + i + 1, t + 1);
        ASSERT_TRUE(
            lm.Lock(&c, LockId::Row(0, 1, 1, static_cast<uint32_t>(t)),
                    LockMode::kX)
                .ok());
        rows_active.fetch_add(1);
        if (table_locked.load()) violation.store(true);
        rows_active.fetch_sub(1);
        lm.ReleaseAll(&c, nullptr, false);
      }
    });
  }
  coarse.join();
  for (auto& t : fine) t.join();
  EXPECT_FALSE(violation.load());
}

}  // namespace
}  // namespace slidb
