// Overload-governor tests: admission token accounting, queue sheds and
// deadline timeouts, lock-wait deadline propagation (a waiter past its
// response budget wakes, fails retryably, and releases its queue position),
// hot-head wait-depth cancels, and the engine-level admission lifecycle
// including the commit-entry deadline gate.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>

#include "src/engine/database.h"
#include "src/engine/governor.h"
#include "src/lock/lock_manager.h"
#include "src/util/time_util.h"

namespace slidb {
namespace {

std::span<const uint8_t> Bytes(const std::string& s) {
  return {reinterpret_cast<const uint8_t*>(s.data()), s.size()};
}

/// Poll until the client is provably parked inside a lock wait; bounded so
/// a broken enqueue path fails the test instead of hanging it.
void WaitUntilBlocked(LockClient& c) {
  for (int i = 0; i < 20'000; ++i) {
    if (c.waiting_on().load(std::memory_order_acquire) != nullptr) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  FAIL() << "client never entered a lock wait";
}

/// Poll the governor until `pred(stats)` holds, same bounded discipline.
template <typename Pred>
void WaitUntilGov(const AdmissionGovernor& gov, Pred pred) {
  for (int i = 0; i < 20'000; ++i) {
    if (pred(gov.Stats())) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  FAIL() << "governor never reached the expected state";
}

TEST(GovernorTest, DisabledAdmitsEverything) {
  AdmissionGovernor gov;  // max_inflight == 0: the default-off contract
  EXPECT_FALSE(gov.enabled());
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(gov.Admit().ok());
  const GovernorStats s = gov.Stats();
  EXPECT_EQ(s.admitted, 0u);  // free-pass admits are not token grants
  EXPECT_EQ(s.inflight, 0u);
}

TEST(GovernorTest, TokensBoundInflightAndShedWithoutQueue) {
  AdmissionGovernor gov({.max_inflight = 2, .max_queue = 0});
  ASSERT_TRUE(gov.Admit().ok());
  ASSERT_TRUE(gov.Admit().ok());
  // Tokens exhausted and no entry queue: shed at the door.
  const Status st = gov.Admit();
  EXPECT_TRUE(st.IsOverloaded());
  EXPECT_TRUE(st.retryable());

  gov.Release();
  EXPECT_TRUE(gov.Admit().ok());  // a freed token is immediately reusable

  const GovernorStats s = gov.Stats();
  EXPECT_EQ(s.admitted, 3u);
  EXPECT_EQ(s.shed, 1u);
  EXPECT_EQ(s.inflight, 2u);
  gov.Release();
  gov.Release();
  EXPECT_EQ(gov.Stats().inflight, 0u);
}

TEST(GovernorTest, QueuedArrivalTimesOutAtDeadline) {
  AdmissionGovernor gov({.max_inflight = 1, .max_queue = 1});
  ASSERT_TRUE(gov.Admit().ok());
  // The queue has room, but no token frees before the deadline: the waiter
  // must wake on its own and fail retryably.
  const uint64_t start = NowNanos();
  const Status st = gov.Admit(NowNanos() + 30'000'000);  // 30 ms budget
  EXPECT_TRUE(st.IsTimedOut());
  EXPECT_TRUE(st.retryable());
  EXPECT_GE(NowNanos() - start, 25'000'000u);  // actually waited

  const GovernorStats s = gov.Stats();
  EXPECT_EQ(s.queue_timeouts, 1u);
  EXPECT_EQ(s.queue_depth, 0u);  // the timed-out waiter left the queue
  gov.Release();
}

TEST(GovernorTest, ReleaseDrainsQueueAndFullQueueSheds) {
  if (std::thread::hardware_concurrency() < 2) {
    GTEST_SKIP() << "needs a second thread to park in the entry queue";
  }
  AdmissionGovernor gov({.max_inflight = 1, .max_queue = 1});
  ASSERT_TRUE(gov.Admit().ok());

  std::atomic<bool> queued_got{false};
  std::thread waiter([&] {
    EXPECT_TRUE(gov.Admit().ok());  // parks until the token frees
    queued_got.store(true);
    gov.Release();
  });
  WaitUntilGov(gov, [](const GovernorStats& s) { return s.queue_depth == 1; });
  EXPECT_FALSE(queued_got.load());

  // Queue slot taken: the next arrival sheds immediately.
  EXPECT_TRUE(gov.Admit().IsOverloaded());

  gov.Release();
  waiter.join();
  EXPECT_TRUE(queued_got.load());

  const GovernorStats s = gov.Stats();
  EXPECT_EQ(s.admitted, 2u);
  EXPECT_EQ(s.queued_admits, 1u);
  EXPECT_EQ(s.shed, 1u);
  EXPECT_EQ(s.inflight, 0u);
  EXPECT_EQ(s.queue_depth, 0u);
}

TEST(GovernorTest, LockWaitHonorsTxnDeadline) {
  if (std::thread::hardware_concurrency() < 2) {
    GTEST_SKIP() << "needs a concurrent lock holder";
  }
  LockManagerOptions o;
  o.enable_deadlock_detector = false;
  o.lock_timeout_us = 10'000'000;  // far beyond the deadline under test
  LockManager lm(o);

  LockClient holder, waiter, successor;
  holder.StartTxn(1, 0);
  waiter.StartTxn(2, 1);
  successor.StartTxn(3, 2);
  ASSERT_TRUE(lm.Lock(&holder, LockId::Table(0, 7), LockMode::kX).ok());

  // The waiter's budget (50 ms) must cap the 10 s lock timeout: it wakes on
  // its own, fails retryably, and vacates its queue position.
  waiter.SetDeadline(NowNanos() + 50'000'000);
  const uint64_t start = NowNanos();
  const Status st = lm.Lock(&waiter, LockId::Table(0, 7), LockMode::kX);
  const uint64_t waited_ns = NowNanos() - start;
  EXPECT_TRUE(st.IsTimedOut());
  EXPECT_TRUE(st.retryable());
  EXPECT_GE(waited_ns, 40'000'000u);
  EXPECT_LT(waited_ns, 5'000'000'000u);  // nowhere near lock_timeout_us
  lm.ReleaseAll(&waiter, nullptr, false);

  // The abandoned queue slot must not wedge the head: a later waiter is
  // granted normally once the holder releases.
  std::atomic<bool> got{false};
  std::thread t([&] {
    EXPECT_TRUE(lm.Lock(&successor, LockId::Table(0, 7), LockMode::kX).ok());
    got.store(true);
    lm.ReleaseAll(&successor, nullptr, false);
  });
  WaitUntilBlocked(successor);
  lm.ReleaseAll(&holder, nullptr, false);
  t.join();
  EXPECT_TRUE(got.load());
}

TEST(GovernorTest, HotHeadWaitDepthCancel) {
  if (std::thread::hardware_concurrency() < 2) {
    GTEST_SKIP() << "needs a concurrent waiter to fill the depth budget";
  }
  LockManagerOptions o;
  o.enable_deadlock_detector = false;
  o.lock_timeout_us = 10'000'000;
  o.hot_wait_depth = 1;
  o.hot_min_contended = 0;  // every head counts as hot: isolates the depth
                            // rule from the heat signal
  LockManager lm(o);

  LockClient holder, first, second;
  holder.StartTxn(1, 0);
  first.StartTxn(2, 1);
  second.StartTxn(3, 2);
  ASSERT_TRUE(lm.Lock(&holder, LockId::Table(0, 9), LockMode::kX).ok());

  std::atomic<bool> first_got{false};
  std::thread t([&] {
    EXPECT_TRUE(lm.Lock(&first, LockId::Table(0, 9), LockMode::kX).ok());
    first_got.store(true);
    lm.ReleaseAll(&first, nullptr, false);
  });
  WaitUntilBlocked(first);

  // Depth budget (1) is spent on `first`: the next arrival is cancelled at
  // enqueue time instead of piling onto the hot head.
  const uint64_t start = NowNanos();
  const Status st = lm.Lock(&second, LockId::Table(0, 9), LockMode::kX);
  EXPECT_TRUE(st.IsOverloaded());
  EXPECT_TRUE(st.retryable());
  EXPECT_LT(NowNanos() - start, 1'000'000'000u);  // immediate, not a wait
  lm.ReleaseAll(&second, nullptr, false);

  lm.ReleaseAll(&holder, nullptr, false);
  t.join();
  EXPECT_TRUE(first_got.load());
  lm.table().ForEachHead([](LockHead* h) { EXPECT_TRUE(h->QueueEmpty()); });
}

DatabaseOptions GovDbOptions() {
  DatabaseOptions o;
  o.buffer.num_frames = 256;
  o.lock.deadlock_interval_us = 300;
  o.log.flush_interval_us = 50;
  return o;
}

TEST(GovernorTest, DatabaseAdmissionLifecycle) {
  DatabaseOptions o = GovDbOptions();
  o.governor.max_inflight = 1;
  o.governor.max_queue = 0;
  Database db(o);
  const TableId t = db.CreateTable("t");
  auto a1 = db.CreateAgent();
  auto a2 = db.CreateAgent();

  ASSERT_TRUE(db.AdmitTxn(a1.get()).ok());
  // Token pool exhausted: a second admission sheds.
  EXPECT_TRUE(db.AdmitTxn(a2.get()).IsOverloaded());

  // Commit returns the token implicitly...
  db.Begin(a1.get());
  Rid rid;
  ASSERT_TRUE(db.Insert(a1.get(), t, Bytes("payload"), &rid).ok());
  ASSERT_TRUE(db.Commit(a1.get()).ok());
  ASSERT_TRUE(db.AdmitTxn(a2.get()).ok());

  // ...and Abort does too.
  db.Begin(a2.get());
  db.Abort(a2.get());
  ASSERT_TRUE(db.AdmitTxn(a1.get()).ok());

  // FinishAdmission is idempotent: the duplicate release must not mint a
  // phantom token (a second admit still sheds until the real release).
  db.FinishAdmission(a1.get());
  db.FinishAdmission(a1.get());
  ASSERT_TRUE(db.AdmitTxn(a2.get()).ok());
  EXPECT_TRUE(db.AdmitTxn(a1.get()).IsOverloaded());
  db.FinishAdmission(a2.get());

  const GovernorStats s = db.governor().Stats();
  EXPECT_EQ(s.inflight, 0u);
  EXPECT_EQ(s.shed, 2u);
}

TEST(GovernorTest, CommitEntryDeadlineAbortsAndRollsBack) {
  Database db(GovDbOptions());
  const TableId t = db.CreateTable("t");
  auto agent = db.CreateAgent();

  // Seed a row so the aborted update has visible before/after state.
  db.Begin(agent.get());
  Rid rid;
  ASSERT_TRUE(db.Insert(agent.get(), t, Bytes("before"), &rid).ok());
  ASSERT_TRUE(db.Commit(agent.get()).ok());

  // A transaction whose budget expires before Commit must abort retryably
  // at the commit gate — before its commit record exists — and undo.
  agent->set_txn_deadline_ns(NowNanos() + 1);
  db.Begin(agent.get());
  ASSERT_TRUE(db.Update(agent.get(), t, rid, Bytes("after!")).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const Status st = db.Commit(agent.get());
  EXPECT_TRUE(st.IsTimedOut());
  EXPECT_TRUE(st.retryable());

  // The deadline is per-arrival state: it must not leak into the next
  // transaction on this agent.
  agent->set_txn_deadline_ns(0);
  db.Begin(agent.get());
  char buf[6];
  ASSERT_TRUE(db.Read(agent.get(), t, rid, buf, 6).ok());
  EXPECT_EQ(std::memcmp(buf, "before", 6), 0);
  ASSERT_TRUE(db.Commit(agent.get()).ok());
}

}  // namespace
}  // namespace slidb
