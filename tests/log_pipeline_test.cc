// Tests for the decentralized log pipeline: latch-free reservation +
// per-slot publication, ring wrap-around, ring-space and publish-slot
// backpressure, multi-writer append ordering, and the consolidated
// group-commit waiter queue. The flush_sink hook captures the exact durable
// byte stream so every test can verify record integrity end to end. This
// suite runs under TSan in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "src/log/log_manager.h"
#include "src/log/log_record.h"
#include "src/stats/counters.h"

namespace slidb {
namespace {

/// Captures the durable byte stream emitted by the flusher and checks the
/// chunks arrive contiguously from LSN 0.
struct StreamCapture {
  std::mutex mu;
  std::vector<uint8_t> bytes;
  Lsn expect = 0;
  bool contiguous = true;

  void Install(LogOptions* o) {
    o->flush_sink = [this](const uint8_t* d, size_t n, Lsn start) {
      std::lock_guard<std::mutex> g(mu);
      if (start != expect) contiguous = false;
      bytes.insert(bytes.end(), d, d + n);
      expect = start + n;
    };
  }
};

struct ParsedRecord {
  uint64_t txn_id;
  uint8_t type;
  std::vector<uint8_t> payload;
};

/// Parse a captured stream back into records through the real wire-format
/// validator (CRC32C + self-LSN + version checks on every record); fails
/// the test on a torn, corrupt, or truncated record. kBatchSeal envelopes
/// are validated, then their interior records surfaced individually —
/// exactly the scanner's view.
std::vector<ParsedRecord> ParseStream(const std::vector<uint8_t>& bytes) {
  std::vector<ParsedRecord> out;
  size_t pos = 0;
  for (;;) {
    LogRecordHeader hdr;
    const uint8_t* payload = nullptr;
    const LogScanStatus st = DecodeLogRecord(bytes.data(), bytes.size(), pos,
                                             /*base_lsn=*/0, &hdr, &payload);
    if (st == LogScanStatus::kEndOfStream) break;
    if (st != LogScanStatus::kOk) {
      ADD_FAILURE() << "invalid record at " << pos << ": "
                    << LogScanStatusName(st);
      break;
    }
    if (hdr.type == static_cast<uint8_t>(LogRecordType::kBatchSeal)) {
      EXPECT_TRUE(ForEachEnvelopeRecord(
          payload, hdr.payload_len, hdr.lsn + sizeof(LogRecordHeader),
          [&](const LogRecordHeader& inner, const uint8_t* inner_payload) {
            ParsedRecord r;
            r.txn_id = inner.txn_id;
            r.type = inner.type;
            r.payload.assign(inner_payload,
                             inner_payload + inner.payload_len);
            out.push_back(std::move(r));
          }))
          << "malformed envelope interior at " << pos;
    } else {
      ParsedRecord r;
      r.txn_id = hdr.txn_id;
      r.type = hdr.type;
      r.payload.assign(payload, payload + hdr.payload_len);
      out.push_back(std::move(r));
    }
    pos += sizeof(LogRecordHeader) + hdr.payload_len;
  }
  return out;
}

/// Deterministic payload for (writer, seq): lets integrity checks detect
/// any byte written to the wrong reservation.
std::vector<uint8_t> PayloadFor(uint32_t writer, uint32_t seq, size_t len) {
  std::vector<uint8_t> p(len);
  for (size_t i = 0; i < len; ++i) {
    p[i] = static_cast<uint8_t>(writer * 131 + seq * 17 + i);
  }
  return p;
}

TEST(LogPipelineTest, MultiWriterAppendOrderingAndIntegrity) {
  StreamCapture capture;
  LogOptions o;
  o.buffer_bytes = 1 << 16;  // 64 KB: forces several wraps
  o.flush_interval_us = 20;
  o.reservation_slots = 64;
  capture.Install(&o);

  constexpr int kWriters = 4;
  constexpr uint32_t kEach = 300;
  {
    LogManager log(o);
    std::vector<std::thread> threads;
    std::atomic<Lsn> max_end{0};
    for (int w = 0; w < kWriters; ++w) {
      threads.emplace_back([&, w] {
        for (uint32_t i = 0; i < kEach; ++i) {
          // Variable sizes so reservations land at irregular offsets.
          const std::vector<uint8_t> p =
              PayloadFor(static_cast<uint32_t>(w), i, 16 + (i % 48));
          const Lsn end = log.Append(100 + w, LogRecordType::kUpdate,
                                     p.data(), static_cast<uint32_t>(p.size()));
          Lsn cur = max_end.load();
          while (end > cur && !max_end.compare_exchange_weak(cur, end)) {
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    log.WaitDurable(max_end.load());
    EXPECT_GE(log.durable_lsn(), max_end.load());
    EXPECT_EQ(log.Stats().records, uint64_t{kWriters} * kEach);
  }  // destructor joins the flusher; capture is complete and quiescent

  EXPECT_TRUE(capture.contiguous);
  const std::vector<ParsedRecord> records = ParseStream(capture.bytes);
  ASSERT_EQ(records.size(), size_t{kWriters} * kEach);

  // Per-writer: every record present exactly once, in program order (a
  // writer's appends get strictly increasing LSNs, so the LSN-ordered
  // durable stream must preserve each writer's sequence).
  uint32_t next_seq[kWriters] = {};
  for (const ParsedRecord& r : records) {
    ASSERT_GE(r.txn_id, 100u);
    const auto w = static_cast<uint32_t>(r.txn_id - 100);
    ASSERT_LT(w, static_cast<uint32_t>(kWriters));
    const uint32_t seq = next_seq[w]++;
    const std::vector<uint8_t> want = PayloadFor(w, seq, 16 + (seq % 48));
    ASSERT_EQ(r.payload, want) << "writer " << w << " record " << seq;
  }
  for (int w = 0; w < kWriters; ++w) EXPECT_EQ(next_seq[w], kEach);
}

TEST(LogPipelineTest, RingWrapAroundPreservesRecordBytes) {
  StreamCapture capture;
  LogOptions o;
  o.buffer_bytes = 1 << 12;  // 4 KB ring, ~100 B records: dozens of wraps
  o.flush_interval_us = 20;
  capture.Install(&o);

  constexpr uint32_t kRecords = 500;
  {
    LogManager log(o);
    Lsn last = 0;
    for (uint32_t i = 0; i < kRecords; ++i) {
      const std::vector<uint8_t> p = PayloadFor(7, i, 64 + (i % 32));
      last = log.Append(7, LogRecordType::kUpdate, p.data(),
                        static_cast<uint32_t>(p.size()));
    }
    log.WaitDurable(last);
    EXPECT_GE(log.durable_lsn(), last);
  }

  EXPECT_TRUE(capture.contiguous);
  const std::vector<ParsedRecord> records = ParseStream(capture.bytes);
  ASSERT_EQ(records.size(), kRecords);
  for (uint32_t i = 0; i < kRecords; ++i) {
    EXPECT_EQ(records[i].payload, PayloadFor(7, i, 64 + (i % 32)))
        << "record " << i;
  }
}

TEST(LogPipelineTest, FullRingBackpressureBlocksThenCompletes) {
  StreamCapture capture;
  LogOptions o;
  o.buffer_bytes = 1 << 11;           // 2 KB ring holds ~4 records
  o.simulated_io_delay_us = 500;      // slow device: ring must fill
  o.flush_interval_us = 20;
  capture.Install(&o);

  constexpr int kWriters = 3;
  constexpr uint32_t kEach = 30;
  std::vector<CounterSet> counters(kWriters);
  {
    LogManager log(o);
    std::vector<std::thread> threads;
    for (int w = 0; w < kWriters; ++w) {
      threads.emplace_back([&, w] {
        ScopedCounterSet routed(&counters[w]);
        for (uint32_t i = 0; i < kEach; ++i) {
          const std::vector<uint8_t> p =
              PayloadFor(static_cast<uint32_t>(w), i, 400);
          log.Append(200 + w, LogRecordType::kUpdate, p.data(),
                     static_cast<uint32_t>(p.size()));
        }
      });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(log.Stats().records, uint64_t{kWriters} * kEach);
  }

  uint64_t retries = 0;
  for (const CounterSet& c : counters) retries += c.Get(Counter::kLogResvRetries);
  EXPECT_GT(retries, 0u);  // the 2 KB ring cannot hold 90 × 416 B without waits

  EXPECT_TRUE(capture.contiguous);
  EXPECT_EQ(ParseStream(capture.bytes).size(), size_t{kWriters} * kEach);
}

TEST(LogPipelineTest, PublishSlotBackpressureKeepsOrdering) {
  StreamCapture capture;
  LogOptions o;
  o.buffer_bytes = 1 << 20;   // plenty of bytes...
  o.reservation_slots = 2;    // ...but only 2 records in flight at a time
  o.flush_interval_us = 10;
  capture.Install(&o);

  constexpr int kWriters = 4;
  constexpr uint32_t kEach = 200;
  {
    LogManager log(o);
    std::vector<std::thread> threads;
    for (int w = 0; w < kWriters; ++w) {
      threads.emplace_back([&, w] {
        for (uint32_t i = 0; i < kEach; ++i) {
          const std::vector<uint8_t> p =
              PayloadFor(static_cast<uint32_t>(w), i, 24);
          log.Append(300 + w, LogRecordType::kUpdate, p.data(),
                     static_cast<uint32_t>(p.size()));
        }
      });
    }
    for (auto& t : threads) t.join();
  }

  EXPECT_TRUE(capture.contiguous);
  const std::vector<ParsedRecord> records = ParseStream(capture.bytes);
  ASSERT_EQ(records.size(), size_t{kWriters} * kEach);
  uint32_t next_seq[kWriters] = {};
  for (const ParsedRecord& r : records) {
    const auto w = static_cast<uint32_t>(r.txn_id - 300);
    ASSERT_LT(w, static_cast<uint32_t>(kWriters));
    const uint32_t seq = next_seq[w]++;
    ASSERT_EQ(r.payload, PayloadFor(w, seq, 24));
  }
}

TEST(LogPipelineTest, ConsolidatedGroupCommitWakesWaiters) {
  LogOptions o;
  o.flush_interval_us = 100;
  o.simulated_io_delay_us = 200;  // waits actually block
  ASSERT_EQ(o.waiter_policy, LogOptions::WaiterPolicy::kConsolidated);

  constexpr int kThreads = 6;
  constexpr int kCommitsEach = 20;
  std::vector<CounterSet> counters(kThreads);
  LogManager log(o);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ScopedCounterSet routed(&counters[t]);
      for (int i = 0; i < kCommitsEach; ++i) {
        const Lsn lsn = log.Append(t + 1, LogRecordType::kCommit, nullptr, 0);
        log.WaitDurable(lsn);
        EXPECT_GE(log.durable_lsn(), lsn);
      }
    });
  }
  for (auto& th : threads) th.join();

  const LogStats stats = log.Stats();
  EXPECT_EQ(stats.records, uint64_t{kThreads} * kCommitsEach);
  EXPECT_LT(stats.flushes, stats.records);  // group commit still batches
  uint64_t woken = 0;
  for (const CounterSet& c : counters) {
    woken += c.Get(Counter::kGroupCommitWaitersWoken);
  }
  EXPECT_GT(woken, 0u);
  EXPECT_LE(woken, uint64_t{kThreads} * kCommitsEach);
}

TEST(LogPipelineTest, BroadcastPolicyStillGroupCommits) {
  LogOptions o;
  o.flush_interval_us = 200;
  o.waiter_policy = LogOptions::WaiterPolicy::kBroadcast;
  LogManager log(o);
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 25; ++i) {
        const Lsn lsn = log.Append(t + 1, LogRecordType::kCommit, nullptr, 0);
        log.WaitDurable(lsn);
        EXPECT_GE(log.durable_lsn(), lsn);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(log.Stats().records, uint64_t{kThreads} * 25);
}

TEST(LogPipelineTest, LatchedAppendModeParity) {
  StreamCapture capture;
  LogOptions o;
  o.buffer_bytes = 1 << 14;
  o.append_mode = LogOptions::AppendMode::kLatched;
  o.flush_interval_us = 20;
  capture.Install(&o);

  constexpr int kWriters = 2;
  constexpr uint32_t kEach = 200;
  {
    LogManager log(o);
    std::vector<std::thread> threads;
    for (int w = 0; w < kWriters; ++w) {
      threads.emplace_back([&, w] {
        for (uint32_t i = 0; i < kEach; ++i) {
          const std::vector<uint8_t> p =
              PayloadFor(static_cast<uint32_t>(w), i, 40);
          log.Append(400 + w, LogRecordType::kUpdate, p.data(),
                     static_cast<uint32_t>(p.size()));
        }
      });
    }
    for (auto& t : threads) t.join();
  }

  EXPECT_TRUE(capture.contiguous);
  const std::vector<ParsedRecord> records = ParseStream(capture.bytes);
  ASSERT_EQ(records.size(), size_t{kWriters} * kEach);
  uint32_t next_seq[kWriters] = {};
  for (const ParsedRecord& r : records) {
    const auto w = static_cast<uint32_t>(r.txn_id - 400);
    ASSERT_LT(w, static_cast<uint32_t>(kWriters));
    ASSERT_EQ(r.payload, PayloadFor(w, next_seq[w]++, 40));
  }
}

TEST(LogPipelineTest, ReservedAppendedDurableLsnOrdering) {
  LogOptions o;
  o.flush_interval_us = 50;
  LogManager log(o);
  for (int i = 0; i < 50; ++i) {
    log.Append(1, LogRecordType::kUpdate, "xyz", 3);
    EXPECT_LE(log.durable_lsn(), log.appended_lsn());
    EXPECT_LE(log.appended_lsn(), log.reserved_lsn());
  }
  const Lsn last = log.Append(1, LogRecordType::kCommit, nullptr, 0);
  log.WaitDurable(last);
  EXPECT_GE(log.durable_lsn(), last);
  EXPECT_EQ(log.reserved_lsn(), last);
}

TEST(LogPipelineTest, SequenceNumberWrapAt2To20Records) {
  // Regression: the packed reservation ticket carries a 20-bit record
  // sequence number that wraps at 2^20 records. The publish-slot tags must
  // keep matching across the wrap (they compare in modular seq space);
  // before the fix, the writer of record 2^20 waited forever on a tag that
  // could no longer occur.
  LogOptions o;
  o.flush_interval_us = 10;
  LogManager log(o);
  constexpr int kWriters = 2;
  constexpr uint64_t kTotal = (uint64_t{1} << 20) + 4096;
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (uint64_t i = 0; i < kTotal / kWriters; ++i) {
        log.Append(600 + w, LogRecordType::kUpdate, nullptr, 0);
      }
    });
  }
  for (auto& t : threads) t.join();
  const Lsn last = log.Append(600, LogRecordType::kCommit, nullptr, 0);
  log.WaitDurable(last);
  EXPECT_GE(log.durable_lsn(), last);
  EXPECT_EQ(log.Stats().records, kTotal + 1);
}

TEST(LogBatchTest, EnvelopeFormationSealsSmallRunsUnderOneCrc) {
  // One batch of [8 tiny][1 big][8 tiny] records must publish as exactly
  // three outer records — envelope, plain, envelope — with interior
  // records carrying real stream LSNs and ZERO crc fields (the envelope's
  // checksum is the only seal covering them).
  StreamCapture capture;
  LogOptions o;
  o.flush_interval_us = 20;
  capture.Install(&o);

  CounterSet counters;
  {
    ScopedCounterSet routed(&counters);
    LogManager log(o);
    LogStagingBuffer staging;
    for (uint32_t i = 0; i < 8; ++i) {
      const std::vector<uint8_t> p = PayloadFor(1, i, 8);
      staging.Stage(42, LogRecordType::kUpdate, p.data(),
                    static_cast<uint32_t>(p.size()));
    }
    const std::vector<uint8_t> big = PayloadFor(1, 100, 200);
    staging.Stage(42, LogRecordType::kUpdate, big.data(),
                  static_cast<uint32_t>(big.size()));
    for (uint32_t i = 8; i < 16; ++i) {
      const std::vector<uint8_t> p = PayloadFor(1, i, 8);
      staging.Stage(42, LogRecordType::kUpdate, p.data(),
                    static_cast<uint32_t>(p.size()));
    }
    ASSERT_EQ(staging.records(), 17u);
    const Lsn end = log.AppendBatch(&staging);
    EXPECT_TRUE(staging.empty());  // drained by the publish
    log.WaitDurable(end);
    EXPECT_EQ(log.Stats().records, 17u);  // interior records count
  }

  EXPECT_EQ(counters.Get(Counter::kLogBatchAppends), 1u);  // ONE reservation
  EXPECT_EQ(counters.Get(Counter::kLogBatchRecords), 17u);
  EXPECT_EQ(counters.Get(Counter::kLogBatchBytes), capture.bytes.size());

  // Outer structure: envelope, plain, envelope.
  std::vector<uint8_t> outer_types;
  size_t pos = 0;
  LogRecordHeader hdr;
  const uint8_t* payload = nullptr;
  while (DecodeLogRecord(capture.bytes.data(), capture.bytes.size(), pos, 0,
                         &hdr, &payload) == LogScanStatus::kOk) {
    outer_types.push_back(hdr.type);
    if (hdr.type == static_cast<uint8_t>(LogRecordType::kBatchSeal)) {
      // Interior records: zero crc, self-describing stream LSNs.
      size_t rel = 0;
      while (rel < hdr.payload_len) {
        LogRecordHeader inner;
        std::memcpy(&inner, payload + rel, sizeof(inner));
        EXPECT_EQ(inner.crc, 0u);
        EXPECT_EQ(inner.lsn, hdr.lsn + sizeof(LogRecordHeader) + rel);
        rel += sizeof(LogRecordHeader) + inner.payload_len;
      }
      EXPECT_EQ(rel, hdr.payload_len);
    }
    pos += sizeof(LogRecordHeader) + hdr.payload_len;
  }
  ASSERT_EQ(outer_types.size(), 3u);
  EXPECT_EQ(outer_types[0], static_cast<uint8_t>(LogRecordType::kBatchSeal));
  EXPECT_EQ(outer_types[1], static_cast<uint8_t>(LogRecordType::kUpdate));
  EXPECT_EQ(outer_types[2], static_cast<uint8_t>(LogRecordType::kBatchSeal));

  // Logical view: all 17 records, in order, bytes intact.
  const std::vector<ParsedRecord> records = ParseStream(capture.bytes);
  ASSERT_EQ(records.size(), 17u);
  for (uint32_t i = 0; i < 8; ++i) {
    EXPECT_EQ(records[i].payload, PayloadFor(1, i, 8));
  }
  EXPECT_EQ(records[8].payload, PayloadFor(1, 100, 200));
  for (uint32_t i = 8; i < 16; ++i) {
    EXPECT_EQ(records[i + 1].payload, PayloadFor(1, i, 8));
  }
}

TEST(LogBatchTest, MultiWriterBatchInterleavingThroughRealValidator) {
  // Several writers publishing whole batches (tiny records → envelopes,
  // plus occasional big records → plain segments), interleaved with a
  // per-record appender, over a small ring. The durable stream must decode
  // through the real validator with every writer's records in program
  // order AND each batch's records contiguous — one reservation, one
  // extent. TSan target (this suite runs under TSan in CI).
  StreamCapture capture;
  LogOptions o;
  o.buffer_bytes = 1 << 15;  // 32 KB: several wraps
  o.reservation_slots = 32;
  o.flush_interval_us = 10;
  capture.Install(&o);

  constexpr int kBatchWriters = 3;
  constexpr uint32_t kBatches = 120;
  constexpr uint32_t kPerBatch = 9;  // 8 tiny + 1 big
  constexpr uint32_t kSingles = 400;
  std::vector<CounterSet> counters(kBatchWriters + 1);
  {
    LogManager log(o);
    std::vector<std::thread> threads;
    for (int w = 0; w < kBatchWriters; ++w) {
      threads.emplace_back([&, w] {
        ScopedCounterSet routed(&counters[w]);
        LogStagingBuffer staging;
        for (uint32_t b = 0; b < kBatches; ++b) {
          for (uint32_t r = 0; r < kPerBatch; ++r) {
            // Batch number rides the payload so the parser can assert
            // batch extents stayed contiguous.
            const uint32_t seq = b * kPerBatch + r;
            const std::vector<uint8_t> p =
                PayloadFor(static_cast<uint32_t>(w), seq,
                           r + 1 == kPerBatch ? 120 : 12);
            staging.Stage(700 + w, LogRecordType::kUpdate, p.data(),
                          static_cast<uint32_t>(p.size()));
          }
          log.AppendBatch(&staging);
        }
      });
    }
    threads.emplace_back([&] {
      ScopedCounterSet routed(&counters[kBatchWriters]);
      for (uint32_t i = 0; i < kSingles; ++i) {
        const std::vector<uint8_t> p = PayloadFor(99, i, 20);
        log.Append(700 + kBatchWriters, LogRecordType::kUpdate, p.data(),
                   static_cast<uint32_t>(p.size()));
      }
    });
    for (auto& t : threads) t.join();
    EXPECT_EQ(log.Stats().records,
              uint64_t{kBatchWriters} * kBatches * kPerBatch + kSingles);
  }

  uint64_t batch_appends = 0, batch_records = 0;
  for (const CounterSet& c : counters) {
    batch_appends += c.Get(Counter::kLogBatchAppends);
    batch_records += c.Get(Counter::kLogBatchRecords);
  }
  EXPECT_GE(batch_appends, uint64_t{kBatchWriters} * kBatches);
  EXPECT_EQ(batch_records, uint64_t{kBatchWriters} * kBatches * kPerBatch);

  EXPECT_TRUE(capture.contiguous);
  const std::vector<ParsedRecord> records = ParseStream(capture.bytes);
  ASSERT_EQ(records.size(),
            size_t{kBatchWriters} * kBatches * kPerBatch + kSingles);
  uint32_t next_seq[kBatchWriters + 1] = {};
  for (size_t i = 0; i < records.size(); ++i) {
    const ParsedRecord& r = records[i];
    const auto w = static_cast<uint32_t>(r.txn_id - 700);
    ASSERT_LE(w, static_cast<uint32_t>(kBatchWriters));
    const uint32_t seq = next_seq[w]++;
    if (w == kBatchWriters) {
      ASSERT_EQ(r.payload, PayloadFor(99, seq, 20));
      continue;
    }
    const uint32_t in_batch = seq % kPerBatch;
    ASSERT_EQ(r.payload,
              PayloadFor(w, seq, in_batch + 1 == kPerBatch ? 120 : 12))
        << "writer " << w << " record " << seq;
    // Batch atomicity: records of one batch are adjacent in the stream.
    if (in_batch > 0) {
      ASSERT_GT(i, 0u);
      EXPECT_EQ(records[i - 1].txn_id, r.txn_id)
          << "batch of writer " << w << " torn apart at record " << seq;
    }
  }
  for (int w = 0; w < kBatchWriters; ++w) {
    EXPECT_EQ(next_seq[w], kBatches * kPerBatch);
  }
  EXPECT_EQ(next_seq[kBatchWriters], kSingles);
}

TEST(LogBatchTest, LatchedModeBatchParity) {
  // AppendBatch must produce byte-identical semantics on the legacy
  // latched path (one latch acquisition per batch).
  StreamCapture capture;
  LogOptions o;
  o.buffer_bytes = 1 << 14;
  o.append_mode = LogOptions::AppendMode::kLatched;
  o.flush_interval_us = 20;
  capture.Install(&o);

  constexpr uint32_t kBatches = 50;
  {
    LogManager log(o);
    LogStagingBuffer staging;
    Lsn last = 0;
    for (uint32_t b = 0; b < kBatches; ++b) {
      for (uint32_t r = 0; r < 6; ++r) {
        const std::vector<uint8_t> p = PayloadFor(5, b * 6 + r, 10 + r);
        staging.Stage(800, LogRecordType::kUpdate, p.data(),
                      static_cast<uint32_t>(p.size()));
      }
      last = log.AppendBatch(&staging);
    }
    log.WaitDurable(last);
    EXPECT_EQ(log.Stats().records, uint64_t{kBatches} * 6);
  }

  EXPECT_TRUE(capture.contiguous);
  const std::vector<ParsedRecord> records = ParseStream(capture.bytes);
  ASSERT_EQ(records.size(), size_t{kBatches} * 6);
  for (uint32_t i = 0; i < kBatches * 6; ++i) {
    EXPECT_EQ(records[i].payload, PayloadFor(5, i, 10 + (i % 6)));
  }
}

TEST(LogBatchTest, OversizedBatchSplitsAcrossReservations) {
  // A staged batch larger than half the ring must split into several
  // reservations (at segment granularity) and still publish every record
  // in order — the chunking path that prevents a self-deadlocking
  // larger-than-ring reservation.
  StreamCapture capture;
  LogOptions o;
  o.buffer_bytes = 1 << 12;  // 4 KB ring
  o.flush_interval_us = 10;
  capture.Install(&o);

  constexpr uint32_t kRecords = 64;  // 64 × ~532 B  >>  ring
  CounterSet counters;
  {
    ScopedCounterSet routed(&counters);
    LogManager log(o);
    LogStagingBuffer staging;
    for (uint32_t i = 0; i < kRecords; ++i) {
      const std::vector<uint8_t> p = PayloadFor(3, i, 500);
      staging.Stage(900, LogRecordType::kUpdate, p.data(),
                    static_cast<uint32_t>(p.size()));
    }
    const Lsn end = log.AppendBatch(&staging);
    log.WaitDurable(end);
  }
  EXPECT_GT(counters.Get(Counter::kLogBatchAppends), 1u);
  EXPECT_EQ(counters.Get(Counter::kLogBatchRecords), uint64_t{kRecords});

  EXPECT_TRUE(capture.contiguous);
  const std::vector<ParsedRecord> records = ParseStream(capture.bytes);
  ASSERT_EQ(records.size(), size_t{kRecords});
  for (uint32_t i = 0; i < kRecords; ++i) {
    EXPECT_EQ(records[i].payload, PayloadFor(3, i, 500));
  }
}

// Mixed appenders and committers over a small ring with few slots — the
// whole pipeline under maximum interleaving. This is the TSan stress
// target: the reservation fetch-add, slot publish/consume pairs, ring
// byte hand-off, and consolidated wakeups all race here.
TEST(LogPipelineTest, StressMixedAppendAndCommit) {
  StreamCapture capture;
  LogOptions o;
  o.buffer_bytes = 1 << 13;  // 8 KB
  o.reservation_slots = 16;
  o.flush_interval_us = 10;
  capture.Install(&o);

  constexpr int kThreads = 4;
  constexpr uint32_t kOpsEach = 1500;
  {
    LogManager log(o);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (uint32_t i = 0; i < kOpsEach; ++i) {
          if (i % 8 == 7) {
            const Lsn lsn =
                log.Append(500 + t, LogRecordType::kCommit, nullptr, 0);
            log.WaitDurable(lsn);
            EXPECT_GE(log.durable_lsn(), lsn);
          } else {
            const std::vector<uint8_t> p =
                PayloadFor(static_cast<uint32_t>(t), i, 8 + (i % 64));
            log.Append(500 + t, LogRecordType::kUpdate, p.data(),
                       static_cast<uint32_t>(p.size()));
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(log.Stats().records, uint64_t{kThreads} * kOpsEach);
  }

  EXPECT_TRUE(capture.contiguous);
  const std::vector<ParsedRecord> records = ParseStream(capture.bytes);
  ASSERT_EQ(records.size(), size_t{kThreads} * kOpsEach);
  uint32_t next_op[kThreads] = {};
  for (const ParsedRecord& r : records) {
    const auto t = static_cast<uint32_t>(r.txn_id - 500);
    ASSERT_LT(t, static_cast<uint32_t>(kThreads));
    const uint32_t i = next_op[t]++;
    if (i % 8 == 7) {
      EXPECT_EQ(r.type, static_cast<uint8_t>(LogRecordType::kCommit));
      EXPECT_TRUE(r.payload.empty());
    } else {
      ASSERT_EQ(r.payload, PayloadFor(t, i, 8 + (i % 64)));
    }
  }
}

}  // namespace
}  // namespace slidb
