// Unit tests for the utility substrate: Status, latches, RNG, histogram.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "src/util/histogram.h"
#include "src/util/latch.h"
#include "src/util/rng.h"
#include "src/util/status.h"
#include "src/util/time_util.h"

namespace slidb {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, CodesRoundTrip) {
  EXPECT_TRUE(Status::NotFound().IsNotFound());
  EXPECT_TRUE(Status::KeyExists().IsKeyExists());
  EXPECT_TRUE(Status::Deadlock().IsDeadlock());
  EXPECT_TRUE(Status::Aborted().IsAborted());
  EXPECT_TRUE(Status::TimedOut().IsTimedOut());
  EXPECT_TRUE(Status::Busy().IsBusy());
  EXPECT_TRUE(Status::InvalidArgument().IsInvalidArgument());
  EXPECT_TRUE(Status::Corruption().IsCorruption());
  EXPECT_TRUE(Status::NotSupported().IsNotSupported());
  EXPECT_TRUE(Status::IoError().IsIoError());
  EXPECT_TRUE(Status::Overloaded().IsOverloaded());
}

TEST(StatusTest, ForcesAbortSemantics) {
  EXPECT_TRUE(Status::Deadlock().ForcesAbort());
  EXPECT_TRUE(Status::Aborted().ForcesAbort());
  EXPECT_TRUE(Status::TimedOut().ForcesAbort());
  EXPECT_TRUE(Status::Overloaded().ForcesAbort());
  EXPECT_FALSE(Status::NotFound().ForcesAbort());
  EXPECT_FALSE(Status::OK().ForcesAbort());
}

TEST(StatusTest, RetryableClassification) {
  // The driver's retry loop keys off this: deadlock victims, lock/deadline
  // timeouts, and admission sheds are worth re-running; everything else
  // (including benchmark-specified Aborted) is final.
  EXPECT_TRUE(Status::Deadlock().retryable());
  EXPECT_TRUE(Status::TimedOut().retryable());
  EXPECT_TRUE(Status::Overloaded().retryable());
  EXPECT_FALSE(Status::Aborted().retryable());
  EXPECT_FALSE(Status::NotFound().retryable());
  EXPECT_FALSE(Status::IoError().retryable());
  EXPECT_FALSE(Status::OK().retryable());
}

TEST(StatusTest, MessagePropagates) {
  Status s = Status::Corruption("page 17 checksum");
  EXPECT_EQ(s.ToString(), "Corruption: page 17 checksum");
  EXPECT_EQ(s.message(), "page 17 checksum");
}

TEST(StatusTest, ReturnNotOkMacro) {
  auto fails = []() -> Status { return Status::NotFound("x"); };
  auto wrapper = [&]() -> Status {
    SLIDB_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_TRUE(wrapper().IsNotFound());
}

TEST(SpinLatchTest, UncontendedAcquireReportsNoContention) {
  SpinLatch latch;
  EXPECT_FALSE(latch.Acquire());
  EXPECT_TRUE(latch.IsHeld());
  latch.Release();
  EXPECT_FALSE(latch.IsHeld());
}

TEST(SpinLatchTest, TryAcquireFailsWhenHeld) {
  SpinLatch latch;
  ASSERT_TRUE(latch.TryAcquire());
  EXPECT_FALSE(latch.TryAcquire());
  latch.Release();
  EXPECT_TRUE(latch.TryAcquire());
  latch.Release();
}

TEST(SpinLatchTest, MutualExclusionUnderContention) {
  SpinLatch latch;
  int64_t counter = 0;
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        latch.Acquire();
        ++counter;
        latch.Release();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, static_cast<int64_t>(kThreads) * kIters);
}

TEST(RwLatchTest, ManyReadersOneWriter) {
  RwLatch latch;
  EXPECT_FALSE(latch.AcquireShared());
  EXPECT_FALSE(latch.TryAcquireExclusive());
  EXPECT_TRUE(latch.TryAcquireShared());
  latch.ReleaseShared();
  latch.ReleaseShared();
  EXPECT_TRUE(latch.TryAcquireExclusive());
  EXPECT_FALSE(latch.TryAcquireShared());
  latch.ReleaseExclusive();
}

TEST(RwLatchTest, UpgradeOnlyWhenSoleReader) {
  RwLatch latch;
  latch.AcquireShared();
  EXPECT_TRUE(latch.TryUpgrade());
  latch.ReleaseExclusive();

  latch.AcquireShared();
  latch.AcquireShared();
  EXPECT_FALSE(latch.TryUpgrade());
  latch.ReleaseShared();
  latch.ReleaseShared();
}

TEST(RwLatchTest, WriterExcludesWritersUnderContention) {
  RwLatch latch;
  int64_t counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIters = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        latch.AcquireExclusive();
        ++counter;
        latch.ReleaseExclusive();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, static_cast<int64_t>(kThreads) * kIters);
}

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t v = rng.Uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(9);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += rng.Bernoulli(0.25) ? 1 : 0;
  const double p = static_cast<double>(hits) / kN;
  EXPECT_NEAR(p, 0.25, 0.01);
}

TEST(RngTest, NuRandWithinBounds) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t v = rng.NuRand(255, 1, 3000);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 3000u);
  }
}

TEST(RngTest, StringsRespectLengthBounds) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    const std::string a = rng.AlphaString(3, 9);
    EXPECT_GE(a.size(), 3u);
    EXPECT_LE(a.size(), 9u);
    const std::string d = rng.DigitString(15, 15);
    EXPECT_EQ(d.size(), 15u);
    for (char ch : d) EXPECT_TRUE(ch >= '0' && ch <= '9');
  }
}

TEST(ZipfTest, SkewsTowardSmallValues) {
  Rng rng(17);
  ZipfGenerator zipf(1000, 0.99);
  int low = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const uint64_t v = zipf.Next(rng);
    ASSERT_GE(v, 1u);
    ASSERT_LE(v, 1000u);
    if (v <= 10) ++low;
  }
  // With theta=0.99 the top-10 of 1000 should draw far more than 1% of mass.
  EXPECT_GT(low, kN / 10);
}

TEST(ZipfTest, ThetaOneIsValid) {
  // theta == 1.0 is the harmonic case where the quantile formula's
  // alpha = 1/(1-theta) is singular; the generator clamps theta by a small
  // epsilon and must keep producing in-range, properly skewed draws.
  Rng rng(19);
  ZipfGenerator zipf(1000, 1.0);
  EXPECT_NEAR(zipf.theta(), 1.0, 1e-3);
  int low = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const uint64_t v = zipf.Next(rng);
    ASSERT_GE(v, 1u);
    ASSERT_LE(v, 1000u);
    if (v <= 10) ++low;
  }
  EXPECT_GT(low, kN / 10);
}

TEST(ZipfTest, MassConcentrationGrowsWithTheta) {
  // The contention bench's sweep axis: higher theta must put strictly more
  // mass on the top ranks (theta=0 degenerates to uniform).
  constexpr double kThetas[] = {0.0, 0.6, 0.9, 0.99, 1.2};
  constexpr int kN = 40000;
  double prev = -1.0;
  for (double theta : kThetas) {
    Rng rng(23);
    ZipfGenerator zipf(1000, theta);
    int top = 0;
    for (int i = 0; i < kN; ++i) {
      if (zipf.Next(rng) <= 10) ++top;
    }
    const double frac = static_cast<double>(top) / kN;
    EXPECT_GT(frac, prev) << "theta=" << theta;
    prev = frac;
  }
}

TEST(ScrambledZipfTest, ScrambleIsBijection) {
  // Scramble must be a permutation of [1, n] — every key hit by exactly one
  // rank — including domains far from a power of two (cycle walking) and
  // the degenerate n=1.
  for (const uint64_t n : {uint64_t{1}, uint64_t{2}, uint64_t{5}, uint64_t{64},
                           uint64_t{1000}, uint64_t{65539}}) {
    ScrambledZipfGenerator gen(n, 0.99);
    std::vector<uint64_t> keys;
    keys.reserve(n);
    for (uint64_t rank = 1; rank <= n; ++rank) {
      const uint64_t key = gen.Scramble(rank);
      ASSERT_GE(key, 1u) << "n=" << n << " rank=" << rank;
      ASSERT_LE(key, n) << "n=" << n << " rank=" << rank;
      keys.push_back(key);
    }
    std::sort(keys.begin(), keys.end());
    ASSERT_EQ(std::adjacent_find(keys.begin(), keys.end()), keys.end())
        << "duplicate key for n=" << n;
  }
}

TEST(ScrambledZipfTest, NextDrawsWithinRangeAndFavorsHotKey) {
  Rng rng(29);
  ScrambledZipfGenerator gen(1000, 1.2);
  const uint64_t hot = gen.Scramble(1);
  int hot_hits = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const uint64_t v = gen.Next(rng);
    ASSERT_GE(v, 1u);
    ASSERT_LE(v, 1000u);
    if (v == hot) ++hot_hits;
  }
  // Rank 1 under theta=1.2 carries far more than the uniform 1/1000.
  EXPECT_GT(hot_hits, kN / 50);
}

TEST(ScrambledZipfTest, HotRanksScatterAcrossKeySpace) {
  // The point of scrambling: the popular ranks must not map to adjacent
  // ids co-located on a single 64-entry B+-tree leaf, which would conflate
  // page/latch contention with the lock contention the scenarios target.
  ScrambledZipfGenerator gen(100'000, 0.99);
  uint64_t lo = UINT64_MAX, hi = 0;
  for (uint64_t rank = 1; rank <= 8; ++rank) {
    const uint64_t key = gen.Scramble(rank);
    lo = std::min(lo, key);
    hi = std::max(hi, key);
  }
  EXPECT_GT(hi - lo, 64u);
}

TEST(ScrambledZipfTest, SaltChangesThePermutation) {
  ScrambledZipfGenerator a(4096, 0.99, /*salt=*/1);
  ScrambledZipfGenerator b(4096, 0.99, /*salt=*/2);
  int differs = 0;
  for (uint64_t rank = 1; rank <= 4096; ++rank) {
    if (a.Scramble(rank) != b.Scramble(rank)) ++differs;
  }
  EXPECT_GT(differs, 2048);
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (uint64_t v = 1; v <= 100; ++v) h.Add(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.Mean(), 50.5);
}

TEST(HistogramTest, MergeAddsCounts) {
  Histogram a, b;
  a.Add(10);
  b.Add(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 1000u);
}

TEST(HistogramTest, PercentileMonotone) {
  Histogram h;
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) h.Add(rng.Uniform(1, 1 << 20));
  EXPECT_LE(h.Percentile(0.5), h.Percentile(0.95));
  EXPECT_LE(h.Percentile(0.95), h.Percentile(0.999));
}

TEST(TimeTest, CyclesAdvance) {
  const uint64_t a = RdCycles();
  SpinForNanos(100000);
  const uint64_t b = RdCycles();
  EXPECT_GT(b, a);
}

TEST(TimeTest, CalibrationSane) {
  const double r = CyclesPerNano();
  EXPECT_GT(r, 0.01);
  EXPECT_LT(r, 100.0);
}

}  // namespace
}  // namespace slidb
