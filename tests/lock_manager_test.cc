// Lock manager semantics: grants, conflicts, upgrades, FIFO fairness,
// hierarchy handling, deadlock detection, and multi-threaded invariants.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "src/lock/lock_manager.h"
#include "src/stats/counters.h"

namespace slidb {
namespace {

LockManagerOptions FastOptions() {
  LockManagerOptions o;
  o.enable_deadlock_detector = true;
  o.deadlock_interval_us = 200;
  o.lock_timeout_us = 2'000'000;
  return o;
}

/// Deterministic replacement for "sleep and hope the waiter enqueued":
/// poll the client's waiting_on pointer, which is set exactly while it is
/// blocked inside a lock wait. Bounded so a broken wake path still fails
/// the test instead of hanging it (ROADMAP test-hygiene item: timing
/// windows on loaded single-CPU hosts are not a synchronization primitive).
void WaitUntilBlocked(LockClient& c) {
  for (int i = 0; i < 20'000; ++i) {
    if (c.waiting_on().load(std::memory_order_acquire) != nullptr) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  FAIL() << "client never entered a lock wait";
}

class LockManagerTest : public ::testing::Test {
 protected:
  LockManagerTest() : lm_(FastOptions()) {}

  LockManager lm_;
};

TEST_F(LockManagerTest, GrantAndReleaseSingleLock) {
  LockClient c;
  c.StartTxn(1, 0);
  ASSERT_TRUE(lm_.Lock(&c, LockId::Table(0, 1), LockMode::kS).ok());
  EXPECT_GT(lm_.table().CountHeads(), 0u);
  lm_.ReleaseAll(&c, nullptr, false);
  // High-level heads persist (hot-lock history) but their queues are empty.
  lm_.table().ForEachHead([](LockHead* h) { EXPECT_TRUE(h->QueueEmpty()); });
}

TEST_F(LockManagerTest, AcquiringRowTakesIntentionAncestors) {
  LockClient c;
  c.StartTxn(1, 0);
  ASSERT_TRUE(lm_.Lock(&c, LockId::Row(0, 1, 7, 3), LockMode::kX).ok());
  // Database, table, page intention locks + the row lock itself.
  EXPECT_NE(c.cache().Find(LockId::Database(0)), nullptr);
  EXPECT_NE(c.cache().Find(LockId::Table(0, 1)), nullptr);
  EXPECT_NE(c.cache().Find(LockId::Page(0, 1, 7)), nullptr);
  EXPECT_NE(c.cache().Find(LockId::Row(0, 1, 7, 3)), nullptr);
  EXPECT_EQ(c.cache().Find(LockId::Table(0, 1))->mode, LockMode::kIX);
  lm_.ReleaseAll(&c, nullptr, false);
}

TEST_F(LockManagerTest, RepeatAcquireHitsCache) {
  LockClient c;
  c.StartTxn(1, 0);
  CounterSet counters;
  {
    ScopedCounterSet routed(&counters);
    ASSERT_TRUE(lm_.Lock(&c, LockId::Table(0, 1), LockMode::kS).ok());
    ASSERT_TRUE(lm_.Lock(&c, LockId::Table(0, 1), LockMode::kS).ok());
    ASSERT_TRUE(lm_.Lock(&c, LockId::Table(0, 1), LockMode::kIS).ok());
  }
  EXPECT_EQ(counters.Get(Counter::kLockRequests), 2u);  // db + table
  EXPECT_GE(counters.Get(Counter::kLockCacheHits), 2u);
  lm_.ReleaseAll(&c, nullptr, false);
}

TEST_F(LockManagerTest, CompatibleSharersProceedTogether) {
  LockClient c1, c2;
  c1.StartTxn(1, 0);
  c2.StartTxn(2, 1);
  ASSERT_TRUE(lm_.Lock(&c1, LockId::Table(0, 1), LockMode::kS).ok());
  ASSERT_TRUE(lm_.Lock(&c2, LockId::Table(0, 1), LockMode::kS).ok());
  lm_.ReleaseAll(&c1, nullptr, false);
  lm_.ReleaseAll(&c2, nullptr, false);
}

TEST_F(LockManagerTest, ConflictBlocksUntilRelease) {
  LockClient c1, c2;
  c1.StartTxn(1, 0);
  c2.StartTxn(2, 1);
  ASSERT_TRUE(lm_.Lock(&c1, LockId::Table(0, 1), LockMode::kX).ok());

  std::atomic<bool> got{false};
  std::thread waiter([&] {
    EXPECT_TRUE(lm_.Lock(&c2, LockId::Table(0, 1), LockMode::kS).ok());
    got.store(true);
    lm_.ReleaseAll(&c2, nullptr, false);
  });

  WaitUntilBlocked(c2);
  EXPECT_FALSE(got.load());
  lm_.ReleaseAll(&c1, nullptr, false);
  waiter.join();
  EXPECT_TRUE(got.load());
}

TEST_F(LockManagerTest, WaiterBehindDeepGrantedPrefixIsWoken) {
  // A deep granted prefix (many IS holders) with an X waiter behind it:
  // the waiter-boundary hint means releases scan from the waiter, not the
  // prefix, and the waiter must still be granted exactly when the last
  // holder leaves.
  constexpr int kHolders = 32;
  std::vector<std::unique_ptr<LockClient>> holders;
  for (int i = 0; i < kHolders; ++i) {
    holders.push_back(std::make_unique<LockClient>());
    holders.back()->StartTxn(1 + i, i);
    ASSERT_TRUE(
        lm_.Lock(holders.back().get(), LockId::Table(0, 5), LockMode::kIS)
            .ok());
  }

  LockClient writer;
  writer.StartTxn(1000, 99);
  std::atomic<bool> got{false};
  std::thread waiter([&] {
    EXPECT_TRUE(lm_.Lock(&writer, LockId::Table(0, 5), LockMode::kX).ok());
    got.store(true);
    lm_.ReleaseAll(&writer, nullptr, false);
  });

  // FIFO: a later IS request must queue behind the X waiter, not sneak in.
  // The X waiter must provably be IN the queue before the IS request
  // starts, or the ordering under test is not established.
  WaitUntilBlocked(writer);
  LockClient late;
  late.StartTxn(2000, 98);
  std::atomic<bool> late_got{false};
  std::thread late_waiter([&] {
    EXPECT_TRUE(lm_.Lock(&late, LockId::Table(0, 5), LockMode::kIS).ok());
    late_got.store(true);
    lm_.ReleaseAll(&late, nullptr, false);
  });

  WaitUntilBlocked(late);
  EXPECT_FALSE(got.load());
  EXPECT_FALSE(late_got.load());
  for (auto& h : holders) lm_.ReleaseAll(h.get(), nullptr, false);
  waiter.join();
  late_waiter.join();
  EXPECT_TRUE(got.load());
  EXPECT_TRUE(late_got.load());
}

TEST_F(LockManagerTest, UpgradeSToXWhenAlone) {
  LockClient c;
  c.StartTxn(1, 0);
  ASSERT_TRUE(lm_.Lock(&c, LockId::Table(0, 1), LockMode::kS).ok());
  ASSERT_TRUE(lm_.Lock(&c, LockId::Table(0, 1), LockMode::kX).ok());
  LockRequest* r = c.cache().Find(LockId::Table(0, 1));
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->mode, LockMode::kX);
  lm_.ReleaseAll(&c, nullptr, false);
}

TEST_F(LockManagerTest, UpgradeWaitsForConcurrentReader) {
  LockClient c1, c2;
  c1.StartTxn(1, 0);
  c2.StartTxn(2, 1);
  ASSERT_TRUE(lm_.Lock(&c1, LockId::Table(0, 1), LockMode::kS).ok());
  ASSERT_TRUE(lm_.Lock(&c2, LockId::Table(0, 1), LockMode::kS).ok());

  std::atomic<bool> upgraded{false};
  std::thread upgrader([&] {
    EXPECT_TRUE(lm_.Lock(&c1, LockId::Table(0, 1), LockMode::kX).ok());
    upgraded.store(true);
  });
  WaitUntilBlocked(c1);
  EXPECT_FALSE(upgraded.load());
  lm_.ReleaseAll(&c2, nullptr, false);
  upgrader.join();
  EXPECT_TRUE(upgraded.load());
  lm_.ReleaseAll(&c1, nullptr, false);
}

TEST_F(LockManagerTest, IntentSharersDoNotConflict) {
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<std::unique_ptr<LockClient>> clients;
  for (int i = 0; i < kThreads; ++i) {
    clients.push_back(std::make_unique<LockClient>());
  }
  std::atomic<int> successes{0};
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      LockClient* c = clients[i].get();
      for (int iter = 0; iter < 200; ++iter) {
        c->StartTxn(static_cast<uint64_t>(i) * 1000 + iter, i);
        ASSERT_TRUE(
            lm_.Lock(c, LockId::Row(0, 1, 1, static_cast<uint32_t>(i)),
                     LockMode::kS)
                .ok());
        successes.fetch_add(1);
        lm_.ReleaseAll(c, nullptr, false);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(successes.load(), kThreads * 200);
  lm_.table().ForEachHead([](LockHead* h) { EXPECT_TRUE(h->QueueEmpty()); });
}

TEST_F(LockManagerTest, ExclusiveCounterNoLostUpdates) {
  // The canonical mutual-exclusion check: X row locks serialize increments.
  constexpr int kThreads = 4;
  constexpr int kIters = 300;
  int64_t shared_value = 0;
  std::vector<std::unique_ptr<LockClient>> clients;
  for (int i = 0; i < kThreads; ++i) {
    clients.push_back(std::make_unique<LockClient>());
  }
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      LockClient* c = clients[i].get();
      for (int iter = 0; iter < kIters; ++iter) {
        c->StartTxn(static_cast<uint64_t>(i) * 100000 + iter + 1, i);
        Status st = lm_.Lock(c, LockId::Row(0, 1, 1, 1), LockMode::kX);
        ASSERT_TRUE(st.ok()) << st.ToString();
        ++shared_value;
        lm_.ReleaseAll(c, nullptr, false);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(shared_value, static_cast<int64_t>(kThreads) * kIters);
}

TEST_F(LockManagerTest, DeadlockDetectedAndVictimChosen) {
  LockClient c1, c2;
  c1.StartTxn(1, 0);
  c2.StartTxn(2, 1);
  ASSERT_TRUE(lm_.Lock(&c1, LockId::Row(0, 1, 1, 1), LockMode::kX).ok());
  ASSERT_TRUE(lm_.Lock(&c2, LockId::Row(0, 1, 1, 2), LockMode::kX).ok());

  std::atomic<int> deadlocks{0};
  std::thread t1([&] {
    const Status st = lm_.Lock(&c1, LockId::Row(0, 1, 1, 2), LockMode::kX);
    if (st.IsDeadlock()) deadlocks.fetch_add(1);
    lm_.ReleaseAll(&c1, nullptr, false);
  });
  std::thread t2([&] {
    const Status st = lm_.Lock(&c2, LockId::Row(0, 1, 1, 1), LockMode::kX);
    if (st.IsDeadlock()) deadlocks.fetch_add(1);
    lm_.ReleaseAll(&c2, nullptr, false);
  });
  t1.join();
  t2.join();
  // Exactly one of the two should have been victimized.
  EXPECT_EQ(deadlocks.load(), 1);
  lm_.table().ForEachHead([](LockHead* h) { EXPECT_TRUE(h->QueueEmpty()); });
}

TEST_F(LockManagerTest, UpgradeDeadlockDetected) {
  // Two IS holders both upgrading to IX on the same lock cannot deadlock
  // (IX compatible with IS) — but two S holders upgrading to X do.
  LockClient c1, c2;
  c1.StartTxn(1, 0);
  c2.StartTxn(2, 1);
  ASSERT_TRUE(lm_.Lock(&c1, LockId::Table(0, 5), LockMode::kS).ok());
  ASSERT_TRUE(lm_.Lock(&c2, LockId::Table(0, 5), LockMode::kS).ok());

  std::atomic<int> deadlocks{0};
  std::thread t1([&] {
    const Status st = lm_.Lock(&c1, LockId::Table(0, 5), LockMode::kX);
    if (st.IsDeadlock()) deadlocks.fetch_add(1);
    lm_.ReleaseAll(&c1, nullptr, false);
  });
  std::thread t2([&] {
    const Status st = lm_.Lock(&c2, LockId::Table(0, 5), LockMode::kX);
    if (st.IsDeadlock()) deadlocks.fetch_add(1);
    lm_.ReleaseAll(&c2, nullptr, false);
  });
  t1.join();
  t2.join();
  EXPECT_EQ(deadlocks.load(), 1);
}

TEST_F(LockManagerTest, FifoPreventsWriterStarvation) {
  // Reader holds S; writer queues for X; a later reader must queue behind
  // the writer rather than overtaking it.
  LockClient reader1, writer, reader2;
  reader1.StartTxn(1, 0);
  writer.StartTxn(2, 1);
  reader2.StartTxn(3, 2);
  ASSERT_TRUE(lm_.Lock(&reader1, LockId::Table(0, 1), LockMode::kS).ok());

  std::atomic<bool> writer_done{false};
  std::atomic<bool> reader2_done{false};
  std::thread tw([&] {
    EXPECT_TRUE(lm_.Lock(&writer, LockId::Table(0, 1), LockMode::kX).ok());
    writer_done.store(true);
    lm_.ReleaseAll(&writer, nullptr, false);
  });
  // The writer must provably be queued before the reader arrives, or the
  // FIFO ordering under test is not established.
  WaitUntilBlocked(writer);
  std::thread tr([&] {
    EXPECT_TRUE(lm_.Lock(&reader2, LockId::Table(0, 1), LockMode::kS).ok());
    // FIFO: by the time we get S, the writer must have been served.
    EXPECT_TRUE(writer_done.load());
    reader2_done.store(true);
    lm_.ReleaseAll(&reader2, nullptr, false);
  });
  WaitUntilBlocked(reader2);
  EXPECT_FALSE(writer_done.load());
  EXPECT_FALSE(reader2_done.load());
  lm_.ReleaseAll(&reader1, nullptr, false);
  tw.join();
  tr.join();
  EXPECT_TRUE(reader2_done.load());
}

TEST_F(LockManagerTest, TimeoutReturnsTimedOut) {
  LockManagerOptions o = FastOptions();
  o.lock_timeout_us = 50'000;  // 50 ms
  o.enable_deadlock_detector = false;
  LockManager lm(o);

  LockClient c1, c2;
  c1.StartTxn(1, 0);
  c2.StartTxn(2, 1);
  ASSERT_TRUE(lm.Lock(&c1, LockId::Table(0, 1), LockMode::kX).ok());
  const Status st = lm.Lock(&c2, LockId::Table(0, 1), LockMode::kX);
  EXPECT_TRUE(st.IsTimedOut()) << st.ToString();
  lm.ReleaseAll(&c1, nullptr, false);
  lm.ReleaseAll(&c2, nullptr, false);
}

TEST_F(LockManagerTest, ParentCoverageSkipsChildLocks) {
  LockClient c;
  c.StartTxn(1, 0);
  CounterSet counters;
  {
    ScopedCounterSet routed(&counters);
    ASSERT_TRUE(lm_.Lock(&c, LockId::Table(0, 1), LockMode::kS).ok());
    // Rows under a table-S are implicitly share-locked: no new requests.
    ASSERT_TRUE(lm_.Lock(&c, LockId::Row(0, 1, 3, 9), LockMode::kS).ok());
  }
  EXPECT_EQ(c.cache().Find(LockId::Row(0, 1, 3, 9)), nullptr);
  lm_.ReleaseAll(&c, nullptr, false);
}

TEST_F(LockManagerTest, HotTrackerMarksContendedHeads) {
  // Hammer one table lock from many threads; its head must become hot.
  // Simulated queue work stretches the latched window so holders get
  // preempted mid-hold even on a single-CPU host — without it the critical
  // section is a few nanoseconds and contention can organically be zero.
  //
  // Even so, contention is a scheduling artifact: on a single-CPU host two
  // threads are never *simultaneously* in the latched window, and a run
  // where every preemption lands outside it legitimately observes zero.
  // The assertion is only meaningful with real parallelism (ROADMAP test
  // hygiene note), so gate it instead of being flaky by design.
  if (std::thread::hardware_concurrency() < 2) {
    GTEST_SKIP() << "needs >= 2 hardware threads for latch contention to be "
                    "deterministic";
  }
  LockManagerOptions o = FastOptions();
  o.sim_queue_work_ns = 2'000;
  LockManager lm(o);
  constexpr int kThreads = 8;
  // Even with parallelism, one hammer round can legitimately observe zero
  // contention when the scheduler (or a sanitizer runtime, or a saturated
  // host) serializes the latched windows. Contention is a statistic, so
  // treat it like one: hammer in bounded rounds until some is observed —
  // on real parallel hardware the first round all but always suffices.
  constexpr int kMaxRounds = 5;
  uint64_t acquires = 0;
  uint64_t contended = 0;
  for (int round = 0; round < kMaxRounds && contended == 0; ++round) {
    std::vector<std::unique_ptr<LockClient>> clients;
    for (int i = 0; i < kThreads; ++i)
      clients.push_back(std::make_unique<LockClient>());
    std::vector<std::thread> threads;
    for (int i = 0; i < kThreads; ++i) {
      threads.emplace_back([&, round, i] {
        LockClient* c = clients[i].get();
        for (int iter = 0; iter < 500; ++iter) {
          c->StartTxn(static_cast<uint64_t>(round) * 100000 +
                          static_cast<uint64_t>(i) * 10000 + iter + 1,
                      i);
          ASSERT_TRUE(lm.Lock(c, LockId::Table(0, 42), LockMode::kIS).ok());
          lm.ReleaseAll(c, nullptr, false);
        }
      });
    }
    for (auto& t : threads) t.join();

    // Re-acquire once and inspect the head's tracker.
    LockClient c;
    c.StartTxn(999999u + static_cast<uint64_t>(round), 0);
    ASSERT_TRUE(lm.Lock(&c, LockId::Table(0, 42), LockMode::kIS).ok());
    LockRequest* r = c.cache().Find(LockId::Table(0, 42));
    ASSERT_NE(r, nullptr);
    acquires = r->head->hot.total_acquires();
    contended = r->head->hot.total_contended();
    lm.ReleaseAll(&c, nullptr, false);
  }
  // The head persisted across every hammer transaction…
  EXPECT_GE(acquires, 8u * 500u);
  // …and with 8 hammering threads, contention across kMaxRounds rounds is
  // certain on genuinely parallel hardware.
  EXPECT_GT(contended, 0u);
}

TEST_F(LockManagerTest, ReleaseAllOnEmptyClientIsNoOp) {
  LockClient c;
  c.StartTxn(1, 0);
  lm_.ReleaseAll(&c, nullptr, false);
  lm_.ReleaseAll(&c, nullptr, true);
}

TEST_F(LockManagerTest, ManyDistinctLocksStressHashTable) {
  LockClient c;
  c.StartTxn(1, 0);
  for (uint32_t t = 1; t <= 50; ++t) {
    for (uint64_t p = 0; p < 20; ++p) {
      ASSERT_TRUE(lm_.Lock(&c, LockId::Page(0, t, p), LockMode::kIS).ok());
    }
  }
  EXPECT_GE(lm_.table().CountHeads(), 1000u);
  lm_.ReleaseAll(&c, nullptr, false);
  lm_.table().ForEachHead([](LockHead* h) { EXPECT_TRUE(h->QueueEmpty()); });
}

TEST_F(LockManagerTest, RowHeadsReclaimedHighLevelHeadsRetained) {
  LockClient c;
  c.StartTxn(1, 0);
  ASSERT_TRUE(lm_.Lock(&c, LockId::Row(0, 1, 5, 9), LockMode::kX).ok());
  const size_t with_row = lm_.table().CountHeads();
  EXPECT_EQ(with_row, 4u);  // db + table + page + row
  lm_.ReleaseAll(&c, nullptr, false);
  // Row head goes away; db/table/page heads persist for hot tracking.
  EXPECT_EQ(lm_.table().CountHeads(), 3u);
  // A fresh acquisition reuses the persistent heads.
  c.StartTxn(2, 0);
  ASSERT_TRUE(lm_.Lock(&c, LockId::Row(0, 1, 5, 9), LockMode::kS).ok());
  EXPECT_EQ(lm_.table().CountHeads(), 4u);
  lm_.ReleaseAll(&c, nullptr, false);
}

}  // namespace
}  // namespace slidb
