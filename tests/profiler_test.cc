// Tests for the work/contention profiler that reproduces the paper's
// time-breakdown methodology (Figs 1, 5, 6, 10).
#include <gtest/gtest.h>

#include <thread>

#include "src/stats/counters.h"
#include "src/stats/profiler.h"
#include "src/util/latch.h"
#include "src/util/time_util.h"

namespace slidb {
namespace {

TEST(ProfilerTest, NoProfileByDefault) {
  EXPECT_EQ(ThreadProfile::Current(), nullptr);
}

TEST(ProfilerTest, ScopedInstallAndRestore) {
  ThreadProfile profile;
  {
    ScopedThreadProfile installed(&profile);
    EXPECT_EQ(ThreadProfile::Current(), &profile);
  }
  EXPECT_EQ(ThreadProfile::Current(), nullptr);
}

TEST(ProfilerTest, WorkAttributedToActiveComponent) {
  ThreadProfile profile;
  {
    ScopedThreadProfile installed(&profile);
    {
      ScopedComponent comp(Component::kLockManager);
      SpinForNanos(2'000'000);
    }
  }
  const ProfileSnapshot snap = profile.Snapshot();
  const auto lm = static_cast<size_t>(Component::kLockManager);
  EXPECT_GT(snap.work[lm], 0u);
  // The lock manager should dominate: we did ~2ms there and ~nothing else.
  EXPECT_GT(snap.WorkFraction(Component::kLockManager), 0.5);
}

TEST(ProfilerTest, NestedScopesShadow) {
  // The spins measure wall time, so an OS preemption inside the inner
  // scope inflates kLog past the 2:1 margin. Retry the whole body per
  // the ROADMAP test-hygiene note: preemption is transient, a genuine
  // shadowing bug fails every attempt.
  const auto lm = static_cast<size_t>(Component::kLockManager);
  const auto log = static_cast<size_t>(Component::kLog);
  for (int attempt = 0; attempt < 5; ++attempt) {
    ThreadProfile profile;
    {
      ScopedThreadProfile installed(&profile);
      ScopedComponent outer(Component::kLockManager);
      SpinForNanos(1'000'000);
      {
        ScopedComponent inner(Component::kLog);
        SpinForNanos(1'000'000);
      }
      SpinForNanos(1'000'000);
    }
    const ProfileSnapshot snap = profile.Snapshot();
    if (snap.work[lm] > snap.work[log] && snap.work[log] > 0u) return;
  }
  FAIL() << "inner scope never shadowed the outer component in 5 attempts";
}

TEST(ProfilerTest, LatchContentionAttributedAsContention) {
  SpinLatch latch;
  latch.Acquire();  // hold it so the probe thread must spin

  ThreadProfile probe_profile;
  std::atomic<bool> probe_started{false};
  std::thread probe([&] {
    ScopedThreadProfile installed(&probe_profile);
    ScopedComponent comp(Component::kLockManager);
    probe_started.store(true);
    latch.Acquire();
    latch.Release();
  });
  // Release only after the probe is provably spinning on the latch.
  while (!probe_started.load()) SpinForNanos(1000);
  SpinForNanos(5'000'000);
  latch.Release();
  probe.join();

  const ProfileSnapshot snap = probe_profile.Snapshot();
  const auto lm = static_cast<size_t>(Component::kLockManager);
  EXPECT_GT(snap.contention[lm], 0u);
  // The probe spent nearly all its time spinning, so contention must
  // dominate its lock-manager cycles.
  EXPECT_GT(snap.contention[lm], snap.work[lm]);
}

TEST(ProfilerTest, BlockedTimeExcludedFromCpu) {
  ThreadProfile profile;
  {
    ScopedThreadProfile installed(&profile);
    ScopedComponent comp(Component::kApp);
    const uint64_t start = RdCycles();
    SpinForNanos(1'000'000);
    profile.AttributeBlocked(start, RdCycles());
  }
  const ProfileSnapshot snap = profile.Snapshot();
  EXPECT_GT(snap.TotalBlocked(), 0u);
  // Blocked cycles must not be folded into work or contention.
  EXPECT_LT(snap.TotalCpu(), snap.TotalBlocked() + snap.TotalCpu());
}

TEST(ProfilerTest, SnapshotArithmetic) {
  ProfileSnapshot a, b;
  a.work[0] = 100;
  a.contention[1] = 50;
  b.work[0] = 30;
  b.contention[1] = 20;
  ProfileSnapshot sum = a;
  sum += b;
  EXPECT_EQ(sum.work[0], 130u);
  EXPECT_EQ(sum.contention[1], 70u);
  const ProfileSnapshot diff = sum - b;
  EXPECT_EQ(diff.work[0], 100u);
  EXPECT_EQ(diff.contention[1], 50u);
}

TEST(ProfilerTest, AggregateAcrossThreads) {
  ThreadProfile p1, p2;
  {
    ScopedThreadProfile installed(&p1);
    ScopedComponent comp(Component::kLog);
    SpinForNanos(500'000);
  }
  std::thread t([&] {
    ScopedThreadProfile installed(&p2);
    ScopedComponent comp(Component::kLog);
    SpinForNanos(500'000);
  });
  t.join();
  const ProfileSnapshot total = AggregateProfiles({&p1, &p2});
  const auto log = static_cast<size_t>(Component::kLog);
  EXPECT_GE(total.work[log], p1.Snapshot().work[log]);
  EXPECT_GE(total.work[log], p2.Snapshot().work[log]);
}

TEST(ProfilerTest, ToStringContainsComponents) {
  ProfileSnapshot snap;
  snap.work[static_cast<size_t>(Component::kLockManager)] = 1000000;
  const std::string s = snap.ToString();
  EXPECT_NE(s.find("lockmgr"), std::string::npos);
}

TEST(CountersTest, TlsFallbackAccumulates) {
  CounterSet::Tls().Reset();
  CountEvent(Counter::kLockRequests);
  CountEvent(Counter::kLockRequests, 4);
  EXPECT_EQ(CounterSet::Tls().Get(Counter::kLockRequests), 5u);
  CounterSet::Tls().Reset();
}

TEST(CountersTest, ScopedRouting) {
  CounterSet mine;
  {
    ScopedCounterSet routed(&mine);
    CountEvent(Counter::kSliReclaimed, 3);
  }
  EXPECT_EQ(mine.Get(Counter::kSliReclaimed), 3u);
  // After the scope ends, events no longer land in `mine`.
  CountEvent(Counter::kSliReclaimed);
  EXPECT_EQ(mine.Get(Counter::kSliReclaimed), 3u);
}

TEST(CountersTest, MergeAndDelta) {
  CounterSet a, b;
  a.Add(Counter::kTxnCommits, 10);
  b.Add(Counter::kTxnCommits, 4);
  a.Merge(b);
  EXPECT_EQ(a.Get(Counter::kTxnCommits), 14u);
  const CounterSet d = a.Delta(b);
  EXPECT_EQ(d.Get(Counter::kTxnCommits), 10u);
}

TEST(CountersTest, NamesAreUnique) {
  for (size_t i = 0; i < kNumCounters; ++i) {
    for (size_t j = i + 1; j < kNumCounters; ++j) {
      EXPECT_STRNE(CounterName(static_cast<Counter>(i)),
                   CounterName(static_cast<Counter>(j)));
    }
  }
}

}  // namespace
}  // namespace slidb
