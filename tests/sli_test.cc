// Speculative Lock Inheritance protocol tests (paper Section 4): the five
// eligibility criteria, inherit/reclaim/invalidate/discard outcomes, the
// CAS arbitration, orphan handling, hysteresis, and concurrency invariants.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "src/lock/lock_manager.h"
#include "src/stats/counters.h"
#include "src/util/rng.h"

namespace slidb {
namespace {

LockManagerOptions SliOptions() {
  LockManagerOptions o;
  o.enable_sli = true;
  o.deadlock_interval_us = 200;
  o.lock_timeout_us = 2'000'000;
  return o;
}

/// Drives one agent's transaction loop the way the transaction manager does.
struct Agent {
  explicit Agent(LockManager* lm, uint32_t id) : lm(lm), sli(id) {
    client.SetPool(&sli.pool());
  }

  void Begin(uint64_t txn_id) {
    client.StartTxn(txn_id, sli.agent_id());
    lm->AdoptInherited(&client, &sli);
  }

  void Commit() { lm->ReleaseAll(&client, &sli, /*allow_inherit=*/true); }
  void Abort() { lm->ReleaseAll(&client, &sli, /*allow_inherit=*/false); }

  LockManager* lm;
  AgentSliState sli;
  LockClient client;
};

/// Force the head for `id` hot so criterion 2 passes in unit tests.
void ForceHot(LockManager& lm, LockClient& c, const LockId& id) {
  LockRequest* r = c.cache().Find(id);
  ASSERT_NE(r, nullptr) << id.ToString();
  r->head->hot.ForceHot();
}

/// Poll until the client is provably parked in a lock wait — deterministic
/// replacement for sleep-sized enqueue windows (ROADMAP test hygiene);
/// bounded so a broken enqueue path fails rather than hangs.
void WaitUntilBlocked(LockClient& c) {
  for (int i = 0; i < 20'000; ++i) {
    if (c.waiting_on().load(std::memory_order_acquire) != nullptr) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  FAIL() << "client never entered a lock wait";
}

TEST(SliTest, HotSharedTableLockIsInherited) {
  LockManager lm(SliOptions());
  Agent a(&lm, 0);

  a.Begin(1);
  ASSERT_TRUE(lm.Lock(&a.client, LockId::Table(0, 1), LockMode::kS).ok());
  ForceHot(lm, a.client, LockId::Table(0, 1));
  ForceHot(lm, a.client, LockId::Database(0));

  CounterSet counters;
  {
    ScopedCounterSet routed(&counters);
    a.Commit();
  }
  EXPECT_EQ(counters.Get(Counter::kSliInherited), 2u);  // db IS + table S
  EXPECT_EQ(a.sli.inherited_count(), 2u);
  // The inherited requests are still in their queues, status kInherited.
  for (LockRequest* r = a.sli.inherited_head(); r != nullptr;
       r = r->agent_next) {
    EXPECT_EQ(r->status.load(), RequestStatus::kInherited);
  }
}

TEST(SliTest, NextTransactionReclaimsWithoutLockManagerCall) {
  LockManager lm(SliOptions());
  Agent a(&lm, 0);

  a.Begin(1);
  ASSERT_TRUE(lm.Lock(&a.client, LockId::Table(0, 1), LockMode::kS).ok());
  ForceHot(lm, a.client, LockId::Table(0, 1));
  ForceHot(lm, a.client, LockId::Database(0));
  LockRequest* original = a.client.cache().Find(LockId::Table(0, 1));
  a.Commit();

  CounterSet counters;
  a.Begin(2);
  {
    ScopedCounterSet routed(&counters);
    ASSERT_TRUE(lm.Lock(&a.client, LockId::Table(0, 1), LockMode::kS).ok());
  }
  // Same request object, reclaimed via CAS, no slow-path lock request.
  EXPECT_EQ(a.client.cache().Find(LockId::Table(0, 1)), original);
  EXPECT_EQ(counters.Get(Counter::kSliReclaimed), 2u);  // db + table
  EXPECT_EQ(counters.Get(Counter::kLockRequests), 0u);
  EXPECT_EQ(original->status.load(), RequestStatus::kGranted);
  a.Commit();
}

TEST(SliTest, UnusedInheritedLockDiscardedAtNextCommit) {
  LockManager lm(SliOptions());
  Agent a(&lm, 0);

  a.Begin(1);
  ASSERT_TRUE(lm.Lock(&a.client, LockId::Table(0, 1), LockMode::kS).ok());
  ForceHot(lm, a.client, LockId::Table(0, 1));
  ForceHot(lm, a.client, LockId::Database(0));
  a.Commit();
  ASSERT_EQ(a.sli.inherited_count(), 2u);

  // Transaction 2 never touches table 1.
  CounterSet counters;
  a.Begin(2);
  {
    ScopedCounterSet routed(&counters);
    a.Commit();
  }
  EXPECT_EQ(counters.Get(Counter::kSliDiscarded), 2u);
  EXPECT_EQ(a.sli.inherited_count(), 0u);
  // Queues drained: nothing is left granted.
  lm.table().ForEachHead([](LockHead* h) { EXPECT_TRUE(h->QueueEmpty()); });
}

TEST(SliTest, ConflictingRequestInvalidatesInheritedLock) {
  LockManager lm(SliOptions());
  Agent a(&lm, 0);

  a.Begin(1);
  ASSERT_TRUE(lm.Lock(&a.client, LockId::Table(0, 1), LockMode::kS).ok());
  ForceHot(lm, a.client, LockId::Table(0, 1));
  ForceHot(lm, a.client, LockId::Database(0));
  a.Commit();

  // A competing client requests X: must invalidate the inherited S and
  // proceed without blocking (the inheritance was speculative only).
  LockClient other;
  other.StartTxn(50, 1);
  CounterSet counters;
  {
    ScopedCounterSet routed(&counters);
    ASSERT_TRUE(lm.Lock(&other, LockId::Table(0, 1), LockMode::kX).ok());
  }
  EXPECT_EQ(counters.Get(Counter::kSliInvalidated), 1u);
  lm.ReleaseAll(&other, nullptr, false);

  // The agent's next transaction cannot reclaim; it takes the slow path.
  a.Begin(2);
  CounterSet counters2;
  {
    ScopedCounterSet routed(&counters2);
    ASSERT_TRUE(lm.Lock(&a.client, LockId::Table(0, 1), LockMode::kS).ok());
  }
  EXPECT_EQ(counters2.Get(Counter::kSliReclaimed), 1u);  // db IS survived
  EXPECT_GE(counters2.Get(Counter::kLockRequests), 1u);  // table S re-acquired
  a.Commit();
}

TEST(SliTest, InvalidRequestsGarbageCollectedAtCommit) {
  LockManager lm(SliOptions());
  Agent a(&lm, 0);

  a.Begin(1);
  ASSERT_TRUE(lm.Lock(&a.client, LockId::Table(0, 1), LockMode::kS).ok());
  ForceHot(lm, a.client, LockId::Table(0, 1));
  ForceHot(lm, a.client, LockId::Database(0));
  a.Commit();

  LockClient other;
  other.StartTxn(50, 1);
  ASSERT_TRUE(lm.Lock(&other, LockId::Table(0, 1), LockMode::kX).ok());
  lm.ReleaseAll(&other, nullptr, false);

  const size_t live_before = a.sli.pool().live();
  a.Begin(2);
  a.Commit();  // GC pass frees the invalidated request
  EXPECT_LT(a.sli.pool().live(), live_before);
}

// ---- The five criteria (paper §4.2) ----

TEST(SliTest, Criterion1RowLocksNotInherited) {
  LockManager lm(SliOptions());
  Agent a(&lm, 0);
  a.Begin(1);
  ASSERT_TRUE(lm.Lock(&a.client, LockId::Row(0, 1, 2, 3), LockMode::kS).ok());
  // Make everything hot so only the level criterion can reject.
  ForceHot(lm, a.client, LockId::Row(0, 1, 2, 3));
  ForceHot(lm, a.client, LockId::Page(0, 1, 2));
  ForceHot(lm, a.client, LockId::Table(0, 1));
  ForceHot(lm, a.client, LockId::Database(0));
  CounterSet counters;
  {
    ScopedCounterSet routed(&counters);
    a.Commit();
  }
  // db IS, table IS, page IS inherited; row S not.
  EXPECT_EQ(counters.Get(Counter::kSliInherited), 3u);
  for (LockRequest* r = a.sli.inherited_head(); r != nullptr;
       r = r->agent_next) {
    EXPECT_NE(r->head->id.level, LockLevel::kRow);
  }
}

TEST(SliTest, Criterion2ColdLocksNotInherited) {
  LockManager lm(SliOptions());
  Agent a(&lm, 0);
  a.Begin(1);
  ASSERT_TRUE(lm.Lock(&a.client, LockId::Table(0, 1), LockMode::kS).ok());
  // No ForceHot: the head is cold.
  CounterSet counters;
  {
    ScopedCounterSet routed(&counters);
    a.Commit();
  }
  EXPECT_EQ(counters.Get(Counter::kSliInherited), 0u);
}

TEST(SliTest, Criterion3ExclusiveModesNotInherited) {
  LockManager lm(SliOptions());
  Agent a(&lm, 0);
  a.Begin(1);
  ASSERT_TRUE(lm.Lock(&a.client, LockId::Table(0, 1), LockMode::kX).ok());
  ForceHot(lm, a.client, LockId::Table(0, 1));
  ForceHot(lm, a.client, LockId::Database(0));
  CounterSet counters;
  {
    ScopedCounterSet routed(&counters);
    a.Commit();
  }
  // The db IX is heritable; the table X is not.
  EXPECT_EQ(counters.Get(Counter::kSliInherited), 1u);
  ASSERT_EQ(a.sli.inherited_count(), 1u);
  EXPECT_EQ(a.sli.inherited_head()->head->id, LockId::Database(0));
}

TEST(SliTest, Criterion4WaiterBlocksInheritance) {
  LockManager lm(SliOptions());
  Agent a(&lm, 0);
  a.Begin(1);
  ASSERT_TRUE(lm.Lock(&a.client, LockId::Table(0, 1), LockMode::kS).ok());
  ForceHot(lm, a.client, LockId::Table(0, 1));
  ForceHot(lm, a.client, LockId::Database(0));

  // A conflicting writer queues up and waits.
  LockClient writer;
  writer.StartTxn(99, 1);
  std::thread t([&] {
    EXPECT_TRUE(lm.Lock(&writer, LockId::Table(0, 1), LockMode::kX).ok());
    lm.ReleaseAll(&writer, nullptr, false);
  });
  // The waiter must provably be enqueued before the commit, or the
  // released-vs-inherited decision under test is not the one exercised.
  WaitUntilBlocked(writer);

  CounterSet counters;
  {
    ScopedCounterSet routed(&counters);
    a.Commit();
  }
  t.join();
  // The table lock had a waiter → released, not inherited. The db lock has
  // no waiter (writer takes IX there, compatible) → inherited.
  EXPECT_EQ(counters.Get(Counter::kSliDiscarded), 0u);
  for (LockRequest* r = a.sli.inherited_head(); r != nullptr;
       r = r->agent_next) {
    EXPECT_EQ(r->head->id, LockId::Database(0));
  }
}

TEST(SliTest, Criterion5ParentIneligibleBlocksChild) {
  LockManagerOptions o = SliOptions();
  LockManager lm(o);
  Agent a(&lm, 0);
  a.Begin(1);
  // Page lock hot, table lock cold → page may not be inherited (parent
  // fails criterion 2) even though the page itself qualifies.
  ASSERT_TRUE(lm.Lock(&a.client, LockId::Page(0, 1, 7), LockMode::kIS).ok());
  ForceHot(lm, a.client, LockId::Page(0, 1, 7));
  ForceHot(lm, a.client, LockId::Database(0));
  // Table stays cold.
  CounterSet counters;
  {
    ScopedCounterSet routed(&counters);
    a.Commit();
  }
  for (LockRequest* r = a.sli.inherited_head(); r != nullptr;
       r = r->agent_next) {
    EXPECT_EQ(r->head->id, LockId::Database(0));
  }
}

TEST(SliTest, CriteriaAblationSwitchesWiden) {
  // With hot + parent + level requirements off, even a cold row lock's
  // whole chain gets inherited.
  LockManagerOptions o = SliOptions();
  o.sli_require_hot = false;
  o.sli_require_high_level = false;
  o.sli_require_parent = false;
  LockManager lm(o);
  Agent a(&lm, 0);
  a.Begin(1);
  ASSERT_TRUE(lm.Lock(&a.client, LockId::Row(0, 1, 2, 3), LockMode::kS).ok());
  CounterSet counters;
  {
    ScopedCounterSet routed(&counters);
    a.Commit();
  }
  EXPECT_EQ(counters.Get(Counter::kSliInherited), 4u);  // db,table,page,row
}

TEST(SliTest, HysteresisKeepsUnusedLocksForKCommits) {
  LockManagerOptions o = SliOptions();
  o.sli_hysteresis = 2;
  LockManager lm(o);
  Agent a(&lm, 0);

  a.Begin(1);
  ASSERT_TRUE(lm.Lock(&a.client, LockId::Table(0, 1), LockMode::kS).ok());
  ForceHot(lm, a.client, LockId::Table(0, 1));
  ForceHot(lm, a.client, LockId::Database(0));
  a.Commit();
  ASSERT_EQ(a.sli.inherited_count(), 2u);

  // Two empty transactions: momentum keeps the inheritance alive.
  a.Begin(2);
  a.Commit();
  EXPECT_EQ(a.sli.inherited_count(), 2u);
  a.Begin(3);
  a.Commit();
  EXPECT_EQ(a.sli.inherited_count(), 2u);
  // Third miss exceeds the hysteresis budget.
  a.Begin(4);
  a.Commit();
  EXPECT_EQ(a.sli.inherited_count(), 0u);
}

TEST(SliTest, AbortDoesNotInherit) {
  LockManager lm(SliOptions());
  Agent a(&lm, 0);
  a.Begin(1);
  ASSERT_TRUE(lm.Lock(&a.client, LockId::Table(0, 1), LockMode::kS).ok());
  ForceHot(lm, a.client, LockId::Table(0, 1));
  ForceHot(lm, a.client, LockId::Database(0));
  a.Abort();
  EXPECT_EQ(a.sli.inherited_count(), 0u);
  lm.table().ForEachHead([](LockHead* h) { EXPECT_TRUE(h->QueueEmpty()); });
}

TEST(SliTest, SliInducedDeadlockAvoidedByInvalidation) {
  // Paper Figure 4: agent A inherits L1; agent B acquires L1 in X mode
  // before A's next transaction reclaims it. Without invalidation A would
  // hold L1 "out of order". With it, B's request simply kills the
  // speculation and no deadlock arises.
  LockManager lm(SliOptions());
  Agent a(&lm, 0);

  a.Begin(1);
  ASSERT_TRUE(lm.Lock(&a.client, LockId::Table(0, 7), LockMode::kS).ok());
  ForceHot(lm, a.client, LockId::Table(0, 7));
  ForceHot(lm, a.client, LockId::Database(0));
  a.Commit();

  LockClient b;
  b.StartTxn(100, 1);
  // B must acquire X immediately — the inherited S is speculative and gets
  // invalidated rather than blocking B.
  ASSERT_TRUE(lm.Lock(&b, LockId::Table(0, 7), LockMode::kX).ok());

  // Meanwhile A's next transaction tries to use its inheritance: the
  // reclaim fails and A blocks behind B like any normal requester.
  std::atomic<bool> a_done{false};
  std::thread ta([&] {
    a.Begin(2);
    EXPECT_TRUE(lm.Lock(&a.client, LockId::Table(0, 7), LockMode::kS).ok());
    a_done.store(true);
    a.Commit();
  });
  WaitUntilBlocked(a.client);
  EXPECT_FALSE(a_done.load());
  lm.ReleaseAll(&b, nullptr, false);
  ta.join();
  EXPECT_TRUE(a_done.load());
}

TEST(SliTest, ReclaimThenUpgradeWorks) {
  LockManager lm(SliOptions());
  Agent a(&lm, 0);
  a.Begin(1);
  ASSERT_TRUE(lm.Lock(&a.client, LockId::Table(0, 1), LockMode::kIS).ok());
  ForceHot(lm, a.client, LockId::Table(0, 1));
  ForceHot(lm, a.client, LockId::Database(0));
  a.Commit();

  a.Begin(2);
  CounterSet counters;
  {
    ScopedCounterSet routed(&counters);
    // Needs IX: reclaims the IS then upgrades.
    ASSERT_TRUE(lm.Lock(&a.client, LockId::Table(0, 1), LockMode::kIX).ok());
  }
  // Both the table IS and its inherited db IS parent upgrade to IX.
  EXPECT_EQ(counters.Get(Counter::kSliUpgradeAfterReclaim), 2u);
  LockRequest* r = a.client.cache().Find(LockId::Table(0, 1));
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->mode, LockMode::kIX);
  LockRequest* dbr = a.client.cache().Find(LockId::Database(0));
  ASSERT_NE(dbr, nullptr);
  EXPECT_EQ(dbr->mode, LockMode::kIX);
  a.Commit();
}

TEST(SliTest, OutcomeAccountingBalances) {
  // Every inherited lock ends as exactly one of reclaimed / invalidated /
  // discarded (or still pending in the agent list).
  LockManager lm(SliOptions());
  Agent a(&lm, 0);
  LockClient intruder;
  Rng rng(7);

  CounterSet counters;
  ScopedCounterSet routed(&counters);
  for (uint64_t txn = 1; txn <= 200; ++txn) {
    a.Begin(txn);
    const uint32_t t = static_cast<uint32_t>(rng.Uniform(1, 3));
    ASSERT_TRUE(lm.Lock(&a.client, LockId::Table(0, t), LockMode::kS).ok());
    ForceHot(lm, a.client, LockId::Table(0, t));
    ForceHot(lm, a.client, LockId::Database(0));
    a.Commit();

    if (rng.Bernoulli(0.3)) {
      intruder.StartTxn(100000 + txn, 1);
      const uint32_t it = static_cast<uint32_t>(rng.Uniform(1, 3));
      ASSERT_TRUE(lm.Lock(&intruder, LockId::Table(0, it), LockMode::kX).ok());
      lm.ReleaseAll(&intruder, nullptr, false);
    }
  }
  // Flush: run two empty transactions so stragglers get discarded/GCed.
  a.Begin(10001);
  a.Commit();
  a.Begin(10002);
  a.Commit();

  const uint64_t inherited = counters.Get(Counter::kSliInherited);
  const uint64_t reclaimed = counters.Get(Counter::kSliReclaimed);
  const uint64_t invalidated = counters.Get(Counter::kSliInvalidated);
  const uint64_t discarded = counters.Get(Counter::kSliDiscarded);
  EXPECT_GT(inherited, 0u);
  // Reclaimed locks can be re-inherited, so: inherited == reclaimed +
  // invalidated + discarded + still-pending(0 after the flush).
  EXPECT_EQ(inherited, reclaimed + invalidated + discarded)
      << "inh=" << inherited << " rec=" << reclaimed << " inv=" << invalidated
      << " disc=" << discarded;
}

TEST(SliTest, ConcurrentAgentsMutualExclusionPreserved) {
  // The serializability smoke test with SLI on: X row updates never lost,
  // while table/database intent locks flow between transactions.
  LockManagerOptions o = SliOptions();
  o.sli_require_hot = false;  // inherit aggressively to stress the protocol
  LockManager lm(o);

  constexpr int kAgents = 4;
  constexpr int kIters = 400;
  int64_t value = 0;
  std::vector<std::unique_ptr<Agent>> agents;
  for (int i = 0; i < kAgents; ++i) {
    agents.push_back(std::make_unique<Agent>(&lm, i));
  }
  std::vector<std::thread> threads;
  std::atomic<uint64_t> next_txn{1};
  for (int i = 0; i < kAgents; ++i) {
    threads.emplace_back([&, i] {
      Agent* ag = agents[i].get();
      for (int iter = 0; iter < kIters; ++iter) {
        ag->Begin(next_txn.fetch_add(1));
        Status st = lm.Lock(&ag->client, LockId::Row(0, 1, 1, 1), LockMode::kX);
        ASSERT_TRUE(st.ok()) << st.ToString();
        ++value;
        ag->Commit();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(value, static_cast<int64_t>(kAgents) * kIters);
}

// ---- adaptive per-head SLI (criterion 2 with hysteresis) ----

LockHead* HeadOf(LockClient& c, const LockId& id) {
  LockRequest* r = c.cache().Find(id);
  return r == nullptr ? nullptr : r->head;
}

TEST(SliTest, AdaptiveEnablesOnHeatAndCoolsDown) {
  LockManagerOptions o = SliOptions();
  o.sli_adaptive = true;
  o.hot_min_contended = 4;   // enter threshold
  o.hot_exit_contended = 1;  // exit threshold (hysteresis band 2..3)
  LockManager lm(o);
  Agent a(&lm, 0);

  // Cold commit: adaptive bit off, quiet window — nothing inherited.
  a.Begin(1);
  ASSERT_TRUE(lm.Lock(&a.client, LockId::Table(0, 1), LockMode::kS).ok());
  CounterSet cold;
  {
    ScopedCounterSet routed(&cold);
    a.Commit();
  }
  EXPECT_EQ(cold.Get(Counter::kSliInherited), 0u);
  EXPECT_EQ(cold.Get(Counter::kSliAdaptiveEnable), 0u);

  // Warm both heads past the enter threshold: the commit flips the
  // adaptive bit (one enable per head) and inherits.
  a.Begin(2);
  ASSERT_TRUE(lm.Lock(&a.client, LockId::Table(0, 1), LockMode::kS).ok());
  LockHead* table = HeadOf(a.client, LockId::Table(0, 1));
  LockHead* dbh = HeadOf(a.client, LockId::Database(0));
  ASSERT_NE(table, nullptr);
  ASSERT_NE(dbh, nullptr);
  for (int i = 0; i < 6; ++i) {
    table->hot.Record(true);
    dbh->hot.Record(true);
  }
  CounterSet warm;
  {
    ScopedCounterSet routed(&warm);
    a.Commit();
  }
  EXPECT_EQ(warm.Get(Counter::kSliAdaptiveEnable), 2u);
  EXPECT_EQ(warm.Get(Counter::kSliInherited), 2u);
  EXPECT_TRUE(table->hot.adaptive_hot());

  // Mid-band window (exit < contended < enter): hysteresis keeps the bit
  // on and the locks stay heritable, where plain IsHot already says cold.
  a.Begin(3);
  ASSERT_TRUE(lm.Lock(&a.client, LockId::Table(0, 1), LockMode::kS).ok());
  for (int i = 0; i < 16; ++i) {
    table->hot.Record(false);
    dbh->hot.Record(false);
  }
  for (int i = 0; i < 2; ++i) {
    table->hot.Record(true);
    dbh->hot.Record(true);
  }
  ASSERT_FALSE(table->hot.IsHot(o.hot_min_contended));
  CounterSet mid;
  {
    ScopedCounterSet routed(&mid);
    a.Commit();
  }
  EXPECT_EQ(mid.Get(Counter::kSliAdaptiveEnable), 0u);
  EXPECT_EQ(mid.Get(Counter::kSliAdaptiveCooldown), 0u);
  EXPECT_EQ(mid.Get(Counter::kSliInherited), 2u);

  // Fully calm window (contended <= exit): the bit drops, the commit
  // releases instead of inheriting, and the cool-down is counted.
  a.Begin(4);
  ASSERT_TRUE(lm.Lock(&a.client, LockId::Table(0, 1), LockMode::kS).ok());
  for (int i = 0; i < 16; ++i) {
    table->hot.Record(false);
    dbh->hot.Record(false);
  }
  CounterSet cool;
  {
    ScopedCounterSet routed(&cool);
    a.Commit();
  }
  EXPECT_EQ(cool.Get(Counter::kSliAdaptiveCooldown), 2u);
  EXPECT_EQ(cool.Get(Counter::kSliInherited), 0u);
  EXPECT_EQ(a.sli.inherited_count(), 0u);
  EXPECT_FALSE(table->hot.adaptive_hot());
}

TEST(SliTest, ApplySliModePresets) {
  LockManagerOptions o;
  ApplySliMode(o, SliMode::kOff);
  EXPECT_FALSE(o.enable_sli);
  ApplySliMode(o, SliMode::kOn);
  EXPECT_TRUE(o.enable_sli);
  EXPECT_TRUE(o.sli_require_hot);
  EXPECT_FALSE(o.sli_adaptive);
  ApplySliMode(o, SliMode::kAlwaysInherit);
  EXPECT_TRUE(o.enable_sli);
  EXPECT_FALSE(o.sli_require_hot);
  ApplySliMode(o, SliMode::kAdaptive);
  EXPECT_TRUE(o.enable_sli);
  EXPECT_TRUE(o.sli_require_hot);
  EXPECT_TRUE(o.sli_adaptive);
  EXPECT_STREQ(SliModeName(SliMode::kAdaptive), "adaptive");
  EXPECT_STREQ(SliModeName(SliMode::kAlwaysInherit), "always_on");
}

TEST(SliTest, AdaptiveConcurrentAgentsPreserveMutualExclusion) {
  // ROADMAP flakiness note: timing-dependent SLI concurrency tests need a
  // real second CPU to be meaningful.
  if (std::thread::hardware_concurrency() < 2) {
    GTEST_SKIP() << "needs >= 2 hardware threads";
  }
  LockManagerOptions o = SliOptions();
  o.sli_adaptive = true;
  o.hot_min_contended = 2;
  o.hot_exit_contended = 0;
  LockManager lm(o);

  constexpr int kAgents = 2;
  constexpr int kIters = 300;
  int64_t value = 0;
  std::vector<std::unique_ptr<Agent>> agents;
  for (int i = 0; i < kAgents; ++i) {
    agents.push_back(std::make_unique<Agent>(&lm, i));
  }
  std::vector<CounterSet> per_thread(kAgents);
  std::vector<std::thread> threads;
  std::atomic<uint64_t> next_txn{1};
  for (int i = 0; i < kAgents; ++i) {
    threads.emplace_back([&, i] {
      ScopedCounterSet routed(&per_thread[i]);
      Agent* ag = agents[i].get();
      for (int iter = 0; iter < kIters; ++iter) {
        ag->Begin(next_txn.fetch_add(1));
        Status st = lm.Lock(&ag->client, LockId::Row(0, 1, 1, 1), LockMode::kX);
        ASSERT_TRUE(st.ok()) << st.ToString();
        ++value;
        // Saturate the windows so the adaptive policy deterministically
        // stays enabled; the X row itself is never heritable (criteria
        // 1 and 3), only its intent-lock parents are.
        ForceHot(lm, ag->client, LockId::Table(0, 1));
        ForceHot(lm, ag->client, LockId::Database(0));
        ag->Commit();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(value, static_cast<int64_t>(kAgents) * kIters);
  uint64_t enables = 0, inherits = 0;
  for (const CounterSet& c : per_thread) {
    enables += c.Get(Counter::kSliAdaptiveEnable);
    inherits += c.Get(Counter::kSliInherited);
  }
  EXPECT_GT(enables, 0u);
  EXPECT_GT(inherits, 0u);
}

TEST(SliTest, SliDisabledInheritsNothing) {
  LockManagerOptions o = SliOptions();
  o.enable_sli = false;
  LockManager lm(o);
  Agent a(&lm, 0);
  a.Begin(1);
  ASSERT_TRUE(lm.Lock(&a.client, LockId::Table(0, 1), LockMode::kS).ok());
  ForceHot(lm, a.client, LockId::Table(0, 1));
  ForceHot(lm, a.client, LockId::Database(0));
  a.Commit();
  EXPECT_EQ(a.sli.inherited_count(), 0u);
}

}  // namespace
}  // namespace slidb
