// Storage-manager components used for work/contention attribution. These are
// the categories in the paper's time-breakdown figures (Figs 1, 6, 10).
#pragma once

#include <cstdint>

namespace slidb {

/// Component a thread is currently executing in. Every cycle an agent thread
/// spends is attributed to exactly one component, as either useful work,
/// contention (latch spinning / short blocking), or blocked time (true lock
/// conflicts and I/O, which the paper excludes from its breakdowns).
enum class Component : uint8_t {
  kApp = 0,      ///< transaction body and everything not otherwise classified
  kLockManager,  ///< lock manager code: acquire, release, upgrade, queues
  kSli,          ///< speculative lock inheritance bookkeeping
  kLog,          ///< WAL append and commit flush
  kBuffer,       ///< buffer pool fix/unfix, eviction, I/O issue
  kStorage,      ///< heap pages, indexes
  kTxn,          ///< transaction begin/commit/abort bookkeeping
  kNumComponents,
};

inline constexpr size_t kNumComponents =
    static_cast<size_t>(Component::kNumComponents);

inline const char* ComponentName(Component c) {
  switch (c) {
    case Component::kApp: return "app";
    case Component::kLockManager: return "lockmgr";
    case Component::kSli: return "sli";
    case Component::kLog: return "log";
    case Component::kBuffer: return "buffer";
    case Component::kStorage: return "storage";
    case Component::kTxn: return "txn";
    default: return "?";
  }
}

}  // namespace slidb
