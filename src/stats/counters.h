// Software counters for lock-manager and SLI behaviour. These feed Figures 8
// and 9 (lock-type breakdown and SLI outcome breakdown).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "src/util/cacheline.h"

namespace slidb {

/// Counter identifiers. Grouped by the figure they feed.
enum class Counter : uint32_t {
  // -- general lock manager traffic --
  kLockRequests = 0,   ///< calls into LockManager::Lock (cache misses incl.)
  kLockCacheHits,      ///< requests satisfied by the txn's own lock cache
  kLockUpgrades,       ///< mode upgrades of an existing request
  kLockWaits,          ///< requests that blocked on a conflict
  kLockTimeouts,
  kDeadlocks,          ///< victims aborted by the detector
  kLockReleases,
  kCanGrantFast,       ///< conflict checks answered O(1) from the summary
  kCanGrantSlow,       ///< conflict checks that walked the queue (inherited
                       ///< invalidation possible)
  kLockWakeFast,       ///< Wake() calls that skipped the wait mutex because
                       ///< no thread could be parked

  // -- Figure 8: breakdown of acquired locks --
  kAcqRow,             ///< row-level acquisitions
  kAcqHigh,            ///< page-level-or-higher acquisitions
  kAcqShared,          ///< acquisitions in a heritable (shared-class) mode
  kAcqExclusive,       ///< acquisitions in X/SIX/U
  kAcqHot,             ///< acquisitions whose lock head was hot
  kAcqHotHeritable,    ///< hot AND heritable AND high-level
  kAcqHotRow,          ///< hot row locks (paper expects these to be rare)

  // -- Figure 9: SLI outcomes --
  kSliEligible,        ///< locks passing all five criteria at release
  kSliInherited,       ///< requests actually handed to the agent thread
  kSliReclaimed,       ///< inherited requests used by the next transaction
  kSliInvalidated,     ///< inherited requests killed by a conflicting request
  kSliDiscarded,       ///< inherited requests released unused at next commit
  kSliUpgradeAfterReclaim,  ///< reclaimed, then needed a stronger mode
  kSliAdaptiveEnable,       ///< adaptive policy turned inheritance on for a head
  kSliAdaptiveCooldown,     ///< adaptive policy turned inheritance off for a head

  // -- log / commit pipeline --
  kLogResvRetries,          ///< backpressure pauses in the log append path
                            ///< (ring space or publish-slot waits)
  kGroupCommitWaitersWoken, ///< committers woken individually by the
                            ///< consolidated group-commit queue
  kLogChecksumFail,         ///< records rejected on read-back (CRC mismatch
                            ///< or torn tail)
  kLogBatchAppends,         ///< batch publications (one ring reservation
                            ///< each; AppendBatch chunks count individually)
  kLogBatchRecords,         ///< records published through batch appends
  kLogBatchBytes,           ///< wire bytes published through batch appends
                            ///< (envelope headers included)

  // -- crash recovery --
  kRecoveryRecordsScanned,  ///< valid records decoded from the durable log
  kRecoveryRecordsReplayed, ///< redo records applied to storage
  kRecoveryRecordsSkipped,  ///< redo records of uncommitted txns dropped
  kRecoveryCommittedTxns,   ///< transactions whose commit record was durable
  kRecoveryTornTails,       ///< recoveries that discarded a torn/corrupt tail
  kRecoveryRecordsUndone,   ///< loser records rolled back by the undo pass
  kRecoveryClrsEmitted,     ///< compensation records written during undo
  kRecoveryLosersRolledBack, ///< uncommitted txns rolled back at restart
  kRecoveryCheckpointAnchored, ///< recoveries that started at a checkpoint

  // -- checkpointing and log segments --
  kCheckpointsCompleted,    ///< fuzzy checkpoints that reached kCheckpointEnd
  kCheckpointImageRecords,  ///< heap + index image records written
  kLogSegmentsCreated,      ///< segment files created (write-new-then-rename)
  kLogSegmentsRecycled,     ///< segment files deleted after checkpoint
  kLogSyncFailures,         ///< fsync/close failures that poisoned the device

  // -- B-tree optimistic lock coupling --
  kBtreeRestarts,       ///< optimistic traversals retried after a version
                        ///< conflict (read or write path)
  kBtreeLeafReclaims,   ///< emptied leaves unlinked and retired to the epoch
                        ///< manager
  kEpochRetired,        ///< nodes handed to epoch-deferred reclamation
  kEpochFreed,          ///< retired nodes actually freed (grace elapsed)

  // -- transactions --
  kTxnCommits,
  kTxnUserAborts,      ///< benchmark-specified failures (invalid input)
  kTxnDeadlockAborts,
  kTxnEarlyRelease,    ///< commits that released locks before durability

  // -- speculative reads / commit dependencies --
  kTxnSpecReads,       ///< lock acquisitions that raised the txn's
                       ///< durability-dependency horizon (the speculative
                       ///< read capture point)
  kTxnDeferredAcks,    ///< commits whose externalization was parked on the
                       ///< dependency-settlement queue instead of waiting
  kTxnDepSettleNs,     ///< nanoseconds parked acks spent waiting for their
                       ///< dependency horizon to harden (flusher-side)
  kTxnDepAbortedAcks,  ///< parked acks settled as LOST (dependency horizon
                       ///< never became durable — shutdown / crash path)

  // -- overload governor / deadlines --
  kGovAdmits,          ///< transactions granted an in-flight token
  kGovQueuedAdmits,    ///< admissions that waited in the entry queue first
  kGovSheds,           ///< arrivals shed immediately (entry queue full)
  kGovQueueTimeouts,   ///< queued arrivals whose deadline expired waiting
  kLockWaitDepthCancels, ///< enqueues cancelled: hot head at wait-depth limit
  kLockDeadlineCancels,  ///< lock waits cut short by the txn deadline (the
                         ///< min(lock_timeout, remaining_deadline) path)
  kTxnDeadlineAborts,    ///< commit entry refused: deadline already passed
  kTxnDeadlineDeferredAcks, ///< durable waits past deadline parked as
                            ///< DeferredAcks instead of blocking on
  kTxnRetries,           ///< driver re-submissions after a retryable abort
  kTxnRetriesExhausted,  ///< transactions dropped at the attempt budget

  kNumCounters,
};

inline constexpr size_t kNumCounters =
    static_cast<size_t>(Counter::kNumCounters);

const char* CounterName(Counter c);

/// A set of counters. Each agent thread owns one (unsynchronized fast path);
/// the driver merges them. An atomic global set is also provided for code
/// paths with no thread context.
class CounterSet {
 public:
  CounterSet() { values_.fill(0); }

  void Add(Counter c, uint64_t delta = 1) {
    values_[static_cast<size_t>(c)] += delta;
  }

  uint64_t Get(Counter c) const { return values_[static_cast<size_t>(c)]; }

  void Merge(const CounterSet& other) {
    for (size_t i = 0; i < kNumCounters; ++i) values_[i] += other.values_[i];
  }

  CounterSet Delta(const CounterSet& baseline) const {
    CounterSet out;
    for (size_t i = 0; i < kNumCounters; ++i) {
      out.values_[i] = values_[i] - baseline.values_[i];
    }
    return out;
  }

  void Reset() { values_.fill(0); }

  std::string ToString() const;

  /// Thread-local counter set used by library internals. Defaults to a
  /// process-wide fallback set so counters are never lost; agent threads
  /// install their own with ScopedCounterSet.
  static CounterSet& Tls();

 private:
  std::array<uint64_t, kNumCounters> values_;
};

/// RAII: route the calling thread's counter updates into `set`.
class ScopedCounterSet {
 public:
  explicit ScopedCounterSet(CounterSet* set);
  ~ScopedCounterSet();

 private:
  CounterSet* prev_;
};

/// Shorthand used across the library.
inline void CountEvent(Counter c, uint64_t delta = 1) {
  CounterSet::Tls().Add(c, delta);
}

}  // namespace slidb
