#include "src/stats/counters.h"

#include <cstdio>

namespace slidb {

namespace {

thread_local CounterSet* tls_counters = nullptr;
thread_local CounterSet tls_fallback;

}  // namespace

const char* CounterName(Counter c) {
  switch (c) {
    case Counter::kLockRequests: return "lock.requests";
    case Counter::kLockCacheHits: return "lock.cache_hits";
    case Counter::kLockUpgrades: return "lock.upgrades";
    case Counter::kLockWaits: return "lock.waits";
    case Counter::kLockTimeouts: return "lock.timeouts";
    case Counter::kDeadlocks: return "lock.deadlocks";
    case Counter::kLockReleases: return "lock.releases";
    case Counter::kCanGrantFast: return "lock.cangrant_fast";
    case Counter::kCanGrantSlow: return "lock.cangrant_slow";
    case Counter::kLockWakeFast: return "lock.wake_fast";
    case Counter::kAcqRow: return "acq.row";
    case Counter::kAcqHigh: return "acq.high";
    case Counter::kAcqShared: return "acq.shared";
    case Counter::kAcqExclusive: return "acq.exclusive";
    case Counter::kAcqHot: return "acq.hot";
    case Counter::kAcqHotHeritable: return "acq.hot_heritable";
    case Counter::kAcqHotRow: return "acq.hot_row";
    case Counter::kSliEligible: return "sli.eligible";
    case Counter::kSliInherited: return "sli.inherited";
    case Counter::kSliReclaimed: return "sli.reclaimed";
    case Counter::kSliInvalidated: return "sli.invalidated";
    case Counter::kSliDiscarded: return "sli.discarded";
    case Counter::kSliUpgradeAfterReclaim: return "sli.upgrade_after_reclaim";
    case Counter::kSliAdaptiveEnable: return "sli.adaptive_enable";
    case Counter::kSliAdaptiveCooldown: return "sli.adaptive_cooldown";
    case Counter::kLogResvRetries: return "log.resv_retries";
    case Counter::kGroupCommitWaitersWoken: return "log.gc_waiters_woken";
    case Counter::kLogChecksumFail: return "log.checksum_fail";
    case Counter::kLogBatchAppends: return "log.batch_appends";
    case Counter::kLogBatchRecords: return "log.batch_records";
    case Counter::kLogBatchBytes: return "log.batch_bytes";
    case Counter::kRecoveryRecordsScanned: return "recovery.records_scanned";
    case Counter::kRecoveryRecordsReplayed: return "recovery.records_replayed";
    case Counter::kRecoveryRecordsSkipped: return "recovery.records_skipped";
    case Counter::kRecoveryCommittedTxns: return "recovery.committed_txns";
    case Counter::kRecoveryTornTails: return "recovery.torn_tails";
    case Counter::kRecoveryRecordsUndone: return "recovery.records_undone";
    case Counter::kRecoveryClrsEmitted: return "recovery.clrs_emitted";
    case Counter::kRecoveryLosersRolledBack:
      return "recovery.losers_rolled_back";
    case Counter::kRecoveryCheckpointAnchored:
      return "recovery.checkpoint_anchored";
    case Counter::kCheckpointsCompleted: return "checkpoint.completed";
    case Counter::kCheckpointImageRecords: return "checkpoint.image_records";
    case Counter::kLogSegmentsCreated: return "log.segments_created";
    case Counter::kLogSegmentsRecycled: return "log.segments_recycled";
    case Counter::kLogSyncFailures: return "log.sync_failures";
    case Counter::kBtreeRestarts: return "btree.restarts";
    case Counter::kBtreeLeafReclaims: return "btree.leaf_reclaims";
    case Counter::kEpochRetired: return "epoch.retired";
    case Counter::kEpochFreed: return "epoch.freed";
    case Counter::kTxnCommits: return "txn.commits";
    case Counter::kTxnUserAborts: return "txn.user_aborts";
    case Counter::kTxnDeadlockAborts: return "txn.deadlock_aborts";
    case Counter::kTxnEarlyRelease: return "txn.early_release";
    case Counter::kTxnSpecReads: return "txn.spec_reads";
    case Counter::kTxnDeferredAcks: return "txn.deferred_acks";
    case Counter::kTxnDepSettleNs: return "txn.dep_settle_ns";
    case Counter::kTxnDepAbortedAcks: return "txn.dep_aborted_acks";
    case Counter::kGovAdmits: return "gov.admits";
    case Counter::kGovQueuedAdmits: return "gov.queued_admits";
    case Counter::kGovSheds: return "gov.sheds";
    case Counter::kGovQueueTimeouts: return "gov.queue_timeouts";
    case Counter::kLockWaitDepthCancels: return "lock.wait_depth_cancels";
    case Counter::kLockDeadlineCancels: return "lock.deadline_cancels";
    case Counter::kTxnDeadlineAborts: return "txn.deadline_aborts";
    case Counter::kTxnDeadlineDeferredAcks: return "txn.deadline_deferred_acks";
    case Counter::kTxnRetries: return "txn.retries";
    case Counter::kTxnRetriesExhausted: return "txn.retries_exhausted";
    case Counter::kNumCounters: break;
  }
  return "?";
}

CounterSet& CounterSet::Tls() {
  return tls_counters != nullptr ? *tls_counters : tls_fallback;
}

std::string CounterSet::ToString() const {
  std::string out;
  char line[128];
  for (size_t i = 0; i < kNumCounters; ++i) {
    const auto c = static_cast<Counter>(i);
    if (Get(c) == 0) continue;
    std::snprintf(line, sizeof(line), "%-26s %12llu\n", CounterName(c),
                  static_cast<unsigned long long>(Get(c)));
    out += line;
  }
  return out;
}

ScopedCounterSet::ScopedCounterSet(CounterSet* set) : prev_(tls_counters) {
  tls_counters = set;
}

ScopedCounterSet::~ScopedCounterSet() { tls_counters = prev_; }

}  // namespace slidb
