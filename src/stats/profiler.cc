#include "src/stats/profiler.h"

#include <cstdio>

namespace slidb {

thread_local ThreadProfile* ThreadProfile::tls_current_ = nullptr;

ThreadProfile::ThreadProfile() : depth_(0), last_stamp_(RdCycles()) {
  stack_[0] = Component::kApp;
}

ThreadProfile::~ThreadProfile() = default;

void ThreadProfile::Flush() {
  const uint64_t now = RdCycles();
  work_[CurIdx()] += now - last_stamp_;
  last_stamp_ = now;
}

ProfileSnapshot ThreadProfile::Snapshot() const {
  ProfileSnapshot snap;
  snap.work = work_;
  snap.contention = contention_;
  snap.blocked = blocked_;
  return snap;
}

ScopedThreadProfile::ScopedThreadProfile(ThreadProfile* profile)
    : prev_(ThreadProfile::tls_current_) {
  ThreadProfile::tls_current_ = profile;
  if (profile != nullptr) profile->last_stamp_ = RdCycles();
}

ScopedThreadProfile::~ScopedThreadProfile() {
  if (ThreadProfile::tls_current_ != nullptr) {
    ThreadProfile::tls_current_->Flush();
  }
  ThreadProfile::tls_current_ = prev_;
}

uint64_t ProfileSnapshot::TotalWork() const {
  uint64_t total = 0;
  for (auto v : work) total += v;
  return total;
}

uint64_t ProfileSnapshot::TotalContention() const {
  uint64_t total = 0;
  for (auto v : contention) total += v;
  return total;
}

uint64_t ProfileSnapshot::TotalBlocked() const {
  uint64_t total = 0;
  for (auto v : blocked) total += v;
  return total;
}

uint64_t ProfileSnapshot::TotalCpu() const {
  return TotalWork() + TotalContention();
}

ProfileSnapshot& ProfileSnapshot::operator+=(const ProfileSnapshot& other) {
  for (size_t i = 0; i < kNumComponents; ++i) {
    work[i] += other.work[i];
    contention[i] += other.contention[i];
    blocked[i] += other.blocked[i];
  }
  return *this;
}

ProfileSnapshot ProfileSnapshot::operator-(const ProfileSnapshot& other) const {
  ProfileSnapshot out = *this;
  for (size_t i = 0; i < kNumComponents; ++i) {
    out.work[i] -= other.work[i];
    out.contention[i] -= other.contention[i];
    out.blocked[i] -= other.blocked[i];
  }
  return out;
}

double ProfileSnapshot::WorkFraction(Component c) const {
  const uint64_t cpu = TotalCpu();
  if (cpu == 0) return 0.0;
  return static_cast<double>(work[static_cast<size_t>(c)]) /
         static_cast<double>(cpu);
}

double ProfileSnapshot::ContentionFraction(Component c) const {
  const uint64_t cpu = TotalCpu();
  if (cpu == 0) return 0.0;
  return static_cast<double>(contention[static_cast<size_t>(c)]) /
         static_cast<double>(cpu);
}

std::string ProfileSnapshot::ToString() const {
  std::string out;
  char line[160];
  const uint64_t cpu = TotalCpu();
  std::snprintf(line, sizeof(line), "%-10s %12s %12s %8s %8s\n", "component",
                "work(Mcy)", "cont(Mcy)", "work%", "cont%");
  out += line;
  for (size_t i = 0; i < kNumComponents; ++i) {
    const auto c = static_cast<Component>(i);
    std::snprintf(
        line, sizeof(line), "%-10s %12.1f %12.1f %7.2f%% %7.2f%%\n",
        ComponentName(c), static_cast<double>(work[i]) / 1e6,
        static_cast<double>(contention[i]) / 1e6,
        cpu == 0 ? 0.0 : 100.0 * WorkFraction(c),
        cpu == 0 ? 0.0 : 100.0 * ContentionFraction(c));
    out += line;
  }
  return out;
}

ProfileSnapshot AggregateProfiles(
    const std::vector<const ThreadProfile*>& profiles) {
  ProfileSnapshot total;
  for (const auto* p : profiles) {
    if (p != nullptr) total += p->Snapshot();
  }
  return total;
}

}  // namespace slidb
