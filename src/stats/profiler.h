// Per-thread work/contention profiler.
//
// The paper's methodology (Section 5) measures *work* performed by each
// component of the storage manager and splits it into useful work vs
// contention (latch spinning and short blocking), excluding time blocked on
// I/O or true lock conflicts. slidb reproduces this with a thread-local
// cycle accountant: threads declare the component they are executing in via
// scoped guards, and the instrumented latches attribute contended-acquisition
// cycles to the active component.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/stats/component.h"
#include "src/util/cacheline.h"
#include "src/util/time_util.h"

namespace slidb {

/// Aggregated cycle breakdown, one row per component.
struct ProfileSnapshot {
  std::array<uint64_t, kNumComponents> work{};
  std::array<uint64_t, kNumComponents> contention{};
  std::array<uint64_t, kNumComponents> blocked{};

  uint64_t TotalWork() const;
  uint64_t TotalContention() const;
  uint64_t TotalBlocked() const;
  /// Work + contention (the paper's "CPU time"; blocked time excluded).
  uint64_t TotalCpu() const;

  ProfileSnapshot& operator+=(const ProfileSnapshot& other);
  ProfileSnapshot operator-(const ProfileSnapshot& other) const;

  /// Fraction of CPU time spent in `c` as work / as contention.
  double WorkFraction(Component c) const;
  double ContentionFraction(Component c) const;

  /// Multi-line human-readable table.
  std::string ToString() const;
};

/// Thread-local cycle accountant. Install one per agent thread with
/// ScopedThreadProfile; library code reaches it through Current().
class ThreadProfile {
 public:
  ThreadProfile();
  ~ThreadProfile();

  ThreadProfile(const ThreadProfile&) = delete;
  ThreadProfile& operator=(const ThreadProfile&) = delete;

  /// The calling thread's active profile, or nullptr when profiling is off.
  static ThreadProfile* Current() { return tls_current_; }

  /// Enter/exit a component scope. Prefer ScopedComponent.
  void Enter(Component c) {
    const uint64_t now = RdCycles();
    work_[CurIdx()] += now - last_stamp_;
    last_stamp_ = now;
    stack_[++depth_] = c;
  }

  void Exit() {
    const uint64_t now = RdCycles();
    work_[CurIdx()] += now - last_stamp_;
    last_stamp_ = now;
    --depth_;
  }

  Component current() const { return stack_[depth_]; }

  /// Attribute [start, end) cycles to contention in the current component
  /// (called from latches after a contended acquisition).
  void AttributeContention(uint64_t start, uint64_t end) {
    work_[CurIdx()] += start - last_stamp_;
    contention_[CurIdx()] += end - start;
    last_stamp_ = end;
  }

  /// Attribute [start, end) cycles to blocked time (lock waits, I/O),
  /// excluded from the paper's CPU-time breakdowns.
  void AttributeBlocked(uint64_t start, uint64_t end) {
    work_[CurIdx()] += start - last_stamp_;
    blocked_[CurIdx()] += end - start;
    last_stamp_ = end;
  }

  /// Fold accumulated cycles into a snapshot and zero the accumulators.
  void Flush();

  ProfileSnapshot Snapshot() const;

 private:
  friend class ScopedThreadProfile;

  size_t CurIdx() const { return static_cast<size_t>(stack_[depth_]); }

  static thread_local ThreadProfile* tls_current_;

  static constexpr int kMaxDepth = 15;
  std::array<Component, kMaxDepth + 1> stack_;
  int depth_;
  uint64_t last_stamp_;
  std::array<uint64_t, kNumComponents> work_{};
  std::array<uint64_t, kNumComponents> contention_{};
  std::array<uint64_t, kNumComponents> blocked_{};
};

/// RAII: install a ThreadProfile as the calling thread's accountant.
class ScopedThreadProfile {
 public:
  explicit ScopedThreadProfile(ThreadProfile* profile);
  ~ScopedThreadProfile();

 private:
  ThreadProfile* prev_;
};

/// RAII component scope; nests (inner scopes shadow outer ones).
class ScopedComponent {
 public:
  explicit ScopedComponent(Component c) : profile_(ThreadProfile::Current()) {
    if (profile_ != nullptr) profile_->Enter(c);
  }
  ~ScopedComponent() {
    if (profile_ != nullptr) profile_->Exit();
  }

  ScopedComponent(const ScopedComponent&) = delete;
  ScopedComponent& operator=(const ScopedComponent&) = delete;

 private:
  ThreadProfile* profile_;
};

/// Aggregates snapshots across a set of thread profiles (the driver owns the
/// profiles; no global registry so tests stay hermetic).
ProfileSnapshot AggregateProfiles(
    const std::vector<const ThreadProfile*>& profiles);

}  // namespace slidb
