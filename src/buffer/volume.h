// Volume: the in-memory backing store standing in for the disk array.
// The paper stores the database on an in-memory filesystem and charges an
// artificial per-I/O latency; slidb does the same — the volume itself is
// plain memory, and the buffer pool charges the configured delay around
// volume reads/writes.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/buffer/page.h"
#include "src/util/latch.h"
#include "src/util/status.h"

namespace slidb {

class Volume {
 public:
  Volume() = default;
  Volume(const Volume&) = delete;
  Volume& operator=(const Volume&) = delete;

  /// Create a new file; returns its id.
  uint32_t CreateFile();

  /// Extend `file_id` by one zeroed page; returns the new page number.
  uint64_t AllocatePage(uint32_t file_id);

  uint64_t PageCount(uint32_t file_id);

  /// Copy a page out of / into the volume. The caller (buffer pool) charges
  /// any simulated I/O latency.
  Status ReadPage(const PageId& id, Page* out);
  Status WritePage(const PageId& id, const Page& in);

 private:
  struct File {
    SpinLatch latch;
    std::vector<std::unique_ptr<Page>> pages;
  };

  SpinLatch files_latch_;
  std::vector<std::unique_ptr<File>> files_;
};

}  // namespace slidb
