#include "src/buffer/buffer_pool.h"

#include <bit>
#include <cassert>

#include "src/stats/profiler.h"
#include "src/util/time_util.h"

namespace slidb {

void PageGuard::MarkDirty() {
  if (pool_ != nullptr) pool_->frames_[frame_idx_].dirty = true;
}

void PageGuard::Release() {
  if (pool_ != nullptr) {
    pool_->Unfix(frame_idx_, exclusive_);
    pool_ = nullptr;
    page_ = nullptr;
  }
}

BufferPool::BufferPool(Volume* volume, BufferPoolOptions options)
    : volume_(volume), options_(options) {
  num_frames_ = options_.num_frames < 8 ? 8 : options_.num_frames;
  frames_ = std::make_unique<Frame[]>(num_frames_);
  pages_ = std::make_unique<Page[]>(num_frames_);
  size_t shards = std::bit_ceil(options_.table_shards < 1
                                    ? size_t{1}
                                    : options_.table_shards);
  shards_ = std::make_unique<CacheAligned<Shard>[]>(shards);
  shard_mask_ = shards - 1;
}

BufferPool::~BufferPool() { FlushAll(); }

void BufferPool::ChargeIoDelay() {
  if (options_.simulated_io_delay_us == 0) return;
  ScopedComponent comp(Component::kBuffer);
  const uint64_t t0 = RdCycles();
  SpinForNanos(options_.simulated_io_delay_us * 1000);
  if (ThreadProfile* p = ThreadProfile::Current()) {
    p->AttributeBlocked(t0, RdCycles());
  }
}

Status BufferPool::FixPage(const PageId& id, bool exclusive, PageGuard* out) {
  ScopedComponent comp(Component::kBuffer);
  fixes_.fetch_add(1, std::memory_order_relaxed);

  for (;;) {
    // Fast path: present in the shard map.
    {
      Shard& shard = ShardFor(id);
      SpinLatchGuard g(shard.latch);
      auto it = shard.map.find(id);
      if (it != shard.map.end()) {
        Frame& f = frames_[it->second];
        f.pins.fetch_add(1, std::memory_order_acq_rel);
        f.ref.store(true, std::memory_order_relaxed);
        const size_t idx = it->second;
        g.Unlock();
        if (exclusive) {
          f.content_latch.AcquireExclusive();
        } else {
          f.content_latch.AcquireShared();
        }
        *out = PageGuard(this, idx, &pages_[idx], exclusive);
        return Status::OK();
      }
    }

    // Miss path: bring the page in. One allocator at a time.
    misses_.fetch_add(1, std::memory_order_relaxed);
    SpinLatchGuard alloc(alloc_latch_);
    // Re-check: another thread may have brought it in while we waited.
    {
      Shard& shard = ShardFor(id);
      SpinLatchGuard g(shard.latch);
      if (shard.map.contains(id)) continue;  // retry fast path
    }

    const size_t idx = AllocFrame();
    Frame& f = frames_[idx];

    // Read the page from the volume, paying the simulated seek.
    ChargeIoDelay();
    const Status st = volume_->ReadPage(id, &pages_[idx]);
    if (!st.ok()) {
      // Return the frame as free (valid=false, not in any map).
      return st;
    }

    f.id = id;
    f.dirty = false;
    f.valid = true;
    f.pins.store(1, std::memory_order_release);
    f.ref.store(true, std::memory_order_relaxed);
    {
      Shard& shard = ShardFor(id);
      SpinLatchGuard g(shard.latch);
      shard.map.emplace(id, idx);
    }
    alloc.Unlock();

    if (exclusive) {
      f.content_latch.AcquireExclusive();
    } else {
      f.content_latch.AcquireShared();
    }
    *out = PageGuard(this, idx, &pages_[idx], exclusive);
    return Status::OK();
  }
}

size_t BufferPool::AllocFrame() {
  // Caller holds alloc_latch_.
  if (frames_used_ < num_frames_) {
    return frames_used_++;
  }
  // Clock sweep for an unpinned victim.
  for (size_t scanned = 0; scanned < num_frames_ * 3; ++scanned) {
    const size_t idx = clock_hand_;
    clock_hand_ = (clock_hand_ + 1) % num_frames_;
    Frame& f = frames_[idx];
    if (f.pins.load(std::memory_order_acquire) != 0) continue;
    if (f.ref.exchange(false, std::memory_order_acq_rel)) continue;

    // Candidate: remove from its shard so no new pins can arrive, then
    // re-verify the pin count (a pin could have landed before removal).
    Shard& shard = ShardFor(f.id);
    {
      SpinLatchGuard g(shard.latch);
      if (f.pins.load(std::memory_order_acquire) != 0) continue;
      if (!f.valid) continue;
      shard.map.erase(f.id);
      f.valid = false;
    }
    evictions_.fetch_add(1, std::memory_order_relaxed);
    if (f.dirty) {
      writebacks_.fetch_add(1, std::memory_order_relaxed);
      ChargeIoDelay();
      volume_->WritePage(f.id, pages_[idx]);
      f.dirty = false;
    }
    return idx;
  }
  // Every frame pinned: pathological configuration (pool far too small).
  // Spin-wait for a pin to drop rather than deadlocking.
  for (;;) {
    for (size_t idx = 0; idx < num_frames_; ++idx) {
      Frame& f = frames_[idx];
      if (f.pins.load(std::memory_order_acquire) != 0) continue;
      Shard& shard = ShardFor(f.id);
      SpinLatchGuard g(shard.latch);
      if (f.pins.load(std::memory_order_acquire) != 0 || !f.valid) continue;
      shard.map.erase(f.id);
      f.valid = false;
      g.Unlock();
      evictions_.fetch_add(1, std::memory_order_relaxed);
      if (f.dirty) {
        writebacks_.fetch_add(1, std::memory_order_relaxed);
        ChargeIoDelay();
        volume_->WritePage(f.id, pages_[idx]);
        f.dirty = false;
      }
      return idx;
    }
  }
}

Status BufferPool::NewPage(uint32_t file_id, PageId* id, PageGuard* out) {
  const uint64_t page_no = volume_->AllocatePage(file_id);
  id->file_id = file_id;
  id->page_no = page_no;
  return FixPage(*id, /*exclusive=*/true, out);
}

void BufferPool::Unfix(size_t frame_idx, bool exclusive) {
  Frame& f = frames_[frame_idx];
  if (exclusive) {
    f.content_latch.ReleaseExclusive();
  } else {
    f.content_latch.ReleaseShared();
  }
  f.pins.fetch_sub(1, std::memory_order_acq_rel);
}

void BufferPool::FlushAll() {
  SpinLatchGuard alloc(alloc_latch_);
  for (size_t idx = 0; idx < frames_used_; ++idx) {
    Frame& f = frames_[idx];
    if (!f.valid || !f.dirty) continue;
    f.content_latch.AcquireShared();
    volume_->WritePage(f.id, pages_[idx]);
    f.dirty = false;
    f.content_latch.ReleaseShared();
    writebacks_.fetch_add(1, std::memory_order_relaxed);
  }
}

BufferPoolStats BufferPool::Stats() const {
  BufferPoolStats s;
  s.fixes = fixes_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.writebacks = writebacks_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace slidb
