// Buffer pool: fixed frame set over the Volume with clock eviction, pin
// counts, per-frame reader/writer content latches, and the paper's
// simulated per-I/O latency charged on misses and write-backs.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/buffer/page.h"
#include "src/buffer/volume.h"
#include "src/util/cacheline.h"
#include "src/util/latch.h"
#include "src/util/status.h"

namespace slidb {

struct BufferPoolOptions {
  size_t num_frames = 1u << 16;  ///< 64k frames = 512 MB default
  /// Charged once per volume read (miss) and once per write-back. The paper
  /// uses 6 ms to emulate a seek-bound disk array; default 0 keeps unit
  /// tests fast.
  uint64_t simulated_io_delay_us = 0;
  size_t table_shards = 64;
};

struct BufferPoolStats {
  uint64_t fixes = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t writebacks = 0;
};

class BufferPool;

/// RAII handle to a fixed page. Movable, not copyable. Releasing unfixes
/// (unpins + releases the content latch).
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, size_t frame_idx, Page* page, bool exclusive)
      : pool_(pool), frame_idx_(frame_idx), page_(page), exclusive_(exclusive) {}
  ~PageGuard() { Release(); }

  PageGuard(PageGuard&& o) noexcept { *this = std::move(o); }
  PageGuard& operator=(PageGuard&& o) noexcept {
    Release();
    pool_ = o.pool_;
    frame_idx_ = o.frame_idx_;
    page_ = o.page_;
    exclusive_ = o.exclusive_;
    o.pool_ = nullptr;
    o.page_ = nullptr;
    return *this;
  }
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;

  bool valid() const { return page_ != nullptr; }
  Page* page() { return page_; }
  const Page* page() const { return page_; }

  /// Mark the page dirty (caller must hold it exclusively).
  void MarkDirty();

  void Release();

 private:
  BufferPool* pool_ = nullptr;
  size_t frame_idx_ = 0;
  Page* page_ = nullptr;
  bool exclusive_ = false;
};

class BufferPool {
 public:
  BufferPool(Volume* volume, BufferPoolOptions options = {});
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Fix (pin + latch) a page. `exclusive` takes the content latch in write
  /// mode. Returns an invalid guard on error (bad page id).
  Status FixPage(const PageId& id, bool exclusive, PageGuard* out);

  /// Allocate a fresh page in `file_id` (via the volume), fix it
  /// exclusively and return both the id and the guard.
  Status NewPage(uint32_t file_id, PageId* id, PageGuard* out);

  /// Flush all dirty pages to the volume (test/shutdown aid).
  void FlushAll();

  BufferPoolStats Stats() const;
  Volume* volume() { return volume_; }

 private:
  friend class PageGuard;

  struct Frame {
    PageId id;
    RwLatch content_latch;
    std::atomic<uint32_t> pins{0};
    std::atomic<bool> ref{false};
    bool valid = false;  // shard-latch protected
    bool dirty = false;  // content-latch protected
  };

  struct Shard {
    SpinLatch latch;
    std::unordered_map<PageId, size_t> map;  // PageId -> frame index
  };

  Shard& ShardFor(const PageId& id) {
    return *shards_[id.Hash() & shard_mask_];
  }

  void Unfix(size_t frame_idx, bool exclusive);

  /// Find a victim frame with pins == 0, remove it from its shard, write it
  /// back if dirty. Returns frame index. Caller holds alloc_latch_.
  size_t AllocFrame();

  void ChargeIoDelay();

  Volume* volume_;
  BufferPoolOptions options_;

  std::unique_ptr<Frame[]> frames_;
  std::unique_ptr<Page[]> pages_;
  size_t num_frames_;

  std::unique_ptr<CacheAligned<Shard>[]> shards_;
  size_t shard_mask_;

  SpinLatch alloc_latch_;
  size_t frames_used_ = 0;  // alloc-latch protected
  size_t clock_hand_ = 0;   // alloc-latch protected

  std::atomic<uint64_t> fixes_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> writebacks_{0};
};

}  // namespace slidb
