// Fixed-size pages and page identifiers.
#pragma once

#include <cstdint>
#include <cstring>
#include <functional>

namespace slidb {

inline constexpr size_t kPageSize = 8192;

/// Identifies a page: (file, page number). Files correspond to heap files /
/// physical table storage.
struct PageId {
  uint32_t file_id = 0;
  uint64_t page_no = 0;

  bool operator==(const PageId& o) const {
    return file_id == o.file_id && page_no == o.page_no;
  }

  uint64_t Hash() const {
    uint64_t h = (static_cast<uint64_t>(file_id) << 48) ^ page_no;
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return h;
  }
};

/// Raw page bytes. Interpreted by the storage layer (slotted pages, index
/// nodes); the buffer pool treats pages as opaque.
struct alignas(64) Page {
  uint8_t bytes[kPageSize];

  void Zero() { std::memset(bytes, 0, sizeof(bytes)); }
};

}  // namespace slidb

template <>
struct std::hash<slidb::PageId> {
  size_t operator()(const slidb::PageId& id) const noexcept {
    return static_cast<size_t>(id.Hash());
  }
};
