#include "src/buffer/volume.h"

namespace slidb {

uint32_t Volume::CreateFile() {
  SpinLatchGuard g(files_latch_);
  files_.push_back(std::make_unique<File>());
  return static_cast<uint32_t>(files_.size() - 1);
}

uint64_t Volume::AllocatePage(uint32_t file_id) {
  File* f;
  {
    SpinLatchGuard g(files_latch_);
    f = files_.at(file_id).get();
  }
  SpinLatchGuard g(f->latch);
  auto page = std::make_unique<Page>();
  page->Zero();
  f->pages.push_back(std::move(page));
  return f->pages.size() - 1;
}

uint64_t Volume::PageCount(uint32_t file_id) {
  File* f;
  {
    SpinLatchGuard g(files_latch_);
    if (file_id >= files_.size()) return 0;
    f = files_[file_id].get();
  }
  SpinLatchGuard g(f->latch);
  return f->pages.size();
}

Status Volume::ReadPage(const PageId& id, Page* out) {
  File* f;
  {
    SpinLatchGuard g(files_latch_);
    if (id.file_id >= files_.size()) {
      return Status::InvalidArgument("bad file id");
    }
    f = files_[id.file_id].get();
  }
  Page* src;
  {
    SpinLatchGuard g(f->latch);
    if (id.page_no >= f->pages.size()) {
      return Status::InvalidArgument("bad page no");
    }
    src = f->pages[id.page_no].get();
  }
  // Page content races are prevented by buffer-pool frame latches; the
  // volume only needs the directory lookups above to be synchronized.
  std::memcpy(out->bytes, src->bytes, kPageSize);
  return Status::OK();
}

Status Volume::WritePage(const PageId& id, const Page& in) {
  File* f;
  {
    SpinLatchGuard g(files_latch_);
    if (id.file_id >= files_.size()) {
      return Status::InvalidArgument("bad file id");
    }
    f = files_[id.file_id].get();
  }
  Page* dst;
  {
    SpinLatchGuard g(f->latch);
    if (id.page_no >= f->pages.size()) {
      return Status::InvalidArgument("bad page no");
    }
    dst = f->pages[id.page_no].get();
  }
  std::memcpy(dst->bytes, in.bytes, kPageSize);
  return Status::OK();
}

}  // namespace slidb
