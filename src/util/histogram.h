// Log-bucketed latency histogram, one per agent thread, merged at report time.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace slidb {

/// Latency histogram with power-of-two microsecond-scale buckets.
/// Thread-compatible (one writer); Merge() combines per-thread instances.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 48;

  Histogram() { Reset(); }

  void Reset();

  /// Record one sample (any unit; callers use nanoseconds).
  void Add(uint64_t value);

  void Merge(const Histogram& other);

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double Mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  /// Approximate quantile (q in [0,1]) using bucket interpolation.
  uint64_t Percentile(double q) const;

  /// One-line summary: count / mean / p50 / p95 / p99 / max.
  std::string ToString(double scale = 1.0, const char* unit = "ns") const;

 private:
  static size_t BucketFor(uint64_t value);

  std::array<uint64_t, kNumBuckets> buckets_;
  uint64_t count_;
  uint64_t sum_;
  uint64_t min_;
  uint64_t max_;
};

}  // namespace slidb
