#include "src/util/crc32c.h"

#include <cstring>

namespace slidb {

namespace {

// Four 256-entry tables (slicing-by-4), generated once at load. Table 0 is
// the classic byte-at-a-time table; table k folds a zero byte k positions
// ahead so four input bytes can be consumed per iteration.
struct Tables {
  uint32_t t[4][256];

  Tables() {
    constexpr uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli 0x1EDC6F41
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1) ? (c >> 1) ^ kPoly : c >> 1;
      }
      t[0][i] = c;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xff];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xff];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xff];
    }
  }
};

const Tables& tables() {
  static const Tables tables;
  return tables;
}

uint32_t SoftwareCrc(uint32_t crc, const uint8_t* p, size_t len) {
  const Tables& tb = tables();
  uint32_t c = ~crc;
  while (len >= 4) {
    c ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
    c = tb.t[3][c & 0xff] ^ tb.t[2][(c >> 8) & 0xff] ^
        tb.t[1][(c >> 16) & 0xff] ^ tb.t[0][c >> 24];
    p += 4;
    len -= 4;
  }
  while (len-- > 0) {
    c = (c >> 8) ^ tb.t[0][(c ^ *p++) & 0xff];
  }
  return ~c;
}

#if defined(__x86_64__) && defined(__GNUC__)
// SSE4.2 CRC32 instruction computes exactly this polynomial; the record
// seal sits on the log append hot path, so the ~10x win matters. Runtime
// dispatch — the binary is built without -msse4.2 and must still run on
// CPUs that lack it.
__attribute__((target("sse4.2"))) uint32_t HardwareCrc(uint32_t crc,
                                                       const uint8_t* p,
                                                       size_t len) {
  uint64_t c = static_cast<uint32_t>(~crc);
  while (len >= 8) {
    uint64_t chunk;
    std::memcpy(&chunk, p, sizeof(chunk));
    c = __builtin_ia32_crc32di(c, chunk);
    p += 8;
    len -= 8;
  }
  uint32_t c32 = static_cast<uint32_t>(c);
  while (len-- > 0) {
    c32 = __builtin_ia32_crc32qi(c32, *p++);
  }
  return ~c32;
}

// Copy + checksum in one pass: each 8-byte chunk is loaded once, folded
// into the CRC, and stored to the destination while still in registers.
__attribute__((target("sse4.2"))) uint32_t HardwareCrcCopy(uint32_t crc,
                                                           uint8_t* dst,
                                                           const uint8_t* src,
                                                           size_t len) {
  uint64_t c = static_cast<uint32_t>(~crc);
  while (len >= 8) {
    uint64_t chunk;
    std::memcpy(&chunk, src, sizeof(chunk));
    c = __builtin_ia32_crc32di(c, chunk);
    std::memcpy(dst, &chunk, sizeof(chunk));
    src += 8;
    dst += 8;
    len -= 8;
  }
  uint32_t c32 = static_cast<uint32_t>(c);
  while (len-- > 0) {
    const uint8_t b = *src++;
    c32 = __builtin_ia32_crc32qi(c32, b);
    *dst++ = b;
  }
  return ~c32;
}

bool HaveHardwareCrc() {
  static const bool have = __builtin_cpu_supports("sse4.2");
  return have;
}
#else
bool HaveHardwareCrc() { return false; }
uint32_t HardwareCrc(uint32_t, const uint8_t*, size_t) { return 0; }
uint32_t HardwareCrcCopy(uint32_t, uint8_t*, const uint8_t*, size_t) {
  return 0;
}
#endif

}  // namespace

uint32_t Crc32c(uint32_t crc, const void* data, size_t len) {
  const auto* p = static_cast<const uint8_t*>(data);
  if (HaveHardwareCrc()) return HardwareCrc(crc, p, len);
  return SoftwareCrc(crc, p, len);
}

uint32_t Crc32cCopy(uint32_t crc, void* dst, const void* src, size_t len) {
  auto* d = static_cast<uint8_t*>(dst);
  const auto* s = static_cast<const uint8_t*>(src);
  if (HaveHardwareCrc()) return HardwareCrcCopy(crc, d, s, len);
  // Software fallback: copy first, then checksum the destination while it
  // is still cache-hot — one logical pass over cold input bytes.
  std::memcpy(d, s, len);
  return SoftwareCrc(crc, d, len);
}

}  // namespace slidb
