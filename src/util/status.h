// Status: lightweight error propagation used across slidb (no exceptions on
// hot paths, in the style of the RocksDB / Google C++ guides).
#pragma once

#include <cstdint>
#include <string>
#include <utility>

namespace slidb {

/// Result of a slidb operation. Cheap to copy when OK (no allocation).
class Status {
 public:
  enum class Code : uint8_t {
    kOk = 0,
    kNotFound,        ///< key / row / lock absent
    kKeyExists,       ///< unique-index violation
    kDeadlock,        ///< transaction chosen as deadlock victim
    kAborted,         ///< user- or logic-initiated rollback
    kTimedOut,        ///< lock or latch wait exceeded its budget
    kBusy,            ///< resource temporarily unavailable
    kInvalidArgument, ///< caller error
    kCorruption,      ///< internal invariant violated on disk/in memory
    kNotSupported,    ///< feature intentionally unimplemented
    kIoError,         ///< simulated or real I/O failure
    kOverloaded,      ///< shed by admission control / wait-depth limiting
  };

  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg = "") {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status KeyExists(std::string msg = "") {
    return Status(Code::kKeyExists, std::move(msg));
  }
  static Status Deadlock(std::string msg = "") {
    return Status(Code::kDeadlock, std::move(msg));
  }
  static Status Aborted(std::string msg = "") {
    return Status(Code::kAborted, std::move(msg));
  }
  static Status TimedOut(std::string msg = "") {
    return Status(Code::kTimedOut, std::move(msg));
  }
  static Status Busy(std::string msg = "") {
    return Status(Code::kBusy, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = "") {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status Corruption(std::string msg = "") {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg = "") {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status IoError(std::string msg = "") {
    return Status(Code::kIoError, std::move(msg));
  }
  static Status Overloaded(std::string msg = "") {
    return Status(Code::kOverloaded, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsKeyExists() const { return code_ == Code::kKeyExists; }
  bool IsDeadlock() const { return code_ == Code::kDeadlock; }
  bool IsAborted() const { return code_ == Code::kAborted; }
  bool IsTimedOut() const { return code_ == Code::kTimedOut; }
  bool IsBusy() const { return code_ == Code::kBusy; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsIoError() const { return code_ == Code::kIoError; }
  bool IsOverloaded() const { return code_ == Code::kOverloaded; }

  /// True for any status that must abort the enclosing transaction
  /// (deadlock victim, explicit abort, lock timeout, overload shed).
  bool ForcesAbort() const {
    return code_ == Code::kDeadlock || code_ == Code::kAborted ||
           code_ == Code::kTimedOut || code_ == Code::kOverloaded;
  }

  /// True when the failure is transient and the transaction can be re-run
  /// as-is: deadlock victim, lock/deadline timeout, or an overload shed.
  /// User aborts (kAborted) are a workload decision and caller errors
  /// (kInvalidArgument etc.) would fail identically on retry — neither is
  /// retryable.
  bool retryable() const {
    return code_ == Code::kDeadlock || code_ == Code::kTimedOut ||
           code_ == Code::kOverloaded;
  }

  Code code() const { return code_; }
  const std::string& message() const { return msg_; }

  std::string ToString() const {
    if (ok()) return "OK";
    std::string out = CodeName(code_);
    if (!msg_.empty()) {
      out += ": ";
      out += msg_;
    }
    return out;
  }

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  Status(Code code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static const char* CodeName(Code c) {
    switch (c) {
      case Code::kOk: return "OK";
      case Code::kNotFound: return "NotFound";
      case Code::kKeyExists: return "KeyExists";
      case Code::kDeadlock: return "Deadlock";
      case Code::kAborted: return "Aborted";
      case Code::kTimedOut: return "TimedOut";
      case Code::kBusy: return "Busy";
      case Code::kInvalidArgument: return "InvalidArgument";
      case Code::kCorruption: return "Corruption";
      case Code::kNotSupported: return "NotSupported";
      case Code::kIoError: return "IoError";
      case Code::kOverloaded: return "Overloaded";
    }
    return "Unknown";
  }

  Code code_;
  std::string msg_;
};

/// Early-return helper: propagate a non-OK status to the caller.
#define SLIDB_RETURN_NOT_OK(expr)              \
  do {                                         \
    ::slidb::Status _st = (expr);              \
    if (!_st.ok()) return _st;                 \
  } while (0)

}  // namespace slidb
