// Cache-line alignment helpers: false sharing between agent threads is one of
// the effects the paper's contention analysis depends on, so shared counters
// and latches are always line-aligned.
#pragma once

#include <cstddef>
#include <new>

namespace slidb {

/// Size all contended structures are padded to.
inline constexpr size_t kCacheLineSize = 64;

/// Wraps T so each instance occupies (at least) its own cache line.
template <typename T>
struct alignas(kCacheLineSize) CacheAligned {
  T value{};

  T* operator->() { return &value; }
  const T* operator->() const { return &value; }
  T& operator*() { return value; }
  const T& operator*() const { return value; }
};

}  // namespace slidb
