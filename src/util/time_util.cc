#include "src/util/time_util.h"

#include <atomic>

namespace slidb {

namespace {

double CalibrateCyclesPerNano() {
  // Sample rdtsc against the steady clock over a short window. 2 ms is long
  // enough for < 1% error and short enough to not slow process start-up.
  const uint64_t start_ns = NowNanos();
  const uint64_t start_cy = RdCycles();
  uint64_t end_ns = start_ns;
  while (end_ns - start_ns < 2'000'000) {
    end_ns = NowNanos();
  }
  const uint64_t end_cy = RdCycles();
  const double ns = static_cast<double>(end_ns - start_ns);
  const double cy = static_cast<double>(end_cy - start_cy);
  double rate = cy / ns;
  if (rate <= 0.0) rate = 1.0;
  return rate;
}

}  // namespace

double CyclesPerNano() {
  static const double rate = CalibrateCyclesPerNano();
  return rate;
}

void SpinForNanos(uint64_t nanos) {
  const uint64_t deadline = NowNanos() + nanos;
  while (NowNanos() < deadline) {
    // Keep the pipeline busy without hammering the clock too hard.
    for (int i = 0; i < 32; ++i) {
#if defined(__x86_64__) || defined(__i386__)
      __builtin_ia32_pause();
#else
      std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
    }
  }
}

}  // namespace slidb
