#include "src/util/latch.h"

#include <sched.h>

namespace slidb {

namespace latch_internal {

void OsYield() { sched_yield(); }

}  // namespace latch_internal

namespace {

// Spin this many TTAS rounds before yielding to the OS. On oversubscribed
// machines (more agent threads than cores — our stand-in for high context
// counts) yielding lets the latch holder run; pure spinning would livelock.
constexpr int kSpinsBeforeYield = 1024;

}  // namespace

void SpinLatch::SlowAcquire() {
  int spins = 0;
  for (;;) {
    // Test phase: wait until the word looks free before attempting the
    // exchange, keeping the cache line in shared state while we spin.
    while (word_.load(std::memory_order_relaxed) != 0) {
      latch_internal::CpuRelax();
      if (++spins >= kSpinsBeforeYield) {
        latch_internal::OsYield();
        spins = 0;
      }
    }
    if (TryAcquire()) return;
  }
}

uint64_t OptLatch::AwaitUnlocked() const {
  const uint64_t start = RdCycles();
  int spins = 0;
  uint64_t v;
  while ((v = word_.load(std::memory_order_acquire)) & kLockedBit) {
    latch_internal::CpuRelax();
    if (++spins >= kSpinsBeforeYield) {
      latch_internal::OsYield();
      spins = 0;
    }
  }
  if (ThreadProfile* p = ThreadProfile::Current()) {
    p->AttributeContention(start, RdCycles());
  }
  return v;
}

bool RwLatch::TryAcquireShared() {
  int32_t v = state_.load(std::memory_order_relaxed);
  while (v >= 0) {
    if (state_.compare_exchange_weak(v, v + 1, std::memory_order_acquire)) {
      return true;
    }
  }
  return false;
}

bool RwLatch::TryAcquireExclusive() {
  int32_t expected = 0;
  return state_.compare_exchange_strong(expected, -1,
                                        std::memory_order_acquire);
}

bool RwLatch::AcquireShared() {
  if (TryAcquireShared()) return false;
  const uint64_t start = RdCycles();
  int spins = 0;
  for (;;) {
    while (state_.load(std::memory_order_relaxed) < 0) {
      latch_internal::CpuRelax();
      if (++spins >= 1024) {
        latch_internal::OsYield();
        spins = 0;
      }
    }
    if (TryAcquireShared()) break;
  }
  const uint64_t end = RdCycles();
  if (ThreadProfile* p = ThreadProfile::Current()) {
    p->AttributeContention(start, end);
  }
  return true;
}

bool RwLatch::AcquireExclusive() {
  if (TryAcquireExclusive()) return false;
  const uint64_t start = RdCycles();
  int spins = 0;
  for (;;) {
    while (state_.load(std::memory_order_relaxed) != 0) {
      latch_internal::CpuRelax();
      if (++spins >= 1024) {
        latch_internal::OsYield();
        spins = 0;
      }
    }
    if (TryAcquireExclusive()) break;
  }
  const uint64_t end = RdCycles();
  if (ThreadProfile* p = ThreadProfile::Current()) {
    p->AttributeContention(start, end);
  }
  return true;
}

}  // namespace slidb
