// Fast per-thread random number generation plus the distribution helpers the
// TPC and TM1 workload generators need (uniform, NURand, zipf, strings).
#pragma once

#include <cstdint>
#include <string>

namespace slidb {

/// xoshiro256** — fast, high-quality, and deterministic given a seed, so
/// workload runs are reproducible. Not thread-safe; use one per thread.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    // SplitMix64 expansion of the seed into the four lanes.
    uint64_t x = seed;
    for (auto& lane : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      lane = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  uint64_t Uniform(uint64_t lo, uint64_t hi) {
    return lo + Next() % (hi - lo + 1);
  }

  /// Uniform integer in [lo, hi] inclusive, as int64.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Next() % static_cast<uint64_t>(hi - lo + 1));
  }

  /// True with probability p (0..1).
  bool Bernoulli(double p) {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0) < p;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// TPC-C NURand(A, x, y): non-uniform random over [x, y].
  uint64_t NuRand(uint64_t a, uint64_t x, uint64_t y, uint64_t c = 0) {
    return (((Uniform(0, a) | Uniform(x, y)) + c) % (y - x + 1)) + x;
  }

  /// Random alphanumeric string with length in [min_len, max_len].
  std::string AlphaString(size_t min_len, size_t max_len) {
    static constexpr char kChars[] =
        "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";
    const size_t len = min_len + Next() % (max_len - min_len + 1);
    std::string out(len, '\0');
    for (auto& ch : out) ch = kChars[Next() % (sizeof(kChars) - 1)];
    return out;
  }

  /// Random numeric string with length in [min_len, max_len].
  std::string DigitString(size_t min_len, size_t max_len) {
    const size_t len = min_len + Next() % (max_len - min_len + 1);
    std::string out(len, '\0');
    for (auto& ch : out) ch = static_cast<char>('0' + Next() % 10);
    return out;
  }

 private:
  static uint64_t Rotl(uint64_t v, int k) { return (v << k) | (v >> (64 - k)); }

  uint64_t s_[4];
};

/// Zipf-distributed generator over [1, n] with exponent theta, using the
/// Gray et al. rejection-free method. Used by synthetic hot-spot workloads.
///
/// theta is clamped away from 1.0 by a small epsilon: the quantile formula's
/// alpha = 1/(1-theta) is singular at exactly 1 (the harmonic case), and for
/// any practical n the clamped distribution is statistically
/// indistinguishable from it. theta > 1 is supported (eta and alpha both go
/// negative and the formula stays a valid quantile map).
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta);

  uint64_t Next(Rng& rng) const;

  uint64_t n() const { return n_; }
  /// The effective (possibly epsilon-clamped) exponent.
  double theta() const { return theta_; }

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2_;
  double half_pow_theta_;  ///< 0.5^theta, hoisted out of Next()
};

/// Zipf-distributed ranks pushed through a deterministic bijective
/// permutation of [1, n], so the popular keys land scattered across the key
/// space instead of being the adjacent ids 1, 2, 3, ... co-located on one
/// B+-tree leaf — a plain ZipfGenerator over primary keys conflates
/// page/latch contention with lock contention. Same idea as the
/// FNV-scrambled Zipf generators in RDMA locking harnesses, but implemented
/// as a true bijection (hash-based Feistel rounds + cycle walking) instead
/// of hash-mod-n, so every key in [1, n] is hit by exactly one rank.
class ScrambledZipfGenerator {
 public:
  ScrambledZipfGenerator(uint64_t n, double theta, uint64_t salt = 0x51db);

  /// Draw a key in [1, n]; key popularity follows Zipf(theta) but the
  /// popular keys are spread pseudo-randomly over the domain.
  uint64_t Next(Rng& rng) const { return Scramble(zipf_.Next(rng)); }

  /// The rank -> key bijection on [1, n] (rank 1 = hottest key).
  uint64_t Scramble(uint64_t rank) const;

  uint64_t n() const { return zipf_.n(); }
  const ZipfGenerator& zipf() const { return zipf_; }

 private:
  /// One Feistel pass: a bijection on [0, 2^(2*half_bits)).
  uint64_t Permute(uint64_t x) const;

  ZipfGenerator zipf_;
  uint64_t salt_;
  uint32_t half_bits_;   ///< bits per Feistel half; domain = 2^(2*half_bits)
  uint64_t half_mask_;
};

}  // namespace slidb
