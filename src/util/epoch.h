// Epoch-based deferred reclamation for optimistically-read structures.
//
// Optimistic readers (util/latch.h OptLatch) hold no latch while inside a
// node, so a writer that unlinks the node cannot free it immediately: a
// reader that loaded the pointer before the unlink may still be
// dereferencing the memory (it will fail version validation and restart,
// but only after touching the bytes). Writers therefore Retire() unlinked
// nodes; the manager frees a retiree only once every thread active at
// retirement time has since left its read-side critical section.
//
// Protocol: each operation on a protected structure runs inside an
// EpochManager::Guard, which announces the thread's entry epoch in a
// per-thread slot. Retire() tags the node with the then-current global
// epoch and advances it; a retiree is freed when every announced slot
// epoch is strictly newer than the tag. Announcing a newer epoch means the
// thread's guard began by reading a global-epoch value published *after*
// the unlink (the retire-time fetch_add orders them), so that thread can
// no longer hold a path to the node.
//
// Guards nest (a scan callback may re-enter another tree) and cost two
// uncontended writes to the thread's own cache line — nothing shared — so
// the read path stays write-free on shared memory.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "src/util/cacheline.h"
#include "src/util/latch.h"

namespace slidb {

class EpochManager {
 public:
  /// Hard cap on concurrently-registered threads (slot registry size).
  /// Exceeding it aborts with a diagnostic; agent counts in this codebase
  /// are gated on hardware_concurrency() and stay far below.
  static constexpr size_t kMaxThreads = 256;

  /// Free a retiree once at least this many are pending (amortizes the
  /// slot scan).
  static constexpr size_t kReclaimBatch = 32;

  EpochManager();
  /// Frees everything still pending. Callers must guarantee no guard is
  /// active and no further Retire() will run (structure teardown time).
  ~EpochManager();

  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  /// RAII read-side critical section. Cheap, nestable, thread-safe.
  class Guard {
   public:
    explicit Guard(EpochManager& mgr) : mgr_(&mgr), slot_(ThreadSlot()) {
      mgr_->Enter(slot_);
    }
    ~Guard() { mgr_->Exit(slot_); }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    EpochManager* mgr_;
    size_t slot_;
  };

  /// Defer `deleter(ptr)` until all read-side critical sections that could
  /// have observed `ptr` have exited. Call *after* unlinking `ptr` from the
  /// structure. May reclaim other pending retirees inline.
  void Retire(void* ptr, void (*deleter)(void*));

  /// Free every pending retiree whose grace period has elapsed. Safe to
  /// call concurrently with guards and retires. Returns the number freed.
  size_t ReclaimSome();

  /// Retirees not yet freed (approximate under concurrency; exact when
  /// quiesced).
  size_t pending() const { return pending_.load(std::memory_order_acquire); }
  uint64_t total_retired() const {
    return total_retired_.load(std::memory_order_relaxed);
  }
  uint64_t total_freed() const {
    return total_freed_.load(std::memory_order_relaxed);
  }

  /// Process-wide manager shared by all B-trees: one epoch domain, one
  /// slot announcement per thread per operation regardless of tree count.
  static EpochManager& Global();

  /// Stable per-thread slot index in [0, kMaxThreads), claimed on first use
  /// and recycled at thread exit (exposed for tests).
  static size_t ThreadSlot();

 private:
  struct alignas(kCacheLineSize) Slot {
    /// Entry epoch of the thread owning this slot; kIdleEpoch outside any
    /// guard.
    std::atomic<uint64_t> epoch{UINT64_MAX};
    /// Guard nesting depth; owner-thread only (slot handoff between
    /// threads is ordered by the registry's atomics).
    uint32_t depth = 0;
  };

  struct Retiree {
    void* ptr;
    void (*deleter)(void*);
    uint64_t epoch;  ///< global epoch at retire time
    Retiree* next;
  };

  static constexpr uint64_t kIdleEpoch = UINT64_MAX;

  void Enter(size_t slot);
  void Exit(size_t slot);
  /// Oldest epoch announced by any in-guard thread; kIdleEpoch when none.
  uint64_t MinActiveEpoch() const;

  std::atomic<uint64_t> global_epoch_{1};
  std::unique_ptr<Slot[]> slots_;

  SpinLatch retire_latch_;          ///< protects the retiree list
  Retiree* retired_head_ = nullptr;
  std::atomic<size_t> pending_{0};
  std::atomic<uint64_t> total_retired_{0};
  std::atomic<uint64_t> total_freed_{0};
};

}  // namespace slidb
