#include "src/util/histogram.h"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace slidb {

void Histogram::Reset() {
  buckets_.fill(0);
  count_ = 0;
  sum_ = 0;
  min_ = UINT64_MAX;
  max_ = 0;
}

size_t Histogram::BucketFor(uint64_t value) {
  if (value == 0) return 0;
  const size_t b = static_cast<size_t>(std::bit_width(value));
  return std::min(b, kNumBuckets - 1);
}

void Histogram::Add(uint64_t value) {
  buckets_[BucketFor(value)]++;
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::Merge(const Histogram& other) {
  for (size_t i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

uint64_t Histogram::Percentile(double q) const {
  if (count_ == 0) return 0;
  const double target = q * static_cast<double>(count_);
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i];
    if (static_cast<double>(seen) >= target) {
      // Bucket i covers [2^(i-1), 2^i); return the geometric midpoint.
      const uint64_t lo = i == 0 ? 0 : (1ULL << (i - 1));
      const uint64_t hi = i >= 63 ? max_ : (1ULL << i);
      return std::min(max_, lo + (hi - lo) / 2);
    }
  }
  return max_;
}

std::string Histogram::ToString(double scale, const char* unit) const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.1f%s p50=%.1f%s p95=%.1f%s p99=%.1f%s max=%.1f%s",
                static_cast<unsigned long long>(count_), Mean() * scale, unit,
                static_cast<double>(Percentile(0.50)) * scale, unit,
                static_cast<double>(Percentile(0.95)) * scale, unit,
                static_cast<double>(Percentile(0.99)) * scale, unit,
                static_cast<double>(max_ == 0 ? 0 : max_) * scale, unit);
  return buf;
}

}  // namespace slidb
