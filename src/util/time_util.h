// Cycle and wall-clock time sources. The profiler accounts *work*, not time
// (paper Section 5), so it needs a cheap per-thread cycle counter.
#pragma once

#include <chrono>
#include <cstdint>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

namespace slidb {

/// Monotonic nanoseconds since an arbitrary epoch.
inline uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Monotonic microseconds since an arbitrary epoch.
inline uint64_t NowMicros() { return NowNanos() / 1000; }

/// Cheap per-thread cycle counter used for work/contention attribution.
/// On x86 this is rdtsc (constant-rate on all modern parts); elsewhere it
/// falls back to the monotonic clock in nanoseconds.
inline uint64_t RdCycles() {
#if defined(__x86_64__) || defined(__i386__)
  return __rdtsc();
#else
  return NowNanos();
#endif
}

/// Measured ratio of RdCycles ticks per nanosecond (calibrated once, lazily).
double CyclesPerNano();

/// Convert a RdCycles delta to nanoseconds using the calibrated rate.
inline double CyclesToNanos(uint64_t cycles) {
  return static_cast<double>(cycles) / CyclesPerNano();
}

/// Busy-spin for roughly `nanos` wall-clock nanoseconds (used by tests and
/// the synthetic workloads; never sleeps).
void SpinForNanos(uint64_t nanos);

}  // namespace slidb
