#include "src/util/epoch.h"

#include <bit>
#include <cstdio>
#include <cstdlib>

#include "src/stats/counters.h"

namespace slidb {

namespace {

// Cross-manager slot registry: a thread claims one index on first use and
// keeps it for its lifetime, so every EpochManager indexes its slot array
// with the same (stable) value and Guard construction does no allocation.
// The claim/release RMWs on the bitmap order slot-struct handoff between a
// dying thread and a later claimant of the same index.
std::atomic<uint64_t> g_slot_bitmap[EpochManager::kMaxThreads / 64];

size_t ClaimSlot() {
  for (size_t w = 0; w < EpochManager::kMaxThreads / 64; ++w) {
    uint64_t bits = g_slot_bitmap[w].load(std::memory_order_relaxed);
    while (bits != UINT64_MAX) {
      const int bit = std::countr_one(bits);
      if (g_slot_bitmap[w].compare_exchange_weak(
              bits, bits | (uint64_t{1} << bit), std::memory_order_acq_rel)) {
        return w * 64 + static_cast<size_t>(bit);
      }
    }
  }
  std::fprintf(stderr,
               "EpochManager: more than %zu concurrent threads; raise "
               "kMaxThreads\n",
               EpochManager::kMaxThreads);
  std::abort();
}

struct SlotOwner {
  size_t idx = ClaimSlot();
  ~SlotOwner() {
    g_slot_bitmap[idx / 64].fetch_and(~(uint64_t{1} << (idx % 64)),
                                      std::memory_order_acq_rel);
  }
};

}  // namespace

size_t EpochManager::ThreadSlot() {
  thread_local SlotOwner owner;
  return owner.idx;
}

EpochManager::EpochManager() : slots_(std::make_unique<Slot[]>(kMaxThreads)) {}

EpochManager::~EpochManager() {
  // Teardown contract: no guards active, so everything pending is free.
  SpinLatchGuard g(retire_latch_);
  Retiree* r = retired_head_;
  retired_head_ = nullptr;
  while (r != nullptr) {
    Retiree* next = r->next;
    r->deleter(r->ptr);
    delete r;
    r = next;
  }
  pending_.store(0, std::memory_order_release);
}

void EpochManager::Enter(size_t slot) {
  Slot& s = slots_[slot];
  if (s.depth++ > 0) return;  // nested guard: outer announcement stands
  // Announce-and-verify loop: publish an entry epoch, then confirm the
  // global epoch did not advance past it while the store was in flight. A
  // reclaimer whose slot scan missed the store is ordered (seq_cst) before
  // the re-read, so the loop converges on an epoch the reclaimer either
  // saw or published itself — never one it already waited out.
  uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
  for (;;) {
    s.epoch.store(e, std::memory_order_seq_cst);
    const uint64_t e2 = global_epoch_.load(std::memory_order_seq_cst);
    if (e2 == e) break;
    e = e2;
  }
}

void EpochManager::Exit(size_t slot) {
  Slot& s = slots_[slot];
  if (--s.depth == 0) {
    s.epoch.store(kIdleEpoch, std::memory_order_release);
  }
}

void EpochManager::Retire(void* ptr, void (*deleter)(void*)) {
  auto* r = new Retiree{ptr, deleter, 0, nullptr};
  // The fetch_add both tags the retiree and publishes the unlink: any
  // thread whose guard later reads the advanced epoch synchronizes with
  // this RMW and therefore sees the structure without `ptr`.
  r->epoch = global_epoch_.fetch_add(1, std::memory_order_seq_cst);
  size_t pending;
  {
    SpinLatchGuard g(retire_latch_);
    r->next = retired_head_;
    retired_head_ = r;
    pending = pending_.fetch_add(1, std::memory_order_acq_rel) + 1;
  }
  total_retired_.fetch_add(1, std::memory_order_relaxed);
  CountEvent(Counter::kEpochRetired);
  if (pending >= kReclaimBatch) ReclaimSome();
}

uint64_t EpochManager::MinActiveEpoch() const {
  uint64_t min = kIdleEpoch;
  for (size_t i = 0; i < kMaxThreads; ++i) {
    const uint64_t e = slots_[i].epoch.load(std::memory_order_seq_cst);
    if (e < min) min = e;
  }
  return min;
}

size_t EpochManager::ReclaimSome() {
  Retiree* list;
  {
    SpinLatchGuard g(retire_latch_);
    list = retired_head_;
    retired_head_ = nullptr;
    pending_.store(0, std::memory_order_release);
  }
  if (list == nullptr) return 0;

  // A retiree tagged e is safe once every active slot announces > e: such
  // guards began after the retire-time epoch advance, hence after the
  // unlink it published. Idle slots cannot re-reach unlinked memory at all.
  const uint64_t min_active = MinActiveEpoch();

  size_t freed = 0;
  Retiree* keep_head = nullptr;
  Retiree* keep_tail = nullptr;
  size_t kept = 0;
  while (list != nullptr) {
    Retiree* next = list->next;
    if (list->epoch < min_active) {
      list->deleter(list->ptr);
      delete list;
      ++freed;
    } else {
      list->next = keep_head;
      keep_head = list;
      if (keep_tail == nullptr) keep_tail = list;
      ++kept;
    }
    list = next;
  }
  if (keep_head != nullptr) {
    SpinLatchGuard g(retire_latch_);
    keep_tail->next = retired_head_;
    retired_head_ = keep_head;
    pending_.fetch_add(kept, std::memory_order_acq_rel);
  }
  if (freed > 0) {
    total_freed_.fetch_add(freed, std::memory_order_relaxed);
    CountEvent(Counter::kEpochFreed, freed);
  }
  return freed;
}

EpochManager& EpochManager::Global() {
  static EpochManager mgr;
  return mgr;
}

}  // namespace slidb
