// CRC32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78): the
// checksum used by the durable log format. Runtime-dispatched: the SSE4.2
// crc32 instruction when the CPU has it (the record seal sits on the log
// append hot path), with a portable slicing-by-4 software fallback. Both
// paths produce identical, platform-independent results.
#pragma once

#include <cstddef>
#include <cstdint>

namespace slidb {

/// Extend a running CRC32C with `len` bytes. Start a fresh checksum by
/// passing crc = 0. The state is kept pre-/post-inverted internally, so
/// chained calls over record fragments compose:
///   Crc32c(Crc32c(0, a, la), b, lb) == Crc32c(0, concat(a,b), la+lb)
uint32_t Crc32c(uint32_t crc, const void* data, size_t len);

/// memcpy(dst, src, len) fused with a Crc32c extension over the same bytes
/// in one pass — the batch-publish seal rides the ring copy loop instead of
/// re-reading the record. Composes exactly like Crc32c. `dst` and `src`
/// must not overlap.
uint32_t Crc32cCopy(uint32_t crc, void* dst, const void* src, size_t len);

}  // namespace slidb
