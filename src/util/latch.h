// Instrumented latches. Latches (not database locks) protect slidb's critical
// sections; per the paper (Section 2) the *contention* they cause is the
// scalability effect under study, so every latch reports whether an
// acquisition was contended and attributes the wasted cycles to the calling
// thread's active component via the ThreadProfile.
#pragma once

#include <atomic>
#include <cstdint>

#include "src/stats/profiler.h"
#include "src/util/cacheline.h"
#include "src/util/time_util.h"

namespace slidb {

namespace latch_internal {

inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/// Yield to the OS scheduler; declared out-of-line to keep <sched.h> out of
/// this header's includers.
void OsYield();

}  // namespace latch_internal

/// Test-and-test-and-set spinlock with bounded exponential backoff and OS
/// yield under heavy oversubscription. Acquire() reports contention so lock
/// heads can feed their hot-lock trackers.
class SpinLatch {
 public:
  SpinLatch() = default;
  SpinLatch(const SpinLatch&) = delete;
  SpinLatch& operator=(const SpinLatch&) = delete;

  /// Acquire the latch. Returns true iff the acquisition was contended
  /// (at least one failed attempt). Contended cycles are attributed to the
  /// calling thread's current component as contention.
  bool Acquire() {
    if (TryAcquire()) return false;
    const uint64_t start = RdCycles();
    SlowAcquire();
    const uint64_t end = RdCycles();
    if (ThreadProfile* p = ThreadProfile::Current()) {
      p->AttributeContention(start, end);
    }
    return true;
  }

  bool TryAcquire() {
    return !word_.exchange(1, std::memory_order_acquire);
  }

  void Release() { word_.store(0, std::memory_order_release); }

  bool IsHeld() const { return word_.load(std::memory_order_relaxed) != 0; }

 private:
  void SlowAcquire();

  std::atomic<uint32_t> word_{0};
};

/// RAII guard for SpinLatch. Exposes whether the acquisition was contended.
class SpinLatchGuard {
 public:
  explicit SpinLatchGuard(SpinLatch& latch) : latch_(&latch) {
    contended_ = latch_->Acquire();
  }
  ~SpinLatchGuard() { Unlock(); }

  SpinLatchGuard(const SpinLatchGuard&) = delete;
  SpinLatchGuard& operator=(const SpinLatchGuard&) = delete;

  bool contended() const { return contended_; }

  /// Early release (idempotent).
  void Unlock() {
    if (latch_ != nullptr) {
      latch_->Release();
      latch_ = nullptr;
    }
  }

 private:
  SpinLatch* latch_;
  bool contended_;
};

/// Optimistic version latch (optimistic lock coupling, Leis et al. style).
/// The 64-bit word packs [version | locked | obsolete]: bit 0 marks a node
/// retired from the structure, bit 1 is the writer lock, bits 2+ hold the
/// version, bumped by every WriteUnlock. Readers never store to the word:
/// they snapshot the version, read the protected fields, and re-validate —
/// a mismatch (or the obsolete bit) tells the caller to restart. This is
/// what makes a B-tree probe write-free on shared memory.
///
/// All *OrRestart calls report failure through `restart` (sticky: they only
/// ever set it); callers check after each step and unwind to their restart
/// point. The protocol:
///   readers:  v = ReadLockOrRestart(); ...read fields...; CheckOrRestart(v)
///   writers:  traverse as a reader, then UpgradeToWriteLockOrRestart(v) on
///             exactly the nodes they mutate; WriteUnlock() bumps the
///             version so concurrent readers fail validation and restart.
/// Retiring:  WriteUnlockObsolete() — readers restart instead of revisiting;
///            free the memory via epoch-deferred reclamation (util/epoch.h),
///            never immediately, as optimistic readers may still be inside.
class OptLatch {
 public:
  static constexpr uint64_t kObsoleteBit = 1;
  static constexpr uint64_t kLockedBit = 2;
  static constexpr uint64_t kVersionOne = 4;  ///< +1 in the version field

  OptLatch() = default;
  OptLatch(const OptLatch&) = delete;
  OptLatch& operator=(const OptLatch&) = delete;

  /// Snapshot a stable (unlocked) version; spins while a writer holds the
  /// word. Sets `restart` if the node is obsolete.
  uint64_t ReadLockOrRestart(bool* restart) const {
    uint64_t v = word_.load(std::memory_order_acquire);
    if (v & kLockedBit) v = AwaitUnlocked();
    if (v & kObsoleteBit) *restart = true;
    return v;
  }

  /// Validate that the word is still exactly `v` — no writer locked or
  /// retired the node since the snapshot. The acquire fence orders the
  /// caller's preceding field reads before the re-read (seqlock pattern),
  /// so a successful check proves those reads saw a consistent node.
  void CheckOrRestart(uint64_t v, bool* restart) const {
    std::atomic_thread_fence(std::memory_order_acquire);
    if (word_.load(std::memory_order_relaxed) != v) *restart = true;
  }

  /// Atomically trade a validated read snapshot for the write lock. Fails
  /// (and sets `restart`) if the version moved since the snapshot.
  void UpgradeToWriteLockOrRestart(uint64_t v, bool* restart) {
    uint64_t expected = v;
    if (!word_.compare_exchange_strong(expected, v + kLockedBit,
                                       std::memory_order_acq_rel)) {
      *restart = true;
    }
  }

  /// Acquire the write lock with no prior snapshot (spins through other
  /// writers). Sets `restart` only if the node is obsolete.
  void WriteLockOrRestart(bool* restart) {
    for (;;) {
      uint64_t v = word_.load(std::memory_order_acquire);
      if (v & kLockedBit) v = AwaitUnlocked();
      if (v & kObsoleteBit) {
        *restart = true;
        return;
      }
      if (word_.compare_exchange_weak(v, v + kLockedBit,
                                      std::memory_order_acq_rel)) {
        return;
      }
    }
  }

  /// Release the write lock, bumping the version: adding kLockedBit to a
  /// locked word carries out of the lock bit into the version field.
  void WriteUnlock() { word_.fetch_add(kLockedBit, std::memory_order_release); }

  /// Release and mark obsolete (node leaving the structure) in one step.
  void WriteUnlockObsolete() {
    word_.fetch_add(kLockedBit | kObsoleteBit, std::memory_order_release);
  }

  bool IsLocked() const {
    return (word_.load(std::memory_order_relaxed) & kLockedBit) != 0;
  }
  bool IsObsolete() const {
    return (word_.load(std::memory_order_relaxed) & kObsoleteBit) != 0;
  }
  uint64_t RawWord() const { return word_.load(std::memory_order_relaxed); }

 private:
  /// Spin until the lock bit clears; attributes the wait as contention.
  uint64_t AwaitUnlocked() const;

  std::atomic<uint64_t> word_{kVersionOne};
};

/// Reader-writer spin latch. state > 0: reader count; state == -1: writer.
/// No writer preference (documented trade-off; B-tree traffic in slidb is
/// read-mostly and short).
class RwLatch {
 public:
  RwLatch() = default;
  RwLatch(const RwLatch&) = delete;
  RwLatch& operator=(const RwLatch&) = delete;

  /// Returns true iff contended.
  bool AcquireShared();
  bool AcquireExclusive();
  bool TryAcquireShared();
  bool TryAcquireExclusive();
  void ReleaseShared() { state_.fetch_sub(1, std::memory_order_release); }
  void ReleaseExclusive() { state_.store(0, std::memory_order_release); }

  /// Upgrade shared→exclusive; fails (returns false) if other readers exist.
  bool TryUpgrade() {
    int32_t expected = 1;
    return state_.compare_exchange_strong(expected, -1,
                                          std::memory_order_acquire);
  }

 private:
  std::atomic<int32_t> state_{0};
};

}  // namespace slidb
