// Instrumented latches. Latches (not database locks) protect slidb's critical
// sections; per the paper (Section 2) the *contention* they cause is the
// scalability effect under study, so every latch reports whether an
// acquisition was contended and attributes the wasted cycles to the calling
// thread's active component via the ThreadProfile.
#pragma once

#include <atomic>
#include <cstdint>

#include "src/stats/profiler.h"
#include "src/util/cacheline.h"
#include "src/util/time_util.h"

namespace slidb {

namespace latch_internal {

inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/// Yield to the OS scheduler; declared out-of-line to keep <sched.h> out of
/// this header's includers.
void OsYield();

}  // namespace latch_internal

/// Test-and-test-and-set spinlock with bounded exponential backoff and OS
/// yield under heavy oversubscription. Acquire() reports contention so lock
/// heads can feed their hot-lock trackers.
class SpinLatch {
 public:
  SpinLatch() = default;
  SpinLatch(const SpinLatch&) = delete;
  SpinLatch& operator=(const SpinLatch&) = delete;

  /// Acquire the latch. Returns true iff the acquisition was contended
  /// (at least one failed attempt). Contended cycles are attributed to the
  /// calling thread's current component as contention.
  bool Acquire() {
    if (TryAcquire()) return false;
    const uint64_t start = RdCycles();
    SlowAcquire();
    const uint64_t end = RdCycles();
    if (ThreadProfile* p = ThreadProfile::Current()) {
      p->AttributeContention(start, end);
    }
    return true;
  }

  bool TryAcquire() {
    return !word_.exchange(1, std::memory_order_acquire);
  }

  void Release() { word_.store(0, std::memory_order_release); }

  bool IsHeld() const { return word_.load(std::memory_order_relaxed) != 0; }

 private:
  void SlowAcquire();

  std::atomic<uint32_t> word_{0};
};

/// RAII guard for SpinLatch. Exposes whether the acquisition was contended.
class SpinLatchGuard {
 public:
  explicit SpinLatchGuard(SpinLatch& latch) : latch_(&latch) {
    contended_ = latch_->Acquire();
  }
  ~SpinLatchGuard() { Unlock(); }

  SpinLatchGuard(const SpinLatchGuard&) = delete;
  SpinLatchGuard& operator=(const SpinLatchGuard&) = delete;

  bool contended() const { return contended_; }

  /// Early release (idempotent).
  void Unlock() {
    if (latch_ != nullptr) {
      latch_->Release();
      latch_ = nullptr;
    }
  }

 private:
  SpinLatch* latch_;
  bool contended_;
};

/// Reader-writer spin latch. state > 0: reader count; state == -1: writer.
/// No writer preference (documented trade-off; B-tree traffic in slidb is
/// read-mostly and short).
class RwLatch {
 public:
  RwLatch() = default;
  RwLatch(const RwLatch&) = delete;
  RwLatch& operator=(const RwLatch&) = delete;

  /// Returns true iff contended.
  bool AcquireShared();
  bool AcquireExclusive();
  bool TryAcquireShared();
  bool TryAcquireExclusive();
  void ReleaseShared() { state_.fetch_sub(1, std::memory_order_release); }
  void ReleaseExclusive() { state_.store(0, std::memory_order_release); }

  /// Upgrade shared→exclusive; fails (returns false) if other readers exist.
  bool TryUpgrade() {
    int32_t expected = 1;
    return state_.compare_exchange_strong(expected, -1,
                                          std::memory_order_acquire);
  }

 private:
  std::atomic<int32_t> state_{0};
};

}  // namespace slidb
