#include "src/util/rng.h"

#include <bit>
#include <cmath>

namespace slidb {

namespace {

double Zeta(uint64_t n, double theta) {
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

/// Gray's alpha = 1/(1-theta) blows up at theta = 1; clamping theta to
/// 1 ± kThetaEpsilon keeps every derived quantity finite while staying
/// statistically indistinguishable from the harmonic case for any n that
/// fits in memory (the mass assigned to each rank shifts by O(eps*ln n)).
constexpr double kThetaEpsilon = 1e-4;

double ClampTheta(double theta) {
  if (theta > 1.0 - kThetaEpsilon && theta < 1.0 + kThetaEpsilon) {
    return theta < 1.0 ? 1.0 - kThetaEpsilon : 1.0 + kThetaEpsilon;
  }
  return theta;
}

}  // namespace

ZipfGenerator::ZipfGenerator(uint64_t n, double theta)
    : n_(n), theta_(ClampTheta(theta)) {
  zetan_ = Zeta(n, theta_);
  zeta2_ = Zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta_)) /
         (1.0 - zeta2_ / zetan_);
  half_pow_theta_ = std::pow(0.5, theta_);
}

uint64_t ZipfGenerator::Next(Rng& rng) const {
  const double u = rng.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 1;
  if (uz < 1.0 + half_pow_theta_) return 2;
  const uint64_t v = 1 + static_cast<uint64_t>(
                             static_cast<double>(n_) *
                             std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return v > n_ ? n_ : v;
}

ScrambledZipfGenerator::ScrambledZipfGenerator(uint64_t n, double theta,
                                               uint64_t salt)
    : zipf_(n, theta), salt_(salt) {
  // Feistel domain: the smallest even-bit-width power of two >= n. Cycle
  // walking (re-permute while the image lands outside [0, n)) shrinks the
  // bijection to exactly [0, n); the domain is < 4n, so the walk expects
  // fewer than 4 steps.
  const uint32_t bits = n <= 1 ? 1 : static_cast<uint32_t>(std::bit_width(n - 1));
  half_bits_ = (bits + 1) / 2;
  half_mask_ = (uint64_t{1} << half_bits_) - 1;
}

uint64_t ScrambledZipfGenerator::Permute(uint64_t x) const {
  // Four Feistel rounds with an FNV-1a-style round function. Any round
  // function yields a bijection on (left, right) pairs; FNV + avalanche
  // shifts make it look random enough to scatter adjacent ranks.
  uint64_t left = x >> half_bits_;
  uint64_t right = x & half_mask_;
  for (uint64_t round = 0; round < 4; ++round) {
    uint64_t h = 0xcbf29ce484222325ULL ^ (salt_ + round);
    h = (h ^ right) * 0x100000001b3ULL;
    h ^= h >> 29;
    h *= 0x100000001b3ULL;
    h ^= h >> 32;
    const uint64_t next_right = left ^ (h & half_mask_);
    left = right;
    right = next_right;
  }
  return (left << half_bits_) | right;
}

uint64_t ScrambledZipfGenerator::Scramble(uint64_t rank) const {
  // Cycle-walk: Permute is a bijection on [0, 2^(2*half_bits)), so iterating
  // it from a start point < n must come back to the start eventually —
  // the first iterate that lands in [0, n) defines a bijection on [0, n).
  uint64_t x = rank - 1;
  do {
    x = Permute(x);
  } while (x >= zipf_.n());
  return x + 1;
}

}  // namespace slidb
