// Transaction manager: begin / commit / abort orchestration over the lock
// manager and the write-ahead log. Commit is where SLI inheritance happens;
// begin is where the next transaction adopts the agent's inherited locks.
#pragma once

#include <atomic>
#include <cstdint>

#include "src/lock/lock_manager.h"
#include "src/log/log_manager.h"
#include "src/txn/agent.h"
#include "src/txn/transaction.h"
#include "src/util/status.h"

namespace slidb {

class TransactionManager {
 public:
  /// Both dependencies outlive the manager; no ownership taken.
  TransactionManager(LockManager* lock_manager, LogManager* log_manager)
      : lock_manager_(lock_manager), log_manager_(log_manager) {}

  TransactionManager(const TransactionManager&) = delete;
  TransactionManager& operator=(const TransactionManager&) = delete;

  /// Start the agent's (reused) transaction and adopt inherited locks.
  Transaction* Begin(AgentContext* agent);

  /// Commit: append + flush the commit record (group commit), then release
  /// locks with SLI inheritance enabled.
  Status Commit(AgentContext* agent);

  /// Abort: run undo actions (locks still held), log the abort, release
  /// everything without inheritance.
  void Abort(AgentContext* agent);

  uint64_t ActiveTransactionCeiling() const {
    return next_txn_id_.load(std::memory_order_relaxed);
  }

 private:
  LockManager* lock_manager_;
  LogManager* log_manager_;
  std::atomic<uint64_t> next_txn_id_{1};
};

}  // namespace slidb
