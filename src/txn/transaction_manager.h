// Transaction manager: begin / commit / abort orchestration over the lock
// manager and the write-ahead log. Commit is where SLI inheritance happens;
// begin is where the next transaction adopts the agent's inherited locks.
//
// Commit runs as a three-phase pipeline (see DESIGN.md "Commit pipeline"):
//   1. log-insert   — reserve + fill the commit record (latch-free append)
//   2. lock-release — ReleaseAll with SLI inheritance; with early lock
//                     release (default) this happens while the flush is
//                     still in flight, shrinking the lock hold time the
//                     next transaction inherits across
//   3. wait-durable — consolidated group commit on the commit record's LSN
#pragma once

#include <atomic>
#include <cstdint>

#include "src/lock/lock_manager.h"
#include "src/log/log_manager.h"
#include "src/txn/agent.h"
#include "src/txn/transaction.h"
#include "src/util/status.h"

namespace slidb {

struct TxnOptions {
  /// Release locks (with SLI inheritance) after the commit record is
  /// *inserted* but before it is *durable*. Safe under group commit: the
  /// flusher hardens the log strictly in LSN order, so any transaction that
  /// observes our released writes appends its own commit record after ours
  /// and cannot become durable before us. When false, locks are held until
  /// the commit record is on "disk" (the legacy ordering).
  bool early_lock_release = true;
};

class TransactionManager {
 public:
  /// Both dependencies outlive the manager; no ownership taken.
  TransactionManager(LockManager* lock_manager, LogManager* log_manager,
                     TxnOptions options = {})
      : lock_manager_(lock_manager),
        log_manager_(log_manager),
        options_(options) {}

  TransactionManager(const TransactionManager&) = delete;
  TransactionManager& operator=(const TransactionManager&) = delete;

  /// Start the agent's (reused) transaction and adopt inherited locks.
  Transaction* Begin(AgentContext* agent);

  /// Commit via the log-insert / lock-release / wait-durable pipeline.
  Status Commit(AgentContext* agent);

  /// Abort: run undo actions (locks still held), log the abort, release
  /// everything without inheritance.
  void Abort(AgentContext* agent);

  uint64_t ActiveTransactionCeiling() const {
    return next_txn_id_.load(std::memory_order_relaxed);
  }

  const TxnOptions& options() const { return options_; }

 private:
  // Commit pipeline phases.
  Lsn CommitLogInsert(Transaction& txn);
  void CommitReleaseLocks(AgentContext* agent);
  void CommitWaitDurable(Lsn lsn);

  LockManager* lock_manager_;
  LogManager* log_manager_;
  TxnOptions options_;
  std::atomic<uint64_t> next_txn_id_{1};
};

}  // namespace slidb
