// Transaction manager: begin / commit / abort orchestration over the lock
// manager and the write-ahead log. Commit is where SLI inheritance happens;
// begin is where the next transaction adopts the agent's inherited locks.
//
// Commit runs as a three-phase pipeline (see DESIGN.md "Commit pipeline"):
//   1. log-insert   — reserve + fill the commit record (latch-free append)
//   2. lock-release — ReleaseAll with SLI inheritance; with early lock
//                     release (default) this happens while the flush is
//                     still in flight, shrinking the lock hold time the
//                     next transaction inherits across
//   3. wait-durable — consolidated group commit on the commit record's LSN
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "src/lock/lock_manager.h"
#include "src/log/log_manager.h"
#include "src/log/log_record.h"
#include "src/storage/slotted_page.h"
#include "src/txn/agent.h"
#include "src/txn/transaction.h"
#include "src/util/status.h"

namespace slidb {

struct TxnOptions {
  /// Release locks (with SLI inheritance) after the commit record is
  /// *inserted* but before it is *durable*. Safe under group commit: the
  /// flusher hardens the log strictly in LSN order, so any transaction that
  /// observes our released writes appends its own commit record after ours
  /// and cannot become durable before us. When false, locks are held until
  /// the commit record is on "disk" (the legacy ordering).
  bool early_lock_release = true;

  /// Accumulate a transaction's redo records in its private staging buffer
  /// and publish them as ONE batch reservation at commit (the commit
  /// record rides the same batch, after the redo records, so ELR ordering
  /// is untouched). Amortizes the ring ticket fetch-add and publish-slot
  /// handoff over the whole transaction and lets small records share a
  /// kBatchSeal checksum. When false, every record pays its own
  /// LogManager::Append (the pre-batching path, kept for comparison).
  bool staged_log_appends = true;

  /// Publish a partial batch once this many staged bytes accumulate, so a
  /// long transaction cannot pin an unbounded buffer (or overflow the
  /// ring). Orders of magnitude below the default 8 MiB ring.
  size_t staging_flush_bytes = 64u << 10;

  /// Speculative reads with asynchronous commit dependencies. A commit
  /// whose durability horizon — the commit LSNs of every early-released
  /// writer it observed (LockClient::NoteDep), plus its own commit record —
  /// is not yet durable does NOT block in WaitDurable: it parks a
  /// DeferredAck on the log flusher's dependency-settlement queue and
  /// Commit() returns immediately. Externalization (the client
  /// acknowledgement) moves to the ack's settlement, which the flusher
  /// performs in the pass that hardens the horizon, so the ELR soundness
  /// invariant (nothing externalizes before every record it depends on is
  /// parseable from the durable stream) holds unchanged. Off by default:
  /// direct API callers keep the synchronous contract that Commit()'s
  /// return IS the durable acknowledgement; deferred-ack consumers must
  /// drain their agent's ring (AgentContext::DrainDeferredAcks) before
  /// treating the session as quiesced. Ignored (synchronous) when
  /// early_lock_release is off for read-write transactions — legacy
  /// ordering holds locks across the durable wait by definition.
  bool speculative_reads = false;

  /// Default per-transaction response deadline in microseconds, applied at
  /// Begin when the agent carries none (AgentContext::set_txn_deadline_ns
  /// overrides per arrival). The deadline caps every lock wait at
  /// min(lock_timeout, remaining budget), converts the durable-commit wait
  /// into a deadline-bounded wait that parks a DeferredAck on expiry (so
  /// such consumers must drain their agent's ring, as with
  /// speculative_reads), and makes Commit refuse — abort retryably — once
  /// the budget has already passed. 0 (default) = no deadline.
  uint64_t txn_deadline_us = 0;
};

class TransactionManager {
 public:
  /// Both dependencies outlive the manager; no ownership taken.
  TransactionManager(LockManager* lock_manager, LogManager* log_manager,
                     TxnOptions options = {})
      : lock_manager_(lock_manager),
        log_manager_(log_manager),
        options_(options) {}

  TransactionManager(const TransactionManager&) = delete;
  TransactionManager& operator=(const TransactionManager&) = delete;

  /// Start the agent's (reused) transaction and adopt inherited locks.
  Transaction* Begin(AgentContext* agent);

  /// Commit via the log-insert / lock-release / wait-durable pipeline.
  Status Commit(AgentContext* agent);

  /// Abort: run undo actions (locks still held), log the abort, release
  /// everything without inheritance.
  void Abort(AgentContext* agent);

  // ---- redo logging (every storage mutation flows through here) ----
  // The records are the recovery contract: a crash replays exactly these.
  // Emission order matters — a mutation's record is appended while the row
  // is still X-locked, so dependent transactions always log after us.

  /// Log a heap row mutation. `image` is the after-image (kInsert/kUpdate;
  /// empty for kDelete), `before` the before-image the restart undo pass
  /// restores when this transaction turns out to be a loser (empty for
  /// kInsert — undoing an insert is a delete). Both are full images, so a
  /// CLR built from `before` replays at the absolute address with no other
  /// context.
  void LogHeapOp(AgentContext* agent, LogRecordType type, uint32_t table,
                 Rid rid, std::span<const uint8_t> before,
                 std::span<const uint8_t> image);

  /// Log an index entry mutation (kIndexInsert / kIndexRemove).
  void LogIndexOp(AgentContext* agent, LogRecordType type, uint32_t index,
                  uint64_t key, uint64_t value);

  uint64_t ActiveTransactionCeiling() const {
    return next_txn_id_.load(std::memory_order_relaxed);
  }

  /// Restart the txn-id space above every id seen in a recovered log, so
  /// post-recovery transactions never collide with pre-crash ones in the
  /// new log. Call while quiesced (recovery runs before traffic).
  void EnsureNextTxnIdAbove(uint64_t max_seen_id) {
    uint64_t cur = next_txn_id_.load(std::memory_order_relaxed);
    while (cur <= max_seen_id &&
           !next_txn_id_.compare_exchange_weak(cur, max_seen_id + 1,
                                               std::memory_order_relaxed)) {
    }
  }

  const TxnOptions& options() const { return options_; }

  /// Snapshot the active-transaction table for a fuzzy checkpoint. MUST be
  /// called after the kCheckpointBegin record has been appended: any txn
  /// with a published record below the begin LSN either still shows active
  /// here (its first_lsn bounds redo-start) or already has its commit/abort
  /// record below the coming kCheckpointEnd — so no potential loser of a
  /// recovery anchored at this checkpoint escapes the table. Entries may be
  /// stale (txn committed mid-snapshot); staleness only widens redo-start.
  std::vector<CheckpointTxnEntry> SnapshotActiveTxns();

 private:
  /// Emit the txn's kBegin record if this is its first mutation.
  void MaybeLogBegin(Transaction& txn);

  /// Route one record to the txn's staging buffer (default) or straight to
  /// LogManager::Append; fires the staging watermark.
  void EmitRecord(Transaction& txn, LogRecordType type, const void* payload,
                  uint32_t payload_len);

  /// Publish the txn's staged batch under one reservation; returns its end
  /// LSN (0 when the buffer was empty).
  Lsn PublishStaged(Transaction& txn);

  bool UseStaging() const {
    return log_manager_ != nullptr && options_.staged_log_appends;
  }

  // Commit pipeline phases. `commit_lsn` stamps released write locks as
  // the durability horizon later acquirers depend on (ELR soundness).
  Lsn CommitLogInsert(Transaction& txn);
  void CommitReleaseLocks(AgentContext* agent, Lsn commit_lsn);
  void CommitWaitDurable(Lsn lsn);
  /// End game of the commit pipeline: make the commit externalizable at
  /// `horizon`. Synchronous mode blocks (WaitDurable); speculative mode
  /// parks a deferred ack on the settlement queue and returns.
  void CommitExternalize(AgentContext* agent, Lsn horizon);

  /// Record that `txn`'s next publish is its first: capture a conservative
  /// lower bound on its first published LSN for the checkpointer before
  /// the reservation happens.
  void NoteFirstPublish(Transaction& txn);

  LockManager* lock_manager_;
  LogManager* log_manager_;
  TxnOptions options_;
  std::atomic<uint64_t> next_txn_id_{1};

  /// Registry behind SnapshotActiveTxns: weak references to every agent
  /// transaction's published state. Registration is once per Transaction
  /// (first Begin); expired entries are pruned during snapshots.
  std::mutex registry_mu_;
  std::vector<std::weak_ptr<TxnPubState>> registry_;
};

}  // namespace slidb
