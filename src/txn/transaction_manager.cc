#include "src/txn/transaction_manager.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/stats/counters.h"
#include "src/stats/profiler.h"
#include "src/util/time_util.h"

namespace slidb {

Transaction* TransactionManager::Begin(AgentContext* agent) {
  ScopedComponent comp(Component::kTxn);
  Transaction& txn = agent->txn();
  if (!txn.registered_) {
    txn.registered_ = true;
    std::lock_guard<std::mutex> g(registry_mu_);
    registry_.push_back(txn.pub_);
  }
  txn.Reset(next_txn_id_.fetch_add(1, std::memory_order_relaxed),
            agent->id());
  // Snapshot the response deadline into the LockClient, where every
  // blocking point (lock waits, the durable-commit wait) can read it. The
  // agent's per-arrival deadline wins; the TxnOptions default covers API
  // callers that never touch AgentContext deadlines.
  uint64_t deadline_ns = agent->txn_deadline_ns();
  if (deadline_ns == 0 && options_.txn_deadline_us != 0) {
    deadline_ns = NowNanos() + options_.txn_deadline_us * 1'000;
  }
  txn.lock_client().SetDeadline(deadline_ns);
  lock_manager_->AdoptInherited(&txn.lock_client(), &agent->sli());
  return &txn;
}

void TransactionManager::NoteFirstPublish(Transaction& txn) {
  if (txn.pub_->first_lsn.load(std::memory_order_relaxed) != kLsnNone) {
    return;
  }
  // Captured BEFORE the publish reserves ring space, so it cannot exceed
  // the first record's actual LSN. The seq_cst fence pairs with the one in
  // SnapshotActiveTxns through the log's reservation clock: if our records
  // land below a checkpoint-begin record, the checkpointer's post-begin
  // snapshot observes this store.
  txn.pub_->first_lsn.store(log_manager_->reserved_lsn(),
                            std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_seq_cst);
}

std::vector<CheckpointTxnEntry> TransactionManager::SnapshotActiveTxns() {
  std::atomic_thread_fence(std::memory_order_seq_cst);
  std::vector<CheckpointTxnEntry> out;
  std::lock_guard<std::mutex> g(registry_mu_);
  size_t live = 0;
  for (auto& weak : registry_) {
    auto pub = weak.lock();
    if (pub == nullptr) continue;  // agent destroyed: prune below
    registry_[live++] = weak;
    if (!pub->active.load(std::memory_order_acquire)) continue;
    CheckpointTxnEntry entry;
    entry.txn_id = pub->txn_id.load(std::memory_order_relaxed);
    entry.first_lsn = pub->first_lsn.load(std::memory_order_relaxed);
    out.push_back(entry);
  }
  registry_.resize(live);
  return out;
}

void TransactionManager::MaybeLogBegin(Transaction& txn) {
  // Lazy begin record: emitted just before the transaction's first
  // mutation record. Read-only transactions never touch the append path,
  // and recovery still sees begin strictly before any of the txn's redo.
  if (txn.begin_logged_) return;
  txn.begin_logged_ = true;
  EmitRecord(txn, LogRecordType::kBegin, nullptr, 0);
}

void TransactionManager::EmitRecord(Transaction& txn, LogRecordType type,
                                    const void* payload,
                                    uint32_t payload_len) {
  if (!UseStaging()) {
    NoteFirstPublish(txn);
    log_manager_->Append(txn.id(), type, payload, payload_len);
    return;
  }
  txn.staging_.Stage(txn.id(), type, payload, payload_len);
  // Long-transaction watermark: publish the partial batch (no commit
  // record yet — the txn still holds its locks, so dependents cannot have
  // observed these writes, let alone logged past them).
  if (txn.staging_.bytes() >= options_.staging_flush_bytes) {
    PublishStaged(txn);
  }
}

Lsn TransactionManager::PublishStaged(Transaction& txn) {
  if (txn.staging_.empty()) return 0;
  txn.staged_published_ = true;
  NoteFirstPublish(txn);
  return log_manager_->AppendBatch(&txn.staging_);
}

void TransactionManager::LogHeapOp(AgentContext* agent, LogRecordType type,
                                   uint32_t table, Rid rid,
                                   std::span<const uint8_t> before,
                                   std::span<const uint8_t> image) {
  if (log_manager_ == nullptr) return;
  MaybeLogBegin(agent->txn());
  HeapRedoPayload row{};
  row.table = table;
  row.slot = rid.slot;
  row.page_no = rid.page_no;
  row.before_len = static_cast<uint32_t>(before.size());
  // Full images, never truncated: a capped after-image would replay as a
  // different row, a capped before-image would undo to one. Heap records
  // are bounded by the 8 KiB page — hard check, not an assert: in Release
  // builds an oversized image would otherwise overflow the stack buffer
  // below.
  if (image.size() > SlottedPage::MaxRecordSize() ||
      before.size() > SlottedPage::MaxRecordSize()) {
    std::fprintf(stderr,
                 "slidb: heap redo image %zu/%zu exceeds page bound\n",
                 before.size(), image.size());
    std::abort();
  }
  uint8_t buf[sizeof(HeapRedoPayload) + 2 * SlottedPage::MaxRecordSize()];
  std::memcpy(buf, &row, sizeof(row));
  if (!before.empty()) {
    std::memcpy(buf + sizeof(row), before.data(), before.size());
  }
  if (!image.empty()) {
    std::memcpy(buf + sizeof(row) + before.size(), image.data(),
                image.size());
  }
  const auto total =
      static_cast<uint32_t>(sizeof(row) + before.size() + image.size());
  EmitRecord(agent->txn(), type, buf, total);
  agent->txn().AddLogBytes(total);
}

void TransactionManager::LogIndexOp(AgentContext* agent, LogRecordType type,
                                    uint32_t index, uint64_t key,
                                    uint64_t value) {
  if (log_manager_ == nullptr) return;
  MaybeLogBegin(agent->txn());
  IndexRedoPayload entry{};
  entry.index = index;
  entry.key = key;
  entry.value = value;
  EmitRecord(agent->txn(), type, &entry, static_cast<uint32_t>(sizeof(entry)));
  agent->txn().AddLogBytes(sizeof(entry));
}

Lsn TransactionManager::CommitLogInsert(Transaction& txn) {
  if (!UseStaging()) {
    return log_manager_->Append(txn.id(), LogRecordType::kCommit, nullptr, 0);
  }
  // The commit record rides the SAME batch as the txn's remaining redo
  // records, last in line: one reservation fixes all their LSNs, with the
  // commit record's end LSN as the batch end. ELR stays sound — locks drop
  // only after this publish returns, so any dependent's records (and its
  // commit) reserve strictly after ours.
  txn.staging_.Stage(txn.id(), LogRecordType::kCommit, nullptr, 0);
  return PublishStaged(txn);
}

void TransactionManager::CommitReleaseLocks(AgentContext* agent,
                                            Lsn commit_lsn) {
  lock_manager_->ReleaseAll(&agent->txn().lock_client(), &agent->sli(),
                            /*allow_inherit=*/true, commit_lsn);
}

void TransactionManager::CommitWaitDurable(Lsn lsn) {
  log_manager_->WaitDurable(lsn);
}

void TransactionManager::CommitExternalize(AgentContext* agent, Lsn horizon) {
  if (horizon == 0) return;
  const uint64_t deadline_ns = agent->txn().lock_client().deadline_ns();
  if (!options_.speculative_reads && deadline_ns == 0) {
    CommitWaitDurable(horizon);
    return;
  }
  // Speculative: never stall the agent on the flusher. The fast check
  // avoids burning a ring slot when the horizon already hardened (the
  // dominant case on read-mostly workloads); otherwise park a deferred ack
  // and let the flusher externalize the commit when the horizon does.
  if (log_manager_->durable_lsn() >= horizon) return;
  if (!options_.speculative_reads) {
    // Deadline-bounded durable wait. The transaction IS committed at this
    // point (its commit record is inserted), so an expired budget cannot
    // abort it — instead externalization degrades to the speculative
    // contract: park a DeferredAck and hand the acknowledgement to the
    // flusher, freeing the agent to answer its next arrival on time.
    if (log_manager_->WaitDurableUntil(horizon, deadline_ns)) return;
    CountEvent(Counter::kTxnDeadlineDeferredAcks);
  }
  DeferredAck* ack = agent->deferred_acks().Acquire();
  ack->lsn = horizon;
  ack->park_ns = NowNanos();
  if (log_manager_->ParkDeferred(ack)) {
    CountEvent(Counter::kTxnDeferredAcks);
  }
}

Status TransactionManager::Commit(AgentContext* agent) {
  ScopedComponent comp(Component::kTxn);
  Transaction& txn = agent->txn();
  if (!txn.active()) return Status::InvalidArgument("commit of inactive txn");

  // Deadline gate, checked BEFORE the commit record can be inserted (after
  // that point the transaction is committed and could not be retried
  // without double execution). A transaction past its response budget
  // rolls back promptly and retryably instead of occupying the log and
  // lock release paths for a result nobody is waiting for anymore.
  if (const uint64_t deadline_ns = txn.lock_client().deadline_ns();
      deadline_ns != 0 && NowNanos() >= deadline_ns) {
    Abort(agent);
    CountEvent(Counter::kTxnDeadlineAborts);
    return Status::TimedOut("txn deadline reached before commit");
  }

  if (log_manager_ == nullptr) {
    CommitReleaseLocks(agent, 0);
  } else if (!txn.begin_logged_) {
    // Read-only: the transaction logged nothing, so it appends no record.
    // But under early lock release the data it READ may not be durable
    // yet — the writer dropped its lock at commit-record *insertion*.
    // Every lock acquisition noted the head's last write-commit LSN
    // (LockClient::NoteDep), so externalizing at durable >= dep_lsn
    // guarantees no caller ever observes state a crash could un-commit —
    // and costs nothing when the observed writers are already durable,
    // which is the common case on read-mostly workloads. Synchronous mode
    // blocks here; speculative mode parks the acknowledgement instead.
    const Lsn horizon = txn.lock_client().dep_lsn();
    CommitReleaseLocks(agent, 0);
    CommitExternalize(agent, horizon);
  } else if (options_.early_lock_release) {
    // Locks are logically released the instant the commit record enters the
    // log: its LSN fixes the serialization point, and group commit hardens
    // in LSN order, so dependents cannot out-run us to durability. Dropping
    // (or inheriting) locks while the flush is in flight removes the commit
    // I/O from the lock hold time.
    //
    // The externalization horizon is our own commit LSN: dependencies were
    // noted at acquire time, strictly before our commit record reserved
    // log space, so max(own, deps) == own. The max is kept as a defensive
    // statement of the invariant, not a needed computation.
    const Lsn lsn = CommitLogInsert(txn);
    CommitReleaseLocks(agent, lsn);
    CountEvent(Counter::kTxnEarlyRelease);
    CommitExternalize(agent, std::max(lsn, txn.lock_client().dep_lsn()));
  } else {
    const Lsn lsn = CommitLogInsert(txn);
    CommitWaitDurable(lsn);
    CommitReleaseLocks(agent, lsn);
  }
  txn.state_ = TxnState::kCommitted;
  txn.PubFinish();
  txn.undo_.clear();
  CountEvent(Counter::kTxnCommits);
  return Status::OK();
}

void TransactionManager::Abort(AgentContext* agent) {
  ScopedComponent comp(Component::kTxn);
  Transaction& txn = agent->txn();
  if (!txn.active()) return;

  // Undo runs under the transaction's locks, then the abort record is
  // logged (no flush wait needed for aborts). Symmetric with Commit: a
  // transaction that logged nothing appends nothing on abort either.
  txn.RunUndo();
  if (log_manager_ != nullptr && txn.begin_logged_) {
    if (UseStaging() && !txn.staged_published_) {
      // Nothing of this transaction ever reached the log: drop the staged
      // records instead of publishing dead weight — an aborted transaction
      // is a ghost to recovery either way.
      txn.staging_.Clear();
    } else if (UseStaging()) {
      // A partial batch already published (staging watermark): close the
      // txn's on-log story with its abort record. Staged-but-unpublished
      // redo is dropped first — recovery would skip it unconditionally
      // (the txn is a ghost), so publishing it would be dead log weight.
      txn.staging_.Clear();
      txn.staging_.Stage(txn.id(), LogRecordType::kAbort, nullptr, 0);
      PublishStaged(txn);
    } else {
      log_manager_->Append(txn.id(), LogRecordType::kAbort, nullptr, 0);
    }
  }
  lock_manager_->ReleaseAll(&txn.lock_client(), &agent->sli(),
                            /*allow_inherit=*/false);
  txn.state_ = TxnState::kAborted;
  txn.PubFinish();
}

}  // namespace slidb
