#include "src/txn/transaction_manager.h"

#include "src/stats/counters.h"
#include "src/stats/profiler.h"

namespace slidb {

Transaction* TransactionManager::Begin(AgentContext* agent) {
  ScopedComponent comp(Component::kTxn);
  Transaction& txn = agent->txn();
  txn.Reset(next_txn_id_.fetch_add(1, std::memory_order_relaxed),
            agent->id());
  lock_manager_->AdoptInherited(&txn.lock_client(), &agent->sli());
  return &txn;
}

Status TransactionManager::Commit(AgentContext* agent) {
  ScopedComponent comp(Component::kTxn);
  Transaction& txn = agent->txn();
  if (!txn.active()) return Status::InvalidArgument("commit of inactive txn");

  // Durability point: commit record must be on "disk" before locks release.
  if (log_manager_ != nullptr) {
    const Lsn lsn =
        log_manager_->Append(txn.id(), LogRecordType::kCommit, nullptr, 0);
    log_manager_->WaitDurable(lsn);
  }

  lock_manager_->ReleaseAll(&txn.lock_client(), &agent->sli(),
                            /*allow_inherit=*/true);
  txn.state_ = TxnState::kCommitted;
  txn.undo_.clear();
  CountEvent(Counter::kTxnCommits);
  return Status::OK();
}

void TransactionManager::Abort(AgentContext* agent) {
  ScopedComponent comp(Component::kTxn);
  Transaction& txn = agent->txn();
  if (!txn.active()) return;

  // Undo runs under the transaction's locks, then the abort record is
  // logged (no flush wait needed for aborts).
  txn.RunUndo();
  if (log_manager_ != nullptr) {
    log_manager_->Append(txn.id(), LogRecordType::kAbort, nullptr, 0);
  }
  lock_manager_->ReleaseAll(&txn.lock_client(), &agent->sli(),
                            /*allow_inherit=*/false);
  txn.state_ = TxnState::kAborted;
}

}  // namespace slidb
