#include "src/txn/transaction_manager.h"

#include "src/stats/counters.h"
#include "src/stats/profiler.h"

namespace slidb {

Transaction* TransactionManager::Begin(AgentContext* agent) {
  ScopedComponent comp(Component::kTxn);
  Transaction& txn = agent->txn();
  txn.Reset(next_txn_id_.fetch_add(1, std::memory_order_relaxed),
            agent->id());
  lock_manager_->AdoptInherited(&txn.lock_client(), &agent->sli());
  return &txn;
}

Lsn TransactionManager::CommitLogInsert(Transaction& txn) {
  return log_manager_->Append(txn.id(), LogRecordType::kCommit, nullptr, 0);
}

void TransactionManager::CommitReleaseLocks(AgentContext* agent) {
  lock_manager_->ReleaseAll(&agent->txn().lock_client(), &agent->sli(),
                            /*allow_inherit=*/true);
}

void TransactionManager::CommitWaitDurable(Lsn lsn) {
  log_manager_->WaitDurable(lsn);
}

Status TransactionManager::Commit(AgentContext* agent) {
  ScopedComponent comp(Component::kTxn);
  Transaction& txn = agent->txn();
  if (!txn.active()) return Status::InvalidArgument("commit of inactive txn");

  if (log_manager_ == nullptr) {
    CommitReleaseLocks(agent);
  } else if (options_.early_lock_release) {
    // Locks are logically released the instant the commit record enters the
    // log: its LSN fixes the serialization point, and group commit hardens
    // in LSN order, so dependents cannot out-run us to durability. Dropping
    // (or inheriting) locks while the flush is in flight removes the commit
    // I/O from the lock hold time.
    const Lsn lsn = CommitLogInsert(txn);
    CommitReleaseLocks(agent);
    CountEvent(Counter::kTxnEarlyRelease);
    CommitWaitDurable(lsn);
  } else {
    const Lsn lsn = CommitLogInsert(txn);
    CommitWaitDurable(lsn);
    CommitReleaseLocks(agent);
  }
  txn.state_ = TxnState::kCommitted;
  txn.undo_.clear();
  CountEvent(Counter::kTxnCommits);
  return Status::OK();
}

void TransactionManager::Abort(AgentContext* agent) {
  ScopedComponent comp(Component::kTxn);
  Transaction& txn = agent->txn();
  if (!txn.active()) return;

  // Undo runs under the transaction's locks, then the abort record is
  // logged (no flush wait needed for aborts).
  txn.RunUndo();
  if (log_manager_ != nullptr) {
    log_manager_->Append(txn.id(), LogRecordType::kAbort, nullptr, 0);
  }
  lock_manager_->ReleaseAll(&txn.lock_client(), &agent->sli(),
                            /*allow_inherit=*/false);
  txn.state_ = TxnState::kAborted;
}

}  // namespace slidb
