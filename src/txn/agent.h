// Agent threads: the worker context that executes transactions back-to-back.
// SLI state is agent-scoped (paper §4.1): locks pass from a committing
// transaction to the *same agent's* next transaction.
#pragma once

#include <cstdint>

#include "src/lock/agent_sli.h"
#include "src/log/commit_dependency.h"
#include "src/stats/counters.h"
#include "src/stats/profiler.h"
#include "src/txn/transaction.h"
#include "src/util/histogram.h"
#include "src/util/rng.h"

namespace slidb {

/// Everything one worker thread owns: its reusable transaction (and its
/// LockClient), its SLI inheritance list and request pool, its profiler,
/// counters, latency histogram, and RNG. Not thread-safe; single owner.
class AgentContext {
 public:
  explicit AgentContext(uint32_t id, uint64_t seed = 1)
      : id_(id), sli_(id), rng_(seed + id * 0x9e3779b9ULL) {
    txn_.lock_client().SetPool(&sli_.pool());
  }

  AgentContext(const AgentContext&) = delete;
  AgentContext& operator=(const AgentContext&) = delete;

  uint32_t id() const { return id_; }
  Transaction& txn() { return txn_; }
  AgentSliState& sli() { return sli_; }
  ThreadProfile& profile() { return profile_; }
  CounterSet& counters() { return counters_; }
  Histogram& latency() { return latency_; }
  Rng& rng() { return rng_; }

  /// Parked commit acknowledgements of this agent's speculative commits
  /// (TxnOptions::speculative_reads). The ring's destructor drains, so the
  /// flusher never holds a pointer into a dead agent — but the LogManager
  /// must still be alive (or already shut down, which settles everything)
  /// when the agent is destroyed with acks outstanding.
  DeferredAckRing& deferred_acks() { return deferred_acks_; }

  /// Block until every parked acknowledgement settled: the quiesce point a
  /// speculative-commit consumer calls before reading results or retiring
  /// the agent. No-op when nothing is outstanding.
  void DrainDeferredAcks() { deferred_acks_.Drain(); }

  /// Absolute response deadline (NowNanos clock) for this agent's NEXT /
  /// current transaction; 0 = none. Begin() snapshots it into the
  /// LockClient, from where every blocking point (lock waits, the
  /// durable-commit wait) reads it. Set per arrival by open-loop drivers.
  uint64_t txn_deadline_ns() const { return txn_deadline_ns_; }
  void set_txn_deadline_ns(uint64_t ns) { txn_deadline_ns_ = ns; }

  /// Whether this agent currently holds an admission-governor token
  /// (Database::AdmitTxn / FinishAdmission bookkeeping).
  bool holds_admission() const { return holds_admission_; }
  void set_holds_admission(bool held) { holds_admission_ = held; }

 private:
  uint32_t id_;
  Transaction txn_;
  AgentSliState sli_;
  ThreadProfile profile_;
  CounterSet counters_;
  Histogram latency_;
  Rng rng_;
  DeferredAckRing deferred_acks_;
  uint64_t txn_deadline_ns_ = 0;
  bool holds_admission_ = false;
};

}  // namespace slidb
