// Transactions: 2PL lifecycle state, the embedded LockClient, and a logical
// undo list used to roll back storage effects on abort.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/lock/lock_client.h"
#include "src/log/log_record.h"
#include "src/log/log_staging.h"

namespace slidb {

/// Published transaction state the fuzzy checkpointer reads while agents
/// run full speed. Shared-ownership token: the TransactionManager registry
/// holds weak references, so an agent (and its Transaction) can be
/// destroyed at any time without unregistration ordering constraints.
///
/// `first_lsn` is a conservative LOWER bound on the LSN of the txn's first
/// published log record (captured from the log's reserved-LSN clock just
/// before the first publish). The checkpointer folds it into the
/// checkpoint's redo-start; a too-low bound only widens the redo window,
/// never loses a loser record.
struct TxnPubState {
  std::atomic<uint64_t> txn_id{0};
  std::atomic<Lsn> first_lsn{kLsnNone};
  std::atomic<bool> active{false};
};

enum class TxnState : uint8_t {
  kIdle = 0,
  kActive,
  kCommitted,
  kAborted,
};

inline const char* TxnStateName(TxnState s) {
  switch (s) {
    case TxnState::kIdle: return "idle";
    case TxnState::kActive: return "active";
    case TxnState::kCommitted: return "committed";
    case TxnState::kAborted: return "aborted";
  }
  return "?";
}

/// One transaction. Reused by its agent thread across executions (the
/// LockClient inside must stay alive for the whole run — see LockClient's
/// lifetime note).
class Transaction {
 public:
  Transaction() = default;
  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  uint64_t id() const { return id_; }
  TxnState state() const { return state_; }
  bool active() const { return state_ == TxnState::kActive; }

  LockClient& lock_client() { return lock_client_; }

  /// Register a compensation action, run in reverse order on abort.
  /// Actions run while all locks are still held, so they may touch the same
  /// rows the forward operation did.
  void AddUndo(std::function<void()> fn) { undo_.push_back(std::move(fn)); }

  size_t undo_size() const { return undo_.size(); }

  /// Bytes of log payload this transaction appended (stats only).
  void AddLogBytes(size_t n) { log_bytes_ += n; }
  size_t log_bytes() const { return log_bytes_; }

 private:
  friend class TransactionManager;

  void Reset(uint64_t id, uint32_t agent_id) {
    id_ = id;
    state_ = TxnState::kActive;
    undo_.clear();
    log_bytes_ = 0;
    begin_logged_ = false;
    staging_.Clear();
    staged_published_ = false;
    // Publish order matters for the checkpointer's ATT snapshot: the slot
    // goes inactive, its fields change, then it reactivates — a racing
    // snapshot sees either the old txn, nothing, or the new txn, never a
    // mixed entry that matters (a stale entry only widens redo-start).
    pub_->active.store(false, std::memory_order_release);
    pub_->txn_id.store(id, std::memory_order_relaxed);
    pub_->first_lsn.store(kLsnNone, std::memory_order_relaxed);
    pub_->active.store(true, std::memory_order_release);
    lock_client_.StartTxn(id, agent_id);
  }

  void PubFinish() { pub_->active.store(false, std::memory_order_release); }

  void RunUndo() {
    for (auto it = undo_.rbegin(); it != undo_.rend(); ++it) (*it)();
    undo_.clear();
  }

  uint64_t id_ = 0;
  TxnState state_ = TxnState::kIdle;
  LockClient lock_client_;
  std::vector<std::function<void()>> undo_;
  size_t log_bytes_ = 0;
  /// kBegin is emitted lazily with the first mutation record, so read-only
  /// transactions put nothing in the log append path.
  bool begin_logged_ = false;
  /// Transaction-private log staging (log_staging.h): redo records
  /// accumulate here and publish as one batch reservation at commit (or at
  /// the staging watermark for long transactions). TransactionManager is
  /// the only writer.
  LogStagingBuffer staging_;
  /// True once any staged batch of this transaction was published (the
  /// staging watermark fired): the txn now exists in the log, so an abort
  /// must append its kAbort record instead of just dropping the buffer.
  bool staged_published_ = false;
  /// Checkpointer-visible state (see TxnPubState). Created once per
  /// Transaction; registered with the TransactionManager on first Begin.
  std::shared_ptr<TxnPubState> pub_ = std::make_shared<TxnPubState>();
  bool registered_ = false;
};

}  // namespace slidb
