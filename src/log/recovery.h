// Crash recovery: ARIES-style analysis / redo / undo over the durable log.
//
// The recovery contract (and what the crash tests verify byte by byte):
// given any prefix of the durable stream — a crash can cut it at ANY byte —
// recovery reconstructs exactly the state produced by the set of
// transactions whose COMMIT record lies wholly inside the valid prefix.
// No committed transaction is lost, no uncommitted mutation survives.
//
// Passes:
//   1. Analysis (Scan): walk records front to back, validating each
//      (length sanity, self-LSN, format version, CRC32C). Stop at the first
//      failure — by the torn-write rule everything from that byte on is
//      discarded. Collect the committed and durably-aborted transaction
//      sets, and locate the LAST COMPLETE checkpoint (a kCheckpointBegin /
//      kCheckpointEnd pair wholly inside the valid prefix).
//   2. Redo (Replay): repeating history from the checkpoint's redo-start
//      LSN — min(checkpoint begin LSN, first LSN of every transaction in
//      the checkpoint's active-txn table) — or from the stream base when no
//      complete checkpoint exists. Checkpoint image records replay
//      unconditionally; ordinary redo records and CLRs replay for every
//      transaction EXCEPT durably-aborted ones (their in-memory undo ran
//      before the abort record was logged, and checkpoint images — taken
//      under row S locks — reflect post-undo state). Losers (transactions
//      with records but neither commit nor abort in the prefix) are
//      replayed too: their published records are stolen dirty state that
//      repeating history must reconstruct before undo can compensate it.
//   3. Undo: roll losers back in reverse LSN order by restoring each heap
//      record's before-image (index undo is logical). Each undo step can
//      emit a compensation record (CLR) through the caller's sink into the
//      NEW log; CLRs are redo-only, so a crash during undo replays the
//      partial rollback and the full re-undo converges idempotently.
//
// Why repeating-history + undo is sound here, including under early lock
// release and speculative reads: a transaction's mutations are X-locked
// until its commit record is *inserted*, and group commit hardens strictly
// in LSN order. Any transaction that observed our writes logged every one
// of its records after our commit record — the committed set is always
// dependency-closed. A loser held its X locks at the crash, so no
// committed transaction ever observed (or overwrote) the state its undo
// restores. Checkpoint images are taken per row under a brief S lock — the
// WAL rule applied at image time: a row's image can never contain a
// mutation whose log record might not be published, because the writer
// holds the X lock until its records are.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/engine/catalog.h"
#include "src/log/log_record.h"
#include "src/util/status.h"

namespace slidb {

struct RecoveryReport {
  uint64_t total_bytes = 0;       ///< stream bytes handed to recovery
  Lsn valid_prefix_end = 0;       ///< first byte past the last valid record
  uint64_t tail_bytes_discarded = 0;
  bool torn_tail = false;         ///< a corrupt/torn tail was discarded
  LogScanStatus tail_status = LogScanStatus::kEndOfStream;

  uint64_t records_scanned = 0;   ///< valid records in the prefix
  uint64_t records_replayed = 0;  ///< redo records applied
  uint64_t records_skipped = 0;   ///< redo records of durably-aborted txns
  uint64_t records_undone = 0;    ///< loser records rolled back by undo
  uint64_t clrs_emitted = 0;      ///< compensation records sent to the sink
  uint64_t committed_txns = 0;
  uint64_t uncommitted_txns = 0;  ///< txns seen without a durable commit
  uint64_t aborted_txns = 0;      ///< txns with a durable abort record
  uint64_t losers_rolled_back = 0;  ///< uncommitted, unaborted txns undone
  uint64_t max_txn_id = 0;        ///< highest txn id seen (id-space restart)

  bool checkpoint_anchored = false;  ///< redo started at a checkpoint
  Lsn checkpoint_begin_lsn = 0;      ///< last complete checkpoint's begin
  Lsn redo_start_lsn = 0;            ///< where the redo pass started
  uint64_t redo_bytes = 0;  ///< bytes the redo pass walked (the bounded-
                            ///< restart claim: this, not total_bytes,
                            ///< scales restart cost)
};

/// Receives one compensation record per undo step: `loser` is the rolled-
/// back transaction, `redo_type` the inner redo operation, and
/// [payload, payload+len) the inner redo payload (HeapRedoPayload or
/// IndexRedoPayload form). `undo_of_lsn` names the compensated record.
/// Implementations append a kClr record to the new log; recovery itself
/// stays log-agnostic.
using ClrSink = std::function<void(uint64_t loser, LogRecordType redo_type,
                                   const uint8_t* payload, uint32_t len,
                                   Lsn undo_of_lsn)>;

/// One-shot recovery over a captured durable stream. Scan() is idempotent;
/// Replay() applies redo + undo into a catalog whose schema (tables and
/// indexes, in original creation order) has been re-created. The target
/// storage may be empty (post-crash rebuild) or warm (in-place restart):
/// redo records and images overwrite at absolute addresses, and the undo
/// pass removes any stolen uncommitted state either way.
class RecoveryManager {
 public:
  /// `stream` is the durable log read back from the device; `base_lsn` is
  /// the log offset of its first byte (nonzero when older segments were
  /// recycled after a checkpoint).
  explicit RecoveryManager(std::vector<uint8_t> stream, Lsn base_lsn = 0);

  /// Non-owning view: the caller guarantees [data, data+size) outlives the
  /// manager (the recovery bench scans the same stream thousands of times
  /// and must not pay a copy per pass).
  RecoveryManager(const uint8_t* data, size_t size, Lsn base_lsn = 0);

  /// Pass 1: validate the stream, determine the committed / aborted sets,
  /// and locate the last complete checkpoint.
  const RecoveryReport& Scan();

  /// Passes 2 + 3: redo (repeating history from the checkpoint anchor)
  /// then undo losers, emitting one CLR per undo step through `sink` (may
  /// be null: harness recoveries that rebuild into a throwaway catalog
  /// don't keep a new log). Calls Scan() if it has not run. Returns
  /// Corruption if a validated record's payload does not decode (schema
  /// mismatch between the log and the catalog).
  Status Replay(Catalog* catalog, const ClrSink& sink = nullptr);

  /// Walk the committed redo records of the valid prefix in log order
  /// (calls Scan() if needed). Retained for streams without checkpoints
  /// (legacy snapshot re-log) and for audits.
  void ForEachCommittedRedo(
      const std::function<void(const LogRecordHeader& hdr,
                               const uint8_t* payload)>& fn);

  const RecoveryReport& report() const { return report_; }
  bool IsCommitted(uint64_t txn_id) const {
    return committed_.count(txn_id) != 0;
  }
  bool IsAborted(uint64_t txn_id) const {
    return aborted_.count(txn_id) != 0;
  }
  const std::unordered_set<uint64_t>& committed_set() const {
    return committed_;
  }
  /// Losers: transactions with records in the prefix but neither a commit
  /// nor an abort record — rolled back by the undo pass.
  std::vector<uint64_t> LoserTxns() const;

 private:
  struct CheckpointAnchor {
    Lsn begin_lsn = 0;
    Lsn redo_start = 0;
    bool complete = false;
  };

  Status ApplyRedo(Catalog* catalog, const LogRecordHeader& hdr,
                   const uint8_t* payload);
  Status ApplyClr(Catalog* catalog, const LogRecordHeader& hdr,
                  const uint8_t* payload);
  Status UndoLosers(Catalog* catalog, const ClrSink& sink);

  /// Fold one scanned record (top-level or envelope-interior) into the
  /// committed/aborted/seen and checkpoint bookkeeping. `lsn` is the
  /// record's own stream offset.
  void NoteScanned(const LogRecordHeader& hdr, const uint8_t* payload);

  /// Walk the Scan-validated prefix (structural decode only, no CRC) from
  /// stream offset `from_lsn`, calling `fn` per record; stops early when
  /// `fn` returns !ok. `from_lsn` must be a record boundary (a checkpoint
  /// redo-start LSN or base_lsn).
  Status WalkValidPrefix(
      Lsn from_lsn,
      const std::function<Status(const LogRecordHeader& hdr,
                                 const uint8_t* payload)>& fn);

  std::vector<uint8_t> owned_;    ///< empty for the non-owning view
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  Lsn base_lsn_;
  bool scanned_ = false;
  std::unordered_set<uint64_t> committed_;
  std::unordered_set<uint64_t> aborted_;
  std::unordered_set<uint64_t> seen_;
  /// Begin-LSN → anchor for every checkpoint seen; `last_complete_` points
  /// at the most recent one whose end record also landed in the prefix.
  std::unordered_map<Lsn, CheckpointAnchor> checkpoints_;
  CheckpointAnchor last_complete_;
  RecoveryReport report_;
};

}  // namespace slidb
