// Crash recovery: ARIES-style redo over the durable log stream.
//
// The recovery contract (and what the crash tests verify byte by byte):
// given any prefix of the durable stream — a crash can cut it at ANY byte —
// recovery reconstructs exactly the state produced by the set of
// transactions whose COMMIT record lies wholly inside the valid prefix.
// No committed transaction is lost, no uncommitted mutation is replayed.
//
// Algorithm (redo-only into fresh storage — "no-steal from scratch"):
//   1. Scan: walk records front to back, validating each (length sanity,
//      self-LSN, format version, CRC32C). Stop at the first failure — by
//      the torn-write rule everything from that byte on is discarded (the
//      log device writes in LSN order, so nothing after a torn record can
//      be trusted). Collect the committed-transaction set from kCommit
//      records in the valid prefix.
//   2. Replay: walk the valid prefix again and re-apply every heap/index
//      redo record whose transaction is in the committed set, in log
//      order. Uncommitted (ghost) transactions are skipped entirely; their
//      undo actions were never logged and are not needed — replay starts
//      from empty storage, so their effects simply never materialize.
//
// Why redo-only is sound here, including under early lock release: a
// transaction's mutations are X-locked until its commit record is
// *inserted*, and group commit hardens strictly in LSN order. Any
// transaction that observed our writes therefore logged every one of its
// records after our commit record — if the dependent's commit is in the
// valid prefix, so is ours. The committed set is always dependency-closed
// and state equals a committed prefix of the original history.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "src/engine/catalog.h"
#include "src/log/log_record.h"
#include "src/util/status.h"

namespace slidb {

struct RecoveryReport {
  uint64_t total_bytes = 0;       ///< stream bytes handed to recovery
  Lsn valid_prefix_end = 0;       ///< first byte past the last valid record
  uint64_t tail_bytes_discarded = 0;
  bool torn_tail = false;         ///< a corrupt/torn tail was discarded
  LogScanStatus tail_status = LogScanStatus::kEndOfStream;

  uint64_t records_scanned = 0;   ///< valid records in the prefix
  uint64_t records_replayed = 0;  ///< redo records applied
  uint64_t records_skipped = 0;   ///< redo records of uncommitted txns
  uint64_t committed_txns = 0;
  uint64_t uncommitted_txns = 0;  ///< txns seen without a durable commit
  uint64_t aborted_txns = 0;      ///< txns with a durable abort record
  uint64_t max_txn_id = 0;        ///< highest txn id seen (id-space restart)
};

/// One-shot recovery over a captured durable stream. Scan() is idempotent;
/// Replay() applies redo into a catalog whose schema (tables and indexes,
/// in original creation order) has been re-created and is otherwise empty.
class RecoveryManager {
 public:
  /// `stream` is the durable log read back from the device; `base_lsn` is
  /// the log offset of its first byte (0 unless recovering a partial
  /// archive).
  explicit RecoveryManager(std::vector<uint8_t> stream, Lsn base_lsn = 0);

  /// Non-owning view: the caller guarantees [data, data+size) outlives the
  /// manager (the recovery bench scans the same stream thousands of times
  /// and must not pay a copy per pass).
  RecoveryManager(const uint8_t* data, size_t size, Lsn base_lsn = 0);

  /// Pass 1: validate the stream and determine the committed set.
  const RecoveryReport& Scan();

  /// Pass 2: redo committed mutations into `catalog`. Calls Scan() if it
  /// has not run. Returns Corruption if a validated record's payload does
  /// not decode (schema mismatch between the log and the catalog).
  Status Replay(Catalog* catalog);

  /// Walk the committed redo records of the valid prefix in log order
  /// (calls Scan() if needed). Database::RecoverFromStream uses this to
  /// re-log the recovered state into the new WAL as a snapshot, so the
  /// new log is self-contained across a second crash.
  void ForEachCommittedRedo(
      const std::function<void(const LogRecordHeader& hdr,
                               const uint8_t* payload)>& fn);

  const RecoveryReport& report() const { return report_; }
  bool IsCommitted(uint64_t txn_id) const {
    return committed_.count(txn_id) != 0;
  }
  const std::unordered_set<uint64_t>& committed_set() const {
    return committed_;
  }

 private:
  Status ApplyRedo(Catalog* catalog, const LogRecordHeader& hdr,
                   const uint8_t* payload);

  /// Fold one scanned record (top-level or envelope-interior) into the
  /// committed/seen bookkeeping.
  void NoteScanned(const LogRecordHeader& hdr);

  /// Walk the Scan-validated prefix (structural decode only, no CRC),
  /// calling `fn` per record; stops early when `fn` returns !ok. Replay
  /// and the snapshot re-log both ride this walker so they can never
  /// diverge on the walk itself.
  Status WalkValidPrefix(
      const std::function<Status(const LogRecordHeader& hdr,
                                 const uint8_t* payload)>& fn);

  std::vector<uint8_t> owned_;    ///< empty for the non-owning view
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  Lsn base_lsn_;
  bool scanned_ = false;
  std::unordered_set<uint64_t> committed_;
  std::unordered_set<uint64_t> seen_;
  RecoveryReport report_;
};

}  // namespace slidb
