// Log devices: the durable end of the WAL. The flusher hands contiguous,
// LSN-ordered byte ranges to LogOptions::flush_sink; a LogDevice is the
// object behind that seam that actually persists them. Two implementations:
//
//   * FileLogDevice — a real append-only file (pwrite at the LSN offset +
//     optional fsync per flush). Survives the process; Database::Recover
//     reads it back.
//   * InMemoryLogDevice — a deterministic byte vector with crash injection
//     (stop accepting bytes at an arbitrary point, emulating power loss mid
//     device write). The recovery test harness and benches build on it.
//
// Durability contract: flush_sink blocks the flusher until the range is
// durable, and the LogManager advances durable_lsn only after the sink
// returns — so a committer released by WaitDurable knows its bytes reached
// the device (or the device lied, which is what the crash tests emulate).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/log/log_record.h"
#include "src/util/status.h"

namespace slidb {

struct LogOptions;  // log_manager.h

class LogDevice {
 public:
  virtual ~LogDevice() = default;

  /// Persist `len` bytes whose first byte is log offset `lsn`. The flusher
  /// calls this with contiguous, strictly increasing ranges. Must not
  /// return before the bytes are durable (or dropped — a crashed device).
  virtual Status Append(const uint8_t* data, size_t len, Lsn lsn) = 0;

  /// Bytes durably stored (the length of the valid-until-torn prefix a
  /// recovery scan will see).
  virtual uint64_t DurableBytes() const = 0;

  /// Read the entire durable stream back for recovery.
  virtual Status ReadAll(std::vector<uint8_t>* out) const = 0;
};

/// Deterministic in-memory device with crash injection. Thread-safe; the
/// flusher writes while test threads arm crashes and read the stream back.
class InMemoryLogDevice : public LogDevice {
 public:
  Status Append(const uint8_t* data, size_t len, Lsn lsn) override;
  uint64_t DurableBytes() const override;
  Status ReadAll(std::vector<uint8_t>* out) const override;

  /// Crash after `extra_bytes` more bytes are accepted: the write in flight
  /// at that point is torn mid-record and everything later is dropped on
  /// the floor, exactly like power loss during a device DMA.
  void CrashAfter(uint64_t extra_bytes);

  /// True once a crash point has been hit (some write was cut short).
  bool crashed() const;

 private:
  mutable std::mutex mu_;
  std::vector<uint8_t> bytes_;
  uint64_t accept_limit_ = UINT64_MAX;  ///< total bytes accepted before crash
  bool crashed_ = false;
};

/// Append-only file device. Writes land at their LSN offset (the file is
/// the log stream, byte for byte), fsync'd per flush by default so the
/// durability contract holds across a host crash, not just a process exit.
/// `fsync_every_n_flushes` coalesces that cost: 1 = every flush (default
/// contract), N = every Nth (bytes between syncs survive a process crash
/// via the page cache but not a host crash — a measured trade-off, see
/// LogOptions::fsync_every_n_flushes), 0 = never. Any unsynced tail is
/// still fsync'd on clean shutdown (destructor).
///
/// Truncation is deferred to the FIRST append: opening the device does not
/// destroy an existing log at `path`, so the natural restart-in-place flow
/// — construct the Database with the same log_path, Recover(log_path),
/// then serve traffic — reads the old log back before the new log (which
/// starts with the recovery snapshot, see Database::RecoverFromStream)
/// overwrites it. Truncating before the first write is required for
/// correctness: a new log shorter than the old file would otherwise leave
/// a stale tail of CRC-valid records at their original offsets, which a
/// later recovery would happily resurrect.
class FileLogDevice : public LogDevice {
 public:
  /// Opens (creates if absent) `path` without truncating; see class note.
  static Status Open(const std::string& path, uint32_t fsync_every_n_flushes,
                     std::unique_ptr<FileLogDevice>* out);
  ~FileLogDevice() override;

  FileLogDevice(const FileLogDevice&) = delete;
  FileLogDevice& operator=(const FileLogDevice&) = delete;

  Status Append(const uint8_t* data, size_t len, Lsn lsn) override;
  uint64_t DurableBytes() const override;
  Status ReadAll(std::vector<uint8_t>* out) const override;

  /// Read an existing log file (recovery path; does not truncate).
  static Status ReadFile(const std::string& path, std::vector<uint8_t>* out);

 private:
  FileLogDevice(int fd, std::string path, uint32_t fsync_every_n_flushes)
      : fd_(fd),
        path_(std::move(path)),
        fsync_every_n_(fsync_every_n_flushes) {}

  int fd_;
  std::string path_;
  uint32_t fsync_every_n_;            ///< 0 = never, 1 = every flush
  uint32_t flushes_since_sync_ = 0;   ///< flusher-thread only
  bool truncated_ = false;  ///< flusher-thread only (single writer)
  std::atomic<uint64_t> written_{0};  ///< advanced by the flusher thread
};

/// Install `device` as `options`' flush_sink. The device must outlive the
/// LogManager constructed from the options.
void AttachLogDevice(LogOptions* options, LogDevice* device);

}  // namespace slidb
