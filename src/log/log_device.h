// Log devices: the durable end of the WAL. The flusher hands contiguous,
// LSN-ordered byte ranges to LogOptions::flush_sink; a LogDevice is the
// object behind that seam that actually persists them. Three
// implementations:
//
//   * FileLogDevice — a single append-only file (pwrite at the LSN offset +
//     optional fsync per flush). Survives the process; Database::Recover
//     reads it back.
//   * SegmentedLogDevice — fixed-size segment files under a path prefix,
//     rotated write-new-then-rename with parent-directory fsync, organized
//     into GENERATIONS (one per process lifetime of the log stream).
//     Recovery stitches a generation's segments by header metadata, and
//     completed checkpoints let old segments be recycled (unlinked), so
//     log storage is bounded by checkpoint cadence instead of history.
//   * InMemoryLogDevice — a deterministic byte vector with crash injection
//     (stop accepting bytes at an arbitrary point, emulating power loss mid
//     device write). The recovery test harness and benches build on it.
//
// Durability contract: flush_sink blocks the flusher until the range is
// durable, and the LogManager advances durable_lsn only after the sink
// returns — so a committer released by WaitDurable knows its bytes reached
// the device (or the device lied, which is what the crash tests emulate).
//
// Fail-stop contract: a REPORTED write/fsync/close failure poisons the
// device — every later Append fails too, and the flush_sink adapter aborts
// the process. Acking durability past a failed write would be silent,
// unbounded loss; the classic WAL answer is to panic (see AttachLogDevice).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/log/log_record.h"
#include "src/util/status.h"

namespace slidb {

struct LogOptions;  // log_manager.h

class LogDevice {
 public:
  virtual ~LogDevice() = default;

  /// Persist `len` bytes whose first byte is log offset `lsn`. The flusher
  /// calls this with contiguous, strictly increasing ranges. Must not
  /// return before the bytes are durable (or dropped — a crashed device).
  virtual Status Append(const uint8_t* data, size_t len, Lsn lsn) = 0;

  /// Bytes durably stored (the length of the valid-until-torn prefix a
  /// recovery scan will see). This is an END offset: with recycling the
  /// stream starts at base_lsn(), not 0.
  virtual uint64_t DurableBytes() const = 0;

  /// Read the durable stream back for recovery. The first byte of `out`
  /// sits at log offset base_lsn().
  virtual Status ReadAll(std::vector<uint8_t>* out) const = 0;

  /// Log offset of the first byte ReadAll returns (nonzero once segments
  /// below a completed checkpoint were recycled).
  virtual Lsn base_lsn() const { return 0; }

  /// The caller (checkpointer) guarantees no future recovery will read
  /// below `lsn` — storage for earlier bytes may be reclaimed. Default:
  /// keep everything.
  virtual void RecycleBelow(Lsn lsn) { (void)lsn; }
};

/// Test seam: make the next `count` fsync/fdatasync calls issued by file
/// log devices report failure (as if the disk died), without touching the
/// real file. Process-global; pass 0 to disarm. Returns the previous value.
int SetLogSyncFailureInjection(int count);

/// Deterministic in-memory device with crash injection. Thread-safe; the
/// flusher writes while test threads arm crashes and read the stream back.
class InMemoryLogDevice : public LogDevice {
 public:
  Status Append(const uint8_t* data, size_t len, Lsn lsn) override;
  uint64_t DurableBytes() const override;
  Status ReadAll(std::vector<uint8_t>* out) const override;

  /// Crash after `extra_bytes` more bytes are accepted: the write in flight
  /// at that point is torn mid-record and everything later is dropped on
  /// the floor, exactly like power loss during a device DMA.
  void CrashAfter(uint64_t extra_bytes);

  /// True once a crash point has been hit (some write was cut short).
  bool crashed() const;

 private:
  mutable std::mutex mu_;
  std::vector<uint8_t> bytes_;
  uint64_t accept_limit_ = UINT64_MAX;  ///< total bytes accepted before crash
  bool crashed_ = false;
};

/// Append-only single-file device. Writes land at their LSN offset (the
/// file is the log stream, byte for byte), fsync'd per flush by default so
/// the durability contract holds across a host crash, not just a process
/// exit. `fsync_every_n_flushes` coalesces that cost: 1 = every flush
/// (default contract), N = every Nth (bytes between syncs survive a process
/// crash via the page cache but not a host crash — a measured trade-off,
/// see LogOptions::fsync_every_n_flushes), 0 = never. Any unsynced tail is
/// still fsync'd on clean shutdown (destructor); if THAT sync fails the
/// destructor aborts the process — it has no status channel, and returning
/// normally would silently break the durability contract.
///
/// Truncation is deferred to the FIRST append: opening the device does not
/// destroy an existing log at `path`, so the natural restart-in-place flow
/// — construct the Database with the same log_path, Recover(log_path),
/// then serve traffic — reads the old log back before the new log (which
/// starts with the recovery snapshot, see Database::RecoverFromStream)
/// overwrites it. Truncating before the first write is required for
/// correctness: a new log shorter than the old file would otherwise leave
/// a stale tail of CRC-valid records at their original offsets, which a
/// later recovery would happily resurrect.
class FileLogDevice : public LogDevice {
 public:
  /// Opens (creates if absent) `path` without truncating; see class note.
  static Status Open(const std::string& path, uint32_t fsync_every_n_flushes,
                     std::unique_ptr<FileLogDevice>* out);
  ~FileLogDevice() override;

  FileLogDevice(const FileLogDevice&) = delete;
  FileLogDevice& operator=(const FileLogDevice&) = delete;

  Status Append(const uint8_t* data, size_t len, Lsn lsn) override;
  uint64_t DurableBytes() const override;
  Status ReadAll(std::vector<uint8_t>* out) const override;

  /// True once a reported I/O failure permanently disabled the device.
  bool poisoned() const { return poisoned_.load(std::memory_order_acquire); }

  /// Read an existing log file (recovery path; does not truncate).
  static Status ReadFile(const std::string& path, std::vector<uint8_t>* out);

 private:
  FileLogDevice(int fd, std::string path, uint32_t fsync_every_n_flushes)
      : fd_(fd),
        path_(std::move(path)),
        fsync_every_n_(fsync_every_n_flushes) {}

  Status Poison(const char* what);

  int fd_;
  std::string path_;
  uint32_t fsync_every_n_;            ///< 0 = never, 1 = every flush
  uint32_t flushes_since_sync_ = 0;   ///< flusher-thread only
  bool truncated_ = false;  ///< flusher-thread only (single writer)
  std::atomic<uint64_t> written_{0};  ///< advanced by the flusher thread
  std::atomic<bool> poisoned_{false};
};

/// Rotating fixed-size segment files: `<prefix>.gen<G>.seg<N>`, each
/// opening with a 64-byte header naming its generation, segment number,
/// and payload capacity. Log offset L of generation G lives in segment
/// L / payload_capacity at file offset 64 + L % payload_capacity.
///
/// Generations replace FileLogDevice's deferred truncation: each process
/// lifetime writes a FRESH generation (highest existing + 1), created
/// lazily at the first append, so recovery can read the previous
/// generation's stream before a single new byte lands. A generation that
/// succeeds an existing one is born TENTATIVE (header flag): until
/// MarkGenerationAuthoritative() clears the flag — which Database does
/// after recovery's opening checkpoint is durable — a later recovery
/// ignores it and falls back to the newest authoritative generation. That
/// closes the crash-during-recovery window: the old log stays the source
/// of truth until the new one provably carries the recovered state.
///
/// Segment creation is write-new-then-rename (header written and fsync'd
/// into a temp file, rename into place, parent directory fsync'd), so a
/// crash never leaves a half-created segment under a live name. Recycling
/// (RecycleBelow) unlinks whole segments below the last completed
/// checkpoint's redo-start; a recycled generation is recognized by its
/// missing low segments and is authoritative by construction (recycling
/// only runs after the opening checkpoint completed).
class SegmentedLogDevice : public LogDevice {
 public:
  /// Enumerates existing generations under `prefix` without modifying
  /// anything. `segment_bytes` is the per-segment PAYLOAD capacity.
  static Status Open(const std::string& prefix,
                     uint32_t fsync_every_n_flushes, uint64_t segment_bytes,
                     std::unique_ptr<SegmentedLogDevice>* out);
  ~SegmentedLogDevice() override;

  SegmentedLogDevice(const SegmentedLogDevice&) = delete;
  SegmentedLogDevice& operator=(const SegmentedLogDevice&) = delete;

  Status Append(const uint8_t* data, size_t len, Lsn lsn) override;
  uint64_t DurableBytes() const override;
  Status ReadAll(std::vector<uint8_t>* out) const override;
  Lsn base_lsn() const override;
  void RecycleBelow(Lsn lsn) override;

  /// Clear the write generation's tentative flag (in seg0's header, synced
  /// in place) and delete every older generation's files. Call exactly when
  /// the new generation is self-contained — its opening checkpoint (or
  /// snapshot) is durable. No-op if nothing was appended yet or the
  /// generation was already authoritative.
  Status MarkGenerationAuthoritative();

  bool poisoned() const { return poisoned_.load(std::memory_order_acquire); }
  uint64_t write_generation() const { return write_gen_; }

  /// Read the newest authoritative generation's stitched stream (for
  /// recovery, before any new writes). `*base_lsn` is the offset of the
  /// first returned byte (nonzero when low segments were recycled);
  /// `*generation` the generation read, or kLsnNone when none exists
  /// (empty stream returned).
  static Status ReadLog(const std::string& prefix, std::vector<uint8_t>* out,
                        Lsn* base_lsn, uint64_t* generation = nullptr);

 private:
  SegmentedLogDevice(std::string prefix, uint32_t fsync_every_n_flushes,
                     uint64_t segment_bytes)
      : prefix_(std::move(prefix)),
        fsync_every_n_(fsync_every_n_flushes),
        seg_payload_(segment_bytes) {}

  Status Poison(const char* what);
  /// Create segment `seg_no` of the write generation (write-new-then-
  /// rename) and make it the current write segment.
  Status OpenSegment(uint64_t seg_no);
  /// First append only: delete stale tentative generations above the read
  /// generation, then create seg0.
  Status PrepareGeneration();
  std::string SegPath(uint64_t gen, uint64_t seg_no) const;

  const std::string prefix_;
  const uint32_t fsync_every_n_;
  const uint64_t seg_payload_;

  uint64_t write_gen_ = 0;      ///< generation this device appends to
  bool tentative_ = false;      ///< write gen succeeds an existing one
  bool prepared_ = false;       ///< flusher-thread only (single writer)
  int cur_fd_ = -1;             ///< current write segment
  uint64_t cur_seg_ = 0;
  uint32_t flushes_since_sync_ = 0;

  mutable std::mutex mu_;       ///< guards base_seg_/trim_lsn_ vs recycling
  uint64_t base_seg_ = 0;       ///< lowest retained segment (write gen)
  Lsn trim_lsn_ = 0;            ///< stream resumes here after recycling
  std::atomic<uint64_t> written_{0};
  std::atomic<bool> poisoned_{false};
};

/// Install `device` as `options`' flush_sink. The device must outlive the
/// LogManager constructed from the options.
void AttachLogDevice(LogOptions* options, LogDevice* device);

}  // namespace slidb
