// Write-ahead log with a decentralized commit pipeline.
//
// Append path (default): writers claim log space with a single atomic
// fetch-add on a packed (record-seq, byte-offset) ticket — no latch — fill
// their bytes in the ring, then publish the record through a per-slot
// "filled" watermark. The flusher advances the contiguous-filled watermark
// over completed records in LSN order, hardens [durable, watermark) (paying
// an optional simulated device latency), and advances the durable LSN.
//
// Commit path (default): committers enqueue a {lsn, flag} node on a
// latch-free stack; the flusher wakes exactly the waiters whose records it
// just made durable (consolidated group commit) instead of broadcasting to
// every committer on every flush.
//
// The legacy single-latch append and broadcast-condvar wakeup are retained
// behind LogOptions knobs as the measured baseline (bench/macro_workloads).
//
// On-wire record format (self-describing, CRC32C-sealed): log_record.h.
// The flusher hands hardened byte ranges to `flush_sink` — attach a
// LogDevice (log_device.h) there for a durable stream that RecoveryManager
// (recovery.h) can replay after a crash.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>

#include "src/log/commit_dependency.h"
#include "src/log/log_record.h"
#include "src/log/log_staging.h"
#include "src/util/cacheline.h"
#include "src/util/latch.h"
#include "src/util/status.h"

namespace slidb {

struct LogOptions {
  size_t buffer_bytes = 8u << 20;
  /// Flusher wake-up cadence. Shorter = lower commit latency, more
  /// simulated I/Os.
  uint64_t flush_interval_us = 50;
  /// Per-flush simulated device latency (the paper charges 6 ms per I/O for
  /// data pages; log devices are faster — default 0, configurable).
  uint64_t simulated_io_delay_us = 0;
  /// When false, WaitDurable returns immediately (for lock-bound
  /// microbenchmarks that want the log out of the picture).
  bool durable_commit = true;

  enum class AppendMode : uint8_t {
    kReserve,  ///< latch-free ring-space reservation (default)
    kLatched,  ///< legacy single append latch (bench baseline)
  };
  AppendMode append_mode = AppendMode::kReserve;

  /// Bound on reserved-but-unconsumed records in flight (rounded up to a
  /// power of two, clamped to [2, 2^19] — strictly below the 2^20 seq-tag
  /// space so slot tags stay unambiguous). Sizes the publish-slot array; a
  /// writer whose slot is still occupied helps consume the publish queue
  /// and otherwise waits (slot backpressure). 0 = auto: scale with the
  /// ring (buffer_bytes / 128) so the in-flight runway covers a scheduler
  /// quantum even when one writer is preempted mid-fill.
  size_t reservation_slots = 0;

  enum class WaiterPolicy : uint8_t {
    kConsolidated,  ///< per-committer nodes; flusher wakes exactly the
                    ///< waiters whose LSN just became durable (default)
    kBroadcast,     ///< legacy shared condvar, notify_all per flush
  };
  WaiterPolicy waiter_policy = WaiterPolicy::kConsolidated;

  /// AppendBatch wraps runs of >= 2 consecutive records whose wire size
  /// (header + payload) is at most this bound in a kBatchSeal envelope:
  /// one CRC seals the whole run instead of one per record. 0 disables
  /// envelopes (every batched record is sealed individually).
  uint32_t batch_seal_max_record_bytes = kBatchSealMaxRecordBytes;

  /// fsync cadence for a FileLogDevice attached via DatabaseOptions:
  /// 1 = every flush (default, the strict host-crash durability contract),
  /// N = every Nth flush (coalesced fsync — bytes between syncs survive a
  /// process crash via the page cache but not a host crash; the knob
  /// exists to measure that cost on a real disk), 0 = never fsync (same
  /// effect as DatabaseOptions::log_sync_each_flush = false — page-cache
  /// durability only). For N >= 1 the device still syncs any unsynced
  /// tail on clean shutdown.
  uint32_t fsync_every_n_flushes = 1;

  /// Device-write hook: the flusher calls it for each contiguous byte range
  /// as the range becomes durable (ring wrap may split one flush into two
  /// calls; `start_lsn` is the log offset of `data[0]`). Tests use it to
  /// capture and verify the exact durable byte stream; it also gates
  /// durability (the durable LSN only advances after the sink returns).
  /// Called from the flusher thread with no internal locks held.
  std::function<void(const uint8_t* data, size_t len, Lsn start_lsn)>
      flush_sink;
};

/// Statistics snapshot.
struct LogStats {
  uint64_t appended_bytes = 0;  ///< published (contiguously filled) bytes
  uint64_t reserved_bytes = 0;  ///< claimed bytes, filled or not
  uint64_t records = 0;
  uint64_t flushes = 0;
};

class LogManager {
 public:
  explicit LogManager(LogOptions options = {});
  ~LogManager();

  LogManager(const LogManager&) = delete;
  LogManager& operator=(const LogManager&) = delete;

  /// Append one record; returns its end LSN. May block (ring-space or
  /// publish-slot backpressure) until the flusher frees space.
  Lsn Append(uint64_t txn_id, LogRecordType type, const void* payload,
             uint32_t payload_len);

  /// Publish every record staged in `staging` and drain it; returns the
  /// batch's end LSN (the end of its last record). The whole batch costs
  /// ONE ticket fetch-add and one publish-slot handoff (it may split into
  /// a few reservations only when it exceeds half the ring), with each
  /// record's seal — lsn patch + CRC — folded into the ring copy loop.
  /// Runs of small records are wrapped in kBatchSeal envelopes (see
  /// LogOptions::batch_seal_max_record_bytes). Record order within the
  /// batch is preserved; an empty staging buffer publishes nothing and
  /// returns appended_lsn().
  Lsn AppendBatch(LogStagingBuffer* staging);

  /// Block until everything up to `lsn` is durable (group commit).
  void WaitDurable(Lsn lsn);

  /// Deadline-bounded WaitDurable: block until `lsn` is durable or the
  /// absolute deadline (NowNanos clock) passes, whichever is first. Returns
  /// true when durable. `deadline_ns == 0` degrades to WaitDurable (always
  /// true). Unlike WaitDurable's per-thread settlement node this polls the
  /// durable LSN at flush cadence under the flush mutex — an abandoned wait
  /// must leave no node behind for the flusher to settle.
  bool WaitDurableUntil(Lsn lsn, uint64_t deadline_ns);

  /// Asynchronous alternative to WaitDurable (speculative commits): park
  /// `ack` — its `lsn` and `park_ns` already filled by the caller — on the
  /// dependency-settlement queue and return immediately. The flusher
  /// settles it (state kParked -> kDurable) in the pass that makes its LSN
  /// durable, or as kLost at shutdown if the horizon never hardens. Fast
  /// path: when the LSN is already durable (or durability is off) the ack
  /// settles inline as kDurable and this returns false — nothing was
  /// parked. The node must stay alive until it reaches a terminal state;
  /// DeferredAckRing provides that lifetime.
  bool ParkDeferred(DeferredAck* ack);

  Lsn durable_lsn() const { return durable_lsn_.load(std::memory_order_acquire); }
  /// End of the contiguously *published* prefix (every record below it is
  /// completely filled; the flusher may harden up to here).
  Lsn appended_lsn() const {
    return watermark_.load(std::memory_order_acquire);
  }
  /// End of the *reserved* prefix (claimed by writers, possibly still being
  /// filled). reserved_lsn() >= appended_lsn() >= durable_lsn().
  Lsn reserved_lsn() const;

  LogStats Stats() const;

 private:
  /// One committer waiting for its commit record to harden. Nodes are
  /// thread-local (one outstanding WaitDurable per thread) and pushed onto
  /// `waiters_` latch-free; the flusher owns them until it sets `done`.
  struct CommitWaiter {
    Lsn lsn = 0;
    std::atomic<bool> done{false};
    CommitWaiter* next = nullptr;
  };

  // Reservation ticket layout: low kSeqShift bits = byte offset (16 TB of
  // log — the documented capacity limit), high 20 bits = record sequence
  // number. One fetch-add claims both, so slot order always equals LSN
  // order. The sequence number wraps modulo 2^20; all tag comparisons are
  // therefore performed in that modular space (kSeqMask), which is
  // unambiguous because at most `reservation_slots` (< 2^20 by the ctor
  // clamp, in practice a live thread each) appends are ever in flight
  // between two uses of the same residue.
  static constexpr int kSeqShift = 44;
  static constexpr uint64_t kOffsetMask = (uint64_t{1} << kSeqShift) - 1;
  static constexpr uint64_t kSeqMask = (uint64_t{1} << (64 - kSeqShift)) - 1;

  /// One publish slot (bounded-MPMC style). `tag` sequences ownership in
  /// modular seq space: a writer with record seq `s` may fill the slot only
  /// when tag == s (stores tag = s + 1 after writing `end`); the flusher
  /// consumes when tag == s + 1 and re-arms with tag = s + slots,
  /// readmitting the writer of the next round. The tag's release/acquire
  /// pairs order the plain `end` field and the ring bytes.
  ///
  /// Cache-line aligned: adjacent record sequences map to adjacent slots,
  /// so unpadded slots (4 per line) put concurrent publishers on the same
  /// line — false sharing on real SMP. The slot array stays bounded via
  /// `reservation_slots` (auto-scale buffer/128, hard clamp 2^19 → at most
  /// 32 MB of slots for the largest admissible ring).
  struct alignas(kCacheLineSize) PublishSlot {
    std::atomic<uint64_t> tag{0};
    uint64_t end = 0;
  };

  Lsn AppendReserve(uint64_t txn_id, LogRecordType type, const void* payload,
                    uint32_t payload_len);
  Lsn AppendLatched(uint64_t txn_id, LogRecordType type, const void* payload,
                    uint32_t payload_len);
  /// Split the staged records into plain/envelope segments (no copying;
  /// fills the staging buffer's reusable scratch).
  void PlanBatchSegments(LogStagingBuffer* staging) const;
  /// Seal `seg` at ring offset `at`: patch interior lsns, fold the CRC into
  /// the ring copy, and write the sealed header(s). Returns wire bytes.
  size_t SealSegmentIntoRing(LogStagingBuffer* staging,
                             const LogBatchSegment& seg, Lsn at);
  /// Publish one reservation's worth of segments (reserve / latched path).
  Lsn PublishChunkReserve(LogStagingBuffer* staging,
                          const LogBatchSegment* segs, size_t n,
                          size_t total);
  Lsn PublishChunkLatched(LogStagingBuffer* staging,
                          const LogBatchSegment* segs, size_t n,
                          size_t total);
  void CopyIntoRing(Lsn at, const void* src, size_t len);
  /// CopyIntoRing fused with a CRC32C extension over the copied bytes.
  uint32_t CopyIntoRingCrc(Lsn at, const void* src, size_t len, uint32_t crc);
  /// One backpressure pause: kick the flusher, yield, charge blocked time.
  void BackpressurePause();

  void FlusherLoop();
  void FlushOnce();
  /// Consume contiguously published slots and advance `watermark_`.
  /// Returns true iff it advanced. Caller must hold `publish_latch_`.
  bool AdvanceWatermarkLocked();
  /// Try to take the consumer role and advance the watermark; returns true
  /// only when the watermark actually moved (false when another thread is
  /// already consuming or nothing is publishable — callers should back
  /// off then). Writers call this from slot backpressure (cooperative
  /// publish) so progress never waits on the flusher's wake-up cadence.
  bool TryAdvanceWatermark();
  void EmitToSink(Lsn from, Lsn to);
  /// Wake satisfied committers (consolidated policy; flusher thread only).
  /// With `shutdown` set, every waiter is released regardless of LSN.
  void SettleWaiters(bool shutdown);
  /// Settle parked deferred acks whose horizon is now durable (flusher
  /// thread only). With `shutdown` set, still-unsatisfied acks settle as
  /// kLost — their dependencies aborted with the log, so they must never
  /// be reported as committed.
  void SettleDeferredAcks(bool shutdown);

  LogOptions options_;
  size_t slot_mask_ = 0;
  std::unique_ptr<uint8_t[]> ring_;
  /// Publish slots, indexed by record seq & slot_mask_ (see PublishSlot).
  std::unique_ptr<PublishSlot[]> slots_;

  SpinLatch append_latch_;  ///< kLatched mode only
  std::atomic<uint64_t> ticket_{0};
  std::atomic<Lsn> watermark_{0};
  std::atomic<Lsn> durable_lsn_{0};
  std::atomic<uint64_t> records_{0};
  std::atomic<uint64_t> flushes_{0};

  std::atomic<CommitWaiter*> waiters_{nullptr};  ///< incoming (Treiber push)
  CommitWaiter* pending_ = nullptr;              ///< flusher-private

  /// Dependency-settlement queue (speculative commits): same incoming /
  /// flusher-private split as the commit waiters above.
  std::atomic<DeferredAck*> deferred_{nullptr};
  DeferredAck* deferred_pending_ = nullptr;

  /// Serializes the consumer role (watermark advance). Held briefly by the
  /// flusher each pass and by writers helping from slot backpressure.
  SpinLatch publish_latch_;
  uint64_t next_seq_ = 0;  ///< protected by publish_latch_

  std::mutex flush_mu_;
  std::condition_variable flush_cv_;    // waking the flusher
  std::condition_variable durable_cv_;  // waking committers (kBroadcast)
  bool stop_ = false;
  std::thread flusher_;
};

}  // namespace slidb
