// Write-ahead log with group commit. A single append latch serializes
// writers into a circular buffer; a flusher thread advances the durable LSN
// in batches (optionally paying a simulated I/O delay, reproducing the
// paper's methodology of charging latency per I/O against an in-memory
// device). Committers block until their commit record is durable.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>

#include "src/util/latch.h"
#include "src/util/status.h"

namespace slidb {

/// Log sequence number: byte offset of the end of the record in the
/// (virtual, unbounded) log stream.
using Lsn = uint64_t;

enum class LogRecordType : uint8_t {
  kUpdate = 0,
  kInsert,
  kDelete,
  kCommit,
  kAbort,
};

struct LogOptions {
  size_t buffer_bytes = 8u << 20;
  /// Flusher wake-up cadence. Shorter = lower commit latency, more
  /// simulated I/Os.
  uint64_t flush_interval_us = 50;
  /// Per-flush simulated device latency (the paper charges 6 ms per I/O for
  /// data pages; log devices are faster — default 0, configurable).
  uint64_t simulated_io_delay_us = 0;
  /// When false, WaitDurable returns immediately (for lock-bound
  /// microbenchmarks that want the log out of the picture).
  bool durable_commit = true;
};

/// Statistics snapshot.
struct LogStats {
  uint64_t appended_bytes = 0;
  uint64_t records = 0;
  uint64_t flushes = 0;
};

class LogManager {
 public:
  explicit LogManager(LogOptions options = {});
  ~LogManager();

  LogManager(const LogManager&) = delete;
  LogManager& operator=(const LogManager&) = delete;

  /// Append one record; returns its LSN. Blocks if the ring is full until
  /// the flusher frees space.
  Lsn Append(uint64_t txn_id, LogRecordType type, const void* payload,
             uint32_t payload_len);

  /// Block until everything up to `lsn` is durable (group commit).
  void WaitDurable(Lsn lsn);

  Lsn durable_lsn() const { return durable_lsn_.load(std::memory_order_acquire); }
  Lsn appended_lsn() const {
    return appended_lsn_.load(std::memory_order_acquire);
  }

  LogStats Stats() const;

 private:
  struct RecordHeader {
    uint32_t payload_len;
    uint8_t type;
    uint8_t pad[3];
    uint64_t txn_id;
  };
  static_assert(sizeof(RecordHeader) == 16);

  void FlusherLoop();

  LogOptions options_;
  std::unique_ptr<uint8_t[]> ring_;

  SpinLatch append_latch_;
  std::atomic<Lsn> appended_lsn_{0};
  std::atomic<Lsn> durable_lsn_{0};
  std::atomic<uint64_t> records_{0};
  std::atomic<uint64_t> flushes_{0};

  std::mutex flush_mu_;
  std::condition_variable flush_cv_;    // waking the flusher
  std::condition_variable durable_cv_;  // waking committers
  bool stop_ = false;
  std::thread flusher_;
};

}  // namespace slidb
