#include "src/log/log_device.h"

#include <dirent.h>
#include <fcntl.h>
#include <libgen.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>

#include "src/log/log_manager.h"
#include "src/stats/counters.h"

namespace slidb {

namespace {

/// Injected fsync failures (test seam). Decremented per fsync while > 0;
/// the affected sync reports failure without touching the file.
std::atomic<int> g_sync_failures{0};

/// fsync through the injection seam. Returns 0 on success, -1 on (real or
/// injected) failure.
int MaybeFsync(int fd) {
  int pending = g_sync_failures.load(std::memory_order_relaxed);
  while (pending > 0) {
    if (g_sync_failures.compare_exchange_weak(pending, pending - 1,
                                              std::memory_order_relaxed)) {
      errno = EIO;
      return -1;
    }
  }
  return ::fsync(fd);
}

/// fsync the parent directory of `path` (durable directory entry after
/// create/rename/unlink). Returns 0 on success.
int SyncParentDir(const std::string& path) {
  std::string dir_path = path;  // dirname may modify its argument
  const char* dir = ::dirname(dir_path.data());
  const int dir_fd = ::open(dir, O_RDONLY | O_DIRECTORY);
  if (dir_fd < 0) return -1;
  const int rc = MaybeFsync(dir_fd);
  ::close(dir_fd);
  return rc;
}

}  // namespace

int SetLogSyncFailureInjection(int count) {
  return g_sync_failures.exchange(count, std::memory_order_relaxed);
}

// ---- InMemoryLogDevice ------------------------------------------------------

Status InMemoryLogDevice::Append(const uint8_t* data, size_t len, Lsn lsn) {
  std::lock_guard<std::mutex> g(mu_);
  if (lsn != bytes_.size() && !crashed_) {
    return Status::InvalidArgument("non-contiguous log append");
  }
  if (crashed_) return Status::OK();  // device is gone; bytes vanish
  const uint64_t room = accept_limit_ - bytes_.size();
  const size_t take = static_cast<size_t>(std::min<uint64_t>(len, room));
  bytes_.insert(bytes_.end(), data, data + take);
  if (take < len) crashed_ = true;  // torn write: prefix landed, rest lost
  return Status::OK();
}

uint64_t InMemoryLogDevice::DurableBytes() const {
  std::lock_guard<std::mutex> g(mu_);
  return bytes_.size();
}

Status InMemoryLogDevice::ReadAll(std::vector<uint8_t>* out) const {
  std::lock_guard<std::mutex> g(mu_);
  *out = bytes_;
  return Status::OK();
}

void InMemoryLogDevice::CrashAfter(uint64_t extra_bytes) {
  std::lock_guard<std::mutex> g(mu_);
  accept_limit_ = bytes_.size() + extra_bytes;
}

bool InMemoryLogDevice::crashed() const {
  std::lock_guard<std::mutex> g(mu_);
  return crashed_;
}

// ---- FileLogDevice ----------------------------------------------------------

Status FileLogDevice::Open(const std::string& path,
                           uint32_t fsync_every_n_flushes,
                           std::unique_ptr<FileLogDevice>* out) {
  const int fd = ::open(path.c_str(), O_CREAT | O_WRONLY, 0644);
  if (fd < 0) return Status::IoError("open log file: " + path);
  // Persist the directory entry too: per-flush fsync makes the *bytes*
  // durable, but a file created with O_CREAT can itself vanish on a host
  // crash unless its parent directory is synced.
  (void)SyncParentDir(path);
  out->reset(new FileLogDevice(fd, path, fsync_every_n_flushes));
  return Status::OK();
}

Status FileLogDevice::Poison(const char* what) {
  poisoned_.store(true, std::memory_order_release);
  CountEvent(Counter::kLogSyncFailures);
  return Status::IoError(std::string(what) + ": " + path_);
}

FileLogDevice::~FileLogDevice() {
  if (fd_ < 0) return;
  if (poisoned()) {
    // The failure was already reported through Append's status (and the
    // flush_sink adapter aborts on it); nothing left to guarantee here.
    ::close(fd_);
    return;
  }
  // Coalesced-fsync mode may hold an unsynced tail; a clean shutdown must
  // not be weaker than the per-flush contract. A destructor has no status
  // channel, so an UNREPORTED failure here is fail-stop: returning
  // normally would let the process exit believing data is durable.
  if (fsync_every_n_ != 0 && flushes_since_sync_ > 0 && MaybeFsync(fd_) != 0) {
    CountEvent(Counter::kLogSyncFailures);
    std::fprintf(stderr, "slidb: log tail fsync failed on close (%s)\n",
                 path_.c_str());
    std::abort();
  }
  if (::close(fd_) != 0) {
    CountEvent(Counter::kLogSyncFailures);
    std::fprintf(stderr, "slidb: log close failed (%s)\n", path_.c_str());
    std::abort();
  }
}

Status FileLogDevice::Append(const uint8_t* data, size_t len, Lsn lsn) {
  if (poisoned()) return Status::IoError("log device poisoned: " + path_);
  if (!truncated_) {
    // First write of the new log stream: drop whatever log the file held
    // (recovery has read it back by now — Recover runs before traffic).
    if (::ftruncate(fd_, 0) != 0) return Poison("truncate log file");
    truncated_ = true;
  }
  size_t done = 0;
  while (done < len) {
    const ssize_t n = ::pwrite(fd_, data + done, len - done,
                               static_cast<off_t>(lsn + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Poison("pwrite log file");
    }
    done += static_cast<size_t>(n);
  }
  if (fsync_every_n_ != 0 && ++flushes_since_sync_ >= fsync_every_n_) {
    if (MaybeFsync(fd_) != 0) return Poison("fsync log file");
    flushes_since_sync_ = 0;
  }
  written_.store(std::max(written_.load(std::memory_order_relaxed),
                          static_cast<uint64_t>(lsn + len)),
                 std::memory_order_release);
  return Status::OK();
}

uint64_t FileLogDevice::DurableBytes() const {
  return written_.load(std::memory_order_acquire);
}

Status FileLogDevice::ReadAll(std::vector<uint8_t>* out) const {
  const Status st = ReadFile(path_, out);
  if (!st.ok()) return st;
  // Before the first append the file still holds the PREVIOUS log (see
  // the deferred-truncation note); this device's stream is only what it
  // has written itself.
  if (out->size() > DurableBytes()) out->resize(DurableBytes());
  return Status::OK();
}

Status FileLogDevice::ReadFile(const std::string& path,
                               std::vector<uint8_t>* out) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IoError("open log file for read: " + path);
  out->clear();
  uint8_t buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::IoError("read log file");
    }
    if (n == 0) break;
    out->insert(out->end(), buf, buf + n);
  }
  ::close(fd);
  return Status::OK();
}

// ---- SegmentedLogDevice -----------------------------------------------------

namespace {

constexpr uint64_t kSegMagic = 0x4745534244494C53ULL;  // "SLIDBSEG" LE
constexpr uint32_t kSegFormatVersion = 1;
constexpr uint32_t kSegHeaderSize = 64;
constexpr uint64_t kSegFlagTentative = 1;
/// Byte offset of `flags` inside SegmentHeader (magic + version +
/// header_size + generation + seg_no + seg_payload).
constexpr size_t kSegFlagsOffset = 8 + 4 + 4 + 8 + 8 + 8;
constexpr size_t kSegTrimOffset = kSegFlagsOffset + 8;

struct SegmentHeader {
  uint64_t magic;
  uint32_t version;
  uint32_t header_size;
  uint64_t generation;
  uint64_t seg_no;
  uint64_t seg_payload;  ///< payload capacity per segment of this generation
  uint64_t flags;        ///< kSegFlagTentative until the gen is authoritative
  uint64_t trim_lsn;     ///< stream resumes here when predecessors recycled
  uint64_t reserved;     ///< zero
};
static_assert(sizeof(SegmentHeader) == kSegHeaderSize);
static_assert(offsetof(SegmentHeader, flags) == kSegFlagsOffset);
static_assert(offsetof(SegmentHeader, trim_lsn) == kSegTrimOffset);

/// gen → present segment numbers, from a directory scan for
/// `<prefix>.gen<G>.seg<N>` names. Stale `.tmp` files are reported
/// separately (they are creation leftovers, never part of a log).
struct SegmentListing {
  std::map<uint64_t, std::set<uint64_t>> gens;
  std::vector<std::string> tmp_files;  ///< full paths
};

Status ListSegments(const std::string& prefix, SegmentListing* out) {
  std::string dir_copy = prefix;
  std::string base_copy = prefix;
  const std::string dir = ::dirname(dir_copy.data());
  const std::string base = ::basename(base_copy.data());
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return Status::IoError("opendir: " + dir);
  for (struct dirent* e = ::readdir(d); e != nullptr; e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name.size() <= base.size() || name.compare(0, base.size(), base) != 0) {
      continue;
    }
    unsigned long long gen = 0, seg = 0;
    int consumed = 0;
    const char* rest = name.c_str() + base.size();
    if (std::sscanf(rest, ".gen%llu.seg%llu%n", &gen, &seg, &consumed) != 2) {
      continue;
    }
    const char* tail = rest + consumed;
    if (*tail == '\0') {
      out->gens[gen].insert(seg);
    } else if (std::strcmp(tail, ".tmp") == 0) {
      out->tmp_files.push_back(dir + "/" + name);
    }
  }
  ::closedir(d);
  return Status::OK();
}

Status ReadSegmentHeader(const std::string& path, SegmentHeader* hdr,
                         uint64_t* file_size) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IoError("open segment: " + path);
  uint8_t buf[kSegHeaderSize];
  size_t got = 0;
  while (got < sizeof(buf)) {
    const ssize_t n = ::read(fd, buf + got, sizeof(buf) - got);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    got += static_cast<size_t>(n);
  }
  const off_t end = ::lseek(fd, 0, SEEK_END);
  ::close(fd);
  if (got < sizeof(buf) || end < 0) {
    return Status::Corruption("short segment header: " + path);
  }
  std::memcpy(hdr, buf, sizeof(*hdr));
  if (hdr->magic != kSegMagic || hdr->version != kSegFormatVersion ||
      hdr->header_size != kSegHeaderSize || hdr->seg_payload == 0) {
    return Status::Corruption("bad segment header: " + path);
  }
  *file_size = static_cast<uint64_t>(end);
  return Status::OK();
}

std::string SegPathFor(const std::string& prefix, uint64_t gen,
                       uint64_t seg_no) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), ".gen%" PRIu64 ".seg%" PRIu64, gen, seg_no);
  return prefix + buf;
}

/// The generation a recovery should read: the newest one that is
/// authoritative — seg0 absent (recycled: authority by construction) or
/// seg0's tentative flag clear. Returns false when none qualifies.
bool PickReadGeneration(const std::string& prefix, const SegmentListing& ls,
                        uint64_t* gen_out) {
  for (auto it = ls.gens.rbegin(); it != ls.gens.rend(); ++it) {
    if (it->second.empty()) continue;
    const uint64_t lowest = *it->second.begin();
    if (lowest != 0) {
      *gen_out = it->first;  // recycled ⇒ was authoritative
      return true;
    }
    SegmentHeader hdr;
    uint64_t size = 0;
    if (!ReadSegmentHeader(SegPathFor(prefix, it->first, 0), &hdr, &size)
             .ok()) {
      continue;  // unreadable seg0: treat the whole generation as dead
    }
    if ((hdr.flags & kSegFlagTentative) == 0) {
      *gen_out = it->first;
      return true;
    }
  }
  return false;
}

}  // namespace

Status SegmentedLogDevice::Open(const std::string& prefix,
                                uint32_t fsync_every_n_flushes,
                                uint64_t segment_bytes,
                                std::unique_ptr<SegmentedLogDevice>* out) {
  if (segment_bytes == 0) {
    return Status::InvalidArgument("segment_bytes must be nonzero");
  }
  SegmentListing ls;
  SLIDB_RETURN_NOT_OK(ListSegments(prefix, &ls));
  auto dev = std::unique_ptr<SegmentedLogDevice>(
      new SegmentedLogDevice(prefix, fsync_every_n_flushes, segment_bytes));
  const uint64_t max_gen = ls.gens.empty() ? 0 : ls.gens.rbegin()->first;
  dev->write_gen_ = ls.gens.empty() ? 0 : max_gen + 1;
  // A generation that succeeds ANY prior log (segmented or a legacy plain
  // file at `prefix`) is tentative until the recovered state provably
  // lives in it (MarkGenerationAuthoritative).
  dev->tentative_ = !ls.gens.empty() || ::access(prefix.c_str(), F_OK) == 0;
  *out = std::move(dev);
  return Status::OK();
}

SegmentedLogDevice::~SegmentedLogDevice() {
  if (cur_fd_ < 0) return;
  if (poisoned()) {
    ::close(cur_fd_);
    return;
  }
  // Same fail-stop tail contract as FileLogDevice's destructor.
  if (fsync_every_n_ != 0 && flushes_since_sync_ > 0 &&
      MaybeFsync(cur_fd_) != 0) {
    CountEvent(Counter::kLogSyncFailures);
    std::fprintf(stderr, "slidb: log tail fsync failed on close (%s)\n",
                 prefix_.c_str());
    std::abort();
  }
  if (::close(cur_fd_) != 0) {
    CountEvent(Counter::kLogSyncFailures);
    std::fprintf(stderr, "slidb: log close failed (%s)\n", prefix_.c_str());
    std::abort();
  }
}

Status SegmentedLogDevice::Poison(const char* what) {
  poisoned_.store(true, std::memory_order_release);
  CountEvent(Counter::kLogSyncFailures);
  return Status::IoError(std::string(what) + ": " + prefix_);
}

std::string SegmentedLogDevice::SegPath(uint64_t gen, uint64_t seg_no) const {
  return SegPathFor(prefix_, gen, seg_no);
}

Status SegmentedLogDevice::OpenSegment(uint64_t seg_no) {
  // Write-new-then-rename: the header lands durably in a temp file first,
  // so a crash mid-creation never leaves a half-written segment under a
  // live name — recovery either sees the complete previous state or the
  // complete new segment.
  const std::string path = SegPath(write_gen_, seg_no);
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) return Poison("create segment");
  SegmentHeader hdr{};
  hdr.magic = kSegMagic;
  hdr.version = kSegFormatVersion;
  hdr.header_size = kSegHeaderSize;
  hdr.generation = write_gen_;
  hdr.seg_no = seg_no;
  hdr.seg_payload = seg_payload_;
  hdr.flags = (tentative_ && seg_no == 0) ? kSegFlagTentative : 0;
  size_t done = 0;
  const uint8_t* bytes = reinterpret_cast<const uint8_t*>(&hdr);
  while (done < sizeof(hdr)) {
    const ssize_t n = ::pwrite(fd, bytes + done, sizeof(hdr) - done,
                               static_cast<off_t>(done));
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) {
      ::close(fd);
      return Poison("write segment header");
    }
    done += static_cast<size_t>(n);
  }
  if (MaybeFsync(fd) != 0) {
    ::close(fd);
    return Poison("fsync new segment");
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::close(fd);
    return Poison("rename segment into place");
  }
  if (SyncParentDir(path) != 0) {
    ::close(fd);
    return Poison("fsync log directory");
  }
  if (cur_fd_ >= 0) ::close(cur_fd_);
  cur_fd_ = fd;  // still the same inode after rename
  cur_seg_ = seg_no;
  CountEvent(Counter::kLogSegmentsCreated);
  return Status::OK();
}

Status SegmentedLogDevice::PrepareGeneration() {
  // First write of the new generation. Stale generations above the one
  // recovery read (failed recovery attempts) and creation leftovers are
  // deleted now — the same moment FileLogDevice truncates — so a crash any
  // time before this point leaves every previous log intact.
  SegmentListing ls;
  SLIDB_RETURN_NOT_OK(ListSegments(prefix_, &ls));
  uint64_t keep_gen = 0;
  const bool have_keep = PickReadGeneration(prefix_, ls, &keep_gen);
  for (const auto& [gen, segs] : ls.gens) {
    if (gen >= write_gen_) continue;        // defensive; cannot exist yet
    if (have_keep && gen == keep_gen) continue;
    for (const uint64_t seg : segs) {
      (void)::unlink(SegPathFor(prefix_, gen, seg).c_str());
    }
  }
  for (const std::string& tmp : ls.tmp_files) (void)::unlink(tmp.c_str());
  prepared_ = true;
  return OpenSegment(0);
}

Status SegmentedLogDevice::Append(const uint8_t* data, size_t len, Lsn lsn) {
  if (poisoned()) return Status::IoError("log device poisoned: " + prefix_);
  if (!prepared_) SLIDB_RETURN_NOT_OK(PrepareGeneration());
  size_t done = 0;
  while (done < len) {
    const Lsn at = lsn + done;
    const uint64_t seg = at / seg_payload_;
    if (seg != cur_seg_) {
      // Rotation: the finished segment's bytes are made durable before the
      // next segment opens, so the durable stream can never have a hole a
      // later segment's bytes paper over.
      if (fsync_every_n_ != 0 && MaybeFsync(cur_fd_) != 0) {
        return Poison("fsync rotated segment");
      }
      flushes_since_sync_ = 0;
      SLIDB_RETURN_NOT_OK(OpenSegment(seg));
    }
    const uint64_t seg_off = at % seg_payload_;
    const size_t chunk = static_cast<size_t>(
        std::min<uint64_t>(len - done, seg_payload_ - seg_off));
    size_t wrote = 0;
    while (wrote < chunk) {
      const ssize_t n =
          ::pwrite(cur_fd_, data + done + wrote, chunk - wrote,
                   static_cast<off_t>(kSegHeaderSize + seg_off + wrote));
      if (n < 0 && errno == EINTR) continue;
      if (n < 0) return Poison("pwrite segment");
      wrote += static_cast<size_t>(n);
    }
    done += chunk;
  }
  if (fsync_every_n_ != 0 && ++flushes_since_sync_ >= fsync_every_n_) {
    if (MaybeFsync(cur_fd_) != 0) return Poison("fsync segment");
    flushes_since_sync_ = 0;
  }
  written_.store(std::max(written_.load(std::memory_order_relaxed),
                          static_cast<uint64_t>(lsn + len)),
                 std::memory_order_release);
  return Status::OK();
}

uint64_t SegmentedLogDevice::DurableBytes() const {
  return written_.load(std::memory_order_acquire);
}

Lsn SegmentedLogDevice::base_lsn() const {
  std::lock_guard<std::mutex> g(mu_);
  return std::max<Lsn>(base_seg_ * seg_payload_, trim_lsn_);
}

Status SegmentedLogDevice::ReadAll(std::vector<uint8_t>* out) const {
  out->clear();
  if (!prepared_) return Status::OK();  // nothing written by THIS device yet
  const uint64_t end = DurableBytes();
  uint64_t first_seg;
  Lsn trim;
  {
    std::lock_guard<std::mutex> g(mu_);
    first_seg = base_seg_;
    trim = trim_lsn_;
  }
  for (uint64_t seg = first_seg; seg * seg_payload_ < end; ++seg) {
    std::vector<uint8_t> file;
    SLIDB_RETURN_NOT_OK(FileLogDevice::ReadFile(SegPath(write_gen_, seg),
                                                &file));
    if (file.size() < kSegHeaderSize) {
      return Status::Corruption("segment shorter than its header");
    }
    const uint64_t seg_start = seg * seg_payload_;
    const uint64_t want = std::min(end - seg_start, seg_payload_);
    const uint64_t have =
        std::min<uint64_t>(file.size() - kSegHeaderSize, want);
    out->insert(out->end(), file.begin() + kSegHeaderSize,
                file.begin() + static_cast<size_t>(kSegHeaderSize + have));
    if (have < want) break;  // torn tail: later bytes never landed
  }
  // The first kept segment's head below the trim LSN predates the last
  // recycle point; ReadAll's contract is "everything from base_lsn()".
  const Lsn start = first_seg * seg_payload_;
  if (trim > start) {
    const size_t skip =
        static_cast<size_t>(std::min<uint64_t>(trim - start, out->size()));
    out->erase(out->begin(), out->begin() + static_cast<ptrdiff_t>(skip));
  }
  return Status::OK();
}

void SegmentedLogDevice::RecycleBelow(Lsn lsn) {
  // Never recycle while tentative: until the opening checkpoint is marked
  // durable, the previous generation is still the source of truth and this
  // one may be discarded wholesale — deleting ITS segments early would
  // just complicate the fallback story.
  if (!prepared_ || tentative_) return;
  const uint64_t limit = std::min(lsn / seg_payload_, cur_seg_);
  std::lock_guard<std::mutex> g(mu_);
  if (limit <= base_seg_) return;
  // A record can straddle the recycled boundary, so the first KEPT segment
  // may begin mid-record — recovery must know where the parsable stream
  // resumes. Persist that trim LSN into the kept segment's header BEFORE
  // unlinking its predecessors: a crash between the two steps then only
  // means recovery reads a longer (still valid) stream. The segment is
  // opened by path, not through cur_fd_, because the flusher may rotate
  // (and close) the current fd concurrently.
  const Lsn trim = std::min<Lsn>(lsn, (limit + 1) * seg_payload_);
  bool trim_durable = false;
  const int fd = ::open(SegPath(write_gen_, limit).c_str(), O_WRONLY);
  if (fd >= 0) {
    ssize_t n;
    do {
      n = ::pwrite(fd, &trim, sizeof(trim),
                   static_cast<off_t>(kSegTrimOffset));
    } while (n < 0 && errno == EINTR);
    trim_durable =
        n == static_cast<ssize_t>(sizeof(trim)) && MaybeFsync(fd) == 0;
    ::close(fd);
  }
  if (!trim_durable) return;  // recycling is optional; keep everything
  for (uint64_t seg = base_seg_; seg < limit; ++seg) {
    if (::unlink(SegPath(write_gen_, seg).c_str()) == 0) {
      CountEvent(Counter::kLogSegmentsRecycled);
    }
  }
  base_seg_ = limit;
  trim_lsn_ = trim;
}

Status SegmentedLogDevice::MarkGenerationAuthoritative() {
  if (!tentative_) return Status::OK();
  if (poisoned()) return Status::IoError("log device poisoned: " + prefix_);
  // Nothing appended yet (the previous generation was empty or fully torn,
  // so recovery had nothing to re-anchor): force seg0 into existence so the
  // flag has somewhere to live. Without this the generation would stay
  // tentative and a later crash would fall back to the stale predecessor,
  // losing every commit made since.
  if (!prepared_) SLIDB_RETURN_NOT_OK(PrepareGeneration());
  // Flip seg0's tentative flag in place and sync it; only after the flag
  // is durably clear do the predecessor generations (and a legacy plain
  // file) stop being needed.
  const std::string seg0 = SegPath(write_gen_, 0);
  const int fd = ::open(seg0.c_str(), O_WRONLY);
  if (fd < 0) return Poison("open seg0 for authority mark");
  const uint64_t clear = 0;
  ssize_t n;
  do {
    n = ::pwrite(fd, &clear, sizeof(clear),
                 static_cast<off_t>(kSegFlagsOffset));
  } while (n < 0 && errno == EINTR);
  if (n != static_cast<ssize_t>(sizeof(clear)) || MaybeFsync(fd) != 0) {
    ::close(fd);
    return Poison("persist authority mark");
  }
  ::close(fd);
  tentative_ = false;
  SegmentListing ls;
  SLIDB_RETURN_NOT_OK(ListSegments(prefix_, &ls));
  for (const auto& [gen, segs] : ls.gens) {
    if (gen >= write_gen_) continue;
    for (const uint64_t seg : segs) {
      if (::unlink(SegPathFor(prefix_, gen, seg).c_str()) == 0) {
        CountEvent(Counter::kLogSegmentsRecycled);
      }
    }
  }
  (void)::unlink(prefix_.c_str());  // superseded legacy single-file log
  (void)SyncParentDir(prefix_);
  return Status::OK();
}

Status SegmentedLogDevice::ReadLog(const std::string& prefix,
                                   std::vector<uint8_t>* out, Lsn* base_lsn,
                                   uint64_t* generation) {
  out->clear();
  *base_lsn = 0;
  if (generation != nullptr) *generation = kLsnNone;
  SegmentListing ls;
  SLIDB_RETURN_NOT_OK(ListSegments(prefix, &ls));
  uint64_t gen = 0;
  if (!PickReadGeneration(prefix, ls, &gen)) {
    return Status::OK();  // no authoritative generation: empty stream
  }
  if (generation != nullptr) *generation = gen;
  const std::set<uint64_t>& segs = ls.gens.at(gen);
  const uint64_t first_seg = *segs.begin();
  uint64_t seg_payload = 0;
  uint64_t first_skip = 0;
  for (uint64_t seg = first_seg;; ++seg) {
    if (segs.count(seg) == 0) break;  // contiguous run ends: stream ends
    const std::string path = SegPathFor(prefix, gen, seg);
    SegmentHeader hdr;
    uint64_t file_size = 0;
    const Status st = ReadSegmentHeader(path, &hdr, &file_size);
    if (!st.ok()) break;  // torn segment: the stream's valid prefix ends
    if (hdr.generation != gen || hdr.seg_no != seg) break;
    if (seg_payload == 0) {
      seg_payload = hdr.seg_payload;
      // Recycling may have trimmed the stream into this segment: its head
      // below trim_lsn predates the recycle point (possibly mid-record) —
      // the parsable stream resumes at the trim.
      const Lsn seg_start = first_seg * seg_payload;
      if (hdr.trim_lsn > seg_start) {
        first_skip = std::min<uint64_t>(hdr.trim_lsn - seg_start, seg_payload);
      }
      *base_lsn = seg_start + first_skip;
    } else if (hdr.seg_payload != seg_payload) {
      break;  // mixed capacities cannot come from one healthy generation
    }
    std::vector<uint8_t> file;
    if (!FileLogDevice::ReadFile(path, &file).ok()) break;
    const uint64_t have = file.size() > kSegHeaderSize
                              ? std::min<uint64_t>(
                                    file.size() - kSegHeaderSize, seg_payload)
                              : 0;
    const uint64_t from = seg == first_seg ? std::min(first_skip, have) : 0;
    out->insert(out->end(),
                file.begin() + static_cast<size_t>(kSegHeaderSize + from),
                file.begin() + static_cast<size_t>(kSegHeaderSize + have));
    if (have < seg_payload) break;  // not full: nothing can follow it
  }
  return Status::OK();
}

// ---- flush_sink adapter -----------------------------------------------------

void AttachLogDevice(LogOptions* options, LogDevice* device) {
  options->flush_sink = [device](const uint8_t* data, size_t len, Lsn lsn) {
    const Status st = device->Append(data, len, lsn);
    if (!st.ok()) {
      // Fail-stop: durable_lsn advances when this sink returns, so
      // returning after a REPORTED write failure (disk full, EIO) would
      // tell committers their data is durable when it is not — silent,
      // unbounded loss. The crash model the recovery tests exercise is a
      // device that acks and then loses power (InMemoryLogDevice reports
      // OK while dropping bytes); an error status is the opposite of an
      // ack, and the classic WAL answer is to panic.
      std::fprintf(stderr, "slidb: log device write failed (%s); aborting\n",
                   st.message().c_str());
      std::abort();
    }
  };
}

}  // namespace slidb
