#include "src/log/log_device.h"

#include <fcntl.h>
#include <libgen.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/log/log_manager.h"

namespace slidb {

// ---- InMemoryLogDevice ------------------------------------------------------

Status InMemoryLogDevice::Append(const uint8_t* data, size_t len, Lsn lsn) {
  std::lock_guard<std::mutex> g(mu_);
  if (lsn != bytes_.size() && !crashed_) {
    return Status::InvalidArgument("non-contiguous log append");
  }
  if (crashed_) return Status::OK();  // device is gone; bytes vanish
  const uint64_t room = accept_limit_ - bytes_.size();
  const size_t take = static_cast<size_t>(std::min<uint64_t>(len, room));
  bytes_.insert(bytes_.end(), data, data + take);
  if (take < len) crashed_ = true;  // torn write: prefix landed, rest lost
  return Status::OK();
}

uint64_t InMemoryLogDevice::DurableBytes() const {
  std::lock_guard<std::mutex> g(mu_);
  return bytes_.size();
}

Status InMemoryLogDevice::ReadAll(std::vector<uint8_t>* out) const {
  std::lock_guard<std::mutex> g(mu_);
  *out = bytes_;
  return Status::OK();
}

void InMemoryLogDevice::CrashAfter(uint64_t extra_bytes) {
  std::lock_guard<std::mutex> g(mu_);
  accept_limit_ = bytes_.size() + extra_bytes;
}

bool InMemoryLogDevice::crashed() const {
  std::lock_guard<std::mutex> g(mu_);
  return crashed_;
}

// ---- FileLogDevice ----------------------------------------------------------

Status FileLogDevice::Open(const std::string& path,
                           uint32_t fsync_every_n_flushes,
                           std::unique_ptr<FileLogDevice>* out) {
  const int fd = ::open(path.c_str(), O_CREAT | O_WRONLY, 0644);
  if (fd < 0) return Status::IoError("open log file: " + path);
  // Persist the directory entry too: per-flush fsync makes the *bytes*
  // durable, but a file created with O_CREAT can itself vanish on a host
  // crash unless its parent directory is synced.
  std::string dir_path = path;  // dirname may modify its argument
  const char* dir = ::dirname(dir_path.data());
  const int dir_fd = ::open(dir, O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    (void)::fsync(dir_fd);
    ::close(dir_fd);
  }
  out->reset(new FileLogDevice(fd, path, fsync_every_n_flushes));
  return Status::OK();
}

FileLogDevice::~FileLogDevice() {
  if (fd_ >= 0) {
    // Coalesced-fsync mode may hold an unsynced tail; a clean shutdown
    // must not be weaker than the per-flush contract.
    if (fsync_every_n_ != 0 && flushes_since_sync_ > 0) (void)::fsync(fd_);
    ::close(fd_);
  }
}

Status FileLogDevice::Append(const uint8_t* data, size_t len, Lsn lsn) {
  if (!truncated_) {
    // First write of the new log stream: drop whatever log the file held
    // (recovery has read it back by now — Recover runs before traffic).
    if (::ftruncate(fd_, 0) != 0) return Status::IoError("truncate log file");
    truncated_ = true;
  }
  size_t done = 0;
  while (done < len) {
    const ssize_t n = ::pwrite(fd_, data + done, len - done,
                               static_cast<off_t>(lsn + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("pwrite log file");
    }
    done += static_cast<size_t>(n);
  }
  if (fsync_every_n_ != 0 && ++flushes_since_sync_ >= fsync_every_n_) {
    if (::fsync(fd_) != 0) return Status::IoError("fsync log file");
    flushes_since_sync_ = 0;
  }
  written_.store(std::max(written_.load(std::memory_order_relaxed),
                          static_cast<uint64_t>(lsn + len)),
                 std::memory_order_release);
  return Status::OK();
}

uint64_t FileLogDevice::DurableBytes() const {
  return written_.load(std::memory_order_acquire);
}

Status FileLogDevice::ReadAll(std::vector<uint8_t>* out) const {
  const Status st = ReadFile(path_, out);
  if (!st.ok()) return st;
  // Before the first append the file still holds the PREVIOUS log (see
  // the deferred-truncation note); this device's stream is only what it
  // has written itself.
  if (out->size() > DurableBytes()) out->resize(DurableBytes());
  return Status::OK();
}

Status FileLogDevice::ReadFile(const std::string& path,
                               std::vector<uint8_t>* out) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IoError("open log file for read: " + path);
  out->clear();
  uint8_t buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::IoError("read log file");
    }
    if (n == 0) break;
    out->insert(out->end(), buf, buf + n);
  }
  ::close(fd);
  return Status::OK();
}

// ---- flush_sink adapter -----------------------------------------------------

void AttachLogDevice(LogOptions* options, LogDevice* device) {
  options->flush_sink = [device](const uint8_t* data, size_t len, Lsn lsn) {
    const Status st = device->Append(data, len, lsn);
    if (!st.ok()) {
      // Fail-stop: durable_lsn advances when this sink returns, so
      // returning after a REPORTED write failure (disk full, EIO) would
      // tell committers their data is durable when it is not — silent,
      // unbounded loss. The crash model the recovery tests exercise is a
      // device that acks and then loses power (InMemoryLogDevice reports
      // OK while dropping bytes); an error status is the opposite of an
      // ack, and the classic WAL answer is to panic.
      std::fprintf(stderr, "slidb: log device write failed (%s); aborting\n",
                   st.message().c_str());
      std::abort();
    }
  };
}

}  // namespace slidb
