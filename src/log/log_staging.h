// Transaction-private log staging: records accumulate here in wire format
// (headers unsealed — lsn and crc zero) instead of paying a ring
// reservation each. LogManager::AppendBatch publishes the whole buffer
// under ONE reservation fetch-add and one publish-slot handoff, sealing
// every record (lsn patch + CRC) inside the ring copy loop and wrapping
// runs of small records in kBatchSeal envelopes (log_record.h).
//
// Single-owner: a staging buffer belongs to one transaction/thread at a
// time; no synchronization. AppendBatch drains it.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "src/log/log_record.h"

namespace slidb {

/// One publish unit of a staged batch: either a single individually-sealed
/// record or a kBatchSeal envelope covering `count` staged records whose
/// bytes span [stage_off, stage_off + stage_len) of the staging buffer.
struct LogBatchSegment {
  uint32_t count;
  uint32_t stage_off;
  uint32_t stage_len;
  bool envelope;

  uint32_t wire_bytes() const {
    return stage_len +
           (envelope ? static_cast<uint32_t>(sizeof(LogRecordHeader)) : 0);
  }
};

class LogStagingBuffer {
 public:
  /// Append one record to the staged batch. The header is written with
  /// lsn = 0 and crc = 0; both are filled in at publish time, once the
  /// batch's ring reservation fixes the records' offsets.
  void Stage(uint64_t txn_id, LogRecordType type, const void* payload,
             uint32_t payload_len) {
    // Same hard check as LogManager::Append: a record the recovery scanner
    // rejects as kBadLength must never be staged, sealed, and acked.
    if (payload_len > kMaxLogPayloadLen) {
      std::fprintf(stderr,
                   "slidb: staged log payload %u exceeds scanner bound %u\n",
                   payload_len, kMaxLogPayloadLen);
      std::abort();
    }
    offsets_.push_back(static_cast<uint32_t>(buf_.size()));
    LogRecordHeader hdr{};
    hdr.payload_len = payload_len;
    hdr.txn_id = txn_id;
    hdr.type = static_cast<uint8_t>(type);
    hdr.version = kLogFormatVersion;
    const auto* h = reinterpret_cast<const uint8_t*>(&hdr);
    buf_.insert(buf_.end(), h, h + sizeof(hdr));
    if (payload_len > 0) {
      const auto* p = static_cast<const uint8_t*>(payload);
      buf_.insert(buf_.end(), p, p + payload_len);
    }
  }

  size_t bytes() const { return buf_.size(); }
  size_t records() const { return offsets_.size(); }
  bool empty() const { return offsets_.empty(); }

  /// Drop all staged records (abort-before-publish; also how AppendBatch
  /// resets the buffer after publishing). Keeps capacity for reuse.
  void Clear() {
    buf_.clear();
    offsets_.clear();
  }

 private:
  friend class LogManager;  // AppendBatch seals/patches records in place

  std::vector<uint8_t> buf_;       ///< staged records, wire format, unsealed
  std::vector<uint32_t> offsets_;  ///< start offset of each record in buf_
  /// Publish-plan scratch, reused across batches so AppendBatch never
  /// allocates on the commit path (single owner, like the buffer itself).
  std::vector<LogBatchSegment> seg_scratch_;
};

}  // namespace slidb
