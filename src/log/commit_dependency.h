// Deferred commit acknowledgements: the dependency-settlement machinery
// behind speculative reads (TxnOptions::speculative_reads).
//
// Under ELR a transaction that observes an early-released writer picks up a
// durability dependency (LockClient::NoteDep): its effects must not become
// visible to the client before that writer's commit record is parseable
// from the durable stream. The synchronous discipline (PR 4) enforced this
// by blocking in WaitDurable at commit; speculation replaces the block with
// an *asynchronous commit dependency*: the commit parks a DeferredAck node
// on the LogManager's settlement queue and returns immediately, and the
// group-commit flusher settles the node in the same pass in which it
// advances the durable LSN — the exact point where it learns which LSNs
// hardened. Externalization (the client acknowledgement) moves from
// Commit()'s return to the ack's settlement, so the ELR soundness invariant
// is preserved with the stall deleted, not relaxed.
//
// Node ownership protocol (mirrors LogManager::CommitWaiter):
//   1. the agent thread fills {lsn, park_ns} and hands the node to
//      LogManager::ParkDeferred, which stores state = kParked and pushes it
//      latch-free (the release CAS publishes the plain fields);
//   2. the flusher owns the node from its acquire exchange until the
//      release store of a terminal state — kDurable (the horizon hardened)
//      or kLost (shutdown with the horizon still unflushed: the dependency
//      aborted, the ack must not be reported as committed). It stamps
//      settle_ns first and drops every reference before the store;
//   3. the agent thread reclaims the slot (DeferredAckRing) once the
//      terminal state is visible, charging the settle-latency /
//      dependency-abort counters on the agent thread so the workload driver
//      sees them.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "src/log/log_record.h"
#include "src/stats/counters.h"

namespace slidb {

/// One parked commit acknowledgement waiting for its durability horizon.
struct DeferredAck {
  enum State : uint32_t {
    kFree = 0,  ///< slot idle, owned by the agent's ring
    kParked,    ///< on the settlement queue, owned by the flusher
    kDurable,   ///< horizon hardened: the commit is externalized
    kLost,      ///< horizon never hardened (dependency abort): the commit
                ///< must not be reported — a crash could un-commit it
  };

  Lsn lsn = 0;             ///< durability horizon to settle at
  uint64_t park_ns = 0;    ///< NowNanos at park (agent thread)
  uint64_t settle_ns = 0;  ///< NowNanos at settle (flusher thread)
  std::atomic<uint32_t> state{kFree};
  DeferredAck* next = nullptr;  ///< settlement-queue linkage (flusher-owned)
};

/// Fixed-capacity FIFO of DeferredAck slots, owned by one agent thread.
/// Parking is allocation-free: Acquire hands out the next slot, reclaiming
/// the settled prefix lazily; a full ring blocks on the *oldest* parked ack
/// (natural backpressure — the agent can be at most kSlots commits ahead of
/// the flusher). Slots are stable memory for the ring's whole lifetime, so
/// the flusher's queue pointers stay valid while acks are outstanding:
/// drain (or destroy the LogManager, whose shutdown settles every parked
/// ack) before destroying the ring.
class DeferredAckRing {
 public:
  static constexpr size_t kSlots = 128;

  DeferredAckRing() = default;
  DeferredAckRing(const DeferredAckRing&) = delete;
  DeferredAckRing& operator=(const DeferredAckRing&) = delete;
  ~DeferredAckRing() { Drain(); }

  /// Next free slot for the caller to fill and park. May block (atomic
  /// wait) on the oldest outstanding ack when the ring is full.
  DeferredAck* Acquire() {
    ReclaimSettledPrefix();
    if (tail_ - head_ == kSlots) {
      AwaitSettled(slots_[head_ % kSlots]);
      ReclaimSettledPrefix();
    }
    return &slots_[tail_++ % kSlots];
  }

  /// Wait for every outstanding ack to settle and reclaim all slots. After
  /// this the flusher holds no pointers into the ring.
  void Drain() {
    while (head_ != tail_) {
      DeferredAck& a = slots_[head_ % kSlots];
      ReclaimOne(a, AwaitSettled(a));
      ++head_;
    }
  }

  size_t outstanding() const { return tail_ - head_; }

 private:
  uint32_t AwaitSettled(DeferredAck& a) {
    uint32_t s = a.state.load(std::memory_order_acquire);
    while (s == DeferredAck::kParked) {
      a.state.wait(DeferredAck::kParked, std::memory_order_acquire);
      s = a.state.load(std::memory_order_acquire);
    }
    return s;
  }

  /// Acks may settle out of FIFO order (horizons are not monotone across
  /// consecutive transactions), so reclamation stops at the first slot
  /// still parked; later settled slots are picked up on a later pass.
  void ReclaimSettledPrefix() {
    while (head_ != tail_) {
      DeferredAck& a = slots_[head_ % kSlots];
      const uint32_t s = a.state.load(std::memory_order_acquire);
      if (s == DeferredAck::kParked) break;
      ReclaimOne(a, s);
      ++head_;
    }
  }

  void ReclaimOne(DeferredAck& a, uint32_t state) {
    if (state == DeferredAck::kDurable) {
      CountEvent(Counter::kTxnDepSettleNs, a.settle_ns - a.park_ns);
    } else if (state == DeferredAck::kLost) {
      CountEvent(Counter::kTxnDepAbortedAcks);
    }
    a.state.store(DeferredAck::kFree, std::memory_order_relaxed);
  }

  DeferredAck slots_[kSlots];
  uint64_t head_ = 0;  ///< oldest outstanding slot (monotone counter)
  uint64_t tail_ = 0;  ///< next slot to hand out (monotone counter)
};

}  // namespace slidb
