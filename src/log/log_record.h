// The durable log wire format: self-describing, CRC32C-checksummed records.
//
// Every record is a fixed 32-byte header followed by `payload_len` payload
// bytes, packed back to back with no alignment padding (LSNs are plain byte
// offsets). The format is self-describing in three ways:
//
//   * `payload_len` lets a scanner skip to the next record without knowing
//     the payload type;
//   * `lsn` repeats the record's own start offset, so a reader that lands
//     on stale or misaligned bytes rejects them even if the CRC happens to
//     match (the CRC covers the lsn, so a record copied to the wrong offset
//     can never validate);
//   * `crc` (CRC32C) covers every header byte after the crc field itself
//     plus the whole payload, so a torn tail, a bit flip, or a partially
//     overwritten record is detected on read-back.
//
//       offset  field         checksum coverage
//       0       crc     u32   -- (stores the checksum)
//       4       payload_len   u32   covered
//       8       txn_id  u64   covered
//       16      lsn     u64   covered
//       24      type    u8    covered
//       25      version u8    covered
//       26      pad[6]        covered (must be zero)
//       32      payload [payload_len]  covered
//
// Torn-write rule: the durable stream is valid up to the first record that
// fails any check (short header, implausible length, lsn mismatch, CRC
// mismatch). Everything before that point is trusted; everything from it on
// is discarded — see RecoveryManager.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "src/util/crc32c.h"

namespace slidb {

/// Log sequence number: byte offset of a position in the (virtual,
/// unbounded) log stream. Append returns the *end* LSN of the record.
using Lsn = uint64_t;

enum class LogRecordType : uint8_t {
  kUpdate = 0,   ///< heap after-image (HeapRedoPayload + image bytes)
  kInsert,       ///< heap after-image (HeapRedoPayload + image bytes)
  kDelete,       ///< heap delete (HeapRedoPayload, no image)
  kCommit,       ///< transaction commit point (no payload)
  kAbort,        ///< transaction abort (no payload; undo is not logged)
  kBegin,        ///< transaction begin (no payload)
  kIndexInsert,  ///< index entry add (IndexRedoPayload)
  kIndexRemove,  ///< index entry remove (IndexRedoPayload)
  kBatchSeal,    ///< envelope: payload is a run of small records sealed
                 ///< under this record's single CRC (see ForEachEnvelopeRecord)
};

inline const char* LogRecordTypeName(LogRecordType t) {
  switch (t) {
    case LogRecordType::kUpdate: return "update";
    case LogRecordType::kInsert: return "insert";
    case LogRecordType::kDelete: return "delete";
    case LogRecordType::kCommit: return "commit";
    case LogRecordType::kAbort: return "abort";
    case LogRecordType::kBegin: return "begin";
    case LogRecordType::kIndexInsert: return "index_insert";
    case LogRecordType::kIndexRemove: return "index_remove";
    case LogRecordType::kBatchSeal: return "batch_seal";
  }
  return "?";
}

inline constexpr uint8_t kLogFormatVersion = 1;

struct LogRecordHeader {
  uint32_t crc;          ///< CRC32C over header bytes [4, 32) + payload
  uint32_t payload_len;  ///< payload bytes following the header
  uint64_t txn_id;
  Lsn lsn;               ///< start offset of this header in the log stream
  uint8_t type;          ///< LogRecordType
  uint8_t version;       ///< kLogFormatVersion
  uint8_t pad[6];        ///< zero (covered by the CRC)
};
static_assert(sizeof(LogRecordHeader) == 32);

/// CRC coverage starts just past the crc field.
inline constexpr size_t kLogCrcSkip = sizeof(uint32_t);

/// Checksum a (header, payload) pair. The header's `crc` field is not read.
inline uint32_t ComputeLogRecordCrc(const LogRecordHeader& hdr,
                                    const void* payload) {
  uint32_t c =
      Crc32c(0, reinterpret_cast<const uint8_t*>(&hdr) + kLogCrcSkip,
             sizeof(hdr) - kLogCrcSkip);
  if (hdr.payload_len > 0) c = Crc32c(c, payload, hdr.payload_len);
  return c;
}

/// Build a sealed header for a record starting at `lsn`.
inline LogRecordHeader MakeLogRecordHeader(uint64_t txn_id, LogRecordType type,
                                           Lsn lsn, const void* payload,
                                           uint32_t payload_len) {
  LogRecordHeader hdr{};
  hdr.payload_len = payload_len;
  hdr.txn_id = txn_id;
  hdr.lsn = lsn;
  hdr.type = static_cast<uint8_t>(type);
  hdr.version = kLogFormatVersion;
  hdr.crc = ComputeLogRecordCrc(hdr, payload);
  return hdr;
}

// ---- typed redo payloads ----------------------------------------------------
// Payload structs are memcpy'd onto the wire (the stream has no alignment
// guarantees) and must stay trivially copyable with explicit padding.

/// kInsert / kUpdate / kDelete: the row address; for insert/update the
/// after-image follows immediately (payload_len - sizeof tells its size).
struct HeapRedoPayload {
  uint32_t table;   ///< TableId (catalog position; schema is re-created
                    ///< identically before recovery)
  uint16_t slot;
  uint8_t pad[2];   ///< zero
  uint64_t page_no;
};
static_assert(sizeof(HeapRedoPayload) == 16);

/// kIndexInsert / kIndexRemove: one index entry. The operation is the
/// record type; key/value identify the entry in either index kind.
struct IndexRedoPayload {
  uint32_t index;   ///< IndexId (catalog position)
  uint8_t pad[4];   ///< zero
  uint64_t key;
  uint64_t value;
};
static_assert(sizeof(IndexRedoPayload) == 24);

// ---- stream scanning --------------------------------------------------------

/// Why a scan stopped at a given position.
enum class LogScanStatus : uint8_t {
  kOk,           ///< a valid record was decoded
  kEndOfStream,  ///< clean end: the stream stops exactly at a boundary
  kTornHeader,   ///< fewer than sizeof(LogRecordHeader) bytes remain
  kTornPayload,  ///< header decodes but the payload is cut short
  kBadLength,    ///< payload_len fails the sanity bound
  kBadLsn,       ///< header's lsn does not match its stream offset
  kBadVersion,   ///< unknown format version
  kBadCrc,       ///< checksum mismatch (bit flip or partial overwrite)
  kBadEnvelope,  ///< kBatchSeal CRC validated but its interior is malformed
};

inline const char* LogScanStatusName(LogScanStatus s) {
  switch (s) {
    case LogScanStatus::kOk: return "ok";
    case LogScanStatus::kEndOfStream: return "end_of_stream";
    case LogScanStatus::kTornHeader: return "torn_header";
    case LogScanStatus::kTornPayload: return "torn_payload";
    case LogScanStatus::kBadLength: return "bad_length";
    case LogScanStatus::kBadLsn: return "bad_lsn";
    case LogScanStatus::kBadVersion: return "bad_version";
    case LogScanStatus::kBadCrc: return "bad_crc";
    case LogScanStatus::kBadEnvelope: return "bad_envelope";
  }
  return "?";
}

/// Payloads above this bound are treated as corruption during a scan: no
/// writer produces them (heap records are at most one 8 KiB page), and the
/// bound stops a garbage length from swallowing the rest of the stream.
inline constexpr uint32_t kMaxLogPayloadLen = 1u << 20;

/// Decode the record at byte offset `pos` of `stream` (whose first byte is
/// log offset `base_lsn`). On kOk fills `hdr` (and `payload` with a pointer
/// into the stream) — callers must copy payload fields out with memcpy
/// before use. Any other status means the scan must stop at `pos`.
///
/// `verify_crc = false` skips the checksum (structural checks only): for
/// re-walking a prefix that a verifying scan already validated — the CRC
/// dominates decode cost, and recovery walks the prefix up to three times
/// (scan, replay, snapshot re-log).
inline LogScanStatus DecodeLogRecord(const uint8_t* stream, size_t size,
                                     size_t pos, Lsn base_lsn,
                                     LogRecordHeader* hdr,
                                     const uint8_t** payload,
                                     bool verify_crc = true) {
  if (pos == size) return LogScanStatus::kEndOfStream;
  if (size - pos < sizeof(LogRecordHeader)) return LogScanStatus::kTornHeader;
  std::memcpy(hdr, stream + pos, sizeof(LogRecordHeader));
  if (hdr->payload_len > kMaxLogPayloadLen) return LogScanStatus::kBadLength;
  if (hdr->version != kLogFormatVersion) return LogScanStatus::kBadVersion;
  if (hdr->lsn != base_lsn + pos) return LogScanStatus::kBadLsn;
  if (size - pos - sizeof(LogRecordHeader) < hdr->payload_len) {
    return LogScanStatus::kTornPayload;
  }
  const uint8_t* body = stream + pos + sizeof(LogRecordHeader);
  if (verify_crc && hdr->crc != ComputeLogRecordCrc(*hdr, body)) {
    return LogScanStatus::kBadCrc;
  }
  *payload = body;
  return LogScanStatus::kOk;
}

// ---- batch-seal envelopes ---------------------------------------------------
// A kBatchSeal record's payload is a back-to-back run of ≥ 1 small interior
// records in the ordinary wire format, except that interior `crc` fields
// are ZERO: the envelope's single CRC covers the whole run, amortizing the
// per-record seal over the batch. Interior `lsn` fields are real stream
// offsets (envelope start + 32 + relative position), so interior records
// stay self-describing and relocation is still detectable — the envelope
// CRC covers them. Envelopes never nest.
//
// Torn-write rule: the envelope is atomic. A crash that cuts the stream
// anywhere inside it fails the envelope's own payload/CRC check, so the
// whole envelope (all interior records) is discarded — there is no state
// in which a prefix of the run validates.

/// Writers only wrap records at or below this wire size (header+payload)
/// in an envelope: the seal amortization only matters when the 32-byte
/// header dominates, and big records keep their own checksum so a scan
/// failure localizes.
inline constexpr uint32_t kBatchSealMaxRecordBytes = 64;

/// Bound on one envelope's interior byte run: caps what a single CRC
/// covers (and what one torn envelope can discard).
inline constexpr uint32_t kMaxEnvelopePayloadLen = 1u << 16;

static_assert(kMaxEnvelopePayloadLen <= kMaxLogPayloadLen);

/// Walk the interior of a validated kBatchSeal envelope. `interior` is the
/// envelope's payload (`len` bytes), whose first byte sits at stream offset
/// `base_lsn`. Calls `fn(const LogRecordHeader&, const uint8_t* payload)`
/// per interior record. Returns false if the interior is malformed (bad
/// structure, wrong self-LSN, nested envelope, or an empty run) — callers
/// must then treat the WHOLE envelope as corrupt, per the torn-write rule.
/// Interior CRCs are zero by construction and are not checked: the caller
/// already verified the envelope CRC that covers every interior byte.
template <typename Fn>
inline bool ForEachEnvelopeRecord(const uint8_t* interior, uint32_t len,
                                  Lsn base_lsn, Fn&& fn) {
  if (len == 0) return false;  // writers never emit an empty envelope
  size_t pos = 0;
  LogRecordHeader hdr;
  const uint8_t* payload = nullptr;
  while (pos < len) {
    if (DecodeLogRecord(interior, len, pos, base_lsn, &hdr, &payload,
                        /*verify_crc=*/false) != LogScanStatus::kOk) {
      return false;
    }
    if (hdr.type == static_cast<uint8_t>(LogRecordType::kBatchSeal)) {
      return false;  // no nesting
    }
    fn(static_cast<const LogRecordHeader&>(hdr), payload);
    pos += sizeof(LogRecordHeader) + hdr.payload_len;
  }
  return true;  // the run ends exactly at the envelope boundary
}

}  // namespace slidb
