// The durable log wire format: self-describing, CRC32C-checksummed records.
//
// Every record is a fixed 32-byte header followed by `payload_len` payload
// bytes, packed back to back with no alignment padding (LSNs are plain byte
// offsets). The format is self-describing in three ways:
//
//   * `payload_len` lets a scanner skip to the next record without knowing
//     the payload type;
//   * `lsn` repeats the record's own start offset, so a reader that lands
//     on stale or misaligned bytes rejects them even if the CRC happens to
//     match (the CRC covers the lsn, so a record copied to the wrong offset
//     can never validate);
//   * `crc` (CRC32C) covers every header byte after the crc field itself
//     plus the whole payload, so a torn tail, a bit flip, or a partially
//     overwritten record is detected on read-back.
//
//       offset  field         checksum coverage
//       0       crc     u32   -- (stores the checksum)
//       4       payload_len   u32   covered
//       8       txn_id  u64   covered
//       16      lsn     u64   covered
//       24      type    u8    covered
//       25      version u8    covered
//       26      pad[6]        covered (must be zero)
//       32      payload [payload_len]  covered
//
// Torn-write rule: the durable stream is valid up to the first record that
// fails any check (short header, implausible length, lsn mismatch, CRC
// mismatch). Everything before that point is trusted; everything from it on
// is discarded — see RecoveryManager.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "src/util/crc32c.h"

namespace slidb {

/// Log sequence number: byte offset of a position in the (virtual,
/// unbounded) log stream. Append returns the *end* LSN of the record.
using Lsn = uint64_t;

enum class LogRecordType : uint8_t {
  kUpdate = 0,   ///< heap before+after image (HeapRedoPayload + images)
  kInsert,       ///< heap after-image (HeapRedoPayload + image bytes)
  kDelete,       ///< heap delete (HeapRedoPayload + before-image)
  kCommit,       ///< transaction commit point (no payload)
  kAbort,        ///< transaction abort (no payload; undo ran in memory)
  kBegin,        ///< transaction begin (no payload)
  kIndexInsert,  ///< index entry add (IndexRedoPayload)
  kIndexRemove,  ///< index entry remove (IndexRedoPayload)
  kBatchSeal,    ///< envelope: payload is a run of small records sealed
                 ///< under this record's single CRC (see ForEachEnvelopeRecord)
  kCheckpointBegin,  ///< fuzzy checkpoint opens (CheckpointBeginPayload +
                     ///< active-txn table)
  kCheckpointEnd,    ///< fuzzy checkpoint complete (CheckpointEndPayload);
                     ///< recovery may start at the paired begin's scan LSN
  kCheckpointImage,  ///< one row's committed image (HeapRedoPayload form,
                     ///< before_len == 0), replayed unconditionally
  kCheckpointIndexImage,  ///< one index entry's image (IndexRedoPayload)
  kClr,  ///< compensation: redo-only undo of one loser record
         ///< (ClrPayload + the inner redo payload); never itself undone
};

inline const char* LogRecordTypeName(LogRecordType t) {
  switch (t) {
    case LogRecordType::kUpdate: return "update";
    case LogRecordType::kInsert: return "insert";
    case LogRecordType::kDelete: return "delete";
    case LogRecordType::kCommit: return "commit";
    case LogRecordType::kAbort: return "abort";
    case LogRecordType::kBegin: return "begin";
    case LogRecordType::kIndexInsert: return "index_insert";
    case LogRecordType::kIndexRemove: return "index_remove";
    case LogRecordType::kBatchSeal: return "batch_seal";
    case LogRecordType::kCheckpointBegin: return "checkpoint_begin";
    case LogRecordType::kCheckpointEnd: return "checkpoint_end";
    case LogRecordType::kCheckpointImage: return "checkpoint_image";
    case LogRecordType::kCheckpointIndexImage: return "checkpoint_index_image";
    case LogRecordType::kClr: return "clr";
  }
  return "?";
}

/// Version 2: heap redo payloads grew a before-image (undo information) and
/// the checkpoint/CLR record types joined the format. Version-1 streams are
/// rejected by scan — the format is in-tree only, no migration path needed.
inline constexpr uint8_t kLogFormatVersion = 2;

struct LogRecordHeader {
  uint32_t crc;          ///< CRC32C over header bytes [4, 32) + payload
  uint32_t payload_len;  ///< payload bytes following the header
  uint64_t txn_id;
  Lsn lsn;               ///< start offset of this header in the log stream
  uint8_t type;          ///< LogRecordType
  uint8_t version;       ///< kLogFormatVersion
  uint8_t pad[6];        ///< zero (covered by the CRC)
};
static_assert(sizeof(LogRecordHeader) == 32);

/// CRC coverage starts just past the crc field.
inline constexpr size_t kLogCrcSkip = sizeof(uint32_t);

/// Checksum a (header, payload) pair. The header's `crc` field is not read.
inline uint32_t ComputeLogRecordCrc(const LogRecordHeader& hdr,
                                    const void* payload) {
  uint32_t c =
      Crc32c(0, reinterpret_cast<const uint8_t*>(&hdr) + kLogCrcSkip,
             sizeof(hdr) - kLogCrcSkip);
  if (hdr.payload_len > 0) c = Crc32c(c, payload, hdr.payload_len);
  return c;
}

/// Build a sealed header for a record starting at `lsn`.
inline LogRecordHeader MakeLogRecordHeader(uint64_t txn_id, LogRecordType type,
                                           Lsn lsn, const void* payload,
                                           uint32_t payload_len) {
  LogRecordHeader hdr{};
  hdr.payload_len = payload_len;
  hdr.txn_id = txn_id;
  hdr.lsn = lsn;
  hdr.type = static_cast<uint8_t>(type);
  hdr.version = kLogFormatVersion;
  hdr.crc = ComputeLogRecordCrc(hdr, payload);
  return hdr;
}

// ---- typed redo payloads ----------------------------------------------------
// Payload structs are memcpy'd onto the wire (the stream has no alignment
// guarantees) and must stay trivially copyable with explicit padding.

/// kInsert / kUpdate / kDelete / kCheckpointImage: the row address, then
/// `before_len` bytes of before-image (undo information), then the
/// after-image (payload_len - sizeof - before_len bytes). kInsert and
/// kCheckpointImage carry no before-image; kDelete carries no after-image;
/// kUpdate carries both. The before-image is what the restart undo pass
/// restores when the record's transaction turns out to be a loser.
struct HeapRedoPayload {
  uint32_t table;   ///< TableId (catalog position; schema is re-created
                    ///< identically before recovery)
  uint16_t slot;
  uint8_t pad[2];   ///< zero
  uint64_t page_no;
  uint32_t before_len;  ///< before-image bytes following this struct
  uint8_t pad2[4];      ///< zero
};
static_assert(sizeof(HeapRedoPayload) == 24);

/// kIndexInsert / kIndexRemove / kCheckpointIndexImage: one index entry.
/// The operation is the record type; key/value identify the entry in either
/// index kind. Index undo is logical (insert undoes as remove and vice
/// versa), so no separate before-image is needed.
struct IndexRedoPayload {
  uint32_t index;   ///< IndexId (catalog position)
  uint8_t pad[4];   ///< zero
  uint64_t key;
  uint64_t value;
};
static_assert(sizeof(IndexRedoPayload) == 24);

// ---- checkpoint and compensation payloads -----------------------------------

/// One active-transaction-table entry in a kCheckpointBegin payload.
struct CheckpointTxnEntry {
  uint64_t txn_id;
  Lsn first_lsn;  ///< LSN of the txn's first published record
};
static_assert(sizeof(CheckpointTxnEntry) == 16);

/// Sentinel for "no constraining LSN" (e.g. a transaction that has not
/// published any record yet).
inline constexpr Lsn kLsnNone = ~0ULL;

/// kCheckpointBegin: pure marker opening a fuzzy checkpoint. Carries no
/// payload; its LSN is the anchor the paired kCheckpointEnd names.
struct CheckpointBeginPayload {
  uint64_t reserved;  ///< zero (room for future fields)
};
static_assert(sizeof(CheckpointBeginPayload) == 8);

/// kCheckpointEnd: pairs with the kCheckpointBegin at `begin_lsn`;
/// `active_txns` CheckpointTxnEntry records follow. A checkpoint is
/// complete — and usable as a recovery anchor — only when both records sit
/// inside the valid prefix.
///
/// The active-txn table is snapshotted AFTER the begin record is appended:
/// any transaction with a published record below begin_lsn that is still
/// uncommitted when the end record is built must appear here (one that
/// committed or aborted in between has its outcome record below the end
/// record, so it can never be a loser of a recovery anchored at this
/// checkpoint). `redo_start_lsn` = min(begin_lsn, every entry's first_lsn):
/// a loser that was already running when the checkpoint opened may have
/// published records (watermark partial publishes) the undo pass needs
/// before-images from, so redo must scan from there.
struct CheckpointEndPayload {
  Lsn begin_lsn;       ///< LSN of the matching kCheckpointBegin record
  Lsn redo_start_lsn;  ///< min(begin_lsn, active first LSNs): scan from here
  uint64_t image_records;  ///< heap + index images written (observability)
  uint32_t active_txns;    ///< CheckpointTxnEntry records following
  uint8_t pad[4];          ///< zero
};
static_assert(sizeof(CheckpointEndPayload) == 32);

/// kClr: a compensation record written while rolling back a loser. The
/// inner redo payload (HeapRedoPayload or IndexRedoPayload form, with
/// before_len == 0) follows and is applied exactly like the corresponding
/// `redo_type` record. CLRs are redo-only: the undo pass never undoes
/// them, so a crash *during* undo replays the partial rollback and then
/// re-runs the full undo idempotently (restoring absolute before-images
/// converges regardless of how much compensation already applied).
struct ClrPayload {
  uint8_t redo_type;  ///< LogRecordType of the inner redo payload
  uint8_t pad[7];     ///< zero
  Lsn undo_of_lsn;    ///< LSN of the loser record this compensates
};
static_assert(sizeof(ClrPayload) == 16);

// ---- stream scanning --------------------------------------------------------

/// Why a scan stopped at a given position.
enum class LogScanStatus : uint8_t {
  kOk,           ///< a valid record was decoded
  kEndOfStream,  ///< clean end: the stream stops exactly at a boundary
  kTornHeader,   ///< fewer than sizeof(LogRecordHeader) bytes remain
  kTornPayload,  ///< header decodes but the payload is cut short
  kBadLength,    ///< payload_len fails the sanity bound
  kBadLsn,       ///< header's lsn does not match its stream offset
  kBadVersion,   ///< unknown format version
  kBadCrc,       ///< checksum mismatch (bit flip or partial overwrite)
  kBadEnvelope,  ///< kBatchSeal CRC validated but its interior is malformed
};

inline const char* LogScanStatusName(LogScanStatus s) {
  switch (s) {
    case LogScanStatus::kOk: return "ok";
    case LogScanStatus::kEndOfStream: return "end_of_stream";
    case LogScanStatus::kTornHeader: return "torn_header";
    case LogScanStatus::kTornPayload: return "torn_payload";
    case LogScanStatus::kBadLength: return "bad_length";
    case LogScanStatus::kBadLsn: return "bad_lsn";
    case LogScanStatus::kBadVersion: return "bad_version";
    case LogScanStatus::kBadCrc: return "bad_crc";
    case LogScanStatus::kBadEnvelope: return "bad_envelope";
  }
  return "?";
}

/// Payloads above this bound are treated as corruption during a scan: no
/// writer produces them (heap records are at most one 8 KiB page), and the
/// bound stops a garbage length from swallowing the rest of the stream.
inline constexpr uint32_t kMaxLogPayloadLen = 1u << 20;

/// Decode the record at byte offset `pos` of `stream` (whose first byte is
/// log offset `base_lsn`). On kOk fills `hdr` (and `payload` with a pointer
/// into the stream) — callers must copy payload fields out with memcpy
/// before use. Any other status means the scan must stop at `pos`.
///
/// `verify_crc = false` skips the checksum (structural checks only): for
/// re-walking a prefix that a verifying scan already validated — the CRC
/// dominates decode cost, and recovery walks the prefix up to three times
/// (scan, replay, snapshot re-log).
inline LogScanStatus DecodeLogRecord(const uint8_t* stream, size_t size,
                                     size_t pos, Lsn base_lsn,
                                     LogRecordHeader* hdr,
                                     const uint8_t** payload,
                                     bool verify_crc = true) {
  if (pos == size) return LogScanStatus::kEndOfStream;
  if (size - pos < sizeof(LogRecordHeader)) return LogScanStatus::kTornHeader;
  std::memcpy(hdr, stream + pos, sizeof(LogRecordHeader));
  if (hdr->payload_len > kMaxLogPayloadLen) return LogScanStatus::kBadLength;
  if (hdr->version != kLogFormatVersion) return LogScanStatus::kBadVersion;
  if (hdr->lsn != base_lsn + pos) return LogScanStatus::kBadLsn;
  if (size - pos - sizeof(LogRecordHeader) < hdr->payload_len) {
    return LogScanStatus::kTornPayload;
  }
  const uint8_t* body = stream + pos + sizeof(LogRecordHeader);
  if (verify_crc && hdr->crc != ComputeLogRecordCrc(*hdr, body)) {
    return LogScanStatus::kBadCrc;
  }
  *payload = body;
  return LogScanStatus::kOk;
}

// ---- batch-seal envelopes ---------------------------------------------------
// A kBatchSeal record's payload is a back-to-back run of ≥ 1 small interior
// records in the ordinary wire format, except that interior `crc` fields
// are ZERO: the envelope's single CRC covers the whole run, amortizing the
// per-record seal over the batch. Interior `lsn` fields are real stream
// offsets (envelope start + 32 + relative position), so interior records
// stay self-describing and relocation is still detectable — the envelope
// CRC covers them. Envelopes never nest.
//
// Torn-write rule: the envelope is atomic. A crash that cuts the stream
// anywhere inside it fails the envelope's own payload/CRC check, so the
// whole envelope (all interior records) is discarded — there is no state
// in which a prefix of the run validates.

/// Writers only wrap records at or below this wire size (header+payload)
/// in an envelope: the seal amortization only matters when the 32-byte
/// header dominates, and big records keep their own checksum so a scan
/// failure localizes.
inline constexpr uint32_t kBatchSealMaxRecordBytes = 64;

/// Bound on one envelope's interior byte run: caps what a single CRC
/// covers (and what one torn envelope can discard).
inline constexpr uint32_t kMaxEnvelopePayloadLen = 1u << 16;

static_assert(kMaxEnvelopePayloadLen <= kMaxLogPayloadLen);

/// Walk the interior of a validated kBatchSeal envelope. `interior` is the
/// envelope's payload (`len` bytes), whose first byte sits at stream offset
/// `base_lsn`. Calls `fn(const LogRecordHeader&, const uint8_t* payload)`
/// per interior record. Returns false if the interior is malformed (bad
/// structure, wrong self-LSN, nested envelope, or an empty run) — callers
/// must then treat the WHOLE envelope as corrupt, per the torn-write rule.
/// Interior CRCs are zero by construction and are not checked: the caller
/// already verified the envelope CRC that covers every interior byte.
template <typename Fn>
inline bool ForEachEnvelopeRecord(const uint8_t* interior, uint32_t len,
                                  Lsn base_lsn, Fn&& fn) {
  if (len == 0) return false;  // writers never emit an empty envelope
  size_t pos = 0;
  LogRecordHeader hdr;
  const uint8_t* payload = nullptr;
  while (pos < len) {
    if (DecodeLogRecord(interior, len, pos, base_lsn, &hdr, &payload,
                        /*verify_crc=*/false) != LogScanStatus::kOk) {
      return false;
    }
    if (hdr.type == static_cast<uint8_t>(LogRecordType::kBatchSeal)) {
      return false;  // no nesting
    }
    fn(static_cast<const LogRecordHeader&>(hdr), payload);
    pos += sizeof(LogRecordHeader) + hdr.payload_len;
  }
  return true;  // the run ends exactly at the envelope boundary
}

}  // namespace slidb
