#include "src/log/recovery.h"

#include <algorithm>
#include <cstring>

#include "src/stats/counters.h"
#include "src/stats/profiler.h"

namespace slidb {

RecoveryManager::RecoveryManager(std::vector<uint8_t> stream, Lsn base_lsn)
    : owned_(std::move(stream)),
      data_(owned_.data()),
      size_(owned_.size()),
      base_lsn_(base_lsn) {
  report_.total_bytes = size_;
  report_.valid_prefix_end = base_lsn;
}

RecoveryManager::RecoveryManager(const uint8_t* data, size_t size,
                                 Lsn base_lsn)
    : data_(data), size_(size), base_lsn_(base_lsn) {
  report_.total_bytes = size_;
  report_.valid_prefix_end = base_lsn;
}

void RecoveryManager::NoteScanned(const LogRecordHeader& hdr) {
  report_.records_scanned++;
  report_.max_txn_id = std::max(report_.max_txn_id, hdr.txn_id);
  seen_.insert(hdr.txn_id);
  switch (static_cast<LogRecordType>(hdr.type)) {
    case LogRecordType::kCommit:
      committed_.insert(hdr.txn_id);
      break;
    case LogRecordType::kAbort:
      report_.aborted_txns++;
      break;
    default:
      break;
  }
}

const RecoveryReport& RecoveryManager::Scan() {
  if (scanned_) return report_;
  scanned_ = true;
  ScopedComponent comp(Component::kLog);

  size_t pos = 0;
  LogRecordHeader hdr;
  const uint8_t* payload = nullptr;
  for (;;) {
    LogScanStatus st =
        DecodeLogRecord(data_, size_, pos, base_lsn_, &hdr, &payload);
    if (st == LogScanStatus::kOk &&
        hdr.type == static_cast<uint8_t>(LogRecordType::kBatchSeal)) {
      // Validate the envelope (its CRC just passed, covering every interior
      // byte), then trust the interior: per-record CRCs are zero and are
      // not re-checked, but interior structure and self-LSNs must hold. A
      // malformed interior behind a valid CRC is a writer bug or a crafted
      // stream — treat it exactly like a torn record at the envelope.
      // Validate the whole run BEFORE noting any interior record, so a bad
      // envelope contributes nothing to the committed set.
      const Lsn interior_base = hdr.lsn + sizeof(LogRecordHeader);
      if (ForEachEnvelopeRecord(payload, hdr.payload_len, interior_base,
                                [](const LogRecordHeader&, const uint8_t*) {
                                })) {
        (void)ForEachEnvelopeRecord(
            payload, hdr.payload_len, interior_base,
            [&](const LogRecordHeader& inner, const uint8_t*) {
              NoteScanned(inner);
            });
      } else {
        st = LogScanStatus::kBadEnvelope;
      }
    } else if (st == LogScanStatus::kOk) {
      NoteScanned(hdr);
    }
    if (st != LogScanStatus::kOk) {
      report_.tail_status = st;
      if (st != LogScanStatus::kEndOfStream) {
        // Torn-write rule: the stream is trusted only up to here. Count the
        // corrupt tail — the sweep tests assert this fires exactly when a
        // crash lands inside a record. A cut inside an envelope discards
        // the whole envelope (its CRC cannot validate on a prefix).
        report_.torn_tail = true;
        report_.tail_bytes_discarded = size_ - pos;
        CountEvent(Counter::kLogChecksumFail);
        CountEvent(Counter::kRecoveryTornTails);
      }
      break;
    }
    pos += sizeof(LogRecordHeader) + hdr.payload_len;
    report_.valid_prefix_end = base_lsn_ + pos;
  }

  report_.committed_txns = committed_.size();
  report_.uncommitted_txns = seen_.size() - committed_.size();
  CountEvent(Counter::kRecoveryRecordsScanned, report_.records_scanned);
  CountEvent(Counter::kRecoveryCommittedTxns, report_.committed_txns);
  return report_;
}

Status RecoveryManager::ApplyRedo(Catalog* catalog,
                                  const LogRecordHeader& hdr,
                                  const uint8_t* payload) {
  const auto type = static_cast<LogRecordType>(hdr.type);
  switch (type) {
    case LogRecordType::kInsert:
    case LogRecordType::kUpdate:
    case LogRecordType::kDelete: {
      if (hdr.payload_len < sizeof(HeapRedoPayload)) {
        return Status::Corruption("heap redo payload too short");
      }
      HeapRedoPayload row;
      std::memcpy(&row, payload, sizeof(row));
      if (row.table >= catalog->num_tables()) {
        return Status::Corruption("heap redo names unknown table");
      }
      HeapFile* heap = catalog->table(row.table).heap.get();
      const Rid rid{row.page_no, row.slot};
      const std::span<const uint8_t> image{
          payload + sizeof(HeapRedoPayload),
          hdr.payload_len - sizeof(HeapRedoPayload)};
      if (type == LogRecordType::kInsert) return heap->RedoInsert(rid, image);
      if (type == LogRecordType::kUpdate) return heap->RedoUpdate(rid, image);
      return heap->RedoDelete(rid);
    }
    case LogRecordType::kIndexInsert:
    case LogRecordType::kIndexRemove: {
      if (hdr.payload_len < sizeof(IndexRedoPayload)) {
        return Status::Corruption("index redo payload too short");
      }
      IndexRedoPayload entry;
      std::memcpy(&entry, payload, sizeof(entry));
      if (entry.index >= catalog->num_indexes()) {
        return Status::Corruption("index redo names unknown index");
      }
      IndexInfo& info = catalog->index(entry.index);
      if (type == LogRecordType::kIndexInsert) {
        return info.kind == IndexKind::kBTree
                   ? info.btree->Insert(entry.key, entry.value)
                   : info.hash->Insert(entry.key, entry.value);
      }
      return info.kind == IndexKind::kBTree
                 ? info.btree->Remove(entry.key, entry.value)
                 : info.hash->Remove(entry.key, entry.value);
    }
    case LogRecordType::kBegin:
    case LogRecordType::kCommit:
    case LogRecordType::kAbort:
      return Status::OK();
    case LogRecordType::kBatchSeal:
      // WalkValidPrefix hands callers interior records, never the envelope.
      return Status::Corruption("batch-seal envelope reached redo");
  }
  return Status::Corruption("unknown record type survived scan");
}

namespace {

bool IsRedoType(LogRecordType type) {
  return type == LogRecordType::kInsert || type == LogRecordType::kUpdate ||
         type == LogRecordType::kDelete ||
         type == LogRecordType::kIndexInsert ||
         type == LogRecordType::kIndexRemove;
}

}  // namespace

Status RecoveryManager::WalkValidPrefix(
    const std::function<Status(const LogRecordHeader& hdr,
                               const uint8_t* payload)>& fn) {
  Scan();
  size_t pos = 0;
  LogRecordHeader hdr;
  const uint8_t* payload = nullptr;
  while (base_lsn_ + pos < report_.valid_prefix_end) {
    // The prefix was validated by Scan: structural decode only, no CRC.
    if (DecodeLogRecord(data_, size_, pos, base_lsn_, &hdr, &payload,
                        /*verify_crc=*/false) != LogScanStatus::kOk) {
      return Status::Corruption("validated prefix failed to re-decode");
    }
    if (hdr.type == static_cast<uint8_t>(LogRecordType::kBatchSeal)) {
      // Descend: callers see interior records in log order, exactly as if
      // they had been appended individually.
      Status st = Status::OK();
      const bool ok = ForEachEnvelopeRecord(
          payload, hdr.payload_len, hdr.lsn + sizeof(LogRecordHeader),
          [&](const LogRecordHeader& inner, const uint8_t* inner_payload) {
            if (st.ok()) st = fn(inner, inner_payload);
          });
      if (!ok) {
        return Status::Corruption("validated envelope failed to re-decode");
      }
      SLIDB_RETURN_NOT_OK(st);
    } else {
      SLIDB_RETURN_NOT_OK(fn(hdr, payload));
    }
    pos += sizeof(LogRecordHeader) + hdr.payload_len;
  }
  return Status::OK();
}

Status RecoveryManager::Replay(Catalog* catalog) {
  ScopedComponent comp(Component::kLog);
  return WalkValidPrefix([&](const LogRecordHeader& hdr,
                             const uint8_t* payload) -> Status {
    if (!IsRedoType(static_cast<LogRecordType>(hdr.type))) {
      return Status::OK();
    }
    if (!IsCommitted(hdr.txn_id)) {
      report_.records_skipped++;
      CountEvent(Counter::kRecoveryRecordsSkipped);
      return Status::OK();
    }
    SLIDB_RETURN_NOT_OK(ApplyRedo(catalog, hdr, payload));
    report_.records_replayed++;
    CountEvent(Counter::kRecoveryRecordsReplayed);
    return Status::OK();
  });
}

void RecoveryManager::ForEachCommittedRedo(
    const std::function<void(const LogRecordHeader& hdr,
                             const uint8_t* payload)>& fn) {
  (void)WalkValidPrefix(
      [&](const LogRecordHeader& hdr, const uint8_t* payload) -> Status {
        if (IsRedoType(static_cast<LogRecordType>(hdr.type)) &&
            IsCommitted(hdr.txn_id)) {
          fn(hdr, payload);
        }
        return Status::OK();
      });
}

}  // namespace slidb
