#include "src/log/recovery.h"

#include <algorithm>
#include <cstring>

#include "src/stats/counters.h"
#include "src/stats/profiler.h"

namespace slidb {

RecoveryManager::RecoveryManager(std::vector<uint8_t> stream, Lsn base_lsn)
    : owned_(std::move(stream)),
      data_(owned_.data()),
      size_(owned_.size()),
      base_lsn_(base_lsn) {
  report_.total_bytes = size_;
  report_.valid_prefix_end = base_lsn;
}

RecoveryManager::RecoveryManager(const uint8_t* data, size_t size,
                                 Lsn base_lsn)
    : data_(data), size_(size), base_lsn_(base_lsn) {
  report_.total_bytes = size_;
  report_.valid_prefix_end = base_lsn;
}

void RecoveryManager::NoteScanned(const LogRecordHeader& hdr,
                                  const uint8_t* payload) {
  report_.records_scanned++;
  report_.max_txn_id = std::max(report_.max_txn_id, hdr.txn_id);
  switch (static_cast<LogRecordType>(hdr.type)) {
    case LogRecordType::kCommit:
      seen_.insert(hdr.txn_id);
      committed_.insert(hdr.txn_id);
      break;
    case LogRecordType::kAbort:
      seen_.insert(hdr.txn_id);
      aborted_.insert(hdr.txn_id);
      report_.aborted_txns++;
      break;
    case LogRecordType::kCheckpointBegin: {
      CheckpointAnchor anchor;
      anchor.begin_lsn = hdr.lsn;
      anchor.redo_start = hdr.lsn;
      checkpoints_[hdr.lsn] = anchor;
      break;
    }
    case LogRecordType::kCheckpointEnd: {
      if (hdr.payload_len < sizeof(CheckpointEndPayload)) break;
      CheckpointEndPayload end;
      std::memcpy(&end, payload, sizeof(end));
      if (sizeof(CheckpointEndPayload) +
              uint64_t{end.active_txns} * sizeof(CheckpointTxnEntry) >
          hdr.payload_len) {
        break;  // truncated ATT: not a usable anchor
      }
      auto it = checkpoints_.find(end.begin_lsn);
      if (it == checkpoints_.end()) break;
      // Redo must start early enough to cover every active txn's published
      // records (the undo pass needs their before-images). Recompute from
      // the active-txn table rather than trusting redo_start_lsn alone, and
      // clamp to the stream base: recycling never discards segments a
      // complete checkpoint still needs, so a first_lsn below base can only
      // come from an anchor that was superseded anyway.
      Lsn redo_start = std::min(it->second.begin_lsn, end.redo_start_lsn);
      const uint8_t* entry_bytes = payload + sizeof(CheckpointEndPayload);
      for (uint32_t i = 0; i < end.active_txns; ++i) {
        CheckpointTxnEntry entry;
        std::memcpy(&entry, entry_bytes + i * sizeof(entry), sizeof(entry));
        if (entry.first_lsn != kLsnNone) {
          redo_start = std::min(redo_start, entry.first_lsn);
        }
      }
      it->second.redo_start = std::max(base_lsn_, redo_start);
      it->second.complete = true;
      last_complete_ = it->second;  // scan order: later ends win
      break;
    }
    case LogRecordType::kCheckpointImage:
    case LogRecordType::kCheckpointIndexImage:
      break;  // checkpointer-owned; no txn bookkeeping
    default:
      seen_.insert(hdr.txn_id);
      break;
  }
}

const RecoveryReport& RecoveryManager::Scan() {
  if (scanned_) return report_;
  scanned_ = true;
  ScopedComponent comp(Component::kLog);

  size_t pos = 0;
  LogRecordHeader hdr;
  const uint8_t* payload = nullptr;
  for (;;) {
    LogScanStatus st =
        DecodeLogRecord(data_, size_, pos, base_lsn_, &hdr, &payload);
    if (st == LogScanStatus::kOk &&
        hdr.type == static_cast<uint8_t>(LogRecordType::kBatchSeal)) {
      // Validate the envelope (its CRC just passed, covering every interior
      // byte), then trust the interior: per-record CRCs are zero and are
      // not re-checked, but interior structure and self-LSNs must hold. A
      // malformed interior behind a valid CRC is a writer bug or a crafted
      // stream — treat it exactly like a torn record at the envelope.
      // Validate the whole run BEFORE noting any interior record, so a bad
      // envelope contributes nothing to the committed set.
      const Lsn interior_base = hdr.lsn + sizeof(LogRecordHeader);
      if (ForEachEnvelopeRecord(payload, hdr.payload_len, interior_base,
                                [](const LogRecordHeader&, const uint8_t*) {
                                })) {
        (void)ForEachEnvelopeRecord(
            payload, hdr.payload_len, interior_base,
            [&](const LogRecordHeader& inner, const uint8_t* inner_payload) {
              NoteScanned(inner, inner_payload);
            });
      } else {
        st = LogScanStatus::kBadEnvelope;
      }
    } else if (st == LogScanStatus::kOk) {
      NoteScanned(hdr, payload);
    }
    if (st != LogScanStatus::kOk) {
      report_.tail_status = st;
      if (st != LogScanStatus::kEndOfStream) {
        // Torn-write rule: the stream is trusted only up to here. Count the
        // corrupt tail — the sweep tests assert this fires exactly when a
        // crash lands inside a record. A cut inside an envelope discards
        // the whole envelope (its CRC cannot validate on a prefix).
        report_.torn_tail = true;
        report_.tail_bytes_discarded = size_ - pos;
        CountEvent(Counter::kLogChecksumFail);
        CountEvent(Counter::kRecoveryTornTails);
      }
      break;
    }
    pos += sizeof(LogRecordHeader) + hdr.payload_len;
    report_.valid_prefix_end = base_lsn_ + pos;
  }

  report_.committed_txns = committed_.size();
  report_.uncommitted_txns = seen_.size() - committed_.size();
  if (last_complete_.complete) {
    report_.checkpoint_anchored = true;
    report_.checkpoint_begin_lsn = last_complete_.begin_lsn;
    report_.redo_start_lsn = last_complete_.redo_start;
    CountEvent(Counter::kRecoveryCheckpointAnchored);
  } else {
    report_.redo_start_lsn = base_lsn_;
  }
  report_.redo_bytes = report_.valid_prefix_end - report_.redo_start_lsn;
  CountEvent(Counter::kRecoveryRecordsScanned, report_.records_scanned);
  CountEvent(Counter::kRecoveryCommittedTxns, report_.committed_txns);
  return report_;
}

std::vector<uint64_t> RecoveryManager::LoserTxns() const {
  std::vector<uint64_t> losers;
  for (uint64_t id : seen_) {
    if (committed_.count(id) == 0 && aborted_.count(id) == 0) {
      losers.push_back(id);
    }
  }
  std::sort(losers.begin(), losers.end());
  return losers;
}

namespace {

bool IsRedoType(LogRecordType type) {
  return type == LogRecordType::kInsert || type == LogRecordType::kUpdate ||
         type == LogRecordType::kDelete ||
         type == LogRecordType::kIndexInsert ||
         type == LogRecordType::kIndexRemove;
}

/// Recovery applies some records more than once — a checkpoint image plus
/// the original redo record describe the same entry, and a warm in-place
/// target may already hold the state being replayed. Heap redo overwrites
/// at absolute addresses (naturally idempotent); index redo tolerates the
/// already-there / already-gone outcomes instead.
bool TolerableReplay(LogRecordType type, const Status& st) {
  switch (type) {
    case LogRecordType::kIndexInsert:
    case LogRecordType::kCheckpointIndexImage:
      return st.IsKeyExists();
    case LogRecordType::kIndexRemove:
      return st.IsNotFound();
    case LogRecordType::kDelete:
      return st.IsNotFound();
    case LogRecordType::kUpdate:
      // When the ATT widens redo below the checkpoint's begin record, an
      // update can replay before the image that materializes its row; the
      // image (or a later record) supplies the post-update state, so a
      // missing slot is benign here.
      return st.IsNotFound();
    default:
      return false;
  }
}

struct HeapRedoView {
  HeapRedoPayload row;
  std::span<const uint8_t> before;
  std::span<const uint8_t> after;
};

Status DecodeHeapRedo(const LogRecordHeader& hdr, const uint8_t* payload,
                      HeapRedoView* out) {
  if (hdr.payload_len < sizeof(HeapRedoPayload)) {
    return Status::Corruption("heap redo payload too short");
  }
  std::memcpy(&out->row, payload, sizeof(out->row));
  if (sizeof(HeapRedoPayload) + uint64_t{out->row.before_len} >
      hdr.payload_len) {
    return Status::Corruption("heap redo before-image overruns payload");
  }
  out->before = {payload + sizeof(HeapRedoPayload), out->row.before_len};
  out->after = {payload + sizeof(HeapRedoPayload) + out->row.before_len,
                hdr.payload_len - sizeof(HeapRedoPayload) -
                    out->row.before_len};
  return Status::OK();
}

}  // namespace

Status RecoveryManager::ApplyRedo(Catalog* catalog,
                                  const LogRecordHeader& hdr,
                                  const uint8_t* payload) {
  const auto type = static_cast<LogRecordType>(hdr.type);
  switch (type) {
    case LogRecordType::kInsert:
    case LogRecordType::kUpdate:
    case LogRecordType::kDelete:
    case LogRecordType::kCheckpointImage: {
      HeapRedoView view;
      SLIDB_RETURN_NOT_OK(DecodeHeapRedo(hdr, payload, &view));
      if (view.row.table >= catalog->num_tables()) {
        return Status::Corruption("heap redo names unknown table");
      }
      HeapFile* heap = catalog->table(view.row.table).heap.get();
      const Rid rid{view.row.page_no, view.row.slot};
      Status st;
      if (type == LogRecordType::kDelete) {
        st = heap->RedoDelete(rid);
      } else if (type == LogRecordType::kUpdate) {
        st = heap->RedoUpdate(rid, view.after);
      } else {
        st = heap->RedoInsert(rid, view.after);
        if (type == LogRecordType::kCheckpointImage && st.IsKeyExists()) {
          // A fuzzy image is the row's absolute state as of the snapshot
          // read. An unanchored replay (torn checkpoint) rebuilds history
          // from the base and then meets the orphaned image records; the
          // image simply overwrites the slot it finds live.
          st = heap->RedoUpdate(rid, view.after);
        }
      }
      if (!st.ok() && TolerableReplay(type, st)) return Status::OK();
      return st;
    }
    case LogRecordType::kIndexInsert:
    case LogRecordType::kIndexRemove:
    case LogRecordType::kCheckpointIndexImage: {
      if (hdr.payload_len < sizeof(IndexRedoPayload)) {
        return Status::Corruption("index redo payload too short");
      }
      IndexRedoPayload entry;
      std::memcpy(&entry, payload, sizeof(entry));
      if (entry.index >= catalog->num_indexes()) {
        return Status::Corruption("index redo names unknown index");
      }
      IndexInfo& info = catalog->index(entry.index);
      Status st;
      if (type == LogRecordType::kIndexRemove) {
        st = info.kind == IndexKind::kBTree
                 ? info.btree->Remove(entry.key, entry.value)
                 : info.hash->Remove(entry.key, entry.value);
      } else {
        st = info.kind == IndexKind::kBTree
                 ? info.btree->Insert(entry.key, entry.value)
                 : info.hash->Insert(entry.key, entry.value);
      }
      if (!st.ok() && TolerableReplay(type, st)) return Status::OK();
      return st;
    }
    case LogRecordType::kClr:
      return ApplyClr(catalog, hdr, payload);
    case LogRecordType::kBegin:
    case LogRecordType::kCommit:
    case LogRecordType::kAbort:
    case LogRecordType::kCheckpointBegin:
    case LogRecordType::kCheckpointEnd:
      return Status::OK();
    case LogRecordType::kBatchSeal:
      // WalkValidPrefix hands callers interior records, never the envelope.
      return Status::Corruption("batch-seal envelope reached redo");
  }
  return Status::Corruption("unknown record type survived scan");
}

Status RecoveryManager::ApplyClr(Catalog* catalog, const LogRecordHeader& hdr,
                                 const uint8_t* payload) {
  if (hdr.payload_len < sizeof(ClrPayload)) {
    return Status::Corruption("clr payload too short");
  }
  ClrPayload clr;
  std::memcpy(&clr, payload, sizeof(clr));
  const auto inner_type = static_cast<LogRecordType>(clr.redo_type);
  if (!IsRedoType(inner_type)) {
    return Status::Corruption("clr wraps a non-redo record type");
  }
  // Re-dispatch the inner redo with a synthetic header; CLR compensation is
  // plain redo at absolute addresses, so the tolerance rules apply as-is.
  LogRecordHeader inner = hdr;
  inner.type = clr.redo_type;
  inner.payload_len = hdr.payload_len - sizeof(ClrPayload);
  return ApplyRedo(catalog, inner, payload + sizeof(ClrPayload));
}

Status RecoveryManager::WalkValidPrefix(
    Lsn from_lsn,
    const std::function<Status(const LogRecordHeader& hdr,
                               const uint8_t* payload)>& fn) {
  Scan();
  size_t pos = static_cast<size_t>(from_lsn - base_lsn_);
  LogRecordHeader hdr;
  const uint8_t* payload = nullptr;
  while (base_lsn_ + pos < report_.valid_prefix_end) {
    // The prefix was validated by Scan: structural decode only, no CRC.
    if (DecodeLogRecord(data_, size_, pos, base_lsn_, &hdr, &payload,
                        /*verify_crc=*/false) != LogScanStatus::kOk) {
      return Status::Corruption("validated prefix failed to re-decode");
    }
    if (hdr.type == static_cast<uint8_t>(LogRecordType::kBatchSeal)) {
      // Descend: callers see interior records in log order, exactly as if
      // they had been appended individually.
      Status st = Status::OK();
      const bool ok = ForEachEnvelopeRecord(
          payload, hdr.payload_len, hdr.lsn + sizeof(LogRecordHeader),
          [&](const LogRecordHeader& inner, const uint8_t* inner_payload) {
            if (st.ok()) st = fn(inner, inner_payload);
          });
      if (!ok) {
        return Status::Corruption("validated envelope failed to re-decode");
      }
      SLIDB_RETURN_NOT_OK(st);
    } else {
      SLIDB_RETURN_NOT_OK(fn(hdr, payload));
    }
    pos += sizeof(LogRecordHeader) + hdr.payload_len;
  }
  return Status::OK();
}

Status RecoveryManager::Replay(Catalog* catalog, const ClrSink& sink) {
  ScopedComponent comp(Component::kLog);
  Scan();

  // Redo: repeating history from the checkpoint anchor. Loser records are
  // collected on the way for the undo pass (payload pointers stay valid —
  // they point into the stream this manager owns or views).
  struct LoserRecord {
    LogRecordHeader hdr;
    const uint8_t* payload;
  };
  std::vector<LoserRecord> loser_records;
  const Lsn redo_start = report_.redo_start_lsn;
  Status st = WalkValidPrefix(
      redo_start,
      [&](const LogRecordHeader& hdr, const uint8_t* payload) -> Status {
        const auto type = static_cast<LogRecordType>(hdr.type);
        const bool is_redo = IsRedoType(type);
        const bool is_clr = type == LogRecordType::kClr;
        const bool is_image = type == LogRecordType::kCheckpointImage ||
                              type == LogRecordType::kCheckpointIndexImage;
        if (!is_redo && !is_clr && !is_image) return Status::OK();
        if ((is_redo || is_clr) && IsAborted(hdr.txn_id)) {
          // The txn aborted before the crash: its in-memory undo ran before
          // the abort record was logged, and checkpoint images reflect the
          // post-undo state — replaying (or re-compensating) its records
          // would resurrect rolled-back changes.
          report_.records_skipped++;
          CountEvent(Counter::kRecoveryRecordsSkipped);
          return Status::OK();
        }
        if (is_redo && !IsCommitted(hdr.txn_id)) {
          loser_records.push_back({hdr, payload});
        }
        SLIDB_RETURN_NOT_OK(ApplyRedo(catalog, hdr, payload));
        report_.records_replayed++;
        CountEvent(Counter::kRecoveryRecordsReplayed);
        return Status::OK();
      });
  SLIDB_RETURN_NOT_OK(st);

  // Undo: roll losers back in global reverse LSN order by restoring
  // before-images (heap) or inverting the operation (index), emitting one
  // redo-only CLR per step. Losers held their X locks at the crash, so no
  // committed state is disturbed.
  std::unordered_set<uint64_t> losers_touched;
  for (auto it = loser_records.rbegin(); it != loser_records.rend(); ++it) {
    const auto type = static_cast<LogRecordType>(it->hdr.type);
    LogRecordHeader inverse = it->hdr;
    std::vector<uint8_t> inverse_payload;
    switch (type) {
      case LogRecordType::kInsert: {
        HeapRedoView view;
        SLIDB_RETURN_NOT_OK(DecodeHeapRedo(it->hdr, it->payload, &view));
        HeapRedoPayload row = view.row;
        row.before_len = 0;
        inverse.type = static_cast<uint8_t>(LogRecordType::kDelete);
        inverse_payload.resize(sizeof(row));
        std::memcpy(inverse_payload.data(), &row, sizeof(row));
        break;
      }
      case LogRecordType::kUpdate:
      case LogRecordType::kDelete: {
        HeapRedoView view;
        SLIDB_RETURN_NOT_OK(DecodeHeapRedo(it->hdr, it->payload, &view));
        HeapRedoPayload row = view.row;
        row.before_len = 0;
        inverse.type = static_cast<uint8_t>(type == LogRecordType::kDelete
                                                ? LogRecordType::kInsert
                                                : LogRecordType::kUpdate);
        inverse_payload.resize(sizeof(row) + view.before.size());
        std::memcpy(inverse_payload.data(), &row, sizeof(row));
        if (!view.before.empty()) {
          std::memcpy(inverse_payload.data() + sizeof(row),
                      view.before.data(), view.before.size());
        }
        break;
      }
      case LogRecordType::kIndexInsert:
      case LogRecordType::kIndexRemove: {
        inverse.type =
            static_cast<uint8_t>(type == LogRecordType::kIndexInsert
                                     ? LogRecordType::kIndexRemove
                                     : LogRecordType::kIndexInsert);
        inverse_payload.assign(it->payload, it->payload + it->hdr.payload_len);
        break;
      }
      default:
        return Status::Corruption("non-redo record collected for undo");
    }
    inverse.payload_len = static_cast<uint32_t>(inverse_payload.size());
    SLIDB_RETURN_NOT_OK(
        ApplyRedo(catalog, inverse, inverse_payload.data()));
    report_.records_undone++;
    CountEvent(Counter::kRecoveryRecordsUndone);
    losers_touched.insert(it->hdr.txn_id);
    if (sink) {
      sink(it->hdr.txn_id, static_cast<LogRecordType>(inverse.type),
           inverse_payload.data(), inverse.payload_len, it->hdr.lsn);
      report_.clrs_emitted++;
      CountEvent(Counter::kRecoveryClrsEmitted);
    }
  }
  report_.losers_rolled_back = losers_touched.size();
  CountEvent(Counter::kRecoveryLosersRolledBack, losers_touched.size());
  return Status::OK();
}

void RecoveryManager::ForEachCommittedRedo(
    const std::function<void(const LogRecordHeader& hdr,
                             const uint8_t* payload)>& fn) {
  Scan();
  (void)WalkValidPrefix(
      base_lsn_,
      [&](const LogRecordHeader& hdr, const uint8_t* payload) -> Status {
        if (IsRedoType(static_cast<LogRecordType>(hdr.type)) &&
            IsCommitted(hdr.txn_id)) {
          fn(hdr, payload);
        }
        return Status::OK();
      });
}

}  // namespace slidb
