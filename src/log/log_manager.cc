#include "src/log/log_manager.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "src/stats/counters.h"
#include "src/stats/profiler.h"
#include "src/util/crc32c.h"
#include "src/util/time_util.h"

namespace slidb {

LogManager::LogManager(LogOptions options) : options_(std::move(options)) {
  ring_ = std::make_unique<uint8_t[]>(options_.buffer_bytes);
  const size_t want_slots = options_.reservation_slots != 0
                                ? options_.reservation_slots
                                : options_.buffer_bytes / 128;
  // Upper bound 2^19: the slot count must stay strictly below the 2^20
  // seq-tag space or a round's tag becomes indistinguishable from the
  // same residue one wrap later (see kSeqMask).
  const size_t slots =
      std::bit_ceil(std::clamp<size_t>(want_slots, 2, size_t{1} << 19));
  slot_mask_ = slots - 1;
  slots_ = std::make_unique<PublishSlot[]>(slots);
  for (size_t i = 0; i < slots; ++i) {
    slots_[i].tag.store(i, std::memory_order_relaxed);  // free for round 0
  }
  flusher_ = std::thread([this] { FlusherLoop(); });
}

LogManager::~LogManager() {
  {
    std::lock_guard<std::mutex> g(flush_mu_);
    stop_ = true;
  }
  flush_cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
}

void LogManager::CopyIntoRing(Lsn at, const void* src, size_t len) {
  const size_t cap = options_.buffer_bytes;
  const size_t pos = static_cast<size_t>(at % cap);
  const size_t first = std::min(len, cap - pos);
  std::memcpy(ring_.get() + pos, src, first);
  if (first < len) {
    std::memcpy(ring_.get(), static_cast<const uint8_t*>(src) + first,
                len - first);
  }
}

uint32_t LogManager::CopyIntoRingCrc(Lsn at, const void* src, size_t len,
                                     uint32_t crc) {
  const size_t cap = options_.buffer_bytes;
  const size_t pos = static_cast<size_t>(at % cap);
  const size_t first = std::min(len, cap - pos);
  crc = Crc32cCopy(crc, ring_.get() + pos, src, first);
  if (first < len) {
    crc = Crc32cCopy(crc, ring_.get(),
                     static_cast<const uint8_t*>(src) + first, len - first);
  }
  return crc;
}

void LogManager::BackpressurePause() {
  CountEvent(Counter::kLogResvRetries);
  flush_cv_.notify_one();
  const uint64_t t0 = RdCycles();
  std::this_thread::yield();
  if (ThreadProfile* p = ThreadProfile::Current()) {
    p->AttributeBlocked(t0, RdCycles());
  }
}

Lsn LogManager::Append(uint64_t txn_id, LogRecordType type,
                       const void* payload, uint32_t payload_len) {
  ScopedComponent comp(Component::kLog);
  assert(sizeof(LogRecordHeader) + payload_len <= options_.buffer_bytes);
  // Hard check, not an assert: a record the recovery scanner would reject
  // as corrupt (kBadLength) must never be sealed and acked durable — the
  // torn-write rule would then discard it AND every commit after it.
  if (payload_len > kMaxLogPayloadLen) {
    std::fprintf(stderr,
                 "slidb: log record payload %u exceeds scanner bound %u\n",
                 payload_len, kMaxLogPayloadLen);
    std::abort();
  }

  if (options_.append_mode == LogOptions::AppendMode::kLatched) {
    return AppendLatched(txn_id, type, payload, payload_len);
  }
  return AppendReserve(txn_id, type, payload, payload_len);
}

Lsn LogManager::AppendReserve(uint64_t txn_id, LogRecordType type,
                              const void* payload, uint32_t payload_len) {
  const size_t total = sizeof(LogRecordHeader) + payload_len;
  // One fetch-add claims both the byte range [start, end) and the record's
  // publish-slot sequence number; LSN order and slot order can never
  // diverge. No ordering is published here — the record becomes visible
  // only through the slot release-store below.
  const uint64_t ticket = ticket_.fetch_add(
      (uint64_t{1} << kSeqShift) + total, std::memory_order_relaxed);
  const Lsn start = ticket & kOffsetMask;
  const uint64_t seq = ticket >> kSeqShift;
  const Lsn end = start + total;
  const size_t cap = options_.buffer_bytes;

  // Ring-space backpressure: our bytes may only be written once everything
  // they would overwrite is durable. Earlier reservations never depend on
  // later ones, so the earliest unfilled writer can always make progress
  // and the wait is deadlock-free.
  while (end - durable_lsn_.load(std::memory_order_acquire) > cap) {
    BackpressurePause();
  }
  // Slot backpressure: at most `reservation_slots` records in flight. The
  // slot is ours only once its previous-round occupant was consumed (tag
  // values at this index move seq → seq+1 → seq+slots → ... in modular seq
  // space, so an unfilled predecessor and an unconsumed one both read as
  // "not our turn"). Rather than waiting on the flusher's cadence, help
  // drain the publish queue ourselves (cooperative consume); when that
  // makes no progress (consumer busy, or an unfilled predecessor stalls
  // the queue) back off so the stalled writer can run.
  PublishSlot& slot = slots_[seq & slot_mask_];
  while (slot.tag.load(std::memory_order_acquire) != (seq & kSeqMask)) {
    if (!TryAdvanceWatermark()) BackpressurePause();
  }

  // The header is sealed only now that the record's start LSN is known:
  // the CRC covers the lsn field, binding the checksum to the offset.
  const LogRecordHeader hdr =
      MakeLogRecordHeader(txn_id, type, start, payload, payload_len);
  CopyIntoRing(start, &hdr, sizeof(hdr));
  if (payload_len > 0) {
    CopyIntoRing(start + sizeof(hdr), payload, payload_len);
  }
  records_.fetch_add(1, std::memory_order_relaxed);
  slot.end = end;
  // Publish: the release pairs with the flusher's acquire tag load, making
  // `end` and the ring bytes visible before the watermark can cover them.
  slot.tag.store((seq + 1) & kSeqMask, std::memory_order_release);
  return end;
}

Lsn LogManager::AppendLatched(uint64_t txn_id, LogRecordType type,
                              const void* payload, uint32_t payload_len) {
  const size_t total = sizeof(LogRecordHeader) + payload_len;
  const size_t cap = options_.buffer_bytes;
  append_latch_.Acquire();
  while (watermark_.load(std::memory_order_relaxed) + total -
             durable_lsn_.load(std::memory_order_acquire) >
         cap) {
    append_latch_.Release();
    BackpressurePause();
    append_latch_.Acquire();
  }
  const Lsn start = watermark_.load(std::memory_order_relaxed);
  const LogRecordHeader hdr =
      MakeLogRecordHeader(txn_id, type, start, payload, payload_len);
  CopyIntoRing(start, &hdr, sizeof(hdr));
  if (payload_len > 0) {
    CopyIntoRing(start + sizeof(hdr), payload, payload_len);
  }
  records_.fetch_add(1, std::memory_order_relaxed);
  watermark_.store(start + total, std::memory_order_release);
  append_latch_.Release();
  return start + total;
}

void LogManager::PlanBatchSegments(LogStagingBuffer* staging) const {
  std::vector<LogBatchSegment>& segs = staging->seg_scratch_;
  segs.clear();
  const uint32_t small_bound = options_.batch_seal_max_record_bytes;
  // Bound one envelope's interior: a single CRC never covers more than the
  // format cap, and an envelope always fits comfortably inside one ring
  // reservation even on the tiny rings the tests configure.
  const uint32_t run_cap = static_cast<uint32_t>(std::min<size_t>(
      kMaxEnvelopePayloadLen, options_.buffer_bytes / 4));
  const size_t n = staging->offsets_.size();
  const auto rec_len = [&](size_t i) -> uint32_t {
    const uint32_t end = i + 1 < n
                             ? staging->offsets_[i + 1]
                             : static_cast<uint32_t>(staging->buf_.size());
    return end - staging->offsets_[i];
  };
  size_t i = 0;
  while (i < n) {
    const uint32_t len = rec_len(i);
    // Extend a run of consecutive small records; a run of >= 2 is worth an
    // envelope (one CRC instead of count), a singleton is not (the 32-byte
    // envelope header would outweigh the saved seal).
    size_t j = i;
    uint32_t run_bytes = 0;
    if (small_bound > 0) {
      while (j < n) {
        const uint32_t lj = rec_len(j);
        if (lj > small_bound || run_bytes + lj > run_cap) break;
        run_bytes += lj;
        ++j;
      }
    }
    if (j - i >= 2) {
      segs.push_back({static_cast<uint32_t>(j - i), staging->offsets_[i],
                      run_bytes, /*envelope=*/true});
      i = j;
    } else {
      segs.push_back({1, staging->offsets_[i], len, /*envelope=*/false});
      ++i;
    }
  }
}

size_t LogManager::SealSegmentIntoRing(LogStagingBuffer* staging,
                                       const LogBatchSegment& seg, Lsn at) {
  // Staged record offsets are unaligned (records pack back to back), so
  // header fields are patched with memcpy, never through a cast.
  uint8_t* base = staging->buf_.data() + seg.stage_off;
  if (!seg.envelope) {
    const Lsn lsn = at;
    std::memcpy(base + offsetof(LogRecordHeader, lsn), &lsn, sizeof(lsn));
    // Fold the seal into the copy: checksum the header tail in place, then
    // copy the payload into the ring while extending the same CRC.
    uint32_t c = Crc32c(0, base + kLogCrcSkip,
                        sizeof(LogRecordHeader) - kLogCrcSkip);
    const size_t payload_len = seg.stage_len - sizeof(LogRecordHeader);
    c = CopyIntoRingCrc(at + sizeof(LogRecordHeader),
                        base + sizeof(LogRecordHeader), payload_len, c);
    std::memcpy(base, &c, sizeof(c));  // hdr.crc
    CopyIntoRing(at, base, sizeof(LogRecordHeader));
    return seg.stage_len;
  }

  // Envelope: patch every interior record's lsn to its real stream offset
  // (their crc fields stay zero — the envelope CRC seals the whole run),
  // then copy the run into the ring under the envelope's single checksum.
  const Lsn interior_base = at + sizeof(LogRecordHeader);
  size_t rel = 0;
  while (rel < seg.stage_len) {
    const Lsn lsn = interior_base + rel;
    std::memcpy(base + rel + offsetof(LogRecordHeader, lsn), &lsn,
                sizeof(lsn));
    uint32_t plen;
    std::memcpy(&plen, base + rel + offsetof(LogRecordHeader, payload_len),
                sizeof(plen));
    rel += sizeof(LogRecordHeader) + plen;
  }
  LogRecordHeader env{};
  env.payload_len = seg.stage_len;
  std::memcpy(&env.txn_id, base + offsetof(LogRecordHeader, txn_id),
              sizeof(env.txn_id));
  env.lsn = at;
  env.type = static_cast<uint8_t>(LogRecordType::kBatchSeal);
  env.version = kLogFormatVersion;
  uint32_t c = Crc32c(0, reinterpret_cast<const uint8_t*>(&env) + kLogCrcSkip,
                      sizeof(env) - kLogCrcSkip);
  c = CopyIntoRingCrc(interior_base, base, seg.stage_len, c);
  env.crc = c;
  CopyIntoRing(at, &env, sizeof(env));
  return sizeof(env) + seg.stage_len;
}

Lsn LogManager::PublishChunkReserve(LogStagingBuffer* staging,
                                    const LogBatchSegment* segs, size_t n,
                                    size_t total) {
  // Identical protocol to AppendReserve, with the whole chunk riding one
  // ticket and one publish slot — the amortization this path exists for.
  const uint64_t ticket = ticket_.fetch_add(
      (uint64_t{1} << kSeqShift) + total, std::memory_order_relaxed);
  const Lsn start = ticket & kOffsetMask;
  const uint64_t seq = ticket >> kSeqShift;
  const Lsn end = start + total;
  const size_t cap = options_.buffer_bytes;

  while (end - durable_lsn_.load(std::memory_order_acquire) > cap) {
    BackpressurePause();
  }
  PublishSlot& slot = slots_[seq & slot_mask_];
  while (slot.tag.load(std::memory_order_acquire) != (seq & kSeqMask)) {
    if (!TryAdvanceWatermark()) BackpressurePause();
  }

  Lsn cursor = start;
  uint64_t recs = 0;
  for (size_t i = 0; i < n; ++i) {
    cursor += SealSegmentIntoRing(staging, segs[i], cursor);
    recs += segs[i].count;
  }
  assert(cursor == end);
  records_.fetch_add(recs, std::memory_order_relaxed);
  slot.end = end;
  slot.tag.store((seq + 1) & kSeqMask, std::memory_order_release);
  return end;
}

Lsn LogManager::PublishChunkLatched(LogStagingBuffer* staging,
                                    const LogBatchSegment* segs, size_t n,
                                    size_t total) {
  const size_t cap = options_.buffer_bytes;
  append_latch_.Acquire();
  while (watermark_.load(std::memory_order_relaxed) + total -
             durable_lsn_.load(std::memory_order_acquire) >
         cap) {
    append_latch_.Release();
    BackpressurePause();
    append_latch_.Acquire();
  }
  const Lsn start = watermark_.load(std::memory_order_relaxed);
  Lsn cursor = start;
  uint64_t recs = 0;
  for (size_t i = 0; i < n; ++i) {
    cursor += SealSegmentIntoRing(staging, segs[i], cursor);
    recs += segs[i].count;
  }
  assert(cursor == start + total);
  records_.fetch_add(recs, std::memory_order_relaxed);
  watermark_.store(start + total, std::memory_order_release);
  append_latch_.Release();
  return start + total;
}

Lsn LogManager::AppendBatch(LogStagingBuffer* staging) {
  ScopedComponent comp(Component::kLog);
  if (staging->empty()) return appended_lsn();
  PlanBatchSegments(staging);
  const std::vector<LogBatchSegment>& segs = staging->seg_scratch_;
  const size_t cap = options_.buffer_bytes;
  // A reservation can never exceed the ring (its bytes would have to
  // overwrite data that cannot become durable first — a self-deadlock), so
  // oversized batches split at segment granularity. Half the ring per
  // chunk keeps the flusher pipelined behind very large batches; in the
  // intended regime (staging watermark << ring) a batch is one chunk.
  const size_t chunk_limit = std::max<size_t>(cap / 2, 1);
  const bool latched = options_.append_mode == LogOptions::AppendMode::kLatched;
  Lsn end = 0;
  size_t i = 0;
  uint64_t batch_records = 0;
  uint64_t batch_bytes = 0;
  while (i < segs.size()) {
    size_t total = segs[i].wire_bytes();
    if (total > cap) {
      std::fprintf(stderr,
                   "slidb: batched log record (%zu B) exceeds ring (%zu B)\n",
                   total, cap);
      std::abort();
    }
    size_t j = i + 1;
    while (j < segs.size() && total + segs[j].wire_bytes() <= chunk_limit) {
      total += segs[j].wire_bytes();
      ++j;
    }
    end = latched ? PublishChunkLatched(staging, segs.data() + i, j - i, total)
                  : PublishChunkReserve(staging, segs.data() + i, j - i, total);
    CountEvent(Counter::kLogBatchAppends);
    for (size_t k = i; k < j; ++k) batch_records += segs[k].count;
    batch_bytes += total;
    i = j;
  }
  CountEvent(Counter::kLogBatchRecords, batch_records);
  CountEvent(Counter::kLogBatchBytes, batch_bytes);
  staging->Clear();
  return end;
}

void LogManager::WaitDurable(Lsn lsn) {
  if (!options_.durable_commit) return;
  if (durable_lsn_.load(std::memory_order_acquire) >= lsn) return;

  ScopedComponent comp(Component::kLog);
  const uint64_t t0 = RdCycles();
  if (options_.waiter_policy == LogOptions::WaiterPolicy::kBroadcast) {
    std::unique_lock<std::mutex> lk(flush_mu_);
    flush_cv_.notify_one();
    durable_cv_.wait(lk, [&] {
      return durable_lsn_.load(std::memory_order_acquire) >= lsn || stop_;
    });
  } else {
    // One node per thread: after the flusher sets `done` it drops every
    // reference, so returning (and later re-pushing the same node) is safe.
    // A stale notify from a previous use only causes a spurious wake, which
    // the done-flag recheck absorbs.
    thread_local CommitWaiter node;
    node.lsn = lsn;
    node.done.store(false, std::memory_order_relaxed);
    CommitWaiter* head = waiters_.load(std::memory_order_relaxed);
    do {
      node.next = head;
    } while (!waiters_.compare_exchange_weak(head, &node,
                                             std::memory_order_release,
                                             std::memory_order_relaxed));
    // Kick the flusher: it settles the waiter list on every pass, so a push
    // that races a concurrent settle is picked up by the pass this notify
    // (or the periodic timeout) triggers.
    flush_cv_.notify_one();
    while (!node.done.load(std::memory_order_acquire)) {
      node.done.wait(false, std::memory_order_acquire);
    }
    CountEvent(Counter::kGroupCommitWaitersWoken);
  }
  if (ThreadProfile* p = ThreadProfile::Current()) {
    p->AttributeBlocked(t0, RdCycles());
  }
}

bool LogManager::WaitDurableUntil(Lsn lsn, uint64_t deadline_ns) {
  if (!options_.durable_commit) return true;
  if (durable_lsn_.load(std::memory_order_acquire) >= lsn) return true;
  if (deadline_ns == 0) {
    WaitDurable(lsn);
    return true;
  }
  ScopedComponent comp(Component::kLog);
  const uint64_t t0 = RdCycles();
  // Poll at flush cadence: the durable LSN only advances when the flusher
  // runs, so re-checking once per flush interval observes a hardening
  // within ~one flush period without the per-thread settlement node (which
  // cannot be abandoned mid-wait — the flusher would settle freed memory).
  const uint64_t poll_ns =
      std::max<uint64_t>(options_.flush_interval_us * 1000, 1'000);
  bool durable;
  {
    std::unique_lock<std::mutex> lk(flush_mu_);
    flush_cv_.notify_one();
    for (;;) {
      durable = durable_lsn_.load(std::memory_order_acquire) >= lsn;
      if (durable || stop_) break;
      const uint64_t now = NowNanos();
      if (now >= deadline_ns) break;
      durable_cv_.wait_for(
          lk, std::chrono::nanoseconds(std::min(poll_ns, deadline_ns - now)));
    }
  }
  if (ThreadProfile* p = ThreadProfile::Current()) {
    p->AttributeBlocked(t0, RdCycles());
  }
  return durable;
}

bool LogManager::ParkDeferred(DeferredAck* ack) {
  // Inline settle when the horizon is already durable (the common case on
  // read-mostly workloads: the observed writers hardened flushes ago) or
  // when durability is off — then there is nothing to wait for by
  // definition, matching WaitDurable's early return.
  if (!options_.durable_commit ||
      durable_lsn_.load(std::memory_order_acquire) >= ack->lsn) {
    ack->settle_ns = ack->park_ns;
    ack->state.store(DeferredAck::kDurable, std::memory_order_release);
    return false;
  }
  ack->state.store(DeferredAck::kParked, std::memory_order_relaxed);
  DeferredAck* head = deferred_.load(std::memory_order_relaxed);
  do {
    ack->next = head;
  } while (!deferred_.compare_exchange_weak(head, ack,
                                            std::memory_order_release,
                                            std::memory_order_relaxed));
  // Kick the flusher (same contract as WaitDurable's push): a park racing
  // a concurrent settle pass is picked up by the pass this notify — or the
  // periodic timeout — triggers. A pathological race where the LSN became
  // durable between our check and the push just settles one pass later.
  flush_cv_.notify_one();
  return true;
}

bool LogManager::AdvanceWatermarkLocked() {
  Lsn w = watermark_.load(std::memory_order_relaxed);
  bool advanced = false;
  for (;;) {
    PublishSlot& slot = slots_[next_seq_ & slot_mask_];
    if (slot.tag.load(std::memory_order_acquire) !=
        ((next_seq_ + 1) & kSeqMask)) {
      break;
    }
    w = slot.end;
    // Re-arming the tag readmits the writer of the next round through this
    // slot; the release pairs with that writer's acquire spin.
    slot.tag.store((next_seq_ + slot_mask_ + 1) & kSeqMask,
                   std::memory_order_release);
    ++next_seq_;
    advanced = true;
  }
  if (advanced) watermark_.store(w, std::memory_order_release);
  return advanced;
}

bool LogManager::TryAdvanceWatermark() {
  if (!publish_latch_.TryAcquire()) return false;
  const bool advanced = AdvanceWatermarkLocked();
  publish_latch_.Release();
  return advanced;
}

void LogManager::EmitToSink(Lsn from, Lsn to) {
  if (!options_.flush_sink) return;
  const size_t cap = options_.buffer_bytes;
  while (from < to) {
    const size_t pos = static_cast<size_t>(from % cap);
    const size_t len = static_cast<size_t>(
        std::min<uint64_t>(to - from, cap - pos));
    options_.flush_sink(ring_.get() + pos, len, from);
    from += len;
  }
}

void LogManager::SettleWaiters(bool shutdown) {
  // Claim every newly pushed node and fold it into the flusher-private
  // pending list (only this thread ever walks `pending_`).
  CommitWaiter* incoming = waiters_.exchange(nullptr, std::memory_order_acquire);
  while (incoming != nullptr) {
    CommitWaiter* next = incoming->next;
    incoming->next = pending_;
    pending_ = incoming;
    incoming = next;
  }
  const Lsn durable = durable_lsn_.load(std::memory_order_relaxed);
  CommitWaiter** pp = &pending_;
  while (*pp != nullptr) {
    CommitWaiter* w = *pp;
    if (shutdown || w->lsn <= durable) {
      *pp = w->next;
      w->next = nullptr;
      // After this store the node belongs to its owner thread again.
      w->done.store(true, std::memory_order_release);
      w->done.notify_one();
    } else {
      pp = &w->next;
    }
  }
}

void LogManager::SettleDeferredAcks(bool shutdown) {
  DeferredAck* incoming =
      deferred_.exchange(nullptr, std::memory_order_acquire);
  while (incoming != nullptr) {
    DeferredAck* next = incoming->next;
    incoming->next = deferred_pending_;
    deferred_pending_ = incoming;
    incoming = next;
  }
  if (deferred_pending_ == nullptr) return;
  const Lsn durable = durable_lsn_.load(std::memory_order_relaxed);
  const uint64_t now = NowNanos();
  DeferredAck** pp = &deferred_pending_;
  while (*pp != nullptr) {
    DeferredAck* a = *pp;
    if (a->lsn <= durable || shutdown) {
      *pp = a->next;
      a->next = nullptr;
      a->settle_ns = now;
      // kDurable only when the horizon actually hardened: at shutdown an
      // unsatisfied ack's dependency died with the log, and reporting it
      // committed would externalize state recovery will not reproduce.
      // After this store the node belongs to its owner thread again.
      a->state.store(a->lsn <= durable ? DeferredAck::kDurable
                                       : DeferredAck::kLost,
                     std::memory_order_release);
      a->state.notify_one();
    } else {
      pp = &a->next;
    }
  }
}

void LogManager::FlushOnce() {
  publish_latch_.Acquire();
  AdvanceWatermarkLocked();
  publish_latch_.Release();
  const Lsn target = watermark_.load(std::memory_order_acquire);
  if (target != durable_lsn_.load(std::memory_order_relaxed)) {
    // "Write" the batch: the data is already in memory (our in-memory log
    // device); hand it to the sink if one is installed and charge the
    // configured per-I/O latency. The device write is asynchronous (DMA)
    // on real hardware, so the latency is charged as flusher sleep — the
    // agent threads keep the CPU while the I/O is in flight. Durability
    // advances only afterwards.
    EmitToSink(durable_lsn_.load(std::memory_order_relaxed), target);
    if (options_.simulated_io_delay_us > 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(options_.simulated_io_delay_us));
    }
    if (options_.waiter_policy == LogOptions::WaiterPolicy::kBroadcast) {
      // The mutex orders the durable-LSN store against a committer's
      // predicate check, closing the classic lost-wakeup window.
      {
        std::lock_guard<std::mutex> g(flush_mu_);
        durable_lsn_.store(target, std::memory_order_release);
      }
      durable_cv_.notify_all();
    } else {
      durable_lsn_.store(target, std::memory_order_release);
    }
    flushes_.fetch_add(1, std::memory_order_relaxed);
  }
  if (options_.waiter_policy == LogOptions::WaiterPolicy::kConsolidated) {
    SettleWaiters(/*shutdown=*/false);
  }
  SettleDeferredAcks(/*shutdown=*/false);
}

void LogManager::FlusherLoop() {
  std::unique_lock<std::mutex> lk(flush_mu_);
  while (!stop_) {
    flush_cv_.wait_for(lk,
                       std::chrono::microseconds(options_.flush_interval_us));
    if (stop_) break;
    lk.unlock();
    FlushOnce();
    lk.lock();
  }
  lk.unlock();
  // Drain on shutdown: harden whatever is completely published, then
  // release every committer (and every parked deferred ack) so nobody
  // hangs and no settlement-queue pointer outlives the flusher.
  FlushOnce();
  SettleWaiters(/*shutdown=*/true);
  SettleDeferredAcks(/*shutdown=*/true);
  durable_cv_.notify_all();
}

Lsn LogManager::reserved_lsn() const {
  const Lsn reserved =
      ticket_.load(std::memory_order_acquire) & kOffsetMask;
  return std::max(reserved, watermark_.load(std::memory_order_acquire));
}

LogStats LogManager::Stats() const {
  LogStats s;
  s.appended_bytes = watermark_.load(std::memory_order_relaxed);
  s.reserved_bytes = reserved_lsn();
  s.records = records_.load(std::memory_order_relaxed);
  s.flushes = flushes_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace slidb
