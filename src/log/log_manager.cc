#include "src/log/log_manager.h"

#include <cstring>

#include "src/stats/profiler.h"
#include "src/util/time_util.h"

namespace slidb {

LogManager::LogManager(LogOptions options) : options_(options) {
  ring_ = std::make_unique<uint8_t[]>(options_.buffer_bytes);
  flusher_ = std::thread([this] { FlusherLoop(); });
}

LogManager::~LogManager() {
  {
    std::lock_guard<std::mutex> g(flush_mu_);
    stop_ = true;
  }
  flush_cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
}

Lsn LogManager::Append(uint64_t txn_id, LogRecordType type,
                       const void* payload, uint32_t payload_len) {
  ScopedComponent comp(Component::kLog);
  const size_t total = sizeof(RecordHeader) + payload_len;
  const size_t cap = options_.buffer_bytes;

  append_latch_.Acquire();
  // Wait for ring space: bytes in flight may not exceed capacity.
  while (appended_lsn_.load(std::memory_order_relaxed) + total -
             durable_lsn_.load(std::memory_order_acquire) >
         cap) {
    append_latch_.Release();
    flush_cv_.notify_one();
    const uint64_t t0 = RdCycles();
    std::this_thread::yield();
    if (ThreadProfile* p = ThreadProfile::Current()) {
      p->AttributeBlocked(t0, RdCycles());
    }
    append_latch_.Acquire();
  }

  const Lsn start = appended_lsn_.load(std::memory_order_relaxed);
  RecordHeader hdr{};
  hdr.payload_len = payload_len;
  hdr.type = static_cast<uint8_t>(type);
  hdr.txn_id = txn_id;

  // Copy header + payload into the ring, handling wrap-around.
  auto copy_into_ring = [&](Lsn at, const void* src, size_t len) {
    const size_t pos = static_cast<size_t>(at % cap);
    const size_t first = std::min(len, cap - pos);
    std::memcpy(ring_.get() + pos, src, first);
    if (first < len) {
      std::memcpy(ring_.get(), static_cast<const uint8_t*>(src) + first,
                  len - first);
    }
  };
  copy_into_ring(start, &hdr, sizeof(hdr));
  if (payload_len > 0) {
    copy_into_ring(start + sizeof(hdr), payload, payload_len);
  }

  const Lsn end = start + total;
  appended_lsn_.store(end, std::memory_order_release);
  records_.fetch_add(1, std::memory_order_relaxed);
  append_latch_.Release();
  return end;
}

void LogManager::WaitDurable(Lsn lsn) {
  if (!options_.durable_commit) return;
  if (durable_lsn_.load(std::memory_order_acquire) >= lsn) return;

  ScopedComponent comp(Component::kLog);
  const uint64_t t0 = RdCycles();
  {
    std::unique_lock<std::mutex> lk(flush_mu_);
    flush_cv_.notify_one();
    durable_cv_.wait(lk, [&] {
      return durable_lsn_.load(std::memory_order_acquire) >= lsn || stop_;
    });
  }
  if (ThreadProfile* p = ThreadProfile::Current()) {
    p->AttributeBlocked(t0, RdCycles());
  }
}

void LogManager::FlusherLoop() {
  std::unique_lock<std::mutex> lk(flush_mu_);
  while (!stop_) {
    flush_cv_.wait_for(lk,
                       std::chrono::microseconds(options_.flush_interval_us));
    if (stop_) break;
    const Lsn target = appended_lsn_.load(std::memory_order_acquire);
    if (target == durable_lsn_.load(std::memory_order_relaxed)) continue;

    // "Write" the batch: the data is already in memory (our in-memory log
    // device); charge the configured per-I/O latency.
    if (options_.simulated_io_delay_us > 0) {
      lk.unlock();
      SpinForNanos(options_.simulated_io_delay_us * 1000);
      lk.lock();
    }
    durable_lsn_.store(target, std::memory_order_release);
    flushes_.fetch_add(1, std::memory_order_relaxed);
    durable_cv_.notify_all();
  }
  // Drain on shutdown so no committer hangs.
  durable_lsn_.store(appended_lsn_.load(std::memory_order_acquire),
                     std::memory_order_release);
  durable_cv_.notify_all();
}

LogStats LogManager::Stats() const {
  LogStats s;
  s.appended_bytes = appended_lsn_.load(std::memory_order_relaxed);
  s.records = records_.load(std::memory_order_relaxed);
  s.flushes = flushes_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace slidb
