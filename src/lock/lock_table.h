// Partitioned hash table of lock heads (paper Figure 2). Buckets are
// individually latched; lock heads are reference-counted (pins) so they can
// be reclaimed when their queues drain without invalidating concurrent
// references.
#pragma once

#include <cstdint>
#include <memory>

#include "src/lock/lock_head.h"
#include "src/util/cacheline.h"
#include "src/util/latch.h"

namespace slidb {

class LockTable {
 public:
  /// `num_buckets` is rounded up to a power of two.
  explicit LockTable(size_t num_buckets = 1 << 14);
  ~LockTable();

  LockTable(const LockTable&) = delete;
  LockTable& operator=(const LockTable&) = delete;

  /// Find or create the head for `id`. The returned head carries one pin
  /// owned by the caller; pair with Unpin() (directly or by transferring
  /// the pin to an enqueued request).
  LockHead* FindOrCreate(const LockId& id);

  /// Find without creating; returns nullptr (and takes no pin) if absent.
  LockHead* Find(const LockId& id);

  void Unpin(LockHead* head) {
    head->pin_count.fetch_sub(1, std::memory_order_acq_rel);
  }

  /// Opportunistically retire the head for `id` if its queue is empty and
  /// nobody holds a pin: the head moves to the bucket's freelist (up to
  /// kMaxFreePerBucket) for allocator-free reuse, else is deleted. Safe to
  /// call any time; no-ops when in use.
  void TryReclaim(const LockId& id);

  /// Heads currently parked on bucket freelists (stats/tests).
  size_t FreeListSize();

  /// Iterate all heads (stats). `fn` is invoked with the head latch held;
  /// it must not block or acquire other latches.
  template <typename Fn>
  void ForEachHead(Fn&& fn) {
    for (size_t i = 0; i <= bucket_mask_; ++i) {
      Bucket& bucket = *buckets_[i];
      SpinLatchGuard bg(bucket.latch);
      for (LockHead* h = bucket.chain; h != nullptr; h = h->bucket_next) {
        SpinLatchGuard hg(h->latch);
        fn(h);
      }
    }
  }

  /// Like ForEachHead, but skips buckets whose aggregate waiter count
  /// (maintained by LockHead::AddWaiter/RemoveWaiter) is zero — without
  /// taking the bucket latch, let alone any head latch — and, inside a
  /// bucket that does have waiters, skips latching the individual heads
  /// whose own `waiter_count` is zero (one chain of a hot bucket can hold
  /// dozens of uncontended row heads next to the single contended one).
  /// Waits-for edges only exist on heads with a waiting or converting
  /// request, so this visits every head that can contribute one; a waiter
  /// arriving concurrently with either skip check is caught by the
  /// caller's next pass (the deadlock detector is periodic by design).
  template <typename Fn>
  void ForEachHeadWithWaiters(Fn&& fn) {
    for (size_t i = 0; i <= bucket_mask_; ++i) {
      Bucket& bucket = *buckets_[i];
      if (bucket.waiters.load(std::memory_order_acquire) == 0) continue;
      SpinLatchGuard bg(bucket.latch);
      for (LockHead* h = bucket.chain; h != nullptr; h = h->bucket_next) {
        if (h->waiter_count.load(std::memory_order_acquire) == 0) continue;
        SpinLatchGuard hg(h->latch);
        fn(h);
      }
    }
  }

  /// Number of live heads (O(buckets); for tests and stats).
  size_t CountHeads();

 private:
  /// Row-lock churn creates and retires heads constantly; a small per-bucket
  /// freelist keeps that traffic off the global allocator (and off its
  /// lock). Freelist links reuse `bucket_next`; both lists are protected by
  /// the bucket latch.
  static constexpr size_t kMaxFreePerBucket = 8;

  struct Bucket {
    SpinLatch latch;
    LockHead* chain = nullptr;
    LockHead* free_list = nullptr;
    uint32_t free_count = 0;
    /// Waiting/converting requests across all heads in this bucket
    /// (maintained latch-free via LockHead::bucket_waiters).
    std::atomic<uint32_t> waiters{0};
    /// Max LockHead::last_commit_lsn of every head retired from this
    /// bucket (bucket-latch protected). A freshly created head inherits
    /// it, so the ELR durability horizon survives row-head reclamation:
    /// without this, writer-commit → head reclaim → reader re-create
    /// would silently drop the reader's dependency. Bucket granularity
    /// over-approximates only when two heads share a bucket.
    uint64_t retired_dep = 0;
  };

  Bucket& BucketFor(const LockId& id) {
    return *buckets_[id.Hash() & bucket_mask_];
  }

  // Heap array (not vector): buckets contain latches and are immovable.
  std::unique_ptr<CacheAligned<Bucket>[]> buckets_;
  size_t bucket_mask_;
};

}  // namespace slidb
