#include "src/lock/lock_request.h"

namespace slidb {

RequestPool::~RequestPool() {
  LockRequest* r = free_;
  while (r != nullptr) {
    LockRequest* next = r->txn_next;
    delete r;
    r = next;
  }
}

}  // namespace slidb
