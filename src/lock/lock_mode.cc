#include "src/lock/lock_mode.h"

namespace slidb {

const char* LockModeName(LockMode m) {
  switch (m) {
    case LockMode::kNL: return "NL";
    case LockMode::kIS: return "IS";
    case LockMode::kIX: return "IX";
    case LockMode::kS: return "S";
    case LockMode::kSIX: return "SIX";
    case LockMode::kU: return "U";
    case LockMode::kX: return "X";
  }
  return "?";
}

LockMode IntentionFor(LockMode m) {
  switch (m) {
    case LockMode::kNL:
    case LockMode::kIS:
    case LockMode::kS:
      return LockMode::kIS;
    case LockMode::kIX:
    case LockMode::kSIX:
    case LockMode::kU:  // may upgrade to X, so announce write intent
    case LockMode::kX:
      return LockMode::kIX;
  }
  return LockMode::kIX;
}

bool ParentCoversChild(LockMode held, LockMode wanted) {
  // A parent lock grants an implicit lock of the same strength on all
  // children: S implies child-S, X implies child-X, SIX implies child-S.
  switch (held) {
    case LockMode::kX:
      return true;
    case LockMode::kS:
    case LockMode::kU:
      return wanted == LockMode::kS || wanted == LockMode::kIS ||
             wanted == LockMode::kNL;
    case LockMode::kSIX:
      // The S half covers reads; writes still need explicit child locks.
      return wanted == LockMode::kS || wanted == LockMode::kIS ||
             wanted == LockMode::kNL;
    default:
      return wanted == LockMode::kNL;
  }
}

}  // namespace slidb
