#include "src/lock/lock_mode.h"

namespace slidb {

namespace {

constexpr size_t Idx(LockMode m) { return static_cast<size_t>(m); }

// compat[held][requested]
// held\req        NL IS IX  S SIX  U  X
constexpr bool kCompat[kNumLockModes][kNumLockModes] = {
    /* NL  */ {true, true, true, true, true, true, true},
    /* IS  */ {true, true, true, true, true, true, false},
    /* IX  */ {true, true, true, false, false, false, false},
    /* S   */ {true, true, false, true, false, true, false},
    /* SIX */ {true, true, false, false, false, false, false},
    /* U   */ {true, true, false, false, false, false, false},
    /* X   */ {true, false, false, false, false, false, false},
};

// Supremum lattice: least mode covering both operands.
constexpr LockMode kSup[kNumLockModes][kNumLockModes] = {
    /* NL  */ {LockMode::kNL, LockMode::kIS, LockMode::kIX, LockMode::kS,
               LockMode::kSIX, LockMode::kU, LockMode::kX},
    /* IS  */ {LockMode::kIS, LockMode::kIS, LockMode::kIX, LockMode::kS,
               LockMode::kSIX, LockMode::kU, LockMode::kX},
    /* IX  */ {LockMode::kIX, LockMode::kIX, LockMode::kIX, LockMode::kSIX,
               LockMode::kSIX, LockMode::kX, LockMode::kX},
    /* S   */ {LockMode::kS, LockMode::kS, LockMode::kSIX, LockMode::kS,
               LockMode::kSIX, LockMode::kU, LockMode::kX},
    /* SIX */ {LockMode::kSIX, LockMode::kSIX, LockMode::kSIX, LockMode::kSIX,
               LockMode::kSIX, LockMode::kX, LockMode::kX},
    /* U   */ {LockMode::kU, LockMode::kU, LockMode::kX, LockMode::kU,
               LockMode::kX, LockMode::kU, LockMode::kX},
    /* X   */ {LockMode::kX, LockMode::kX, LockMode::kX, LockMode::kX,
               LockMode::kX, LockMode::kX, LockMode::kX},
};

// covers[held][wanted]: holding `held` makes requesting `wanted` a no-op.
constexpr bool kCovers[kNumLockModes][kNumLockModes] = {
    /* NL  */ {true, false, false, false, false, false, false},
    /* IS  */ {true, true, false, false, false, false, false},
    /* IX  */ {true, true, true, false, false, false, false},
    /* S   */ {true, true, false, true, false, false, false},
    /* SIX */ {true, true, true, true, true, false, false},
    /* U   */ {true, true, false, true, false, true, false},
    /* X   */ {true, true, true, true, true, true, true},
};

}  // namespace

const char* LockModeName(LockMode m) {
  switch (m) {
    case LockMode::kNL: return "NL";
    case LockMode::kIS: return "IS";
    case LockMode::kIX: return "IX";
    case LockMode::kS: return "S";
    case LockMode::kSIX: return "SIX";
    case LockMode::kU: return "U";
    case LockMode::kX: return "X";
  }
  return "?";
}

bool Compatible(LockMode held, LockMode requested) {
  return kCompat[Idx(held)][Idx(requested)];
}

LockMode Supremum(LockMode a, LockMode b) { return kSup[Idx(a)][Idx(b)]; }

bool Covers(LockMode held, LockMode wanted) {
  return kCovers[Idx(held)][Idx(wanted)];
}

LockMode IntentionFor(LockMode m) {
  switch (m) {
    case LockMode::kNL:
    case LockMode::kIS:
    case LockMode::kS:
      return LockMode::kIS;
    case LockMode::kIX:
    case LockMode::kSIX:
    case LockMode::kU:  // may upgrade to X, so announce write intent
    case LockMode::kX:
      return LockMode::kIX;
  }
  return LockMode::kIX;
}

bool ParentCoversChild(LockMode held, LockMode wanted) {
  // A parent lock grants an implicit lock of the same strength on all
  // children: S implies child-S, X implies child-X, SIX implies child-S.
  switch (held) {
    case LockMode::kX:
      return true;
    case LockMode::kS:
    case LockMode::kU:
      return wanted == LockMode::kS || wanted == LockMode::kIS ||
             wanted == LockMode::kNL;
    case LockMode::kSIX:
      // The S half covers reads; writes still need explicit child locks.
      return wanted == LockMode::kS || wanted == LockMode::kIS ||
             wanted == LockMode::kNL;
    default:
      return wanted == LockMode::kNL;
  }
}

}  // namespace slidb
