// Lock heads: one per active lock, holding the request queue, the
// incrementally-maintained grant summary, the protecting latch, and the
// hot-lock tracker SLI's criterion 2 consults (paper Figure 2).
#pragma once

#include <atomic>
#include <bit>
#include <cassert>
#include <cstdint>

#include "src/lock/lock_id.h"
#include "src/lock/lock_mode.h"
#include "src/lock/lock_request.h"
#include "src/util/latch.h"

namespace slidb {

/// Sliding-window detector for "hot" locks: remembers whether each of the
/// last 16 latch acquisitions on this head was contended; the lock is hot
/// when at least `min_contended` of them were (paper §4.2: fraction of
/// recent acquires that encountered latch contention crosses a threshold).
/// Updates are racy by design — this is a statistic, not a correctness bit.
class HotTracker {
 public:
  void Record(bool contended) {
    const uint32_t h = history_.load(std::memory_order_relaxed);
    history_.store(((h << 1) | (contended ? 1u : 0u)) & 0xffffu,
                   std::memory_order_relaxed);
    total_.fetch_add(1, std::memory_order_relaxed);
    if (contended) total_contended_.fetch_add(1, std::memory_order_relaxed);
  }

  uint32_t ContendedCount() const {
    return static_cast<uint32_t>(
        std::popcount(history_.load(std::memory_order_relaxed)));
  }

  bool IsHot(uint32_t min_contended) const {
    return ContendedCount() >= min_contended;
  }

  /// Adaptive-SLI state machine (LockManagerOptions::sli_adaptive): a sticky
  /// per-head "inheritance enabled" bit with separate enter and exit
  /// thresholds. Cold -> hot when the window's contended count reaches
  /// `enter`; hot -> cold only when it falls to <= `exit` (exit < enter
  /// gives real hysteresis: a head in between keeps its current state, so
  /// window noise around the threshold cannot flap inheritance on and off).
  /// Evaluated on the commit path, racy like the window itself — a missed
  /// or doubled transition only perturbs a statistic-driven policy.
  bool IsHotAdaptive(uint32_t enter, uint32_t exit) {
    const uint32_t contended = ContendedCount();
    if (!adaptive_hot_.load(std::memory_order_relaxed)) {
      if (contended < enter) return false;
      adaptive_hot_.store(true, std::memory_order_relaxed);
      return true;
    }
    if (contended <= exit) {
      adaptive_hot_.store(false, std::memory_order_relaxed);
      return false;
    }
    return true;
  }

  /// Current adaptive state without evaluating a transition.
  bool adaptive_hot() const {
    return adaptive_hot_.load(std::memory_order_relaxed);
  }

  /// Force-set for tests and the always-inherit ablation.
  void ForceHot() { history_.store(0xffffu, std::memory_order_relaxed); }
  void Clear() {
    history_.store(0, std::memory_order_relaxed);
    total_.store(0, std::memory_order_relaxed);
    total_contended_.store(0, std::memory_order_relaxed);
    adaptive_hot_.store(false, std::memory_order_relaxed);
  }

  /// Cumulative statistics (whole head lifetime, not windowed).
  uint64_t total_acquires() const {
    return total_.load(std::memory_order_relaxed);
  }
  uint64_t total_contended() const {
    return total_contended_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<uint32_t> history_{0};
  std::atomic<uint64_t> total_{0};
  std::atomic<uint64_t> total_contended_{0};
  std::atomic<bool> adaptive_hot_{false};
};

/// One active lock. Queue fields are protected by `latch`; `waiter_count`,
/// `pin_count` and `inherited_hint` are atomic so SLI's criteria checks and
/// the hash table's life-cycle management can read them without latching.
///
/// The grant summary (`granted_counts` / `granted_mask`) counts every *live*
/// request — kGranted, kInherited, and kConverting (at its currently-held
/// mode) — per mode, and caches the bitset of modes with nonzero count.
/// It is maintained incrementally by every grant / upgrade / release /
/// invalidate, all of which happen under `latch`. The latch-free SLI
/// transitions (kGranted ⇄ kInherited) do not move a request in or out of
/// the live set and do not change its mode, so the summary never needs to
/// observe them — this is what lets conflict detection read one cached mask
/// instead of walking the queue (see DESIGN.md "Grant-summary invariants").
struct LockHead {
  LockId id;
  SpinLatch latch;

  /// Per-mode count of live (granted/inherited/converting) requests and the
  /// cached bitset of modes whose count is nonzero. Protected by `latch`.
  uint16_t granted_counts[kNumLockModes] = {};
  uint8_t granted_mask = 0;

  /// Total queue length (granted + waiting), maintained by Append/Unlink so
  /// the simulated per-entry queue cost needs no walk. Protected by `latch`.
  uint32_t queue_len = 0;

  /// Requests in kWaiting or kConverting state (atomic: read latch-free by
  /// SLI criterion 4, "no other transaction is waiting").
  std::atomic<uint32_t> waiter_count{0};

  /// Aggregate waiter count of the hash bucket holding this head, wired by
  /// LockTable at creation. Maintained alongside waiter_count (AddWaiter /
  /// RemoveWaiter) so the deadlock detector can skip whole buckets — idle
  /// tables are scanned without touching a single head latch.
  std::atomic<uint32_t>* bucket_waiters = nullptr;

  /// Waiter boundary: the earliest queue node that may still be in
  /// kWaiting. Invariant (latched): every kWaiting request sits at or after
  /// this node, so wakeup scans (GrantWaiters phase 2) start here instead
  /// of re-walking the granted prefix. nullptr when no request is waiting.
  LockRequest* waiter_hint = nullptr;

  /// Number of kConverting requests in the queue (subset of waiter_count).
  /// Conversions live inside the granted prefix, so this is what lets the
  /// conversion scan be skipped entirely when zero. Protected by `latch`.
  uint32_t converting_count = 0;

  /// Conservative overestimate of the number of kInherited requests in the
  /// queue: incremented *before* the kGranted→kInherited CAS, decremented
  /// *after* a request leaves kInherited (reclaim, invalidate, discard).
  /// Zero therefore proves "nothing to invalidate", letting the conflict
  /// path fail in O(1) instead of walking the queue looking for inherited
  /// requests to kill.
  std::atomic<uint32_t> inherited_hint{0};

  HotTracker hot;

  /// Commit LSN of the latest write-mode holder (X/SIX/U/IX) that released
  /// or inherited this lock — the durability horizon a later acquirer of
  /// this head depends on under early lock release (see TransactionManager
  /// read-only commit). Monotone max; stamped under the head latch on
  /// release and latch-free (CAS max) on SLI inheritance; read with
  /// acquire by acquirers. Survives head reclamation via the bucket's
  /// retired_dep fold (LockTable).
  std::atomic<uint64_t> last_commit_lsn{0};

  /// FIFO request queue (paper Figure 3). Granted requests live at the
  /// front, waiters behind them, strictly in arrival order.
  LockRequest* q_head = nullptr;
  LockRequest* q_tail = nullptr;

  /// References that keep this head alive: one per linked request plus one
  /// per thread currently operating on the head outside the bucket latch.
  std::atomic<uint32_t> pin_count{0};

  /// Monotone max-fold into last_commit_lsn (release/relaxed CAS loop).
  void StampCommitLsn(uint64_t lsn) {
    uint64_t cur = last_commit_lsn.load(std::memory_order_relaxed);
    while (cur < lsn &&
           !last_commit_lsn.compare_exchange_weak(cur, lsn,
                                                  std::memory_order_release,
                                                  std::memory_order_relaxed)) {
    }
  }

  /// Hash chain link, protected by the bucket latch. Doubles as the
  /// free-list link while the head sits in a bucket's reuse pool.
  LockHead* bucket_next = nullptr;

  // ---- queue helpers; caller must hold `latch` ----

  void Append(LockRequest* r) {
    r->q_prev = q_tail;
    r->q_next = nullptr;
    if (q_tail != nullptr) {
      q_tail->q_next = r;
    } else {
      q_head = r;
    }
    q_tail = r;
    ++queue_len;
  }

  void Unlink(LockRequest* r) {
    if (r == waiter_hint) waiter_hint = r->q_next;
    if (r->q_prev != nullptr) {
      r->q_prev->q_next = r->q_next;
    } else {
      q_head = r->q_next;
    }
    if (r->q_next != nullptr) {
      r->q_next->q_prev = r->q_prev;
    } else {
      q_tail = r->q_prev;
    }
    r->q_prev = r->q_next = nullptr;
    --queue_len;
  }

  bool QueueEmpty() const { return q_head == nullptr; }

  /// A request entered kWaiting/kConverting. Keeps the head's count (SLI
  /// criterion 4) and the bucket aggregate (detector bucket skip) in step.
  void AddWaiter() {
    waiter_count.fetch_add(1, std::memory_order_acq_rel);
    if (bucket_waiters != nullptr) {
      bucket_waiters->fetch_add(1, std::memory_order_acq_rel);
    }
  }

  /// A request left kWaiting/kConverting (grant, abort, or timeout).
  void RemoveWaiter() {
    waiter_count.fetch_sub(1, std::memory_order_acq_rel);
    if (bucket_waiters != nullptr) {
      bucket_waiters->fetch_sub(1, std::memory_order_acq_rel);
    }
  }

  // ---- grant summary; caller must hold `latch` ----

  /// Supremum of the modes of all live (granted + inherited + converting)
  /// requests — one table lookup on the cached mask.
  LockMode GrantedMode() const { return kSupremumOfMask[granted_mask]; }

  /// A request entered the live set in `m` (new grant).
  void SummaryAdd(LockMode m) {
    if (granted_counts[ModeIdx(m)]++ == 0) granted_mask |= ModeBit(m);
  }

  /// A live request left the queue (release / invalidate / discard).
  void SummaryRemove(LockMode m) {
    assert(granted_counts[ModeIdx(m)] > 0);
    if (--granted_counts[ModeIdx(m)] == 0) granted_mask &= ~ModeBit(m);
  }

  /// A live request changed mode (upgrade / conversion grant).
  void SummaryUpgrade(LockMode from, LockMode to) {
    if (from == to) return;
    SummaryRemove(from);
    SummaryAdd(to);
  }

  /// The held-mode bitset with `self`'s own contribution removed — the mask
  /// a request must be tested against when re-evaluating itself (upgrade /
  /// conversion). O(1).
  uint8_t MaskExcluding(const LockRequest* self) const {
    if (self == nullptr) return granted_mask;
    const RequestStatus s = self->status.load(std::memory_order_acquire);
    if (s != RequestStatus::kGranted && s != RequestStatus::kConverting &&
        s != RequestStatus::kInherited) {
      return granted_mask;
    }
    uint8_t mask = granted_mask;
    if (granted_counts[ModeIdx(self->mode)] == 1) mask &= ~ModeBit(self->mode);
    return mask;
  }

  /// Debug checker: recompute the summary from a full queue scan and compare
  /// with the incremental state. Caller must hold `latch`.
  bool SummaryMatchesQueue() const {
    uint16_t counts[kNumLockModes] = {};
    uint8_t mask = 0;
    uint32_t len = 0;
    uint32_t converting = 0;
    bool hint_seen = false;
    for (LockRequest* r = q_head; r != nullptr; r = r->q_next) {
      ++len;
      if (r == waiter_hint) hint_seen = true;
      const RequestStatus s = r->status.load(std::memory_order_acquire);
      if (s == RequestStatus::kGranted || s == RequestStatus::kInherited ||
          s == RequestStatus::kConverting) {
        if (counts[ModeIdx(r->mode)]++ == 0) mask |= ModeBit(r->mode);
      }
      if (s == RequestStatus::kConverting) ++converting;
      // Waiter-boundary invariant: no kWaiting request before the hint
      // (an unset hint means no request may be waiting at all).
      if (s == RequestStatus::kWaiting && !hint_seen) return false;
    }
    if (waiter_hint != nullptr && !hint_seen) return false;  // dangling hint
    if (converting != converting_count) return false;
    if (mask != granted_mask || len != queue_len) return false;
    for (size_t i = 0; i < kNumLockModes; ++i) {
      if (counts[i] != granted_counts[i]) return false;
    }
    return true;
  }

  /// Rebuild the summary from the queue (test helper; production code keeps
  /// it incrementally). Caller must hold `latch`.
  void RecomputeSummaryFromQueue() {
    for (size_t i = 0; i < kNumLockModes; ++i) granted_counts[i] = 0;
    granted_mask = 0;
    converting_count = 0;
    waiter_hint = nullptr;
    uint32_t len = 0;
    for (LockRequest* r = q_head; r != nullptr; r = r->q_next) {
      ++len;
      const RequestStatus s = r->status.load(std::memory_order_acquire);
      if (s == RequestStatus::kGranted || s == RequestStatus::kInherited ||
          s == RequestStatus::kConverting) {
        SummaryAdd(r->mode);
      }
      if (s == RequestStatus::kConverting) ++converting_count;
      if (s == RequestStatus::kWaiting && waiter_hint == nullptr) {
        waiter_hint = r;
      }
    }
    queue_len = len;
  }
};

}  // namespace slidb
