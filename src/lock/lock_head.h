// Lock heads: one per active lock, holding the request queue, the aggregate
// granted mode, the protecting latch, and the hot-lock tracker SLI's
// criterion 2 consults (paper Figure 2).
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>

#include "src/lock/lock_id.h"
#include "src/lock/lock_mode.h"
#include "src/lock/lock_request.h"
#include "src/util/latch.h"

namespace slidb {

/// Sliding-window detector for "hot" locks: remembers whether each of the
/// last 16 latch acquisitions on this head was contended; the lock is hot
/// when at least `min_contended` of them were (paper §4.2: fraction of
/// recent acquires that encountered latch contention crosses a threshold).
/// Updates are racy by design — this is a statistic, not a correctness bit.
class HotTracker {
 public:
  void Record(bool contended) {
    const uint32_t h = history_.load(std::memory_order_relaxed);
    history_.store(((h << 1) | (contended ? 1u : 0u)) & 0xffffu,
                   std::memory_order_relaxed);
    total_.fetch_add(1, std::memory_order_relaxed);
    if (contended) total_contended_.fetch_add(1, std::memory_order_relaxed);
  }

  uint32_t ContendedCount() const {
    return static_cast<uint32_t>(
        std::popcount(history_.load(std::memory_order_relaxed)));
  }

  bool IsHot(uint32_t min_contended) const {
    return ContendedCount() >= min_contended;
  }

  /// Force-set for tests and the always-inherit ablation.
  void ForceHot() { history_.store(0xffffu, std::memory_order_relaxed); }
  void Clear() { history_.store(0, std::memory_order_relaxed); }

  /// Cumulative statistics (whole head lifetime, not windowed).
  uint64_t total_acquires() const {
    return total_.load(std::memory_order_relaxed);
  }
  uint64_t total_contended() const {
    return total_contended_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<uint32_t> history_{0};
  std::atomic<uint64_t> total_{0};
  std::atomic<uint64_t> total_contended_{0};
};

/// One active lock. Queue fields are protected by `latch`; `waiter_count`
/// and `pin_count` are atomic so SLI's criteria checks and the hash table's
/// life-cycle management can read them without latching.
struct LockHead {
  LockId id;
  SpinLatch latch;

  /// Supremum of the modes of all granted + inherited requests.
  LockMode granted_mode = LockMode::kNL;

  /// Requests in kWaiting or kConverting state (atomic: read latch-free by
  /// SLI criterion 4, "no other transaction is waiting").
  std::atomic<uint32_t> waiter_count{0};

  /// Requests in kGranted or kInherited state.
  uint32_t granted_count = 0;

  HotTracker hot;

  /// FIFO request queue (paper Figure 3). Granted requests live at the
  /// front, waiters behind them, strictly in arrival order.
  LockRequest* q_head = nullptr;
  LockRequest* q_tail = nullptr;

  /// References that keep this head alive: one per linked request plus one
  /// per thread currently operating on the head outside the bucket latch.
  std::atomic<uint32_t> pin_count{0};

  /// Hash chain link, protected by the bucket latch.
  LockHead* bucket_next = nullptr;

  // ---- queue helpers; caller must hold `latch` ----

  void Append(LockRequest* r) {
    r->q_prev = q_tail;
    r->q_next = nullptr;
    if (q_tail != nullptr) {
      q_tail->q_next = r;
    } else {
      q_head = r;
    }
    q_tail = r;
  }

  void Unlink(LockRequest* r) {
    if (r->q_prev != nullptr) {
      r->q_prev->q_next = r->q_next;
    } else {
      q_head = r->q_next;
    }
    if (r->q_next != nullptr) {
      r->q_next->q_prev = r->q_prev;
    } else {
      q_tail = r->q_prev;
    }
    r->q_prev = r->q_next = nullptr;
  }

  bool QueueEmpty() const { return q_head == nullptr; }

  /// Recompute `granted_mode` from granted/converting/inherited requests.
  /// Converting requests contribute their currently-granted mode.
  void RecomputeGrantedMode() {
    LockMode sup = LockMode::kNL;
    uint32_t granted = 0;
    for (LockRequest* r = q_head; r != nullptr; r = r->q_next) {
      const RequestStatus s = r->status.load(std::memory_order_acquire);
      if (s == RequestStatus::kGranted || s == RequestStatus::kInherited ||
          s == RequestStatus::kConverting) {
        sup = Supremum(sup, r->mode);
        if (s != RequestStatus::kConverting) ++granted;
      }
    }
    granted_mode = sup;
    granted_count = granted;
  }
};

}  // namespace slidb
