// Hierarchical lock modes (Gray & Reuter) with the asymmetric compatibility
// matrix, the supremum ("combine") lattice used for upgrades, and the
// shared-class predicate SLI uses for its eligibility criterion 3.
//
// All relations are exposed as constexpr bitmask tables so the lock-manager
// hot path can test a requested mode against an arbitrary *set* of held
// modes with a single AND (see DESIGN.md "O(1) conflict detection"):
//   conflict iff  held_mask & kConflictMask[requested]  is nonzero.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace slidb {

/// Database lock modes. kU (update) blocks new readers asymmetrically to
/// prevent upgrade starvation, per the classic treatment.
enum class LockMode : uint8_t {
  kNL = 0,  ///< no lock (placeholder)
  kIS,      ///< intention share
  kIX,      ///< intention exclusive
  kS,       ///< share
  kSIX,     ///< share + intention exclusive
  kU,       ///< update (read with intent to upgrade)
  kX,       ///< exclusive
};

inline constexpr size_t kNumLockModes = 7;

constexpr size_t ModeIdx(LockMode m) { return static_cast<size_t>(m); }

/// One-hot bit for a mode, for use in mode-set bitmasks.
constexpr uint8_t ModeBit(LockMode m) {
  return static_cast<uint8_t>(1u << ModeIdx(m));
}

/// Bitmask containing every mode (including kNL).
inline constexpr uint8_t kAllModesMask = (1u << kNumLockModes) - 1;

const char* LockModeName(LockMode m);

namespace lock_mode_internal {

// compat[held][requested] — the Gray & Reuter matrix, asymmetric in U.
// held\req        NL IS IX  S SIX  U  X
inline constexpr bool kCompat[kNumLockModes][kNumLockModes] = {
    /* NL  */ {true, true, true, true, true, true, true},
    /* IS  */ {true, true, true, true, true, true, false},
    /* IX  */ {true, true, true, false, false, false, false},
    /* S   */ {true, true, false, true, false, true, false},
    /* SIX */ {true, true, false, false, false, false, false},
    /* U   */ {true, true, false, false, false, false, false},
    /* X   */ {true, false, false, false, false, false, false},
};

// covers[held][wanted]: holding `held` makes requesting `wanted` a no-op.
inline constexpr bool kCovers[kNumLockModes][kNumLockModes] = {
    /* NL  */ {true, false, false, false, false, false, false},
    /* IS  */ {true, true, false, false, false, false, false},
    /* IX  */ {true, true, true, false, false, false, false},
    /* S   */ {true, true, false, true, false, false, false},
    /* SIX */ {true, true, true, true, true, false, false},
    /* U   */ {true, true, false, true, false, true, false},
    /* X   */ {true, true, true, true, true, true, true},
};

constexpr std::array<uint8_t, kNumLockModes> MakeCompatMask() {
  std::array<uint8_t, kNumLockModes> t{};
  for (size_t req = 0; req < kNumLockModes; ++req) {
    uint8_t mask = 0;
    for (size_t held = 0; held < kNumLockModes; ++held) {
      if (kCompat[held][req]) mask |= static_cast<uint8_t>(1u << held);
    }
    t[req] = mask;
  }
  return t;
}

constexpr std::array<uint8_t, kNumLockModes> MakeCoversMask() {
  std::array<uint8_t, kNumLockModes> t{};
  for (size_t held = 0; held < kNumLockModes; ++held) {
    uint8_t mask = 0;
    for (size_t wanted = 0; wanted < kNumLockModes; ++wanted) {
      if (kCovers[held][wanted]) mask |= static_cast<uint8_t>(1u << wanted);
    }
    t[held] = mask;
  }
  return t;
}

}  // namespace lock_mode_internal

/// kCompatMask[requested] = bitset of *held* modes compatible with a new
/// request for `requested` by a different transaction.
inline constexpr std::array<uint8_t, kNumLockModes> kCompatMask =
    lock_mode_internal::MakeCompatMask();

/// kCoversMask[held] = bitset of modes a holder of `held` covers.
inline constexpr std::array<uint8_t, kNumLockModes> kCoversMask =
    lock_mode_internal::MakeCoversMask();

/// Bitset of held modes that conflict with a new request for `m`.
constexpr uint8_t ConflictMask(LockMode m) {
  return static_cast<uint8_t>(~kCompatMask[ModeIdx(m)] & kAllModesMask);
}

/// True iff a new request for `requested` can be granted while `held` is
/// granted to a *different* transaction. Asymmetric in U: a held U blocks
/// new S/U requests, but a held S admits a new U.
constexpr bool Compatible(LockMode held, LockMode requested) {
  return (kCompatMask[ModeIdx(requested)] >> ModeIdx(held)) & 1u;
}

/// True iff `requested` is compatible with every mode in `held_mask`
/// (a bitset of held modes). One AND — the hot-path conflict test.
constexpr bool CompatibleWithAll(uint8_t held_mask, LockMode requested) {
  return (held_mask & ConflictMask(requested)) == 0;
}

/// True iff holding `held` makes a separate request for `wanted` redundant
/// (e.g. S covers IS and S; X covers everything).
constexpr bool Covers(LockMode held, LockMode wanted) {
  return (kCoversMask[ModeIdx(held)] >> ModeIdx(wanted)) & 1u;
}

namespace lock_mode_internal {

// Supremum lattice: least mode covering both operands.
inline constexpr LockMode kSup[kNumLockModes][kNumLockModes] = {
    /* NL  */ {LockMode::kNL, LockMode::kIS, LockMode::kIX, LockMode::kS,
               LockMode::kSIX, LockMode::kU, LockMode::kX},
    /* IS  */ {LockMode::kIS, LockMode::kIS, LockMode::kIX, LockMode::kS,
               LockMode::kSIX, LockMode::kU, LockMode::kX},
    /* IX  */ {LockMode::kIX, LockMode::kIX, LockMode::kIX, LockMode::kSIX,
               LockMode::kSIX, LockMode::kX, LockMode::kX},
    /* S   */ {LockMode::kS, LockMode::kS, LockMode::kSIX, LockMode::kS,
               LockMode::kSIX, LockMode::kU, LockMode::kX},
    /* SIX */ {LockMode::kSIX, LockMode::kSIX, LockMode::kSIX, LockMode::kSIX,
               LockMode::kSIX, LockMode::kX, LockMode::kX},
    /* U   */ {LockMode::kU, LockMode::kU, LockMode::kX, LockMode::kU,
               LockMode::kX, LockMode::kU, LockMode::kX},
    /* X   */ {LockMode::kX, LockMode::kX, LockMode::kX, LockMode::kX,
               LockMode::kX, LockMode::kX, LockMode::kX},
};

}  // namespace lock_mode_internal

/// Least mode that covers both `a` and `b`; used for upgrades
/// (e.g. sup(S, IX) = SIX, sup(U, IX) = X).
constexpr LockMode Supremum(LockMode a, LockMode b) {
  return lock_mode_internal::kSup[ModeIdx(a)][ModeIdx(b)];
}

namespace lock_mode_internal {

constexpr std::array<LockMode, kAllModesMask + 1> MakeSupremumOfMask() {
  std::array<LockMode, kAllModesMask + 1> t{};
  for (unsigned mask = 0; mask <= kAllModesMask; ++mask) {
    LockMode sup = LockMode::kNL;
    for (size_t m = 0; m < kNumLockModes; ++m) {
      if ((mask >> m) & 1u) sup = Supremum(sup, static_cast<LockMode>(m));
    }
    t[mask] = sup;
  }
  return t;
}

}  // namespace lock_mode_internal

/// kSupremumOfMask[mask] = supremum of every mode in the bitset `mask`
/// (kNL for the empty set). Turns "recompute the aggregate granted mode"
/// into a single table lookup.
inline constexpr std::array<LockMode, kAllModesMask + 1> kSupremumOfMask =
    lock_mode_internal::MakeSupremumOfMask();

// Compile-time sanity: the lattice agrees with compatibility/covers on the
// properties the lock manager relies on.
namespace lock_mode_internal {
constexpr bool TablesConsistent() {
  for (size_t a = 0; a < kNumLockModes; ++a) {
    const auto ma = static_cast<LockMode>(a);
    if (!Covers(ma, ma)) return false;
    for (size_t b = 0; b < kNumLockModes; ++b) {
      const auto mb = static_cast<LockMode>(b);
      // Supremum commutes and covers both operands.
      if (Supremum(ma, mb) != Supremum(mb, ma)) return false;
      if (!Covers(Supremum(ma, mb), ma)) return false;
      // The mask-based test agrees with the scalar matrix.
      if (Compatible(ma, mb) != CompatibleWithAll(ModeBit(ma), mb)) {
        return false;
      }
    }
    // Singleton masks reduce to the mode itself.
    if (kSupremumOfMask[ModeBit(ma)] != ma) return false;
  }
  return kSupremumOfMask[0] == LockMode::kNL;
}
static_assert(TablesConsistent(), "lock-mode tables are inconsistent");
}  // namespace lock_mode_internal

/// Intention mode ancestors must hold before a child can be locked in `m`:
/// IS for read-class children, IX for anything that may write.
LockMode IntentionFor(LockMode m);

/// True iff `held` on a parent implicitly grants `wanted` on every child,
/// making the child lock unnecessary (e.g. parent S implies child S).
bool ParentCoversChild(LockMode held, LockMode wanted);

/// SLI criterion 3: modes that may pass between transactions. The paper
/// names S, IS and IX — intent-exclusive qualifies because it is compatible
/// with other intent modes and never by itself licenses data access.
inline bool IsHeritableMode(LockMode m) {
  return m == LockMode::kIS || m == LockMode::kIX || m == LockMode::kS;
}

}  // namespace slidb
