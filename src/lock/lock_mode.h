// Hierarchical lock modes (Gray & Reuter) with the asymmetric compatibility
// matrix, the supremum ("combine") lattice used for upgrades, and the
// shared-class predicate SLI uses for its eligibility criterion 3.
#pragma once

#include <cstddef>
#include <cstdint>

namespace slidb {

/// Database lock modes. kU (update) blocks new readers asymmetrically to
/// prevent upgrade starvation, per the classic treatment.
enum class LockMode : uint8_t {
  kNL = 0,  ///< no lock (placeholder)
  kIS,      ///< intention share
  kIX,      ///< intention exclusive
  kS,       ///< share
  kSIX,     ///< share + intention exclusive
  kU,       ///< update (read with intent to upgrade)
  kX,       ///< exclusive
};

inline constexpr size_t kNumLockModes = 7;

const char* LockModeName(LockMode m);

/// True iff a new request for `requested` can be granted while `held` is
/// granted to a *different* transaction. Asymmetric in U: a held U blocks
/// new S/U requests, but a held S admits a new U.
bool Compatible(LockMode held, LockMode requested);

/// Least mode that covers both `a` and `b`; used for upgrades
/// (e.g. sup(S, IX) = SIX, sup(U, IX) = X).
LockMode Supremum(LockMode a, LockMode b);

/// True iff holding `held` makes a separate request for `wanted` redundant
/// (e.g. S covers IS and S; X covers everything).
bool Covers(LockMode held, LockMode wanted);

/// Intention mode ancestors must hold before a child can be locked in `m`:
/// IS for read-class children, IX for anything that may write.
LockMode IntentionFor(LockMode m);

/// True iff `held` on a parent implicitly grants `wanted` on every child,
/// making the child lock unnecessary (e.g. parent S implies child S).
bool ParentCoversChild(LockMode held, LockMode wanted);

/// SLI criterion 3: modes that may pass between transactions. The paper
/// names S, IS and IX — intent-exclusive qualifies because it is compatible
/// with other intent modes and never by itself licenses data access.
inline bool IsHeritableMode(LockMode m) {
  return m == LockMode::kIS || m == LockMode::kIX || m == LockMode::kS;
}

}  // namespace slidb
