#include "src/lock/lock_table.h"

#include <bit>

namespace slidb {

namespace {

/// Scrub a freelist head back to fresh-construction state. Runs under the
/// bucket latch with no pins outstanding, so plain stores are safe. The
/// bucket_waiters pointer is left as-is: freelists are per-bucket, so it
/// already points at the right aggregate (and contributed zero when the
/// head was retired).
void ResetHead(LockHead* h, const LockId& id, uint64_t retired_dep) {
  h->id = id;
  for (size_t i = 0; i < kNumLockModes; ++i) h->granted_counts[i] = 0;
  h->granted_mask = 0;
  h->queue_len = 0;
  h->waiter_count.store(0, std::memory_order_relaxed);
  h->waiter_hint = nullptr;
  h->converting_count = 0;
  h->inherited_hint.store(0, std::memory_order_relaxed);
  h->hot.Clear();
  h->q_head = h->q_tail = nullptr;
  h->pin_count.store(1, std::memory_order_relaxed);
  h->bucket_next = nullptr;
  // Not scrubbed to zero: a fresh identity must inherit the bucket's
  // retired dependency horizon (see Bucket::retired_dep).
  h->last_commit_lsn.store(retired_dep, std::memory_order_relaxed);
}

}  // namespace

LockTable::LockTable(size_t num_buckets) {
  if (num_buckets < 2) num_buckets = 2;
  num_buckets = std::bit_ceil(num_buckets);
  buckets_ = std::make_unique<CacheAligned<Bucket>[]>(num_buckets);
  bucket_mask_ = num_buckets - 1;
}

LockTable::~LockTable() {
  for (size_t i = 0; i <= bucket_mask_; ++i) {
    for (LockHead* h = buckets_[i]->chain; h != nullptr;) {
      LockHead* next = h->bucket_next;
      delete h;
      h = next;
    }
    for (LockHead* h = buckets_[i]->free_list; h != nullptr;) {
      LockHead* next = h->bucket_next;
      delete h;
      h = next;
    }
  }
}

LockHead* LockTable::FindOrCreate(const LockId& id) {
  Bucket& bucket = BucketFor(id);
  SpinLatchGuard g(bucket.latch);
  for (LockHead* h = bucket.chain; h != nullptr; h = h->bucket_next) {
    if (h->id == id) {
      h->pin_count.fetch_add(1, std::memory_order_acq_rel);
      return h;
    }
  }
  LockHead* h;
  if (bucket.free_list != nullptr) {
    h = bucket.free_list;
    bucket.free_list = h->bucket_next;
    --bucket.free_count;
    ResetHead(h, id, bucket.retired_dep);
  } else {
    h = new LockHead();
    h->id = id;
    h->pin_count.store(1, std::memory_order_relaxed);
    h->bucket_waiters = &bucket.waiters;
    h->last_commit_lsn.store(bucket.retired_dep, std::memory_order_relaxed);
  }
  h->bucket_next = bucket.chain;
  bucket.chain = h;
  return h;
}

LockHead* LockTable::Find(const LockId& id) {
  Bucket& bucket = BucketFor(id);
  SpinLatchGuard g(bucket.latch);
  for (LockHead* h = bucket.chain; h != nullptr; h = h->bucket_next) {
    if (h->id == id) {
      h->pin_count.fetch_add(1, std::memory_order_acq_rel);
      return h;
    }
  }
  return nullptr;
}

void LockTable::TryReclaim(const LockId& id) {
  Bucket& bucket = BucketFor(id);
  SpinLatchGuard g(bucket.latch);
  LockHead* prev = nullptr;
  for (LockHead* h = bucket.chain; h != nullptr; prev = h, h = h->bucket_next) {
    if (!(h->id == id)) continue;
    // The bucket latch blocks new pins (FindOrCreate), so a zero pin count
    // is stable here, and an empty queue with no pins means no references.
    if (h->pin_count.load(std::memory_order_acquire) != 0) return;
    {
      SpinLatchGuard hg(h->latch);
      if (!h->QueueEmpty()) return;
    }
    if (prev != nullptr) {
      prev->bucket_next = h->bucket_next;
    } else {
      bucket.chain = h->bucket_next;
    }
    // Fold the dying identity's durability horizon into the bucket before
    // the head (or its stamp) is recycled. Stable read: the queue is empty
    // and unpinned, so no stamping can race.
    const uint64_t stamp = h->last_commit_lsn.load(std::memory_order_relaxed);
    if (stamp > bucket.retired_dep) bucket.retired_dep = stamp;
    if (bucket.free_count < kMaxFreePerBucket) {
      h->bucket_next = bucket.free_list;
      bucket.free_list = h;
      ++bucket.free_count;
    } else {
      delete h;
    }
    return;
  }
}

size_t LockTable::CountHeads() {
  size_t count = 0;
  for (size_t i = 0; i <= bucket_mask_; ++i) {
    SpinLatchGuard g(buckets_[i]->latch);
    for (LockHead* h = buckets_[i]->chain; h != nullptr;
         h = h->bucket_next) {
      ++count;
    }
  }
  return count;
}

size_t LockTable::FreeListSize() {
  size_t count = 0;
  for (size_t i = 0; i <= bucket_mask_; ++i) {
    SpinLatchGuard g(buckets_[i]->latch);
    count += buckets_[i]->free_count;
  }
  return count;
}

}  // namespace slidb
