// LockClient: the per-transaction view of the lock manager — the private
// list of held requests, the lock cache, and the blocking/wake machinery
// used when a request must wait. The transaction manager embeds one
// LockClient in every Transaction.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "src/lock/lock_cache.h"
#include "src/lock/lock_request.h"
#include "src/stats/counters.h"

namespace slidb {

/// Per-transaction lock state. Reset between transactions; owned by exactly
/// one agent thread at a time.
///
/// Lifetime: the deadlock detector may hold a LockClient pointer briefly
/// after a wait resolves, so clients must outlive the LockManager's last
/// detection pass over them — in practice, keep clients alive as long as the
/// LockManager (agents reuse one client for the whole run).
class LockClient {
 public:
  LockClient() = default;
  LockClient(const LockClient&) = delete;
  LockClient& operator=(const LockClient&) = delete;

  /// Prepare for a new transaction. `txn_id` orders transactions for
  /// deadlock victim selection (younger = larger id = preferred victim).
  void StartTxn(uint64_t txn_id, uint32_t agent_id) {
    txn_id_ = txn_id;
    agent_id_ = agent_id;
    held_head_ = nullptr;
    cache_.Clear();
    dep_lsn_ = 0;
    deadline_ns_ = 0;
    deadlock_victim_.store(false, std::memory_order_relaxed);
    waiting_on_.store(nullptr, std::memory_order_relaxed);
  }

  /// Absolute response deadline (NowNanos clock; 0 = none) for the current
  /// transaction. Set once by TransactionManager::Begin; every blocking
  /// point reads it: lock waits cap their budget at
  /// min(lock_timeout, remaining deadline), the durable-commit wait parks a
  /// DeferredAck instead of blocking past it, and Commit refuses to enter
  /// once it has passed.
  void SetDeadline(uint64_t deadline_ns) { deadline_ns_ = deadline_ns; }
  uint64_t deadline_ns() const { return deadline_ns_; }

  /// Record a durability dependency: the acquired head was last written by
  /// a transaction whose commit record ends at `lsn` (0 = none). Commit
  /// externalizes only once durable >= dep_lsn(), so a caller can never
  /// observe state an early-released, crash-lost writer produced — by
  /// blocking (default) or by deferring the acknowledgement
  /// (TxnOptions::speculative_reads). Each horizon raise is the capture
  /// point of one speculative read: the data may be read and used right
  /// now, ahead of its writer's durability.
  void NoteDep(uint64_t lsn) {
    if (lsn > dep_lsn_) {
      dep_lsn_ = lsn;
      CountEvent(Counter::kTxnSpecReads);
    }
  }
  uint64_t dep_lsn() const { return dep_lsn_; }

  uint64_t txn_id() const { return txn_id_; }
  uint32_t agent_id() const { return agent_id_; }

  LockCache& cache() { return cache_; }

  /// Request allocator. Defaults to a private pool; agents that use SLI
  /// share their AgentSliState's pool so inherited requests can migrate
  /// between consecutive transactions of the same agent.
  RequestPool* pool() { return pool_; }
  void SetPool(RequestPool* pool) { pool_ = pool != nullptr ? pool : &own_pool_; }

  /// Private list of held (granted) requests, newest first — the order the
  /// release phase walks at commit (paper §3.2).
  LockRequest* held_head() const { return held_head_; }
  void PushHeld(LockRequest* r) {
    r->txn_next = held_head_;
    held_head_ = r;
  }
  /// Detach and return the whole private list (release-phase consumption).
  LockRequest* TakeHeld() {
    LockRequest* h = held_head_;
    held_head_ = nullptr;
    return h;
  }

  // ---- blocking machinery ----

  std::mutex& wait_mutex() { return wait_mu_; }
  std::condition_variable& wait_cv() { return wait_cv_; }

  /// Request this client is currently blocked on (deadlock detector input).
  std::atomic<LockRequest*>& waiting_on() { return waiting_on_; }

  std::atomic<bool>& deadlock_victim() { return deadlock_victim_; }

  /// True while the owning thread is inside its WaitForGrant window (set
  /// under wait_mu_ before the first predicate check, cleared before the
  /// window exits). Lets Wake() skip the mutex when nobody can be parked.
  void BeginWaitWindow() {
    waiting_.store(true, std::memory_order_relaxed);
    // Pairs with the fence in Wake(): either the waker sees waiting_ set
    // (and takes the mutex), or our predicate check below the fence sees
    // the waker's status store — the wakeup cannot be lost.
    std::atomic_thread_fence(std::memory_order_seq_cst);
  }
  void EndWaitWindow() { waiting_.store(false, std::memory_order_relaxed); }

  /// Wake a blocked client (called by lock releasers and the detector).
  /// Fast path: when no thread can be parked (the waiting flag is unset),
  /// skip the wait mutex entirely — the common release-with-no-waiters
  /// case stays futex-style lock-free.
  void Wake() {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (!waiting_.load(std::memory_order_relaxed)) {
      CountEvent(Counter::kLockWakeFast);
      return;
    }
    // The lock ensures the waiter either has not yet checked its predicate
    // or is inside wait(); either way the notification is not lost.
    std::lock_guard<std::mutex> g(wait_mu_);
    wait_cv_.notify_all();
  }

 private:
  uint64_t txn_id_ = 0;
  uint64_t dep_lsn_ = 0;  ///< max durability dependency (single-threaded)
  uint64_t deadline_ns_ = 0;  ///< absolute txn deadline; 0 = none
  uint32_t agent_id_ = 0;
  LockRequest* held_head_ = nullptr;
  LockCache cache_;
  RequestPool own_pool_;
  RequestPool* pool_ = &own_pool_;

  std::mutex wait_mu_;
  std::condition_variable wait_cv_;
  std::atomic<bool> waiting_{false};
  std::atomic<LockRequest*> waiting_on_{nullptr};
  std::atomic<bool> deadlock_victim_{false};
};

}  // namespace slidb
