#include "src/lock/lock_manager.h"

#include <cassert>
#include <unordered_map>
#include <unordered_set>

#include "src/stats/counters.h"
#include "src/stats/profiler.h"
#include "src/util/time_util.h"

// Debug-mode invariant: the incremental grant summary must equal a full
// queue recompute after every mutation (head latch held at the check site).
#ifndef NDEBUG
#define SLIDB_DCHECK_SUMMARY(h) assert((h)->SummaryMatchesQueue())
#else
#define SLIDB_DCHECK_SUMMARY(h) ((void)0)
#endif

namespace slidb {

namespace {

/// Maximum hierarchy depth (database → table → page → row).
constexpr int kMaxDepth = 8;

/// Modes whose holder may have written data this lock protects (directly,
/// or via children under an intent mode). Only these stamp the durability
/// horizon at release — pure read modes (S/IS) protect nothing a reader
/// could lose in a crash.
bool IsWriteClassMode(LockMode m) {
  return m == LockMode::kX || m == LockMode::kSIX || m == LockMode::kU ||
         m == LockMode::kIX;
}

}  // namespace

void WakeBatch::Flush() {
  for (size_t i = 0; i < n_; ++i) inline_[i]->Wake();
  n_ = 0;
  for (LockClient* c : overflow_) c->Wake();
  overflow_.clear();
}

void LockManager::SimulateQueueWork(LockHead* h) {
  if (options_.sim_queue_work_ns == 0) return;
  // Per-entry cost (see LockManagerOptions::sim_queue_work_ns), scaled by
  // the tracked queue length so the model costs what the Figure 3 traversal
  // would without actually walking inside the latch.
  const uint64_t entries = h->queue_len > 0 ? h->queue_len : 1;
  SpinForNanos(options_.sim_queue_work_ns * entries);
}

LockManager::LockManager(LockManagerOptions options)
    : options_(options), table_(options.num_buckets) {
  if (options_.enable_deadlock_detector) {
    detector_ = std::thread([this] { DetectorLoop(); });
  }
}

LockManager::~LockManager() {
  {
    std::lock_guard<std::mutex> g(detector_mu_);
    stop_detector_ = true;
  }
  detector_cv_.notify_all();
  if (detector_.joinable()) detector_.join();
}

Status LockManager::Lock(LockClient* c, const LockId& id, LockMode mode) {
  ScopedComponent comp(Component::kLockManager);
  return LockInternal(c, id, mode, 0);
}

Status LockManager::LockInternal(LockClient* c, const LockId& id,
                                 LockMode mode, int depth) {
  if (depth > kMaxDepth) return Status::InvalidArgument("lock depth");
  if (mode == LockMode::kNL) return Status::OK();

  if (LockRequest* r = c->cache().Find(id)) {
    const RequestStatus s = r->status.load(std::memory_order_acquire);
    if (s == RequestStatus::kGranted || s == RequestStatus::kConverting) {
      if (Covers(r->mode, mode)) {
        CountEvent(Counter::kLockCacheHits);
        return Status::OK();
      }
      SLIDB_RETURN_NOT_OK(EnsureParents(c, id, mode, depth));
      return Upgrade(c, r, mode);
    }
    if (s == RequestStatus::kInherited) {
      // SLI reclaim fast path. Parents first: they are normally inherited
      // too, and taking them first preserves the hierarchical protocol even
      // when this request's parent was invalidated (§4.3 orphan rule).
      SLIDB_RETURN_NOT_OK(EnsureParents(c, id, mode, depth));
      RequestStatus expect = RequestStatus::kInherited;
      if (r->status.compare_exchange_strong(expect, RequestStatus::kGranted,
                                            std::memory_order_acq_rel)) {
        r->head->inherited_hint.fetch_sub(1, std::memory_order_acq_rel);
        r->client.store(c, std::memory_order_release);
        c->PushHeld(r);
        CountEvent(Counter::kSliReclaimed);
        ClassifyAcquisition(id, mode,
                            r->head->hot.IsHot(options_.hot_min_contended));
        if (!Covers(r->mode, mode)) {
          CountEvent(Counter::kSliUpgradeAfterReclaim);
          return Upgrade(c, r, mode);
        }
        return Status::OK();
      }
      // Lost the race to an invalidator; fall through to the slow path.
      c->cache().Erase(id);
    }
    if (s == RequestStatus::kInvalid) {
      c->cache().Erase(id);
    }
  }

  SLIDB_RETURN_NOT_OK(EnsureParents(c, id, mode, depth));

  // A coarse lock on any ancestor can make this request implicit (§3.2:
  // "if an appropriate coarse-grained lock is found the request can be
  // granted immediately"). Walk the whole chain: a table-S covers a row
  // even when the intermediate page lock was itself skipped.
  LockId anc = id;
  while (anc.HasParent()) {
    anc = anc.Parent();
    if (LockRequest* pr = c->cache().Find(anc)) {
      const RequestStatus ps = pr->status.load(std::memory_order_acquire);
      if ((ps == RequestStatus::kGranted ||
           ps == RequestStatus::kConverting) &&
          ParentCoversChild(pr->mode, mode)) {
        CountEvent(Counter::kLockCacheHits);
        return Status::OK();
      }
    }
  }

  return AcquireNew(c, id, mode);
}

Status LockManager::EnsureParents(LockClient* c, const LockId& id,
                                  LockMode mode, int depth) {
  if (!id.HasParent()) return Status::OK();
  return LockInternal(c, id.Parent(), IntentionFor(mode), depth + 1);
}

bool LockManager::CanGrant(LockHead* h, const LockRequest* self,
                           LockMode mode) {
  // O(1) fast path: one AND against the cached held-mode bitset (minus our
  // own contribution when re-evaluating an existing request).
  const uint8_t others = h->MaskExcluding(self);
  if (CompatibleWithAll(others, mode)) {
    CountEvent(Counter::kCanGrantFast);
    return true;
  }
  // Conflict. If no inherited request can be in the queue there is nothing
  // to invalidate and the answer is a definitive O(1) "no". The hint is a
  // conservative overestimate (incremented before a request enters
  // kInherited, decremented after it leaves), so zero is proof.
  if (h->inherited_hint.load(std::memory_order_acquire) == 0) {
    CountEvent(Counter::kCanGrantFast);
    return false;
  }
  CountEvent(Counter::kCanGrantSlow);
  return CanGrantSlow(h, self, mode);
}

bool LockManager::CanGrantSlow(LockHead* h, const LockRequest* self,
                               LockMode mode) {
  LockRequest* r = h->q_head;
  while (r != nullptr) {
    LockRequest* next = r->q_next;
    if (r != self) {
      const RequestStatus s = r->status.load(std::memory_order_acquire);
      if (s == RequestStatus::kGranted || s == RequestStatus::kConverting) {
        if (!Compatible(r->mode, mode)) return false;
      } else if (s == RequestStatus::kInherited) {
        if (!Compatible(r->mode, mode)) {
          // Conflicting inherited request: invalidate it (paper §4.1). The
          // CAS can lose only to a concurrent reclaim, in which case the
          // request is live and blocks us.
          RequestStatus expect = RequestStatus::kInherited;
          if (r->status.compare_exchange_strong(expect, RequestStatus::kInvalid,
                                                std::memory_order_acq_rel)) {
            h->Unlink(r);
            h->SummaryRemove(r->mode);
            h->inherited_hint.fetch_sub(1, std::memory_order_acq_rel);
            table_.Unpin(h);
            CountEvent(Counter::kSliInvalidated);
            // Memory stays with the owning agent; freed at its next commit.
          } else {
            return false;
          }
        }
      }
      // kWaiting requests do not block compatibility; FIFO order is
      // enforced separately via waiter_count.
    }
    r = next;
  }
  SLIDB_DCHECK_SUMMARY(h);
  return true;
}

void LockManager::GrantWaiters(LockHead* h, WakeBatch* wakes) {
  // Phase 1: conversions, FIFO among converting requests. A conversion is
  // granted when its target mode is compatible with every other live
  // request. Conversions live inside the granted prefix, so this scan is
  // skipped entirely (O(1)) unless one is actually pending.
  if (h->converting_count > 0) {
    uint32_t remaining = h->converting_count;
    for (LockRequest* r = h->q_head; r != nullptr && remaining > 0;
         r = r->q_next) {
      const RequestStatus s = r->status.load(std::memory_order_acquire);
      if (s != RequestStatus::kConverting) continue;
      --remaining;
      if (CanGrant(h, r, r->convert_to)) {
        const LockMode was = r->mode;
        r->mode = r->convert_to;
        h->SummaryUpgrade(was, r->mode);
        r->status.store(RequestStatus::kGranted, std::memory_order_release);
        --h->converting_count;
        h->RemoveWaiter();
        if (LockClient* cl = r->client.load(std::memory_order_acquire)) {
          wakes->Add(cl);
        }
      } else {
        break;
      }
    }
  }
  // Phase 2: new requests, strict FIFO, starting at the waiter boundary —
  // the granted prefix ahead of it is never re-walked. Nodes past the hint
  // that were granted by earlier passes are skipped without resetting it.
  LockRequest* r = h->waiter_hint;
  while (r != nullptr) {
    const RequestStatus s = r->status.load(std::memory_order_acquire);
    if (s == RequestStatus::kWaiting) {
      if (!CanGrant(h, r, r->mode)) break;
      r->status.store(RequestStatus::kGranted, std::memory_order_release);
      h->SummaryAdd(r->mode);
      h->RemoveWaiter();
      if (LockClient* cl = r->client.load(std::memory_order_acquire)) {
        wakes->Add(cl);
      }
    }
    r = r->q_next;
  }
  // `r` is the first still-waiting request (FIFO stop) or nullptr.
  h->waiter_hint = r;
  SLIDB_DCHECK_SUMMARY(h);
}

Status LockManager::AcquireNew(LockClient* c, const LockId& id,
                               LockMode mode) {
  CountEvent(Counter::kLockRequests);
  LockHead* h = table_.FindOrCreate(id);  // pin transfers to the request
  const bool contended = h->latch.Acquire();
  h->hot.Record(contended);
  SimulateQueueWork(h);
  ClassifyAcquisition(id, mode, h->hot.IsHot(options_.hot_min_contended));

  LockRequest* req = c->pool()->Alloc();
  req->head = h;
  req->mode = mode;
  req->client.store(c, std::memory_order_release);

  const bool grant_now =
      h->waiter_count.load(std::memory_order_relaxed) == 0 &&
      CanGrant(h, nullptr, mode);
  if (grant_now) {
    req->status.store(RequestStatus::kGranted, std::memory_order_release);
    h->Append(req);
    h->SummaryAdd(mode);
    SLIDB_DCHECK_SUMMARY(h);
    c->NoteDep(h->last_commit_lsn.load(std::memory_order_relaxed));
    h->latch.Release();
    c->cache().Insert(id, req);
    c->PushHeld(req);
    return Status::OK();
  }

  // Wait-depth restriction (Thomasian): on a hot head, refuse to deepen the
  // convoy past the configured limit — cancel now, while the transaction has
  // invested nothing in this queue, rather than time out holding a slot.
  if (options_.hot_wait_depth != 0 &&
      h->waiter_count.load(std::memory_order_relaxed) >=
          options_.hot_wait_depth &&
      h->hot.IsHot(options_.hot_min_contended)) {
    h->latch.Release();
    table_.Unpin(h);  // the request never joined the queue; drop its pin
    c->pool()->Free(req);
    CountEvent(Counter::kLockWaitDepthCancels);
    return Status::Overloaded("hot head at wait-depth limit");
  }

  CountEvent(Counter::kLockWaits);
  req->status.store(RequestStatus::kWaiting, std::memory_order_release);
  h->Append(req);
  if (h->waiter_hint == nullptr) h->waiter_hint = req;
  h->AddWaiter();
  c->waiting_on().store(req, std::memory_order_release);
  SLIDB_DCHECK_SUMMARY(h);
  h->latch.Release();

  bool granted_anyway = false;
  const Status st = WaitForGrant(c, req, &granted_anyway);
  c->waiting_on().store(nullptr, std::memory_order_release);
  if (st.ok() || granted_anyway) {
    // Ordered by the granter's status release-store + our acquire load in
    // WaitForGrant; stamps stored after our grant are not dependencies
    // (the conflicting holder could not have released before us).
    c->NoteDep(req->head->last_commit_lsn.load(std::memory_order_acquire));
    c->cache().Insert(id, req);
    c->PushHeld(req);
  }
  return st;
}

Status LockManager::Upgrade(LockClient* c, LockRequest* r, LockMode mode) {
  LockHead* h = r->head;
  const LockMode target = Supremum(r->mode, mode);
  if (target == r->mode) return Status::OK();
  CountEvent(Counter::kLockUpgrades);

  const bool contended = h->latch.Acquire();
  h->hot.Record(contended);
  SimulateQueueWork(h);
  if (CanGrant(h, r, target)) {
    const LockMode was = r->mode;
    r->mode = target;
    h->SummaryUpgrade(was, target);
    SLIDB_DCHECK_SUMMARY(h);
    c->NoteDep(h->last_commit_lsn.load(std::memory_order_relaxed));
    h->latch.Release();
    return Status::OK();
  }

  // Same wait-depth rule for upgrades; the already-granted request keeps
  // its old mode and is released by the caller's abort.
  if (options_.hot_wait_depth != 0 &&
      h->waiter_count.load(std::memory_order_relaxed) >=
          options_.hot_wait_depth &&
      h->hot.IsHot(options_.hot_min_contended)) {
    h->latch.Release();
    CountEvent(Counter::kLockWaitDepthCancels);
    return Status::Overloaded("hot head at wait-depth limit (upgrade)");
  }

  CountEvent(Counter::kLockWaits);
  r->convert_to = target;
  r->status.store(RequestStatus::kConverting, std::memory_order_release);
  ++h->converting_count;
  h->AddWaiter();
  c->waiting_on().store(r, std::memory_order_release);
  h->latch.Release();

  bool granted_anyway = false;
  const Status st = WaitForGrant(c, r, &granted_anyway);
  c->waiting_on().store(nullptr, std::memory_order_release);
  if (st.ok() || granted_anyway) {
    c->NoteDep(h->last_commit_lsn.load(std::memory_order_acquire));
  }
  return st;
}

Status LockManager::WaitForGrant(LockClient* c, LockRequest* r,
                                 bool* granted_anyway) {
  uint64_t deadline_us = NowMicros() + options_.lock_timeout_us;
  // The wait budget is min(lock_timeout, remaining txn deadline): a
  // transaction past its response budget must stop occupying queue slots
  // promptly, not after the lost-wakeup backstop.
  bool deadline_capped = false;
  if (const uint64_t txn_deadline_ns = c->deadline_ns();
      txn_deadline_ns != 0 && txn_deadline_ns / 1000 < deadline_us) {
    deadline_us = txn_deadline_ns / 1000;
    deadline_capped = true;
  }
  const uint64_t block_start = RdCycles();
  bool timed_out = false;

  {
    std::unique_lock<std::mutex> lk(c->wait_mutex());
    c->BeginWaitWindow();
    for (;;) {
      const RequestStatus s = r->status.load(std::memory_order_acquire);
      if (s == RequestStatus::kGranted) break;
      if (c->deadlock_victim().load(std::memory_order_acquire)) break;
      const uint64_t now_us = NowMicros();
      if (now_us >= deadline_us) {
        timed_out = true;
        break;
      }
      c->wait_cv().wait_for(lk,
                            std::chrono::microseconds(deadline_us - now_us));
    }
    c->EndWaitWindow();
  }

  if (ThreadProfile* p = ThreadProfile::Current()) {
    p->AttributeBlocked(block_start, RdCycles());
  }

  const bool victim = c->deadlock_victim().load(std::memory_order_acquire);
  if (!victim && !timed_out) return Status::OK();

  // Victim or timeout: remove / revert our request under the head latch.
  LockHead* h = r->head;
  WakeBatch wakes;
  const bool contended = h->latch.Acquire();
  h->hot.Record(contended);
  const RequestStatus s = r->status.load(std::memory_order_acquire);
  if (s == RequestStatus::kGranted) {
    // Granted concurrently with the abort decision. Keep the lock; the
    // caller's abort path will release it with everything else.
    h->latch.Release();
    if (victim) {
      *granted_anyway = true;
      c->deadlock_victim().store(false, std::memory_order_release);
      CountEvent(Counter::kDeadlocks);
      return Status::Deadlock();
    }
    return Status::OK();  // timed out but granted: treat as success
  }
  if (s == RequestStatus::kWaiting) {
    const LockId id = h->id;  // copy under latch: the unpin below can drop
                              // the last pin, letting the head be reclaimed
                              // and reused for a different lock
    h->Unlink(r);
    h->RemoveWaiter();
    GrantWaiters(h, &wakes);  // our departure may unblock FIFO successors
    h->latch.Release();
    wakes.Flush();
    table_.Unpin(h);
    c->cache().Erase(id);
    c->pool()->Free(r);
  } else {
    // kConverting: revert to the previously granted mode (the summary still
    // counts the held mode, so it is unchanged).
    r->convert_to = r->mode;
    r->status.store(RequestStatus::kGranted, std::memory_order_release);
    --h->converting_count;
    h->RemoveWaiter();
    GrantWaiters(h, &wakes);
    h->latch.Release();
    wakes.Flush();
  }

  if (victim) {
    c->deadlock_victim().store(false, std::memory_order_release);
    CountEvent(Counter::kDeadlocks);
    return Status::Deadlock();
  }
  if (deadline_capped) {
    CountEvent(Counter::kLockDeadlineCancels);
    return Status::TimedOut("txn deadline during lock wait");
  }
  CountEvent(Counter::kLockTimeouts);
  return Status::TimedOut();
}

void LockManager::ReleaseOne(LockClient* c, LockRequest* r, RequestPool* pool,
                             WakeBatch* wakes, std::vector<LockId>* reclaims,
                             uint64_t commit_lsn) {
  LockHead* h = r->head;
  const LockId id = h->id;  // copy: head may be reclaimed after unpin
  const bool contended = h->latch.Acquire();
  h->hot.Record(contended);

  const RequestStatus s = r->status.load(std::memory_order_acquire);
  if (s == RequestStatus::kInvalid) {
    // Invalidated (and unlinked/unpinned) while we waited for the latch.
    h->latch.Release();
    pool->Free(r);
    return;
  }
  SimulateQueueWork(h);
  if (commit_lsn != 0 && IsWriteClassMode(r->mode)) {
    // The next acquirer of this head must not externalize our data before
    // this commit record is durable (early lock release).
    h->StampCommitLsn(commit_lsn);
  }
  h->Unlink(r);
  h->SummaryRemove(r->mode);
  if (s == RequestStatus::kInherited) {
    // Discarding an unused inherited request counts as it leaving
    // kInherited.
    h->inherited_hint.fetch_sub(1, std::memory_order_acq_rel);
  }
  // Only walk the queue when somebody is actually waiting; the common
  // uncontended release is a pure O(1) summary update.
  if (h->waiter_count.load(std::memory_order_relaxed) > 0) {
    GrantWaiters(h, wakes);
  } else {
    SLIDB_DCHECK_SUMMARY(h);
  }
  const bool empty = h->QueueEmpty();
  h->latch.Release();
  wakes->Flush();
  table_.Unpin(h);
  pool->Free(r);
  CountEvent(Counter::kLockReleases);
  // Only row heads are reclaimed eagerly: high-level heads must persist so
  // their hot-lock history survives between transactions (criterion 2), and
  // there are only O(tables + touched pages) of them.
  if (empty &&
      (id.level == LockLevel::kRow || !options_.retain_high_level_heads)) {
    if (reclaims != nullptr) {
      reclaims->push_back(id);
    } else {
      table_.TryReclaim(id);
    }
  }
  (void)c;
}

bool LockManager::EligibleForInheritance(
    LockClient* c, LockRequest* r,
    std::vector<std::pair<LockRequest*, bool>>* memo, int depth) {
  if (depth > kMaxDepth) return false;
  for (const auto& [req, verdict] : *memo) {
    if (req == r) return verdict;
  }

  bool ok = true;
  LockHead* h = r->head;
  // Criterion 3 (correctness, not ablatable): shared-class mode only.
  if (!IsHeritableMode(r->mode)) ok = false;
  // Criterion 1: page level or higher.
  if (ok && options_.sli_require_high_level &&
      h->id.level == LockLevel::kRow) {
    ok = false;
  }
  // Criterion 2: the lock is hot. Adaptive mode swaps the stateless window
  // test for the per-head enter/exit state machine; transitions are counted
  // so the benches can watch the policy switch per head.
  if (ok && options_.sli_require_hot) {
    if (options_.sli_adaptive) {
      const bool was = h->hot.adaptive_hot();
      const bool now = h->hot.IsHotAdaptive(options_.hot_min_contended,
                                            options_.hot_exit_contended);
      if (now != was) {
        CountEvent(now ? Counter::kSliAdaptiveEnable
                       : Counter::kSliAdaptiveCooldown);
      }
      if (!now) ok = false;
    } else if (!h->hot.IsHot(options_.hot_min_contended)) {
      ok = false;
    }
  }
  // Criterion 4: no other transaction is waiting.
  if (ok && options_.sli_require_no_waiters &&
      h->waiter_count.load(std::memory_order_acquire) != 0) {
    ok = false;
  }
  // Criterion 5: the same conditions hold for the parent, if any.
  if (ok && options_.sli_require_parent && h->id.HasParent()) {
    LockRequest* pr = c->cache().Find(h->id.Parent());
    if (pr == nullptr ||
        pr->status.load(std::memory_order_acquire) != RequestStatus::kGranted) {
      ok = false;
    } else {
      ok = EligibleForInheritance(c, pr, memo, depth + 1);
    }
  }

  memo->emplace_back(r, ok);
  return ok;
}

void LockManager::ReleaseAll(LockClient* c, AgentSliState* sli,
                             bool allow_inherit, uint64_t commit_lsn) {
  ScopedComponent comp(Component::kLockManager);
  const bool sli_active = allow_inherit && options_.enable_sli && sli != nullptr;

  // Each head latch window shrinks to a single summary update: wakeups are
  // collected per release and signalled right after that head's latch
  // drops (never under it), and row-head reclaims are deferred into one
  // bucket pass at the end instead of per release.
  WakeBatch wakes;
  std::vector<LockId> reclaims;

  // Phase 1 (SLI bookkeeping): sweep the agent's inheritance list — free
  // invalidated requests, discard (or keep, with hysteresis) inherited
  // requests this transaction never used. Reclaimed ones moved to the
  // private list and are handled in phase 2. Attributed to the SLI
  // component: "locks which are inherited but never used must still be
  // released, and that overhead counts toward SLI, not the lock manager."
  if (sli != nullptr) {
    ScopedComponent sli_comp(Component::kSli);
    const bool sli_enabled = options_.enable_sli;
    LockRequest* r = sli->TakeInherited();
    while (r != nullptr) {
      LockRequest* next = r->agent_next;
      r->agent_next = nullptr;
      const RequestStatus s = r->status.load(std::memory_order_acquire);
      if (s == RequestStatus::kInvalid) {
        sli->pool().Free(r);
      } else if (s == RequestStatus::kInherited) {
        if (sli_enabled && !allow_inherit) {
          // Abort path: the transaction's failure says nothing about the
          // speculation; keep it for the agent's next transaction. (TM1-
          // style workloads abort most transactions by design.)
          sli->PushInherited(r);
        } else if (sli_enabled &&
                   r->sli_miss_count < options_.sli_hysteresis) {
          ++r->sli_miss_count;
          sli->PushInherited(r);  // §4.4 option 2: momentum
        } else {
          // Take the request back to kGranted before touching its head:
          // while it stays kInherited a concurrent conflicter can
          // invalidate it, unlinking it and dropping the pin that keeps
          // the head alive — dereferencing r->head would then race with
          // head reclaim/reuse. Winning the CAS makes us the owner again
          // (nobody else transitions out of kGranted), so the linked
          // request's pin safely carries ReleaseOne.
          RequestStatus expect = RequestStatus::kInherited;
          if (r->status.compare_exchange_strong(
                  expect, RequestStatus::kGranted,
                  std::memory_order_acq_rel)) {
            r->head->inherited_hint.fetch_sub(1, std::memory_order_acq_rel);
            CountEvent(Counter::kSliDiscarded);
            // commit_lsn = 0: this transaction never used the inherited
            // lock, so its commit is no dependency for later acquirers —
            // the correct horizon was stamped when the request was
            // inherited by its actual writer.
            ReleaseOne(c, r, &sli->pool(), &wakes, &reclaims, 0);
          } else {
            // An invalidator won the race; it already unlinked and
            // unpinned, so only the memory remains to reclaim.
            sli->pool().Free(r);
          }
        }
      }
      // kGranted: reclaimed by this transaction; lives in the private list.
      r = next;
    }
  }

  // Phase 2: walk the private list newest-first (paper §3.2) deciding
  // inherit-vs-release per request.
  std::vector<std::pair<LockRequest*, bool>> memo;
  RequestPool* pool = c->pool();
  LockRequest* r = c->TakeHeld();
  while (r != nullptr) {
    LockRequest* next = r->txn_next;
    r->txn_next = nullptr;

    bool inherit = false;
    // Cheap rejections first, keeping row locks (the overwhelming majority
    // in scan-heavy transactions) away from the memoized parent check.
    const bool worth_considering =
        sli_active && IsHeritableMode(r->mode) &&
        !(options_.sli_require_high_level &&
          r->head->id.level == LockLevel::kRow);
    if (worth_considering) {
      ScopedComponent sli_comp(Component::kSli);
      inherit = EligibleForInheritance(c, r, &memo, 0);
      if (inherit) CountEvent(Counter::kSliEligible);
    }

    if (inherit) {
      ScopedComponent sli_comp(Component::kSli);
      r->sli_miss_count = 0;
      if (commit_lsn != 0 && IsWriteClassMode(r->mode)) {
        // Inheritance is a logical release: a conflicting acquirer that
        // invalidates this request (e.g. table-S vs inherited IX) still
        // depends on our commit's durability. Stamp before the CAS makes
        // the request inheritable, so observers of either outcome see it.
        r->head->StampCommitLsn(commit_lsn);
      }
      r->client.store(nullptr, std::memory_order_release);
      // Raise the hint before the CAS so it can never undercount a request
      // that is already kInherited (overestimates are harmless: they just
      // send a conflicting requester down the precise slow path).
      r->head->inherited_hint.fetch_add(1, std::memory_order_acq_rel);
      RequestStatus expect = RequestStatus::kGranted;
      if (r->status.compare_exchange_strong(expect, RequestStatus::kInherited,
                                            std::memory_order_acq_rel)) {
        sli->PushInherited(r);
        CountEvent(Counter::kSliInherited);
      } else {
        // Only the owner transitions out of kGranted; cannot happen.
        r->head->inherited_hint.fetch_sub(1, std::memory_order_acq_rel);
        ReleaseOne(c, r, pool, &wakes, &reclaims, commit_lsn);
      }
    } else {
      ReleaseOne(c, r, pool, &wakes, &reclaims, commit_lsn);
    }
    r = next;
  }
  c->cache().Clear();

  for (const LockId& id : reclaims) table_.TryReclaim(id);
}

void LockManager::AdoptInherited(LockClient* c, AgentSliState* sli) {
  if (sli == nullptr) return;
  ScopedComponent sli_comp(Component::kSli);
  for (LockRequest* r = sli->inherited_head(); r != nullptr;
       r = r->agent_next) {
    if (r->status.load(std::memory_order_acquire) ==
        RequestStatus::kInherited) {
      c->cache().Insert(r->head->id, r);
    }
  }
}

void LockManager::ClassifyAcquisition(const LockId& id, LockMode mode,
                                      bool hot) {
  const bool row = id.level == LockLevel::kRow;
  const bool heritable = IsHeritableMode(mode);
  CountEvent(row ? Counter::kAcqRow : Counter::kAcqHigh);
  CountEvent(heritable ? Counter::kAcqShared : Counter::kAcqExclusive);
  if (hot) {
    CountEvent(Counter::kAcqHot);
    if (row) {
      CountEvent(Counter::kAcqHotRow);
    } else if (heritable) {
      CountEvent(Counter::kAcqHotHeritable);
    }
  }
}

size_t LockManager::RunDeadlockDetection() {
  // Snapshot the waits-for graph. Nodes are transactions (by LockClient*);
  // edges follow the queue semantics: a waiter waits on every live granted /
  // converting holder it conflicts with, plus every earlier queued waiter
  // (FIFO grant order). Conversions wait only on granted conflicts.
  struct Node {
    LockClient* client;
    uint64_t txn_id;
    std::vector<LockClient*> out;
  };
  std::unordered_map<LockClient*, Node> graph;

  struct QueueEntry {
    LockClient* client;
    RequestStatus status;
    LockMode held;
    LockMode wanted;
  };
  std::vector<QueueEntry> entries;

  // Only heads with a waiting/converting request can contribute an edge,
  // so buckets whose aggregate waiter count is zero are skipped without
  // touching any latch — an idle-table detection pass is a latch-free
  // array sweep.
  table_.ForEachHeadWithWaiters([&](LockHead* h) {
    entries.clear();
    for (LockRequest* r = h->q_head; r != nullptr; r = r->q_next) {
      const RequestStatus s = r->status.load(std::memory_order_acquire);
      LockClient* cl = r->client.load(std::memory_order_acquire);
      if (cl == nullptr) continue;  // inherited/in-limbo
      const LockMode wanted =
          s == RequestStatus::kConverting ? r->convert_to : r->mode;
      entries.push_back(QueueEntry{cl, s, r->mode, wanted});
    }
    for (size_t i = 0; i < entries.size(); ++i) {
      const QueueEntry& w = entries[i];
      if (w.status != RequestStatus::kWaiting &&
          w.status != RequestStatus::kConverting) {
        continue;
      }
      Node& node = graph.try_emplace(w.client, Node{w.client, 0, {}})
                       .first->second;
      node.txn_id = w.client->txn_id();
      for (size_t j = 0; j < entries.size(); ++j) {
        if (i == j) continue;
        const QueueEntry& o = entries[j];
        if (o.client == w.client) continue;
        bool blocks = false;
        if (o.status == RequestStatus::kGranted ||
            o.status == RequestStatus::kConverting) {
          blocks = !Compatible(o.held, w.wanted);
        } else if (o.status == RequestStatus::kWaiting &&
                   w.status == RequestStatus::kWaiting && j < i) {
          blocks = true;  // FIFO: earlier waiters are granted first
        }
        if (blocks) node.out.push_back(o.client);
      }
    }
  });

  // DFS cycle detection with three-color marking.
  std::unordered_map<LockClient*, int> color;  // 0 white, 1 grey, 2 black
  std::vector<LockClient*> stack;
  size_t victims = 0;

  auto visit = [&](LockClient* start, auto&& self) -> void {
    color[start] = 1;
    stack.push_back(start);
    auto it = graph.find(start);
    if (it != graph.end()) {
      for (LockClient* next : it->second.out) {
        const int c2 = color[next];
        if (c2 == 1) {
          // Cycle: victims = youngest transaction on the stack back to next.
          LockClient* victim = nullptr;
          uint64_t max_id = 0;
          for (auto rit = stack.rbegin(); rit != stack.rend(); ++rit) {
            if ((*rit)->txn_id() >= max_id) {
              max_id = (*rit)->txn_id();
              victim = *rit;
            }
            if (*rit == next) break;
          }
          if (victim != nullptr &&
              !victim->deadlock_victim().exchange(true)) {
            ++victims;
            victim->Wake();
          }
        } else if (c2 == 0) {
          self(next, self);
        }
      }
    }
    stack.pop_back();
    color[start] = 2;
  };

  for (auto& [client, node] : graph) {
    if (color[client] == 0) visit(client, visit);
  }
  return victims;
}

void LockManager::DetectorLoop() {
  std::unique_lock<std::mutex> lk(detector_mu_);
  while (!stop_detector_) {
    detector_cv_.wait_for(
        lk, std::chrono::microseconds(options_.deadlock_interval_us));
    if (stop_detector_) break;
    lk.unlock();
    RunDeadlockDetection();
    lk.lock();
  }
}

LockManagerStats LockManager::Stats() {
  LockManagerStats stats;
  stats.lock_heads = table_.CountHeads();
  return stats;
}

}  // namespace slidb
