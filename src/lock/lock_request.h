// Lock request objects: one per (transaction, lock) pair, linked both into
// the lock head's queue and the owning transaction's private list. The SLI
// state machine lives in the atomic `status` field:
//
//   kGranted --release(eligible)--> kInherited --reclaim CAS--> kGranted
//        |                              |
//        +--release(normal)--> freed    +--conflict/orphan CAS--> kInvalid
//                                                  (freed later by owner agent)
#pragma once

#include <atomic>
#include <cstdint>

#include "src/lock/lock_mode.h"

namespace slidb {

struct LockHead;
class LockClient;

/// Life-cycle states of a request. Only the owner agent thread transitions
/// kGranted→kInherited; reclaim (owner) and invalidation (any conflicting
/// thread holding the head latch) race on kInherited via compare-exchange.
enum class RequestStatus : uint8_t {
  kWaiting = 0,  ///< queued, not yet granted
  kConverting,   ///< granted in `mode`, waiting to upgrade to `convert_to`
  kGranted,
  kInherited,    ///< passed to the agent's next transaction, not yet claimed
  kInvalid,      ///< inheritance killed; memory awaits owner-agent GC
};

inline const char* RequestStatusName(RequestStatus s) {
  switch (s) {
    case RequestStatus::kWaiting: return "waiting";
    case RequestStatus::kConverting: return "converting";
    case RequestStatus::kGranted: return "granted";
    case RequestStatus::kInherited: return "inherited";
    case RequestStatus::kInvalid: return "invalid";
  }
  return "?";
}

/// One lock request. Allocated from the owning agent thread's RequestPool;
/// freed only by that same thread (single-owner memory discipline, which is
/// what makes the latch-free reclaim/invalidate CAS protocol safe).
struct LockRequest {
  std::atomic<RequestStatus> status{RequestStatus::kWaiting};
  LockMode mode = LockMode::kNL;        ///< granted mode
  LockMode convert_to = LockMode::kNL;  ///< target mode while kConverting
  uint8_t sli_miss_count = 0;  ///< commits survived unused (hysteresis option)

  /// Owning transaction's lock state; nullptr while the request sits in an
  /// agent's inheritance list between transactions.
  std::atomic<LockClient*> client{nullptr};

  LockHead* head = nullptr;

  // Queue links, protected by the head latch.
  LockRequest* q_next = nullptr;
  LockRequest* q_prev = nullptr;

  // Private list link (owner transaction; newest first).
  LockRequest* txn_next = nullptr;

  // Agent inheritance list link.
  LockRequest* agent_next = nullptr;

  void Reset() {
    status.store(RequestStatus::kWaiting, std::memory_order_relaxed);
    mode = LockMode::kNL;
    convert_to = LockMode::kNL;
    sli_miss_count = 0;
    client.store(nullptr, std::memory_order_relaxed);
    head = nullptr;
    q_next = q_prev = nullptr;
    txn_next = nullptr;
    agent_next = nullptr;
  }
};

/// Per-agent-thread freelist of LockRequests. Not thread-safe by design:
/// every request is allocated and freed by its owning agent thread.
class RequestPool {
 public:
  RequestPool() = default;
  ~RequestPool();

  RequestPool(const RequestPool&) = delete;
  RequestPool& operator=(const RequestPool&) = delete;

  LockRequest* Alloc() {
    if (free_ != nullptr) {
      LockRequest* r = free_;
      free_ = r->txn_next;
      r->Reset();
      ++live_;
      return r;
    }
    ++allocated_;
    ++live_;
    return new LockRequest();
  }

  void Free(LockRequest* r) {
    r->txn_next = free_;
    free_ = r;
    --live_;
  }

  size_t allocated() const { return allocated_; }
  size_t live() const { return live_; }

 private:
  LockRequest* free_ = nullptr;
  size_t allocated_ = 0;
  size_t live_ = 0;
};

}  // namespace slidb
