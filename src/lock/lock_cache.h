// Per-transaction lock cache: maps LockId → LockRequest* for every lock the
// transaction holds (plus inherited candidates adopted from the agent
// thread). A cache hit avoids the lock manager entirely — this is the SLI
// fast path (paper §4.1: "it will find the request already in its cache").
#pragma once

#include <cstdint>
#include <vector>

#include "src/lock/lock_id.h"
#include "src/lock/lock_request.h"

namespace slidb {

/// Open-addressing hash map sized for OLTP transactions (tens of locks).
/// Spills to a linear-scan overflow vector rather than rehashing so that
/// entries are stable for the duration of a transaction.
///
/// Clear() is O(1): every entry is stamped with the generation it was
/// written in, and clearing just bumps the cache's generation — stale-
/// generation slots read as empty. A long-lived agent thus pays per lock
/// touched, not kSlots per transaction.
class LockCache {
 public:
  static constexpr size_t kSlots = 256;  // power of two

  LockCache() = default;

  LockRequest* Find(const LockId& id) const {
    size_t i = id.Hash() & (kSlots - 1);
    for (size_t probes = 0; probes < kMaxProbes; ++probes) {
      const Entry& e = slots_[i];
      if (Empty(e)) return nullptr;
      if (e.id == id) return e.req;
      i = (i + 1) & (kSlots - 1);
    }
    for (const Entry& e : overflow_) {
      if (e.id == id) return e.req;
    }
    return nullptr;
  }

  void Insert(const LockId& id, LockRequest* req) {
    size_t i = id.Hash() & (kSlots - 1);
    // Remember the first tombstone on the probe path: if `id` is not
    // already present we reuse it, so probe chains shrink back after Erase
    // instead of growing monotonically over a long-lived agent's life.
    Entry* reuse = nullptr;
    for (size_t probes = 0; probes < kMaxProbes; ++probes) {
      Entry& e = slots_[i];
      if (Empty(e)) {
        Entry& dst = reuse != nullptr ? *reuse : e;
        dst.id = id;
        dst.req = req;
        dst.gen = gen_;
        return;
      }
      if (e.id == id) {
        e.req = req;
        return;
      }
      if (reuse == nullptr && e.req == kTombstone()) reuse = &e;
      i = (i + 1) & (kSlots - 1);
    }
    for (Entry& e : overflow_) {
      if (e.id == id) {
        e.req = req;
        return;
      }
    }
    if (reuse != nullptr) {
      reuse->id = id;
      reuse->req = req;
      reuse->gen = gen_;
      return;
    }
    overflow_.push_back(Entry{id, req, gen_});
  }

  /// Remove the entry for `id` (used when a reclaim attempt finds the
  /// inherited request invalidated). Tombstones via re-probe shuffle are
  /// avoided by marking the request pointer dead with a sentinel.
  void Erase(const LockId& id) {
    size_t i = id.Hash() & (kSlots - 1);
    for (size_t probes = 0; probes < kMaxProbes; ++probes) {
      Entry& e = slots_[i];
      if (Empty(e)) return;
      if (e.id == id) {
        e.req = kTombstone();
        e.id = TombstoneId();
        return;
      }
      i = (i + 1) & (kSlots - 1);
    }
    for (auto it = overflow_.begin(); it != overflow_.end(); ++it) {
      if (it->id == id) {
        overflow_.erase(it);
        return;
      }
    }
  }

  /// O(1): entries written in earlier generations read as empty.
  void Clear() {
    ++gen_;
    overflow_.clear();
  }

  // ---- introspection (tests/stats) ----

  /// Slots holding a live entry (tombstones and stale generations excluded).
  size_t LiveSlots() const {
    size_t n = 0;
    for (const Entry& e : slots_) {
      if (!Empty(e) && e.req != kTombstone()) ++n;
    }
    return n;
  }

  /// Slots holding a current-generation tombstone left behind by Erase.
  size_t TombstoneSlots() const {
    size_t n = 0;
    for (const Entry& e : slots_) {
      if (!Empty(e) && e.req == kTombstone()) ++n;
    }
    return n;
  }

  size_t OverflowSize() const { return overflow_.size(); }

  uint64_t generation() const { return gen_; }

 private:
  struct Entry {
    LockId id{};
    LockRequest* req = nullptr;
    uint64_t gen = 0;  ///< generation the entry was written in
  };

  /// A slot is empty if it was never written or was written in a cleared
  /// (earlier) generation.
  bool Empty(const Entry& e) const {
    return e.req == nullptr || e.gen != gen_;
  }

  // A tombstone keeps probe chains intact after Erase. Find() treats it as
  // a mismatch (its id was cleared); Insert() reuses the first tombstone on
  // its probe path once it has proven the key absent from the window.
  static LockRequest* kTombstone() {
    return reinterpret_cast<LockRequest*>(static_cast<uintptr_t>(1));
  }

  // An id no caller can construct (db ids are small integers), so tombstoned
  // slots never match a lookup.
  static LockId TombstoneId() {
    LockId id;
    id.db = 0xffffffffu;
    id.table = 0xffffffffu;
    return id;
  }

  static constexpr size_t kMaxProbes = 32;

  Entry slots_[kSlots];
  std::vector<Entry> overflow_;
  uint64_t gen_ = 1;  ///< entries stamped 0 (default) are always empty
};

}  // namespace slidb
