// Per-agent-thread SLI state: the list of inherited lock requests awaiting
// the agent's next transaction, plus the request pool the agent allocates
// from. Owned by exactly one agent thread; never shared.
#pragma once

#include <cstdint>

#include "src/lock/lock_request.h"

namespace slidb {

/// Speculative-lock-inheritance state for one agent thread (paper §4.1:
/// the completing transaction "moves [the request] from the transaction's
/// private list to a different private list owned by the transaction's
/// agent thread").
class AgentSliState {
 public:
  explicit AgentSliState(uint32_t agent_id = 0) : agent_id_(agent_id) {}

  AgentSliState(const AgentSliState&) = delete;
  AgentSliState& operator=(const AgentSliState&) = delete;

  uint32_t agent_id() const { return agent_id_; }
  void set_agent_id(uint32_t id) { agent_id_ = id; }

  RequestPool& pool() { return pool_; }

  LockRequest* inherited_head() const { return inherited_head_; }

  void PushInherited(LockRequest* r) {
    r->agent_next = inherited_head_;
    inherited_head_ = r;
    ++inherited_count_;
  }

  /// Detach the whole inheritance list (commit-time processing rebuilds it
  /// with the survivors).
  LockRequest* TakeInherited() {
    LockRequest* h = inherited_head_;
    inherited_head_ = nullptr;
    inherited_count_ = 0;
    return h;
  }

  size_t inherited_count() const { return inherited_count_; }

 private:
  uint32_t agent_id_;
  LockRequest* inherited_head_ = nullptr;
  size_t inherited_count_ = 0;
  RequestPool pool_;
};

}  // namespace slidb
