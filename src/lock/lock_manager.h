// The slidb lock manager: a Shore-MT-style hierarchical lock manager with
// Speculative Lock Inheritance (paper Section 4) implemented as a
// modification of the release and acquire paths.
//
// Concurrency protocol summary:
//  * Lock heads and their FIFO request queues are protected by a per-head
//    spin latch; the hash table buckets by per-bucket latches.
//  * A transaction's lock cache and private list are single-threaded.
//  * SLI transitions are CAS operations on LockRequest::status:
//      - release path (owner agent):  kGranted  → kInherited
//      - reclaim (owner agent):       kInherited → kGranted  (latch-free!)
//      - invalidation (conflicting
//        thread, head latch held):    kInherited → kInvalid  (+ unlink)
//    The CAS arbitrates the reclaim/invalidate race; request memory is only
//    ever freed by the owning agent thread, making the protocol safe without
//    hazard pointers.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "src/lock/agent_sli.h"
#include "src/lock/lock_client.h"
#include "src/lock/lock_table.h"
#include "src/util/status.h"

namespace slidb {

/// Tuning knobs. The sli_require_* flags exist for the criteria-ablation
/// experiments; defaults match the paper.
struct LockManagerOptions {
  size_t num_buckets = 1 << 14;

  /// Criterion 2 threshold: hot = at least this many of the last 16 latch
  /// acquisitions on the head were contended (paper: tunable threshold).
  uint32_t hot_min_contended = 4;

  /// Adaptive-SLI mode (criterion 2 becomes a per-head state machine):
  /// inheritance turns on for a head when its window reaches
  /// hot_min_contended and stays on until the window cools to
  /// hot_exit_contended or below. The gap between the two thresholds is the
  /// hysteresis band that stops inheritance from flapping when a head
  /// hovers near the trigger. Requires sli_require_hot; ignored otherwise.
  bool sli_adaptive = false;

  /// Adaptive exit threshold (see sli_adaptive). Must be < hot_min_contended
  /// for the hysteresis band to exist.
  uint32_t hot_exit_contended = 1;

  /// Keep page-and-higher lock heads alive when their queues drain so the
  /// hot-lock history survives between transactions. Row heads are always
  /// reclaimed eagerly (they are too numerous to retain).
  bool retain_high_level_heads = true;

  /// Extra nanoseconds of work *per queued request* performed inside each
  /// latched lock-queue operation (acquire / upgrade / release). Models the
  /// per-entry traversal and cache-miss cost that makes "the effort
  /// required to grant or release a lock grow with the number of active
  /// transactions" (paper §3.2) on a many-context machine — load a small
  /// host cannot produce physically (see DESIGN.md substitutions). The cost
  /// therefore self-scales: short queues at light load stay cheap, crowded
  /// hot queues at high load get expensive. SLI reclaims bypass the latch
  /// and are exempt, exactly as in the paper. 0 disables the simulation
  /// (unit-test default).
  uint64_t sim_queue_work_ns = 0;

  /// Master switch for speculative lock inheritance.
  bool enable_sli = false;

  // --- SLI eligibility criteria (paper §4.2); individually ablatable.
  // Criterion 3 (shared mode) is not switchable: it is a correctness rule.
  bool sli_require_high_level = true;  ///< criterion 1: page level or higher
  bool sli_require_hot = true;         ///< criterion 2: latch contention seen
  bool sli_require_no_waiters = true;  ///< criterion 4: nobody waiting
  bool sli_require_parent = true;      ///< criterion 5: parent also eligible

  /// §4.4 option 2: keep an unused inherited lock across this many commits
  /// before discarding it (0 = paper's "do nothing" default).
  uint32_t sli_hysteresis = 0;

  /// Backstop for lost wakeups / undetected deadlocks. Per-wait budgets are
  /// min(lock_timeout_us, the transaction's remaining deadline) when the
  /// LockClient carries a deadline.
  uint64_t lock_timeout_us = 5'000'000;

  /// Thomasian-style wait-depth restriction, driven by the per-head heat
  /// signal: when nonzero and a head is hot (HotTracker window at
  /// hot_min_contended), a request that would queue behind this many
  /// waiters is cancelled immediately with a retryable Status::Overloaded
  /// instead of deepening the convoy. 0 = off (default).
  uint32_t hot_wait_depth = 0;

  /// Waits-for-graph detector; runs in a background thread.
  bool enable_deadlock_detector = true;
  uint64_t deadlock_interval_us = 1'000;
};

/// Aggregate lock-manager gauges (approximate; read without latches).
struct LockManagerStats {
  size_t lock_heads = 0;
};

/// The SLI policy presets the contention benches ablate. kOn is the paper
/// default (all eligibility criteria active, window-based heat test);
/// kAlwaysInherit drops criterion 2 (every eligible head inherits regardless
/// of heat); kAdaptive replaces the stateless window test with the per-head
/// enter/exit state machine (see LockManagerOptions::sli_adaptive).
enum class SliMode : uint8_t { kOff, kOn, kAlwaysInherit, kAdaptive };

inline const char* SliModeName(SliMode mode) {
  switch (mode) {
    case SliMode::kOff: return "sli_off";
    case SliMode::kOn: return "sli_on";
    case SliMode::kAlwaysInherit: return "always_on";
    case SliMode::kAdaptive: return "adaptive";
  }
  return "?";
}

/// Apply a policy preset on top of existing options (leaves thresholds and
/// non-SLI knobs untouched). Safe only between runs, like mutable_options().
inline void ApplySliMode(LockManagerOptions& o, SliMode mode) {
  o.enable_sli = mode != SliMode::kOff;
  o.sli_require_hot = mode != SliMode::kAlwaysInherit;
  o.sli_adaptive = mode == SliMode::kAdaptive;
}

/// Clients to wake, collected while a head latch is held and drained after
/// it is released so waiters never wake up into a still-latched head (and
/// the latch window stays short). Inline storage covers the common case;
/// deep wake bursts spill to the heap.
class WakeBatch {
 public:
  void Add(LockClient* c) {
    if (n_ < kInline) {
      inline_[n_++] = c;
    } else {
      overflow_.push_back(c);
    }
  }

  /// Wake everything collected so far and reset. Must be called with no
  /// latches held.
  void Flush();

  bool empty() const { return n_ == 0; }

 private:
  static constexpr size_t kInline = 8;
  LockClient* inline_[kInline];
  size_t n_ = 0;
  std::vector<LockClient*> overflow_;
};

class LockManager {
 public:
  explicit LockManager(LockManagerOptions options = {});
  ~LockManager();

  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Acquire `id` in `mode` for `c`, acquiring ancestor intention locks
  /// automatically and upgrading an existing request when needed. Blocks on
  /// conflicts. Returns OK, Deadlock (victim), or TimedOut.
  Status Lock(LockClient* c, const LockId& id, LockMode mode);

  /// Release every lock `c` holds. When `allow_inherit` is true, SLI is
  /// enabled, and `sli` is non-null, eligible locks pass to `sli` instead of
  /// being released (commit path); aborts call with allow_inherit = false.
  /// Also garbage-collects `sli`'s invalidated requests and discards
  /// inherited requests the finished transaction never used.
  ///
  /// `commit_lsn` (commit path only; 0 otherwise) stamps every released or
  /// inherited write-mode lock's head as the durability horizon later
  /// acquirers depend on under early lock release — see
  /// LockHead::last_commit_lsn and LockClient::NoteDep.
  void ReleaseAll(LockClient* c, AgentSliState* sli, bool allow_inherit,
                  uint64_t commit_lsn = 0);

  /// Populate a starting transaction's lock cache with the agent's
  /// inherited requests (paper §4.1: "pre-populates the new transaction's
  /// lock cache").
  void AdoptInherited(LockClient* c, AgentSliState* sli);

  /// Run one deadlock detection pass (also used directly by tests).
  /// Returns the number of victims chosen.
  size_t RunDeadlockDetection();

  const LockManagerOptions& options() const { return options_; }
  /// Live mutation for ablation benches (safe between runs only).
  LockManagerOptions& mutable_options() { return options_; }

  LockTable& table() { return table_; }

  LockManagerStats Stats();

 private:
  Status LockInternal(LockClient* c, const LockId& id, LockMode mode,
                      int depth);
  Status EnsureParents(LockClient* c, const LockId& id, LockMode mode,
                       int depth);
  Status AcquireNew(LockClient* c, const LockId& id, LockMode mode);
  Status Upgrade(LockClient* c, LockRequest* r, LockMode mode);
  /// Blocks until `r` is granted, the client is victimized, or the timeout
  /// fires. On failure, `r` is cleaned up (unlinked+freed for new requests,
  /// reverted for conversions) — unless it was granted concurrently with the
  /// victim decision, in which case `*granted_anyway` is set and the caller
  /// must register the granted request so the abort path releases it.
  Status WaitForGrant(LockClient* c, LockRequest* r, bool* granted_anyway);

  /// True iff `mode` conflicts with no live request other than `self`.
  /// O(1) against the head's grant summary in the common case; falls back
  /// to a queue walk only when conflicting kInherited requests may need to
  /// be invalidated (head latch must be held).
  bool CanGrant(LockHead* h, const LockRequest* self, LockMode mode);

  /// Queue walk behind CanGrant's slow path: precise per-request conflict
  /// checks plus invalidation of conflicting inherited requests.
  bool CanGrantSlow(LockHead* h, const LockRequest* self, LockMode mode);

  /// Grant queued conversions then FIFO waiters (head latch must be held).
  /// Clients to wake are collected into `wakes`; the caller flushes it
  /// after releasing the latch.
  void GrantWaiters(LockHead* h, WakeBatch* wakes);

  /// Normal release of one granted request (the discard path re-takes
  /// ownership via CAS before calling this). Wakeups are collected into
  /// `wakes` under the latch and flushed after it is released; empty row
  /// heads are queued on `reclaims` when non-null (batched TryReclaim),
  /// else reclaimed inline.
  void ReleaseOne(LockClient* c, LockRequest* r, RequestPool* pool,
                  WakeBatch* wakes, std::vector<LockId>* reclaims,
                  uint64_t commit_lsn = 0);

  /// Charge the simulated per-entry queue cost (head latch must be held).
  void SimulateQueueWork(LockHead* h);

  bool EligibleForInheritance(LockClient* c, LockRequest* r,
                              std::vector<std::pair<LockRequest*, bool>>* memo,
                              int depth);

  void ClassifyAcquisition(const LockId& id, LockMode mode, bool hot);

  void DetectorLoop();

  LockManagerOptions options_;
  LockTable table_;

  std::thread detector_;
  std::mutex detector_mu_;
  std::condition_variable detector_cv_;
  bool stop_detector_ = false;
};

}  // namespace slidb
