// Hierarchical lock identifiers: database → table → page → row.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>

namespace slidb {

/// Level of a lock in the hierarchy. SLI's criterion 1 admits page level and
/// higher; row locks are too numerous to be worth tracking (paper §4.2).
enum class LockLevel : uint8_t {
  kDatabase = 0,
  kTable = 1,
  kPage = 2,
  kRow = 3,
};

inline const char* LockLevelName(LockLevel l) {
  switch (l) {
    case LockLevel::kDatabase: return "db";
    case LockLevel::kTable: return "table";
    case LockLevel::kPage: return "page";
    case LockLevel::kRow: return "row";
  }
  return "?";
}

/// Identifies one lockable object. Value type, hashable, totally identified
/// by (level, db, table, page, row); unused trailing fields are zero.
struct LockId {
  LockLevel level = LockLevel::kDatabase;
  uint32_t db = 0;
  uint32_t table = 0;
  uint64_t page = 0;
  uint32_t row = 0;

  static LockId Database(uint32_t db) {
    return LockId{LockLevel::kDatabase, db, 0, 0, 0};
  }
  static LockId Table(uint32_t db, uint32_t table) {
    return LockId{LockLevel::kTable, db, table, 0, 0};
  }
  static LockId Page(uint32_t db, uint32_t table, uint64_t page) {
    return LockId{LockLevel::kPage, db, table, page, 0};
  }
  static LockId Row(uint32_t db, uint32_t table, uint64_t page, uint32_t row) {
    return LockId{LockLevel::kRow, db, table, page, row};
  }

  bool HasParent() const { return level != LockLevel::kDatabase; }

  /// The lock one level up (row → page → table → database).
  LockId Parent() const {
    LockId p = *this;
    switch (level) {
      case LockLevel::kRow:
        p.level = LockLevel::kPage;
        p.row = 0;
        break;
      case LockLevel::kPage:
        p.level = LockLevel::kTable;
        p.page = 0;
        p.row = 0;
        break;
      case LockLevel::kTable:
        p.level = LockLevel::kDatabase;
        p.table = 0;
        p.page = 0;
        p.row = 0;
        break;
      case LockLevel::kDatabase:
        break;
    }
    return p;
  }

  bool operator==(const LockId& o) const {
    return level == o.level && db == o.db && table == o.table &&
           page == o.page && row == o.row;
  }

  uint64_t Hash() const {
    // 64-bit mix of all fields (splitmix-style finalizer).
    uint64_t h = static_cast<uint64_t>(level);
    h = h * 0x9e3779b97f4a7c15ULL + db;
    h = h * 0x9e3779b97f4a7c15ULL + table;
    h = h * 0x9e3779b97f4a7c15ULL + page;
    h = h * 0x9e3779b97f4a7c15ULL + row;
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 27;
    h *= 0x94d049bb133111ebULL;
    h ^= h >> 31;
    return h;
  }

  std::string ToString() const {
    char buf[80];
    std::snprintf(buf, sizeof(buf), "%s(%u.%u.%llu.%u)", LockLevelName(level),
                  db, table, static_cast<unsigned long long>(page), row);
    return buf;
  }
};

}  // namespace slidb

template <>
struct std::hash<slidb::LockId> {
  size_t operator()(const slidb::LockId& id) const noexcept {
    return static_cast<size_t>(id.Hash());
  }
};
