// Database: the slidb public facade. Owns the full substrate stack (volume,
// buffer pool, WAL, lock manager, transaction manager, catalog) and exposes
// transactional row and index operations with hierarchical 2PL locking —
// the same architecture as the Shore-MT engine the paper modifies.
//
// Transactions are schema-aware C++ functions calling this API directly
// ("hard-coded transactions", paper §5.2), like compiled stored procedures.
#pragma once

#include <memory>
#include <span>
#include <string>

#include "src/buffer/buffer_pool.h"
#include "src/buffer/volume.h"
#include "src/engine/catalog.h"
#include "src/engine/governor.h"
#include "src/lock/lock_manager.h"
#include "src/log/log_device.h"
#include "src/log/log_manager.h"
#include "src/log/recovery.h"
#include "src/txn/agent.h"
#include "src/txn/transaction_manager.h"
#include "src/util/status.h"

namespace slidb {

struct DatabaseOptions {
  uint32_t db_id = 0;
  LockManagerOptions lock;
  LogOptions log;
  TxnOptions txn;
  BufferPoolOptions buffer;
  /// Row-level locking (default). When false, data ops take full-table
  /// S/X locks — the coarse-granularity ablation.
  bool row_locking = true;
  /// When non-empty, the WAL is persisted to this file (FileLogDevice
  /// behind log.flush_sink) and Recover(log_path) can rebuild state after a
  /// crash. Ignored if log.flush_sink is already set (tests install
  /// capture/crash sinks there).
  std::string log_path;
  /// fsync the log file (the durability contract across host crashes); the
  /// cadence is LogOptions::fsync_every_n_flushes (default every flush).
  /// Off disables fsync entirely, trading durability for bench throughput.
  bool log_sync_each_flush = true;
  /// Nonzero: the log at log_path is a SegmentedLogDevice with this
  /// per-segment payload capacity — rotated fixed-size segment files,
  /// crash-safe generations, and checkpoint-driven recycling, so log disk
  /// is bounded by checkpoint cadence. Zero (default): single-file
  /// FileLogDevice with deferred truncation.
  uint64_t log_segment_bytes = 0;
  /// Nonzero: run a background fuzzy checkpointer at this cadence.
  /// CheckpointNow() works either way.
  uint32_t checkpoint_interval_ms = 0;
  /// Admission governor limits (defaults off — every AdmitTxn succeeds).
  GovernorOptions governor;
};

class Checkpointer;  // engine/checkpointer.h

class Database {
 public:
  explicit Database(DatabaseOptions options = {});
  ~Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // ---- schema (setup phase only; not transactional) ----

  TableId CreateTable(const std::string& name);
  IndexId CreateIndex(TableId table, const std::string& name, IndexKind kind,
                      bool unique);
  bool FindTable(const std::string& name, TableId* id) const {
    return catalog_.FindTable(name, id);
  }

  // ---- agents and transactions ----

  std::unique_ptr<AgentContext> CreateAgent(uint64_t seed = 1);
  Transaction* Begin(AgentContext* agent);
  Status Commit(AgentContext* agent);
  void Abort(AgentContext* agent);

  // ---- admission control (overload governor) ----

  /// Ask the governor for an in-flight token before starting a transaction.
  /// Honors the agent's txn deadline while queued. Returns a retryable
  /// Overloaded/TimedOut without starting anything when shed; on OK the
  /// token is held by the agent and returned automatically by the next
  /// Commit/Abort (or an explicit FinishAdmission). A no-op returning OK
  /// when the governor is disabled (GovernorOptions::max_inflight == 0).
  Status AdmitTxn(AgentContext* agent);

  /// Return the agent's admission token, if it holds one. Idempotent;
  /// Commit/Abort call it implicitly.
  void FinishAdmission(AgentContext* agent);

  // ---- crash recovery ----
  // Call on a freshly-constructed database after re-creating the schema
  // (same CreateTable/CreateIndex order as the crashed run) and before any
  // transactions: redo records address tables and indexes by catalog
  // position. Replay repeats history (redo from the last complete
  // checkpoint, or the stream base) and then rolls losers back through
  // their logged before-images, emitting compensation records (kClr) and a
  // closing kAbort per loser into the NEW log — so storage may be empty
  // (rebuild) or warm (in-place restart with stolen dirty state).
  //
  // Restart-in-place is supported: constructing with the SAME log_path as
  // the crashed run is safe. After replay an OPENING CHECKPOINT is written
  // and hardened, making the new log self-contained across a second crash.
  // In segmented mode (log_segment_bytes != 0) the window is fully closed:
  // the new generation stays tentative — and the old one stays the source
  // of truth — until the opening checkpoint is durable
  // (SegmentedLogDevice::MarkGenerationAuthoritative). In single-file mode
  // a crash *during* the opening checkpoint still loses data (the old file
  // is overwritten in place); use segments where that matters.

  /// Recover from the durable log written via DatabaseOptions::log_path
  /// (single file or segmented generation, per log_segment_bytes).
  Status Recover(const std::string& path, RecoveryReport* report = nullptr);

  /// Recover from an already-read durable byte stream (crash-test harness
  /// path); `base_lsn` is the log offset of its first byte (nonzero when
  /// earlier segments were recycled). Also restarts the txn-id space above
  /// every recovered id.
  Status RecoverFromStream(std::vector<uint8_t> stream,
                           RecoveryReport* report = nullptr,
                           Lsn base_lsn = 0);

  // ---- checkpointing ----

  /// Run one synchronous fuzzy checkpoint pass (see engine/checkpointer.h).
  Status CheckpointNow(Lsn* redo_start_out = nullptr);
  Checkpointer& checkpointer() { return *checkpointer_; }

  // ---- transactional row operations (2PL) ----

  /// Insert a record; X-locks the new row. `rid` receives its address.
  Status Insert(AgentContext* agent, TableId table,
                std::span<const uint8_t> rec, Rid* rid);

  /// Read a fixed-size record under a row S lock.
  Status Read(AgentContext* agent, TableId table, Rid rid, void* buf,
              size_t len);

  /// Read a variable-size record under a row S lock.
  Status ReadString(AgentContext* agent, TableId table, Rid rid,
                    std::string* out);

  /// In-place update under a row X lock (size must not grow).
  Status Update(AgentContext* agent, TableId table, Rid rid,
                std::span<const uint8_t> rec);

  /// Delete under a row X lock. Undo restores the record at the same RID.
  Status Delete(AgentContext* agent, TableId table, Rid rid);

  /// Lock a row for update before reading (SELECT ... FOR UPDATE).
  Status LockRowExclusive(AgentContext* agent, TableId table, Rid rid);

  // ---- transactional index maintenance ----
  // Indexes are latch-protected structures; entries become visible
  // immediately but are removed again by undo if the transaction aborts
  // (rows stay X-locked until then, so no other transaction can observe
  // the inconsistency through proper index usage).

  Status IndexInsert(AgentContext* agent, IndexId index, uint64_t key,
                     uint64_t value);
  Status IndexRemove(AgentContext* agent, IndexId index, uint64_t key,
                     uint64_t value);

  // ---- index reads (no locks; callers lock the rows they fetch) ----

  Status IndexLookup(IndexId index, uint64_t key, uint64_t* value) const;
  void IndexLookupAll(IndexId index, uint64_t key,
                      std::vector<uint64_t>* values) const;
  void IndexScan(IndexId index, uint64_t lo, uint64_t hi,
                 const std::function<bool(uint64_t, uint64_t)>& fn) const;
  void IndexScanReverse(IndexId index, uint64_t lo, uint64_t hi,
                        const std::function<bool(uint64_t, uint64_t)>& fn) const;

  // ---- component access (benches, tests, stats) ----

  LockManager& lock_manager() { return *lock_manager_; }
  LogManager& log_manager() { return *log_manager_; }
  AdmissionGovernor& governor() { return governor_; }
  /// The durable log device, or nullptr when the log is sink-less /
  /// test-captured (no DatabaseOptions::log_path).
  LogDevice* log_device() { return log_device_.get(); }
  BufferPool& buffer_pool() { return *buffer_pool_; }
  TransactionManager& txn_manager() { return *txn_manager_; }
  Catalog& catalog() { return catalog_; }
  const DatabaseOptions& options() const { return options_; }

  /// Toggle SLI between runs (no active transactions allowed).
  void SetSliEnabled(bool enabled) {
    lock_manager_->mutable_options().enable_sli = enabled;
  }

  /// Apply an SLI policy preset between runs (no active transactions
  /// allowed); see SliMode in lock_manager.h.
  void SetSliMode(SliMode mode) {
    ApplySliMode(lock_manager_->mutable_options(), mode);
  }

 private:
  Status LockRow(AgentContext* agent, TableId table, Rid rid, LockMode mode);

  DatabaseOptions options_;
  std::unique_ptr<Volume> volume_;
  std::unique_ptr<BufferPool> buffer_pool_;
  // Declared before log_manager_: the flusher drains into the device's
  // sink during LogManager teardown, so the device must be destroyed after.
  std::unique_ptr<LogDevice> log_device_;
  SegmentedLogDevice* seg_device_ = nullptr;  ///< log_device_ downcast, or null
  std::unique_ptr<LogManager> log_manager_;
  std::unique_ptr<LockManager> lock_manager_;
  std::unique_ptr<TransactionManager> txn_manager_;
  AdmissionGovernor governor_;
  Catalog catalog_;
  // Declared last: destroyed first, so its background thread stops before
  // the managers it appends through are torn down.
  std::unique_ptr<Checkpointer> checkpointer_;
  std::atomic<uint64_t> agent_ids_{0};
};

}  // namespace slidb
