// Database: the slidb public facade. Owns the full substrate stack (volume,
// buffer pool, WAL, lock manager, transaction manager, catalog) and exposes
// transactional row and index operations with hierarchical 2PL locking —
// the same architecture as the Shore-MT engine the paper modifies.
//
// Transactions are schema-aware C++ functions calling this API directly
// ("hard-coded transactions", paper §5.2), like compiled stored procedures.
#pragma once

#include <memory>
#include <span>
#include <string>

#include "src/buffer/buffer_pool.h"
#include "src/buffer/volume.h"
#include "src/engine/catalog.h"
#include "src/lock/lock_manager.h"
#include "src/log/log_manager.h"
#include "src/txn/agent.h"
#include "src/txn/transaction_manager.h"
#include "src/util/status.h"

namespace slidb {

struct DatabaseOptions {
  uint32_t db_id = 0;
  LockManagerOptions lock;
  LogOptions log;
  TxnOptions txn;
  BufferPoolOptions buffer;
  /// Row-level locking (default). When false, data ops take full-table
  /// S/X locks — the coarse-granularity ablation.
  bool row_locking = true;
};

class Database {
 public:
  explicit Database(DatabaseOptions options = {});
  ~Database() = default;

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // ---- schema (setup phase only; not transactional) ----

  TableId CreateTable(const std::string& name);
  IndexId CreateIndex(TableId table, const std::string& name, IndexKind kind,
                      bool unique);
  bool FindTable(const std::string& name, TableId* id) const {
    return catalog_.FindTable(name, id);
  }

  // ---- agents and transactions ----

  std::unique_ptr<AgentContext> CreateAgent(uint64_t seed = 1);
  Transaction* Begin(AgentContext* agent);
  Status Commit(AgentContext* agent);
  void Abort(AgentContext* agent);

  // ---- transactional row operations (2PL) ----

  /// Insert a record; X-locks the new row. `rid` receives its address.
  Status Insert(AgentContext* agent, TableId table,
                std::span<const uint8_t> rec, Rid* rid);

  /// Read a fixed-size record under a row S lock.
  Status Read(AgentContext* agent, TableId table, Rid rid, void* buf,
              size_t len);

  /// Read a variable-size record under a row S lock.
  Status ReadString(AgentContext* agent, TableId table, Rid rid,
                    std::string* out);

  /// In-place update under a row X lock (size must not grow).
  Status Update(AgentContext* agent, TableId table, Rid rid,
                std::span<const uint8_t> rec);

  /// Delete under a row X lock. Undo restores the record at the same RID.
  Status Delete(AgentContext* agent, TableId table, Rid rid);

  /// Lock a row for update before reading (SELECT ... FOR UPDATE).
  Status LockRowExclusive(AgentContext* agent, TableId table, Rid rid);

  // ---- transactional index maintenance ----
  // Indexes are latch-protected structures; entries become visible
  // immediately but are removed again by undo if the transaction aborts
  // (rows stay X-locked until then, so no other transaction can observe
  // the inconsistency through proper index usage).

  Status IndexInsert(AgentContext* agent, IndexId index, uint64_t key,
                     uint64_t value);
  Status IndexRemove(AgentContext* agent, IndexId index, uint64_t key,
                     uint64_t value);

  // ---- index reads (no locks; callers lock the rows they fetch) ----

  Status IndexLookup(IndexId index, uint64_t key, uint64_t* value) const;
  void IndexLookupAll(IndexId index, uint64_t key,
                      std::vector<uint64_t>* values) const;
  void IndexScan(IndexId index, uint64_t lo, uint64_t hi,
                 const std::function<bool(uint64_t, uint64_t)>& fn) const;
  void IndexScanReverse(IndexId index, uint64_t lo, uint64_t hi,
                        const std::function<bool(uint64_t, uint64_t)>& fn) const;

  // ---- component access (benches, tests, stats) ----

  LockManager& lock_manager() { return *lock_manager_; }
  LogManager& log_manager() { return *log_manager_; }
  BufferPool& buffer_pool() { return *buffer_pool_; }
  TransactionManager& txn_manager() { return *txn_manager_; }
  Catalog& catalog() { return catalog_; }
  const DatabaseOptions& options() const { return options_; }

  /// Toggle SLI between runs (no active transactions allowed).
  void SetSliEnabled(bool enabled) {
    lock_manager_->mutable_options().enable_sli = enabled;
  }

 private:
  Status LockRow(AgentContext* agent, TableId table, Rid rid, LockMode mode);
  void LogRowOp(AgentContext* agent, LogRecordType type, TableId table,
                Rid rid, std::span<const uint8_t> rec);

  DatabaseOptions options_;
  std::unique_ptr<Volume> volume_;
  std::unique_ptr<BufferPool> buffer_pool_;
  std::unique_ptr<LogManager> log_manager_;
  std::unique_ptr<LockManager> lock_manager_;
  std::unique_ptr<TransactionManager> txn_manager_;
  Catalog catalog_;
  std::atomic<uint64_t> agent_ids_{0};
};

}  // namespace slidb
