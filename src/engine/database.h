// Database: the slidb public facade. Owns the full substrate stack (volume,
// buffer pool, WAL, lock manager, transaction manager, catalog) and exposes
// transactional row and index operations with hierarchical 2PL locking —
// the same architecture as the Shore-MT engine the paper modifies.
//
// Transactions are schema-aware C++ functions calling this API directly
// ("hard-coded transactions", paper §5.2), like compiled stored procedures.
#pragma once

#include <memory>
#include <span>
#include <string>

#include "src/buffer/buffer_pool.h"
#include "src/buffer/volume.h"
#include "src/engine/catalog.h"
#include "src/lock/lock_manager.h"
#include "src/log/log_device.h"
#include "src/log/log_manager.h"
#include "src/log/recovery.h"
#include "src/txn/agent.h"
#include "src/txn/transaction_manager.h"
#include "src/util/status.h"

namespace slidb {

struct DatabaseOptions {
  uint32_t db_id = 0;
  LockManagerOptions lock;
  LogOptions log;
  TxnOptions txn;
  BufferPoolOptions buffer;
  /// Row-level locking (default). When false, data ops take full-table
  /// S/X locks — the coarse-granularity ablation.
  bool row_locking = true;
  /// When non-empty, the WAL is persisted to this file (FileLogDevice
  /// behind log.flush_sink) and Recover(log_path) can rebuild state after a
  /// crash. Ignored if log.flush_sink is already set (tests install
  /// capture/crash sinks there).
  std::string log_path;
  /// fsync the log file (the durability contract across host crashes); the
  /// cadence is LogOptions::fsync_every_n_flushes (default every flush).
  /// Off disables fsync entirely, trading durability for bench throughput.
  bool log_sync_each_flush = true;
};

class Database {
 public:
  explicit Database(DatabaseOptions options = {});
  ~Database() = default;

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // ---- schema (setup phase only; not transactional) ----

  TableId CreateTable(const std::string& name);
  IndexId CreateIndex(TableId table, const std::string& name, IndexKind kind,
                      bool unique);
  bool FindTable(const std::string& name, TableId* id) const {
    return catalog_.FindTable(name, id);
  }

  // ---- agents and transactions ----

  std::unique_ptr<AgentContext> CreateAgent(uint64_t seed = 1);
  Transaction* Begin(AgentContext* agent);
  Status Commit(AgentContext* agent);
  void Abort(AgentContext* agent);

  // ---- crash recovery ----
  // Call on a freshly-constructed database after re-creating the schema
  // (same CreateTable/CreateIndex order as the crashed run) and before any
  // transactions: redo records address tables and indexes by catalog
  // position, and replay assumes empty storage.
  //
  // Restart-in-place is supported: constructing with the SAME log_path as
  // the crashed run is safe, because the file device defers truncation to
  // its first write and recovery re-logs the recovered state into the new
  // WAL as a durable snapshot before returning — the new log is
  // self-contained across a second crash. (A crash *during* the snapshot
  // write itself still loses data; write-new-then-rename rotation is a
  // ROADMAP follow-up.)

  /// Recover from a durable log file written via DatabaseOptions::log_path.
  Status Recover(const std::string& path, RecoveryReport* report = nullptr);

  /// Recover from an already-read durable byte stream (crash-test harness
  /// path). Also restarts the txn-id space above every recovered id.
  Status RecoverFromStream(std::vector<uint8_t> stream,
                           RecoveryReport* report = nullptr);

  // ---- transactional row operations (2PL) ----

  /// Insert a record; X-locks the new row. `rid` receives its address.
  Status Insert(AgentContext* agent, TableId table,
                std::span<const uint8_t> rec, Rid* rid);

  /// Read a fixed-size record under a row S lock.
  Status Read(AgentContext* agent, TableId table, Rid rid, void* buf,
              size_t len);

  /// Read a variable-size record under a row S lock.
  Status ReadString(AgentContext* agent, TableId table, Rid rid,
                    std::string* out);

  /// In-place update under a row X lock (size must not grow).
  Status Update(AgentContext* agent, TableId table, Rid rid,
                std::span<const uint8_t> rec);

  /// Delete under a row X lock. Undo restores the record at the same RID.
  Status Delete(AgentContext* agent, TableId table, Rid rid);

  /// Lock a row for update before reading (SELECT ... FOR UPDATE).
  Status LockRowExclusive(AgentContext* agent, TableId table, Rid rid);

  // ---- transactional index maintenance ----
  // Indexes are latch-protected structures; entries become visible
  // immediately but are removed again by undo if the transaction aborts
  // (rows stay X-locked until then, so no other transaction can observe
  // the inconsistency through proper index usage).

  Status IndexInsert(AgentContext* agent, IndexId index, uint64_t key,
                     uint64_t value);
  Status IndexRemove(AgentContext* agent, IndexId index, uint64_t key,
                     uint64_t value);

  // ---- index reads (no locks; callers lock the rows they fetch) ----

  Status IndexLookup(IndexId index, uint64_t key, uint64_t* value) const;
  void IndexLookupAll(IndexId index, uint64_t key,
                      std::vector<uint64_t>* values) const;
  void IndexScan(IndexId index, uint64_t lo, uint64_t hi,
                 const std::function<bool(uint64_t, uint64_t)>& fn) const;
  void IndexScanReverse(IndexId index, uint64_t lo, uint64_t hi,
                        const std::function<bool(uint64_t, uint64_t)>& fn) const;

  // ---- component access (benches, tests, stats) ----

  LockManager& lock_manager() { return *lock_manager_; }
  LogManager& log_manager() { return *log_manager_; }
  /// The durable log device, or nullptr when the log is sink-less /
  /// test-captured (no DatabaseOptions::log_path).
  LogDevice* log_device() { return log_device_.get(); }
  BufferPool& buffer_pool() { return *buffer_pool_; }
  TransactionManager& txn_manager() { return *txn_manager_; }
  Catalog& catalog() { return catalog_; }
  const DatabaseOptions& options() const { return options_; }

  /// Toggle SLI between runs (no active transactions allowed).
  void SetSliEnabled(bool enabled) {
    lock_manager_->mutable_options().enable_sli = enabled;
  }

 private:
  Status LockRow(AgentContext* agent, TableId table, Rid rid, LockMode mode);

  DatabaseOptions options_;
  std::unique_ptr<Volume> volume_;
  std::unique_ptr<BufferPool> buffer_pool_;
  // Declared before log_manager_: the flusher drains into the device's
  // sink during LogManager teardown, so the device must be destroyed after.
  std::unique_ptr<LogDevice> log_device_;
  std::unique_ptr<LogManager> log_manager_;
  std::unique_ptr<LockManager> lock_manager_;
  std::unique_ptr<TransactionManager> txn_manager_;
  Catalog catalog_;
  std::atomic<uint64_t> agent_ids_{0};
};

}  // namespace slidb
