// Catalog: tables and indexes. Schema changes are a setup-phase operation
// (not transactional, not thread-safe against concurrent data access) —
// the workloads create their schema once before the driver starts.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/storage/btree.h"
#include "src/storage/hash_index.h"
#include "src/storage/heap_file.h"

namespace slidb {

using TableId = uint32_t;
using IndexId = uint32_t;

enum class IndexKind : uint8_t {
  kBTree,  ///< ordered; supports range and reverse scans
  kHash,   ///< exact match only; lower constant cost
};

struct TableInfo {
  std::string name;
  std::unique_ptr<HeapFile> heap;
  std::vector<IndexId> indexes;
};

struct IndexInfo {
  std::string name;
  IndexKind kind;
  TableId table;
  bool unique;
  std::unique_ptr<BTree> btree;     // kind == kBTree
  std::unique_ptr<HashIndex> hash;  // kind == kHash
};

class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  TableId AddTable(std::string name, std::unique_ptr<HeapFile> heap) {
    tables_.push_back(TableInfo{std::move(name), std::move(heap), {}});
    return static_cast<TableId>(tables_.size() - 1);
  }

  IndexId AddIndex(TableId table, std::string name, IndexKind kind,
                   bool unique) {
    IndexInfo info;
    info.name = std::move(name);
    info.kind = kind;
    info.table = table;
    info.unique = unique;
    if (kind == IndexKind::kBTree) {
      info.btree = std::make_unique<BTree>();
    } else {
      info.hash = std::make_unique<HashIndex>();
    }
    indexes_.push_back(std::move(info));
    const IndexId id = static_cast<IndexId>(indexes_.size() - 1);
    tables_[table].indexes.push_back(id);
    return id;
  }

  TableInfo& table(TableId id) { return tables_.at(id); }
  IndexInfo& index(IndexId id) { return indexes_.at(id); }
  const TableInfo& table(TableId id) const { return tables_.at(id); }
  const IndexInfo& index(IndexId id) const { return indexes_.at(id); }

  size_t num_tables() const { return tables_.size(); }
  size_t num_indexes() const { return indexes_.size(); }

  /// Linear name lookup (setup/debug convenience).
  bool FindTable(const std::string& name, TableId* id) const {
    for (size_t i = 0; i < tables_.size(); ++i) {
      if (tables_[i].name == name) {
        *id = static_cast<TableId>(i);
        return true;
      }
    }
    return false;
  }

 private:
  std::vector<TableInfo> tables_;
  std::vector<IndexInfo> indexes_;
};

}  // namespace slidb
