// Admission governor: the front gate of the overload story. A bounded pool
// of in-flight transaction tokens plus a bounded entry queue in front of it.
// Arrivals that find a free token start immediately; arrivals that find the
// queue full are shed at once with a retryable Status::Overloaded — shedding
// at the door is what keeps an overloaded system "fast, then flat" instead
// of piling every excess client onto the hottest lock heads (Thomasian's
// framing: bound the number of concurrently *active* transactions, reject
// the rest early while they are still cheap).
//
// Queued arrivals honor the transaction deadline: a waiter whose response
// budget expires before a token frees gives up with a retryable TimedOut,
// so the entry queue never holds work that could not finish in time anyway.
//
// All knobs default off (max_inflight == 0 admits everything for free), so
// existing callers and benches are unchanged unless they opt in.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "src/util/status.h"

namespace slidb {

struct GovernorOptions {
  /// Maximum concurrently admitted transactions. 0 = admission disabled
  /// (every Admit succeeds immediately and Release is a no-op).
  uint32_t max_inflight = 0;
  /// Maximum arrivals parked waiting for a token before new arrivals are
  /// shed with Status::Overloaded. 0 = no queue: shed as soon as the
  /// in-flight tokens are exhausted.
  uint32_t max_queue = 0;
};

/// Cumulative totals plus an instantaneous occupancy snapshot.
struct GovernorStats {
  uint64_t admitted = 0;        ///< tokens granted (fast path + queued)
  uint64_t queued_admits = 0;   ///< tokens granted after an entry-queue wait
  uint64_t shed = 0;            ///< arrivals rejected with Overloaded
  uint64_t queue_timeouts = 0;  ///< queued arrivals whose deadline expired
  uint32_t inflight = 0;        ///< tokens currently held
  uint32_t queue_depth = 0;     ///< arrivals currently parked
};

class AdmissionGovernor {
 public:
  explicit AdmissionGovernor(GovernorOptions options = {})
      : options_(options) {}

  AdmissionGovernor(const AdmissionGovernor&) = delete;
  AdmissionGovernor& operator=(const AdmissionGovernor&) = delete;

  /// Try to take an in-flight token. Returns OK once a token is held;
  /// Overloaded (retryable) when the entry queue is full; TimedOut
  /// (retryable) when `deadline_ns` (absolute, NowNanos clock; 0 = wait
  /// forever) expires while queued. Every OK must be paired with exactly
  /// one Release().
  Status Admit(uint64_t deadline_ns = 0);

  /// Return a token taken by a successful Admit and wake one queued waiter.
  void Release();

  bool enabled() const { return options_.max_inflight != 0; }
  const GovernorOptions& options() const { return options_; }

  /// Swap limits between runs (callers must hold no tokens). The documented
  /// between-runs mutation, mirroring Database::SetSliMode.
  void SetOptions(GovernorOptions options);

  GovernorStats Stats() const;

 private:
  GovernorOptions options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  uint32_t inflight_ = 0;
  uint32_t queued_ = 0;
  uint64_t admitted_ = 0;
  uint64_t queued_admits_ = 0;
  uint64_t shed_ = 0;
  uint64_t queue_timeouts_ = 0;
};

}  // namespace slidb
