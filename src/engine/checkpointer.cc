#include "src/engine/checkpointer.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <vector>

#include "src/engine/database.h"
#include "src/stats/counters.h"

namespace slidb {

Checkpointer::Checkpointer(Database* db, CheckpointerOptions options)
    : db_(db), options_(options) {}

Checkpointer::~Checkpointer() { Stop(); }

void Checkpointer::Start() {
  if (options_.interval_ms == 0 || thread_.joinable()) return;
  stop_ = false;
  thread_ = std::thread([this] { ThreadMain(); });
}

void Checkpointer::Stop() {
  {
    std::lock_guard<std::mutex> g(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void Checkpointer::ThreadMain() {
  std::unique_lock<std::mutex> lk(mu_);
  while (!stop_) {
    cv_.wait_for(lk, std::chrono::milliseconds(options_.interval_ms),
                 [this] { return stop_; });
    if (stop_) break;
    lk.unlock();
    // Lock failures abandon the pass (no end record); the next tick tries
    // again. I/O failure poisons the device and aborts via the sink.
    (void)CheckpointNow();
    lk.lock();
  }
}

Status Checkpointer::CheckpointNow(Lsn* redo_start_out) {
  std::lock_guard<std::mutex> serialize(pass_mu_);
  LogManager& log = db_->log_manager();
  LockManager& locks = db_->lock_manager();
  Catalog& catalog = db_->catalog();
  const uint32_t db_id = db_->options().db_id;

  CheckpointBeginPayload begin{};
  const Lsn begin_end = log.Append(/*txn_id=*/0, LogRecordType::kCheckpointBegin,
                                   &begin, sizeof(begin));
  const Lsn begin_lsn =
      begin_end - sizeof(LogRecordHeader) - sizeof(CheckpointBeginPayload);

  // ATT AFTER the begin record — see the header note on why this order
  // makes the loser coverage airtight.
  const std::vector<CheckpointTxnEntry> att =
      db_->txn_manager().SnapshotActiveTxns();

  // The checkpointer's lock identity: id 0 sorts as the oldest possible
  // transaction so the deadlock detector never prefers it as a victim
  // (it cannot be in a cycle anyway — see header).
  lock_client_.StartTxn(/*txn_id=*/0, /*agent_id=*/UINT32_MAX);

  uint64_t images = 0;
  std::vector<uint8_t> buf(sizeof(HeapRedoPayload) +
                           SlottedPage::MaxRecordSize());

  // Heap images: collect addresses with a latch-only scan, then image each
  // row under its own brief S lock. Rows that vanish between the scan and
  // the lock (committed deletes) are simply skipped; rows inserted after
  // the scan have their records above begin_lsn, inside the redo window.
  for (TableId t = 0; t < catalog.num_tables(); ++t) {
    HeapFile* heap = catalog.table(t).heap.get();
    std::vector<Rid> rids;
    (void)heap->Scan(
        [&](Rid rid, std::span<const uint8_t>) { rids.push_back(rid); });
    std::string row;
    for (const Rid rid : rids) {
      Status st = locks.Lock(
          &lock_client_, LockId::Row(db_id, t, rid.page_no, rid.slot),
          LockMode::kS);
      if (!st.ok()) {
        // Timeout against a long writer: abandon the pass. A checkpoint
        // with a missing image must never write its end record — a fresh
        // rebuild anchored there would lose the row.
        locks.ReleaseAll(&lock_client_, nullptr, /*allow_inherit=*/false);
        return st;
      }
      const Status read_st = heap->Read(rid, &row);
      if (read_st.ok()) {
        HeapRedoPayload payload{};
        payload.table = t;
        payload.slot = rid.slot;
        payload.page_no = rid.page_no;
        payload.before_len = 0;
        std::memcpy(buf.data(), &payload, sizeof(payload));
        std::memcpy(buf.data() + sizeof(payload), row.data(), row.size());
        // Appended INSIDE the S hold: any writer that touches this row
        // later publishes at a larger LSN, so LSN order equals apply
        // order and replay converges to the same final state.
        log.Append(/*txn_id=*/0, LogRecordType::kCheckpointImage, buf.data(),
                   static_cast<uint32_t>(sizeof(payload) + row.size()));
        ++images;
      }
      locks.ReleaseAll(&lock_client_, nullptr, /*allow_inherit=*/false);
    }
  }

  // Index images: one table-S hold per index blocks that table's IX
  // writers for the duration of the enumeration.
  for (IndexId i = 0; i < catalog.num_indexes(); ++i) {
    IndexInfo& info = catalog.index(i);
    Status st = locks.Lock(&lock_client_,
                           LockId::Table(db_id, info.table), LockMode::kS);
    if (!st.ok()) {
      locks.ReleaseAll(&lock_client_, nullptr, /*allow_inherit=*/false);
      return st;
    }
    const auto emit = [&](uint64_t key, uint64_t value) {
      IndexRedoPayload entry{};
      entry.index = i;
      entry.key = key;
      entry.value = value;
      log.Append(/*txn_id=*/0, LogRecordType::kCheckpointIndexImage, &entry,
                 static_cast<uint32_t>(sizeof(entry)));
      ++images;
    };
    if (info.kind == IndexKind::kBTree) {
      info.btree->Scan(0, UINT64_MAX, [&](uint64_t k, uint64_t v) {
        emit(k, v);
        return true;
      });
    } else {
      info.hash->ForEach(emit);
    }
    locks.ReleaseAll(&lock_client_, nullptr, /*allow_inherit=*/false);
  }

  Lsn redo_start = begin_lsn;
  for (const CheckpointTxnEntry& entry : att) {
    if (entry.first_lsn != kLsnNone) {
      redo_start = std::min(redo_start, entry.first_lsn);
    }
  }

  CheckpointEndPayload end{};
  end.begin_lsn = begin_lsn;
  end.redo_start_lsn = redo_start;
  end.image_records = images;
  end.active_txns = static_cast<uint32_t>(att.size());
  std::vector<uint8_t> end_buf(sizeof(end) +
                               att.size() * sizeof(CheckpointTxnEntry));
  std::memcpy(end_buf.data(), &end, sizeof(end));
  if (!att.empty()) {
    std::memcpy(end_buf.data() + sizeof(end), att.data(),
                att.size() * sizeof(CheckpointTxnEntry));
  }
  const Lsn end_lsn =
      log.Append(/*txn_id=*/0, LogRecordType::kCheckpointEnd, end_buf.data(),
                 static_cast<uint32_t>(end_buf.size()));
  log.WaitDurable(end_lsn);

  // Only now — with the end record durable — may storage below redo_start
  // be reclaimed: every future recovery anchors at this checkpoint (or a
  // later one) and never reads below it.
  if (db_->log_device() != nullptr) {
    db_->log_device()->RecycleBelow(redo_start);
  }
  completed_.fetch_add(1, std::memory_order_relaxed);
  CountEvent(Counter::kCheckpointsCompleted);
  CountEvent(Counter::kCheckpointImageRecords, images);
  if (redo_start_out != nullptr) *redo_start_out = redo_start;
  return Status::OK();
}

}  // namespace slidb
