#include "src/engine/governor.h"

#include <chrono>

#include "src/stats/counters.h"
#include "src/util/time_util.h"

namespace slidb {

Status AdmissionGovernor::Admit(uint64_t deadline_ns) {
  if (options_.max_inflight == 0) return Status::OK();

  std::unique_lock<std::mutex> lk(mu_);
  // Fast path: a free token and nobody queued ahead of us. Letting a new
  // arrival jump a non-empty queue would starve parked waiters under a
  // steady arrival stream.
  if (queued_ == 0 && inflight_ < options_.max_inflight) {
    ++inflight_;
    ++admitted_;
    CountEvent(Counter::kGovAdmits);
    return Status::OK();
  }

  if (queued_ >= options_.max_queue) {
    ++shed_;
    CountEvent(Counter::kGovSheds);
    return Status::Overloaded("admission queue full");
  }

  ++queued_;
  bool timed_out = false;
  while (inflight_ >= options_.max_inflight) {
    if (deadline_ns == 0) {
      cv_.wait(lk);
      continue;
    }
    const uint64_t now = NowNanos();
    if (now >= deadline_ns) {
      timed_out = true;
      break;
    }
    cv_.wait_for(lk, std::chrono::nanoseconds(deadline_ns - now));
  }
  --queued_;
  if (timed_out) {
    ++queue_timeouts_;
    CountEvent(Counter::kGovQueueTimeouts);
    return Status::TimedOut("deadline expired in admission queue");
  }
  ++inflight_;
  ++admitted_;
  ++queued_admits_;
  CountEvent(Counter::kGovAdmits);
  CountEvent(Counter::kGovQueuedAdmits);
  return Status::OK();
}

void AdmissionGovernor::Release() {
  if (options_.max_inflight == 0) return;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (inflight_ > 0) --inflight_;
  }
  cv_.notify_one();
}

void AdmissionGovernor::SetOptions(GovernorOptions options) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    options_ = options;
  }
  // Limits may have widened; let parked waiters re-check.
  cv_.notify_all();
}

GovernorStats AdmissionGovernor::Stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  GovernorStats s;
  s.admitted = admitted_;
  s.queued_admits = queued_admits_;
  s.shed = shed_;
  s.queue_timeouts = queue_timeouts_;
  s.inflight = inflight_;
  s.queue_depth = queued_;
  return s;
}

}  // namespace slidb
