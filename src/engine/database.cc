#include "src/engine/database.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/engine/checkpointer.h"

namespace slidb {

Database::Database(DatabaseOptions options) : options_(std::move(options)) {
  governor_.SetOptions(options_.governor);
  volume_ = std::make_unique<Volume>();
  buffer_pool_ = std::make_unique<BufferPool>(volume_.get(), options_.buffer);
  if (!options_.log_path.empty() && !options_.log.flush_sink) {
    const uint32_t cadence =
        options_.log_sync_each_flush ? options_.log.fsync_every_n_flushes : 0;
    Status st;
    if (options_.log_segment_bytes != 0) {
      std::unique_ptr<SegmentedLogDevice> device;
      st = SegmentedLogDevice::Open(options_.log_path, cadence,
                                    options_.log_segment_bytes, &device);
      seg_device_ = device.get();
      log_device_ = std::move(device);
    } else {
      std::unique_ptr<FileLogDevice> device;
      st = FileLogDevice::Open(options_.log_path, cadence, &device);
      log_device_ = std::move(device);
    }
    if (!st.ok()) {
      // Fail-stop: the caller configured a durable log; silently running
      // sink-less would ack commits that exist nowhere but RAM.
      std::fprintf(stderr, "slidb: cannot open log device %s (%s)\n",
                   options_.log_path.c_str(), st.ToString().c_str());
      std::abort();
    }
    AttachLogDevice(&options_.log, log_device_.get());
  }
  log_manager_ = std::make_unique<LogManager>(options_.log);
  lock_manager_ = std::make_unique<LockManager>(options_.lock);
  txn_manager_ = std::make_unique<TransactionManager>(
      lock_manager_.get(), log_manager_.get(), options_.txn);
  checkpointer_ = std::make_unique<Checkpointer>(
      this, CheckpointerOptions{options_.checkpoint_interval_ms});
  checkpointer_->Start();
}

Database::~Database() {
  // Member destruction order handles the rest; stop the background thread
  // explicitly first so no pass is mid-flight while managers tear down.
  if (checkpointer_) checkpointer_->Stop();
}

Status Database::CheckpointNow(Lsn* redo_start_out) {
  return checkpointer_->CheckpointNow(redo_start_out);
}

Status Database::Recover(const std::string& path, RecoveryReport* report) {
  std::vector<uint8_t> stream;
  Lsn base = 0;
  if (options_.log_segment_bytes != 0) {
    SLIDB_RETURN_NOT_OK(SegmentedLogDevice::ReadLog(path, &stream, &base));
  } else {
    SLIDB_RETURN_NOT_OK(FileLogDevice::ReadFile(path, &stream));
  }
  return RecoverFromStream(std::move(stream), report, base);
}

Status Database::RecoverFromStream(std::vector<uint8_t> stream,
                                   RecoveryReport* report, Lsn base_lsn) {
  RecoveryManager recovery(std::move(stream), base_lsn);
  recovery.Scan();
  // Losers are rolled back through their logged before-images; each undo
  // step is re-logged into the NEW log as a compensation record (kClr), so
  // a crash DURING undo replays the already-compensated prefix and then
  // re-runs the remaining undo — idempotent because before-image
  // restoration is absolute, not incremental.
  const ClrSink sink = [this](uint64_t loser, LogRecordType redo_type,
                              const uint8_t* payload, uint32_t len,
                              Lsn undo_of_lsn) {
    std::vector<uint8_t> buf(sizeof(ClrPayload) + len);
    ClrPayload clr{};
    clr.redo_type = static_cast<uint8_t>(redo_type);
    clr.undo_of_lsn = undo_of_lsn;
    std::memcpy(buf.data(), &clr, sizeof(clr));
    if (len != 0) std::memcpy(buf.data() + sizeof(clr), payload, len);
    log_manager_->Append(loser, LogRecordType::kClr, buf.data(),
                         static_cast<uint32_t>(buf.size()));
  };
  const Status st = recovery.Replay(&catalog_, sink);
  txn_manager_->EnsureNextTxnIdAbove(recovery.report().max_txn_id);
  if (st.ok()) {
    // Close each rolled-back loser with a kAbort in the new log: if we
    // crash again, the next recovery sees them as durably aborted and
    // skips their records (their CLRs already restored the state).
    Lsn last = 0;
    for (const uint64_t loser : recovery.LoserTxns()) {
      last = log_manager_->Append(loser, LogRecordType::kAbort, nullptr, 0);
    }
    if (last != 0) log_manager_->WaitDurable(last);
    if (recovery.report().records_replayed > 0 ||
        recovery.report().losers_rolled_back > 0 || seg_device_ != nullptr) {
      // OPENING CHECKPOINT: the recovered state exists nowhere in the new
      // log (redo was applied directly to storage), so without an anchor a
      // SECOND crash would recover only post-recovery transactions. A
      // checkpoint pass images the recovered state and hardens it before
      // traffic starts. Segmented mode runs it even over an empty stream so
      // the new generation materializes on the flusher thread before it is
      // marked authoritative below.
      SLIDB_RETURN_NOT_OK(checkpointer_->CheckpointNow());
    }
    if (seg_device_ != nullptr) {
      // Flip the new generation live (and drop the old one) only now that
      // it provably carries the recovered state. Also correct for an empty
      // previous log: there is nothing to lose.
      SLIDB_RETURN_NOT_OK(seg_device_->MarkGenerationAuthoritative());
    }
  }
  if (report != nullptr) *report = recovery.report();
  return st;
}

TableId Database::CreateTable(const std::string& name) {
  return catalog_.AddTable(name, std::make_unique<HeapFile>(buffer_pool_.get()));
}

IndexId Database::CreateIndex(TableId table, const std::string& name,
                              IndexKind kind, bool unique) {
  return catalog_.AddIndex(table, name, kind, unique);
}

std::unique_ptr<AgentContext> Database::CreateAgent(uint64_t seed) {
  const uint32_t id =
      static_cast<uint32_t>(agent_ids_.fetch_add(1, std::memory_order_relaxed));
  return std::make_unique<AgentContext>(id, seed);
}

Transaction* Database::Begin(AgentContext* agent) {
  return txn_manager_->Begin(agent);
}

Status Database::Commit(AgentContext* agent) {
  const Status st = txn_manager_->Commit(agent);
  FinishAdmission(agent);
  return st;
}

void Database::Abort(AgentContext* agent) {
  txn_manager_->Abort(agent);
  FinishAdmission(agent);
}

Status Database::AdmitTxn(AgentContext* agent) {
  if (!governor_.enabled()) return Status::OK();
  const Status st = governor_.Admit(agent->txn_deadline_ns());
  if (st.ok()) agent->set_holds_admission(true);
  return st;
}

void Database::FinishAdmission(AgentContext* agent) {
  if (!agent->holds_admission()) return;
  agent->set_holds_admission(false);
  governor_.Release();
}

Status Database::LockRow(AgentContext* agent, TableId table, Rid rid,
                         LockMode mode) {
  LockClient* c = &agent->txn().lock_client();
  if (!options_.row_locking) {
    // Coarse granularity: S/X on the whole table.
    const LockMode table_mode =
        (mode == LockMode::kS) ? LockMode::kS : LockMode::kX;
    return lock_manager_->Lock(c, LockId::Table(options_.db_id, table),
                               table_mode);
  }
  return lock_manager_->Lock(
      c, LockId::Row(options_.db_id, table, rid.page_no, rid.slot), mode);
}

Status Database::Insert(AgentContext* agent, TableId table,
                        std::span<const uint8_t> rec, Rid* rid) {
  // Announce write intent on the table before touching pages.
  LockClient* c = &agent->txn().lock_client();
  if (options_.row_locking) {
    SLIDB_RETURN_NOT_OK(lock_manager_->Lock(
        c, LockId::Table(options_.db_id, table), LockMode::kIX));
  }
  HeapFile* heap = catalog_.table(table).heap.get();
  SLIDB_RETURN_NOT_OK(heap->Insert(rec, rid));
  // The row becomes properly visible only through indexes, which are
  // populated after this X lock is held (see header note).
  const Status lock_st = LockRow(agent, table, *rid, LockMode::kX);
  if (!lock_st.ok()) {
    heap->Delete(*rid);
    return lock_st;
  }
  txn_manager_->LogHeapOp(agent, LogRecordType::kInsert, table, *rid,
                          /*before=*/{}, rec);
  const Rid undo_rid = *rid;
  agent->txn().AddUndo([heap, undo_rid] { heap->Delete(undo_rid); });
  return Status::OK();
}

Status Database::Read(AgentContext* agent, TableId table, Rid rid, void* buf,
                      size_t len) {
  SLIDB_RETURN_NOT_OK(LockRow(agent, table, rid, LockMode::kS));
  return catalog_.table(table).heap->ReadInto(rid, buf, len);
}

Status Database::ReadString(AgentContext* agent, TableId table, Rid rid,
                            std::string* out) {
  SLIDB_RETURN_NOT_OK(LockRow(agent, table, rid, LockMode::kS));
  return catalog_.table(table).heap->Read(rid, out);
}

Status Database::Update(AgentContext* agent, TableId table, Rid rid,
                        std::span<const uint8_t> rec) {
  SLIDB_RETURN_NOT_OK(LockRow(agent, table, rid, LockMode::kX));
  HeapFile* heap = catalog_.table(table).heap.get();
  // Capture the before-image: it feeds the in-memory undo lambda AND rides
  // the redo record, so the restart undo pass can roll a loser back.
  std::string before;
  SLIDB_RETURN_NOT_OK(heap->Read(rid, &before));
  SLIDB_RETURN_NOT_OK(heap->Update(rid, rec));
  txn_manager_->LogHeapOp(
      agent, LogRecordType::kUpdate, table, rid,
      {reinterpret_cast<const uint8_t*>(before.data()), before.size()}, rec);
  agent->txn().AddUndo([heap, rid, before = std::move(before)] {
    heap->Update(rid, {reinterpret_cast<const uint8_t*>(before.data()),
                       before.size()});
  });
  return Status::OK();
}

Status Database::Delete(AgentContext* agent, TableId table, Rid rid) {
  SLIDB_RETURN_NOT_OK(LockRow(agent, table, rid, LockMode::kX));
  HeapFile* heap = catalog_.table(table).heap.get();
  std::string before;
  SLIDB_RETURN_NOT_OK(heap->Read(rid, &before));
  SLIDB_RETURN_NOT_OK(heap->Delete(rid));
  txn_manager_->LogHeapOp(
      agent, LogRecordType::kDelete, table, rid,
      {reinterpret_cast<const uint8_t*>(before.data()), before.size()},
      /*image=*/{});
  agent->txn().AddUndo([this, table, rid, before = std::move(before)] {
    // Restore at the same RID so surviving index entries stay valid.
    HeapFile* h = catalog_.table(table).heap.get();
    PageGuard guard;
    if (buffer_pool_
            ->FixPage(PageId{h->file_id(), rid.page_no}, /*exclusive=*/true,
                      &guard)
            .ok()) {
      SlottedPage::InsertAt(
          guard.page(), rid.slot,
          {reinterpret_cast<const uint8_t*>(before.data()), before.size()});
      guard.MarkDirty();
    }
  });
  return Status::OK();
}

Status Database::LockRowExclusive(AgentContext* agent, TableId table,
                                  Rid rid) {
  return LockRow(agent, table, rid, LockMode::kX);
}

Status Database::IndexInsert(AgentContext* agent, IndexId index, uint64_t key,
                             uint64_t value) {
  IndexInfo& info = catalog_.index(index);
  Status st = info.kind == IndexKind::kBTree
                  ? info.btree->Insert(key, value)
                  : info.hash->Insert(key, value);
  if (!st.ok()) return st;
  if (info.unique) {
    // Unique means one value per key: detect a concurrent/extra entry.
    std::vector<uint64_t> values;
    if (info.kind == IndexKind::kBTree) {
      info.btree->LookupAll(key, &values);
    } else {
      info.hash->LookupAll(key, &values);
    }
    if (values.size() > 1) {
      if (info.kind == IndexKind::kBTree) {
        info.btree->Remove(key, value);
      } else {
        info.hash->Remove(key, value);
      }
      return Status::KeyExists("unique index");
    }
  }
  txn_manager_->LogIndexOp(agent, LogRecordType::kIndexInsert, index, key,
                           value);
  IndexInfo* pinfo = &info;
  agent->txn().AddUndo([pinfo, key, value] {
    if (pinfo->kind == IndexKind::kBTree) {
      pinfo->btree->Remove(key, value);
    } else {
      pinfo->hash->Remove(key, value);
    }
  });
  return Status::OK();
}

Status Database::IndexRemove(AgentContext* agent, IndexId index, uint64_t key,
                             uint64_t value) {
  IndexInfo& info = catalog_.index(index);
  const Status st = info.kind == IndexKind::kBTree
                        ? info.btree->Remove(key, value)
                        : info.hash->Remove(key, value);
  if (!st.ok()) return st;
  txn_manager_->LogIndexOp(agent, LogRecordType::kIndexRemove, index, key,
                           value);
  IndexInfo* pinfo = &info;
  agent->txn().AddUndo([pinfo, key, value] {
    if (pinfo->kind == IndexKind::kBTree) {
      pinfo->btree->Insert(key, value);
    } else {
      pinfo->hash->Insert(key, value);
    }
  });
  return Status::OK();
}

Status Database::IndexLookup(IndexId index, uint64_t key,
                             uint64_t* value) const {
  const IndexInfo& info = catalog_.index(index);
  return info.kind == IndexKind::kBTree ? info.btree->Lookup(key, value)
                                        : info.hash->Lookup(key, value);
}

void Database::IndexLookupAll(IndexId index, uint64_t key,
                              std::vector<uint64_t>* values) const {
  const IndexInfo& info = catalog_.index(index);
  if (info.kind == IndexKind::kBTree) {
    info.btree->LookupAll(key, values);
  } else {
    info.hash->LookupAll(key, values);
  }
}

void Database::IndexScan(IndexId index, uint64_t lo, uint64_t hi,
                         const std::function<bool(uint64_t, uint64_t)>& fn)
    const {
  const IndexInfo& info = catalog_.index(index);
  if (info.kind == IndexKind::kBTree) info.btree->Scan(lo, hi, fn);
}

void Database::IndexScanReverse(
    IndexId index, uint64_t lo, uint64_t hi,
    const std::function<bool(uint64_t, uint64_t)>& fn) const {
  const IndexInfo& info = catalog_.index(index);
  if (info.kind == IndexKind::kBTree) info.btree->ScanReverse(lo, hi, fn);
}

}  // namespace slidb
