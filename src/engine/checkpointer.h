// Fuzzy checkpointer: bounds restart cost by checkpoint cadence instead of
// log length. A checkpoint pass snapshots the committed heap and index
// state into the log itself — kCheckpointBegin, a stream of image records,
// then kCheckpointEnd carrying the active-transaction table — WITHOUT
// quiescing writers. Recovery anchored at the last complete checkpoint
// replays only [redo_start, end-of-log); segments below redo_start are
// recycled (SegmentedLogDevice::RecycleBelow).
//
// Why the images are sound without quiescing (the WAL-hole problem): a
// transaction's mutations apply to the heap BEFORE its records publish
// (staging buffers, PR "amortized log insertion"), so a naive page scan
// could photograph a mutation whose log record a crash then loses — state
// with no provenance and no before-image to undo it. The fix is the lock
// hierarchy itself: each row is imaged under a brief S lock. Under 2PL +
// ELR a writer holds the row's X lock until its records are PUBLISHED
// (commit-record insertion), so the S grant proves every mutation in the
// image has a published record below the image's own LSN — appended while
// the S lock is still held, so any later writer's records sort after it.
// Index images hold the table's S lock instead (blocks IX writers for the
// enumeration — a measured simplification; per-shard latching is a ROADMAP
// follow-up).
//
// The active-transaction table is snapshotted AFTER the begin record is
// appended: a txn with published records below begin-LSN is either still
// active (so its first_lsn widens redo_start) or its outcome record lands
// below the end record (so it is never a loser of this anchor). See
// CheckpointEndPayload.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "src/lock/lock_client.h"
#include "src/log/log_record.h"
#include "src/util/status.h"

namespace slidb {

class Database;

struct CheckpointerOptions {
  /// Background checkpoint cadence; 0 = no thread, CheckpointNow() only.
  uint32_t interval_ms = 0;
};

class Checkpointer {
 public:
  Checkpointer(Database* db, CheckpointerOptions options);
  ~Checkpointer();

  Checkpointer(const Checkpointer&) = delete;
  Checkpointer& operator=(const Checkpointer&) = delete;

  /// Run one full checkpoint pass synchronously: begin record, ATT
  /// snapshot, heap images under row S locks, index images under table S
  /// locks, end record, durable wait, then segment recycling below the new
  /// redo-start. Returns without writing the end record (harmless
  /// incomplete checkpoint) if an imaging lock cannot be acquired — an
  /// abandoned pass must not pretend to anchor recovery. Serialized
  /// against itself; safe alongside full-speed agent traffic.
  Status CheckpointNow(Lsn* redo_start_out = nullptr);

  /// Start/stop the background thread (no-ops when interval_ms == 0 /
  /// not running). Stop() is idempotent and joins the thread.
  void Start();
  void Stop();

  uint64_t completed() const {
    return completed_.load(std::memory_order_relaxed);
  }

 private:
  void ThreadMain();

  Database* db_;
  CheckpointerOptions options_;
  /// Lock identity for imaging S locks. The checkpointer holds at most one
  /// lock chain (row + its intents, or one table) at a time and never
  /// waits while holding another, so it cannot participate in a deadlock
  /// cycle.
  LockClient lock_client_;
  std::mutex pass_mu_;  ///< serializes concurrent CheckpointNow calls

  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::atomic<uint64_t> completed_{0};
};

}  // namespace slidb
