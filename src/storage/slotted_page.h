// Slotted-page record layout over raw 8 KiB pages: a header and slot
// directory grow from the front, record payloads from the back.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>

#include "src/buffer/page.h"
#include "src/util/status.h"

namespace slidb {

/// Record id: page number + slot within the page. Packs into a uint64 so
/// index values and lock ids can carry it.
struct Rid {
  uint64_t page_no = 0;
  uint16_t slot = 0;

  uint64_t ToU64() const { return (page_no << 16) | slot; }
  static Rid FromU64(uint64_t v) {
    return Rid{v >> 16, static_cast<uint16_t>(v & 0xffff)};
  }
  bool operator==(const Rid& o) const {
    return page_no == o.page_no && slot == o.slot;
  }
};

/// Static accessors over a Page laid out as a slotted page. All methods
/// assume the caller holds the appropriate buffer-pool content latch.
class SlottedPage {
 public:
  static constexpr uint16_t kInvalidOffset = 0xffff;

  struct Header {
    uint16_t slot_count;   ///< slots ever allocated (including holes)
    uint16_t live_count;   ///< slots currently holding a record
    uint16_t free_begin;   ///< first byte past the slot directory
    uint16_t free_end;     ///< first byte of the record heap
  };

  struct Slot {
    uint16_t offset;  ///< kInvalidOffset = hole
    uint16_t length;
  };

  static void Init(Page* page) {
    auto* h = HeaderOf(page);
    h->slot_count = 0;
    h->live_count = 0;
    h->free_begin = sizeof(Header);
    h->free_end = kPageSize;
  }

  /// Contiguous free bytes available for one more record (+ its slot).
  static size_t FreeSpace(const Page* page) {
    const auto* h = HeaderOf(page);
    const size_t gap = h->free_end - h->free_begin;
    return gap > sizeof(Slot) ? gap - sizeof(Slot) : 0;
  }

  static uint16_t SlotCount(const Page* page) {
    return HeaderOf(page)->slot_count;
  }
  static uint16_t LiveCount(const Page* page) {
    return HeaderOf(page)->live_count;
  }

  /// Largest record that can ever fit on an empty page.
  static constexpr size_t MaxRecordSize() {
    return kPageSize - sizeof(Header) - sizeof(Slot);
  }

  /// Insert a record; returns the slot index or -1 if it does not fit.
  /// Hole slots are deliberately NOT reused: a hole may belong to an
  /// uncommitted delete whose undo must re-occupy the same slot to keep its
  /// RID (and the index entries pointing at it) stable.
  static int Insert(Page* page, std::span<const uint8_t> rec) {
    auto* h = HeaderOf(page);
    if (static_cast<size_t>(h->free_end - h->free_begin) <
        rec.size() + sizeof(Slot)) {
      return -1;
    }
    const int slot_idx = h->slot_count++;
    h->free_begin += sizeof(Slot);
    h->free_end = static_cast<uint16_t>(h->free_end - rec.size());
    std::memcpy(page->bytes + h->free_end, rec.data(), rec.size());
    Slot* slots = SlotsOf(page);
    slots[slot_idx].offset = h->free_end;
    slots[slot_idx].length = static_cast<uint16_t>(rec.size());
    h->live_count++;
    return slot_idx;
  }

  /// Re-occupy a hole slot with a record (abort path: undo of a delete must
  /// restore the record under its original RID). Compacts if the record
  /// heap is fragmented. Fails if the slot is live or space is gone.
  static Status InsertAt(Page* page, uint16_t slot_idx,
                         std::span<const uint8_t> rec) {
    auto* h = HeaderOf(page);
    if (slot_idx >= h->slot_count) return Status::InvalidArgument("slot");
    Slot* slots = SlotsOf(page);
    if (slots[slot_idx].offset != kInvalidOffset) {
      return Status::KeyExists("slot is live");
    }
    if (static_cast<size_t>(h->free_end - h->free_begin) < rec.size()) {
      Compact(page);
      if (static_cast<size_t>(h->free_end - h->free_begin) < rec.size()) {
        return Status::Corruption("undo space lost");
      }
    }
    h->free_end = static_cast<uint16_t>(h->free_end - rec.size());
    std::memcpy(page->bytes + h->free_end, rec.data(), rec.size());
    slots = SlotsOf(page);
    slots[slot_idx].offset = h->free_end;
    slots[slot_idx].length = static_cast<uint16_t>(rec.size());
    h->live_count++;
    return Status::OK();
  }

  /// Redo-apply an insert at a specific slot (crash-recovery replay into
  /// fresh storage). Extends the slot directory with holes up to
  /// `slot_idx`, then places the record there. Replay re-executes the
  /// original insert sequence page by page, so space that sufficed at
  /// runtime suffices here; a shortfall means the log and the replay
  /// diverged.
  static Status RedoInsertAt(Page* page, uint16_t slot_idx,
                             std::span<const uint8_t> rec) {
    auto* h = HeaderOf(page);
    if (slot_idx >= h->slot_count) {
      // Extend the directory with holes up to the target slot; InsertAt
      // then handles placement (space check, compaction) like any other
      // hole re-occupation.
      const size_t new_slots = slot_idx + 1 - h->slot_count;
      if (static_cast<size_t>(h->free_end - h->free_begin) <
          new_slots * sizeof(Slot)) {
        return Status::Corruption("redo slot directory does not fit");
      }
      Slot* slots = SlotsOf(page);
      for (uint16_t i = h->slot_count; i <= slot_idx; ++i) {
        slots[i].offset = kInvalidOffset;
        slots[i].length = 0;
      }
      h->slot_count = static_cast<uint16_t>(slot_idx + 1);
      h->free_begin = static_cast<uint16_t>(h->free_begin +
                                            new_slots * sizeof(Slot));
    }
    return InsertAt(page, slot_idx, rec);
  }

  /// Read a record; returns an empty span for holes / bad slots.
  static std::span<const uint8_t> Get(const Page* page, uint16_t slot_idx) {
    const auto* h = HeaderOf(page);
    if (slot_idx >= h->slot_count) return {};
    const Slot& s = SlotsOf(page)[slot_idx];
    if (s.offset == kInvalidOffset) return {};
    return {page->bytes + s.offset, s.length};
  }

  /// Mutable view of a record (same-size in-place updates).
  static std::span<uint8_t> GetMutable(Page* page, uint16_t slot_idx) {
    const auto* h = HeaderOf(page);
    if (slot_idx >= h->slot_count) return {};
    const Slot& s = SlotsOf(page)[slot_idx];
    if (s.offset == kInvalidOffset) return {};
    return {page->bytes + s.offset, s.length};
  }

  /// Update in place. Only same-or-smaller sizes are supported (slidb
  /// workload records are fixed-size); growth returns NotSupported.
  static Status Update(Page* page, uint16_t slot_idx,
                       std::span<const uint8_t> rec) {
    auto* h = HeaderOf(page);
    if (slot_idx >= h->slot_count) return Status::InvalidArgument("slot");
    Slot& s = SlotsOf(page)[slot_idx];
    if (s.offset == kInvalidOffset) return Status::NotFound("hole");
    if (rec.size() > s.length) {
      return Status::NotSupported("record growth unsupported");
    }
    std::memcpy(page->bytes + s.offset, rec.data(), rec.size());
    s.length = static_cast<uint16_t>(rec.size());
    return Status::OK();
  }

  /// Delete a record, leaving a hole. Space is reclaimed by Compact().
  static Status Delete(Page* page, uint16_t slot_idx) {
    auto* h = HeaderOf(page);
    if (slot_idx >= h->slot_count) return Status::InvalidArgument("slot");
    Slot& s = SlotsOf(page)[slot_idx];
    if (s.offset == kInvalidOffset) return Status::NotFound("hole");
    s.offset = kInvalidOffset;
    s.length = 0;
    h->live_count--;
    return Status::OK();
  }

  /// Compact the record heap, squeezing out holes. Slot indexes (and
  /// therefore RIDs) are preserved.
  static void Compact(Page* page) {
    auto* h = HeaderOf(page);
    Slot* slots = SlotsOf(page);
    uint8_t tmp[kPageSize];
    uint16_t write = kPageSize;
    for (uint16_t i = 0; i < h->slot_count; ++i) {
      if (slots[i].offset == kInvalidOffset) continue;
      write = static_cast<uint16_t>(write - slots[i].length);
      std::memcpy(tmp + write, page->bytes + slots[i].offset, slots[i].length);
      slots[i].offset = write;
    }
    std::memcpy(page->bytes + write, tmp + write, kPageSize - write);
    h->free_end = write;
  }

  /// Iterate live records: fn(slot_idx, bytes).
  template <typename Fn>
  static void ForEach(const Page* page, Fn&& fn) {
    const auto* h = HeaderOf(page);
    const Slot* slots = SlotsOf(page);
    for (uint16_t i = 0; i < h->slot_count; ++i) {
      if (slots[i].offset == kInvalidOffset) continue;
      fn(i, std::span<const uint8_t>{page->bytes + slots[i].offset,
                                     slots[i].length});
    }
  }

 private:
  static Header* HeaderOf(Page* page) {
    return reinterpret_cast<Header*>(page->bytes);
  }
  static const Header* HeaderOf(const Page* page) {
    return reinterpret_cast<const Header*>(page->bytes);
  }
  static Slot* SlotsOf(Page* page) {
    return reinterpret_cast<Slot*>(page->bytes + sizeof(Header));
  }
  static const Slot* SlotsOf(const Page* page) {
    return reinterpret_cast<const Slot*>(page->bytes + sizeof(Header));
  }
};

}  // namespace slidb
