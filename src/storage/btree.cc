#include "src/storage/btree.h"

#include <cassert>

#include "src/stats/profiler.h"

namespace slidb {

// Entries are totally ordered by the (key, value) pair, which makes
// duplicate keys unambiguous: every entry has exactly one location.
struct BTree::Node {
  RwLatch latch;
  bool leaf = true;
  uint16_t count = 0;
  uint64_t keys[kFanout];
  uint64_t vals[kFanout];          // leaf: values; internal: separator tie-break
  Node* children[kFanout + 1];     // internal only
  Node* next = nullptr;            // leaf chain
};

namespace {

inline bool PairLess(uint64_t k1, uint64_t v1, uint64_t k2, uint64_t v2) {
  return k1 < k2 || (k1 == k2 && v1 < v2);
}

}  // namespace

/// First index with (keys[i], vals[i]) >= (k, v).
static int LowerBound(const BTree::Node* n, uint64_t k, uint64_t v);
/// First index with (keys[i], vals[i]) > (k, v).
static int UpperBound(const BTree::Node* n, uint64_t k, uint64_t v);

static int LowerBound(const BTree::Node* n, uint64_t k, uint64_t v) {
  int lo = 0, hi = n->count;
  while (lo < hi) {
    const int mid = (lo + hi) / 2;
    if (PairLess(n->keys[mid], n->vals[mid], k, v)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

static int UpperBound(const BTree::Node* n, uint64_t k, uint64_t v) {
  int lo = 0, hi = n->count;
  while (lo < hi) {
    const int mid = (lo + hi) / 2;
    if (PairLess(k, v, n->keys[mid], n->vals[mid])) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

BTree::BTree() {
  root_ = new Node();
  root_->leaf = true;
}

BTree::~BTree() { FreeTree(root_); }

void BTree::FreeTree(Node* n) {
  if (!n->leaf) {
    for (int i = 0; i <= n->count; ++i) FreeTree(n->children[i]);
  }
  delete n;
}

// ---- insert ----

namespace {

/// Insert into a non-full leaf at the sorted position. Returns false if the
/// exact (k, v) pair already exists.
bool LeafInsert(BTree::Node* leaf, uint64_t k, uint64_t v) {
  const int idx = LowerBound(leaf, k, v);
  if (idx < leaf->count && leaf->keys[idx] == k && leaf->vals[idx] == v) {
    return false;
  }
  for (int i = leaf->count; i > idx; --i) {
    leaf->keys[i] = leaf->keys[i - 1];
    leaf->vals[i] = leaf->vals[i - 1];
  }
  leaf->keys[idx] = k;
  leaf->vals[idx] = v;
  leaf->count++;
  return true;
}

/// Split a full child (X-latched) under its X-latched, non-full parent.
/// After the call, `child` holds the lower half and the new right sibling
/// (unlatched — not yet visible to anyone else) holds the upper half.
void SplitChild(BTree::Node* parent, int child_slot, BTree::Node* child) {
  auto* right = new BTree::Node();
  right->leaf = child->leaf;
  const int mid = child->count / 2;

  if (child->leaf) {
    // Copy upper half; the separator (first right pair) is copied up.
    right->count = static_cast<uint16_t>(child->count - mid);
    for (int i = 0; i < right->count; ++i) {
      right->keys[i] = child->keys[mid + i];
      right->vals[i] = child->vals[mid + i];
    }
    child->count = static_cast<uint16_t>(mid);
    right->next = child->next;
    child->next = right;
  } else {
    // Move upper separators/children; the middle separator moves up.
    right->count = static_cast<uint16_t>(child->count - mid - 1);
    for (int i = 0; i < right->count; ++i) {
      right->keys[i] = child->keys[mid + 1 + i];
      right->vals[i] = child->vals[mid + 1 + i];
    }
    for (int i = 0; i <= right->count; ++i) {
      right->children[i] = child->children[mid + 1 + i];
    }
    child->count = static_cast<uint16_t>(mid);
  }

  // Insert separator + right child into the parent at child_slot.
  const uint64_t sep_k =
      child->leaf ? right->keys[0] : child->keys[mid];
  const uint64_t sep_v =
      child->leaf ? right->vals[0] : child->vals[mid];
  for (int i = parent->count; i > child_slot; --i) {
    parent->keys[i] = parent->keys[i - 1];
    parent->vals[i] = parent->vals[i - 1];
    parent->children[i + 1] = parent->children[i];
  }
  parent->keys[child_slot] = sep_k;
  parent->vals[child_slot] = sep_v;
  parent->children[child_slot + 1] = right;
  parent->count++;
}

}  // namespace

Status BTree::Insert(uint64_t key, uint64_t value) {
  ScopedComponent comp(Component::kStorage);

  // Optimistic pass: shared-latch crabbing, exclusive only at the leaf.
  {
    root_latch_.AcquireShared();
    Node* node = root_;
    node->latch.AcquireShared();
    root_latch_.ReleaseShared();
    while (!node->leaf) {
      const int slot = UpperBound(node, key, value);
      Node* child = node->children[slot];
      if (child->leaf) {
        child->latch.AcquireExclusive();
        node->latch.ReleaseShared();
        if (child->count < kFanout) {
          const bool ok = LeafInsert(child, key, value);
          child->latch.ReleaseExclusive();
          if (!ok) return Status::KeyExists();
          size_.fetch_add(1, std::memory_order_relaxed);
          return Status::OK();
        }
        child->latch.ReleaseExclusive();
        goto pessimistic;  // leaf full: need splits
      }
      child->latch.AcquireShared();
      node->latch.ReleaseShared();
      node = child;
    }
    // Root is itself a leaf: drop the shared latch and take the (cheap for
    // tiny trees) pessimistic path below.
    node->latch.ReleaseShared();
  }

pessimistic:
  // Pessimistic pass: exclusive crabbing with preemptive splits.
  root_latch_.AcquireExclusive();
  Node* node = root_;
  node->latch.AcquireExclusive();
  if (node->count == kFanout) {
    auto* new_root = new Node();
    new_root->leaf = false;
    new_root->count = 0;
    new_root->children[0] = node;
    SplitChild(new_root, 0, node);
    root_ = new_root;
    // Keep descending from the new root; it is non-full by construction.
    new_root->latch.AcquireExclusive();
    const int slot = UpperBound(new_root, key, value);
    Node* child = new_root->children[slot];
    if (child != node) {
      node->latch.ReleaseExclusive();
      child->latch.AcquireExclusive();
    }
    new_root->latch.ReleaseExclusive();
    node = child;
  }
  root_latch_.ReleaseExclusive();

  while (!node->leaf) {
    const int slot = UpperBound(node, key, value);
    Node* child = node->children[slot];
    child->latch.AcquireExclusive();
    if (child->count == kFanout) {
      SplitChild(node, slot, child);
      // Which side does the entry go to?
      const int new_slot = UpperBound(node, key, value);
      if (new_slot != slot) {
        Node* other = node->children[new_slot];
        child->latch.ReleaseExclusive();
        other->latch.AcquireExclusive();
        child = other;
      }
    }
    node->latch.ReleaseExclusive();
    node = child;
  }

  const bool ok = LeafInsert(node, key, value);
  node->latch.ReleaseExclusive();
  if (!ok) return Status::KeyExists();
  size_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

// ---- remove ----

Status BTree::Remove(uint64_t key, uint64_t value) {
  ScopedComponent comp(Component::kStorage);
  // A node's `leaf` flag is immutable after construction, so it can be read
  // before the node latch: a leaf root is latched exclusively right away.
  root_latch_.AcquireShared();
  Node* node = root_;
  if (node->leaf) {
    node->latch.AcquireExclusive();
    root_latch_.ReleaseShared();
  } else {
    node->latch.AcquireShared();
    root_latch_.ReleaseShared();
    while (!node->leaf) {
      const int slot = UpperBound(node, key, value);
      Node* child = node->children[slot];
      if (child->leaf) {
        child->latch.AcquireExclusive();
      } else {
        child->latch.AcquireShared();
      }
      node->latch.ReleaseShared();
      node = child;
    }
  }

  const int idx = LowerBound(node, key, value);
  if (idx >= node->count || node->keys[idx] != key ||
      node->vals[idx] != value) {
    node->latch.ReleaseExclusive();
    return Status::NotFound();
  }
  for (int i = idx; i + 1 < node->count; ++i) {
    node->keys[i] = node->keys[i + 1];
    node->vals[i] = node->vals[i + 1];
  }
  node->count--;
  node->latch.ReleaseExclusive();
  size_.fetch_sub(1, std::memory_order_relaxed);
  return Status::OK();
}

// ---- lookup / scan ----

Status BTree::Lookup(uint64_t key, uint64_t* value) const {
  bool found = false;
  Scan(key, key, [&](uint64_t, uint64_t v) {
    *value = v;
    found = true;
    return false;  // first match only
  });
  return found ? Status::OK() : Status::NotFound();
}

void BTree::LookupAll(uint64_t key, std::vector<uint64_t>* values) const {
  values->clear();
  Scan(key, key, [&](uint64_t, uint64_t v) {
    values->push_back(v);
    return true;
  });
}

void BTree::Scan(
    uint64_t lo, uint64_t hi,
    const std::function<bool(uint64_t key, uint64_t value)>& fn) const {
  ScopedComponent comp(Component::kStorage);
  root_latch_.AcquireShared();
  Node* node = root_;
  node->latch.AcquireShared();
  root_latch_.ReleaseShared();

  while (!node->leaf) {
    // Route toward the smallest pair >= (lo, 0): children[i] holds pairs
    // below separator i, so descend at the first separator > (lo, 0).
    // A separator equal to (lo, 0) sends us right, where the pair lives.
    const int slot = UpperBound(node, lo, 0);
    Node* child = node->children[slot];
    child->latch.AcquireShared();
    node->latch.ReleaseShared();
    node = child;
  }

  int idx = LowerBound(node, lo, 0);
  for (;;) {
    if (idx >= node->count) {
      Node* next = node->next;
      if (next == nullptr) {
        node->latch.ReleaseShared();
        return;
      }
      next->latch.AcquireShared();
      node->latch.ReleaseShared();
      node = next;
      idx = 0;
      continue;
    }
    const uint64_t k = node->keys[idx];
    const uint64_t v = node->vals[idx];
    if (k > hi) {
      node->latch.ReleaseShared();
      return;
    }
    if (k >= lo) {
      if (!fn(k, v)) {
        node->latch.ReleaseShared();
        return;
      }
    }
    ++idx;
  }
}

void BTree::ScanReverse(
    uint64_t lo, uint64_t hi,
    const std::function<bool(uint64_t key, uint64_t value)>& fn) const {
  // Reverse iteration is implemented by buffering the (bounded) forward
  // range — slidb's reverse scans are short (newest order per customer /
  // district) so this stays cheap and avoids backward latch coupling.
  std::vector<std::pair<uint64_t, uint64_t>> buf;
  Scan(lo, hi, [&](uint64_t k, uint64_t v) {
    buf.emplace_back(k, v);
    return true;
  });
  for (auto it = buf.rbegin(); it != buf.rend(); ++it) {
    if (!fn(it->first, it->second)) return;
  }
}

// ---- validation ----

namespace {

bool CheckNode(const BTree::Node* n, bool is_root, uint64_t* first_k,
               uint64_t* first_v, uint64_t* last_k, uint64_t* last_v,
               uint64_t* leaf_entries) {
  // Sorted, unique (key,value) pairs within the node.
  for (int i = 1; i < n->count; ++i) {
    if (!PairLess(n->keys[i - 1], n->vals[i - 1], n->keys[i], n->vals[i])) {
      return false;
    }
  }
  // Lazy deletion may drain a leaf completely without unlinking it; only
  // internal nodes are required to stay populated.
  if (!is_root && n->count == 0 && !n->leaf) return false;
  if (n->leaf) {
    *leaf_entries += n->count;
    if (n->count > 0) {
      *first_k = n->keys[0];
      *first_v = n->vals[0];
      *last_k = n->keys[n->count - 1];
      *last_v = n->vals[n->count - 1];
    }
    return true;
  }
  // Children ranges must respect separators.
  for (int i = 0; i <= n->count; ++i) {
    uint64_t cfk = 0, cfv = 0, clk = 0, clv = 0;
    if (!CheckNode(n->children[i], false, &cfk, &cfv, &clk, &clv,
                   leaf_entries)) {
      return false;
    }
    if (n->children[i]->count == 0) continue;
    if (i > 0 &&
        PairLess(cfk, cfv, n->keys[i - 1], n->vals[i - 1])) {
      return false;  // child min below left separator
    }
    if (i < n->count && PairLess(n->keys[i], n->vals[i], clk, clv)) {
      return false;  // child max above right separator
    }
  }
  if (n->count > 0) {
    *first_k = n->keys[0];
    *first_v = n->vals[0];
    *last_k = n->keys[n->count - 1];
    *last_v = n->vals[n->count - 1];
  }
  return true;
}

}  // namespace

bool BTree::CheckInvariants() const {
  uint64_t fk = 0, fv = 0, lk = 0, lv = 0, leaf_entries = 0;
  if (!CheckNode(root_, true, &fk, &fv, &lk, &lv, &leaf_entries)) return false;
  return leaf_entries == size();
}

}  // namespace slidb
