#include "src/storage/btree.h"

#include <cassert>

#include "src/stats/counters.h"
#include "src/stats/profiler.h"

namespace slidb {

// Entries are totally ordered by the (key, value) pair, which makes
// duplicate keys unambiguous: every entry has exactly one location.
//
// Fields below the latches are relaxed atomics: optimistic readers race
// with writers by design (the OptLatch version check discards any torn
// read), and relaxed atomic accesses make that protocol defined behaviour
// instead of a data race — on x86 they compile to the same plain loads and
// stores the latched implementation used. Two discipline rules keep racy
// values harmless: a pointer read optimistically is dereferenced only
// after the node it was read from validates, and values (keys, counts)
// are acted on only after validation.
struct BTree::Node {
  OptLatch version;  // OLC mode: version-validated access
  RwLatch latch;     // crabbing mode: reader/writer coupling
  const bool leaf;
  std::atomic<uint16_t> count{0};
  std::atomic<uint64_t> keys[kFanout];
  std::atomic<uint64_t> vals[kFanout];     // leaf: values; internal: tie-break
  std::atomic<Node*> children[kFanout + 1];  // internal only
  std::atomic<Node*> next{nullptr};          // leaf chain

  explicit Node(bool is_leaf) : leaf(is_leaf) {
    for (auto& k : keys) k.store(0, std::memory_order_relaxed);
    for (auto& v : vals) v.store(0, std::memory_order_relaxed);
    for (auto& c : children) c.store(nullptr, std::memory_order_relaxed);
  }
};

namespace {

inline uint64_t Ld(const std::atomic<uint64_t>& a) {
  return a.load(std::memory_order_relaxed);
}
inline uint16_t Ld16(const std::atomic<uint16_t>& a) {
  return a.load(std::memory_order_relaxed);
}
inline BTree::Node* LdP(const std::atomic<BTree::Node*>& a) {
  return a.load(std::memory_order_relaxed);
}
inline void St(std::atomic<uint64_t>& a, uint64_t v) {
  a.store(v, std::memory_order_relaxed);
}
inline void St16(std::atomic<uint16_t>& a, uint16_t v) {
  a.store(v, std::memory_order_relaxed);
}
inline void StP(std::atomic<BTree::Node*>& a, BTree::Node* v) {
  a.store(v, std::memory_order_relaxed);
}

inline bool PairLess(uint64_t k1, uint64_t v1, uint64_t k2, uint64_t v2) {
  return k1 < k2 || (k1 == k2 && v1 < v2);
}

void FreeNodeDeleter(void* p) { delete static_cast<BTree::Node*>(p); }

/// Bounded exponential backoff between optimistic restarts: a failed
/// validation means a writer owns (or just finished with) the path, so
/// pausing before re-traversal prevents restart storms; under heavy
/// oversubscription we eventually yield so the writer can run at all.
class RestartBackoff {
 public:
  void Pause() {
    CountEvent(Counter::kBtreeRestarts);
    const int spins = 1 << (attempts_ < 6 ? attempts_ : 6);
    for (int i = 0; i < spins; ++i) latch_internal::CpuRelax();
    if (++attempts_ >= kYieldAfter) latch_internal::OsYield();
  }

 private:
  static constexpr int kYieldAfter = 8;
  int attempts_ = 0;
};

}  // namespace

/// First index with (keys[i], vals[i]) >= (k, v). Safe on racy snapshots:
/// any count value ever stored is <= kFanout, so reads stay in bounds and
/// a torn result is discarded by the caller's version check.
static int LowerBound(const BTree::Node* n, uint64_t k, uint64_t v) {
  int lo = 0, hi = Ld16(n->count);
  while (lo < hi) {
    const int mid = (lo + hi) / 2;
    if (PairLess(Ld(n->keys[mid]), Ld(n->vals[mid]), k, v)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// First index with (keys[i], vals[i]) > (k, v).
static int UpperBound(const BTree::Node* n, uint64_t k, uint64_t v) {
  int lo = 0, hi = Ld16(n->count);
  while (lo < hi) {
    const int mid = (lo + hi) / 2;
    if (PairLess(k, v, Ld(n->keys[mid]), Ld(n->vals[mid]))) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

BTree::BTree(BTreeOptions options)
    : options_(options), root_(new Node(/*is_leaf=*/true)) {}

BTree::~BTree() {
  FreeTree(root_.load(std::memory_order_acquire));
  // Leaves retired by Remove are no longer reachable from the root (the
  // epoch manager owns them); nudge the shared domain so long-lived
  // processes that churn trees do not accumulate pending retirees.
  EpochManager::Global().ReclaimSome();
}

void BTree::FreeTree(Node* n) {
  if (!n->leaf) {
    for (int i = 0; i <= Ld16(n->count); ++i) FreeTree(LdP(n->children[i]));
  }
  delete n;
}

// ---- shared structural helpers (caller holds exclusive access) ----

namespace {

/// Insert into a non-full leaf at the sorted position. Returns false if the
/// exact (k, v) pair already exists.
bool LeafInsert(BTree::Node* leaf, uint64_t k, uint64_t v) {
  const int idx = LowerBound(leaf, k, v);
  const int count = Ld16(leaf->count);
  if (idx < count && Ld(leaf->keys[idx]) == k && Ld(leaf->vals[idx]) == v) {
    return false;
  }
  for (int i = count; i > idx; --i) {
    St(leaf->keys[i], Ld(leaf->keys[i - 1]));
    St(leaf->vals[i], Ld(leaf->vals[i - 1]));
  }
  St(leaf->keys[idx], k);
  St(leaf->vals[idx], v);
  St16(leaf->count, static_cast<uint16_t>(count + 1));
  return true;
}

/// Split a full child (exclusively held) under its exclusively held,
/// non-full parent. After the call, `child` holds the lower half and the
/// new right sibling (fresh — not yet visible to anyone else) holds the
/// upper half. Optimistic readers mid-node see torn state and restart via
/// the version bump the caller performs on unlock.
void SplitChild(BTree::Node* parent, int child_slot, BTree::Node* child) {
  auto* right = new BTree::Node(child->leaf);
  const int child_count = Ld16(child->count);
  const int mid = child_count / 2;

  if (child->leaf) {
    // Copy upper half; the separator (first right pair) is copied up.
    const int rcount = child_count - mid;
    for (int i = 0; i < rcount; ++i) {
      St(right->keys[i], Ld(child->keys[mid + i]));
      St(right->vals[i], Ld(child->vals[mid + i]));
    }
    St16(right->count, static_cast<uint16_t>(rcount));
    St16(child->count, static_cast<uint16_t>(mid));
    StP(right->next, LdP(child->next));
    StP(child->next, right);
  } else {
    // Move upper separators/children; the middle separator moves up.
    const int rcount = child_count - mid - 1;
    for (int i = 0; i < rcount; ++i) {
      St(right->keys[i], Ld(child->keys[mid + 1 + i]));
      St(right->vals[i], Ld(child->vals[mid + 1 + i]));
    }
    for (int i = 0; i <= rcount; ++i) {
      StP(right->children[i], LdP(child->children[mid + 1 + i]));
    }
    St16(right->count, static_cast<uint16_t>(rcount));
    St16(child->count, static_cast<uint16_t>(mid));
  }

  // Insert separator + right child into the parent at child_slot.
  const uint64_t sep_k =
      child->leaf ? Ld(right->keys[0]) : Ld(child->keys[mid]);
  const uint64_t sep_v =
      child->leaf ? Ld(right->vals[0]) : Ld(child->vals[mid]);
  const int parent_count = Ld16(parent->count);
  for (int i = parent_count; i > child_slot; --i) {
    St(parent->keys[i], Ld(parent->keys[i - 1]));
    St(parent->vals[i], Ld(parent->vals[i - 1]));
    StP(parent->children[i + 1], LdP(parent->children[i]));
  }
  St(parent->keys[child_slot], sep_k);
  St(parent->vals[child_slot], sep_v);
  StP(parent->children[child_slot + 1], right);
  St16(parent->count, static_cast<uint16_t>(parent_count + 1));
}

}  // namespace

// ---- optimistic lock coupling ----
//
// Protocol (see DESIGN.md "Optimistic lock coupling"): traversals carry
// (node, version) pairs; a child pointer read from a node is dereferenced
// only after that node re-validates; writers upgrade exactly the nodes
// they mutate. Any validation failure unwinds to the restart label after a
// bounded backoff. Full nodes are split eagerly on the way down (as the
// crabbing pessimistic pass did), so a parent is never full when its child
// needs a separator.

bool BTree::SplitNodeOrRestart(Node* parent, uint64_t pv, Node* node,
                               uint64_t v, uint64_t key, uint64_t value) {
  bool rs = false;
  if (parent != nullptr) {
    parent->version.UpgradeToWriteLockOrRestart(pv, &rs);
    if (rs) return false;
  }
  node->version.UpgradeToWriteLockOrRestart(v, &rs);
  if (rs) {
    if (parent != nullptr) parent->version.WriteUnlock();
    return false;
  }
  if (parent == nullptr) {
    // Splitting the root: it must still *be* the root (both upgrades
    // validated, but the root pointer itself is not version-guarded).
    if (node != root_.load(std::memory_order_acquire)) {
      node->version.WriteUnlock();
      return false;
    }
    auto* new_root = new Node(/*is_leaf=*/false);
    StP(new_root->children[0], node);
    SplitChild(new_root, 0, node);
    root_.store(new_root, std::memory_order_release);
    node->version.WriteUnlock();
  } else {
    const int slot = UpperBound(parent, key, value);
    assert(LdP(parent->children[slot]) == node);
    SplitChild(parent, slot, node);
    node->version.WriteUnlock();
    parent->version.WriteUnlock();
  }
  return true;
}

Status BTree::InsertOptimistic(uint64_t key, uint64_t value) {
  EpochManager::Guard guard(EpochManager::Global());
  RestartBackoff backoff;

restart:
  bool rs = false;
  Node* node = root_.load(std::memory_order_acquire);
  uint64_t v = node->version.ReadLockOrRestart(&rs);
  if (rs || node != root_.load(std::memory_order_acquire)) {
    backoff.Pause();
    goto restart;
  }
  Node* parent = nullptr;
  uint64_t pv = 0;

  while (!node->leaf) {
    if (Ld16(node->count) == kFanout) {
      // Eager split keeps ancestors non-full. Lock parent then node; both
      // upgrades validate the traversal versions, so the split applies to
      // exactly the path we read. Either way, re-traverse.
      if (!SplitNodeOrRestart(parent, pv, node, v, key, value)) {
        backoff.Pause();
      }
      goto restart;
    }

    if (parent != nullptr) {
      parent->version.CheckOrRestart(pv, &rs);
      if (rs) {
        backoff.Pause();
        goto restart;
      }
    }
    parent = node;
    pv = v;
    const int slot = UpperBound(node, key, value);
    Node* child = LdP(node->children[slot]);
    node->version.CheckOrRestart(v, &rs);  // validates slot and child read
    if (rs) {
      backoff.Pause();
      goto restart;
    }
    node = child;
    v = node->version.ReadLockOrRestart(&rs);
    if (rs) {
      backoff.Pause();
      goto restart;
    }
  }

  if (Ld16(node->count) == kFanout) {
    // Leaf split: lock parent (if any) then leaf, split, re-traverse.
    if (!SplitNodeOrRestart(parent, pv, node, v, key, value)) {
      backoff.Pause();
    }
    goto restart;
  }

  node->version.UpgradeToWriteLockOrRestart(v, &rs);
  if (rs) {
    backoff.Pause();
    goto restart;
  }
  if (parent != nullptr) {
    parent->version.CheckOrRestart(pv, &rs);
    if (rs) {
      node->version.WriteUnlock();
      backoff.Pause();
      goto restart;
    }
  }
  const bool ok = LeafInsert(node, key, value);
  node->version.WriteUnlock();
  if (!ok) return Status::KeyExists();
  size_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status BTree::RemoveOptimistic(uint64_t key, uint64_t value) {
  EpochManager::Guard guard(EpochManager::Global());
  RestartBackoff backoff;

restart:
  bool rs = false;
  Node* node = root_.load(std::memory_order_acquire);
  uint64_t v = node->version.ReadLockOrRestart(&rs);
  if (rs || node != root_.load(std::memory_order_acquire)) {
    backoff.Pause();
    goto restart;
  }
  Node* parent = nullptr;
  uint64_t pv = 0;
  int node_slot = 0;  // node's slot within parent

  while (!node->leaf) {
    if (parent != nullptr) {
      parent->version.CheckOrRestart(pv, &rs);
      if (rs) {
        backoff.Pause();
        goto restart;
      }
    }
    parent = node;
    pv = v;
    node_slot = UpperBound(node, key, value);
    Node* child = LdP(node->children[node_slot]);
    node->version.CheckOrRestart(v, &rs);
    if (rs) {
      backoff.Pause();
      goto restart;
    }
    node = child;
    v = node->version.ReadLockOrRestart(&rs);
    if (rs) {
      backoff.Pause();
      goto restart;
    }
  }

  const int idx = LowerBound(node, key, value);
  const int count = Ld16(node->count);
  const bool present =
      idx < count && Ld(node->keys[idx]) == key && Ld(node->vals[idx]) == value;
  if (!present) {
    node->version.CheckOrRestart(v, &rs);
    if (rs) {
      backoff.Pause();
      goto restart;
    }
    return Status::NotFound();
  }

  // Unlink a leaf this remove drains, provided it has an in-parent left
  // sibling (the chain predecessor) and the parent keeps >= 1 separator.
  // The leftmost child and the root stay even when empty — a bounded,
  // documented leak matching the lazy-delete trade-off.
  const bool reclaim = options_.reclaim_empty_leaves && count == 1 &&
                       parent != nullptr && node_slot > 0 &&
                       Ld16(parent->count) >= 2;
  if (reclaim) {
    parent->version.UpgradeToWriteLockOrRestart(pv, &rs);
    if (rs) {
      backoff.Pause();
      goto restart;
    }
    node->version.UpgradeToWriteLockOrRestart(v, &rs);
    if (rs) {
      parent->version.WriteUnlock();
      backoff.Pause();
      goto restart;
    }
    // Both versions validated: the leaf still holds exactly our entry and
    // still sits at node_slot. The left sibling is pinned by the parent
    // lock (obsoleting it would require this parent), so a plain spinning
    // write lock cannot see it retire.
    Node* left = LdP(parent->children[node_slot - 1]);
    left->version.WriteLockOrRestart(&rs);
    if (rs) {  // unreachable (see above) — but restart rather than corrupt
      assert(false && "left sibling obsolete under locked parent");
      node->version.WriteUnlock();
      parent->version.WriteUnlock();
      backoff.Pause();
      goto restart;
    }
    assert(LdP(left->next) == node);
    St16(node->count, 0);
    StP(left->next, LdP(node->next));
    const int pc = Ld16(parent->count);
    for (int i = node_slot - 1; i + 1 < pc; ++i) {
      St(parent->keys[i], Ld(parent->keys[i + 1]));
      St(parent->vals[i], Ld(parent->vals[i + 1]));
    }
    for (int i = node_slot; i < pc; ++i) {
      StP(parent->children[i], LdP(parent->children[i + 1]));
    }
    St16(parent->count, static_cast<uint16_t>(pc - 1));
    left->version.WriteUnlock();
    parent->version.WriteUnlock();
    node->version.WriteUnlockObsolete();
    EpochManager::Global().Retire(node, FreeNodeDeleter);
    CountEvent(Counter::kBtreeLeafReclaims);
    size_.fetch_sub(1, std::memory_order_relaxed);
    return Status::OK();
  }

  node->version.UpgradeToWriteLockOrRestart(v, &rs);
  if (rs) {
    backoff.Pause();
    goto restart;
  }
  if (parent != nullptr) {
    parent->version.CheckOrRestart(pv, &rs);
    if (rs) {
      node->version.WriteUnlock();
      backoff.Pause();
      goto restart;
    }
  }
  for (int i = idx; i + 1 < count; ++i) {
    St(node->keys[i], Ld(node->keys[i + 1]));
    St(node->vals[i], Ld(node->vals[i + 1]));
  }
  St16(node->count, static_cast<uint16_t>(count - 1));
  node->version.WriteUnlock();
  size_.fetch_sub(1, std::memory_order_relaxed);
  return Status::OK();
}

void BTree::ScanOptimistic(
    uint64_t lo, uint64_t hi,
    const std::function<bool(uint64_t key, uint64_t value)>& fn) const {
  EpochManager::Guard guard(EpochManager::Global());
  RestartBackoff backoff;

  // Resume cursor: the next pair to deliver is >= (ck, cv). Each leaf's
  // batch is copied out and version-validated *before* any callback runs,
  // then the cursor advances past every delivered pair — so a restart
  // (version conflict or reclaimed leaf on the chain) re-descends without
  // duplicating or tearing entries.
  uint64_t ck = lo, cv = 0;
  uint64_t batch_k[kFanout];
  uint64_t batch_v[kFanout];

restart:
  bool rs = false;
  Node* node = root_.load(std::memory_order_acquire);
  uint64_t v = node->version.ReadLockOrRestart(&rs);
  if (rs || node != root_.load(std::memory_order_acquire)) {
    backoff.Pause();
    goto restart;
  }
  while (!node->leaf) {
    // Route toward the smallest pair >= (ck, cv): children[i] holds pairs
    // below separator i, so descend at the first separator > (ck, cv).
    const int slot = UpperBound(node, ck, cv);
    Node* child = LdP(node->children[slot]);
    node->version.CheckOrRestart(v, &rs);
    if (rs) {
      backoff.Pause();
      goto restart;
    }
    node = child;
    v = node->version.ReadLockOrRestart(&rs);
    if (rs) {
      backoff.Pause();
      goto restart;
    }
  }

  for (;;) {
    int n = 0;
    bool past_hi = false;
    const int count = Ld16(node->count);
    for (int idx = LowerBound(node, ck, cv); idx < count; ++idx) {
      const uint64_t k = Ld(node->keys[idx]);
      if (k > hi) {
        past_hi = true;
        break;
      }
      batch_k[n] = k;
      batch_v[n] = Ld(node->vals[idx]);
      ++n;
    }
    Node* next = LdP(node->next);
    node->version.CheckOrRestart(v, &rs);
    if (rs) {
      backoff.Pause();
      goto restart;
    }
    for (int i = 0; i < n; ++i) {
      if (!fn(batch_k[i], batch_v[i])) return;
      if (batch_v[i] != UINT64_MAX) {
        ck = batch_k[i];
        cv = batch_v[i] + 1;
      } else if (batch_k[i] != UINT64_MAX) {
        ck = batch_k[i] + 1;
        cv = 0;
      } else {
        return;  // delivered the maximum possible pair; nothing can follow
      }
    }
    if (past_hi || next == nullptr) return;
    node = next;
    v = node->version.ReadLockOrRestart(&rs);
    if (rs) {
      backoff.Pause();
      goto restart;
    }
  }
}

namespace {

/// Step a (key, value) cursor to the predecessor pair in the total order;
/// false when there is none ((0, 0) has no predecessor).
inline bool PairDecrement(uint64_t* k, uint64_t* v) {
  if (*v > 0) {
    --*v;
    return true;
  }
  if (*k == 0) return false;
  --*k;
  *v = UINT64_MAX;
  return true;
}

}  // namespace

void BTree::ScanReverseOptimistic(
    uint64_t lo, uint64_t hi,
    const std::function<bool(uint64_t key, uint64_t value)>& fn) const {
  EpochManager::Guard guard(EpochManager::Global());
  RestartBackoff backoff;

  // Reverse resume cursor: the next pair to deliver is <= (ck, cv). Leaves
  // only chain forward, so each chunk re-descends from the root toward the
  // cursor, surfaces that leaf's in-range entries from a kFanout stack
  // buffer, then steps the cursor below everything delivered — bounded
  // memory regardless of the range length, and the same no-duplicate /
  // no-tear restart discipline as the forward scan.
  uint64_t ck = hi, cv = UINT64_MAX;
  uint64_t batch_k[kFanout];
  uint64_t batch_v[kFanout];

restart:
  for (;;) {
    bool rs = false;
    Node* node = root_.load(std::memory_order_acquire);
    uint64_t v = node->version.ReadLockOrRestart(&rs);
    if (rs || node != root_.load(std::memory_order_acquire)) {
      backoff.Pause();
      goto restart;
    }
    // Innermost left fence of the descent: every pair in the reached leaf
    // is >= the fence, and — because separators are strict lower bounds of
    // their right subtree (split copies up the right sibling's first pair)
    // — the pair equal to the fence lives in this subtree too. So when the
    // leaf has nothing left in range, the predecessor hunt can jump the
    // cursor straight to PairDecrement(fence).
    bool has_fence = false;
    uint64_t fk = 0, fv = 0;
    while (!node->leaf) {
      // children[slot] spans [separator slot-1, separator slot): exactly
      // the subtree holding the largest pair <= (ck, cv), if it exists.
      const int slot = UpperBound(node, ck, cv);
      Node* child = LdP(node->children[slot]);
      uint64_t sk = 0, sv = 0;
      if (slot > 0) {
        sk = Ld(node->keys[slot - 1]);
        sv = Ld(node->vals[slot - 1]);
      }
      node->version.CheckOrRestart(v, &rs);  // validates slot, child, fence
      if (rs) {
        backoff.Pause();
        goto restart;
      }
      if (slot > 0) {
        has_fence = true;
        fk = sk;
        fv = sv;
      }
      node = child;
      v = node->version.ReadLockOrRestart(&rs);
      if (rs) {
        backoff.Pause();
        goto restart;
      }
    }

    int n = 0;
    const int last = UpperBound(node, ck, cv);  // first pair > cursor
    for (int idx = LowerBound(node, lo, 0); idx < last; ++idx) {
      batch_k[n] = Ld(node->keys[idx]);
      batch_v[n] = Ld(node->vals[idx]);
      ++n;
    }
    node->version.CheckOrRestart(v, &rs);
    if (rs) {
      backoff.Pause();
      goto restart;
    }
    for (int i = n - 1; i >= 0; --i) {
      if (!fn(batch_k[i], batch_v[i])) return;
    }

    uint64_t nk, nv;
    if (n > 0) {
      nk = batch_k[0];  // smallest delivered pair
      nv = batch_v[0];
    } else if (has_fence) {
      nk = fk;  // leaf exhausted below the cursor: resume left of the fence
      nv = fv;
    } else {
      return;  // leftmost leaf and nothing in range: scan complete
    }
    if (!PairDecrement(&nk, &nv) || nk < lo) return;
    ck = nk;
    cv = nv;
  }
}

// ---- legacy latch crabbing (BTreeOptions::SyncMode::kCrabbing) ----

Status BTree::InsertCrabbing(uint64_t key, uint64_t value) {
  // Optimistic pass: shared-latch crabbing, exclusive only at the leaf.
  {
    root_latch_.AcquireShared();
    Node* node = root_.load(std::memory_order_relaxed);
    node->latch.AcquireShared();
    root_latch_.ReleaseShared();
    while (!node->leaf) {
      const int slot = UpperBound(node, key, value);
      Node* child = LdP(node->children[slot]);
      if (child->leaf) {
        child->latch.AcquireExclusive();
        node->latch.ReleaseShared();
        if (Ld16(child->count) < kFanout) {
          const bool ok = LeafInsert(child, key, value);
          child->latch.ReleaseExclusive();
          if (!ok) return Status::KeyExists();
          size_.fetch_add(1, std::memory_order_relaxed);
          return Status::OK();
        }
        child->latch.ReleaseExclusive();
        goto pessimistic;  // leaf full: need splits
      }
      child->latch.AcquireShared();
      node->latch.ReleaseShared();
      node = child;
    }
    // Root is itself a leaf: drop the shared latch and take the (cheap for
    // tiny trees) pessimistic path below.
    node->latch.ReleaseShared();
  }

pessimistic:
  // Pessimistic pass: exclusive crabbing with preemptive splits.
  root_latch_.AcquireExclusive();
  Node* node = root_.load(std::memory_order_relaxed);
  node->latch.AcquireExclusive();
  if (Ld16(node->count) == kFanout) {
    auto* new_root = new Node(/*is_leaf=*/false);
    StP(new_root->children[0], node);
    SplitChild(new_root, 0, node);
    root_.store(new_root, std::memory_order_release);
    // Keep descending from the new root; it is non-full by construction.
    new_root->latch.AcquireExclusive();
    const int slot = UpperBound(new_root, key, value);
    Node* child = LdP(new_root->children[slot]);
    if (child != node) {
      node->latch.ReleaseExclusive();
      child->latch.AcquireExclusive();
    }
    new_root->latch.ReleaseExclusive();
    node = child;
  }
  root_latch_.ReleaseExclusive();

  while (!node->leaf) {
    const int slot = UpperBound(node, key, value);
    Node* child = LdP(node->children[slot]);
    child->latch.AcquireExclusive();
    if (Ld16(child->count) == kFanout) {
      SplitChild(node, slot, child);
      // Which side does the entry go to?
      const int new_slot = UpperBound(node, key, value);
      if (new_slot != slot) {
        Node* other = LdP(node->children[new_slot]);
        child->latch.ReleaseExclusive();
        other->latch.AcquireExclusive();
        child = other;
      }
    }
    node->latch.ReleaseExclusive();
    node = child;
  }

  const bool ok = LeafInsert(node, key, value);
  node->latch.ReleaseExclusive();
  if (!ok) return Status::KeyExists();
  size_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status BTree::RemoveCrabbing(uint64_t key, uint64_t value) {
  // A node's `leaf` flag is immutable after construction, so it can be read
  // before the node latch: a leaf root is latched exclusively right away.
  root_latch_.AcquireShared();
  Node* node = root_.load(std::memory_order_relaxed);
  if (node->leaf) {
    node->latch.AcquireExclusive();
    root_latch_.ReleaseShared();
  } else {
    node->latch.AcquireShared();
    root_latch_.ReleaseShared();
    while (!node->leaf) {
      const int slot = UpperBound(node, key, value);
      Node* child = LdP(node->children[slot]);
      if (child->leaf) {
        child->latch.AcquireExclusive();
      } else {
        child->latch.AcquireShared();
      }
      node->latch.ReleaseShared();
      node = child;
    }
  }

  const int idx = LowerBound(node, key, value);
  const int count = Ld16(node->count);
  if (idx >= count || Ld(node->keys[idx]) != key ||
      Ld(node->vals[idx]) != value) {
    node->latch.ReleaseExclusive();
    return Status::NotFound();
  }
  for (int i = idx; i + 1 < count; ++i) {
    St(node->keys[i], Ld(node->keys[i + 1]));
    St(node->vals[i], Ld(node->vals[i + 1]));
  }
  St16(node->count, static_cast<uint16_t>(count - 1));
  node->latch.ReleaseExclusive();
  size_.fetch_sub(1, std::memory_order_relaxed);
  return Status::OK();
}

void BTree::ScanCrabbing(
    uint64_t lo, uint64_t hi,
    const std::function<bool(uint64_t key, uint64_t value)>& fn) const {
  root_latch_.AcquireShared();
  Node* node = root_.load(std::memory_order_relaxed);
  node->latch.AcquireShared();
  root_latch_.ReleaseShared();

  while (!node->leaf) {
    // Route toward the smallest pair >= (lo, 0): children[i] holds pairs
    // below separator i, so descend at the first separator > (lo, 0).
    // A separator equal to (lo, 0) sends us right, where the pair lives.
    const int slot = UpperBound(node, lo, 0);
    Node* child = LdP(node->children[slot]);
    child->latch.AcquireShared();
    node->latch.ReleaseShared();
    node = child;
  }

  int idx = LowerBound(node, lo, 0);
  for (;;) {
    if (idx >= Ld16(node->count)) {
      Node* next = LdP(node->next);
      if (next == nullptr) {
        node->latch.ReleaseShared();
        return;
      }
      next->latch.AcquireShared();
      node->latch.ReleaseShared();
      node = next;
      idx = 0;
      continue;
    }
    const uint64_t k = Ld(node->keys[idx]);
    const uint64_t v = Ld(node->vals[idx]);
    if (k > hi) {
      node->latch.ReleaseShared();
      return;
    }
    if (k >= lo) {
      if (!fn(k, v)) {
        node->latch.ReleaseShared();
        return;
      }
    }
    ++idx;
  }
}

void BTree::ScanReverseCrabbing(
    uint64_t lo, uint64_t hi,
    const std::function<bool(uint64_t key, uint64_t value)>& fn) const {
  // Same chunked reverse walk as the OLC variant (see
  // ScanReverseOptimistic for the cursor / fence reasoning), but each
  // descent uses shared-latch coupling and the leaf batch is copied out
  // under the leaf latch, which is dropped before any callback runs.
  uint64_t ck = hi, cv = UINT64_MAX;
  uint64_t batch_k[kFanout];
  uint64_t batch_v[kFanout];

  for (;;) {
    root_latch_.AcquireShared();
    Node* node = root_.load(std::memory_order_relaxed);
    node->latch.AcquireShared();
    root_latch_.ReleaseShared();

    bool has_fence = false;
    uint64_t fk = 0, fv = 0;
    while (!node->leaf) {
      const int slot = UpperBound(node, ck, cv);
      if (slot > 0) {
        has_fence = true;
        fk = Ld(node->keys[slot - 1]);
        fv = Ld(node->vals[slot - 1]);
      }
      Node* child = LdP(node->children[slot]);
      child->latch.AcquireShared();
      node->latch.ReleaseShared();
      node = child;
    }

    int n = 0;
    const int last = UpperBound(node, ck, cv);
    for (int idx = LowerBound(node, lo, 0); idx < last; ++idx) {
      batch_k[n] = Ld(node->keys[idx]);
      batch_v[n] = Ld(node->vals[idx]);
      ++n;
    }
    node->latch.ReleaseShared();

    for (int i = n - 1; i >= 0; --i) {
      if (!fn(batch_k[i], batch_v[i])) return;
    }

    uint64_t nk, nv;
    if (n > 0) {
      nk = batch_k[0];
      nv = batch_v[0];
    } else if (has_fence) {
      nk = fk;
      nv = fv;
    } else {
      return;
    }
    if (!PairDecrement(&nk, &nv) || nk < lo) return;
    ck = nk;
    cv = nv;
  }
}

// ---- public dispatch ----

Status BTree::Insert(uint64_t key, uint64_t value) {
  ScopedComponent comp(Component::kStorage);
  return options_.sync_mode == BTreeOptions::SyncMode::kOptimistic
             ? InsertOptimistic(key, value)
             : InsertCrabbing(key, value);
}

Status BTree::Remove(uint64_t key, uint64_t value) {
  ScopedComponent comp(Component::kStorage);
  return options_.sync_mode == BTreeOptions::SyncMode::kOptimistic
             ? RemoveOptimistic(key, value)
             : RemoveCrabbing(key, value);
}

void BTree::Scan(
    uint64_t lo, uint64_t hi,
    const std::function<bool(uint64_t key, uint64_t value)>& fn) const {
  ScopedComponent comp(Component::kStorage);
  if (options_.sync_mode == BTreeOptions::SyncMode::kOptimistic) {
    ScanOptimistic(lo, hi, fn);
  } else {
    ScanCrabbing(lo, hi, fn);
  }
}

Status BTree::Lookup(uint64_t key, uint64_t* value) const {
  bool found = false;
  Scan(key, key, [&](uint64_t, uint64_t v) {
    *value = v;
    found = true;
    return false;  // first match only
  });
  return found ? Status::OK() : Status::NotFound();
}

void BTree::LookupAll(uint64_t key, std::vector<uint64_t>* values) const {
  values->clear();
  Scan(key, key, [&](uint64_t, uint64_t v) {
    values->push_back(v);
    return true;
  });
}

void BTree::ScanReverse(
    uint64_t lo, uint64_t hi,
    const std::function<bool(uint64_t key, uint64_t value)>& fn) const {
  ScopedComponent comp(Component::kStorage);
  if (options_.sync_mode == BTreeOptions::SyncMode::kOptimistic) {
    ScanReverseOptimistic(lo, hi, fn);
  } else {
    ScanReverseCrabbing(lo, hi, fn);
  }
}

// ---- validation ----

namespace {

bool CheckNode(const BTree::Node* n, bool is_root, uint64_t* first_k,
               uint64_t* first_v, uint64_t* last_k, uint64_t* last_v,
               uint64_t* leaf_entries) {
  const int count = Ld16(n->count);
  // Sorted, unique (key,value) pairs within the node.
  for (int i = 1; i < count; ++i) {
    if (!PairLess(Ld(n->keys[i - 1]), Ld(n->vals[i - 1]), Ld(n->keys[i]),
                  Ld(n->vals[i]))) {
      return false;
    }
  }
  // Lazy deletion may drain a leaf completely without unlinking it (no
  // in-parent left sibling); only internal nodes must stay populated.
  if (!is_root && count == 0 && !n->leaf) return false;
  if (n->leaf) {
    *leaf_entries += count;
    if (count > 0) {
      *first_k = Ld(n->keys[0]);
      *first_v = Ld(n->vals[0]);
      *last_k = Ld(n->keys[count - 1]);
      *last_v = Ld(n->vals[count - 1]);
    }
    return true;
  }
  // Children ranges must respect separators.
  for (int i = 0; i <= count; ++i) {
    uint64_t cfk = 0, cfv = 0, clk = 0, clv = 0;
    const BTree::Node* child = LdP(n->children[i]);
    if (!CheckNode(child, false, &cfk, &cfv, &clk, &clv, leaf_entries)) {
      return false;
    }
    if (Ld16(child->count) == 0) continue;
    if (i > 0 && PairLess(cfk, cfv, Ld(n->keys[i - 1]), Ld(n->vals[i - 1]))) {
      return false;  // child min below left separator
    }
    if (i < count && PairLess(Ld(n->keys[i]), Ld(n->vals[i]), clk, clv)) {
      return false;  // child max above right separator
    }
  }
  if (count > 0) {
    *first_k = Ld(n->keys[0]);
    *first_v = Ld(n->vals[0]);
    *last_k = Ld(n->keys[count - 1]);
    *last_v = Ld(n->vals[count - 1]);
  }
  return true;
}

}  // namespace

bool BTree::CheckInvariants() const {
  uint64_t fk = 0, fv = 0, lk = 0, lv = 0, leaf_entries = 0;
  if (!CheckNode(root_.load(std::memory_order_acquire), true, &fk, &fv, &lk,
                 &lv, &leaf_entries)) {
    return false;
  }
  return leaf_entries == size();
}

}  // namespace slidb
