// Heap files: unordered record storage over slotted pages with a free-space
// manager. The FSM is a single-latch structure on purpose — the paper
// observes TPC-C New Order shifting contention into Shore's free-space
// manager once SLI removes the lock-manager bottleneck, and slidb
// reproduces that effect.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "src/buffer/buffer_pool.h"
#include "src/storage/slotted_page.h"
#include "src/util/latch.h"
#include "src/util/status.h"

namespace slidb {

class HeapFile {
 public:
  /// `pool` must outlive the heap file. Creates the backing volume file.
  explicit HeapFile(BufferPool* pool);

  HeapFile(const HeapFile&) = delete;
  HeapFile& operator=(const HeapFile&) = delete;

  uint32_t file_id() const { return file_id_; }
  uint64_t page_count() const;

  Status Insert(std::span<const uint8_t> rec, Rid* rid);
  Status Read(Rid rid, std::string* out);

  /// Fixed-size read into a caller buffer (fast path for packed structs).
  Status ReadInto(Rid rid, void* buf, size_t len);

  Status Update(Rid rid, std::span<const uint8_t> rec);
  Status Delete(Rid rid);

  /// Full scan: fn(Rid, record bytes) under the page's shared latch.
  Status Scan(const std::function<void(Rid, std::span<const uint8_t>)>& fn);

  // ---- crash-recovery replay (RecoveryManager only) ----
  // Redo records address rows physically (page, slot); replay re-creates
  // the exact placement the crashed run produced, so RIDs embedded in
  // surviving index entries stay valid.

  /// Materialize `rec` at exactly `rid`, creating pages up to rid.page_no
  /// on demand.
  Status RedoInsert(Rid rid, std::span<const uint8_t> rec);
  Status RedoUpdate(Rid rid, std::span<const uint8_t> rec);
  Status RedoDelete(Rid rid);

 private:
  /// Pick (or create) a page with at least `need` contiguous free bytes.
  uint64_t FindPageWithSpace(size_t need);

  /// Update the FSM's estimate after an insert/delete.
  void UpdateFsm(uint64_t page_no, size_t free_bytes);

  BufferPool* pool_;
  uint32_t file_id_;

  // Free-space map: coarse per-page free-byte estimates. Single latch —
  // see file comment.
  SpinLatch fsm_latch_;
  std::vector<uint32_t> fsm_;
};

}  // namespace slidb
