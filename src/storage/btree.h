// In-memory B+-tree mapping uint64 keys to uint64 values (RIDs), with
// duplicate-key support (entries are ordered by (key, value)) and
// reader/writer latch crabbing. Used for primary and range-scanned
// secondary indexes (TPC-C needs ordered access: next order id, newest
// order per customer, last 20 orders per district).
//
// Deletes are lazy: entries are removed in place but nodes never merge —
// acceptable for OLTP workloads whose tables only grow or churn in place,
// and documented as a trade-off in DESIGN.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/util/latch.h"
#include "src/util/status.h"

namespace slidb {

class BTree {
 public:
  static constexpr int kFanout = 64;  ///< max entries per node

  BTree();
  ~BTree();

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  /// Insert (key, value). Duplicate (key, value) pairs are rejected with
  /// KeyExists; duplicate keys with distinct values are allowed.
  Status Insert(uint64_t key, uint64_t value);

  /// Remove the exact (key, value) entry.
  Status Remove(uint64_t key, uint64_t value);

  /// First value for `key` (smallest value among duplicates).
  Status Lookup(uint64_t key, uint64_t* value) const;

  /// All values for `key`.
  void LookupAll(uint64_t key, std::vector<uint64_t>* values) const;

  /// Visit entries with lo <= key <= hi in (key, value) order; return false
  /// from `fn` to stop early.
  void Scan(uint64_t lo, uint64_t hi,
            const std::function<bool(uint64_t key, uint64_t value)>& fn) const;

  /// Visit entries in REVERSE order with lo <= key <= hi (newest-first
  /// scans, e.g. "most recent order"); return false to stop.
  void ScanReverse(
      uint64_t lo, uint64_t hi,
      const std::function<bool(uint64_t key, uint64_t value)>& fn) const;

  uint64_t size() const { return size_.load(std::memory_order_relaxed); }

  /// Validate structural invariants (test support): sortedness, fill, and
  /// leaf chain consistency. Returns false on violation.
  bool CheckInvariants() const;

  /// Node layout is public for the implementation file and white-box tests;
  /// treat as private elsewhere.
  struct Node;

 private:
  Node* root_;                 // guarded by root_latch_
  mutable RwLatch root_latch_; // protects the root pointer itself
  std::atomic<uint64_t> size_{0};

  void FreeTree(Node* n);
};

}  // namespace slidb
