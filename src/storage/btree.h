// In-memory B+-tree mapping uint64 keys to uint64 values (RIDs), with
// duplicate-key support (entries are ordered by (key, value)). Used for
// primary and range-scanned secondary indexes (TPC-C needs ordered access:
// next order id, newest order per customer, last 20 orders per district).
//
// Synchronization (default): optimistic lock coupling. Every node carries a
// versioned OptLatch; readers validate versions instead of acquiring shared
// latches, so the conflict-free read path performs no stores to shared node
// memory — the root's cache line stays in shared state across all cores
// instead of ping-ponging on a latch word. Writers traverse optimistically
// and upgrade to write locks only at the nodes they mutate, restarting on
// version conflict with bounded backoff. The legacy reader/writer latch
// crabbing protocol is kept behind BTreeOptions::sync_mode as the measured
// baseline (bench/micro_btree).
//
// Deletes are lazy: entries are removed in place and nodes never merge, but
// under OLC a leaf drained to empty is opportunistically unlinked and its
// memory reclaimed through the epoch manager (optimistic readers may still
// be inside it). See DESIGN.md "Optimistic lock coupling".
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/util/epoch.h"
#include "src/util/latch.h"
#include "src/util/status.h"

namespace slidb {

struct BTreeOptions {
  enum class SyncMode : uint8_t {
    kOptimistic,  ///< versioned OptLatch, write-free read path (default)
    kCrabbing,    ///< legacy reader/writer latch coupling (bench baseline)
  };
  SyncMode sync_mode = SyncMode::kOptimistic;

  /// Unlink and epoch-retire leaves drained to empty by Remove (OLC mode
  /// only; crabbing keeps the seed's fully-lazy behaviour).
  bool reclaim_empty_leaves = true;
};

class BTree {
 public:
  static constexpr int kFanout = 64;  ///< max entries per node

  explicit BTree(BTreeOptions options = {});
  ~BTree();

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  /// Insert (key, value). Duplicate (key, value) pairs are rejected with
  /// KeyExists; duplicate keys with distinct values are allowed.
  Status Insert(uint64_t key, uint64_t value);

  /// Remove the exact (key, value) entry.
  Status Remove(uint64_t key, uint64_t value);

  /// First value for `key` (smallest value among duplicates).
  Status Lookup(uint64_t key, uint64_t* value) const;

  /// All values for `key`.
  void LookupAll(uint64_t key, std::vector<uint64_t>* values) const;

  /// Visit entries with lo <= key <= hi in (key, value) order; return false
  /// from `fn` to stop early. Under OLC, entries are surfaced leaf-by-leaf:
  /// each leaf's batch is version-validated before any callback runs, and a
  /// restart resumes after the last delivered entry (no duplicates, no
  /// torn reads).
  void Scan(uint64_t lo, uint64_t hi,
            const std::function<bool(uint64_t key, uint64_t value)>& fn) const;

  /// Visit entries in REVERSE order with lo <= key <= hi (newest-first
  /// scans, e.g. "most recent order"); return false to stop. Bounded
  /// memory: entries are surfaced one leaf at a time through a kFanout-sized
  /// stack buffer (leaves have no back links, so each chunk re-descends from
  /// the root — O(log n) per leaf, O(1) space in the range length).
  void ScanReverse(
      uint64_t lo, uint64_t hi,
      const std::function<bool(uint64_t key, uint64_t value)>& fn) const;

  uint64_t size() const { return size_.load(std::memory_order_relaxed); }

  const BTreeOptions& options() const { return options_; }

  /// Validate structural invariants (test support; caller must be
  /// quiesced): sortedness, fill, and leaf chain consistency. Returns false
  /// on violation.
  bool CheckInvariants() const;

  /// Node layout is public for the implementation file and white-box tests;
  /// treat as private elsewhere.
  struct Node;

 private:
  BTreeOptions options_;
  std::atomic<Node*> root_;
  mutable RwLatch root_latch_;  // crabbing mode: protects the root pointer
  std::atomic<uint64_t> size_{0};

  // ---- optimistic lock coupling paths ----
  /// Lock `parent` (or the root pointer when parent == nullptr) and
  /// `node` via their traversal snapshots and split the full `node`.
  /// Returns true when the split happened (caller re-traverses), false on
  /// a version conflict (caller backs off); either way all locks are
  /// released.
  bool SplitNodeOrRestart(Node* parent, uint64_t pv, Node* node, uint64_t v,
                          uint64_t key, uint64_t value);
  Status InsertOptimistic(uint64_t key, uint64_t value);
  Status RemoveOptimistic(uint64_t key, uint64_t value);
  void ScanOptimistic(
      uint64_t lo, uint64_t hi,
      const std::function<bool(uint64_t key, uint64_t value)>& fn) const;
  void ScanReverseOptimistic(
      uint64_t lo, uint64_t hi,
      const std::function<bool(uint64_t key, uint64_t value)>& fn) const;

  // ---- legacy latch-crabbing paths (BTreeOptions::SyncMode::kCrabbing) ----
  Status InsertCrabbing(uint64_t key, uint64_t value);
  Status RemoveCrabbing(uint64_t key, uint64_t value);
  void ScanCrabbing(
      uint64_t lo, uint64_t hi,
      const std::function<bool(uint64_t key, uint64_t value)>& fn) const;
  void ScanReverseCrabbing(
      uint64_t lo, uint64_t hi,
      const std::function<bool(uint64_t key, uint64_t value)>& fn) const;

  void FreeTree(Node* n);
};

}  // namespace slidb
