#include "src/storage/hash_index.h"

#include <bit>

namespace slidb {

HashIndex::HashIndex(size_t shards) {
  shards = std::bit_ceil(shards < 1 ? size_t{1} : shards);
  shards_ = std::make_unique<CacheAligned<Shard>[]>(shards);
  shard_mask_ = shards - 1;
}

Status HashIndex::Insert(uint64_t key, uint64_t value) {
  Shard& s = ShardFor(key);
  SpinLatchGuard g(s.latch);
  auto [lo, hi] = s.map.equal_range(key);
  for (auto it = lo; it != hi; ++it) {
    if (it->second == value) return Status::KeyExists();
  }
  s.map.emplace(key, value);
  size_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status HashIndex::Remove(uint64_t key, uint64_t value) {
  Shard& s = ShardFor(key);
  SpinLatchGuard g(s.latch);
  auto [lo, hi] = s.map.equal_range(key);
  for (auto it = lo; it != hi; ++it) {
    if (it->second == value) {
      s.map.erase(it);
      size_.fetch_sub(1, std::memory_order_relaxed);
      return Status::OK();
    }
  }
  return Status::NotFound();
}

Status HashIndex::Lookup(uint64_t key, uint64_t* value) const {
  const Shard& s = ShardFor(key);
  SpinLatchGuard g(s.latch);
  auto it = s.map.find(key);
  if (it == s.map.end()) return Status::NotFound();
  *value = it->second;
  return Status::OK();
}

void HashIndex::LookupAll(uint64_t key, std::vector<uint64_t>* values) const {
  values->clear();
  const Shard& s = ShardFor(key);
  SpinLatchGuard g(s.latch);
  auto [lo, hi] = s.map.equal_range(key);
  for (auto it = lo; it != hi; ++it) values->push_back(it->second);
}

}  // namespace slidb
