#include "src/storage/hash_index.h"

#include <algorithm>
#include <bit>

#include "src/util/epoch.h"

namespace slidb {

namespace {

constexpr size_t kInitialBuckets = 16;
/// Grow when live nodes exceed buckets * this factor (mean chain length).
constexpr size_t kGrowLoadFactor = 2;

/// Bounded backoff between optimistic restarts (same discipline as the
/// B-tree read path: spin briefly, then yield under oversubscription).
void RestartBackoff(int attempt) {
  if (attempt < 8) {
    for (int i = 0; i < (1 << attempt); ++i) latch_internal::CpuRelax();
  } else {
    latch_internal::OsYield();
  }
}

}  // namespace

HashIndex::HashIndex(size_t shards) {
  shards = std::bit_ceil(shards < 1 ? size_t{1} : shards);
  shards_ = std::make_unique<CacheAligned<Shard>[]>(shards);
  shard_mask_ = shards - 1;
  for (size_t i = 0; i < shards; ++i) {
    shards_[i]->table.store(new Table(kInitialBuckets),
                            std::memory_order_relaxed);
  }
}

HashIndex::~HashIndex() {
  // Teardown is quiesced (no concurrent readers): free chains directly.
  // Nodes and tables already handed to the epoch manager are owned by it
  // and freed there.
  for (size_t i = 0; i <= shard_mask_; ++i) {
    Table* t = shards_[i]->table.load(std::memory_order_relaxed);
    for (size_t b = 0; b <= t->mask; ++b) {
      Node* n = t->slots[b].load(std::memory_order_relaxed);
      while (n != nullptr) {
        Node* next = n->next.load(std::memory_order_relaxed);
        delete n;
        n = next;
      }
    }
    delete t;
  }
}

void HashIndex::GrowLocked(Shard& s, Table* old_table) {
  // Relink every node into a table twice the size. Concurrent optimistic
  // readers may be traversing the old chains while we overwrite `next`
  // pointers; every such traversal stays finite (nodes only ever move from
  // an old chain to an already-built acyclic new chain) and is discarded by
  // version validation when the write lock releases. The old table object
  // is epoch-retired — a reader may still hold its bucket array.
  Table* grown = new Table((old_table->mask + 1) * 2);
  for (size_t b = 0; b <= old_table->mask; ++b) {
    Node* n = old_table->slots[b].load(std::memory_order_relaxed);
    while (n != nullptr) {
      Node* next = n->next.load(std::memory_order_relaxed);
      std::atomic<Node*>& slot = grown->slots[BucketFor(Mix(n->key), grown)];
      n->next.store(slot.load(std::memory_order_relaxed),
                    std::memory_order_release);
      slot.store(n, std::memory_order_release);
      n = next;
    }
  }
  s.table.store(grown, std::memory_order_release);
  EpochManager::Global().Retire(
      old_table, [](void* p) { delete static_cast<Table*>(p); });
}

Status HashIndex::Insert(uint64_t key, uint64_t value) {
  const uint64_t h = Mix(key);
  Shard& s = ShardFor(h);
  bool restart = false;
  s.latch.WriteLockOrRestart(&restart);  // shards are never obsolete
  Table* t = s.table.load(std::memory_order_relaxed);
  std::atomic<Node*>& slot = t->slots[BucketFor(h, t)];
  for (Node* n = slot.load(std::memory_order_relaxed); n != nullptr;
       n = n->next.load(std::memory_order_relaxed)) {
    if (n->key == key && n->value == value) {
      s.latch.WriteUnlock();
      return Status::KeyExists();
    }
  }
  Node* node = new Node{key, value};
  node->next.store(slot.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  // Publish fully initialized: readers reach the node only through this
  // release store (or a later one ordered after it).
  slot.store(node, std::memory_order_release);
  s.count.fetch_add(1, std::memory_order_relaxed);
  size_.fetch_add(1, std::memory_order_relaxed);
  // Grow until the *shared* shard occupancy meets the target, doubling as
  // many times as needed: a single doubling per insert lets a burst of
  // writers that all sampled a stale pre-grow count leave the shard far
  // past its load factor.
  while (s.count.load(std::memory_order_relaxed) >
         (t->mask + 1) * kGrowLoadFactor) {
    GrowLocked(s, t);
    t = s.table.load(std::memory_order_relaxed);
  }
  s.latch.WriteUnlock();
  return Status::OK();
}

Status HashIndex::Remove(uint64_t key, uint64_t value) {
  const uint64_t h = Mix(key);
  Shard& s = ShardFor(h);
  bool restart = false;
  s.latch.WriteLockOrRestart(&restart);
  Table* t = s.table.load(std::memory_order_relaxed);
  std::atomic<Node*>* link = &t->slots[BucketFor(h, t)];
  for (Node* n = link->load(std::memory_order_relaxed); n != nullptr;
       n = link->load(std::memory_order_relaxed)) {
    if (n->key == key && n->value == value) {
      // Unlink; the node stays intact (readers inside it keep a valid
      // `next`) and is freed only after its epoch grace period.
      link->store(n->next.load(std::memory_order_relaxed),
                  std::memory_order_release);
      s.count.fetch_sub(1, std::memory_order_relaxed);
      size_.fetch_sub(1, std::memory_order_relaxed);
      s.latch.WriteUnlock();
      EpochManager::Global().Retire(
          n, [](void* p) { delete static_cast<Node*>(p); });
      return Status::OK();
    }
    link = &n->next;
  }
  s.latch.WriteUnlock();
  return Status::NotFound();
}

void HashIndex::ForEach(
    const std::function<void(uint64_t key, uint64_t value)>& fn) {
  for (size_t i = 0; i <= shard_mask_; ++i) {
    Shard& s = *shards_[i];
    bool restart = false;
    s.latch.WriteLockOrRestart(&restart);  // shards are never obsolete
    Table* t = s.table.load(std::memory_order_relaxed);
    for (size_t b = 0; b <= t->mask; ++b) {
      for (Node* n = t->slots[b].load(std::memory_order_relaxed);
           n != nullptr; n = n->next.load(std::memory_order_relaxed)) {
        fn(n->key, n->value);
      }
    }
    s.latch.WriteUnlock();
  }
}

double HashIndex::MaxShardLoadFactor() const {
  double worst = 0.0;
  for (size_t i = 0; i <= shard_mask_; ++i) {
    const Shard& s = *shards_[i];
    const Table* t = s.table.load(std::memory_order_acquire);
    const double lf =
        static_cast<double>(s.count.load(std::memory_order_relaxed)) /
        static_cast<double>(t->mask + 1);
    worst = std::max(worst, lf);
  }
  return worst;
}

Status HashIndex::Lookup(uint64_t key, uint64_t* value) const {
  const uint64_t h = Mix(key);
  Shard& s = ShardFor(h);
  EpochManager::Guard guard(EpochManager::Global());
  for (int attempt = 0;; ++attempt) {
    bool restart = false;
    const uint64_t v = s.latch.ReadLockOrRestart(&restart);
    bool found = false;
    uint64_t out = 0;
    if (!restart) {
      const Table* t = s.table.load(std::memory_order_acquire);
      const Node* n =
          t->slots[BucketFor(h, t)].load(std::memory_order_acquire);
      while (n != nullptr) {
        if (n->key == key) {
          found = true;
          out = n->value;
          break;
        }
        n = n->next.load(std::memory_order_acquire);
      }
      s.latch.CheckOrRestart(v, &restart);
    }
    if (!restart) {
      if (!found) return Status::NotFound();
      *value = out;
      return Status::OK();
    }
    RestartBackoff(attempt);
  }
}

void HashIndex::LookupAll(uint64_t key, std::vector<uint64_t>* values) const {
  const uint64_t h = Mix(key);
  Shard& s = ShardFor(h);
  EpochManager::Guard guard(EpochManager::Global());
  for (int attempt = 0;; ++attempt) {
    values->clear();
    bool restart = false;
    const uint64_t v = s.latch.ReadLockOrRestart(&restart);
    if (!restart) {
      const Table* t = s.table.load(std::memory_order_acquire);
      const Node* n =
          t->slots[BucketFor(h, t)].load(std::memory_order_acquire);
      while (n != nullptr) {
        if (n->key == key) values->push_back(n->value);
        n = n->next.load(std::memory_order_acquire);
      }
      s.latch.CheckOrRestart(v, &restart);
    }
    if (!restart) return;
    RestartBackoff(attempt);
  }
}

}  // namespace slidb
