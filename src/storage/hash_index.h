// Sharded hash index: uint64 key → uint64 value multimap for exact-match
// secondary indexes (e.g. TM1 subscriber number → subscriber id).
//
// Reads are optimistic (same treatment as the B-tree's OLC rewrite): each
// shard carries an OptLatch whose version readers snapshot, traverse the
// bucket chains with acquire loads and zero shared-memory stores, then
// re-validate — a concurrent writer bumps the version and the reader
// restarts. Writers serialize per shard through the latch's write lock.
// Unlinked nodes and replaced bucket tables are freed through the global
// epoch manager (util/epoch.h): an optimistic reader may still be inside
// them, so memory is reclaimed only after its grace period.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/util/cacheline.h"
#include "src/util/latch.h"
#include "src/util/status.h"

namespace slidb {

class HashIndex {
 public:
  explicit HashIndex(size_t shards = 64);
  ~HashIndex();

  HashIndex(const HashIndex&) = delete;
  HashIndex& operator=(const HashIndex&) = delete;

  /// Insert (key, value). Rejects an exact duplicate pair with KeyExists.
  Status Insert(uint64_t key, uint64_t value);

  /// Remove the exact (key, value) pair.
  Status Remove(uint64_t key, uint64_t value);

  /// First value for key (unspecified which among duplicates).
  Status Lookup(uint64_t key, uint64_t* value) const;

  void LookupAll(uint64_t key, std::vector<uint64_t>* values) const;

  /// Visit every (key, value) pair, shard by shard, under each shard's
  /// write latch (stable view per shard; writers to that shard block for
  /// its walk). Order is unspecified. Added for checkpoint imaging, which
  /// additionally holds a table S lock so no 2PL writer mutates the index
  /// concurrently — the latch guards against non-transactional callers.
  void ForEach(const std::function<void(uint64_t key, uint64_t value)>& fn);

  uint64_t size() const { return size_.load(std::memory_order_relaxed); }

  /// Worst shard's live-nodes / buckets ratio (approximate: reads shared
  /// occupancy and the current table latch-free). Test / stats support for
  /// the grow policy: stays near the configured load-factor target no
  /// matter how inserts are distributed across writers.
  double MaxShardLoadFactor() const;

 private:
  /// Chain node. `key`/`value` are written only before publication (the
  /// release store linking the node), so optimistic readers that reached
  /// the node through an acquire load read them race-free; `next` is the
  /// only field mutated afterwards and is always accessed atomically.
  struct Node {
    uint64_t key;
    uint64_t value;
    std::atomic<Node*> next{nullptr};
  };

  /// Bucket array, swapped wholesale on growth (the old table is epoch-
  /// retired; readers caught mid-traversal fail version validation).
  struct Table {
    explicit Table(size_t buckets)
        : mask(buckets - 1),
          slots(std::make_unique<std::atomic<Node*>[]>(buckets)) {}
    const size_t mask;
    std::unique_ptr<std::atomic<Node*>[]> slots;
  };

  struct Shard {
    OptLatch latch;             ///< readers validate, writers lock exclusively
    std::atomic<Table*> table;  ///< current bucket array
    /// Live nodes in the shard. Atomic so the grow trigger (and the load-
    /// factor probe below) read the shared occupancy directly instead of a
    /// value that was only coherent for the writer that last held the
    /// latch; mutations still happen under the write latch.
    std::atomic<size_t> count{0};
  };

  static uint64_t Mix(uint64_t key) {
    uint64_t h = key;
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return h;
  }

  Shard& ShardFor(uint64_t h) const { return *shards_[h & shard_mask_]; }
  /// Bucket index inside a shard: the hash's high half, independent of the
  /// low bits that picked the shard.
  static size_t BucketFor(uint64_t h, const Table* t) {
    return static_cast<size_t>(h >> 32) & t->mask;
  }

  /// Double the shard's bucket table; caller holds the shard write lock.
  void GrowLocked(Shard& s, Table* old_table);

  std::unique_ptr<CacheAligned<Shard>[]> shards_;
  size_t shard_mask_;
  std::atomic<uint64_t> size_{0};
};

}  // namespace slidb
