// Sharded hash index: uint64 key → uint64 value multimap for exact-match
// secondary indexes (e.g. TM1 subscriber number → subscriber id).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/util/cacheline.h"
#include "src/util/latch.h"
#include "src/util/status.h"

namespace slidb {

class HashIndex {
 public:
  explicit HashIndex(size_t shards = 64);

  HashIndex(const HashIndex&) = delete;
  HashIndex& operator=(const HashIndex&) = delete;

  /// Insert (key, value). Rejects an exact duplicate pair with KeyExists.
  Status Insert(uint64_t key, uint64_t value);

  /// Remove the exact (key, value) pair.
  Status Remove(uint64_t key, uint64_t value);

  /// First value for key (unspecified which among duplicates).
  Status Lookup(uint64_t key, uint64_t* value) const;

  void LookupAll(uint64_t key, std::vector<uint64_t>* values) const;

  uint64_t size() const { return size_.load(std::memory_order_relaxed); }

 private:
  struct Shard {
    mutable SpinLatch latch;
    std::unordered_multimap<uint64_t, uint64_t> map;
  };

  Shard& ShardFor(uint64_t key) const {
    uint64_t h = key;
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return *shards_[h & shard_mask_];
  }

  std::unique_ptr<CacheAligned<Shard>[]> shards_;
  size_t shard_mask_;
  std::atomic<uint64_t> size_{0};
};

}  // namespace slidb
