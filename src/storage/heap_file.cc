#include "src/storage/heap_file.h"

#include <cstring>

#include "src/stats/profiler.h"

namespace slidb {

HeapFile::HeapFile(BufferPool* pool) : pool_(pool) {
  file_id_ = pool_->volume()->CreateFile();
}

uint64_t HeapFile::page_count() const {
  return pool_->volume()->PageCount(file_id_);
}

uint64_t HeapFile::FindPageWithSpace(size_t need) {
  SpinLatchGuard g(fsm_latch_);
  // Scan newest-first: appends cluster on recent pages, mirroring the
  // "roving hotspot" pattern the paper discusses (§4.4).
  const size_t n = fsm_.size();
  const size_t window = n < 16 ? n : 16;
  for (size_t i = 0; i < window; ++i) {
    const size_t idx = n - 1 - i;
    if (fsm_[idx] >= need + sizeof(SlottedPage::Slot)) {
      return idx;
    }
  }
  // No recent page fits: extend the file.
  g.Unlock();
  PageId id;
  PageGuard guard;
  const Status st = pool_->NewPage(file_id_, &id, &guard);
  if (!st.ok()) return UINT64_MAX;
  SlottedPage::Init(guard.page());
  guard.MarkDirty();
  const auto free_bytes =
      static_cast<uint32_t>(SlottedPage::FreeSpace(guard.page()));
  guard.Release();
  SpinLatchGuard g2(fsm_latch_);
  if (fsm_.size() <= id.page_no) fsm_.resize(id.page_no + 1, 0);
  fsm_[id.page_no] = free_bytes;
  return id.page_no;
}

void HeapFile::UpdateFsm(uint64_t page_no, size_t free_bytes) {
  SpinLatchGuard g(fsm_latch_);
  if (fsm_.size() <= page_no) fsm_.resize(page_no + 1, 0);
  fsm_[page_no] = static_cast<uint32_t>(free_bytes);
}

Status HeapFile::Insert(std::span<const uint8_t> rec, Rid* rid) {
  ScopedComponent comp(Component::kStorage);
  if (rec.size() > SlottedPage::MaxRecordSize()) {
    return Status::InvalidArgument("record too large");
  }
  for (int attempt = 0; attempt < 64; ++attempt) {
    const uint64_t page_no = FindPageWithSpace(rec.size());
    if (page_no == UINT64_MAX) return Status::IoError("allocation failed");
    PageGuard guard;
    SLIDB_RETURN_NOT_OK(
        pool_->FixPage(PageId{file_id_, page_no}, /*exclusive=*/true, &guard));
    const int slot = SlottedPage::Insert(guard.page(), rec);
    if (slot >= 0) {
      guard.MarkDirty();
      UpdateFsm(page_no, SlottedPage::FreeSpace(guard.page()));
      rid->page_no = page_no;
      rid->slot = static_cast<uint16_t>(slot);
      return Status::OK();
    }
    // Lost a race for the space; refresh the estimate and retry.
    UpdateFsm(page_no, SlottedPage::FreeSpace(guard.page()));
  }
  return Status::Busy("insert retries exhausted");
}

Status HeapFile::Read(Rid rid, std::string* out) {
  ScopedComponent comp(Component::kStorage);
  PageGuard guard;
  SLIDB_RETURN_NOT_OK(
      pool_->FixPage(PageId{file_id_, rid.page_no}, /*exclusive=*/false,
                     &guard));
  const auto rec = SlottedPage::Get(guard.page(), rid.slot);
  if (rec.empty()) return Status::NotFound("no record at rid");
  out->assign(reinterpret_cast<const char*>(rec.data()), rec.size());
  return Status::OK();
}

Status HeapFile::ReadInto(Rid rid, void* buf, size_t len) {
  ScopedComponent comp(Component::kStorage);
  PageGuard guard;
  SLIDB_RETURN_NOT_OK(
      pool_->FixPage(PageId{file_id_, rid.page_no}, /*exclusive=*/false,
                     &guard));
  const auto rec = SlottedPage::Get(guard.page(), rid.slot);
  if (rec.empty()) return Status::NotFound("no record at rid");
  if (rec.size() != len) return Status::InvalidArgument("size mismatch");
  std::memcpy(buf, rec.data(), len);
  return Status::OK();
}

Status HeapFile::Update(Rid rid, std::span<const uint8_t> rec) {
  ScopedComponent comp(Component::kStorage);
  PageGuard guard;
  SLIDB_RETURN_NOT_OK(
      pool_->FixPage(PageId{file_id_, rid.page_no}, /*exclusive=*/true,
                     &guard));
  SLIDB_RETURN_NOT_OK(SlottedPage::Update(guard.page(), rid.slot, rec));
  guard.MarkDirty();
  return Status::OK();
}

Status HeapFile::Delete(Rid rid) {
  ScopedComponent comp(Component::kStorage);
  PageGuard guard;
  SLIDB_RETURN_NOT_OK(
      pool_->FixPage(PageId{file_id_, rid.page_no}, /*exclusive=*/true,
                     &guard));
  SLIDB_RETURN_NOT_OK(SlottedPage::Delete(guard.page(), rid.slot));
  guard.MarkDirty();
  UpdateFsm(rid.page_no, SlottedPage::FreeSpace(guard.page()));
  return Status::OK();
}

Status HeapFile::RedoInsert(Rid rid, std::span<const uint8_t> rec) {
  ScopedComponent comp(Component::kStorage);
  // Extend the file up to the target page. Page numbers were allocated
  // sequentially during the original run, so replay fills any gap with
  // initialized (empty) pages and lands on the same numbering.
  while (page_count() <= rid.page_no) {
    PageId id;
    PageGuard guard;
    SLIDB_RETURN_NOT_OK(pool_->NewPage(file_id_, &id, &guard));
    SlottedPage::Init(guard.page());
    guard.MarkDirty();
    UpdateFsm(id.page_no, SlottedPage::FreeSpace(guard.page()));
  }
  PageGuard guard;
  SLIDB_RETURN_NOT_OK(
      pool_->FixPage(PageId{file_id_, rid.page_no}, /*exclusive=*/true,
                     &guard));
  SLIDB_RETURN_NOT_OK(SlottedPage::RedoInsertAt(guard.page(), rid.slot, rec));
  guard.MarkDirty();
  UpdateFsm(rid.page_no, SlottedPage::FreeSpace(guard.page()));
  return Status::OK();
}

Status HeapFile::RedoUpdate(Rid rid, std::span<const uint8_t> rec) {
  return Update(rid, rec);
}

Status HeapFile::RedoDelete(Rid rid) { return Delete(rid); }

Status HeapFile::Scan(
    const std::function<void(Rid, std::span<const uint8_t>)>& fn) {
  ScopedComponent comp(Component::kStorage);
  const uint64_t pages = page_count();
  for (uint64_t p = 0; p < pages; ++p) {
    PageGuard guard;
    SLIDB_RETURN_NOT_OK(
        pool_->FixPage(PageId{file_id_, p}, /*exclusive=*/false, &guard));
    SlottedPage::ForEach(guard.page(),
                         [&](uint16_t slot, std::span<const uint8_t> rec) {
                           fn(Rid{p, slot}, rec);
                         });
  }
  return Status::OK();
}

}  // namespace slidb
