// Contention-scenario engine: purpose-built skewed workloads that put the
// SLI machinery on the regime the paper designed it for (hot locks), plus a
// heat probe that reports what the HotTracker actually saw. Four scenarios:
//
//  * zipf-mix    — reads_per_txn scrambled-Zipf point accesses per txn with
//                  a write fraction; theta is the sweep knob (0 = uniform,
//                  1.2 = extreme skew).
//  * flash-sale  — every transaction reads one fixed hot item (the sale);
//                  a fraction buy (exclusive decrement). The single hottest
//                  lock possible.
//  * auction     — everyone watches the top item; a fraction outbid, which
//                  updates the item and appends a bid row.
//  * social-feed — a Zipf-popular author's row is read by every follower
//                  building a feed (fanout of uniform reads); the author
//                  occasionally posts (update). Read-mostly hot head.
#pragma once

#include <cstdint>
#include <memory>

#include "src/util/rng.h"
#include "src/workload/workload.h"

namespace slidb {

enum class ContentionScenario : uint8_t {
  kZipfMix,
  kFlashSale,
  kAuction,
  kSocialFeed,
};

inline const char* ContentionScenarioName(ContentionScenario s) {
  switch (s) {
    case ContentionScenario::kZipfMix: return "zipf_mix";
    case ContentionScenario::kFlashSale: return "flash_sale";
    case ContentionScenario::kAuction: return "auction";
    case ContentionScenario::kSocialFeed: return "social_feed";
  }
  return "?";
}

struct ContentionOptions {
  ContentionScenario scenario = ContentionScenario::kZipfMix;
  uint64_t num_items = 100'000;
  /// Zipf exponent for the popularity distribution (zipf-mix key choice,
  /// social-feed author choice, auction browse mix). 0 = uniform.
  double theta = 0.99;
  /// Point accesses per transaction (zipf-mix) / fanout (social-feed).
  uint32_t reads_per_txn = 8;
  /// Fraction of transactions that write their hot target.
  double write_fraction = 0.1;
};

/// Snapshot of per-head heat, aggregated over every live lock head.
/// `hot_heads` uses the 16-slot sliding window (can read zero after an idle
/// tail); `contended_heads` counts heads that were *ever* contended —
/// cumulative, so it is the stable signal for CI assertions.
struct ContentionHeatReport {
  uint64_t heads = 0;
  uint64_t hot_heads = 0;           ///< IsHot(hot_min_contended) right now
  uint64_t adaptive_hot_heads = 0;  ///< adaptive state machine currently on
  uint64_t contended_heads = 0;     ///< total_contended() > 0 (cumulative)
  uint64_t total_acquires = 0;
  uint64_t total_contended = 0;
  double contended_fraction = 0.0;  ///< total_contended / total_acquires
};

class ContentionWorkload : public Workload {
 public:
  explicit ContentionWorkload(ContentionOptions options = {});

  const char* name() const override;
  void Load(Database& db) override;
  Status RunOne(Database& db, AgentContext& agent) override;

  const ContentionOptions& options() const { return options_; }
  /// The fixed hot row's key (flash-sale / auction target; Zipf rank 1).
  uint64_t hot_key() const { return hot_key_; }

  /// Walk every live lock head and aggregate its HotTracker state. Call
  /// after RunWorkload returns (takes bucket + head latches briefly).
  static ContentionHeatReport MeasureHeat(Database& db);

 private:
  Status RunZipfMix(Database& db, AgentContext& agent);
  Status RunFlashSale(Database& db, AgentContext& agent);
  Status RunAuction(Database& db, AgentContext& agent);
  Status RunSocialFeed(Database& db, AgentContext& agent);

  Status ReadItem(Database& db, AgentContext& agent, uint64_t key);
  Status WriteItem(Database& db, AgentContext& agent, uint64_t key,
                   int64_t stock_delta);

  ContentionOptions options_;
  /// Shared across agent threads: Next() is const and takes the caller's
  /// Rng, so one generator serves every driver thread.
  ScrambledZipfGenerator zipf_;
  uint64_t hot_key_ = 0;
  TableId items_table_{}, bids_table_{};
  IndexId items_pk_{};
};

}  // namespace slidb
