#include "src/workload/tpcb.h"

#include "src/util/time_util.h"

namespace slidb {

namespace {

using tpcb::Account;
using tpcb::Branch;
using tpcb::History;
using tpcb::Teller;

template <typename T>
std::span<const uint8_t> AsBytes(const T& rec) {
  return {reinterpret_cast<const uint8_t*>(&rec), sizeof(T)};
}

#define TPCB_TRY(expr)            \
  do {                            \
    ::slidb::Status _st = (expr); \
    if (!_st.ok()) {              \
      db.Abort(&agent);           \
      return _st;                 \
    }                             \
  } while (0)

}  // namespace

void TpcbWorkload::Load(Database& db) {
  branch_table_ = db.CreateTable("branch");
  teller_table_ = db.CreateTable("teller");
  account_table_ = db.CreateTable("account");
  history_table_ = db.CreateTable("history");
  branch_pk_ = db.CreateIndex(branch_table_, "b_pk", IndexKind::kHash, true);
  teller_pk_ = db.CreateIndex(teller_table_, "t_pk", IndexKind::kHash, true);
  account_pk_ =
      db.CreateIndex(account_table_, "a_pk", IndexKind::kHash, true);

  auto loader = db.CreateAgent(/*seed=*/11);
  db.Begin(loader.get());
  for (uint32_t b = 0; b < options_.branches; ++b) {
    Branch branch{};
    branch.b_id = b;
    Rid rid;
    db.Insert(loader.get(), branch_table_, AsBytes(branch), &rid);
    db.IndexInsert(loader.get(), branch_pk_, b, rid.ToU64());
    for (uint32_t t = 0; t < options_.tellers_per_branch; ++t) {
      Teller teller{};
      teller.t_id = b * options_.tellers_per_branch + t;
      teller.b_id = b;
      Rid t_rid;
      db.Insert(loader.get(), teller_table_, AsBytes(teller), &t_rid);
      db.IndexInsert(loader.get(), teller_pk_, teller.t_id, t_rid.ToU64());
    }
  }
  db.Commit(loader.get());

  constexpr uint32_t kBatch = 2000;
  for (uint32_t b = 0; b < options_.branches; ++b) {
    for (uint32_t a0 = 0; a0 < options_.accounts_per_branch; a0 += kBatch) {
      db.Begin(loader.get());
      const uint32_t hi =
          std::min(a0 + kBatch, options_.accounts_per_branch);
      for (uint32_t a = a0; a < hi; ++a) {
        Account acct{};
        acct.a_id =
            static_cast<uint64_t>(b) * options_.accounts_per_branch + a;
        acct.b_id = b;
        Rid rid;
        db.Insert(loader.get(), account_table_, AsBytes(acct), &rid);
        db.IndexInsert(loader.get(), account_pk_, acct.a_id, rid.ToU64());
      }
      db.Commit(loader.get());
    }
  }
}

Status TpcbWorkload::RunOne(Database& db, AgentContext& agent) {
  Rng& rng = agent.rng();
  // Random teller; account 85% in the teller's branch, 15% anywhere.
  const uint32_t t_id = static_cast<uint32_t>(rng.Uniform(
      0, options_.branches * options_.tellers_per_branch - 1));
  const uint32_t b_id = t_id / options_.tellers_per_branch;
  uint64_t a_id;
  if (rng.Bernoulli(0.85) || options_.branches == 1) {
    a_id = static_cast<uint64_t>(b_id) * options_.accounts_per_branch +
           rng.Uniform(0, options_.accounts_per_branch - 1);
  } else {
    a_id = rng.Uniform(
        0, static_cast<uint64_t>(options_.branches) *
                   options_.accounts_per_branch - 1);
  }
  const int64_t delta = rng.UniformInt(-99999, 99999);

  db.Begin(&agent);

  // Account: read-modify-write, then report balance (spec: return it).
  uint64_t a_rid;
  TPCB_TRY(db.IndexLookup(account_pk_, a_id, &a_rid));
  Account acct;
  TPCB_TRY(db.LockRowExclusive(&agent, account_table_, Rid::FromU64(a_rid)));
  TPCB_TRY(db.Read(&agent, account_table_, Rid::FromU64(a_rid), &acct,
                   sizeof(acct)));
  acct.balance += delta;
  TPCB_TRY(
      db.Update(&agent, account_table_, Rid::FromU64(a_rid), AsBytes(acct)));

  // Teller.
  uint64_t t_rid;
  TPCB_TRY(db.IndexLookup(teller_pk_, t_id, &t_rid));
  Teller teller;
  TPCB_TRY(db.LockRowExclusive(&agent, teller_table_, Rid::FromU64(t_rid)));
  TPCB_TRY(db.Read(&agent, teller_table_, Rid::FromU64(t_rid), &teller,
                   sizeof(teller)));
  teller.balance += delta;
  TPCB_TRY(
      db.Update(&agent, teller_table_, Rid::FromU64(t_rid), AsBytes(teller)));

  // Branch (the contended row).
  uint64_t b_rid;
  TPCB_TRY(db.IndexLookup(branch_pk_, b_id, &b_rid));
  Branch branch;
  TPCB_TRY(db.LockRowExclusive(&agent, branch_table_, Rid::FromU64(b_rid)));
  TPCB_TRY(db.Read(&agent, branch_table_, Rid::FromU64(b_rid), &branch,
                   sizeof(branch)));
  branch.balance += delta;
  TPCB_TRY(
      db.Update(&agent, branch_table_, Rid::FromU64(b_rid), AsBytes(branch)));

  // History append.
  History h{};
  h.t_id = t_id;
  h.b_id = b_id;
  h.a_id = a_id;
  h.delta = delta;
  h.timestamp = NowMicros();
  Rid h_rid;
  TPCB_TRY(db.Insert(&agent, history_table_, AsBytes(h), &h_rid));

  return db.Commit(&agent);
}

bool TpcbWorkload::CheckBalanceInvariant(Database& db, AgentContext& agent,
                                         int64_t* account_total,
                                         int64_t* teller_total,
                                         int64_t* branch_total) {
  db.Begin(&agent);
  int64_t at = 0, tt = 0, bt = 0;
  for (uint32_t b = 0; b < options_.branches; ++b) {
    uint64_t rid;
    if (!db.IndexLookup(branch_pk_, b, &rid).ok()) return false;
    Branch branch;
    if (!db.Read(&agent, branch_table_, Rid::FromU64(rid), &branch,
                 sizeof(branch))
             .ok()) {
      db.Abort(&agent);
      return false;
    }
    bt += branch.balance;
  }
  const uint32_t tellers = options_.branches * options_.tellers_per_branch;
  for (uint32_t t = 0; t < tellers; ++t) {
    uint64_t rid;
    if (!db.IndexLookup(teller_pk_, t, &rid).ok()) return false;
    Teller teller;
    if (!db.Read(&agent, teller_table_, Rid::FromU64(rid), &teller,
                 sizeof(teller))
             .ok()) {
      db.Abort(&agent);
      return false;
    }
    tt += teller.balance;
  }
  const uint64_t accounts = static_cast<uint64_t>(options_.branches) *
                            options_.accounts_per_branch;
  for (uint64_t a = 0; a < accounts; ++a) {
    uint64_t rid;
    if (!db.IndexLookup(account_pk_, a, &rid).ok()) return false;
    Account acct;
    if (!db.Read(&agent, account_table_, Rid::FromU64(rid), &acct,
                 sizeof(acct))
             .ok()) {
      db.Abort(&agent);
      return false;
    }
    at += acct.balance;
  }
  db.Commit(&agent);
  *account_total = at;
  *teller_total = tt;
  *branch_total = bt;
  return at == tt && tt == bt;
}

}  // namespace slidb
