// TPC-C: order-entry OLTP over nine tables with the five standard
// transactions. Implements the paper's "small mix" (Payment / New Order /
// Order Status at 46.7/48.9/4.3) and the full mix (45/43/4/4/4), plus
// single-transaction modes for the per-transaction figures.
//
// Scaling (documented in DESIGN.md): warehouses are configurable (the paper
// used 300 on a 64-context box); customers per district and items default
// to 3000/10000 with the spec NURand skew.
#pragma once

#include <cstdint>

#include "src/workload/workload.h"

namespace slidb {

enum class TpccTxnType : uint8_t {
  kNewOrder = 0,
  kPayment,
  kOrderStatus,
  kDelivery,
  kStockLevel,
};

struct TpccOptions {
  uint32_t warehouses = 4;
  uint32_t districts_per_warehouse = 10;
  uint32_t customers_per_district = 3000;
  uint32_t items = 10'000;
  uint32_t initial_orders_per_district = 100;  // spec: 3000; scaled
};

namespace tpcc {

struct Warehouse {
  uint32_t w_id;
  int64_t ytd;
  float tax;
  char name[12];
  char city[16];
};

struct District {
  uint32_t w_id;
  uint32_t d_id;
  uint32_t next_o_id;
  int64_t ytd;
  float tax;
  char name[12];
};

struct Customer {
  uint32_t w_id;
  uint32_t d_id;
  uint32_t c_id;
  int64_t balance;       // cents
  int64_t ytd_payment;
  uint32_t payment_cnt;
  uint32_t delivery_cnt;
  char last[18];
  char first[18];
  char credit[2];        // "GC"/"BC"
  char data[64];         // scaled from the spec's 500B
};

struct History {
  uint32_t c_w_id, c_d_id, c_id;
  uint32_t w_id, d_id;
  int64_t amount;
  uint64_t date;
};

struct NewOrderRow {
  uint32_t w_id, d_id, o_id;
};

struct Order {
  uint32_t w_id, d_id, o_id;
  uint32_t c_id;
  uint32_t carrier_id;  // 0 = not delivered
  uint32_t ol_cnt;
  uint8_t all_local;
  uint64_t entry_d;
};

struct OrderLine {
  uint32_t w_id, d_id, o_id;
  uint32_t ol_number;
  uint32_t i_id;
  uint32_t supply_w_id;
  uint32_t quantity;
  int64_t amount;
  uint64_t delivery_d;  // 0 = pending
};

struct Item {
  uint32_t i_id;
  int64_t price;  // cents
  char name[24];
  char data[50];
};

struct Stock {
  uint32_t w_id;
  uint32_t i_id;
  uint32_t quantity;
  int64_t ytd;
  uint32_t order_cnt;
  uint32_t remote_cnt;
  char dist_info[24];
};

}  // namespace tpcc

class TpccWorkload : public Workload {
 public:
  enum class Mix : uint8_t {
    kFull,    ///< 45/43/4/4/4 (NewOrder/Payment/OrderStatus/Delivery/Stock)
    kSmall,   ///< Payment/NewOrder/OrderStatus at 46.7/48.9/4.3 (paper)
    kSingle,  ///< only `single_type`
  };

  explicit TpccWorkload(TpccOptions options = {}, Mix mix = Mix::kSmall,
                        TpccTxnType single_type = TpccTxnType::kPayment)
      : options_(options), mix_(mix), single_type_(single_type) {}

  const char* name() const override;
  void Load(Database& db) override;
  Status RunOne(Database& db, AgentContext& agent) override;

  Status NewOrder(Database& db, AgentContext& agent);
  Status Payment(Database& db, AgentContext& agent);
  Status OrderStatus(Database& db, AgentContext& agent);
  Status Delivery(Database& db, AgentContext& agent);
  Status StockLevel(Database& db, AgentContext& agent);

  const TpccOptions& options() const { return options_; }

  /// TPC-C consistency condition 1 (scaled): for every district,
  /// d_next_o_id - 1 equals the max order id in both ORDER and NEW-ORDER
  /// reachable ranges. Used by tests after concurrent runs.
  bool CheckConsistency(Database& db, AgentContext& agent);

 private:
  TpccTxnType PickType(Rng& rng) const;

  // Key encodings.
  uint64_t DistrictKey(uint32_t w, uint32_t d) const {
    return static_cast<uint64_t>(w) * 100 + d;
  }
  uint64_t CustomerKey(uint32_t w, uint32_t d, uint32_t c) const {
    return (DistrictKey(w, d) << 20) | c;
  }
  uint64_t CustomerNameKey(uint32_t w, uint32_t d, uint32_t name_hash) const {
    return (DistrictKey(w, d) << 20) | name_hash;
  }
  uint64_t OrderKey(uint32_t w, uint32_t d, uint32_t o) const {
    return (DistrictKey(w, d) << 32) | o;
  }
  uint64_t CustOrderKey(uint32_t w, uint32_t d, uint32_t c, uint32_t o) const {
    return (CustomerKey(w, d, c) << 24) | o;
  }
  uint64_t StockKey(uint32_t w, uint32_t i) const {
    return (static_cast<uint64_t>(w) << 24) | i;
  }

  uint32_t PickCustomerId(Rng& rng) const;
  uint32_t PickItemId(Rng& rng) const;
  /// 60%: by last name (returns c_id via name index); 40%: by id.
  Status ResolveCustomer(Database& db, AgentContext& agent, uint32_t w,
                         uint32_t d, uint64_t* rid_out,
                         tpcc::Customer* cust_out);

  TpccOptions options_;
  Mix mix_;
  TpccTxnType single_type_;

  TableId warehouse_t_{}, district_t_{}, customer_t_{}, history_t_{},
      neworder_t_{}, order_t_{}, orderline_t_{}, item_t_{}, stock_t_{};
  IndexId warehouse_pk_{}, district_pk_{}, customer_pk_{}, customer_name_{},
      neworder_pk_{}, order_pk_{}, cust_order_{}, orderline_idx_{}, item_pk_{},
      stock_pk_{};
};

/// TPC-C last-name syllable generator (spec clause 4.3.2.3).
void TpccLastName(uint32_t num, char out[18]);
/// 16-bit hash of a last name for the by-name index key.
uint32_t TpccNameHash(const char* name);

}  // namespace slidb
