#include "src/workload/contention.h"

#include <algorithm>

namespace slidb {

namespace {

/// One catalog row, shared by every scenario. `stock` doubles as the
/// flash-sale inventory and the auction's current price.
struct Item {
  uint64_t id;
  int64_t stock;
  int64_t version;
  char payload[40];
};

struct Bid {
  uint64_t item_id;
  uint64_t bidder;
  int64_t amount;
  char filler[24];
};

template <typename T>
std::span<const uint8_t> AsBytes(const T& rec) {
  return {reinterpret_cast<const uint8_t*>(&rec), sizeof(T)};
}

#define CONTENTION_TRY(expr)      \
  do {                            \
    ::slidb::Status _st = (expr); \
    if (!_st.ok()) {              \
      db.Abort(&agent);           \
      return _st;                 \
    }                             \
  } while (0)

}  // namespace

ContentionWorkload::ContentionWorkload(ContentionOptions options)
    : options_(options), zipf_(options.num_items, options.theta) {
  // Rank 1 is the hottest key under any theta; the scramble fixes which id
  // that is, so the single-row scenarios hammer a key that sits in the
  // middle of the tree like any other, not id 1 on the first leaf.
  hot_key_ = zipf_.Scramble(1);
}

const char* ContentionWorkload::name() const {
  return ContentionScenarioName(options_.scenario);
}

void ContentionWorkload::Load(Database& db) {
  items_table_ = db.CreateTable("items");
  bids_table_ = db.CreateTable("bids");
  items_pk_ = db.CreateIndex(items_table_, "items_pk", IndexKind::kHash, true);

  auto loader = db.CreateAgent(/*seed=*/17);
  constexpr uint64_t kBatch = 2000;
  for (uint64_t k0 = 1; k0 <= options_.num_items; k0 += kBatch) {
    db.Begin(loader.get());
    const uint64_t hi = std::min(k0 + kBatch - 1, options_.num_items);
    for (uint64_t k = k0; k <= hi; ++k) {
      Item item{};
      item.id = k;
      item.stock = 1'000'000;  // never sells out within a bench run
      Rid rid;
      db.Insert(loader.get(), items_table_, AsBytes(item), &rid);
      db.IndexInsert(loader.get(), items_pk_, k, rid.ToU64());
    }
    db.Commit(loader.get());
  }
}

Status ContentionWorkload::ReadItem(Database& db, AgentContext& agent,
                                    uint64_t key) {
  uint64_t rid;
  CONTENTION_TRY(db.IndexLookup(items_pk_, key, &rid));
  Item item;
  CONTENTION_TRY(
      db.Read(&agent, items_table_, Rid::FromU64(rid), &item, sizeof(item)));
  return Status::OK();
}

Status ContentionWorkload::WriteItem(Database& db, AgentContext& agent,
                                     uint64_t key, int64_t stock_delta) {
  uint64_t rid;
  CONTENTION_TRY(db.IndexLookup(items_pk_, key, &rid));
  Item item;
  CONTENTION_TRY(db.LockRowExclusive(&agent, items_table_, Rid::FromU64(rid)));
  CONTENTION_TRY(
      db.Read(&agent, items_table_, Rid::FromU64(rid), &item, sizeof(item)));
  item.stock += stock_delta;
  item.version += 1;
  CONTENTION_TRY(
      db.Update(&agent, items_table_, Rid::FromU64(rid), AsBytes(item)));
  return Status::OK();
}

Status ContentionWorkload::RunOne(Database& db, AgentContext& agent) {
  switch (options_.scenario) {
    case ContentionScenario::kZipfMix: return RunZipfMix(db, agent);
    case ContentionScenario::kFlashSale: return RunFlashSale(db, agent);
    case ContentionScenario::kAuction: return RunAuction(db, agent);
    case ContentionScenario::kSocialFeed: return RunSocialFeed(db, agent);
  }
  return Status::InvalidArgument("unknown scenario");
}

Status ContentionWorkload::RunZipfMix(Database& db, AgentContext& agent) {
  Rng& rng = agent.rng();
  // Plan the accesses up front: under heavy skew the same hot key is drawn
  // several times per transaction, and touching it S first then X later
  // creates symmetric upgrade deadlocks between agents — a deadlock storm
  // that measures the detector, not the lock-manager path this scenario
  // exists to stress. Deduplicate (strongest mode wins) and access in key
  // order so the only conflicts left are genuine hot-lock conflicts.
  struct Access {
    uint64_t key;
    bool write;
  };
  Access plan[64];
  uint32_t n = 0;
  const uint32_t draws = std::min<uint32_t>(options_.reads_per_txn, 64);
  for (uint32_t i = 0; i < draws; ++i) {
    const uint64_t key = zipf_.Next(rng);
    const bool write = rng.Bernoulli(options_.write_fraction);
    bool merged = false;
    for (uint32_t j = 0; j < n; ++j) {
      if (plan[j].key == key) {
        plan[j].write |= write;
        merged = true;
        break;
      }
    }
    if (!merged) plan[n++] = {key, write};
  }
  std::sort(plan, plan + n,
            [](const Access& a, const Access& b) { return a.key < b.key; });

  db.Begin(&agent);
  for (uint32_t i = 0; i < n; ++i) {
    if (plan[i].write) {
      CONTENTION_TRY(WriteItem(db, agent, plan[i].key, 0));
    } else {
      CONTENTION_TRY(ReadItem(db, agent, plan[i].key));
    }
  }
  return db.Commit(&agent);
}

Status ContentionWorkload::RunFlashSale(Database& db, AgentContext& agent) {
  Rng& rng = agent.rng();
  const bool buying = rng.Bernoulli(options_.write_fraction);
  db.Begin(&agent);
  if (buying) {
    CONTENTION_TRY(WriteItem(db, agent, hot_key_, -1));
  } else {
    CONTENTION_TRY(ReadItem(db, agent, hot_key_));  // check the sale price
  }
  // Browse the rest of the catalog while we are here.
  for (uint32_t i = 1; i < options_.reads_per_txn; ++i) {
    CONTENTION_TRY(ReadItem(db, agent, rng.Uniform(1, options_.num_items)));
  }
  return db.Commit(&agent);
}

Status ContentionWorkload::RunAuction(Database& db, AgentContext& agent) {
  Rng& rng = agent.rng();
  const bool outbid = rng.Bernoulli(options_.write_fraction);
  db.Begin(&agent);
  if (outbid) {
    // Raise the price and append the bid.
    CONTENTION_TRY(WriteItem(db, agent, hot_key_, 1));
    Bid bid{};
    bid.item_id = hot_key_;
    bid.bidder = rng.Next();
    Rid b_rid;
    CONTENTION_TRY(db.Insert(&agent, bids_table_, AsBytes(bid), &b_rid));
  } else {
    CONTENTION_TRY(ReadItem(db, agent, hot_key_));  // watch the auction
  }
  // Window-shop a few Zipf-popular items.
  for (uint32_t i = 1; i < options_.reads_per_txn; ++i) {
    CONTENTION_TRY(ReadItem(db, agent, zipf_.Next(rng)));
  }
  return db.Commit(&agent);
}

Status ContentionWorkload::RunSocialFeed(Database& db, AgentContext& agent) {
  Rng& rng = agent.rng();
  const uint64_t author = zipf_.Next(rng);
  if (rng.Bernoulli(options_.write_fraction)) {
    // The author posts: a short exclusive touch on a popular row.
    db.Begin(&agent);
    CONTENTION_TRY(WriteItem(db, agent, author, 0));
    return db.Commit(&agent);
  }
  // A follower builds their feed: the popular author's row plus a fanout of
  // uniform timeline rows.
  db.Begin(&agent);
  CONTENTION_TRY(ReadItem(db, agent, author));
  for (uint32_t i = 0; i < options_.reads_per_txn; ++i) {
    CONTENTION_TRY(ReadItem(db, agent, rng.Uniform(1, options_.num_items)));
  }
  return db.Commit(&agent);
}

ContentionHeatReport ContentionWorkload::MeasureHeat(Database& db) {
  ContentionHeatReport out;
  const uint32_t hot_min = db.lock_manager().options().hot_min_contended;
  db.lock_manager().table().ForEachHead([&](LockHead* h) {
    ++out.heads;
    if (h->hot.IsHot(hot_min)) ++out.hot_heads;
    if (h->hot.adaptive_hot()) ++out.adaptive_hot_heads;
    const uint64_t contended = h->hot.total_contended();
    if (contended > 0) ++out.contended_heads;
    out.total_acquires += h->hot.total_acquires();
    out.total_contended += contended;
  });
  if (out.total_acquires > 0) {
    out.contended_fraction = static_cast<double>(out.total_contended) /
                             static_cast<double>(out.total_acquires);
  }
  return out;
}

}  // namespace slidb
