// Benchmark driver: runs a workload on N agent threads with a warm-up and a
// timed measurement window, reproducing the paper's methodology (§5.2):
// spawn clients, let them start working, measure throughput over an
// interval, then stop them. "Hardware contexts utilized" maps to the agent
// thread count on this substrate.
//
// Two arrival models:
//  * Closed loop (default, offered_tps == 0): each agent issues the next
//    transaction the instant the previous one finishes — measures service
//    capacity, but can never express overload (the arrival rate adapts to
//    whatever the system sustains).
//  * Open loop (offered_tps > 0): Poisson arrivals at a configured offered
//    load, scheduled independently of completions; when the system falls
//    behind, the backlog — and therefore response time measured from the
//    SCHEDULED arrival — grows without bound. This is the regime where
//    deadlines, admission control, and shedding mean something.
#pragma once

#include <cstdint>

#include "src/stats/counters.h"
#include "src/stats/profiler.h"
#include "src/util/histogram.h"
#include "src/util/rng.h"
#include "src/workload/workload.h"

namespace slidb {

/// Retry discipline for retryable transaction failures (Status::retryable:
/// deadlock victims, lock/deadline timeouts, overload sheds): capped
/// exponential backoff with jitter and a per-transaction attempt budget.
struct RetryPolicy {
  /// Total attempts per transaction (first run included). 1 = no retries,
  /// the legacy behavior.
  uint32_t max_attempts = 1;
  /// First backoff; doubles per subsequent attempt. 0 = retry immediately.
  uint64_t backoff_base_us = 50;
  /// Ceiling for the exponential growth.
  uint64_t backoff_cap_us = 5'000;
  /// The computed backoff is scaled by a factor drawn uniformly from
  /// [1 - jitter, 1 + jitter], decorrelating retry storms.
  double jitter = 0.5;

  /// Backoff before attempt `attempt + 1` (i.e. after the attempt-th try
  /// failed; attempt >= 1), in nanoseconds.
  uint64_t BackoffNs(uint32_t attempt, Rng& rng) const;
};

struct DriverOptions {
  int num_agents = 4;
  double duration_s = 1.0;  ///< measurement window
  double warmup_s = 0.2;    ///< excluded from results
  uint64_t seed = 42;
  /// Nonzero: open-loop mode at this aggregate offered load (transactions
  /// per second across all agents), Poisson inter-arrivals per agent.
  double offered_tps = 0;
  /// Per-transaction response deadline, measured from the (scheduled)
  /// arrival; plumbed into AgentContext and from there into every engine
  /// blocking point. 0 = none.
  uint64_t txn_deadline_us = 0;
  /// Ask Database::AdmitTxn (the overload governor) for an in-flight token
  /// before each attempt; a shed counts as a retryable failure.
  bool use_governor = false;
  RetryPolicy retry;
};

struct DriverResult {
  double tps = 0;             ///< committed transactions / second
  double wall_s = 0;
  int num_agents = 0;
  uint64_t commits = 0;
  uint64_t user_aborts = 0;   ///< benchmark-specified failures
  uint64_t deadlock_aborts = 0;  ///< retryable engine aborts (deadlock,
                                 ///< timeout/deadline, overload shed)
  // -- overload / deadline accounting (measurement window) --
  uint64_t goodput_commits = 0;   ///< commits that met their deadline
  uint64_t deadline_misses = 0;   ///< commits that finished past it
  double goodput_tps = 0;         ///< goodput_commits / wall_s
  uint64_t retries = 0;           ///< re-submissions after retryable aborts
  uint64_t retries_exhausted = 0; ///< transactions dropped at the budget
  uint64_t gov_sheds = 0;         ///< admission-queue-full rejections
  uint64_t wait_depth_cancels = 0;///< hot-head wait-depth cancels
  uint64_t deadline_aborts = 0;   ///< commit-entry deadline aborts
  /// Work/contention breakdown over the measurement window only.
  ProfileSnapshot profile;
  /// Counter deltas over the measurement window only.
  CounterSet counters;
  /// Response time of COMMITTED transactions only (from scheduled arrival
  /// in open-loop mode, from dispatch in closed-loop mode).
  Histogram latency_ns;
  /// Response time of transactions whose final attempt failed — kept out of
  /// latency_ns so aborts can no longer skew the reported commit latency.
  Histogram abort_latency_ns;
  /// CPU seconds consumed (work + contention) / (wall * hardware threads),
  /// capped at 1. With thread oversubscription this saturates — matching
  /// the paper's "fully loaded" operating points.
  double cpu_utilization = 0;

  double UserAbortRate() const {
    const double total = static_cast<double>(commits + user_aborts);
    return total == 0 ? 0 : static_cast<double>(user_aborts) / total;
  }

  /// Fraction of finished transactions whose final attempt did not commit.
  double AbortRate() const {
    const double total =
        static_cast<double>(commits + user_aborts + deadlock_aborts);
    return total == 0
               ? 0
               : static_cast<double>(user_aborts + deadlock_aborts) / total;
  }
};

/// Run `workload` against `db` (already loaded) and measure.
/// SLI on/off is controlled by the database's lock-manager options
/// (Database::SetSliEnabled) before calling.
DriverResult RunWorkload(Database& db, Workload& workload,
                         const DriverOptions& options);

}  // namespace slidb
