// Benchmark driver: runs a workload on N agent threads with a warm-up and a
// timed measurement window, reproducing the paper's methodology (§5.2):
// spawn clients, let them start working, measure throughput over an
// interval, then stop them. "Hardware contexts utilized" maps to the agent
// thread count on this substrate.
#pragma once

#include <cstdint>

#include "src/stats/counters.h"
#include "src/stats/profiler.h"
#include "src/util/histogram.h"
#include "src/workload/workload.h"

namespace slidb {

struct DriverOptions {
  int num_agents = 4;
  double duration_s = 1.0;  ///< measurement window
  double warmup_s = 0.2;    ///< excluded from results
  uint64_t seed = 42;
};

struct DriverResult {
  double tps = 0;             ///< committed transactions / second
  double wall_s = 0;
  int num_agents = 0;
  uint64_t commits = 0;
  uint64_t user_aborts = 0;   ///< benchmark-specified failures
  uint64_t deadlock_aborts = 0;
  /// Work/contention breakdown over the measurement window only.
  ProfileSnapshot profile;
  /// Counter deltas over the measurement window only.
  CounterSet counters;
  Histogram latency_ns;
  /// CPU seconds consumed (work + contention) / (wall * hardware threads),
  /// capped at 1. With thread oversubscription this saturates — matching
  /// the paper's "fully loaded" operating points.
  double cpu_utilization = 0;

  double UserAbortRate() const {
    const double total = static_cast<double>(commits + user_aborts);
    return total == 0 ? 0 : static_cast<double>(user_aborts) / total;
  }
};

/// Run `workload` against `db` (already loaded) and measure.
/// SLI on/off is controlled by the database's lock-manager options
/// (Database::SetSliEnabled) before calling.
DriverResult RunWorkload(Database& db, Workload& workload,
                         const DriverOptions& options);

}  // namespace slidb
