#include "src/workload/tm1.h"

#include <cstring>

namespace slidb {

namespace {

using tm1::AccessInfo;
using tm1::CallForwarding;
using tm1::SpecialFacility;
using tm1::Subscriber;

template <typename T>
std::span<const uint8_t> AsBytes(const T& rec) {
  return {reinterpret_cast<const uint8_t*>(&rec), sizeof(T)};
}

// Index key encodings.
uint64_t AiKey(uint64_t s_id, uint8_t ai_type) {
  return s_id * 4 + (ai_type - 1);
}
uint64_t SfKey(uint64_t s_id, uint8_t sf_type) {
  return s_id * 4 + (sf_type - 1);
}
uint64_t CfKey(uint64_t s_id, uint8_t sf_type, uint8_t start_time) {
  return SfKey(s_id, sf_type) * 4 + start_time / 8;
}

void FillSubNbr(char (&out)[16], uint64_t s_id) {
  std::snprintf(out, sizeof(out), "%015llu",
                static_cast<unsigned long long>(s_id));
}

/// Abort the transaction and surface the engine failure (deadlock/timeout)
/// or the benchmark-specified failure (Aborted).
#define TM1_TRY(expr)                     \
  do {                                    \
    ::slidb::Status _st = (expr);         \
    if (!_st.ok()) {                      \
      db.Abort(&agent);                   \
      return _st.ForcesAbort()            \
                 ? _st                    \
                 : ::slidb::Status::Aborted(); \
    }                                     \
  } while (0)

#define TM1_USER_FAIL()          \
  do {                           \
    db.Abort(&agent);            \
    return Status::Aborted();    \
  } while (0)

}  // namespace

const char* Tm1Workload::name() const {
  switch (mix_) {
    case Mix::kFull: return "tm1-mix";
    case Mix::kForward: return "tm1-forward-mix";
    case Mix::kSingle:
      switch (single_type_) {
        case Tm1TxnType::kGetSubscriberData: return "tm1-getSub";
        case Tm1TxnType::kGetNewDestination: return "tm1-getDest";
        case Tm1TxnType::kGetAccessData: return "tm1-getAccess";
        case Tm1TxnType::kUpdateSubscriberData: return "tm1-updateSub";
        case Tm1TxnType::kUpdateLocation: return "tm1-updateLoc";
        case Tm1TxnType::kInsertCallForwarding: return "tm1-insertCF";
        case Tm1TxnType::kDeleteCallForwarding: return "tm1-deleteCF";
      }
  }
  return "tm1";
}

void Tm1Workload::Load(Database& db) {
  sub_table_ = db.CreateTable("subscriber");
  ai_table_ = db.CreateTable("access_info");
  sf_table_ = db.CreateTable("special_facility");
  cf_table_ = db.CreateTable("call_forwarding");
  sub_pk_ = db.CreateIndex(sub_table_, "sub_pk", IndexKind::kHash, true);
  sub_nbr_idx_ =
      db.CreateIndex(sub_table_, "sub_nbr", IndexKind::kHash, true);
  ai_pk_ = db.CreateIndex(ai_table_, "ai_pk", IndexKind::kHash, true);
  sf_pk_ = db.CreateIndex(sf_table_, "sf_pk", IndexKind::kHash, true);
  cf_pk_ = db.CreateIndex(cf_table_, "cf_pk", IndexKind::kBTree, true);

  auto loader = db.CreateAgent(/*seed=*/7);
  Rng& rng = loader->rng();

  // Batch rows per transaction to keep the loader's undo lists small.
  constexpr uint64_t kBatch = 500;
  for (uint64_t base = 1; base <= options_.subscribers; base += kBatch) {
    db.Begin(loader.get());
    const uint64_t end = std::min(base + kBatch - 1, options_.subscribers);
    for (uint64_t s = base; s <= end; ++s) {
      Subscriber sub{};
      sub.s_id = s;
      FillSubNbr(sub.sub_nbr, s);
      sub.bits = static_cast<uint16_t>(rng.Next());
      for (int i = 0; i < 10; ++i) {
        sub.hex[i] = static_cast<uint8_t>(rng.Uniform(0, 15));
        sub.byte2[i] = static_cast<uint8_t>(rng.Uniform(0, 255));
      }
      sub.msc_location = static_cast<uint32_t>(rng.Next());
      sub.vlr_location = static_cast<uint32_t>(rng.Next());
      Rid rid;
      db.Insert(loader.get(), sub_table_, AsBytes(sub), &rid);
      db.IndexInsert(loader.get(), sub_pk_, s, rid.ToU64());
      db.IndexInsert(loader.get(), sub_nbr_idx_, s, rid.ToU64());

      // 1..4 access-info rows (types 1..k).
      const uint8_t ai_count = static_cast<uint8_t>(rng.Uniform(1, 4));
      for (uint8_t t = 1; t <= ai_count; ++t) {
        AccessInfo ai{};
        ai.s_id = s;
        ai.ai_type = t;
        ai.data1 = static_cast<uint8_t>(rng.Uniform(0, 255));
        ai.data2 = static_cast<uint8_t>(rng.Uniform(0, 255));
        std::memcpy(ai.data3, rng.AlphaString(3, 3).c_str(), 4);
        std::memcpy(ai.data4, rng.AlphaString(5, 5).c_str(), 6);
        Rid ai_rid;
        db.Insert(loader.get(), ai_table_, AsBytes(ai), &ai_rid);
        db.IndexInsert(loader.get(), ai_pk_, AiKey(s, t), ai_rid.ToU64());
      }

      // 1..4 special-facility rows; each with 0..3 call forwardings.
      const uint8_t sf_count = static_cast<uint8_t>(rng.Uniform(1, 4));
      for (uint8_t t = 1; t <= sf_count; ++t) {
        SpecialFacility sf{};
        sf.s_id = s;
        sf.sf_type = t;
        sf.is_active = rng.Bernoulli(0.85) ? 1 : 0;
        sf.error_cntrl = static_cast<uint8_t>(rng.Uniform(0, 255));
        sf.data_a = static_cast<uint8_t>(rng.Uniform(0, 255));
        std::memcpy(sf.data_b, rng.AlphaString(5, 5).c_str(), 6);
        Rid sf_rid;
        db.Insert(loader.get(), sf_table_, AsBytes(sf), &sf_rid);
        db.IndexInsert(loader.get(), sf_pk_, SfKey(s, t), sf_rid.ToU64());

        // Each of the three start-time slots is occupied with p = 1/2
        // (mean 1.5 forwardings per facility, uniformly over slots). This
        // reproduces the spec's insert/delete failure rate of 68.75%.
        static constexpr uint8_t kStartTimes[3] = {0, 8, 16};
        for (uint8_t c = 0; c < 3; ++c) {
          if (!rng.Bernoulli(0.5)) continue;
          CallForwarding cf{};
          cf.s_id = s;
          cf.sf_type = t;
          cf.start_time = kStartTimes[c];
          cf.end_time =
              static_cast<uint8_t>(cf.start_time + rng.Uniform(1, 8));
          FillSubNbr(cf.numberx, rng.Uniform(1, options_.subscribers));
          Rid cf_rid;
          db.Insert(loader.get(), cf_table_, AsBytes(cf), &cf_rid);
          db.IndexInsert(loader.get(), cf_pk_,
                         CfKey(s, t, cf.start_time), cf_rid.ToU64());
        }
      }
    }
    db.Commit(loader.get());
  }
}

Tm1TxnType Tm1Workload::PickType(Rng& rng) const {
  if (mix_ == Mix::kSingle) return single_type_;
  const uint64_t r = rng.Uniform(0, 999);
  if (mix_ == Mix::kForward) {
    // getDest / insertCF / deleteCF at 71.4 / 14.3 / 14.3 %.
    if (r < 714) return Tm1TxnType::kGetNewDestination;
    if (r < 857) return Tm1TxnType::kInsertCallForwarding;
    return Tm1TxnType::kDeleteCallForwarding;
  }
  // Full mix: 35 / 10 / 35 / 2 / 14 / 2 / 2 %.
  if (r < 350) return Tm1TxnType::kGetSubscriberData;
  if (r < 450) return Tm1TxnType::kGetNewDestination;
  if (r < 800) return Tm1TxnType::kGetAccessData;
  if (r < 820) return Tm1TxnType::kUpdateSubscriberData;
  if (r < 960) return Tm1TxnType::kUpdateLocation;
  if (r < 980) return Tm1TxnType::kInsertCallForwarding;
  return Tm1TxnType::kDeleteCallForwarding;
}

Status Tm1Workload::RunOne(Database& db, AgentContext& agent) {
  switch (PickType(agent.rng())) {
    case Tm1TxnType::kGetSubscriberData: return GetSubscriberData(db, agent);
    case Tm1TxnType::kGetNewDestination: return GetNewDestination(db, agent);
    case Tm1TxnType::kGetAccessData: return GetAccessData(db, agent);
    case Tm1TxnType::kUpdateSubscriberData:
      return UpdateSubscriberData(db, agent);
    case Tm1TxnType::kUpdateLocation: return UpdateLocation(db, agent);
    case Tm1TxnType::kInsertCallForwarding:
      return InsertCallForwarding(db, agent);
    case Tm1TxnType::kDeleteCallForwarding:
      return DeleteCallForwarding(db, agent);
  }
  return Status::InvalidArgument("bad txn type");
}

Status Tm1Workload::GetSubscriberData(Database& db, AgentContext& agent) {
  const uint64_t s_id = agent.rng().Uniform(1, options_.subscribers);
  db.Begin(&agent);
  uint64_t rid;
  TM1_TRY(db.IndexLookup(sub_pk_, s_id, &rid));
  Subscriber sub;
  TM1_TRY(db.Read(&agent, sub_table_, Rid::FromU64(rid), &sub, sizeof(sub)));
  return db.Commit(&agent);
}

Status Tm1Workload::GetNewDestination(Database& db, AgentContext& agent) {
  Rng& rng = agent.rng();
  const uint64_t s_id = rng.Uniform(1, options_.subscribers);
  const uint8_t sf_type = static_cast<uint8_t>(rng.Uniform(1, 4));
  const uint8_t start_time = static_cast<uint8_t>(rng.Uniform(0, 2) * 8);
  const uint8_t end_time = static_cast<uint8_t>(rng.Uniform(1, 24));

  db.Begin(&agent);
  uint64_t sf_rid;
  if (!db.IndexLookup(sf_pk_, SfKey(s_id, sf_type), &sf_rid).ok()) {
    TM1_USER_FAIL();
  }
  SpecialFacility sf;
  TM1_TRY(db.Read(&agent, sf_table_, Rid::FromU64(sf_rid), &sf, sizeof(sf)));
  if (sf.is_active == 0) TM1_USER_FAIL();

  // Forwardings with cf.start_time <= start_time and cf.end_time > end_time.
  bool found = false;
  Status scan_status = Status::OK();
  db.IndexScan(cf_pk_, CfKey(s_id, sf_type, 0),
               CfKey(s_id, sf_type, start_time),
               [&](uint64_t, uint64_t cf_rid) {
                 CallForwarding cf;
                 const Status st = db.Read(&agent, cf_table_,
                                           Rid::FromU64(cf_rid), &cf,
                                           sizeof(cf));
                 if (!st.ok()) {
                   // Row vanished under us (concurrent delete) or lock
                   // failure; remember hard failures.
                   if (st.ForcesAbort()) scan_status = st;
                   return st.ForcesAbort() ? false : true;
                 }
                 if (cf.end_time > end_time) {
                   found = true;
                   return false;
                 }
                 return true;
               });
  TM1_TRY(scan_status);
  if (!found) TM1_USER_FAIL();
  return db.Commit(&agent);
}

Status Tm1Workload::GetAccessData(Database& db, AgentContext& agent) {
  Rng& rng = agent.rng();
  const uint64_t s_id = rng.Uniform(1, options_.subscribers);
  const uint8_t ai_type = static_cast<uint8_t>(rng.Uniform(1, 4));
  db.Begin(&agent);
  uint64_t rid;
  if (!db.IndexLookup(ai_pk_, AiKey(s_id, ai_type), &rid).ok()) {
    TM1_USER_FAIL();
  }
  AccessInfo ai;
  TM1_TRY(db.Read(&agent, ai_table_, Rid::FromU64(rid), &ai, sizeof(ai)));
  return db.Commit(&agent);
}

Status Tm1Workload::UpdateSubscriberData(Database& db, AgentContext& agent) {
  Rng& rng = agent.rng();
  const uint64_t s_id = rng.Uniform(1, options_.subscribers);
  const uint8_t sf_type = static_cast<uint8_t>(rng.Uniform(1, 4));
  const uint8_t new_data_a = static_cast<uint8_t>(rng.Uniform(0, 255));
  const uint16_t bit_mask = static_cast<uint16_t>(1u << rng.Uniform(0, 9));

  db.Begin(&agent);
  uint64_t sub_rid;
  TM1_TRY(db.IndexLookup(sub_pk_, s_id, &sub_rid));
  Subscriber sub;
  TM1_TRY(db.LockRowExclusive(&agent, sub_table_, Rid::FromU64(sub_rid)));
  TM1_TRY(
      db.Read(&agent, sub_table_, Rid::FromU64(sub_rid), &sub, sizeof(sub)));
  sub.bits ^= bit_mask;
  TM1_TRY(db.Update(&agent, sub_table_, Rid::FromU64(sub_rid), AsBytes(sub)));

  uint64_t sf_rid;
  if (!db.IndexLookup(sf_pk_, SfKey(s_id, sf_type), &sf_rid).ok()) {
    TM1_USER_FAIL();  // rolls back the subscriber update too
  }
  SpecialFacility sf;
  TM1_TRY(db.LockRowExclusive(&agent, sf_table_, Rid::FromU64(sf_rid)));
  TM1_TRY(db.Read(&agent, sf_table_, Rid::FromU64(sf_rid), &sf, sizeof(sf)));
  sf.data_a = new_data_a;
  TM1_TRY(db.Update(&agent, sf_table_, Rid::FromU64(sf_rid), AsBytes(sf)));
  return db.Commit(&agent);
}

Status Tm1Workload::UpdateLocation(Database& db, AgentContext& agent) {
  Rng& rng = agent.rng();
  const uint64_t s_id = rng.Uniform(1, options_.subscribers);
  const uint32_t new_location = static_cast<uint32_t>(rng.Next());
  db.Begin(&agent);
  uint64_t rid;
  TM1_TRY(db.IndexLookup(sub_nbr_idx_, s_id, &rid));
  Subscriber sub;
  TM1_TRY(db.LockRowExclusive(&agent, sub_table_, Rid::FromU64(rid)));
  TM1_TRY(db.Read(&agent, sub_table_, Rid::FromU64(rid), &sub, sizeof(sub)));
  sub.vlr_location = new_location;
  TM1_TRY(db.Update(&agent, sub_table_, Rid::FromU64(rid), AsBytes(sub)));
  return db.Commit(&agent);
}

Status Tm1Workload::InsertCallForwarding(Database& db, AgentContext& agent) {
  Rng& rng = agent.rng();
  const uint64_t s_id = rng.Uniform(1, options_.subscribers);
  const uint8_t sf_type = static_cast<uint8_t>(rng.Uniform(1, 4));
  const uint8_t start_time = static_cast<uint8_t>(rng.Uniform(0, 2) * 8);

  db.Begin(&agent);
  uint64_t sub_rid;
  TM1_TRY(db.IndexLookup(sub_nbr_idx_, s_id, &sub_rid));
  Subscriber sub;
  TM1_TRY(
      db.Read(&agent, sub_table_, Rid::FromU64(sub_rid), &sub, sizeof(sub)));

  uint64_t sf_rid;
  if (!db.IndexLookup(sf_pk_, SfKey(s_id, sf_type), &sf_rid).ok()) {
    TM1_USER_FAIL();
  }
  // Already have a forwarding for this slot? Spec: insert fails.
  uint64_t existing;
  if (db.IndexLookup(cf_pk_, CfKey(s_id, sf_type, start_time), &existing)
          .ok()) {
    TM1_USER_FAIL();
  }

  CallForwarding cf{};
  cf.s_id = s_id;
  cf.sf_type = sf_type;
  cf.start_time = start_time;
  cf.end_time = static_cast<uint8_t>(start_time + rng.Uniform(1, 8));
  FillSubNbr(cf.numberx, rng.Uniform(1, options_.subscribers));
  Rid rid;
  TM1_TRY(db.Insert(&agent, cf_table_, AsBytes(cf), &rid));
  {
    const Status st = db.IndexInsert(&agent, cf_pk_,
                                     CfKey(s_id, sf_type, start_time),
                                     rid.ToU64());
    if (st.IsKeyExists()) TM1_USER_FAIL();  // concurrent duplicate
    TM1_TRY(st);
  }
  return db.Commit(&agent);
}

Status Tm1Workload::DeleteCallForwarding(Database& db, AgentContext& agent) {
  Rng& rng = agent.rng();
  const uint64_t s_id = rng.Uniform(1, options_.subscribers);
  const uint8_t sf_type = static_cast<uint8_t>(rng.Uniform(1, 4));
  const uint8_t start_time = static_cast<uint8_t>(rng.Uniform(0, 2) * 8);

  db.Begin(&agent);
  uint64_t cf_rid;
  if (!db.IndexLookup(cf_pk_, CfKey(s_id, sf_type, start_time), &cf_rid)
           .ok()) {
    TM1_USER_FAIL();
  }
  // Delete row first (X lock), then the index entry; a concurrent deleter
  // loses the row race and fails above or at Delete with NotFound.
  const Status st = db.Delete(&agent, cf_table_, Rid::FromU64(cf_rid));
  if (st.IsNotFound()) TM1_USER_FAIL();
  TM1_TRY(st);
  TM1_TRY(db.IndexRemove(&agent, cf_pk_, CfKey(s_id, sf_type, start_time),
                         cf_rid));
  return db.Commit(&agent);
}

}  // namespace slidb
