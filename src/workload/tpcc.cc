#include "src/workload/tpcc.h"

#include <algorithm>
#include <cstring>
#include <set>
#include <vector>

#include "src/util/time_util.h"

namespace slidb {

namespace {

using tpcc::Customer;
using tpcc::District;
using tpcc::History;
using tpcc::Item;
using tpcc::NewOrderRow;
using tpcc::Order;
using tpcc::OrderLine;
using tpcc::Stock;
using tpcc::Warehouse;

template <typename T>
std::span<const uint8_t> AsBytes(const T& rec) {
  return {reinterpret_cast<const uint8_t*>(&rec), sizeof(T)};
}

#define TPCC_TRY(expr)            \
  do {                            \
    ::slidb::Status _st = (expr); \
    if (!_st.ok()) {              \
      db.Abort(&agent);           \
      return _st;                 \
    }                             \
  } while (0)

}  // namespace

void TpccLastName(uint32_t num, char out[18]) {
  static const char* kSyllables[10] = {"BAR",   "OUGHT", "ABLE", "PRI",
                                       "PRES",  "ESE",   "ANTI", "CALLY",
                                       "ATION", "EING"};
  out[0] = '\0';
  std::snprintf(out, 18, "%s%s%s", kSyllables[(num / 100) % 10],
                kSyllables[(num / 10) % 10], kSyllables[num % 10]);
}

uint32_t TpccNameHash(const char* name) {
  uint32_t h = 2166136261u;
  for (const char* p = name; *p != '\0'; ++p) {
    h = (h ^ static_cast<uint8_t>(*p)) * 16777619u;
  }
  return h & 0xffff;
}

const char* TpccWorkload::name() const {
  switch (mix_) {
    case Mix::kFull: return "tpcc-mix";
    case Mix::kSmall: return "tpcc-small-mix";
    case Mix::kSingle:
      switch (single_type_) {
        case TpccTxnType::kNewOrder: return "tpcc-neworder";
        case TpccTxnType::kPayment: return "tpcc-payment";
        case TpccTxnType::kOrderStatus: return "tpcc-orderstatus";
        case TpccTxnType::kDelivery: return "tpcc-delivery";
        case TpccTxnType::kStockLevel: return "tpcc-stocklevel";
      }
  }
  return "tpcc";
}

uint32_t TpccWorkload::PickCustomerId(Rng& rng) const {
  return static_cast<uint32_t>(
      rng.NuRand(1023, 1, options_.customers_per_district));
}

uint32_t TpccWorkload::PickItemId(Rng& rng) const {
  return static_cast<uint32_t>(rng.NuRand(8191, 1, options_.items));
}

void TpccWorkload::Load(Database& db) {
  warehouse_t_ = db.CreateTable("warehouse");
  district_t_ = db.CreateTable("district");
  customer_t_ = db.CreateTable("customer");
  history_t_ = db.CreateTable("history");
  neworder_t_ = db.CreateTable("new_order");
  order_t_ = db.CreateTable("orders");
  orderline_t_ = db.CreateTable("order_line");
  item_t_ = db.CreateTable("item");
  stock_t_ = db.CreateTable("stock");

  warehouse_pk_ = db.CreateIndex(warehouse_t_, "w_pk", IndexKind::kHash, true);
  district_pk_ = db.CreateIndex(district_t_, "d_pk", IndexKind::kHash, true);
  customer_pk_ = db.CreateIndex(customer_t_, "c_pk", IndexKind::kHash, true);
  customer_name_ =
      db.CreateIndex(customer_t_, "c_name", IndexKind::kBTree, false);
  neworder_pk_ =
      db.CreateIndex(neworder_t_, "no_pk", IndexKind::kBTree, true);
  order_pk_ = db.CreateIndex(order_t_, "o_pk", IndexKind::kHash, true);
  cust_order_ =
      db.CreateIndex(order_t_, "o_cust", IndexKind::kBTree, false);
  orderline_idx_ =
      db.CreateIndex(orderline_t_, "ol_order", IndexKind::kBTree, false);
  item_pk_ = db.CreateIndex(item_t_, "i_pk", IndexKind::kHash, true);
  stock_pk_ = db.CreateIndex(stock_t_, "s_pk", IndexKind::kHash, true);

  auto loader = db.CreateAgent(/*seed=*/13);
  Rng& rng = loader->rng();

  // Items.
  constexpr uint32_t kBatch = 1000;
  for (uint32_t i0 = 1; i0 <= options_.items; i0 += kBatch) {
    db.Begin(loader.get());
    const uint32_t hi = std::min(i0 + kBatch - 1, options_.items);
    for (uint32_t i = i0; i <= hi; ++i) {
      Item item{};
      item.i_id = i;
      item.price = static_cast<int64_t>(rng.Uniform(100, 10000));
      std::snprintf(item.name, sizeof(item.name), "item-%u", i);
      Rid rid;
      db.Insert(loader.get(), item_t_, AsBytes(item), &rid);
      db.IndexInsert(loader.get(), item_pk_, i, rid.ToU64());
    }
    db.Commit(loader.get());
  }

  for (uint32_t w = 1; w <= options_.warehouses; ++w) {
    db.Begin(loader.get());
    Warehouse wh{};
    wh.w_id = w;
    wh.tax = static_cast<float>(rng.Uniform(0, 2000)) / 10000.0f;
    std::snprintf(wh.name, sizeof(wh.name), "wh-%u", w);
    Rid w_rid;
    db.Insert(loader.get(), warehouse_t_, AsBytes(wh), &w_rid);
    db.IndexInsert(loader.get(), warehouse_pk_, w, w_rid.ToU64());
    db.Commit(loader.get());

    // Stock for all items.
    for (uint32_t i0 = 1; i0 <= options_.items; i0 += kBatch) {
      db.Begin(loader.get());
      const uint32_t hi = std::min(i0 + kBatch - 1, options_.items);
      for (uint32_t i = i0; i <= hi; ++i) {
        Stock s{};
        s.w_id = w;
        s.i_id = i;
        s.quantity = static_cast<uint32_t>(rng.Uniform(10, 100));
        Rid rid;
        db.Insert(loader.get(), stock_t_, AsBytes(s), &rid);
        db.IndexInsert(loader.get(), stock_pk_, StockKey(w, i), rid.ToU64());
      }
      db.Commit(loader.get());
    }

    for (uint32_t d = 1; d <= options_.districts_per_warehouse; ++d) {
      db.Begin(loader.get());
      District dist{};
      dist.w_id = w;
      dist.d_id = d;
      dist.next_o_id = options_.initial_orders_per_district + 1;
      dist.tax = static_cast<float>(rng.Uniform(0, 2000)) / 10000.0f;
      Rid d_rid;
      db.Insert(loader.get(), district_t_, AsBytes(dist), &d_rid);
      db.IndexInsert(loader.get(), district_pk_, DistrictKey(w, d),
                     d_rid.ToU64());
      db.Commit(loader.get());

      // Customers.
      for (uint32_t c0 = 1; c0 <= options_.customers_per_district;
           c0 += kBatch) {
        db.Begin(loader.get());
        const uint32_t hi =
            std::min(c0 + kBatch - 1, options_.customers_per_district);
        for (uint32_t c = c0; c <= hi; ++c) {
          Customer cust{};
          cust.w_id = w;
          cust.d_id = d;
          cust.c_id = c;
          cust.balance = -1000;  // spec: -10.00
          // First 1000 customers get spec syllable names (uniform NURand
          // coverage); the rest are random.
          TpccLastName(c <= 1000 ? c - 1
                                 : static_cast<uint32_t>(
                                       rng.NuRand(255, 0, 999)),
                       cust.last);
          std::snprintf(cust.first, sizeof(cust.first), "fn-%u", c);
          cust.credit[0] = rng.Bernoulli(0.10) ? 'B' : 'G';
          cust.credit[1] = 'C';
          Rid rid;
          db.Insert(loader.get(), customer_t_, AsBytes(cust), &rid);
          db.IndexInsert(loader.get(), customer_pk_, CustomerKey(w, d, c),
                         rid.ToU64());
          db.IndexInsert(loader.get(), customer_name_,
                         CustomerNameKey(w, d, TpccNameHash(cust.last)),
                         rid.ToU64());
        }
        db.Commit(loader.get());
      }

      // Initial orders; the newest 30% stay undelivered (in NEW-ORDER).
      db.Begin(loader.get());
      const uint32_t orders = options_.initial_orders_per_district;
      const uint32_t undelivered_from = orders - orders * 3 / 10 + 1;
      for (uint32_t o = 1; o <= orders; ++o) {
        Order order{};
        order.w_id = w;
        order.d_id = d;
        order.o_id = o;
        order.c_id = (o % options_.customers_per_district) + 1;
        order.ol_cnt = static_cast<uint32_t>(rng.Uniform(5, 15));
        order.all_local = 1;
        order.entry_d = NowMicros();
        order.carrier_id =
            o < undelivered_from ? static_cast<uint32_t>(rng.Uniform(1, 10))
                                 : 0;
        Rid o_rid;
        db.Insert(loader.get(), order_t_, AsBytes(order), &o_rid);
        db.IndexInsert(loader.get(), order_pk_, OrderKey(w, d, o),
                       o_rid.ToU64());
        db.IndexInsert(loader.get(), cust_order_,
                       CustOrderKey(w, d, order.c_id, o), o_rid.ToU64());

        for (uint32_t l = 1; l <= order.ol_cnt; ++l) {
          OrderLine ol{};
          ol.w_id = w;
          ol.d_id = d;
          ol.o_id = o;
          ol.ol_number = l;
          ol.i_id = static_cast<uint32_t>(rng.Uniform(1, options_.items));
          ol.supply_w_id = w;
          ol.quantity = 5;
          ol.amount = order.carrier_id == 0
                          ? static_cast<int64_t>(rng.Uniform(1, 999999))
                          : 0;
          ol.delivery_d = order.carrier_id == 0 ? 0 : order.entry_d;
          Rid ol_rid;
          db.Insert(loader.get(), orderline_t_, AsBytes(ol), &ol_rid);
          db.IndexInsert(loader.get(), orderline_idx_, OrderKey(w, d, o),
                         ol_rid.ToU64());
        }
        if (order.carrier_id == 0) {
          NewOrderRow no{w, d, o};
          Rid no_rid;
          db.Insert(loader.get(), neworder_t_, AsBytes(no), &no_rid);
          db.IndexInsert(loader.get(), neworder_pk_, OrderKey(w, d, o),
                         no_rid.ToU64());
        }
      }
      db.Commit(loader.get());
    }
  }
}

TpccTxnType TpccWorkload::PickType(Rng& rng) const {
  if (mix_ == Mix::kSingle) return single_type_;
  const uint64_t r = rng.Uniform(0, 999);
  if (mix_ == Mix::kSmall) {
    // Paper §5.1: Payment / New Order / Order Status at 46.7/48.9/4.3.
    if (r < 467) return TpccTxnType::kPayment;
    if (r < 956) return TpccTxnType::kNewOrder;
    return TpccTxnType::kOrderStatus;
  }
  // Full mix: 45/43/4/4/4.
  if (r < 450) return TpccTxnType::kNewOrder;
  if (r < 880) return TpccTxnType::kPayment;
  if (r < 920) return TpccTxnType::kOrderStatus;
  if (r < 960) return TpccTxnType::kDelivery;
  return TpccTxnType::kStockLevel;
}

Status TpccWorkload::RunOne(Database& db, AgentContext& agent) {
  switch (PickType(agent.rng())) {
    case TpccTxnType::kNewOrder: return NewOrder(db, agent);
    case TpccTxnType::kPayment: return Payment(db, agent);
    case TpccTxnType::kOrderStatus: return OrderStatus(db, agent);
    case TpccTxnType::kDelivery: return Delivery(db, agent);
    case TpccTxnType::kStockLevel: return StockLevel(db, agent);
  }
  return Status::InvalidArgument("bad txn type");
}

Status TpccWorkload::ResolveCustomer(Database& db, AgentContext& agent,
                                     uint32_t w, uint32_t d,
                                     uint64_t* rid_out, Customer* cust_out) {
  Rng& rng = agent.rng();
  if (rng.Bernoulli(0.60)) {
    // By last name: pick a syllable name, collect matches, take the middle
    // one ordered by first name (spec 2.5.2.2).
    char last[18];
    TpccLastName(static_cast<uint32_t>(rng.NuRand(255, 0, 999)), last);
    std::vector<uint64_t> rids;
    db.IndexLookupAll(customer_name_,
                      CustomerNameKey(w, d, TpccNameHash(last)), &rids);
    std::vector<std::pair<std::string, uint64_t>> matches;
    Customer cust;
    for (uint64_t rid : rids) {
      SLIDB_RETURN_NOT_OK(
          db.Read(&agent, customer_t_, Rid::FromU64(rid), &cust,
                  sizeof(cust)));
      if (std::strncmp(cust.last, last, sizeof(cust.last)) == 0) {
        matches.emplace_back(cust.first, rid);
      }
    }
    if (matches.empty()) {
      // Hash bucket exists but no exact-name match: fall back to by-id.
      const uint32_t c = PickCustomerId(rng);
      SLIDB_RETURN_NOT_OK(
          db.IndexLookup(customer_pk_, CustomerKey(w, d, c), rid_out));
    } else {
      std::sort(matches.begin(), matches.end());
      *rid_out = matches[matches.size() / 2].second;
    }
  } else {
    const uint32_t c = PickCustomerId(rng);
    SLIDB_RETURN_NOT_OK(
        db.IndexLookup(customer_pk_, CustomerKey(w, d, c), rid_out));
  }
  return db.Read(&agent, customer_t_, Rid::FromU64(*rid_out), cust_out,
                 sizeof(*cust_out));
}

Status TpccWorkload::NewOrder(Database& db, AgentContext& agent) {
  Rng& rng = agent.rng();
  const uint32_t w = static_cast<uint32_t>(rng.Uniform(1, options_.warehouses));
  const uint32_t d =
      static_cast<uint32_t>(rng.Uniform(1, options_.districts_per_warehouse));
  const uint32_t c = PickCustomerId(rng);
  const uint32_t ol_cnt = static_cast<uint32_t>(rng.Uniform(5, 15));
  const bool rollback = rng.Bernoulli(0.01);  // spec: 1% invalid item

  db.Begin(&agent);

  // Warehouse tax (S), district X (allocate o_id), customer (S).
  uint64_t w_rid;
  TPCC_TRY(db.IndexLookup(warehouse_pk_, w, &w_rid));
  Warehouse wh;
  TPCC_TRY(db.Read(&agent, warehouse_t_, Rid::FromU64(w_rid), &wh,
                   sizeof(wh)));

  uint64_t d_rid;
  TPCC_TRY(db.IndexLookup(district_pk_, DistrictKey(w, d), &d_rid));
  District dist;
  TPCC_TRY(db.LockRowExclusive(&agent, district_t_, Rid::FromU64(d_rid)));
  TPCC_TRY(db.Read(&agent, district_t_, Rid::FromU64(d_rid), &dist,
                   sizeof(dist)));
  const uint32_t o_id = dist.next_o_id;
  dist.next_o_id++;
  TPCC_TRY(db.Update(&agent, district_t_, Rid::FromU64(d_rid), AsBytes(dist)));

  uint64_t c_rid;
  TPCC_TRY(db.IndexLookup(customer_pk_, CustomerKey(w, d, c), &c_rid));
  Customer cust;
  TPCC_TRY(db.Read(&agent, customer_t_, Rid::FromU64(c_rid), &cust,
                   sizeof(cust)));

  // Order + NEW-ORDER rows.
  Order order{};
  order.w_id = w;
  order.d_id = d;
  order.o_id = o_id;
  order.c_id = c;
  order.ol_cnt = ol_cnt;
  order.all_local = 1;
  order.entry_d = NowMicros();
  Rid o_rid;
  TPCC_TRY(db.Insert(&agent, order_t_, AsBytes(order), &o_rid));
  TPCC_TRY(db.IndexInsert(&agent, order_pk_, OrderKey(w, d, o_id),
                          o_rid.ToU64()));
  TPCC_TRY(db.IndexInsert(&agent, cust_order_, CustOrderKey(w, d, c, o_id),
                          o_rid.ToU64()));
  NewOrderRow no{w, d, o_id};
  Rid no_rid;
  TPCC_TRY(db.Insert(&agent, neworder_t_, AsBytes(no), &no_rid));
  TPCC_TRY(db.IndexInsert(&agent, neworder_pk_, OrderKey(w, d, o_id),
                          no_rid.ToU64()));

  // Lines.
  for (uint32_t l = 1; l <= ol_cnt; ++l) {
    if (rollback && l == ol_cnt) {
      // Invalid item: the spec demands a full rollback of the order.
      db.Abort(&agent);
      return Status::Aborted("invalid item");
    }
    const uint32_t i_id = PickItemId(rng);
    uint32_t supply_w = w;
    if (options_.warehouses > 1 && rng.Bernoulli(0.01)) {
      do {
        supply_w =
            static_cast<uint32_t>(rng.Uniform(1, options_.warehouses));
      } while (supply_w == w);
      order.all_local = 0;
    }

    uint64_t i_rid;
    TPCC_TRY(db.IndexLookup(item_pk_, i_id, &i_rid));
    Item item;
    TPCC_TRY(
        db.Read(&agent, item_t_, Rid::FromU64(i_rid), &item, sizeof(item)));

    uint64_t s_rid;
    TPCC_TRY(db.IndexLookup(stock_pk_, StockKey(supply_w, i_id), &s_rid));
    Stock stock;
    TPCC_TRY(db.LockRowExclusive(&agent, stock_t_, Rid::FromU64(s_rid)));
    TPCC_TRY(db.Read(&agent, stock_t_, Rid::FromU64(s_rid), &stock,
                     sizeof(stock)));
    const uint32_t qty = static_cast<uint32_t>(rng.Uniform(1, 10));
    stock.quantity =
        stock.quantity >= qty + 10 ? stock.quantity - qty
                                   : stock.quantity + 91 - qty;
    stock.ytd += qty;
    stock.order_cnt++;
    if (supply_w != w) stock.remote_cnt++;
    TPCC_TRY(
        db.Update(&agent, stock_t_, Rid::FromU64(s_rid), AsBytes(stock)));

    OrderLine ol{};
    ol.w_id = w;
    ol.d_id = d;
    ol.o_id = o_id;
    ol.ol_number = l;
    ol.i_id = i_id;
    ol.supply_w_id = supply_w;
    ol.quantity = qty;
    ol.amount = static_cast<int64_t>(qty) * item.price;
    Rid ol_rid;
    TPCC_TRY(db.Insert(&agent, orderline_t_, AsBytes(ol), &ol_rid));
    TPCC_TRY(db.IndexInsert(&agent, orderline_idx_, OrderKey(w, d, o_id),
                            ol_rid.ToU64()));
  }
  return db.Commit(&agent);
}

Status TpccWorkload::Payment(Database& db, AgentContext& agent) {
  Rng& rng = agent.rng();
  const uint32_t w = static_cast<uint32_t>(rng.Uniform(1, options_.warehouses));
  const uint32_t d =
      static_cast<uint32_t>(rng.Uniform(1, options_.districts_per_warehouse));
  // 15%: customer of a remote warehouse/district.
  uint32_t c_w = w, c_d = d;
  if (options_.warehouses > 1 && rng.Bernoulli(0.15)) {
    do {
      c_w = static_cast<uint32_t>(rng.Uniform(1, options_.warehouses));
    } while (c_w == w);
    c_d =
        static_cast<uint32_t>(rng.Uniform(1, options_.districts_per_warehouse));
  }
  const int64_t amount = rng.UniformInt(100, 500000);  // $1.00 .. $5000.00

  db.Begin(&agent);

  uint64_t w_rid;
  TPCC_TRY(db.IndexLookup(warehouse_pk_, w, &w_rid));
  Warehouse wh;
  TPCC_TRY(db.LockRowExclusive(&agent, warehouse_t_, Rid::FromU64(w_rid)));
  TPCC_TRY(
      db.Read(&agent, warehouse_t_, Rid::FromU64(w_rid), &wh, sizeof(wh)));
  wh.ytd += amount;
  TPCC_TRY(
      db.Update(&agent, warehouse_t_, Rid::FromU64(w_rid), AsBytes(wh)));

  uint64_t d_rid;
  TPCC_TRY(db.IndexLookup(district_pk_, DistrictKey(w, d), &d_rid));
  District dist;
  TPCC_TRY(db.LockRowExclusive(&agent, district_t_, Rid::FromU64(d_rid)));
  TPCC_TRY(db.Read(&agent, district_t_, Rid::FromU64(d_rid), &dist,
                   sizeof(dist)));
  dist.ytd += amount;
  TPCC_TRY(
      db.Update(&agent, district_t_, Rid::FromU64(d_rid), AsBytes(dist)));

  uint64_t c_rid;
  Customer cust;
  TPCC_TRY(ResolveCustomer(db, agent, c_w, c_d, &c_rid, &cust));
  TPCC_TRY(db.LockRowExclusive(&agent, customer_t_, Rid::FromU64(c_rid)));
  cust.balance -= amount;
  cust.ytd_payment += amount;
  cust.payment_cnt++;
  TPCC_TRY(
      db.Update(&agent, customer_t_, Rid::FromU64(c_rid), AsBytes(cust)));

  History h{};
  h.c_w_id = c_w;
  h.c_d_id = c_d;
  h.c_id = cust.c_id;
  h.w_id = w;
  h.d_id = d;
  h.amount = amount;
  h.date = NowMicros();
  Rid h_rid;
  TPCC_TRY(db.Insert(&agent, history_t_, AsBytes(h), &h_rid));

  return db.Commit(&agent);
}

Status TpccWorkload::OrderStatus(Database& db, AgentContext& agent) {
  Rng& rng = agent.rng();
  const uint32_t w = static_cast<uint32_t>(rng.Uniform(1, options_.warehouses));
  const uint32_t d =
      static_cast<uint32_t>(rng.Uniform(1, options_.districts_per_warehouse));

  db.Begin(&agent);
  uint64_t c_rid;
  Customer cust;
  TPCC_TRY(ResolveCustomer(db, agent, w, d, &c_rid, &cust));

  // Newest order of this customer.
  uint64_t o_rid = 0;
  bool have_order = false;
  db.IndexScanReverse(cust_order_, CustOrderKey(w, d, cust.c_id, 0),
                      CustOrderKey(w, d, cust.c_id, 0xffffff),
                      [&](uint64_t, uint64_t rid) {
                        o_rid = rid;
                        have_order = true;
                        return false;
                      });
  if (!have_order) {
    db.Abort(&agent);
    return Status::Aborted("customer has no orders");
  }
  Order order;
  TPCC_TRY(
      db.Read(&agent, order_t_, Rid::FromU64(o_rid), &order, sizeof(order)));

  // Its lines.
  std::vector<uint64_t> line_rids;
  db.IndexLookupAll(orderline_idx_, OrderKey(w, d, order.o_id), &line_rids);
  OrderLine ol;
  for (uint64_t rid : line_rids) {
    TPCC_TRY(
        db.Read(&agent, orderline_t_, Rid::FromU64(rid), &ol, sizeof(ol)));
  }
  return db.Commit(&agent);
}

Status TpccWorkload::Delivery(Database& db, AgentContext& agent) {
  Rng& rng = agent.rng();
  const uint32_t w = static_cast<uint32_t>(rng.Uniform(1, options_.warehouses));
  const uint32_t carrier = static_cast<uint32_t>(rng.Uniform(1, 10));

  db.Begin(&agent);
  for (uint32_t d = 1; d <= options_.districts_per_warehouse; ++d) {
    // Oldest undelivered order in this district.
    uint64_t no_rid = 0;
    uint64_t no_key = 0;
    bool found = false;
    db.IndexScan(neworder_pk_, OrderKey(w, d, 0), OrderKey(w, d, 0xffffffff),
                 [&](uint64_t key, uint64_t rid) {
                   no_key = key;
                   no_rid = rid;
                   found = true;
                   return false;
                 });
    if (!found) continue;  // district fully delivered
    const uint32_t o_id = static_cast<uint32_t>(no_key & 0xffffffff);

    // Claim the NEW-ORDER row; a concurrent Delivery may beat us to it.
    const Status del = db.Delete(&agent, neworder_t_, Rid::FromU64(no_rid));
    if (del.IsNotFound()) continue;
    TPCC_TRY(del);
    TPCC_TRY(db.IndexRemove(&agent, neworder_pk_, no_key, no_rid));

    uint64_t o_rid;
    TPCC_TRY(db.IndexLookup(order_pk_, OrderKey(w, d, o_id), &o_rid));
    Order order;
    TPCC_TRY(db.LockRowExclusive(&agent, order_t_, Rid::FromU64(o_rid)));
    TPCC_TRY(
        db.Read(&agent, order_t_, Rid::FromU64(o_rid), &order, sizeof(order)));
    order.carrier_id = carrier;
    TPCC_TRY(
        db.Update(&agent, order_t_, Rid::FromU64(o_rid), AsBytes(order)));

    // Stamp all lines and total them.
    std::vector<uint64_t> line_rids;
    db.IndexLookupAll(orderline_idx_, OrderKey(w, d, o_id), &line_rids);
    int64_t total = 0;
    const uint64_t now = NowMicros();
    for (uint64_t rid : line_rids) {
      OrderLine ol;
      TPCC_TRY(db.LockRowExclusive(&agent, orderline_t_, Rid::FromU64(rid)));
      TPCC_TRY(
          db.Read(&agent, orderline_t_, Rid::FromU64(rid), &ol, sizeof(ol)));
      ol.delivery_d = now;
      total += ol.amount;
      TPCC_TRY(
          db.Update(&agent, orderline_t_, Rid::FromU64(rid), AsBytes(ol)));
    }

    // Credit the customer.
    uint64_t c_rid;
    TPCC_TRY(db.IndexLookup(customer_pk_, CustomerKey(w, d, order.c_id),
                            &c_rid));
    Customer cust;
    TPCC_TRY(db.LockRowExclusive(&agent, customer_t_, Rid::FromU64(c_rid)));
    TPCC_TRY(db.Read(&agent, customer_t_, Rid::FromU64(c_rid), &cust,
                     sizeof(cust)));
    cust.balance += total;
    cust.delivery_cnt++;
    TPCC_TRY(
        db.Update(&agent, customer_t_, Rid::FromU64(c_rid), AsBytes(cust)));
  }
  return db.Commit(&agent);
}

Status TpccWorkload::StockLevel(Database& db, AgentContext& agent) {
  Rng& rng = agent.rng();
  const uint32_t w = static_cast<uint32_t>(rng.Uniform(1, options_.warehouses));
  const uint32_t d =
      static_cast<uint32_t>(rng.Uniform(1, options_.districts_per_warehouse));
  const uint32_t threshold = static_cast<uint32_t>(rng.Uniform(10, 20));

  db.Begin(&agent);
  uint64_t d_rid;
  TPCC_TRY(db.IndexLookup(district_pk_, DistrictKey(w, d), &d_rid));
  District dist;
  TPCC_TRY(db.Read(&agent, district_t_, Rid::FromU64(d_rid), &dist,
                   sizeof(dist)));

  // Examine the lines of the last 20 orders (paper: "roughly 200 order
  // line items and their corresponding stock entries").
  const uint32_t from =
      dist.next_o_id > 20 ? dist.next_o_id - 20 : 1;
  std::set<uint32_t> low_items;
  std::set<uint32_t> seen_items;
  for (uint32_t o = from; o < dist.next_o_id; ++o) {
    std::vector<uint64_t> line_rids;
    db.IndexLookupAll(orderline_idx_, OrderKey(w, d, o), &line_rids);
    for (uint64_t rid : line_rids) {
      OrderLine ol;
      TPCC_TRY(
          db.Read(&agent, orderline_t_, Rid::FromU64(rid), &ol, sizeof(ol)));
      if (!seen_items.insert(ol.i_id).second) continue;
      uint64_t s_rid;
      TPCC_TRY(db.IndexLookup(stock_pk_, StockKey(w, ol.i_id), &s_rid));
      Stock stock;
      TPCC_TRY(db.Read(&agent, stock_t_, Rid::FromU64(s_rid), &stock,
                       sizeof(stock)));
      if (stock.quantity < threshold) low_items.insert(ol.i_id);
    }
  }
  return db.Commit(&agent);
}

bool TpccWorkload::CheckConsistency(Database& db, AgentContext& agent) {
  db.Begin(&agent);
  bool ok = true;
  for (uint32_t w = 1; w <= options_.warehouses && ok; ++w) {
    for (uint32_t d = 1; d <= options_.districts_per_warehouse && ok; ++d) {
      uint64_t d_rid;
      if (!db.IndexLookup(district_pk_, DistrictKey(w, d), &d_rid).ok()) {
        ok = false;
        break;
      }
      District dist;
      if (!db.Read(&agent, district_t_, Rid::FromU64(d_rid), &dist,
                   sizeof(dist))
               .ok()) {
        ok = false;
        break;
      }
      // Condition 1 (scaled): the order row for next_o_id - 1 exists and
      // the one for next_o_id does not.
      uint64_t rid;
      if (dist.next_o_id > 1 &&
          !db.IndexLookup(order_pk_, OrderKey(w, d, dist.next_o_id - 1), &rid)
               .ok()) {
        ok = false;
      }
      if (db.IndexLookup(order_pk_, OrderKey(w, d, dist.next_o_id), &rid)
              .ok()) {
        ok = false;
      }
    }
  }
  db.Abort(&agent);  // read-only; no need to commit
  return ok;
}

}  // namespace slidb
