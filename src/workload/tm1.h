// TM1 / Nokia Network Database Benchmark (NDBB): the telecom Home Location
// Register workload the paper leans on hardest — seven very short
// transactions over four tables, with spec-mandated failure rates caused by
// probing random (often absent) keys (paper §5.1).
#pragma once

#include <cstdint>

#include "src/workload/workload.h"

namespace slidb {

/// TM1 transaction types (paper order).
enum class Tm1TxnType : uint8_t {
  kGetSubscriberData = 0,  // read-only, 35% of mix, 0% fail
  kGetNewDestination,      // read-only, 10% of mix, ~76% fail
  kGetAccessData,          // read-only, 35% of mix, ~37.5% fail
  kUpdateSubscriberData,   // update,     2% of mix, ~37.5% fail
  kUpdateLocation,         // update,    14% of mix, 0% fail
  kInsertCallForwarding,   // update,     2% of mix, ~69% fail
  kDeleteCallForwarding,   // update,     2% of mix, ~69% fail
};

struct Tm1Options {
  uint64_t subscribers = 50'000;
};

/// Packed TM1 records (scaled field widths documented in DESIGN.md).
namespace tm1 {

struct Subscriber {
  uint64_t s_id;
  char sub_nbr[16];      // 15-digit string + NUL
  uint16_t bits;         // bit_1..bit_10
  uint8_t hex[10];
  uint8_t byte2[10];
  uint32_t msc_location;
  uint32_t vlr_location;
};

struct AccessInfo {
  uint64_t s_id;
  uint8_t ai_type;  // 1..4
  uint8_t data1;
  uint8_t data2;
  char data3[4];
  char data4[6];
};

struct SpecialFacility {
  uint64_t s_id;
  uint8_t sf_type;    // 1..4
  uint8_t is_active;  // 85% true
  uint8_t error_cntrl;
  uint8_t data_a;
  char data_b[6];
};

struct CallForwarding {
  uint64_t s_id;
  uint8_t sf_type;
  uint8_t start_time;  // 0, 8 or 16
  uint8_t end_time;    // start_time + 1..8
  char numberx[16];
};

}  // namespace tm1

/// The full TM1 workload. `fixed_type` (when >= 0) pins the mix to a single
/// transaction type — the paper evaluates individual transactions as well
/// as the specified mix and the "Forward mix".
class Tm1Workload : public Workload {
 public:
  enum class Mix : uint8_t {
    kFull,     ///< spec frequencies (35/10/35/2/14/2/2)
    kForward,  ///< getDest / insertCF / deleteCF at 71.4/14.3/14.3
    kSingle,   ///< only `single_type`
  };

  explicit Tm1Workload(Tm1Options options = {}, Mix mix = Mix::kFull,
                       Tm1TxnType single_type = Tm1TxnType::kGetSubscriberData)
      : options_(options), mix_(mix), single_type_(single_type) {}

  const char* name() const override;
  void Load(Database& db) override;
  Status RunOne(Database& db, AgentContext& agent) override;

  /// Expose per-type entry points for tests.
  Status GetSubscriberData(Database& db, AgentContext& agent);
  Status GetNewDestination(Database& db, AgentContext& agent);
  Status GetAccessData(Database& db, AgentContext& agent);
  Status UpdateSubscriberData(Database& db, AgentContext& agent);
  Status UpdateLocation(Database& db, AgentContext& agent);
  Status InsertCallForwarding(Database& db, AgentContext& agent);
  Status DeleteCallForwarding(Database& db, AgentContext& agent);

  const Tm1Options& options() const { return options_; }

 private:
  Tm1TxnType PickType(Rng& rng) const;

  Tm1Options options_;
  Mix mix_;
  Tm1TxnType single_type_;

  TableId sub_table_{}, ai_table_{}, sf_table_{}, cf_table_{};
  IndexId sub_pk_{}, sub_nbr_idx_{}, ai_pk_{}, sf_pk_{}, cf_pk_{};
};

}  // namespace slidb
