// TPC-B: the classic bank debit/credit stress test — one transaction type
// touching all four tables (paper §5.1). The branch row update is the
// natural contention point.
#pragma once

#include <cstdint>

#include "src/workload/workload.h"

namespace slidb {

struct TpcbOptions {
  uint32_t branches = 16;
  uint32_t tellers_per_branch = 10;
  uint32_t accounts_per_branch = 10'000;
};

namespace tpcb {

struct Branch {
  uint32_t b_id;
  int64_t balance;
  char filler[44];
};

struct Teller {
  uint32_t t_id;
  uint32_t b_id;
  int64_t balance;
  char filler[40];
};

struct Account {
  uint64_t a_id;
  uint32_t b_id;
  int64_t balance;
  char filler[40];
};

struct History {
  uint32_t t_id;
  uint32_t b_id;
  uint64_t a_id;
  int64_t delta;
  uint64_t timestamp;
  char filler[20];
};

}  // namespace tpcb

class TpcbWorkload : public Workload {
 public:
  explicit TpcbWorkload(TpcbOptions options = {}) : options_(options) {}

  const char* name() const override { return "tpcb"; }
  void Load(Database& db) override;
  Status RunOne(Database& db, AgentContext& agent) override;

  const TpcbOptions& options() const { return options_; }

  /// Consistency check (test support): sum(account) == sum(teller) ==
  /// sum(branch) deltas from initial state.
  bool CheckBalanceInvariant(Database& db, AgentContext& agent,
                             int64_t* account_total, int64_t* teller_total,
                             int64_t* branch_total);

 private:
  TpcbOptions options_;
  TableId branch_table_{}, teller_table_{}, account_table_{}, history_table_{};
  IndexId branch_pk_{}, teller_pk_{}, account_pk_{};
};

}  // namespace slidb
