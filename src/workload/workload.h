// Workload interface: a benchmark = schema + loader + transaction mix.
#pragma once

#include "src/engine/database.h"
#include "src/util/status.h"

namespace slidb {

/// One benchmark workload. Load() runs once (single-threaded, setup phase);
/// RunOne() executes a single transaction picked from the workload's mix.
///
/// RunOne status conventions:
///  * OK        — transaction committed
///  * Aborted   — benchmark-specified failure (invalid input), rolled back;
///                these are valid executions per the TM1 spec and are
///                counted separately
///  * Deadlock / TimedOut — engine-initiated abort; the driver retries with
///                fresh input
class Workload {
 public:
  virtual ~Workload() = default;

  virtual const char* name() const = 0;
  virtual void Load(Database& db) = 0;
  virtual Status RunOne(Database& db, AgentContext& agent) = 0;
};

}  // namespace slidb
