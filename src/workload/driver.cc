#include "src/workload/driver.h"

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "src/util/time_util.h"

namespace slidb {

namespace {

struct AgentSlot {
  std::unique_ptr<AgentContext> agent;
  // Snapshots taken by the agent thread itself at phase transitions, so no
  // cross-thread races on the profile internals.
  ProfileSnapshot profile_begin, profile_end;
  CounterSet counters_begin, counters_end;
  Histogram latency;
  bool saw_begin = false;
  bool saw_end = false;
};

}  // namespace

DriverResult RunWorkload(Database& db, Workload& workload,
                         const DriverOptions& options) {
  // Phases: 0 = warmup, 1 = measuring, 2 = drain/stop.
  std::atomic<int> phase{0};
  const int n = options.num_agents < 1 ? 1 : options.num_agents;

  std::vector<AgentSlot> slots(n);
  for (int i = 0; i < n; ++i) {
    slots[i].agent = db.CreateAgent(options.seed + i * 7919);
  }

  std::vector<std::thread> threads;
  threads.reserve(n);
  for (int i = 0; i < n; ++i) {
    threads.emplace_back([&, i] {
      AgentSlot& slot = slots[i];
      AgentContext& agent = *slot.agent;
      ScopedThreadProfile profile_scope(&agent.profile());
      ScopedCounterSet counter_scope(&agent.counters());

      int local_phase = 0;
      while (true) {
        const int p = phase.load(std::memory_order_acquire);
        if (p != local_phase) {
          agent.profile().Flush();
          if (p >= 1 && !slot.saw_begin) {
            slot.profile_begin = agent.profile().Snapshot();
            slot.counters_begin = agent.counters();
            slot.saw_begin = true;
          }
          if (p >= 2) {
            // Quiesce speculative commits: wait for every parked deferred
            // ack to settle so the settle-latency / dependency-abort
            // counters land in this agent's final snapshot and no ack
            // outlives the run.
            agent.DrainDeferredAcks();
            slot.profile_end = agent.profile().Snapshot();
            slot.counters_end = agent.counters();
            slot.saw_end = true;
            break;
          }
          local_phase = p;
        }
        const uint64_t t0 = NowNanos();
        const Status st = workload.RunOne(db, agent);
        if (st.IsAborted()) {
          CountEvent(Counter::kTxnUserAborts);
        } else if (st.IsDeadlock() || st.IsTimedOut()) {
          CountEvent(Counter::kTxnDeadlockAborts);
        }
        if (local_phase == 1) slot.latency.Add(NowNanos() - t0);
      }
    });
  }

  // Warm-up, then measure, then stop.
  const auto sleep_s = [](double s) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(static_cast<int64_t>(s * 1e6)));
  };
  sleep_s(options.warmup_s);
  const uint64_t t_begin = NowNanos();
  phase.store(1, std::memory_order_release);
  sleep_s(options.duration_s);
  phase.store(2, std::memory_order_release);
  const uint64_t t_end = NowNanos();
  for (auto& t : threads) t.join();

  DriverResult result;
  result.num_agents = n;
  // The measurement window is [phase1, phase2] as seen by the coordinator;
  // agents snapshot within a transaction of those instants.
  result.wall_s = static_cast<double>(t_end - t_begin) / 1e9;

  for (AgentSlot& slot : slots) {
    if (!slot.saw_begin || !slot.saw_end) continue;
    result.profile += slot.profile_end - slot.profile_begin;
    result.counters.Merge(slot.counters_end.Delta(slot.counters_begin));
    result.latency_ns.Merge(slot.latency);
  }
  result.commits = result.counters.Get(Counter::kTxnCommits);
  result.user_aborts = result.counters.Get(Counter::kTxnUserAborts);
  result.deadlock_aborts = result.counters.Get(Counter::kTxnDeadlockAborts);
  result.tps = result.wall_s > 0
                   ? static_cast<double>(result.commits) / result.wall_s
                   : 0;

  const double cpu_seconds =
      static_cast<double>(result.profile.TotalCpu()) / CyclesPerNano() / 1e9;
  const double hw = static_cast<double>(std::thread::hardware_concurrency());
  const double util = cpu_seconds / (result.wall_s * (hw > 0 ? hw : 1));
  result.cpu_utilization = util > 1.0 ? 1.0 : util;
  return result;
}

}  // namespace slidb
