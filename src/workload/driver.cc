#include "src/workload/driver.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include "src/util/time_util.h"

namespace slidb {

namespace {

struct AgentSlot {
  std::unique_ptr<AgentContext> agent;
  // Snapshots taken by the agent thread itself at phase transitions, so no
  // cross-thread races on the profile internals.
  ProfileSnapshot profile_begin, profile_end;
  CounterSet counters_begin, counters_end;
  Histogram latency;        ///< committed transactions
  Histogram abort_latency;  ///< final-attempt failures
  uint64_t goodput = 0;
  uint64_t deadline_misses = 0;
  bool saw_begin = false;
  bool saw_end = false;
};

/// Poisson inter-arrival gap in nanoseconds at `rate` arrivals/second.
uint64_t ExpIntervalNs(Rng& rng, double rate) {
  const double u = rng.NextDouble();  // [0, 1)
  const double gap_s = -std::log(1.0 - u) / rate;
  return static_cast<uint64_t>(gap_s * 1e9);
}

}  // namespace

uint64_t RetryPolicy::BackoffNs(uint32_t attempt, Rng& rng) const {
  if (backoff_base_us == 0) return 0;
  const uint32_t doublings = std::min(attempt > 0 ? attempt - 1 : 0u, 20u);
  double us = static_cast<double>(backoff_base_us) *
              static_cast<double>(1ull << doublings);
  us = std::min(us, static_cast<double>(backoff_cap_us));
  if (jitter > 0) us *= 1.0 + jitter * (2.0 * rng.NextDouble() - 1.0);
  return us > 0 ? static_cast<uint64_t>(us * 1e3) : 0;
}

DriverResult RunWorkload(Database& db, Workload& workload,
                         const DriverOptions& options) {
  // Phases: 0 = warmup, 1 = measuring, 2 = drain/stop.
  std::atomic<int> phase{0};
  const int n = options.num_agents < 1 ? 1 : options.num_agents;
  const bool open_loop = options.offered_tps > 0;
  const double agent_rate = open_loop ? options.offered_tps / n : 0;

  std::vector<AgentSlot> slots(n);
  for (int i = 0; i < n; ++i) {
    slots[i].agent = db.CreateAgent(options.seed + i * 7919);
  }

  std::vector<std::thread> threads;
  threads.reserve(n);
  for (int i = 0; i < n; ++i) {
    threads.emplace_back([&, i] {
      AgentSlot& slot = slots[i];
      AgentContext& agent = *slot.agent;
      ScopedThreadProfile profile_scope(&agent.profile());
      ScopedCounterSet counter_scope(&agent.counters());
      // Private stream for arrival gaps and backoff jitter, so open-loop /
      // retry draws never perturb the workload's own key sequence.
      Rng driver_rng(options.seed * 0x9e3779b97f4a7c15ULL + i + 1);

      uint64_t next_arrival = NowNanos();
      int local_phase = 0;
      while (true) {
        const int p = phase.load(std::memory_order_acquire);
        if (p != local_phase) {
          agent.profile().Flush();
          if (p >= 1 && !slot.saw_begin) {
            slot.profile_begin = agent.profile().Snapshot();
            slot.counters_begin = agent.counters();
            slot.saw_begin = true;
          }
          if (p >= 2) {
            // Quiesce speculative commits: wait for every parked deferred
            // ack to settle so the settle-latency / dependency-abort
            // counters land in this agent's final snapshot and no ack
            // outlives the run.
            agent.DrainDeferredAcks();
            slot.profile_end = agent.profile().Snapshot();
            slot.counters_end = agent.counters();
            slot.saw_end = true;
            break;
          }
          local_phase = p;
        }

        uint64_t arrival = NowNanos();
        if (open_loop) {
          if (arrival < next_arrival) {
            // Idle until the next scheduled arrival, in bounded chunks so
            // phase flips are noticed promptly.
            std::this_thread::sleep_for(std::chrono::nanoseconds(
                std::min<uint64_t>(next_arrival - arrival, 500'000)));
            continue;
          }
          // Latency is measured from the SCHEDULE, and the next arrival
          // advances from the schedule too (not from completion): when the
          // system falls behind, the backlog — and the queueing delay it
          // causes — accumulates exactly as the offered load dictates.
          arrival = next_arrival;
          next_arrival += ExpIntervalNs(driver_rng, agent_rate);
        }
        const uint64_t deadline_ns =
            options.txn_deadline_us != 0
                ? arrival + options.txn_deadline_us * 1'000
                : 0;
        agent.set_txn_deadline_ns(deadline_ns);

        Status st;
        for (uint32_t attempt = 1;; ++attempt) {
          st = options.use_governor ? db.AdmitTxn(&agent) : Status::OK();
          if (st.ok()) {
            st = workload.RunOne(db, agent);
            // Commit/Abort already returned the token; this is the backstop
            // for workloads that bail before Begin (idempotent).
            db.FinishAdmission(&agent);
          }
          if (st.ok() || !st.retryable()) break;
          if (attempt >= options.retry.max_attempts) {
            if (options.retry.max_attempts > 1) {
              CountEvent(Counter::kTxnRetriesExhausted);
            }
            break;
          }
          // A transaction past its response budget is dead — re-running it
          // could only burn capacity the on-time work needs.
          if (deadline_ns != 0 && NowNanos() >= deadline_ns) break;
          if (phase.load(std::memory_order_relaxed) >= 2) break;
          CountEvent(Counter::kTxnRetries);
          const uint64_t backoff =
              options.retry.BackoffNs(attempt, driver_rng);
          if (backoff != 0) {
            std::this_thread::sleep_for(std::chrono::nanoseconds(backoff));
          }
        }

        const uint64_t done = NowNanos();
        if (st.IsAborted()) {
          CountEvent(Counter::kTxnUserAborts);
        } else if (st.retryable()) {
          CountEvent(Counter::kTxnDeadlockAborts);
        }
        if (local_phase == 1) {
          if (st.ok()) {
            slot.latency.Add(done - arrival);
            if (deadline_ns == 0 || done <= deadline_ns) {
              ++slot.goodput;
            } else {
              ++slot.deadline_misses;
            }
          } else {
            slot.abort_latency.Add(done - arrival);
          }
        }
      }
    });
  }

  // Warm-up, then measure, then stop.
  const auto sleep_s = [](double s) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(static_cast<int64_t>(s * 1e6)));
  };
  sleep_s(options.warmup_s);
  const uint64_t t_begin = NowNanos();
  phase.store(1, std::memory_order_release);
  sleep_s(options.duration_s);
  phase.store(2, std::memory_order_release);
  const uint64_t t_end = NowNanos();
  for (auto& t : threads) t.join();

  DriverResult result;
  result.num_agents = n;
  // The measurement window is [phase1, phase2] as seen by the coordinator;
  // agents snapshot within a transaction of those instants.
  result.wall_s = static_cast<double>(t_end - t_begin) / 1e9;

  for (AgentSlot& slot : slots) {
    if (!slot.saw_begin || !slot.saw_end) continue;
    result.profile += slot.profile_end - slot.profile_begin;
    result.counters.Merge(slot.counters_end.Delta(slot.counters_begin));
    result.latency_ns.Merge(slot.latency);
    result.abort_latency_ns.Merge(slot.abort_latency);
    result.goodput_commits += slot.goodput;
    result.deadline_misses += slot.deadline_misses;
  }
  result.commits = result.counters.Get(Counter::kTxnCommits);
  result.user_aborts = result.counters.Get(Counter::kTxnUserAborts);
  result.deadlock_aborts = result.counters.Get(Counter::kTxnDeadlockAborts);
  result.retries = result.counters.Get(Counter::kTxnRetries);
  result.retries_exhausted =
      result.counters.Get(Counter::kTxnRetriesExhausted);
  result.gov_sheds = result.counters.Get(Counter::kGovSheds);
  result.wait_depth_cancels =
      result.counters.Get(Counter::kLockWaitDepthCancels);
  result.deadline_aborts = result.counters.Get(Counter::kTxnDeadlineAborts);
  result.tps = result.wall_s > 0
                   ? static_cast<double>(result.commits) / result.wall_s
                   : 0;
  result.goodput_tps =
      result.wall_s > 0
          ? static_cast<double>(result.goodput_commits) / result.wall_s
          : 0;

  const double cpu_seconds =
      static_cast<double>(result.profile.TotalCpu()) / CyclesPerNano() / 1e9;
  const double hw = static_cast<double>(std::thread::hardware_concurrency());
  const double util = cpu_seconds / (result.wall_s * (hw > 0 ? hw : 1));
  result.cpu_utilization = util > 1.0 ? 1.0 : util;
  return result;
}

}  // namespace slidb
