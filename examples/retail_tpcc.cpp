// Retail example: the TPC-C "small mix" the paper analyses (Payment /
// New Order / Order Status at 46.7/48.9/4.3) on a multi-warehouse store,
// comparing SLI off vs on and verifying order-id consistency afterwards.
//
//   $ ./example_retail_tpcc [agents]
#include <cstdio>
#include <cstdlib>

#include "src/workload/driver.h"
#include "src/workload/tpcc.h"

using namespace slidb;

int main(int argc, char** argv) {
  const int agents = argc > 1 ? std::atoi(argv[1]) : 4;

  DatabaseOptions options;
  options.lock.sim_queue_work_ns = 100;
  Database db(options);

  TpccOptions store;
  store.warehouses = 4;
  store.districts_per_warehouse = 10;
  store.customers_per_district = 300;
  store.items = 1'000;
  store.initial_orders_per_district = 30;
  TpccWorkload workload(store, TpccWorkload::Mix::kSmall);
  std::printf("loading %u warehouses x %u districts x %u customers...\n",
              store.warehouses, store.districts_per_warehouse,
              store.customers_per_district);
  workload.Load(db);

  DriverOptions dopts;
  dopts.num_agents = agents;
  dopts.duration_s = 1.0;
  dopts.warmup_s = 0.3;

  const DriverResult base = RunWorkload(db, workload, dopts);
  std::printf("\nbaseline: %.0f txn/s (%llu deadlock retries)\n", base.tps,
              static_cast<unsigned long long>(base.deadlock_aborts));

  db.SetSliEnabled(true);
  const DriverResult sli = RunWorkload(db, workload, dopts);
  std::printf("with SLI: %.0f txn/s (%+.1f%%)\n", sli.tps,
              base.tps > 0 ? 100.0 * (sli.tps - base.tps) / base.tps : 0.0);

  auto auditor = db.CreateAgent(99);
  const bool ok = workload.CheckConsistency(db, *auditor);
  std::printf("order-id consistency check: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
