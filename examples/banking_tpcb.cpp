// Banking example: TPC-B debit/credit over branches, tellers, accounts and
// history, demonstrating ACID behaviour under concurrency: after any number
// of concurrent transfers the account/teller/branch totals must agree.
//
//   $ ./example_banking_tpcb [agents] [seconds]
#include <cstdio>
#include <cstdlib>

#include "src/workload/driver.h"
#include "src/workload/tpcb.h"

using namespace slidb;

int main(int argc, char** argv) {
  const int agents = argc > 1 ? std::atoi(argv[1]) : 4;
  const double seconds = argc > 2 ? std::atof(argv[2]) : 1.0;

  DatabaseOptions options;
  options.lock.enable_sli = true;  // banking wants every µs of headroom
  Database db(options);

  TpcbOptions bank;
  bank.branches = 8;
  bank.tellers_per_branch = 10;
  bank.accounts_per_branch = 5'000;
  TpcbWorkload workload(bank);
  std::printf("loading %u branches / %u tellers / %u accounts...\n",
              bank.branches, bank.branches * bank.tellers_per_branch,
              bank.branches * bank.accounts_per_branch);
  workload.Load(db);

  DriverOptions dopts;
  dopts.num_agents = agents;
  dopts.duration_s = seconds;
  dopts.warmup_s = 0.2;
  const DriverResult result = RunWorkload(db, workload, dopts);

  std::printf("\n%d agents, %.1fs: %.0f transfers/s, p95 latency %.0f us\n",
              agents, seconds, result.tps,
              static_cast<double>(result.latency_ns.Percentile(0.95)) / 1000);

  // The audit: money is conserved across all three ledgers.
  auto auditor = db.CreateAgent(424242);
  int64_t accounts_total, tellers_total, branches_total;
  const bool consistent = workload.CheckBalanceInvariant(
      db, *auditor, &accounts_total, &tellers_total, &branches_total);
  std::printf("audit: accounts=%lld tellers=%lld branches=%lld -> %s\n",
              static_cast<long long>(accounts_total),
              static_cast<long long>(tellers_total),
              static_cast<long long>(branches_total),
              consistent ? "CONSISTENT" : "BROKEN");
  return consistent ? 0 : 1;
}
