// Telecom HLR example: the workload class that motivates the paper —
// masses of very short transactions against a Home Location Register
// (TM1 / NDBB). Runs the full mix with and without SLI and prints the
// work/contention breakdown for both, reproducing the Fig 6 → Fig 10
// transition in miniature.
//
//   $ ./example_telecom_hlr [agents]
#include <cstdio>
#include <cstdlib>

#include "src/workload/driver.h"
#include "src/workload/tm1.h"

using namespace slidb;

int main(int argc, char** argv) {
  const int agents = argc > 1 ? std::atoi(argv[1]) : 8;

  DatabaseOptions options;
  options.lock.sim_queue_work_ns = 100;  // emulate a many-context machine
  Database db(options);

  Tm1Options tm1_options;
  tm1_options.subscribers = 10'000;
  Tm1Workload workload(tm1_options);
  std::printf("loading %llu subscribers...\n",
              static_cast<unsigned long long>(tm1_options.subscribers));
  workload.Load(db);

  DriverOptions dopts;
  dopts.num_agents = agents;
  dopts.duration_s = 1.0;
  dopts.warmup_s = 0.3;

  std::printf("\n=== baseline (SLI off), %d agents ===\n", agents);
  const DriverResult base = RunWorkload(db, workload, dopts);
  std::printf("throughput: %.0f txn/s (%.1f%% user aborts by design)\n",
              base.tps, 100.0 * base.UserAbortRate());
  std::printf("%s", base.profile.ToString().c_str());

  db.SetSliEnabled(true);
  std::printf("\n=== SLI on, %d agents ===\n", agents);
  const DriverResult sli = RunWorkload(db, workload, dopts);
  std::printf("throughput: %.0f txn/s (%+.1f%% vs baseline)\n", sli.tps,
              base.tps > 0 ? 100.0 * (sli.tps - base.tps) / base.tps : 0.0);
  std::printf("%s", sli.profile.ToString().c_str());

  std::printf("\nSLI outcomes: inherited=%llu reclaimed=%llu "
              "invalidated=%llu discarded=%llu\n",
              static_cast<unsigned long long>(
                  sli.counters.Get(Counter::kSliInherited)),
              static_cast<unsigned long long>(
                  sli.counters.Get(Counter::kSliReclaimed)),
              static_cast<unsigned long long>(
                  sli.counters.Get(Counter::kSliInvalidated)),
              static_cast<unsigned long long>(
                  sli.counters.Get(Counter::kSliDiscarded)));
  return 0;
}
