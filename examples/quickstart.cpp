// Quickstart: create a database, run transactions, toggle Speculative Lock
// Inheritance, and read the built-in statistics.
//
//   $ ./example_quickstart
#include <cstdio>
#include <cstring>

#include "src/engine/database.h"

using namespace slidb;

int main() {
  // 1. A database with SLI available but disabled (the paper's baseline).
  DatabaseOptions options;
  options.lock.enable_sli = false;
  Database db(options);

  // 2. Schema: one table with a hash primary index.
  const TableId accounts = db.CreateTable("accounts");
  const IndexId pk = db.CreateIndex(accounts, "pk", IndexKind::kHash,
                                    /*unique=*/true);

  // 3. An agent executes transactions back-to-back. SLI passes locks
  //    between consecutive transactions of the same agent.
  auto agent = db.CreateAgent(/*seed=*/1);

  // 4. Insert a few rows transactionally.
  db.Begin(agent.get());
  for (int64_t id = 0; id < 10; ++id) {
    int64_t balance = 100 * id;
    Rid rid;
    if (!db.Insert(agent.get(), accounts,
                   {reinterpret_cast<const uint8_t*>(&balance),
                    sizeof(balance)},
                   &rid)
             .ok()) {
      std::fprintf(stderr, "insert failed\n");
      return 1;
    }
    db.IndexInsert(agent.get(), pk, static_cast<uint64_t>(id), rid.ToU64());
  }
  if (!db.Commit(agent.get()).ok()) return 1;
  std::printf("loaded 10 rows\n");

  // 5. Read-modify-write with explicit X locking (SELECT ... FOR UPDATE).
  db.Begin(agent.get());
  uint64_t rid_u64;
  db.IndexLookup(pk, 7, &rid_u64);
  const Rid rid = Rid::FromU64(rid_u64);
  int64_t balance;
  db.LockRowExclusive(agent.get(), accounts, rid);
  db.Read(agent.get(), accounts, rid, &balance, sizeof(balance));
  balance += 42;
  db.Update(agent.get(), accounts, rid,
            {reinterpret_cast<const uint8_t*>(&balance), sizeof(balance)});
  db.Commit(agent.get());
  std::printf("account 7 balance is now %lld\n",
              static_cast<long long>(balance));

  // 6. Abort rolls everything back.
  db.Begin(agent.get());
  int64_t scratch = -1;
  db.LockRowExclusive(agent.get(), accounts, rid);
  db.Update(agent.get(), accounts, rid,
            {reinterpret_cast<const uint8_t*>(&scratch), sizeof(scratch)});
  db.Abort(agent.get());
  db.Begin(agent.get());
  db.Read(agent.get(), accounts, rid, &balance, sizeof(balance));
  db.Commit(agent.get());
  std::printf("after abort, account 7 balance is still %lld\n",
              static_cast<long long>(balance));

  // 7. Turn on SLI and watch locks flow between transactions: route the
  //    counters to a local set so we can print them. In production SLI only
  //    inherits *hot* locks (criterion 2) — with a single quiet agent
  //    nothing ever becomes hot, so for this demo we waive that criterion.
  db.SetSliEnabled(true);
  db.lock_manager().mutable_options().sli_require_hot = false;
  CounterSet counters;
  {
    ScopedCounterSet routed(&counters);
    for (int i = 0; i < 20; ++i) {
      db.Begin(agent.get());
      db.Read(agent.get(), accounts, rid, &balance, sizeof(balance));
      db.Commit(agent.get());
    }
  }
  std::printf("\nwith SLI on, 20 read transactions produced:\n%s",
              counters.ToString().c_str());
  std::printf(
      "\n(reclaimed = lock requests served by inheritance instead of the\n"
      " lock manager — the paper's fast path)\n");
  return 0;
}
