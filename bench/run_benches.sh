#!/usr/bin/env bash
# Runs the lock-manager perf benches and writes machine-readable results so
# the perf trajectory is tracked across PRs. Usage:
#   bench/run_benches.sh [build_dir] [output.json] [extra bench args...]
# Defaults: build/ and BENCH_lockmgr.json in the repo root; pass --quick
# (default) or longer windows via extra args.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_lockmgr.json}"
shift $(( $# > 2 ? 2 : $# )) || true
EXTRA_ARGS=("${@:-"--quick"}")

if [[ ! -x "$BUILD_DIR/micro_grant_path" ]]; then
  echo "error: $BUILD_DIR/micro_grant_path not built (run: cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j)" >&2
  exit 1
fi

"$BUILD_DIR/micro_grant_path" "${EXTRA_ARGS[@]}" --json="$OUT"
echo "bench results written to $OUT"
