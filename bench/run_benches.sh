#!/usr/bin/env bash
# Runs the perf benches and writes machine-readable results so the perf
# trajectory is tracked across PRs. Usage:
#   bench/run_benches.sh [build_dir] [out_dir] [extra bench args...]
# Defaults: build/ and the repo root; pass --quick (default) or longer
# windows via extra args. Produces:
#   $OUT_DIR/BENCH_lockmgr.json    (micro_grant_path: grant-path latency)
#   $OUT_DIR/BENCH_btree.json      (micro_btree: OLC vs crabbing probes)
#   $OUT_DIR/BENCH_workloads.json  (macro_workloads: log append + TPC-B/TM1)
#   $OUT_DIR/BENCH_recovery.json   (micro_recovery: log scan + redo replay)
#   $OUT_DIR/BENCH_contention.json (macro_contention: SLI policy x skew matrix)
#   $OUT_DIR/BENCH_overload.json   (macro_overload: open-loop load x governor)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
OUT_DIR="${2:-.}"
shift $(( $# > 2 ? 2 : $# )) || true
EXTRA_ARGS=("${@:-"--quick"}")

for bench in micro_grant_path micro_btree macro_workloads micro_recovery macro_contention macro_overload; do
  if [[ ! -x "$BUILD_DIR/$bench" ]]; then
    echo "error: $BUILD_DIR/$bench not built (run: cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j)" >&2
    exit 1
  fi
done

"$BUILD_DIR/micro_grant_path" "${EXTRA_ARGS[@]}" --json="$OUT_DIR/BENCH_lockmgr.json"
"$BUILD_DIR/micro_btree" "${EXTRA_ARGS[@]}" --json="$OUT_DIR/BENCH_btree.json"
"$BUILD_DIR/macro_workloads" "${EXTRA_ARGS[@]}" --json="$OUT_DIR/BENCH_workloads.json"
"$BUILD_DIR/micro_recovery" "${EXTRA_ARGS[@]}" --json="$OUT_DIR/BENCH_recovery.json"
"$BUILD_DIR/macro_contention" "${EXTRA_ARGS[@]}" --json="$OUT_DIR/BENCH_contention.json"
"$BUILD_DIR/macro_overload" "${EXTRA_ARGS[@]}" --json="$OUT_DIR/BENCH_overload.json"
echo "bench results written to $OUT_DIR/BENCH_lockmgr.json, $OUT_DIR/BENCH_btree.json, $OUT_DIR/BENCH_workloads.json, $OUT_DIR/BENCH_recovery.json, $OUT_DIR/BENCH_contention.json and $OUT_DIR/BENCH_overload.json"
