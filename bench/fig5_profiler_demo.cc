// Figure 5: illustration of the profiler methodology — "work, not time".
// Five threads over a fixed wall-clock window: two daemons mostly blocked,
// two threads serializing on one latch, one thread fully busy. The profiler
// must attribute busy cycles as work, serialization as contention, and
// sleeps as blocked time (excluded from CPU breakdowns).
#include <cstdio>
#include <thread>
#include <vector>

#include "fig_common.h"
#include "src/util/latch.h"

using namespace slidb;
using namespace slidb::bench;

int main(int argc, char** argv) {
  const BenchArgs args = ParseArgs(argc, argv);
  const uint64_t window_ns =
      static_cast<uint64_t>((args.quick ? 0.3 : 1.5) * 1e9);

  std::printf("Figure 5: profiler methodology demo (5 threads, %.1fs window)\n\n",
              static_cast<double>(window_ns) / 1e9);

  SpinLatch shared_latch;
  std::vector<ThreadProfile> profiles(5);
  std::vector<std::thread> threads;
  const uint64_t deadline = NowNanos() + window_ns;

  // Threads 0-1: daemons — sleep in short stretches (blocked time).
  for (int i = 0; i < 2; ++i) {
    threads.emplace_back([&, i] {
      ScopedThreadProfile scope(&profiles[i]);
      while (NowNanos() < deadline) {
        const uint64_t t0 = RdCycles();
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        profiles[i].AttributeBlocked(t0, RdCycles());
        SpinForNanos(100'000);  // a sliver of work
      }
    });
  }
  // Threads 2-3: serialize on one latch, holding it for long stretches.
  // The short pause after release keeps one thread from monopolizing the
  // latch by re-acquiring before its peer's spin loop notices the release.
  for (int i = 2; i < 4; ++i) {
    threads.emplace_back([&, i] {
      ScopedThreadProfile scope(&profiles[i]);
      ScopedComponent comp(Component::kLockManager);
      while (NowNanos() < deadline) {
        shared_latch.Acquire();
        SpinForNanos(2'000'000);  // 2 ms critical section
        shared_latch.Release();
        SpinForNanos(50'000);
      }
    });
  }
  // Thread 4: pure work.
  threads.emplace_back([&] {
    ScopedThreadProfile scope(&profiles[4]);
    while (NowNanos() < deadline) SpinForNanos(1'000'000);
  });
  for (auto& t : threads) t.join();

  TablePrinter table({"thread", "role", "work%", "cont%", "blocked%"});
  const char* roles[5] = {"daemon", "daemon", "serializer", "serializer",
                          "busy"};
  for (int i = 0; i < 5; ++i) {
    const ProfileSnapshot s = profiles[i].Snapshot();
    const double total = static_cast<double>(s.TotalWork() +
                                             s.TotalContention() +
                                             s.TotalBlocked());
    const auto pct = [&](uint64_t v) {
      return total == 0 ? 0.0 : 100.0 * static_cast<double>(v) / total;
    };
    table.Row({Fmt("%d", i), roles[i], Fmt("%.1f", pct(s.TotalWork())),
               Fmt("%.1f", pct(s.TotalContention())),
               Fmt("%.1f", pct(s.TotalBlocked()))});
  }
  std::printf(
      "\nExpected shape (paper): daemons mostly blocked, serializers split\n"
      "work/contention roughly evenly, busy thread ~100%% work.\n");
  return 0;
}
