// B-tree probe microbenchmark: optimistic lock coupling vs latch crabbing.
//
// The paper's method is to find and kill the next centralized critical
// section; after the lock-manager (PR 1) and log (PR 2), the index read
// path was it: crabbing writes the latch word of the root and every inner
// node on every probe, so all readers ping-pong the same cache lines. OLC
// readers validate versions instead — zero stores to shared node memory on
// the conflict-free path — so probe throughput should scale with hardware
// contexts where crabbing flattens.
//
// Two sections:
//   probe: read-only Lookup throughput across a thread ladder, per mode.
//   mixed: read/write ratio sweep (insert/remove churn) at the ladder's
//          contended points, per mode — measures restart cost under
//          conflicts, the regime OLC trades for its read-path win.
//
// Emits a table on stdout and, with --json=FILE, BENCH_btree.json:
// {"bench":"micro_btree","probe":[{"mode":…,"threads":…,"mops":…,
//  "restarts":…}…],"mixed":[{"mode":…,"threads":…,"write_pct":…,…}…]}.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "src/stats/counters.h"
#include "src/storage/btree.h"
#include "src/util/rng.h"
#include "src/util/time_util.h"

namespace slidb::bench {
namespace {

const char* ModeName(BTreeOptions::SyncMode mode) {
  return mode == BTreeOptions::SyncMode::kOptimistic ? "olc" : "crabbing";
}

struct Sample {
  const char* mode;
  int threads;
  int write_pct;  // 0 for the probe section
  double mops;
  double ns_per_op;
  uint64_t restarts;
  uint64_t leaf_reclaims;
};

Sample RunOne(BTreeOptions::SyncMode mode, int threads, int write_pct,
              uint64_t keys, double warmup_s, double duration_s) {
  BTreeOptions opts;
  opts.sync_mode = mode;
  BTree tree(opts);
  for (uint64_t i = 0; i < keys; ++i) {
    if (!tree.Insert(i, i).ok()) std::abort();
  }

  std::atomic<bool> warm{true};
  std::atomic<bool> stop{false};
  std::vector<uint64_t> ops(static_cast<size_t>(threads), 0);
  std::vector<CounterSet> counters(static_cast<size_t>(threads));

  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      ScopedCounterSet routed(&counters[t]);
      Rng rng(1234 + static_cast<uint64_t>(t));
      // Writer churn: alternate insert/remove of thread-private values so
      // the tree size stays bounded while leaves split and drain.
      std::vector<std::pair<uint64_t, uint64_t>> mine;
      uint64_t seq = 0;
      uint64_t local = 0;
      bool counted = false;
      for (;;) {
        if (stop.load(std::memory_order_relaxed)) break;
        if (!counted && !warm.load(std::memory_order_relaxed)) {
          local = 0;  // measurement window opens: discard warm-up ops
          counted = true;
        }
        const bool write =
            write_pct > 0 &&
            rng.Uniform(0, 99) < static_cast<uint64_t>(write_pct);
        if (write) {
          if (mine.size() < 64 || (seq & 1) == 0) {
            const uint64_t k = rng.Uniform(0, keys - 1);
            const uint64_t v =
                keys + (static_cast<uint64_t>(t) << 32) + seq;
            if (tree.Insert(k, v).ok()) mine.emplace_back(k, v);
          } else {
            const auto victim = mine[rng.Uniform(0, mine.size() - 1)];
            if (tree.Remove(victim.first, victim.second).ok()) {
              mine.erase(std::find(mine.begin(), mine.end(), victim));
            }
          }
          ++seq;
        } else {
          uint64_t v;
          (void)tree.Lookup(rng.Uniform(0, keys - 1), &v);
        }
        ++local;
      }
      ops[t] = local;
    });
  }

  // Sleep (not spin): the coordinator must not steal a hardware context
  // from the workers on small hosts.
  std::this_thread::sleep_for(std::chrono::duration<double>(warmup_s));
  const uint64_t start_us = NowMicros();
  warm.store(false);
  std::this_thread::sleep_for(std::chrono::duration<double>(duration_s));
  stop.store(true);
  const uint64_t elapsed_us = NowMicros() - start_us;
  for (auto& w : workers) w.join();

  uint64_t total_ops = 0;
  CounterSet total;
  for (int t = 0; t < threads; ++t) {
    total_ops += ops[t];
    total.Merge(counters[t]);
  }

  Sample s;
  s.mode = ModeName(mode);
  s.threads = threads;
  s.write_pct = write_pct;
  s.mops = static_cast<double>(total_ops) / static_cast<double>(elapsed_us);
  s.ns_per_op = total_ops > 0 ? static_cast<double>(elapsed_us) * 1000.0 *
                                    threads / static_cast<double>(total_ops)
                              : 0.0;
  s.restarts = total.Get(Counter::kBtreeRestarts);
  s.leaf_reclaims = total.Get(Counter::kBtreeLeafReclaims);
  return s;
}

int Main(int argc, char** argv) {
  const BenchArgs args = ParseArgs(argc, argv);
  const uint64_t keys = args.quick ? 50'000 : 200'000;
  const double warmup = args.quick ? 0.05 : args.warmup_s;
  const double window = args.quick ? 0.15 : args.duration_s;
  std::vector<int> ladder = ThreadLadder(args.max_threads);
  if (args.quick && ladder.size() > 4) {
    ladder = {ladder[0], ladder[1], ladder[ladder.size() / 2],
              ladder.back()};
  }
  const BTreeOptions::SyncMode modes[] = {
      BTreeOptions::SyncMode::kCrabbing,
      BTreeOptions::SyncMode::kOptimistic,
  };

  std::vector<Sample> probe, mixed;

  TablePrinter table(
      {"section", "mode", "threads", "write%", "Mops/s", "ns/op(thread)",
       "restarts", "leaf_reclaims"});
  for (auto mode : modes) {
    for (int threads : ladder) {
      const Sample s = RunOne(mode, threads, 0, keys, warmup, window);
      probe.push_back(s);
      table.Row({"probe", s.mode, Fmt("%d", s.threads), "0",
                 Fmt("%.2f", s.mops), Fmt("%.0f", s.ns_per_op),
                 Fmt("%llu", static_cast<unsigned long long>(s.restarts)),
                 "-"});
    }
  }
  // Mixed ratios at the most contended ladder point (plus single-thread
  // for the uncontended floor).
  const int contended = ladder.back();
  const std::vector<int> mixed_threads =
      contended > 1 ? std::vector<int>{1, contended} : std::vector<int>{1};
  for (auto mode : modes) {
    for (int threads : mixed_threads) {
      for (int write_pct : {5, 50}) {
        const Sample s =
            RunOne(mode, threads, write_pct, keys, warmup, window);
        mixed.push_back(s);
        table.Row(
            {"mixed", s.mode, Fmt("%d", s.threads), Fmt("%d", s.write_pct),
             Fmt("%.2f", s.mops), Fmt("%.0f", s.ns_per_op),
             Fmt("%llu", static_cast<unsigned long long>(s.restarts)),
             Fmt("%llu", static_cast<unsigned long long>(s.leaf_reclaims))});
      }
    }
  }

  // Headline: read-path speedup at max parallelism.
  double olc_max = 0, crab_max = 0;
  for (const Sample& s : probe) {
    if (s.threads != ladder.back()) continue;
    if (s.mode == std::string("olc")) olc_max = s.mops;
    if (s.mode == std::string("crabbing")) crab_max = s.mops;
  }
  if (crab_max > 0) {
    std::printf("# probe @%d threads: OLC %.2f Mops/s vs crabbing %.2f "
                "Mops/s (%.2fx)\n",
                ladder.back(), olc_max, crab_max, olc_max / crab_max);
  }

  JsonWriter json;
  json.BeginObject();
  json.Key("bench").Value("micro_btree");
  json.Key("quick").Value(args.quick);
  json.Key("keys").Value(keys);
  json.Key("probe").BeginArray();
  for (const Sample& s : probe) {
    json.BeginObject();
    json.Key("mode").Value(s.mode);
    json.Key("threads").Value(static_cast<int64_t>(s.threads));
    json.Key("mops").Value(s.mops);
    json.Key("ns_per_op").Value(s.ns_per_op);
    json.Key("restarts").Value(s.restarts);
    json.EndObject();
  }
  json.EndArray();
  json.Key("mixed").BeginArray();
  for (const Sample& s : mixed) {
    json.BeginObject();
    json.Key("mode").Value(s.mode);
    json.Key("threads").Value(static_cast<int64_t>(s.threads));
    json.Key("write_pct").Value(static_cast<int64_t>(s.write_pct));
    json.Key("mops").Value(s.mops);
    json.Key("restarts").Value(s.restarts);
    json.Key("leaf_reclaims").Value(s.leaf_reclaims);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  if (!args.json_path.empty()) {
    if (!json.WriteTo(args.json_path)) {
      std::fprintf(stderr, "failed to write %s\n", args.json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", args.json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace slidb::bench

int main(int argc, char** argv) { return slidb::bench::Main(argc, argv); }
