// Figure 11: throughput improvement due to SLI — the headline result.
// The paper reports 10-40% speedups for the short transactions, little or
// no change for the large TPC-C transactions, and no regressions anywhere.
#include <cstdio>

#include "fig_common.h"

using namespace slidb;
using namespace slidb::bench;

int main(int argc, char** argv) {
  const BenchArgs args = ParseArgs(argc, argv);
  std::printf("Figure 11: SLI speedup over baseline (loaded system)\n\n");

  TablePrinter table(
      {"workload", "threads", "tps_base", "tps_sli", "speedup%"});
  const int threads = args.max_threads > 0 ? args.max_threads : 8;
  for (auto& entry : PaperRoster(args.quick)) {
    DriverOptions dopts;
    dopts.num_agents = threads;
    dopts.duration_s = args.duration_s;
    dopts.warmup_s = args.warmup_s;
    dopts.seed = args.seed;
    // Fresh, identically distributed database per configuration; only one
    // alive at a time (each owns background threads).
    bool dump = false;
    for (int i = 1; i < argc; ++i) {
      if (std::string(argv[i]) == "--dump") dump = true;
    }
    double tps_base = 0, tps_sli = 0;
    {
      auto pw = entry.make(/*sli=*/false);
      const DriverResult r = RunWorkload(*pw->db, *pw->workload, dopts);
      tps_base = r.tps;
      if (dump) {
        std::printf("[base] %s deadlocks=%llu waits=%llu\n%s",
                    entry.label.c_str(),
                    static_cast<unsigned long long>(r.deadlock_aborts),
                    static_cast<unsigned long long>(
                        r.counters.Get(Counter::kLockWaits)),
                    r.profile.ToString().c_str());
      }
    }
    {
      auto pw = entry.make(/*sli=*/true);
      const DriverResult r = RunWorkload(*pw->db, *pw->workload, dopts);
      tps_sli = r.tps;
      if (dump) {
        std::printf("[sli ] %s deadlocks=%llu waits=%llu inh=%llu rec=%llu inval=%llu disc=%llu\n%s",
                    entry.label.c_str(),
                    static_cast<unsigned long long>(r.deadlock_aborts),
                    static_cast<unsigned long long>(
                        r.counters.Get(Counter::kLockWaits)),
                    static_cast<unsigned long long>(
                        r.counters.Get(Counter::kSliInherited)),
                    static_cast<unsigned long long>(
                        r.counters.Get(Counter::kSliReclaimed)),
                    static_cast<unsigned long long>(
                        r.counters.Get(Counter::kSliInvalidated)),
                    static_cast<unsigned long long>(
                        r.counters.Get(Counter::kSliDiscarded)),
                    r.profile.ToString().c_str());
      }
    }
    const double speedup =
        tps_base > 0 ? 100.0 * (tps_sli - tps_base) / tps_base : 0.0;
    table.Row({entry.label, Fmt("%d", threads), Fmt("%.0f", tps_base),
               Fmt("%.0f", tps_sli), Fmt("%+.1f", speedup)});
  }
  std::printf(
      "\nExpected shape (paper): biggest gains for the short TM1/TPC-B\n"
      "transactions; ~0 for Delivery/StockLevel; no significant losses.\n");
  return 0;
}
