// Shared helpers for the per-figure benchmark harnesses.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace slidb::bench {

/// Print an aligned table row to stdout and mirror it as CSV to stderr
/// when --csv is passed (set by ParseArgs).
struct TablePrinter {
  explicit TablePrinter(std::vector<std::string> headers);
  void Row(const std::vector<std::string>& cells);

  std::vector<size_t> widths;
};

/// Common CLI knobs for the figure benches.
struct BenchArgs {
  double duration_s = 1.0;     ///< measurement window per data point
  double warmup_s = 0.3;       ///< discarded warm-up window
  int max_threads = 0;         ///< 0 = default ladder
  uint64_t seed = 42;
  bool quick = false;          ///< CI mode: tiny datasets, short windows
  uint64_t sim_queue_ns = 100;  ///< simulated queue work per entry (--sim=NS)
  std::string json_path;        ///< write machine-readable results (--json=F)
};

/// Minimal JSON emitter for the BENCH_*.json result files. Handles comma
/// placement; the caller is responsible for well-formed nesting.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  /// Starts a "key": inside an object; follow with a value or Begin*().
  JsonWriter& Key(const std::string& k);
  JsonWriter& Value(double v);
  JsonWriter& Value(uint64_t v);
  JsonWriter& Value(int64_t v);
  JsonWriter& Value(int v) { return Value(static_cast<int64_t>(v)); }
  JsonWriter& Value(bool v);
  JsonWriter& Value(const std::string& v);
  JsonWriter& Value(const char* v) { return Value(std::string(v)); }

  const std::string& str() const { return out_; }
  /// Write to `path`, or to stdout when `path` is empty. Returns success.
  bool WriteTo(const std::string& path) const;

 private:
  void Prefix();

  std::string out_;
  std::vector<bool> need_comma_;  // one level per open object/array
  bool after_key_ = false;
};

BenchArgs ParseArgs(int argc, char** argv);

/// The simulated lock-queue work set by the last ParseArgs call (the
/// workload factories read it when building databases).
uint64_t SimQueueWorkNs();

std::string Fmt(const char* fmt, ...);

/// Thread ladder standing in for the paper's "hardware contexts utilized".
std::vector<int> ThreadLadder(int max_threads);

}  // namespace slidb::bench
