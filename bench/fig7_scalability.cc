// Figure 7: throughput vs utilized contexts for the NDBB mix, TPC-B, and
// TPC-C Payment, SLI off. The paper shows near-linear scaling at low
// context counts, a knee past ~32, and dropping throughput by 48+ as the
// lock-manager bottleneck bites.
#include <cstdio>

#include "fig_common.h"

using namespace slidb;
using namespace slidb::bench;

int main(int argc, char** argv) {
  const BenchArgs args = ParseArgs(argc, argv);
  std::printf(
      "Figure 7: throughput vs offered load (agent threads), SLI off\n\n");

  std::vector<std::unique_ptr<PaperWorkload>> roster;
  roster.push_back(MakeTm1("NDBB-Mix", Tm1Workload::Mix::kFull,
                           Tm1TxnType::kGetSubscriberData, args.quick, false));
  roster.push_back(MakeTpcb(args.quick, false));
  roster.push_back(MakeTpcc("TPCC-Payment", TpccWorkload::Mix::kSingle,
                            TpccTxnType::kPayment, args.quick, false));

  TablePrinter table({"workload", "threads", "util", "tps"});
  for (auto& pw : roster) {
    for (int threads : ThreadLadder(args.max_threads)) {
      DriverOptions dopts;
      dopts.num_agents = threads;
      dopts.duration_s = args.duration_s;
      dopts.warmup_s = args.warmup_s;
      dopts.seed = args.seed;
      const DriverResult r = RunWorkload(*pw->db, *pw->workload, dopts);
      table.Row({pw->label, Fmt("%d", threads),
                 Fmt("%.2f", r.cpu_utilization), Fmt("%.0f", r.tps)});
    }
  }
  std::printf(
      "\nExpected shape (paper): throughput climbs with load, then flattens\n"
      "or drops once lock-manager contention dominates (the knee).\n");
  return 0;
}
