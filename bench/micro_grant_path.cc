// Grant-path microbenchmark: acquire+release latency of one probe
// transaction against a lock whose queue already holds N compatible
// requests from other transactions.
//
// This is the direct measurement of the paper's §3.2 pathology — "the
// effort required to grant or release a lock grows with the number of
// active transactions" — and of this repo's fix: with conflict detection
// answered from the per-head grant summary (one AND against the cached
// mode bitset) and releases skipping the queue walk when nobody waits, the
// curve must be flat in queue depth where the seed implementation was
// linear.
//
// Emits a human table on stdout and, with --json=FILE, a BENCH_*.json
// record: {"bench":"micro_grant_path","results":[{"series":…,"depth":…,
// "ns_per_op":…,"cangrant_fast":…,"cangrant_slow":…}…]}.
#include <memory>
#include <vector>

#include "bench_common.h"
#include "src/lock/lock_manager.h"
#include "src/stats/counters.h"
#include "src/util/time_util.h"

namespace slidb::bench {
namespace {

struct Series {
  const char* name;
  LockMode holder_mode;  ///< mode the N queued transactions hold
  LockMode probe_mode;   ///< compatible mode the measured probe requests
};

struct Sample {
  const char* series;
  int depth;
  double ns_per_op;
  uint64_t fast;
  uint64_t slow;
};

Sample RunOne(const Series& series, int depth, uint64_t iters) {
  LockManagerOptions o;
  o.enable_deadlock_detector = false;
  // Measure the real code path, not the simulated many-context load.
  o.sim_queue_work_ns = 0;
  LockManager lm(o);
  const LockId target = LockId::Table(0, 1);

  // Build the queue: `depth` transactions holding `holder_mode`.
  std::vector<std::unique_ptr<LockClient>> holders;
  uint64_t txn = 1;
  for (int i = 0; i < depth; ++i) {
    holders.push_back(std::make_unique<LockClient>());
    holders.back()->StartTxn(txn++, static_cast<uint32_t>(i));
    if (!lm.Lock(holders.back().get(), target, series.holder_mode).ok()) {
      std::fprintf(stderr, "holder %d failed to acquire\n", i);
      std::abort();
    }
  }

  LockClient probe;
  CounterSet counters;
  ScopedCounterSet routed(&counters);

  // Warm up (first FindOrCreate, cache effects), then measure.
  for (uint64_t i = 0; i < iters / 10 + 1; ++i) {
    probe.StartTxn(txn++, 99);
    (void)lm.Lock(&probe, target, series.probe_mode);
    lm.ReleaseAll(&probe, nullptr, false);
  }
  const CounterSet before = counters;
  const uint64_t start_us = NowMicros();
  for (uint64_t i = 0; i < iters; ++i) {
    probe.StartTxn(txn++, 99);
    (void)lm.Lock(&probe, target, series.probe_mode);
    lm.ReleaseAll(&probe, nullptr, false);
  }
  const uint64_t elapsed_us = NowMicros() - start_us;
  const CounterSet delta = counters.Delta(before);

  for (auto& h : holders) lm.ReleaseAll(h.get(), nullptr, false);

  Sample s;
  s.series = series.name;
  s.depth = depth;
  s.ns_per_op = static_cast<double>(elapsed_us) * 1000.0 /
                static_cast<double>(iters);
  s.fast = delta.Get(Counter::kCanGrantFast);
  s.slow = delta.Get(Counter::kCanGrantSlow);
  return s;
}

int Main(int argc, char** argv) {
  const BenchArgs args = ParseArgs(argc, argv);
  const uint64_t iters = args.quick ? 20'000 : 200'000;
  std::vector<int> depths = {0, 1, 2, 4, 8, 16, 32, 64, 128, 256};
  if (args.quick) depths = {0, 1, 4, 16, 64};

  // Both series keep the queue fully compatible with the probe, so every
  // probe acquire is grantable: S readers probed by another S, and the
  // intention-mode crowd (the SLI sweet spot) probed by IX.
  const Series all_series[] = {
      {"S_over_S", LockMode::kS, LockMode::kS},
      {"IX_over_IS", LockMode::kIS, LockMode::kIX},
  };

  TablePrinter table({"series", "depth", "ns/op", "cangrant_fast",
                      "cangrant_slow"});
  std::vector<Sample> samples;
  for (const Series& series : all_series) {
    for (int depth : depths) {
      const Sample s = RunOne(series, depth, iters);
      samples.push_back(s);
      table.Row({s.series, Fmt("%d", s.depth), Fmt("%.1f", s.ns_per_op),
                 Fmt("%llu", static_cast<unsigned long long>(s.fast)),
                 Fmt("%llu", static_cast<unsigned long long>(s.slow))});
    }
  }

  // Flatness report: latency at max depth over latency at depth 0. The
  // seed's linear queue walks put this in the tens; the summary-based path
  // should hold it near 1.
  for (const Series& series : all_series) {
    double at0 = 0, atmax = 0;
    int maxd = 0;
    for (const Sample& s : samples) {
      if (s.series != static_cast<const char*>(series.name)) continue;
      if (s.depth == 0) at0 = s.ns_per_op;
      if (s.depth >= maxd) {
        maxd = s.depth;
        atmax = s.ns_per_op;
      }
    }
    std::printf("# %s: depth-%d/depth-0 latency ratio = %.2fx\n", series.name,
                maxd, at0 > 0 ? atmax / at0 : 0.0);
  }

  JsonWriter json;
  json.BeginObject();
  json.Key("bench").Value("micro_grant_path");
  json.Key("iters").Value(iters);
  json.Key("quick").Value(args.quick);
  json.Key("results").BeginArray();
  for (const Sample& s : samples) {
    json.BeginObject();
    json.Key("series").Value(s.series);
    json.Key("depth").Value(static_cast<int64_t>(s.depth));
    json.Key("ns_per_op").Value(s.ns_per_op);
    json.Key("cangrant_fast").Value(s.fast);
    json.Key("cangrant_slow").Value(s.slow);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  if (!args.json_path.empty()) {
    if (!json.WriteTo(args.json_path)) {
      std::fprintf(stderr, "failed to write %s\n", args.json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", args.json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace slidb::bench

int main(int argc, char** argv) { return slidb::bench::Main(argc, argv); }
