// Contention-scenario matrix: the purpose-built skewed workloads from
// src/workload/contention.h through the SLI policy ablation the paper's
// Figures 9/10 are about — SLI off vs always-inherit vs adaptive
// (per-head heat-triggered), across a Zipf-theta sweep (zipf-mix) and the
// three hotspot scenarios (flash-sale, auction, social-feed).
//
// Each row reports throughput plus what the heat machinery saw: hot-head
// counts from the HotTracker windows, cumulative contended-head counts
// (stable after an idle tail, used by CI), and the SLI outcome counters
// (inherited / reclaimed / invalidated / discarded, and the adaptive
// policy's enable/cool-down transitions).
//
// Emits a human table on stdout and, with --json=FILE, the
// BENCH_contention.json record consumed by CI's bench smoke job.
#include <algorithm>
#include <cstring>
#include <iterator>
#include <memory>
#include <vector>

#include "fig_common.h"
#include "src/workload/contention.h"

namespace slidb::bench {
namespace {

constexpr SliMode kModes[] = {SliMode::kOff, SliMode::kAlwaysInherit,
                              SliMode::kAdaptive};
constexpr double kThetaSweep[] = {0.0, 0.6, 0.9, 0.99, 1.2};
constexpr ContentionScenario kHotspots[] = {ContentionScenario::kFlashSale,
                                            ContentionScenario::kAuction,
                                            ContentionScenario::kSocialFeed};

struct ContentionSample {
  std::string scenario;
  double theta = 0;
  const char* mode = "";
  int agents = 0;
  double tps = 0;
  uint64_t commits = 0;
  uint64_t deadlock_aborts = 0;
  uint64_t lock_waits = 0;
  ContentionHeatReport heat;
  uint64_t inherits = 0;
  uint64_t reclaims = 0;
  uint64_t invalidated = 0;
  uint64_t discarded = 0;
  uint64_t adaptive_enables = 0;
  uint64_t adaptive_cooldowns = 0;
};

constexpr int kReps = 3;

/// One matrix cell = one database + loaded scenario, all three SLI modes
/// measured against it. Modes are interleaved round-robin at window
/// granularity (off, always-on, adaptive, off, ...) and each mode keeps its
/// median window: on a small shared host the background load swings by 2-3x
/// on a minutes scale, so back-to-back windows are the only ones that are
/// comparable — sequential per-mode runs would measure the neighbors, not
/// the policy. SetSliMode between windows is the documented between-runs
/// mutation; RunWorkload joins every agent before returning.
std::vector<ContentionSample> RunCell(ContentionOptions copts, int agents,
                                      const BenchArgs& args) {
  DatabaseOptions o = BenchDbOptions(/*sli=*/false);
  // Small-host thresholds: with 2-4 driver threads a hot head sees fewer
  // contended latch acquisitions per window than the paper's 64-context
  // Niagara, so trigger earlier and cool only on a fully calm window.
  o.lock.hot_min_contended = 2;
  o.lock.hot_exit_contended = 0;

  Database db(o);
  ContentionWorkload workload(copts);
  workload.Load(db);

  DriverOptions dopts;
  dopts.num_agents = agents;
  dopts.duration_s = args.duration_s;
  dopts.warmup_s = args.warmup_s;
  dopts.seed = args.seed;

  // Discarded warm-up window: the first moments after a load run on cold
  // allocators, an unwarmed buffer pool, and an empty lock table, which
  // would systematically depress whichever mode goes first.
  {
    DriverOptions wopts = dopts;
    wopts.duration_s = std::min(0.5, args.duration_s);
    wopts.warmup_s = 0.0;
    (void)RunWorkload(db, workload, wopts);
  }

  constexpr size_t kNumModes = std::size(kModes);
  DriverResult reps[kNumModes][kReps];
  for (int rep = 0; rep < kReps; ++rep) {
    for (size_t m = 0; m < kNumModes; ++m) {
      db.SetSliMode(kModes[m]);
      reps[m][rep] = RunWorkload(db, workload, dopts);
    }
  }
  // Cumulative over the cell's whole run; identical for the three rows by
  // construction (heat is a property of the workload, not the policy).
  const ContentionHeatReport heat = ContentionWorkload::MeasureHeat(db);

  std::vector<ContentionSample> out;
  for (size_t m = 0; m < kNumModes; ++m) {
    std::sort(std::begin(reps[m]), std::end(reps[m]),
              [](const DriverResult& a, const DriverResult& b) {
                return a.tps < b.tps;
              });
    const DriverResult& r = reps[m][kReps / 2];
    ContentionSample s;
    s.scenario = ContentionScenarioName(copts.scenario);
    s.theta = copts.theta;
    s.mode = SliModeName(kModes[m]);
    s.agents = agents;
    s.tps = r.tps;
    s.commits = r.commits;
    s.deadlock_aborts = r.deadlock_aborts;
    s.lock_waits = r.counters.Get(Counter::kLockWaits);
    s.heat = heat;
    s.inherits = r.counters.Get(Counter::kSliInherited);
    s.reclaims = r.counters.Get(Counter::kSliReclaimed);
    s.invalidated = r.counters.Get(Counter::kSliInvalidated);
    s.discarded = r.counters.Get(Counter::kSliDiscarded);
    s.adaptive_enables = r.counters.Get(Counter::kSliAdaptiveEnable);
    s.adaptive_cooldowns = r.counters.Get(Counter::kSliAdaptiveCooldown);
    out.push_back(std::move(s));
  }
  return out;
}

int Main(int argc, char** argv) {
  const BenchArgs args = ParseArgs(argc, argv);
  int agents = args.quick ? 2 : 4;
  if (args.max_threads > 0 && agents > args.max_threads) {
    agents = args.max_threads;
  }

  ContentionOptions base;
  base.num_items = args.quick ? 5'000 : 20'000;

  std::vector<ContentionSample> samples;
  TablePrinter table({"scenario", "theta", "sli", "tps", "commits",
                      "hot_heads", "cont_frac", "inherits", "reclaims",
                      "adapt_on/off"});
  const auto add_row = [&](const ContentionSample& s) {
    samples.push_back(s);
    table.Row(
        {s.scenario, Fmt("%.2f", s.theta), s.mode, Fmt("%.0f", s.tps),
         Fmt("%llu", static_cast<unsigned long long>(s.commits)),
         Fmt("%llu", static_cast<unsigned long long>(s.heat.hot_heads)),
         Fmt("%.3f", s.heat.contended_fraction),
         Fmt("%llu", static_cast<unsigned long long>(s.inherits)),
         Fmt("%llu", static_cast<unsigned long long>(s.reclaims)),
         Fmt("%llu/%llu", static_cast<unsigned long long>(s.adaptive_enables),
             static_cast<unsigned long long>(s.adaptive_cooldowns))});
  };

  std::printf("== zipf-mix theta sweep (%d agents) ==\n", agents);
  for (double theta : kThetaSweep) {
    ContentionOptions copts = base;
    copts.scenario = ContentionScenario::kZipfMix;
    copts.theta = theta;
    for (ContentionSample& s : RunCell(copts, agents, args)) {
      add_row(s);
    }
  }

  std::printf("\n== hotspot scenarios (%d agents) ==\n", agents);
  for (ContentionScenario sc : kHotspots) {
    ContentionOptions copts = base;
    copts.scenario = sc;
    for (ContentionSample& s : RunCell(copts, agents, args)) {
      add_row(s);
    }
  }

  // Headline: adaptive vs off at the skewed end of the sweep.
  const auto find_tps = [&](const char* scenario, double theta,
                            const char* mode) {
    for (const ContentionSample& s : samples) {
      if (s.scenario == scenario && s.theta == theta &&
          std::strcmp(s.mode, mode) == 0) {
        return s.tps;
      }
    }
    return 0.0;
  };
  for (double theta : {0.99, 1.2}) {
    const double off = find_tps("zipf_mix", theta, "sli_off");
    const double adaptive = find_tps("zipf_mix", theta, "adaptive");
    if (off > 0) {
      std::printf("# zipf-mix theta=%.2f: adaptive/off = %.2fx "
                  "(%.0f vs %.0f tps)\n",
                  theta, adaptive / off, adaptive, off);
    }
  }

  JsonWriter json;
  json.BeginObject();
  json.Key("bench").Value("macro_contention");
  json.Key("quick").Value(args.quick);
  json.Key("agents").Value(agents);
  json.Key("num_items").Value(base.num_items);
  json.Key("rows").BeginArray();
  for (const ContentionSample& s : samples) {
    json.BeginObject();
    json.Key("scenario").Value(s.scenario);
    json.Key("theta").Value(s.theta);
    json.Key("mode").Value(s.mode);
    json.Key("agents").Value(s.agents);
    json.Key("tps").Value(s.tps);
    json.Key("commits").Value(s.commits);
    json.Key("deadlock_aborts").Value(s.deadlock_aborts);
    json.Key("lock_waits").Value(s.lock_waits);
    json.Key("heat").BeginObject();
    json.Key("heads").Value(s.heat.heads);
    json.Key("hot_heads").Value(s.heat.hot_heads);
    json.Key("adaptive_hot_heads").Value(s.heat.adaptive_hot_heads);
    json.Key("contended_heads").Value(s.heat.contended_heads);
    json.Key("total_acquires").Value(s.heat.total_acquires);
    json.Key("total_contended").Value(s.heat.total_contended);
    json.Key("contended_fraction").Value(s.heat.contended_fraction);
    json.EndObject();
    json.Key("sli").BeginObject();
    json.Key("inherits").Value(s.inherits);
    json.Key("reclaims").Value(s.reclaims);
    json.Key("invalidated").Value(s.invalidated);
    json.Key("discarded").Value(s.discarded);
    json.Key("adaptive_enables").Value(s.adaptive_enables);
    json.Key("adaptive_cooldowns").Value(s.adaptive_cooldowns);
    json.EndObject();
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  if (!args.json_path.empty()) {
    if (!json.WriteTo(args.json_path)) {
      std::fprintf(stderr, "failed to write %s\n", args.json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", args.json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace slidb::bench

int main(int argc, char** argv) { return slidb::bench::Main(argc, argv); }
