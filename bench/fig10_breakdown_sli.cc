// Figure 10: execution time breakdowns on a loaded system with SLI
// enabled. The paper's findings: no workload keeps a large lock-manager
// contention component; SLI's own overhead stays under ~5%; transactions
// spend >= 75% of CPU time on useful work even at full load.
#include <cstdio>

#include "fig_common.h"

using namespace slidb;
using namespace slidb::bench;

int main(int argc, char** argv) {
  const BenchArgs args = ParseArgs(argc, argv);
  std::printf(
      "Figure 10: work breakdown on loaded system, SLI on (all contexts)\n\n");

  TablePrinter table({"workload", "threads", "tps", "lm_work%", "lm_cont%",
                      "sli%", "other_work%", "other_cont%"});
  for (auto& entry : PaperRoster(args.quick)) {
    auto pw = entry.make(/*sli=*/true);
    DriverOptions dopts;
    dopts.num_agents = args.max_threads > 0 ? args.max_threads : 8;
    dopts.duration_s = args.duration_s;
    dopts.warmup_s = args.warmup_s;
    dopts.seed = args.seed;
    const DriverResult r = RunWorkload(*pw->db, *pw->workload, dopts);
    const BreakdownRow b = ComputeBreakdown(r.profile);
    table.Row({pw->label, Fmt("%d", dopts.num_agents), Fmt("%.0f", r.tps),
               Fmt("%.1f", b.lockmgr_work), Fmt("%.1f", b.lockmgr_cont),
               Fmt("%.1f", b.sli_pct), Fmt("%.1f", b.other_work),
               Fmt("%.1f", b.other_cont)});
  }
  std::printf(
      "\nExpected shape (paper): lm_cont%% collapses versus Figure 6;\n"
      "sli%% stays small (<5%%); useful work dominates.\n");
  return 0;
}
