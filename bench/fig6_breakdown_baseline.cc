// Figure 6: execution time breakdowns at peak throughput for each
// transaction and mix, SLI off. The paper's findings: the lock manager is
// the dominant contention source for the short (TM1/TPC-B) transactions;
// lock-manager useful work is 10-20%; the big TPC-C transactions
// (Delivery, StockLevel) show no lock-manager bottleneck.
#include <cstdio>

#include "fig_common.h"

using namespace slidb;
using namespace slidb::bench;

int main(int argc, char** argv) {
  const BenchArgs args = ParseArgs(argc, argv);
  std::printf(
      "Figure 6: work breakdown at peak throughput per transaction (SLI off)\n\n");

  TablePrinter table({"workload", "peak_thr", "tps", "lm_work%", "lm_cont%",
                      "log%", "other_work%", "other_cont%"});
  for (auto& entry : PaperRoster(args.quick)) {
    auto pw = entry.make(/*sli=*/false);
    int peak_threads = 0;
    const DriverResult r =
        RunAtPeak(*pw->db, *pw->workload, args, &peak_threads);
    const BreakdownRow b = ComputeBreakdown(r.profile);
    table.Row({pw->label, Fmt("%d", peak_threads), Fmt("%.0f", r.tps),
               Fmt("%.1f", b.lockmgr_work), Fmt("%.1f", b.lockmgr_cont),
               Fmt("%.1f", b.log_pct), Fmt("%.1f", b.other_work),
               Fmt("%.1f", b.other_cont)});
  }
  std::printf(
      "\nExpected shape (paper): small TM1/TPC-B transactions show the\n"
      "largest lm_cont%%; Delivery and StockLevel show almost none.\n");
  return 0;
}
